package core

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workloads"
)

func TestNativeSystemQuickPath(t *testing.T) {
	sys, err := NewNativeSystem(Config{Policy: "ca"})
	if err != nil {
		t.Fatal(err)
	}
	env := sys.NewEnv()
	w := workloads.NewPageRank()
	if err := Setup(env, w, 1); err != nil {
		t.Fatal(err)
	}
	rep := Contiguity(env)
	if rep.Maps99 > 5 {
		t.Fatalf("CA native maps99 = %d, want few", rep.Maps99)
	}
	if rep.Cov32 < 0.99 {
		t.Fatalf("cov32 = %f", rep.Cov32)
	}
	if rep.TotalPages == 0 || len(rep.Mappings) == 0 {
		t.Fatal("empty report")
	}
}

func TestNativeDefaultVsCA(t *testing.T) {
	maps := map[string]int{}
	for _, p := range []string{"default", "ca"} {
		sys, err := NewNativeSystem(Config{Policy: p})
		if err != nil {
			t.Fatal(err)
		}
		env := sys.NewEnv()
		if err := Setup(env, workloads.NewPageRank(), 1); err != nil {
			t.Fatal(err)
		}
		maps[p] = Contiguity(env).Maps99
	}
	if maps["default"] < maps["ca"]*10 {
		t.Fatalf("default %d should need >>10x CA %d", maps["default"], maps["ca"])
	}
}

func TestVirtualSystemSimulate(t *testing.T) {
	sys, err := NewVirtualSystem(VirtualConfig{Host: Config{Policy: "ca"}})
	if err != nil {
		t.Fatal(err)
	}
	env := sys.NewEnv()
	w := workloads.NewPageRank()
	if err := Setup(env, w, 1); err != nil {
		t.Fatal(err)
	}
	rep, err := Simulate(env, w, 2, 200_000, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BaselineOverhead <= 0 {
		t.Fatal("no baseline overhead measured")
	}
	if rep.SpotOverhead >= rep.BaselineOverhead/3 {
		t.Fatalf("SpOT %f should slash baseline %f", rep.SpotOverhead, rep.BaselineOverhead)
	}
	if rep.Correct < 0.9 {
		t.Fatalf("correct = %f", rep.Correct)
	}
	// 2D contiguity report works too.
	if Contiguity(env).Maps99 > 5 {
		t.Fatal("2D contiguity unexpectedly fragmented")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewNativeSystem(Config{Policy: "bogus"}); err == nil {
		t.Fatal("bogus policy accepted")
	}
	if _, err := NewVirtualSystem(VirtualConfig{Host: Config{Policy: "ca"}, GuestPolicy: "bogus"}); err == nil {
		t.Fatal("bogus guest policy accepted")
	}
	// Daemon policies construct.
	for _, p := range []string{"ingens", "ranger"} {
		sys, err := NewNativeSystem(Config{Policy: p})
		if err != nil {
			t.Fatal(err)
		}
		if len(sys.Daemons) != 1 {
			t.Fatalf("%s daemons = %d", p, len(sys.Daemons))
		}
	}
}

func TestCustomZones(t *testing.T) {
	sys, err := NewNativeSystem(Config{ZonesMiB: []int{64}})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Kernel.Machine.Zones) != 1 {
		t.Fatal("zone count")
	}
	if sys.Kernel.Machine.TotalPages() != 64<<20/4096 {
		t.Fatalf("total pages = %d", sys.Kernel.Machine.TotalPages())
	}
}
