package core

import (
	"math/rand"

	"repro/internal/workloads"
)

// newRand builds a deterministic source; kept in one place so the
// facade's seeding convention is uniform.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Setup runs a workload's allocation/population phase in env with a
// deterministic seed.
func Setup(env *workloads.Env, w workloads.Workload, seed int64) error {
	return w.Setup(env, newRand(seed))
}
