// Package core is the library facade: it assembles the substrates —
// zones/buddy/contiguity-map, the OS memory manager with a placement
// policy, optionally a hypervisor with nested paging — into a ready
// system and exposes the operations users need: run workloads, inspect
// contiguity, and emulate the translation hardware (SpOT, vRMM, DS).
//
// The paper's two contributions sit underneath:
//
//   - CA paging: osim.CAPolicy plus the contigmap substrate
//     (select Policy: "ca");
//   - SpOT: hw/spot, driven through Simulate.
//
// Examples under examples/ and the cmd tools are written exclusively
// against this package.
package core

import (
	"fmt"

	"repro/internal/hw/walker"
	"repro/internal/mem/addr"
	"repro/internal/mem/zone"
	"repro/internal/metrics"
	"repro/internal/osim"
	"repro/internal/osim/daemon"
	"repro/internal/perfmodel"
	"repro/internal/sim"
	"repro/internal/virt"
	"repro/internal/workloads"
)

// Config describes one memory-management system (a kernel).
type Config struct {
	// ZonesMiB lists NUMA-zone sizes in MiB. Default: two 640 MiB
	// zones. Each is rounded up to MAX_ORDER blocks.
	ZonesMiB []int
	// Policy selects physical placement: "default", "ca", "eager",
	// "ideal", "ingens", "ranger". Default "default". "ingens" and
	// "ranger" use default placement plus the corresponding daemon.
	Policy string
	// BootReserveBlocks pins this many MAX_ORDER blocks at each zone
	// base (kernel image / firmware). Default 1.
	BootReserveBlocks int
}

func (c Config) zonesPages() []uint64 {
	zonesMiB := c.ZonesMiB
	if len(zonesMiB) == 0 {
		zonesMiB = []int{640, 640}
	}
	out := make([]uint64, len(zonesMiB))
	for i, m := range zonesMiB {
		pages := uint64(m) << 20 / addr.PageSize
		out[i] = (pages + addr.MaxOrderPages - 1) &^ uint64(addr.MaxOrderPages-1)
	}
	return out
}

// buildKernel constructs the kernel + daemons for a config.
func buildKernel(c Config) (*osim.Kernel, []workloads.Daemon, error) {
	policy := c.Policy
	if policy == "" {
		policy = "default"
	}
	m := zone.NewMachine(zone.Config{
		ZonePages:      c.zonesPages(),
		SortedMaxOrder: policy == "ca",
	})
	var k *osim.Kernel
	var ds []workloads.Daemon
	switch policy {
	case "default", "thp":
		k = osim.NewKernel(m, osim.DefaultPolicy{})
	case "ca":
		k = osim.NewKernel(m, osim.CAPolicy{})
	case "eager":
		k = osim.NewKernel(m, osim.EagerPolicy{})
	case "ideal":
		k = osim.NewKernel(m, osim.NewIdealPolicy())
	case "ingens":
		k = osim.NewKernel(m, osim.DefaultPolicy{})
		ds = append(ds, daemon.NewIngens(k))
	case "ranger":
		k = osim.NewKernel(m, osim.DefaultPolicy{})
		ds = append(ds, daemon.NewRanger(k))
	default:
		return nil, nil, fmt.Errorf("core: unknown policy %q", policy)
	}
	reserve := c.BootReserveBlocks
	if reserve == 0 {
		reserve = 1
	}
	k.BootReserve(reserve)
	return k, ds, nil
}

// NativeSystem is a bare-metal machine running one kernel.
type NativeSystem struct {
	Kernel  *osim.Kernel
	Daemons []workloads.Daemon
}

// NewNativeSystem boots a native system.
func NewNativeSystem(c Config) (*NativeSystem, error) {
	k, ds, err := buildKernel(c)
	if err != nil {
		return nil, err
	}
	return &NativeSystem{Kernel: k, Daemons: ds}, nil
}

// NewEnv starts a process and returns its workload environment.
func (s *NativeSystem) NewEnv() *workloads.Env {
	env := workloads.NewNativeEnv(s.Kernel, 0)
	env.Daemons = s.Daemons
	return env
}

// VirtualSystem is a host kernel running one VM with a guest kernel —
// the nested-paging setup the paper evaluates.
type VirtualSystem struct {
	VM   *virt.VM
	Host *osim.Kernel
}

// VirtualConfig describes the two-dimensional setup.
type VirtualConfig struct {
	// Host configures the hypervisor-side kernel.
	Host Config
	// GuestPolicy and GuestZonesMiB configure the guest kernel
	// (defaults: the host's policy; two 384 MiB zones).
	GuestPolicy   string
	GuestZonesMiB []int
	// VMMemMiB is the guest physical memory (default: sum of guest
	// zones).
	VMMemMiB int
}

// NewVirtualSystem boots a host and a VM.
func NewVirtualSystem(c VirtualConfig) (*VirtualSystem, error) {
	host, _, err := buildKernel(c.Host)
	if err != nil {
		return nil, err
	}
	guestPolicy := c.GuestPolicy
	if guestPolicy == "" {
		guestPolicy = c.Host.Policy
	}
	zonesMiB := c.GuestZonesMiB
	if len(zonesMiB) == 0 {
		zonesMiB = []int{384, 384}
	}
	guestZones := Config{ZonesMiB: zonesMiB}.zonesPages()
	var memPages uint64
	for _, z := range guestZones {
		memPages += z
	}
	var guestPlacement osim.Placement
	switch guestPolicy {
	case "", "default", "thp":
		guestPlacement = osim.DefaultPolicy{}
	case "ca":
		guestPlacement = osim.CAPolicy{}
	case "eager":
		guestPlacement = osim.EagerPolicy{}
	case "ideal":
		guestPlacement = osim.NewIdealPolicy()
	default:
		return nil, fmt.Errorf("core: unknown guest policy %q", guestPolicy)
	}
	vm, err := virt.New(host, virt.Config{
		MemBytes:         memPages * addr.PageSize,
		GuestZones:       guestZones,
		GuestPolicy:      guestPlacement,
		GuestSorted:      guestPolicy == "ca",
		GuestBootReserve: 1,
	})
	if err != nil {
		return nil, err
	}
	return &VirtualSystem{VM: vm, Host: host}, nil
}

// NewEnv starts a guest process and returns its environment.
func (s *VirtualSystem) NewEnv() *workloads.Env {
	return workloads.NewVirtEnv(s.VM, 0)
}

// ContigReport summarises a process's contiguous mappings.
type ContigReport struct {
	Mappings      []metrics.Mapping
	Cov32, Cov128 float64
	Maps99        int
	TotalPages    uint64
}

func report(ms []metrics.Mapping) ContigReport {
	return ContigReport{
		Mappings:   ms,
		Cov32:      metrics.CoverageTopN(ms, 32),
		Cov128:     metrics.CoverageTopN(ms, 128),
		Maps99:     metrics.MappingsFor(ms, 0.99),
		TotalPages: metrics.TotalPages(ms),
	}
}

// Contiguity inspects an environment's mappings: native page-table
// extents for native systems, composed 2D (gVA→hPA) extents inside a
// VM — the paper's pagemap/VMI measurement.
func Contiguity(env *workloads.Env) ContigReport {
	if env.VM != nil {
		return report(env.VM.Mappings2D(env.Proc))
	}
	return report(metrics.FromPageTable(env.Proc.PT))
}

// TranslationReport is the outcome of a hardware-emulation run.
type TranslationReport struct {
	Result sim.Result
	// BaselineOverhead is the paging overhead (nested or native walk
	// cycles over ideal cycles) — what Fig. 13's 4K/THP bars show.
	BaselineOverhead float64
	// SpotOverhead, RMMOverhead, DSOverhead are the residual overheads
	// of the three translation schemes.
	SpotOverhead, RMMOverhead, DSOverhead float64
	// Correct/Mispredict/NoPrediction are SpOT's outcome fractions.
	Correct, Mispredict, NoPrediction float64
}

// Simulate drives n accesses of the workload's measured phase through
// the TLB and all translation schemes (the workload must already be
// Setup in env).
func Simulate(env *workloads.Env, w workloads.Workload, seed int64, n uint64, cfg sim.Config) (TranslationReport, error) {
	cfg.EnableSchemes = true
	res, err := sim.Run(env, w.Stream(newRand(seed), n), cfg)
	if err != nil {
		return TranslationReport{}, err
	}
	total := float64(res.Misses)
	if total == 0 {
		total = 1
	}
	return TranslationReport{
		Result:           res,
		BaselineOverhead: perfmodel.PagingOverhead(res),
		SpotOverhead:     perfmodel.SpotOverhead(res),
		RMMOverhead:      perfmodel.RMMOverhead(res),
		DSOverhead:       perfmodel.DSOverhead(res, walker.DefaultCosts().Nested4K4K),
		Correct:          float64(res.SpotCorrect) / total,
		Mispredict:       float64(res.SpotMispredict) / total,
		NoPrediction:     float64(res.SpotNoPred) / total,
	}, nil
}
