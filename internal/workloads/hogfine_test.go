package workloads

import (
	"math/rand"
	"testing"

	"repro/internal/mem/addr"
)

func TestHogFinePinsAlignmentSelectively(t *testing.T) {
	m := machineFor(t)
	ext := HogFine(m, 0.2, rand.New(rand.NewSource(4)))
	if len(ext) == 0 {
		t.Fatal("nothing pinned")
	}
	// Every extent is a single 2 MiB chunk at an odd slot.
	for _, e := range ext {
		if e.Pages != 512 {
			t.Fatalf("chunk pages = %d, want 512", e.Pages)
		}
		if uint64(e.PFN)%addr.MaxOrderPages != 512 {
			t.Fatalf("chunk at %d not at an odd 2MiB slot", e.PFN)
		}
	}
	// MAX_ORDER-aligned blocks are destroyed one per chunk, while the
	// 2 MiB supply stays large.
	var maxBlocks, hugeBlocks uint64
	for _, z := range m.Zones {
		maxBlocks += z.Buddy.FreeBlocks(addr.MaxOrder)
		hugeBlocks += z.Buddy.FreeBlocks(addr.HugeOrder)
	}
	total := m.TotalPages() / addr.MaxOrderPages
	if maxBlocks > total-uint64(len(ext)) {
		t.Fatalf("aligned blocks = %d with %d pins", maxBlocks, len(ext))
	}
	if hugeBlocks < uint64(len(ext)) {
		t.Fatalf("huge blocks = %d, want >= one per pinned block", hugeBlocks)
	}
	Unhog(m, ext)
	if m.FreePages() != m.TotalPages() {
		t.Fatal("Unhog leaked")
	}
}
