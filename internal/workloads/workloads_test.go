package workloads

import (
	"math/rand"
	"testing"

	"repro/internal/mem/addr"
	"repro/internal/mem/zone"
	"repro/internal/osim"
)

// machineFor builds a host machine big enough for the largest workload.
func machineFor(t testing.TB) *zone.Machine {
	t.Helper()
	// 2 zones x 384 MiB = 768 MiB.
	return zone.NewMachine(zone.Config{ZonePages: []uint64{
		96 * addr.MaxOrderPages, 96 * addr.MaxOrderPages,
	}})
}

func TestAllWorkloadsSetupNative(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			k := osim.NewKernel(machineFor(t), osim.CAPolicy{})
			env := NewNativeEnv(k, 0)
			rng := rand.New(rand.NewSource(1))
			if err := w.Setup(env, rng); err != nil {
				t.Fatalf("setup: %v", err)
			}
			// The process RSS covers at least the anonymous footprint.
			wantPages := w.FootprintBytes() / addr.PageSize
			if env.Proc.RSSPages < wantPages {
				t.Fatalf("RSS %d pages < footprint %d", env.Proc.RSSPages, wantPages)
			}
			// Streams only reference mapped memory.
			st := w.Stream(rand.New(rand.NewSource(2)), 20000)
			for {
				a, ok := st.Next()
				if !ok {
					break
				}
				if _, ok := env.Proc.Translate(a.VA); !ok {
					t.Fatalf("stream referenced unmapped VA %v (pc %#x)", a.VA, a.PC)
				}
			}
			env.Exit()
			if env.Proc.RSSPages != 0 {
				t.Fatal("exit left RSS")
			}
		})
	}
}

func TestStreamsAreDeterministic(t *testing.T) {
	k := osim.NewKernel(machineFor(t), osim.CAPolicy{})
	env := NewNativeEnv(k, 0)
	w := NewPageRank()
	if err := w.Setup(env, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	collect := func(seed int64) []Access {
		st := w.Stream(rand.New(rand.NewSource(seed)), 1000)
		var out []Access
		for {
			a, ok := st.Next()
			if !ok {
				break
			}
			out = append(out, a)
		}
		return out
	}
	a, b := collect(7), collect(7)
	if len(a) != 1000 || len(b) != 1000 {
		t.Fatalf("stream lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := collect(8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestWorkloadNamesAndLookup(t *testing.T) {
	names := []string{"svm", "pagerank", "hashjoin", "xsbench", "bt"}
	all := All()
	if len(all) != len(names) {
		t.Fatalf("All() = %d workloads", len(all))
	}
	for i, w := range all {
		if w.Name() != names[i] {
			t.Fatalf("workload %d = %q, want %q", i, w.Name(), names[i])
		}
		if ByName(names[i]) == nil {
			t.Fatalf("ByName(%q) = nil", names[i])
		}
		if w.FootprintBytes() == 0 {
			t.Fatalf("%s footprint is 0", w.Name())
		}
	}
	if ByName("nope") != nil {
		t.Fatal("ByName of unknown should be nil")
	}
	// Footprint ordering mirrors the paper: svm < pagerank < hashjoin <
	// xsbench is violated intentionally? No: paper order by size is
	// svm(29) < pagerank(78) < hashjoin(102) < xsbench(122) < bt(167).
	for i := 1; i < len(all); i++ {
		if all[i].FootprintBytes() <= all[i-1].FootprintBytes() {
			t.Fatalf("footprints not increasing: %s(%d) <= %s(%d)",
				all[i].Name(), all[i].FootprintBytes(), all[i-1].Name(), all[i-1].FootprintBytes())
		}
	}
}

func TestSVMReadsDatasetThroughCache(t *testing.T) {
	k := osim.NewKernel(machineFor(t), osim.CAPolicy{})
	env := NewNativeEnv(k, 0)
	if err := NewSVM().Setup(env, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	if k.Cache.ResidentPages != svmDatasetBytes/addr.PageSize {
		t.Fatalf("cache pages = %d, want %d", k.Cache.ResidentPages, svmDatasetBytes/addr.PageSize)
	}
	// Cache pages persist after exit.
	env.Exit()
	if k.Cache.ResidentPages == 0 {
		t.Fatal("cache dropped on exit")
	}
}

func TestHogPinsRequestedFraction(t *testing.T) {
	m := machineFor(t)
	free0 := m.FreePages()
	ext := Hog(m, 0.3, rand.New(rand.NewSource(3)))
	pinned := free0 - m.FreePages()
	want := uint64(0.3 * float64(m.TotalPages()))
	if pinned < want*9/10 || pinned > want*11/10 {
		t.Fatalf("pinned %d pages, want ~%d", pinned, want)
	}
	// Huge pages remain plentiful: every even 2MiB slot is free.
	var hugeBlocks uint64
	for _, z := range m.Zones {
		hugeBlocks += z.Buddy.FreeBlocks(addr.HugeOrder)
	}
	if hugeBlocks < uint64(float64(len(ext))*0.9) {
		t.Fatalf("only %d huge blocks free after hogging %d chunks", hugeBlocks, len(ext))
	}
	// MAX_ORDER aligned blocks are destroyed where pinned.
	var maxBlocks uint64
	for _, z := range m.Zones {
		maxBlocks += z.Buddy.FreeBlocks(addr.MaxOrder)
	}
	if maxBlocks > m.TotalPages()/addr.MaxOrderPages-uint64(len(ext)) {
		t.Fatalf("aligned MAX_ORDER blocks = %d despite %d pinned chunks", maxBlocks, len(ext))
	}
	Unhog(m, ext)
	if m.FreePages() != free0 {
		t.Fatal("Unhog leaked")
	}
}

func TestHogZeroFraction(t *testing.T) {
	m := machineFor(t)
	if ext := Hog(m, 0, rand.New(rand.NewSource(1))); ext != nil {
		t.Fatal("zero-fraction hog pinned memory")
	}
}

func TestHogDeterministic(t *testing.T) {
	m1, m2 := machineFor(t), machineFor(t)
	e1 := Hog(m1, 0.2, rand.New(rand.NewSource(9)))
	e2 := Hog(m2, 0.2, rand.New(rand.NewSource(9)))
	if len(e1) != len(e2) {
		t.Fatal("hog not deterministic")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("hog extents differ")
		}
	}
}

// nextOnly hides a stream's native Fill so Batched must fall back to
// the compatibility adapter.
type nextOnly struct{ s Stream }

func (n nextOnly) Next() (Access, bool) { return n.s.Next() }

// TestFillMatchesNext pins the batching contract for every workload:
// the sequence produced by repeated Fill calls — through the native
// implementation and through the Next adapter, at buffer sizes that
// never divide the stream evenly — is identical to a plain Next drain.
func TestFillMatchesNext(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			k := osim.NewKernel(machineFor(t), osim.CAPolicy{})
			env := NewNativeEnv(k, 0)
			if err := w.Setup(env, rand.New(rand.NewSource(1))); err != nil {
				t.Fatal(err)
			}
			const n = 10_000
			want := make([]Access, 0, n)
			ref := w.Stream(rand.New(rand.NewSource(3)), n)
			for {
				a, ok := ref.Next()
				if !ok {
					break
				}
				want = append(want, a)
			}
			if len(want) != n {
				t.Fatalf("Next drain produced %d accesses, want %d", len(want), n)
			}
			for _, bufLen := range []int{1, 7, 1024, n + 1} {
				for _, adapt := range []bool{false, true} {
					var s Stream = w.Stream(rand.New(rand.NewSource(3)), n)
					if adapt {
						s = nextOnly{s}
					}
					bs := Batched(s)
					got := make([]Access, 0, n)
					buf := make([]Access, bufLen)
					for {
						k := bs.Fill(buf)
						if k == 0 {
							break
						}
						got = append(got, buf[:k]...)
					}
					if len(got) != len(want) {
						t.Fatalf("bufLen %d adapter %v: %d accesses, want %d", bufLen, adapt, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("bufLen %d adapter %v: access %d = %+v, want %+v", bufLen, adapt, i, got[i], want[i])
						}
					}
				}
			}
		})
	}
}
