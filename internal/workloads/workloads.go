package workloads

import (
	"math/rand"

	"repro/internal/mem/addr"
	"repro/internal/osim/vma"
)

// Scaled footprints: the paper's 29–167 GB workloads divided by ~512,
// preserving their relative spread (Table III).
const (
	MiB = 1 << 20

	svmModelBytes    = 8 * MiB
	svmFeatureBytes  = 88 * MiB
	svmDatasetBytes  = 32 * MiB // kdd12 through the page cache
	svmSmallVMACount = 24
	svmSmallVMABytes = 512 << 10

	prVertexBytes  = 120 * MiB
	prEdgeBytes    = 112 * MiB
	prDatasetBytes = 48 * MiB // friendster through the page cache

	hjTableBytes  = 400 * MiB // spans two 384 MiB guest zones like the 102 GB original
	hjBufferBytes = 16 * MiB

	xsGridBytes      = 256 * MiB
	xsUnionizedBytes = 192 * MiB

	btArrayBytes = 96 * MiB // ×5 arrays = 480 MiB, the biggest footprint
	btArrays     = 5
)

// Allocator slack: the fraction of each heap VMA the application maps
// but never touches (TCMalloc rounding, Table VI). Eager paging turns
// this into bloat; demand paging does not. Fractions follow the
// paper's measured eager bloat percentages.
const (
	svmSlack      = 0.08
	pagerankSlack = 0.065
	hashjoinSlack = 0.48
	xsbenchSlack  = 0.005
	btSlack       = 0.001
)

// usedRegion builds a stream region covering only the touched part of
// a VMA allocated with slack.
func usedRegion(start addr.VirtAddr, usedBytes uint64) region {
	return region{start: start, pages: usedBytes / addr.PageSize}
}

// PC values: fixed synthetic instruction addresses so the SpOT table
// indexes deterministically.
func pc(workload, instr int) uint64 { return 0x400000 + uint64(workload)<<12 + uint64(instr)*4 }

// ---------------------------------------------------------------- SVM

// SVM models Liblinear SVM on kdd12: a dataset ingested via the page
// cache into a large feature matrix, a small hot model vector, and —
// key to its SpOT behaviour — a set of small auxiliary VMAs whose
// scattered mappings defeat offset prediction for the instruction that
// walks them (§VI-B: ~4 % of SVM's misses fall outside the 32 largest
// mappings and one instruction misses irregularly).
type SVM struct {
	features region
	model    region
	small    []region
}

// NewSVM constructs the workload.
func NewSVM() *SVM { return &SVM{} }

// Name implements Workload.
func (s *SVM) Name() string { return "svm" }

// FootprintBytes implements Workload.
func (s *SVM) FootprintBytes() uint64 {
	return svmModelBytes + svmFeatureBytes + svmSmallVMACount*svmSmallVMABytes
}

// Setup implements Workload: dataset read interleaved with heap
// population (readahead interleaving of §III-C), then the model and the
// small auxiliary VMAs.
func (s *SVM) Setup(env *Env, rng *rand.Rand) error {
	f := env.Kernel.Cache.CreateFile(svmDatasetBytes)
	feat, err := env.MMapSlack(svmFeatureBytes, svmSlack)
	if err != nil {
		return err
	}
	// Interleave file reads with heap writes: read a chunk, populate a
	// chunk (applications parse file data into heap structures).
	chunk := uint64(4 * MiB)
	read := uint64(0)
	for off := uint64(0); off < svmFeatureBytes; off += chunk {
		if read < svmDatasetBytes {
			n := chunk
			if read+n > svmDatasetBytes {
				n = svmDatasetBytes - read
			}
			if err := env.Kernel.Cache.Read(f, read, n); err != nil {
				return err
			}
			read += n
		}
		end := off + chunk
		if end > svmFeatureBytes {
			end = svmFeatureBytes
		}
		if err := env.PopulateRange(feat, feat.Start.Add(off), end-off); err != nil {
			return err
		}
	}
	model, err := env.MMap(svmModelBytes)
	if err != nil {
		return err
	}
	if err := env.Populate(model); err != nil {
		return err
	}
	s.features, s.model = usedRegion(feat.Start, svmFeatureBytes), regionOf(model)
	s.small = nil
	for i := 0; i < svmSmallVMACount; i++ {
		v, err := env.MMap(svmSmallVMABytes)
		if err != nil {
			return err
		}
		if err := env.Populate(v); err != nil {
			return err
		}
		s.small = append(s.small, regionOf(v))
	}
	return nil
}

// Stream implements Workload. SVM's measured phase: sparse row scans
// striding past huge-page boundaries (most misses, predictable within
// a mapping), hot model updates, a random gather, and the irregular
// instruction hopping across the scattered small VMAs that produces
// the paper's unpredictable miss tail (§VI-B).
func (s *SVM) Stream(rng *rand.Rand, n uint64) Stream {
	// Sparse row strides: larger than a huge page, so nearly every
	// reference of these PCs lands on a fresh 2 MiB region.
	strideA := &seqWalker{r: s.features}
	strideB := &seqWalker{r: s.features, pos: s.features.pages / 3}
	return &funcStream{n: n, next: func() Access {
		switch x := rng.Intn(1000); {
		case x < 5: // sparse row scan, instruction A
			strideA.pos += 700
			return Access{PC: pc(1, 0), VA: strideA.next()}
		case x < 9: // sparse row scan, instruction B
			strideB.pos += 1300
			return Access{PC: pc(1, 1), VA: strideB.next()}
		case x < 100: // dense in-row accesses (page-sequential)
			return Access{PC: pc(1, 5), VA: strideA.r.pageVA(strideA.pos + uint64(rng.Intn(8)))}
		case x < 985: // hot model vector (TLB resident)
			return Access{PC: pc(1, 2), VA: s.model.pageVA(uint64(rng.Intn(8))), Write: true}
		case x < 996: // random feature gather
			return Access{PC: pc(1, 3), VA: s.features.pageVA(rng.Uint64())}
		default: // irregular hops across scattered small VMAs
			r := s.small[rng.Intn(len(s.small))]
			return Access{PC: pc(1, 4), VA: r.pageVA(rng.Uint64())}
		}
	}}
}

// ----------------------------------------------------------- PageRank

// PageRank models Ligra PageRank on friendster: an edge array streamed
// sequentially and a vertex array accessed randomly — but both inside
// single huge VMAs, which is why SpOT predicts it almost perfectly once
// CA paging makes each VMA one mapping (Fig. 14: >99 % correct).
type PageRank struct {
	vertices region
	edges    region
}

// NewPageRank constructs the workload.
func NewPageRank() *PageRank { return &PageRank{} }

// Name implements Workload.
func (p *PageRank) Name() string { return "pagerank" }

// FootprintBytes implements Workload.
func (p *PageRank) FootprintBytes() uint64 { return prVertexBytes + prEdgeBytes }

// Setup implements Workload.
func (p *PageRank) Setup(env *Env, rng *rand.Rand) error {
	f := env.Kernel.Cache.CreateFile(prDatasetBytes)
	edges, err := env.MMapSlack(prEdgeBytes, pagerankSlack)
	if err != nil {
		return err
	}
	// Graph loading: read file chunks, write edge array.
	chunk := uint64(8 * MiB)
	read := uint64(0)
	for off := uint64(0); off < prEdgeBytes; off += chunk {
		if read < prDatasetBytes {
			n := chunk
			if read+n > prDatasetBytes {
				n = prDatasetBytes - read
			}
			if err := env.Kernel.Cache.Read(f, read, n); err != nil {
				return err
			}
			read += n
		}
		end := off + chunk
		if end > prEdgeBytes {
			end = prEdgeBytes
		}
		if err := env.PopulateRange(edges, edges.Start.Add(off), end-off); err != nil {
			return err
		}
	}
	verts, err := env.MMap(prVertexBytes)
	if err != nil {
		return err
	}
	if err := env.Populate(verts); err != nil {
		return err
	}
	p.edges, p.vertices = usedRegion(edges.Start, prEdgeBytes), regionOf(verts)
	return nil
}

// Stream implements Workload.
func (p *PageRank) Stream(rng *rand.Rand, n uint64) Stream {
	seq := &seqWalker{r: p.edges}
	hot := uint64(0)
	return &funcStream{n: n, next: func() Access {
		switch x := rng.Intn(1000); {
		case x < 300: // edge stream
			return Access{PC: pc(2, 0), VA: seq.next()}
		case x < 318: // random vertex ranks (one big mapping)
			return Access{PC: pc(2, 1), VA: p.vertices.pageVA(rng.Uint64()), Write: true}
		default: // hot frontier/accumulator pages
			hot++
			return Access{PC: pc(2, 2), VA: p.vertices.pageVA(hot % 8), Write: true}
		}
	}}
}

// ----------------------------------------------------------- hashjoin

// HashJoin models the hashjoin microbenchmark: a giant hash table built
// then probed with uniformly random keys, from 10 worker threads. Its
// footprint (102 GB in the paper) spans two NUMA nodes, so even CA
// paging yields several mappings, and the random probes from single
// instructions cross them — producing SpOT's worst mispredict rate
// (Fig. 14: ~4 %).
type HashJoin struct {
	table region
	buf   region
}

// NewHashJoin constructs the workload.
func NewHashJoin() *HashJoin { return &HashJoin{} }

// Name implements Workload.
func (h *HashJoin) Name() string { return "hashjoin" }

// FootprintBytes implements Workload.
func (h *HashJoin) FootprintBytes() uint64 { return hjTableBytes + hjBufferBytes }

// Setup implements Workload.
func (h *HashJoin) Setup(env *Env, rng *rand.Rand) error {
	table, err := env.MMapSlack(hjTableBytes, hashjoinSlack)
	if err != nil {
		return err
	}
	if err := env.PopulatePrefix(table, hjTableBytes); err != nil {
		return err
	}
	buf, err := env.MMap(hjBufferBytes)
	if err != nil {
		return err
	}
	if err := env.Populate(buf); err != nil {
		return err
	}
	h.table, h.buf = usedRegion(table.Start, hjTableBytes), regionOf(buf)
	return nil
}

// Stream implements Workload: 10 interleaved "threads", each with its
// own probe instruction, all uniformly random over the whole table.
func (h *HashJoin) Stream(rng *rand.Rand, n uint64) Stream {
	thread := 0
	return &funcStream{n: n, next: func() Access {
		thread = (thread + 1) % 10
		switch x := rng.Intn(1000); {
		case x < 7: // random probe, thread-specific PC
			return Access{PC: pc(3, thread), VA: h.table.pageVA(rng.Uint64())}
		case x < 10: // chained bucket walk (second dependent load)
			return Access{PC: pc(3, 10+thread), VA: h.table.pageVA(rng.Uint64())}
		default: // per-thread output buffer (hot)
			return Access{PC: pc(3, 20+thread), VA: h.buf.pageVA(uint64(thread)), Write: true}
		}
	}}
}

// ------------------------------------------------------------ XSBench

// XSBench models the Monte Carlo neutron-transport kernel: random
// lookups into large read-only cross-section grids plus a binary search
// over the unionized energy grid, from 10 threads.
type XSBench struct {
	grids     region
	unionized region
}

// NewXSBench constructs the workload.
func NewXSBench() *XSBench { return &XSBench{} }

// Name implements Workload.
func (x *XSBench) Name() string { return "xsbench" }

// FootprintBytes implements Workload.
func (x *XSBench) FootprintBytes() uint64 { return xsGridBytes + xsUnionizedBytes }

// Setup implements Workload.
func (x *XSBench) Setup(env *Env, rng *rand.Rand) error {
	grids, err := env.MMapSlack(xsGridBytes, xsbenchSlack)
	if err != nil {
		return err
	}
	if err := env.PopulatePrefix(grids, xsGridBytes); err != nil {
		return err
	}
	uni, err := env.MMap(xsUnionizedBytes)
	if err != nil {
		return err
	}
	if err := env.Populate(uni); err != nil {
		return err
	}
	x.grids, x.unionized = usedRegion(grids.Start, xsGridBytes), regionOf(uni)
	return nil
}

// Stream implements Workload.
func (x *XSBench) Stream(rng *rand.Rand, n uint64) Stream {
	return &funcStream{n: n, next: func() Access {
		switch v := rng.Intn(1000); {
		case v < 12: // random nuclide grid lookup
			return Access{PC: pc(4, rng.Intn(10)), VA: x.grids.pageVA(rng.Uint64())}
		case v < 14: // unionized grid binary-search probes
			return Access{PC: pc(4, 20), VA: x.unionized.pageVA(rng.Uint64())}
		default: // per-particle hot state
			return Access{PC: pc(4, 30), VA: x.unionized.pageVA(uint64(v % 4)), Write: true}
		}
	}}
}

// ----------------------------------------------------------------- BT

// BT models NAS BT class E: five large multi-dimensional arrays swept
// along different dimensions; the z-dimension sweeps stride by whole
// planes, missing the TLB on nearly every reference. Its footprint is
// the largest and spans NUMA nodes, the case where CA paging loses some
// contiguity at the node boundary (§VI-A).
type BT struct {
	arrays []region
}

// NewBT constructs the workload.
func NewBT() *BT { return &BT{} }

// Name implements Workload.
func (b *BT) Name() string { return "bt" }

// FootprintBytes implements Workload.
func (b *BT) FootprintBytes() uint64 { return btArrays * btArrayBytes }

// Setup implements Workload: the five arrays are allocated up front and
// populated interleaved (BT's init loops sweep all arrays together), so
// their faults compete for free blocks — the pattern that costs CA
// paging contiguity when the footprint spills to the second NUMA node
// (§VI-A).
func (b *BT) Setup(env *Env, rng *rand.Rand) error {
	b.arrays = nil
	vmas := make([]*vma.VMA, 0, btArrays)
	for i := 0; i < btArrays; i++ {
		v, err := env.MMapSlack(btArrayBytes, btSlack)
		if err != nil {
			return err
		}
		b.arrays = append(b.arrays, usedRegion(v.Start, btArrayBytes))
		vmas = append(vmas, v)
	}
	const chunk = 16 * MiB
	for off := uint64(0); off < btArrayBytes; off += chunk {
		for _, v := range vmas {
			end := off + chunk
			if end > v.Size() {
				end = v.Size()
			}
			if err := env.PopulateRange(v, v.Start.Add(off), end-off); err != nil {
				return err
			}
		}
	}
	return nil
}

// Stream implements Workload.
func (b *BT) Stream(rng *rand.Rand, n uint64) Stream {
	// Plane stride for the z sweep: 4096 pages (16 MiB planes) — at or
	// above the size of the fragments CA produces for BT, so the
	// sweeping instructions hop mappings on almost every miss. Their
	// offsets never gain confidence: SpOT abstains (no-prediction)
	// instead of flushing the pipeline, the §IV-C behaviour.
	const plane = 4096
	zpos := make([]uint64, btArrays)
	seqs := make([]*seqWalker, btArrays)
	for i := range seqs {
		seqs[i] = &seqWalker{r: b.arrays[i]}
	}
	return &funcStream{n: n, next: func() Access {
		a := rng.Intn(btArrays)
		switch x := rng.Intn(1000); {
		case x < 6: // z sweep: plane-strided, misses constantly
			zpos[a] += plane
			return Access{PC: pc(5, a), VA: b.arrays[a].pageVA(zpos[a]), Write: true}
		case x < 150: // x sweep: sequential
			return Access{PC: pc(5, 10+a), VA: seqs[a].next()}
		default: // stencil locals (hot)
			return Access{PC: pc(5, 20+a), VA: b.arrays[a].pageVA(uint64(x % 4))}
		}
	}}
}

// All returns the five paper workloads in Table III order.
func All() []Workload {
	return []Workload{NewSVM(), NewPageRank(), NewHashJoin(), NewXSBench(), NewBT()}
}

// ByName returns the workload with the given name, or nil.
func ByName(name string) Workload {
	for _, w := range All() {
		if w.Name() == name {
			return w
		}
	}
	return nil
}
