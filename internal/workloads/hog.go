package workloads

import (
	"math/rand"

	"repro/internal/mem/addr"
	"repro/internal/mem/zone"
)

// Hog reproduces the external-fragmentation micro-benchmark of §VI-A:
// it pins the given fraction of machine memory in coarse chunks (4 MiB,
// always 2 MiB-aligned but starting at *odd* 2 MiB slots) at random
// positions. This is the regime the paper describes — the memory is
// fragmented "in coarse granularities (>2MB)": the 2 MiB huge-page
// supply stays plentiful (THP/Ingens unaffected), large *aligned*
// blocks become scarce (eager paging collapses), while sizeable
// unaligned free runs survive between chunks — the contiguity CA
// paging harvests.
//
// Returns the pinned extents so callers can release them.
type HogExtent struct {
	PFN   addr.PFN
	Pages uint64
}

// hogChunkPages is the pinned chunk size (4 MiB): starts mid-block and
// spans into the next, ruining two blocks' >2 MiB alignment per chunk
// while leaving their even 2 MiB halves free.
const hogChunkPages = 1024

// Hog pins fraction (0..1) of the machine in randomly placed coarse
// chunks. It is deterministic per rng.
func Hog(m *zone.Machine, fraction float64, rng *rand.Rand) []HogExtent {
	if fraction <= 0 {
		return nil
	}
	targetPages := uint64(fraction * float64(m.TotalPages()))
	// Candidate starts: the odd 2 MiB slot of every other MAX_ORDER
	// block, so chunks can never merge into huge pinned spans.
	var slots []addr.PFN
	for _, z := range m.Zones {
		for b := uint64(0); b+1 < z.Pages/addr.MaxOrderPages; b += 2 {
			slots = append(slots, z.Base+addr.PFN(b*addr.MaxOrderPages+512))
		}
	}
	rng.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })
	var out []HogExtent
	var pinned uint64
	for _, s := range slots {
		if pinned >= targetPages {
			break
		}
		if err := m.Reserve(s, hogChunkPages); err != nil {
			continue
		}
		out = append(out, HogExtent{PFN: s, Pages: hogChunkPages})
		pinned += hogChunkPages
	}
	return out
}

// HogFine pins fraction (0..1) of the machine in single 2 MiB chunks at
// the odd 2 MiB slot of random MAX_ORDER blocks. Compared to Hog's
// coarse chunks this is the *alignment-selective* ageing pattern: each
// pin destroys its block's >2 MiB alignment while free (unaligned)
// contiguity between pins shrinks only gradually — scattered long-lived
// pages on a machine that has run for a while (Fig. 1b).
func HogFine(m *zone.Machine, fraction float64, rng *rand.Rand) []HogExtent {
	if fraction <= 0 {
		return nil
	}
	targetPages := uint64(fraction * float64(m.TotalPages()))
	var slots []addr.PFN
	for _, z := range m.Zones {
		for b := uint64(0); b < z.Pages/addr.MaxOrderPages; b++ {
			slots = append(slots, z.Base+addr.PFN(b*addr.MaxOrderPages+512))
		}
	}
	rng.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })
	var out []HogExtent
	var pinned uint64
	for _, s := range slots {
		if pinned >= targetPages {
			break
		}
		if err := m.Reserve(s, 512); err != nil {
			continue
		}
		out = append(out, HogExtent{PFN: s, Pages: 512})
		pinned += 512
	}
	return out
}

// Unhog releases previously pinned extents.
func Unhog(m *zone.Machine, extents []HogExtent) {
	for _, e := range extents {
		m.FreeRange(e.PFN, e.Pages)
	}
}
