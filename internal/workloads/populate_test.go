package workloads

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/mem/addr"
	"repro/internal/mem/zone"
	"repro/internal/osim"
	"repro/internal/osim/daemon"
	"repro/internal/osim/pagetable"
	"repro/internal/osim/vma"
	"repro/internal/virt"
)

// popSnapshot captures every piece of simulator state the range-fault
// path could possibly disturb: kernel clocks, the full Stats structs,
// every page-table leaf (VA, PTE flags included, span), and per-VMA
// accounting — in both translation dimensions when virtualized.
type popSnapshot struct {
	clock      uint64
	stats      osim.Stats
	leaves     []pagetable.Leaf
	vmas       [][4]uint64
	hostClock  uint64
	hostStats  osim.Stats
	hostLeaves []pagetable.Leaf
}

func snapshotEnv(env *Env) popSnapshot {
	s := popSnapshot{clock: env.Kernel.Clock, stats: env.Kernel.Stats}
	env.Proc.PT.Visit(func(l pagetable.Leaf) { s.leaves = append(s.leaves, l) })
	env.Proc.VMAs.Visit(func(v *vma.VMA) {
		s.vmas = append(s.vmas, [4]uint64{uint64(v.Start), v.Pages(), v.MappedPages, v.TouchedPages()})
	})
	if env.VM != nil {
		s.hostClock = env.VM.Host.Clock
		s.hostStats = env.VM.Host.Stats
		env.VM.HostProc.PT.Visit(func(l pagetable.Leaf) { s.hostLeaves = append(s.hostLeaves, l) })
	}
	return s
}

// nestedEnv builds a VM (experiment-sized host and guest) with the same
// placement policy in both dimensions.
func nestedEnv(t testing.TB, pl func() osim.Placement) *Env {
	t.Helper()
	host := zone.NewMachine(zone.Config{ZonePages: []uint64{
		160 * addr.MaxOrderPages, 160 * addr.MaxOrderPages,
	}})
	hk := osim.NewKernel(host, pl())
	vm, err := virt.New(hk, virt.Config{
		MemBytes:    768 << 20,
		GuestZones:  []uint64{96 * addr.MaxOrderPages, 96 * addr.MaxOrderPages},
		GuestPolicy: pl(),
	})
	if err != nil {
		t.Fatalf("virt.New: %v", err)
	}
	return NewVirtEnv(vm, 0)
}

// TestPopulateRangeMatchesTouchLoop pins the range-fault batching
// contract: populating through PopulateRange leaves the simulator in a
// state indistinguishable from the historical per-page Touch loop —
// same page-table leaves (flags included), same fault counters and
// latency traces, same logical clocks, same VMA accounting — under
// every placement policy, with and without clock-gated daemons, native
// and nested.
func TestPopulateRangeMatchesTouchLoop(t *testing.T) {
	cases := []struct {
		name  string
		build func(t testing.TB) *Env
	}{
		{"native-thp", func(t testing.TB) *Env {
			return NewNativeEnv(osim.NewKernel(machineFor(t), osim.DefaultPolicy{}), 0)
		}},
		{"native-ingens", func(t testing.TB) *Env {
			k := osim.NewKernel(machineFor(t), osim.DefaultPolicy{})
			env := NewNativeEnv(k, 0)
			env.Daemons = append(env.Daemons, daemon.NewIngens(k))
			return env
		}},
		{"native-ca", func(t testing.TB) *Env {
			return NewNativeEnv(osim.NewKernel(machineFor(t), osim.CAPolicy{}), 0)
		}},
		{"native-eager", func(t testing.TB) *Env {
			return NewNativeEnv(osim.NewKernel(machineFor(t), osim.EagerPolicy{}), 0)
		}},
		{"native-ranger", func(t testing.TB) *Env {
			k := osim.NewKernel(machineFor(t), osim.DefaultPolicy{})
			env := NewNativeEnv(k, 0)
			env.Daemons = append(env.Daemons, daemon.NewRanger(k))
			return env
		}},
		{"native-ideal", func(t testing.TB) *Env {
			return NewNativeEnv(osim.NewKernel(machineFor(t), osim.NewIdealPolicy()), 0)
		}},
		{"nested-ca", func(t testing.TB) *Env {
			return nestedEnv(t, func() osim.Placement { return osim.CAPolicy{} })
		}},
		{"nested-thp-ingens", func(t testing.TB) *Env {
			env := nestedEnv(t, func() osim.Placement { return osim.DefaultPolicy{} })
			env.Daemons = append(env.Daemons, daemon.NewIngens(env.Kernel))
			return env
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			run := func(noRange bool) popSnapshot {
				env := c.build(t)
				env.NoRangeFault = noRange
				if err := NewSVM().Setup(env, rand.New(rand.NewSource(1))); err != nil {
					t.Fatalf("setup (NoRangeFault=%v): %v", noRange, err)
				}
				return snapshotEnv(env)
			}
			want, got := run(true), run(false)
			if want.clock != got.clock {
				t.Errorf("guest clock: per-page %d, range %d", want.clock, got.clock)
			}
			if want.hostClock != got.hostClock {
				t.Errorf("host clock: per-page %d, range %d", want.hostClock, got.hostClock)
			}
			if !reflect.DeepEqual(want.stats, got.stats) {
				t.Errorf("guest stats diverge:\nper-page %+v\nrange    %+v",
					statsBrief(want.stats), statsBrief(got.stats))
			}
			if !reflect.DeepEqual(want.hostStats, got.hostStats) {
				t.Errorf("host stats diverge:\nper-page %+v\nrange    %+v",
					statsBrief(want.hostStats), statsBrief(got.hostStats))
			}
			if !reflect.DeepEqual(want.vmas, got.vmas) {
				t.Errorf("VMA accounting diverges:\nper-page %v\nrange    %v", want.vmas, got.vmas)
			}
			diffLeaves(t, "guest", want.leaves, got.leaves)
			diffLeaves(t, "host", want.hostLeaves, got.hostLeaves)
		})
	}
}

// statsBrief drops the latency trace for readable failure messages (the
// DeepEqual above still compares it).
func statsBrief(s osim.Stats) osim.Stats {
	s.FaultLatencies = []uint64{uint64(len(s.FaultLatencies))}
	return s
}

func diffLeaves(t *testing.T, dim string, want, got []pagetable.Leaf) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("%s page table: per-page %d leaves, range %d", dim, len(want), len(got))
		return
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("%s leaf %d: per-page %+v, range %+v", dim, i, want[i], got[i])
			return
		}
	}
}

// TestPopulateRangeZeroAllocs pins the steady-state cost of the range
// path: re-populating an already-mapped VMA (the all-present fast case,
// one quiet run per leaf table) must not touch the heap.
func TestPopulateRangeZeroAllocs(t *testing.T) {
	k := osim.NewKernel(machineFor(t), osim.CAPolicy{})
	env := NewNativeEnv(k, 0)
	v, err := env.MMap(16 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.PopulateRange(v, v.Start, v.Size()); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(10, func() {
		if err := env.PopulateRange(v, v.Start, v.Size()); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state PopulateRange allocates %.2f objects per call, want 0", avg)
	}
}

// TestUnhogRestoresFreeMemory pins that both hog variants release
// exactly what they pinned: free-page count, the full free-block
// histogram, and the buddy invariants (including the non-empty-order
// bitmap) all return to their pre-hog state.
func TestUnhogRestoresFreeMemory(t *testing.T) {
	for _, tc := range []struct {
		name string
		hog  func(m *zone.Machine) []HogExtent
	}{
		{"hog", func(m *zone.Machine) []HogExtent { return Hog(m, 0.25, rand.New(rand.NewSource(11))) }},
		{"hogfine", func(m *zone.Machine) []HogExtent { return HogFine(m, 0.25, rand.New(rand.NewSource(11))) }},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			m := machineFor(t)
			free0 := m.FreePages()
			hist0 := m.FreeBlockHistogram()
			ext := tc.hog(m)
			if len(ext) == 0 {
				t.Fatal("hog pinned nothing")
			}
			if m.FreePages() == free0 {
				t.Fatal("hog did not reduce free memory")
			}
			Unhog(m, ext)
			if m.FreePages() != free0 {
				t.Fatalf("free pages %d after unhog, want %d", m.FreePages(), free0)
			}
			if hist := m.FreeBlockHistogram(); !reflect.DeepEqual(hist, hist0) {
				t.Fatalf("free-block histogram not restored:\nbefore %v\nafter  %v", hist0, hist)
			}
			for zi, z := range m.Zones {
				if err := z.Buddy.CheckInvariants(); err != nil {
					t.Fatalf("zone %d invariants after unhog: %v", zi, err)
				}
			}
		})
	}
}
