// Package workloads provides synthetic generators reproducing the
// allocation shape and access patterns of the paper's five evaluation
// workloads (Table III) at ~1/512 of their footprints, plus the "hog"
// fragmentation micro-benchmark. Each workload has two phases, like the
// paper's PAPI-delimited runs:
//
//   - Setup: mmap the VMAs, read dataset files through the page cache,
//     and populate memory by touching it (the allocation phase that CA
//     paging steers);
//   - Stream: a deterministic (pc, va, write) access generator for the
//     measured execution phase that the sim engine drives through the
//     TLB and translation hardware.
//
// What matters for fidelity is not the computation but (a) few large
// VMAs, (b) fault order during population, (c) per-PC access locality:
// which instructions touch which mappings how. Those are reproduced per
// workload; see each constructor's comment.
package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/mem/addr"
	"repro/internal/osim"
	"repro/internal/osim/vma"
	"repro/internal/trace"
	"repro/internal/virt"
)

// Daemon is a periodic background activity (Ingens, Ranger, metric
// samplers) polled on the workload's touch path, mirroring how kernel
// daemons interleave with application faults.
type Daemon interface {
	Maybe()
}

// BatchDaemon is a Daemon that can absorb a run of consecutive polls in
// one call. MaybeN(n) must be observably identical to n Maybe calls
// issued back to back with no intervening simulator activity;
// clock-gated daemons exploit that the logical clock cannot move
// between such polls except through their own epochs, touch-counted
// samplers just account n touches and fire at the exact crossings.
type BatchDaemon interface {
	Daemon
	MaybeN(n uint64)
}

// SettleDaemons advances logical time through the given number of
// daemon epochs, polling every daemon after each tick. Each tick is
// just over the stock daemon period (2 ms of logical time), so one
// epoch here fires every clock-gated daemon exactly once. Experiment
// drivers use it for the post-population execution window; the aging
// harness uses it as the between-churn-step daemon schedule.
func SettleDaemons(k *osim.Kernel, ds []Daemon, epochs int) {
	for i := 0; i < epochs; i++ {
		k.Tick(2_100_000)
		for _, d := range ds {
			d.Maybe()
		}
	}
}

// maybeN delivers n back-to-back polls, batched when the daemon
// supports it.
func maybeN(d Daemon, n uint64) {
	if b, ok := d.(BatchDaemon); ok {
		b.MaybeN(n)
		return
	}
	for ; n > 0; n-- {
		d.Maybe()
	}
}

// Env abstracts where a workload runs: native (kernel+process) or
// inside a VM (guest process with nested backing).
type Env struct {
	Kernel *osim.Kernel  // the kernel serving the application
	Proc   *osim.Process // the application process
	VM     *virt.VM      // non-nil when virtualized

	// Daemons are polled after every touch; they self-gate on the
	// kernel's logical clock.
	Daemons []Daemon

	// NoRangeFault disables the batched range-fault population path:
	// PopulateRange degrades to the historical per-page Touch loop.
	// Every experiment table is byte-identical either way (pinned by
	// runner.TestRangeFaultToggleMatches); the toggle exists for
	// regression comparison and debugging.
	NoRangeFault bool
}

// NewNativeEnv creates a process on the given kernel.
func NewNativeEnv(k *osim.Kernel, homeZone int) *Env {
	return &Env{Kernel: k, Proc: k.NewProcess(homeZone)}
}

// NewVirtEnv creates a guest process inside the VM.
func NewVirtEnv(vm *virt.VM, homeZone int) *Env {
	return &Env{Kernel: vm.Guest, Proc: vm.NewGuestProcess(homeZone), VM: vm}
}

// SetTracer attaches (or, with nil, detaches) an event tracer to the
// environment's whole software stack: the VM (guest and host kernels)
// when virtualized, the native kernel otherwise.
func (e *Env) SetTracer(t *trace.Tracer) {
	if e.VM != nil {
		e.VM.SetTracer(t)
		return
	}
	e.Kernel.SetTracer(t)
}

// TraceSample emits the buddy free-list depth events of every attached
// machine and snapshots a counter row. No-op when no tracer is wired;
// sim.Run calls it once per access batch.
func (e *Env) TraceSample() {
	e.Kernel.Machine.TraceDepths()
	if e.VM != nil {
		e.VM.Host.Machine.TraceDepths()
		e.VM.Host.Tracer.Sample()
		return
	}
	e.Kernel.Tracer.Sample()
}

// Touch accesses va, faulting in one or both dimensions as needed, and
// polls the attached daemons.
func (e *Env) Touch(va addr.VirtAddr, write bool) error {
	var err error
	if e.VM != nil {
		err = e.VM.Touch(e.Proc, va, write)
	} else {
		_, err = e.Proc.Touch(va, write)
	}
	for _, d := range e.Daemons {
		d.Maybe()
	}
	return err
}

// MMap creates an anonymous VMA.
func (e *Env) MMap(bytes uint64) (*vma.VMA, error) { return e.Proc.MMap(bytes) }

// MMapSlack creates an anonymous VMA of used+slack bytes, modelling the
// user-space allocator's rounding (the paper's modified TCMalloc with
// increased maximum allocation): the application will only ever touch
// the first used bytes. The untouched slack is what eager paging turns
// into memory bloat (Table VI).
func (e *Env) MMapSlack(used uint64, slackFrac float64) (*vma.VMA, error) {
	total := used + uint64(slackFrac*float64(used))
	return e.Proc.MMap(total)
}

// Populate touches every page of the VMA sequentially (writes).
func (e *Env) Populate(v *vma.VMA) error { return e.PopulatePrefix(v, v.Size()) }

// PopulatePrefix touches the first bytes of the VMA (writes): the used
// portion of a slack-allocated VMA.
func (e *Env) PopulatePrefix(v *vma.VMA, bytes uint64) error {
	if bytes > v.Size() {
		bytes = v.Size()
	}
	return e.PopulateRange(v, v.Start, bytes)
}

// PopulateRange writes to every page of [start, start+bytes) within v —
// the batched range-fault path. Its observable outcome is byte-
// identical to the historical per-page loop (Touch(start+off, true)
// for every page, polling every daemon after every touch); only the
// execution strategy differs:
//
//   - the containing VMA is resolved once, not once per touch;
//   - runs of already-mapped pages are walked linearly through each
//     resolved leaf table (TouchRangeQuiet) instead of one radix
//     descent per page;
//   - daemon polls over such a run collapse to one MaybeN(n) per run;
//   - every page that needs the fault path still goes through the
//     one-page step with a full per-daemon poll after it, because
//     faults advance the logical clock and a fired daemon may mutate
//     translations that later pages observe.
//
// Batching is gated on quiescence: a one-page step that neither faults
// nor moves any kernel clock across its daemon polls proves that every
// clock-gated daemon's gate is closed and, with the clock frozen
// across non-faulting touches, stays closed for the whole quiet run —
// so the collapsed polls are provably the no-ops the per-page loop
// would have executed. (This relies on a simulator-wide invariant:
// any daemon epoch that mutates simulator-visible state advances its
// kernel's clock. Promotion, migration, and fault service all Tick.)
func (e *Env) PopulateRange(v *vma.VMA, start addr.VirtAddr, bytes uint64) error {
	pages := addr.BytesToPages(bytes)
	if e.NoRangeFault {
		for off := uint64(0); off < pages*addr.PageSize; off += addr.PageSize {
			if err := e.Touch(start.Add(off), true); err != nil {
				return fmt.Errorf("populate %v at +%d: %w", v, uint64(start.Add(off)-v.Start), err)
			}
		}
		return nil
	}
	va := start
	quiescent := false
	for pages > 0 {
		if quiescent {
			n := e.touchRangeQuiet(v, va, pages)
			if n > 0 {
				for _, d := range e.Daemons {
					maybeN(d, n)
				}
				va = va.Add(n * addr.PageSize)
				pages -= n
				if pages == 0 {
					return nil
				}
			}
		}
		q, err := e.touchStep(v, va)
		if err != nil {
			return fmt.Errorf("populate %v at +%d: %w", v, uint64(va-v.Start), err)
		}
		quiescent = q
		va = va.Add(addr.PageSize)
		pages--
	}
	return nil
}

// touchStep performs one per-page touch with its full daemon poll round
// and reports whether the round was quiescent: no fault taken and no
// kernel clock moved across the polls.
func (e *Env) touchStep(v *vma.VMA, va addr.VirtAddr) (bool, error) {
	var faulted bool
	var err error
	if e.VM != nil {
		faulted, err = e.VM.TouchAt(e.Proc, v, va, true)
	} else {
		faulted, err = e.Proc.TouchAt(v, va, true)
	}
	if err != nil {
		return false, err
	}
	before := e.clockSum()
	for _, d := range e.Daemons {
		d.Maybe()
	}
	return !faulted && e.clockSum() == before, nil
}

// touchRangeQuiet advances over present (write-ready) pages in all
// translation dimensions without polling daemons; see PopulateRange.
func (e *Env) touchRangeQuiet(v *vma.VMA, va addr.VirtAddr, maxPages uint64) uint64 {
	if e.VM != nil {
		return e.VM.TouchRangeQuiet(e.Proc, v, va, maxPages, true)
	}
	return e.Proc.TouchRangeQuiet(v, va, maxPages, true)
}

// clockSum totals the logical clocks a daemon fire could advance.
func (e *Env) clockSum() uint64 {
	c := e.Kernel.Clock
	if e.VM != nil {
		c += e.VM.Host.Clock
	}
	return c
}

// ReadDataset reads a file of the given size through the page cache
// (creating it), modelling dataset ingestion. Returns the file.
func (e *Env) ReadDataset(bytes uint64) (*osim.File, error) {
	f := e.Kernel.Cache.CreateFile(bytes)
	if err := e.Kernel.Cache.Read(f, 0, bytes); err != nil {
		return nil, err
	}
	return f, nil
}

// Exit tears the process down (the VM's nested backing persists).
func (e *Env) Exit() { e.Proc.Exit() }

// Access is one memory reference of the measured phase.
type Access struct {
	PC    uint64
	VA    addr.VirtAddr
	Write bool
}

// Stream generates the measured phase's access sequence. Next returns
// false when the stream is exhausted.
type Stream interface {
	Next() (Access, bool)
}

// BatchStream is a Stream that can refill a caller-owned buffer in one
// call, amortizing the per-access interface dispatch of Next. Fill
// writes up to len(buf) accesses and returns how many it wrote; 0 means
// exhausted. The sequence produced by repeated Fill calls is identical
// to the sequence repeated Next calls would produce — batching is an
// execution detail, never a semantic one.
type BatchStream interface {
	Stream
	Fill(buf []Access) int
}

// Batched returns a batch-refill view of s: the stream itself when it
// implements BatchStream natively, or a compatibility adapter that
// drains Next into the buffer for legacy generators.
func Batched(s Stream) BatchStream {
	if b, ok := s.(BatchStream); ok {
		return b
	}
	return &nextAdapter{s: s}
}

// nextAdapter lifts a Next-only Stream to BatchStream.
type nextAdapter struct{ s Stream }

func (a *nextAdapter) Next() (Access, bool) { return a.s.Next() }

func (a *nextAdapter) Fill(buf []Access) int {
	for i := range buf {
		acc, ok := a.s.Next()
		if !ok {
			return i
		}
		buf[i] = acc
	}
	return len(buf)
}

// Workload is one of the paper's benchmarks.
type Workload interface {
	// Name is the paper's benchmark name.
	Name() string
	// FootprintBytes is the anonymous footprint (excluding files).
	FootprintBytes() uint64
	// Setup allocates and populates memory in env.
	Setup(env *Env, rng *rand.Rand) error
	// Stream returns a deterministic access stream of n references for
	// the measured phase. Setup must have been called on env.
	Stream(rng *rand.Rand, n uint64) Stream
}

// funcStream adapts a generator function to Stream.
type funcStream struct {
	n    uint64
	i    uint64
	next func() Access
}

func (s *funcStream) Next() (Access, bool) {
	if s.i >= s.n {
		return Access{}, false
	}
	s.i++
	return s.next(), true
}

// Fill implements BatchStream natively: one generator call per slot,
// in exactly the order Next would have produced.
func (s *funcStream) Fill(buf []Access) int {
	n := uint64(len(buf))
	if rem := s.n - s.i; rem < n {
		n = rem
	}
	for i := uint64(0); i < n; i++ {
		buf[i] = s.next()
	}
	s.i += n
	return int(n)
}

// region is a populated VMA the stream generators index into.
type region struct {
	start addr.VirtAddr
	pages uint64
}

func regionOf(v *vma.VMA) region { return region{start: v.Start, pages: v.Pages()} }

// pageVA returns the VA of the page at index i within the region.
func (r region) pageVA(i uint64) addr.VirtAddr {
	return r.start.Add((i % r.pages) * addr.PageSize)
}

// seqWalker strides through a region page by page, wrapping.
type seqWalker struct {
	r   region
	pos uint64
}

func (w *seqWalker) next() addr.VirtAddr {
	va := w.r.pageVA(w.pos)
	w.pos++
	return va
}
