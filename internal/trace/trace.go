// Package trace is the simulator's observability layer: a process-wide
// event buffer and counter registry that every subsystem — the kernel
// fault path, the buddy allocator, the TLB, the page walker, the
// virtualization layer, and the sim engine — reports into through one
// nil-able *Tracer.
//
// The central contract is that tracing is free when off. Every
// instrumentation site guards on a nil Tracer (or a nil tracer field
// set from one), so the disabled path costs one predictable branch:
// zero heap allocations on the steady-state access loop (pinned by
// TestRunZeroAllocs) and byte-identical experiment tables (pinned by
// TestGoldenTablesWithTracingEnabled — tracing *enabled* must not
// change them either, since the tracer only observes).
//
// Timestamps are a tracer-owned logical sequence counter, not wall
// clock: two runs of the same deterministic simulation produce the
// same trace byte for byte. Simulated kernel time (the logical
// nanosecond clock) travels in event arguments instead, which is what
// cmd/tracestat's fault→promotion latency histogram consumes.
//
// A Tracer is safe for concurrent use: the experiment runner executes
// drivers in parallel, and all of them may share one tracer (cmd/
// reproduce -trace). Event order in the buffer is the lock-acquisition
// order; counters are exact even after the event buffer saturates
// (events past the cap are counted and dropped, never silently lost).
package trace

import "sync"

// Kind enumerates the event vocabulary. The names (see Kind.String)
// are the stable external identifiers exporters and cmd/tracestat key
// on; DESIGN.md §9 documents the per-kind argument meaning.
type Kind uint8

const (
	// EvFault4K is an anonymous 4 KiB demand fault (va, lat_ns, clock).
	EvFault4K Kind = iota
	// EvFaultHuge is an anonymous 2 MiB (THP) fault (va, lat_ns, clock).
	EvFaultHuge
	// EvFaultCoW is a copy-on-write fault (va, lat_ns, clock).
	EvFaultCoW
	// EvFaultFile is a page-cache fault (va, lat_ns, clock).
	EvFaultFile
	// EvFaultEager is an eager pre-allocation event (va, lat_ns, clock).
	EvFaultEager
	// EvCAPlace is a CA paging placement decision: a next-fit search
	// anchored a new tracked offset (va, offset, pages).
	EvCAPlace
	// EvCATargetHit is a successful targeted allocation (va, pfn, order).
	EvCATargetHit
	// EvCAFallback is a CA target miss that fell back to the default
	// allocator (va, order).
	EvCAFallback
	// EvPromote is an Ingens huge-page promotion (va, pfn, clock).
	EvPromote
	// EvDemote is a huge-page demotion (va, pfn, clock). Reserved: the
	// simulator currently has no demotion path (nothing splits a huge
	// mapping back to base pages), so this kind is never emitted.
	EvDemote
	// EvMigrate is a page migration (va, pfn, pages).
	EvMigrate
	// EvIngensEpoch spans one Ingens scan epoch (promotions, 0, clock).
	EvIngensEpoch
	// EvRangerEpoch spans one Ranger defrag epoch (migrated, 0, clock).
	EvRangerEpoch
	// EvBuddySplit is one split step: an order-`order` block at pfn
	// split into two halves (zone, pfn, order).
	EvBuddySplit
	// EvBuddyCoalesce is one coalesce step: two buddies merged into the
	// order-`order` block at pfn (zone, pfn, order).
	EvBuddyCoalesce
	// EvBuddyDepth is a free-list depth sample (zone, order, blocks).
	EvBuddyDepth
	// EvBuddyFrag is a fragmentation-score sample (zone, permille).
	EvBuddyFrag
	// EvTLBMiss is a last-level TLB miss (va).
	EvTLBMiss
	// EvTLBEvict is a valid-entry eviction (tag, huge).
	EvTLBEvict
	// EvWalkNative spans a native page walk; duration is the walk cost
	// in cycles (va, level, refs).
	EvWalkNative
	// EvWalk2D spans a nested 2D walk composition; duration is the walk
	// cost in cycles (va, refs, levels packed guest<<8|host).
	EvWalk2D
	// EvSpotPredict is a correct SpOT prediction (pc, va).
	EvSpotPredict
	// EvSpotMispredict is a SpOT misprediction (pc, va).
	EvSpotMispredict
	// EvNestedFault is a host-side (EPT-style) fault taken while
	// backing a guest access (gva, gpa).
	EvNestedFault
	// EvSimBatch spans one sim.Run access batch (n, misses, faults —
	// the latter two cumulative at batch end).
	EvSimBatch
	// EvPhase spans a named driver phase; A is the interned name id,
	// resolved back to the name on export.
	EvPhase
	// EvAgingSnapshot marks one aging-campaign snapshot (step,
	// rss_pages, frag_permille); the full per-snapshot state rides the
	// "aging.*" gauges sampled at the same instant.
	EvAgingSnapshot
	// EvShardEpoch spans one shard's parallel epoch step of a sharded
	// aging campaign (shard, step, clock_ns). The Chrome exporter
	// renders each shard on its own lane.
	EvShardEpoch
	// EvShardBarrier spans the serial epoch barrier that merges
	// cross-shard effects — deferred OOM reclaim and page-cache churn —
	// in shard-index order (step, retried, clock_ns).
	EvShardBarrier
	// EvReplayBatch spans one trace-replay progress window of a shard
	// stream (shard, events, faults): the replay engine emits one per
	// SampleEvery applied events. Like EvShardEpoch it is re-homed onto
	// the shard's dynamic lane by the Chrome exporter.
	EvReplayBatch

	numKinds
)

// kindNames are the stable exported identifiers, index-aligned with
// the Kind constants.
var kindNames = [numKinds]string{
	"fault.4k", "fault.huge", "fault.cow", "fault.file", "fault.eager",
	"ca.place", "ca.target_hit", "ca.fallback",
	"promote", "demote", "migrate",
	"daemon.ingens", "daemon.ranger",
	"buddy.split", "buddy.coalesce", "buddy.depth", "buddy.frag",
	"tlb.miss", "tlb.evict",
	"walk.native", "walk.2d",
	"spot.predict", "spot.mispredict",
	"nested.fault",
	"sim.batch", "phase",
	"aging.snapshot",
	"shard.epoch", "shard.barrier",
	"replay.batch",
}

// String returns the stable event-kind name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// NumKinds returns the size of the event vocabulary.
func NumKinds() int { return int(numKinds) }

// Event is one recorded event. TS is the logical sequence timestamp;
// Dur is nonzero for spans (sequence distance, or model cycles for
// walk spans). A, B, C are kind-specific arguments (see the Kind docs).
type Event struct {
	TS   uint64
	Dur  uint64
	A    uint64
	B    uint64
	C    uint64
	Kind Kind
}

// DefaultMaxEvents bounds the event buffer of New: large enough for a
// smoke-scale reproduction run, small enough that a full-scale sweep
// cannot exhaust memory. Counters stay exact past the cap; further
// events are dropped and counted.
const DefaultMaxEvents = 4 << 20

// counterRow is one Sample snapshot: every kind counter plus every
// registered gauge at a logical timestamp.
type counterRow struct {
	ts     uint64
	kinds  [numKinds]uint64
	gauges []uint64
}

// Tracer collects events, counters, and gauges. The zero value is not
// usable; construct with New or NewCapped. All methods are safe on a
// nil receiver (they no-op), which is how instrumented code stays
// branch-only when tracing is off.
type Tracer struct {
	mu sync.Mutex

	max     int
	events  []Event
	dropped uint64
	seq     uint64

	kindCount [numKinds]uint64

	gaugeNames []string
	gaugeIdx   map[string]int
	gauges     []uint64

	samples []counterRow

	phases   []string
	phaseIdx map[string]int
}

// New creates a tracer with the default event-buffer cap.
func New() *Tracer { return NewCapped(DefaultMaxEvents) }

// NewCapped creates a tracer whose event buffer holds at most max
// events; further events increment the dropped counter (and their kind
// counters) without being stored.
func NewCapped(max int) *Tracer {
	if max < 0 {
		max = 0
	}
	return &Tracer{
		max:      max,
		gaugeIdx: make(map[string]int),
		phaseIdx: make(map[string]int),
	}
}

// record appends one event under the lock. ts == 0 means "stamp with
// the next sequence value".
func (t *Tracer) record(k Kind, ts, dur, a, b, c uint64) {
	t.mu.Lock()
	t.seq++
	if ts == 0 {
		ts = t.seq
	}
	t.kindCount[k]++
	if len(t.events) < t.max {
		t.events = append(t.events, Event{TS: ts, Dur: dur, A: a, B: b, C: c, Kind: k})
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Emit records an instant event of kind k with arguments a, b, c.
func (t *Tracer) Emit(k Kind, a, b, c uint64) {
	if t == nil {
		return
	}
	t.record(k, 0, 0, a, b, c)
}

// Start opens a span: it returns the logical timestamp EmitSpan closes
// against. On a nil tracer it returns 0, and the matching EmitSpan is
// a no-op, so span sites need no separate guard.
func (t *Tracer) Start() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	t.seq++
	s := t.seq
	t.mu.Unlock()
	return s
}

// EmitSpan records a span event opened at start (a Start return
// value): its timestamp is start and its duration the sequence
// distance to now — "how many events happened inside".
func (t *Tracer) EmitSpan(k Kind, start, a, b, c uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.seq++
	ts := start
	if ts == 0 || ts > t.seq {
		ts = t.seq
	}
	t.kindCount[k]++
	if len(t.events) < t.max {
		t.events = append(t.events, Event{TS: ts, Dur: t.seq - ts, A: a, B: b, C: c, Kind: k})
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// EmitDur records a span at the current timestamp with an explicit
// duration in the caller's unit — the walk spans use model cycles.
func (t *Tracer) EmitDur(k Kind, dur, a, b, c uint64) {
	if t == nil {
		return
	}
	t.record(k, 0, dur, a, b, c)
}

// EmitPhase closes a named phase span opened at start: the name is
// interned and travels as the A argument, resolved on export.
func (t *Tracer) EmitPhase(name string, start uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	id, ok := t.phaseIdx[name]
	if !ok {
		id = len(t.phases)
		t.phases = append(t.phases, name)
		t.phaseIdx[name] = id
	}
	t.seq++
	ts := start
	if ts == 0 || ts > t.seq {
		ts = t.seq
	}
	t.kindCount[EvPhase]++
	if len(t.events) < t.max {
		t.events = append(t.events, Event{TS: ts, Dur: t.seq - ts, A: uint64(id), Kind: EvPhase})
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Gauge registers (or looks up) a named gauge in the counter registry
// and returns its id for SetGauge. Registration is idempotent: the
// same name always maps to the same id. Returns -1 on a nil tracer,
// which SetGauge ignores.
func (t *Tracer) Gauge(name string) int {
	if t == nil {
		return -1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.gaugeIdx[name]; ok {
		return id
	}
	id := len(t.gaugeNames)
	t.gaugeNames = append(t.gaugeNames, name)
	t.gauges = append(t.gauges, 0)
	t.gaugeIdx[name] = id
	return id
}

// SetGauge sets a registered gauge's current value. Invalid ids
// (including Gauge's nil-tracer -1) are ignored.
func (t *Tracer) SetGauge(id int, v uint64) {
	if t == nil || id < 0 {
		return
	}
	t.mu.Lock()
	if id < len(t.gauges) {
		t.gauges[id] = v
	}
	t.mu.Unlock()
}

// Sample snapshots every kind counter and gauge into the counter time
// series WriteCounterCSV exports. Call sites own the cadence: the
// daemons sample per epoch, sim.Run per access batch.
func (t *Tracer) Sample() {
	if t == nil {
		return
	}
	t.mu.Lock()
	row := counterRow{ts: t.seq, kinds: t.kindCount}
	row.gauges = append(row.gauges, t.gauges...)
	t.samples = append(t.samples, row)
	t.mu.Unlock()
}

// Count returns how many events of kind k were emitted (stored or
// dropped). Zero on a nil tracer.
func (t *Tracer) Count(k Kind) uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.kindCount[k]
}

// TotalEvents returns the total emitted event count across all kinds,
// including dropped events.
func (t *Tracer) TotalEvents() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var n uint64
	for _, c := range t.kindCount {
		n += c
	}
	return n
}

// Dropped returns how many events the buffer cap discarded.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// GaugeValue returns a registered gauge's current value by name.
func (t *Tracer) GaugeValue(name string) (uint64, bool) {
	if t == nil {
		return 0, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id, ok := t.gaugeIdx[name]
	if !ok {
		return 0, false
	}
	return t.gauges[id], true
}

// Events returns a copy of the stored event buffer in emission order.
// Nil on a nil tracer.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// phaseName resolves an interned phase id (EvPhase's A argument).
func (t *Tracer) phaseName(id uint64) string {
	if id < uint64(len(t.phases)) {
		return t.phases[id]
	}
	return "phase"
}
