package trace

import (
	"sync"
	"testing"
)

// TestNilTracerIsSafe pins the zero-cost contract's API half: every
// method no-ops (or returns a zero value) on a nil receiver, so
// instrumentation sites need exactly one branch.
func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(EvFault4K, 1, 2, 3)
	tr.EmitDur(EvWalkNative, 10, 1, 2, 3)
	tr.EmitSpan(EvSimBatch, tr.Start(), 1, 2, 3)
	tr.EmitPhase("setup", tr.Start())
	tr.SetGauge(tr.Gauge("g"), 7)
	tr.Sample()
	if got := tr.Start(); got != 0 {
		t.Errorf("nil Start() = %d, want 0", got)
	}
	if got := tr.Gauge("g"); got != -1 {
		t.Errorf("nil Gauge() = %d, want -1", got)
	}
	if tr.Count(EvFault4K) != 0 || tr.TotalEvents() != 0 || tr.Dropped() != 0 {
		t.Error("nil tracer reported nonzero counts")
	}
	if _, ok := tr.GaugeValue("g"); ok {
		t.Error("nil GaugeValue() reported a gauge")
	}
	if tr.Events() != nil {
		t.Error("nil Events() != nil")
	}
}

func TestCountsAndEvents(t *testing.T) {
	tr := New()
	tr.Emit(EvFault4K, 0x1000, 600, 1000)
	tr.Emit(EvFault4K, 0x2000, 600, 2000)
	tr.Emit(EvTLBMiss, 0x3000, 0, 0)
	if got := tr.Count(EvFault4K); got != 2 {
		t.Errorf("Count(EvFault4K) = %d, want 2", got)
	}
	if got := tr.TotalEvents(); got != 3 {
		t.Errorf("TotalEvents = %d, want 3", got)
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("stored %d events, want 3", len(evs))
	}
	// Logical timestamps are strictly increasing in emission order.
	for i := 1; i < len(evs); i++ {
		if evs[i].TS <= evs[i-1].TS {
			t.Errorf("timestamps not increasing: evs[%d].TS=%d after %d", i, evs[i].TS, evs[i-1].TS)
		}
	}
	if e := evs[0]; e.Kind != EvFault4K || e.A != 0x1000 || e.B != 600 || e.C != 1000 {
		t.Errorf("event args not preserved: %+v", e)
	}
}

func TestBufferCapDropsButCounts(t *testing.T) {
	tr := NewCapped(2)
	for i := 0; i < 5; i++ {
		tr.Emit(EvBuddySplit, uint64(i), 0, 0)
	}
	if got := len(tr.Events()); got != 2 {
		t.Errorf("stored %d events, want 2 (cap)", got)
	}
	if got := tr.Dropped(); got != 3 {
		t.Errorf("Dropped = %d, want 3", got)
	}
	// Counters are exact past saturation.
	if got := tr.Count(EvBuddySplit); got != 5 {
		t.Errorf("Count = %d, want 5 despite drops", got)
	}
}

func TestGaugeRegistryIdempotent(t *testing.T) {
	tr := New()
	a := tr.Gauge("buddy.z0.frag")
	b := tr.Gauge("buddy.z0.o3")
	if a == b {
		t.Fatal("distinct names share an id")
	}
	if again := tr.Gauge("buddy.z0.frag"); again != a {
		t.Errorf("re-registration changed id: %d != %d", again, a)
	}
	tr.SetGauge(a, 42)
	if v, ok := tr.GaugeValue("buddy.z0.frag"); !ok || v != 42 {
		t.Errorf("GaugeValue = %d,%v, want 42,true", v, ok)
	}
	tr.SetGauge(999, 1) // invalid id is ignored, not a panic
	if _, ok := tr.GaugeValue("absent"); ok {
		t.Error("unregistered gauge reported present")
	}
}

func TestSpans(t *testing.T) {
	tr := New()
	start := tr.Start()
	tr.Emit(EvFault4K, 1, 0, 0)
	tr.Emit(EvFault4K, 2, 0, 0)
	tr.EmitSpan(EvSimBatch, start, 10, 20, 30)
	evs := tr.Events()
	span := evs[len(evs)-1]
	if span.Kind != EvSimBatch || span.TS != start {
		t.Fatalf("span not anchored at start: %+v", span)
	}
	// Start ticked seq to 1; two faults and the close tick it to 4.
	if span.Dur != 3 {
		t.Errorf("span Dur = %d, want 3 (sequence distance)", span.Dur)
	}

	// A stale start beyond the current seq clamps instead of underflowing.
	tr2 := New()
	tr2.EmitSpan(EvSimBatch, 99, 0, 0, 0)
	if e := tr2.Events()[0]; e.TS != 1 || e.Dur != 0 {
		t.Errorf("stale start not clamped: %+v", e)
	}
}

func TestPhaseInterning(t *testing.T) {
	tr := New()
	tr.EmitPhase("setup", tr.Start())
	tr.EmitPhase("settle", tr.Start())
	tr.EmitPhase("setup", tr.Start())
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("stored %d events, want 3", len(evs))
	}
	if evs[0].A != evs[2].A {
		t.Errorf("same phase name interned to different ids: %d != %d", evs[0].A, evs[2].A)
	}
	if evs[0].A == evs[1].A {
		t.Error("distinct phase names share an id")
	}
	if got := tr.phaseName(evs[1].A); got != "settle" {
		t.Errorf("phaseName = %q, want settle", got)
	}
}

func TestSampleSnapshotsCounters(t *testing.T) {
	tr := New()
	g := tr.Gauge("frag")
	tr.Emit(EvFault4K, 1, 0, 0)
	tr.SetGauge(g, 100)
	tr.Sample()
	tr.Emit(EvFault4K, 2, 0, 0)
	tr.SetGauge(g, 200)
	tr.Sample()
	if len(tr.samples) != 2 {
		t.Fatalf("got %d samples, want 2", len(tr.samples))
	}
	if tr.samples[0].kinds[EvFault4K] != 1 || tr.samples[1].kinds[EvFault4K] != 2 {
		t.Errorf("cumulative kind counts wrong: %d, %d",
			tr.samples[0].kinds[EvFault4K], tr.samples[1].kinds[EvFault4K])
	}
	if tr.samples[0].gauges[g] != 100 || tr.samples[1].gauges[g] != 200 {
		t.Errorf("gauge snapshots wrong: %d, %d", tr.samples[0].gauges[g], tr.samples[1].gauges[g])
	}
}

// TestConcurrentEmit exercises the tracer the way the experiment runner
// does — many goroutines sharing one tracer — and is the test -race
// watches.
func TestConcurrentEmit(t *testing.T) {
	tr := NewCapped(1 << 10)
	const (
		workers = 8
		each    = 1000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := tr.Gauge("g")
			for i := 0; i < each; i++ {
				tr.Emit(EvTLBMiss, uint64(i), 0, 0)
				tr.EmitSpan(EvSimBatch, tr.Start(), 1, 2, 3)
				tr.EmitPhase("p", tr.Start())
				tr.SetGauge(g, uint64(i))
				if i%100 == 0 {
					tr.Sample()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Count(EvTLBMiss); got != workers*each {
		t.Errorf("Count(EvTLBMiss) = %d, want %d", got, workers*each)
	}
	if got := tr.TotalEvents(); got != 3*workers*each {
		t.Errorf("TotalEvents = %d, want %d", got, 3*workers*each)
	}
	if stored, dropped := uint64(len(tr.Events())), tr.Dropped(); stored+dropped != 3*workers*each {
		t.Errorf("stored %d + dropped %d != emitted %d", stored, dropped, 3*workers*each)
	}
}

func TestKindNamesComplete(t *testing.T) {
	seen := map[string]Kind{}
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		if name == "" || name == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("kinds %d and %d share the name %q", prev, k, name)
		}
		seen[name] = k
	}
	if numKinds.String() != "unknown" {
		t.Error("out-of-range kind should stringify as unknown")
	}
}
