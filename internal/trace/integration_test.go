package trace_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/mem/addr"
	"repro/internal/mem/zone"
	"repro/internal/osim"
	"repro/internal/osim/daemon"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// TestEndToEndTraceCapture runs a small but complete simulation — the
// Ingens configuration, where every instrumented layer is active: 4 KiB
// demand faults, buddy splits, daemon promotion epochs, then a measured
// phase through the TLB and page walker — and asserts the tracer saw
// every layer and exports loadable Chrome JSON.
func TestEndToEndTraceCapture(t *testing.T) {
	tr := trace.NewCapped(1 << 18)
	m := zone.NewMachine(zone.Config{
		ZonePages: []uint64{160 * addr.MaxOrderPages, 160 * addr.MaxOrderPages},
	})
	k := osim.NewKernel(m, osim.DefaultPolicy{})
	k.BootReserve(1)
	k.SetTracer(tr)
	ing := daemon.NewIngens(k)

	env := workloads.NewNativeEnv(k, 0)
	env.Daemons = []workloads.Daemon{ing}
	w := workloads.ByName("pagerank")
	if err := w.Setup(env, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		k.Tick(2_100_000)
		ing.Maybe()
	}
	res, err := sim.Run(env, w.Stream(rand.New(rand.NewSource(2)), 20_000),
		sim.Config{EnableSchemes: true, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses == 0 {
		t.Fatal("measured phase produced no TLB misses; test machinery broken")
	}

	for _, k := range []trace.Kind{
		trace.EvFault4K,     // population demand faults
		trace.EvBuddySplit,  // allocator split steps feeding them
		trace.EvIngensEpoch, // daemon scan spans
		trace.EvPromote,     // promotions during settle
		trace.EvBuddyDepth,  // per-epoch free-list samples
		trace.EvTLBMiss,     // measured phase misses
		trace.EvWalkNative,  // walks those misses triggered
		trace.EvSimBatch,    // batch spans around them
	} {
		if tr.Count(k) == 0 {
			t.Errorf("no %s events captured", k)
		}
	}
	if tr.TotalEvents() == 0 || len(tr.Events()) == 0 {
		t.Fatal("tracer captured nothing")
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("Chrome export is not valid JSON:\n%.500s", buf.String())
	}
	var csvBuf bytes.Buffer
	if err := tr.WriteCounterCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if csvBuf.Len() == 0 {
		t.Fatal("counter CSV export empty")
	}
}

// TestDetachedTracerStops pins the detach half of the lifecycle:
// SetTracer(nil) really unhooks every layer, so a detached system emits
// nothing more.
func TestDetachedTracerStops(t *testing.T) {
	tr := trace.New()
	m := zone.NewMachine(zone.Config{ZonePages: []uint64{8 * addr.MaxOrderPages}})
	k := osim.NewKernel(m, osim.DefaultPolicy{})
	k.BootReserve(1)
	k.SetTracer(tr)

	env := workloads.NewNativeEnv(k, 0)
	v, err := env.MMap(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Populate(v); err != nil {
		t.Fatal(err)
	}
	before := tr.TotalEvents()
	if before == 0 {
		t.Fatal("attached tracer captured nothing")
	}

	k.SetTracer(nil)
	v2, err := env.MMap(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Populate(v2); err != nil {
		t.Fatal(err)
	}
	if after := tr.TotalEvents(); after != before {
		t.Errorf("detached system still traced: %d -> %d events", before, after)
	}
}
