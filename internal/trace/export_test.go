package trace

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

// chromeDoc mirrors the wire schema for round-tripping through
// encoding/json, the way Perfetto's importer reads it.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   uint64         `json:"ts"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Dur  uint64         `json:"dur"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func exportChrome(t *testing.T, tr *Tracer) chromeDoc {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter wrote invalid JSON: %v\n%s", err, buf.String())
	}
	return doc
}

func TestChromeTraceSchema(t *testing.T) {
	tr := New()
	tr.Emit(EvFault4K, 0x1000, 600, 5000)
	start := tr.Start()
	tr.EmitSpan(EvIngensEpoch, start, 3, 0, 9000)
	tr.EmitDur(EvWalkNative, 24, 0x2000, 1, 4)
	tr.Emit(EvBuddyDepth, 0, 3, 17)
	tr.Emit(EvBuddyFrag, 1, 250, 0)
	tr.EmitPhase("xsbench/setup", tr.Start())

	doc := exportChrome(t, tr)

	byName := map[string][]int{}
	for i, e := range doc.TraceEvents {
		byName[e.Name] = append(byName[e.Name], i)
		if e.Name == "" || e.Ph == "" {
			t.Errorf("event %d missing name/ph: %+v", i, e)
		}
		if e.PID != 1 {
			t.Errorf("event %d pid = %d, want 1", i, e.PID)
		}
		if e.Ph != "M" && e.TID == 0 {
			t.Errorf("event %d has no lane tid: %+v", i, e)
		}
	}

	// Metadata names the process and every lane.
	if len(byName["process_name"]) != 1 || len(byName["thread_name"]) != len(laneNames) {
		t.Errorf("metadata events: process=%d threads=%d, want 1 and %d",
			len(byName["process_name"]), len(byName["thread_name"]), len(laneNames))
	}

	fault := doc.TraceEvents[byName["fault.4k"][0]]
	if fault.Ph != "i" {
		t.Errorf("fault ph = %q, want i", fault.Ph)
	}
	if fault.Args["va"] != float64(0x1000) || fault.Args["lat_ns"] != float64(600) || fault.Args["clock"] != float64(5000) {
		t.Errorf("fault args wrong: %v", fault.Args)
	}

	epoch := doc.TraceEvents[byName["daemon.ingens"][0]]
	if epoch.Ph != "X" || epoch.TS != start || epoch.Dur == 0 {
		t.Errorf("epoch span wrong: %+v", epoch)
	}
	if epoch.Args["promotions"] != float64(3) {
		t.Errorf("epoch args wrong: %v", epoch.Args)
	}

	walk := doc.TraceEvents[byName["walk.native"][0]]
	if walk.Ph != "X" || walk.Dur != 24 {
		t.Errorf("walk span should carry its cycle cost as dur: %+v", walk)
	}

	depth := doc.TraceEvents[byName["buddy.z0.free"][0]]
	if depth.Ph != "C" || depth.Args["o3"] != float64(17) {
		t.Errorf("depth counter wrong: %+v", depth)
	}
	frag := doc.TraceEvents[byName["buddy.z1.frag"][0]]
	if frag.Ph != "C" || frag.Args["permille"] != float64(250) {
		t.Errorf("frag counter wrong: %+v", frag)
	}

	// Phase spans export under their interned name.
	phase := doc.TraceEvents[byName["xsbench/setup"][0]]
	if phase.Ph != "X" {
		t.Errorf("phase ph = %q, want X", phase.Ph)
	}
}

func TestChromeTraceZeroDurSpanVisible(t *testing.T) {
	tr := New()
	tr.EmitSpan(EvSimBatch, tr.Start(), 0, 0, 0)
	doc := exportChrome(t, tr)
	for _, e := range doc.TraceEvents {
		if e.Name == "sim.batch" && e.Dur == 0 {
			t.Error("zero-width span exported with dur 0 (invisible in Perfetto)")
		}
	}
}

func TestChromeTraceNilTracer(t *testing.T) {
	var tr *Tracer
	doc := exportChrome(t, tr)
	if len(doc.TraceEvents) != 0 {
		t.Errorf("nil tracer exported %d events, want 0", len(doc.TraceEvents))
	}
}

func TestCounterCSVRoundTrip(t *testing.T) {
	tr := New()
	g := tr.Gauge("buddy.z0.frag")
	tr.Emit(EvFault4K, 1, 0, 0)
	tr.SetGauge(g, 111)
	tr.Sample()
	tr.Emit(EvPromote, 2, 0, 0)
	// A gauge registered after the first sample: old rows zero-fill.
	late := tr.Gauge("buddy.z1.frag")
	tr.SetGauge(late, 222)
	tr.Sample()

	var buf bytes.Buffer
	if err := tr.WriteCounterCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatalf("exporter wrote invalid CSV: %v\n%s", err, buf.String())
	}
	// Header + 2 samples + the synthesized final row.
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4:\n%s", len(rows), buf.String())
	}
	header := rows[0]
	if header[0] != "ts" {
		t.Errorf("first column = %q, want ts", header[0])
	}
	wantCols := 1 + NumKinds() + 2
	for i, r := range rows {
		if len(r) != wantCols {
			t.Errorf("row %d has %d columns, want %d", i, len(r), wantCols)
		}
	}
	col := func(name string) int {
		for i, h := range header {
			if h == name {
				return i
			}
		}
		t.Fatalf("column %q missing from header %v", name, header)
		return -1
	}
	cell := func(row, c int) uint64 {
		v, err := strconv.ParseUint(rows[row][c], 10, 64)
		if err != nil {
			t.Fatalf("row %d col %d: %v", row, c, err)
		}
		return v
	}
	f4k := col("ev.fault.4k")
	if cell(1, f4k) != 1 || cell(2, f4k) != 1 || cell(3, f4k) != 1 {
		t.Errorf("fault.4k column wrong: %v", buf.String())
	}
	prom := col("ev.promote")
	if cell(1, prom) != 0 || cell(2, prom) != 1 {
		t.Errorf("promote column should go 0 -> 1 across samples:\n%s", buf.String())
	}
	if c := col("buddy.z1.frag"); cell(1, c) != 0 || cell(2, c) != 222 {
		t.Errorf("late gauge should zero-fill old rows:\n%s", buf.String())
	}
	if c := col("buddy.z0.frag"); cell(1, c) != 111 {
		t.Errorf("gauge snapshot wrong:\n%s", buf.String())
	}

	// Determinism: a second export is byte-identical.
	var buf2 bytes.Buffer
	if err := tr.WriteCounterCSV(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("repeated CSV export differs")
	}
}

func TestCounterCSVNilTracer(t *testing.T) {
	var tr *Tracer
	var buf bytes.Buffer
	if err := tr.WriteCounterCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "ts\n" {
		t.Errorf("nil CSV = %q, want header only", buf.String())
	}
}

func TestCounterText(t *testing.T) {
	tr := NewCapped(1)
	tr.SetGauge(tr.Gauge("zz"), 9)
	tr.SetGauge(tr.Gauge("aa"), 4)
	tr.Emit(EvTLBMiss, 1, 0, 0)
	tr.Emit(EvTLBMiss, 2, 0, 0) // dropped by the cap
	var buf bytes.Buffer
	if err := tr.WriteCounterText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"events.total 2", "events.stored 1", "events.dropped 1", "ev.tlb.miss 2", "aa 4", "zz 9"} {
		if !strings.Contains(out, want) {
			t.Errorf("text dump missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "aa 4") > strings.Index(out, "zz 9") {
		t.Errorf("gauges not sorted by name:\n%s", out)
	}

	var nilBuf bytes.Buffer
	var nilTr *Tracer
	if err := nilTr.WriteCounterText(&nilBuf); err != nil {
		t.Fatal(err)
	}
	if nilBuf.String() != "trace: disabled\n" {
		t.Errorf("nil text = %q", nilBuf.String())
	}
}

// TestChromeTraceShardLanes checks the sharded-campaign export: each
// shard's epoch spans land on a dynamic per-shard lane with a
// "shard<N>" thread_name, while barrier spans stay on the aging lane.
func TestChromeTraceShardLanes(t *testing.T) {
	tr := New()
	for step := uint64(0); step < 2; step++ {
		for shard := uint64(0); shard < 3; shard++ {
			tr.EmitSpan(EvShardEpoch, tr.Start(), shard, step, 1000*(step+1))
		}
		tr.EmitSpan(EvShardBarrier, tr.Start(), step, 0, 1000*(step+1)+500)
	}

	doc := exportChrome(t, tr)

	names := map[int]string{} // tid -> thread_name metadata
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			names[e.TID], _ = e.Args["name"].(string)
		}
	}
	epochs, barriers := 0, 0
	for _, e := range doc.TraceEvents {
		switch e.Name {
		case "shard.epoch":
			epochs++
			shard, ok := e.Args["shard"].(float64)
			if !ok {
				t.Fatalf("shard.epoch missing shard arg: %+v", e)
			}
			wantTID := laneShardBase + int(shard)
			if e.TID != wantTID {
				t.Errorf("shard %v epoch on tid %d, want %d", shard, e.TID, wantTID)
			}
			if want := "shard" + strconv.Itoa(int(shard)); names[e.TID] != want {
				t.Errorf("tid %d named %q, want %q", e.TID, names[e.TID], want)
			}
		case "shard.barrier":
			barriers++
			if e.TID >= laneShardBase {
				t.Errorf("barrier span leaked onto a shard lane (tid %d)", e.TID)
			}
		}
	}
	if epochs != 6 || barriers != 2 {
		t.Fatalf("epochs=%d barriers=%d, want 6 and 2", epochs, barriers)
	}
}

// TestChromeTraceNoShardLanesWithoutShards pins that non-sharded
// traces emit no shard thread metadata at all.
func TestChromeTraceNoShardLanesWithoutShards(t *testing.T) {
	tr := New()
	tr.Emit(EvFault4K, 0x1000, 600, 5000)
	doc := exportChrome(t, tr)
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" && e.TID >= laneShardBase {
			t.Fatalf("unexpected shard lane metadata: %+v", e)
		}
	}
}
