package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Lanes group event kinds into Chrome-trace threads (tid) so Perfetto
// renders one track per subsystem.
const (
	laneKernel = 1 + iota
	laneDaemon
	laneBuddy
	laneTLB
	laneWalker
	laneVirt
	laneSim
	lanePhase
	laneAging
	laneReplay

	// laneShardBase is where the dynamic per-shard lanes start: shard s
	// of a sharded aging campaign renders at tid laneShardBase+s, named
	// "shard<s>". Kept clear of the fixed lanes above.
	laneShardBase = 32
)

var laneNames = map[int]string{
	laneKernel: "kernel",
	laneDaemon: "daemon",
	laneBuddy:  "buddy",
	laneTLB:    "tlb",
	laneWalker: "walker",
	laneVirt:   "virt",
	laneSim:    "sim",
	lanePhase:  "phase",
	laneAging:  "aging",
	laneReplay: "replay",
}

// kindLane maps every kind to its lane.
var kindLane = [numKinds]int{
	EvFault4K: laneKernel, EvFaultHuge: laneKernel, EvFaultCoW: laneKernel,
	EvFaultFile: laneKernel, EvFaultEager: laneKernel,
	EvCAPlace: laneKernel, EvCATargetHit: laneKernel, EvCAFallback: laneKernel,
	EvPromote: laneDaemon, EvDemote: laneDaemon, EvMigrate: laneDaemon,
	EvIngensEpoch: laneDaemon, EvRangerEpoch: laneDaemon,
	EvBuddySplit: laneBuddy, EvBuddyCoalesce: laneBuddy,
	EvBuddyDepth: laneBuddy, EvBuddyFrag: laneBuddy,
	EvTLBMiss: laneTLB, EvTLBEvict: laneTLB,
	EvWalkNative: laneWalker, EvWalk2D: laneWalker,
	EvSpotPredict: laneWalker, EvSpotMispredict: laneWalker,
	EvNestedFault: laneVirt,
	EvSimBatch:    laneSim, EvPhase: lanePhase,
	EvAgingSnapshot: laneAging,
	// EvShardEpoch is re-homed per event onto laneShardBase+shard in
	// the exporter; EvShardBarrier stays on the aging lane.
	EvShardEpoch: laneAging, EvShardBarrier: laneAging,
	// EvReplayBatch is re-homed onto the shard lane too; laneReplay is
	// its static home for traces without shard metadata.
	EvReplayBatch: laneReplay,
}

// kindArgs names each kind's A/B/C arguments for the Chrome export;
// an empty name omits that argument.
var kindArgs = [numKinds][3]string{
	EvFault4K:        {"va", "lat_ns", "clock"},
	EvFaultHuge:      {"va", "lat_ns", "clock"},
	EvFaultCoW:       {"va", "lat_ns", "clock"},
	EvFaultFile:      {"va", "lat_ns", "clock"},
	EvFaultEager:     {"va", "lat_ns", "clock"},
	EvCAPlace:        {"va", "offset", "pages"},
	EvCATargetHit:    {"va", "pfn", "order"},
	EvCAFallback:     {"va", "order", ""},
	EvPromote:        {"va", "pfn", "clock"},
	EvDemote:         {"va", "pfn", "clock"},
	EvMigrate:        {"va", "pfn", "pages"},
	EvIngensEpoch:    {"promotions", "", "clock"},
	EvRangerEpoch:    {"migrated", "", "clock"},
	EvBuddySplit:     {"zone", "pfn", "order"},
	EvBuddyCoalesce:  {"zone", "pfn", "order"},
	EvBuddyDepth:     {"zone", "order", "blocks"},
	EvBuddyFrag:      {"zone", "permille", ""},
	EvTLBMiss:        {"va", "", ""},
	EvTLBEvict:       {"tag", "huge", ""},
	EvWalkNative:     {"va", "level", "refs"},
	EvWalk2D:         {"va", "refs", "levels"},
	EvSpotPredict:    {"pc", "va", ""},
	EvSpotMispredict: {"pc", "va", ""},
	EvNestedFault:    {"gva", "gpa", ""},
	EvSimBatch:       {"n", "misses", "faults"},
	EvPhase:          {"", "", ""},
	EvAgingSnapshot:  {"step", "rss_pages", "frag_permille"},
	EvShardEpoch:     {"shard", "step", "clock"},
	EvShardBarrier:   {"step", "retried", "clock"},
	EvReplayBatch:    {"shard", "events", "faults"},
}

// spanKinds are exported as Chrome "X" (complete) events with a
// duration; everything else is an instant or a counter.
var spanKinds = map[Kind]bool{
	EvIngensEpoch: true, EvRangerEpoch: true,
	EvWalkNative: true, EvWalk2D: true,
	EvSimBatch: true, EvPhase: true,
	EvShardEpoch: true, EvShardBarrier: true,
	EvReplayBatch: true,
}

// counterKinds are exported as Chrome "C" (counter) events so Perfetto
// draws them as value tracks rather than instants.
var counterKinds = map[Kind]bool{EvBuddyDepth: true, EvBuddyFrag: true}

// chromeEvent is one entry of the Chrome trace-event format's
// traceEvents array. Every event carries name/ph/ts/pid/tid — the
// schema cmd/tracestat and the exporter tests key on.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   uint64         `json:"ts"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Dur  uint64         `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace exports the stored events as Chrome trace-event
// JSON ({"traceEvents":[...]}), loadable in Perfetto or
// chrome://tracing. Timestamps are the tracer's logical sequence
// numbers (the format nominally wants microseconds; Perfetto only
// needs monotonicity). Writes an empty document on a nil tracer.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	put := func(ev chromeEvent) error {
		buf, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		if _, err := bw.WriteString("\n"); err != nil {
			return err
		}
		_, err = bw.Write(buf)
		return err
	}

	if t != nil {
		if err := put(chromeEvent{Name: "process_name", Ph: "M", PID: 1, TID: 0,
			Args: map[string]any{"name": "memsim"}}); err != nil {
			return err
		}
		for _, tid := range []int{laneKernel, laneDaemon, laneBuddy, laneTLB, laneWalker, laneVirt, laneSim, lanePhase, laneAging, laneReplay} {
			if err := put(chromeEvent{Name: "thread_name", Ph: "M", PID: 1, TID: tid,
				Args: map[string]any{"name": laneNames[tid]}}); err != nil {
				return err
			}
		}

		t.mu.Lock()
		events := append([]Event(nil), t.events...)
		phases := append([]string(nil), t.phases...)
		t.mu.Unlock()

		// Shard epoch spans get one dynamic lane per shard; name every
		// lane the trace actually uses before emitting events.
		shards := -1
		for _, e := range events {
			if (e.Kind == EvShardEpoch || e.Kind == EvReplayBatch) && int(e.A) > shards {
				shards = int(e.A)
			}
		}
		for s := 0; s <= shards; s++ {
			if err := put(chromeEvent{Name: "thread_name", Ph: "M", PID: 1, TID: laneShardBase + s,
				Args: map[string]any{"name": fmt.Sprintf("shard%d", s)}}); err != nil {
				return err
			}
		}

		for _, e := range events {
			ce := chromeEvent{
				Name: e.Kind.String(),
				Ph:   "i",
				S:    "t",
				TS:   e.TS,
				PID:  1,
				TID:  kindLane[e.Kind],
			}
			if e.Kind == EvShardEpoch || e.Kind == EvReplayBatch {
				ce.TID = laneShardBase + int(e.A)
			}
			switch {
			case counterKinds[e.Kind]:
				// One counter track per zone; same-name counter events
				// merge into one multi-series track in Perfetto.
				ce.Ph, ce.S = "C", ""
				if e.Kind == EvBuddyDepth {
					ce.Name = fmt.Sprintf("buddy.z%d.free", e.A)
					ce.Args = map[string]any{fmt.Sprintf("o%d", e.B): e.C}
				} else {
					ce.Name = fmt.Sprintf("buddy.z%d.frag", e.A)
					ce.Args = map[string]any{"permille": e.B}
				}
			case spanKinds[e.Kind]:
				ce.Ph, ce.S = "X", ""
				ce.Dur = e.Dur
				if ce.Dur == 0 {
					ce.Dur = 1 // zero-width spans are invisible in Perfetto
				}
				if e.Kind == EvPhase {
					if e.A < uint64(len(phases)) {
						ce.Name = phases[e.A]
					}
				} else {
					ce.Args = argMap(e)
				}
			default:
				ce.Args = argMap(e)
			}
			if err := put(ce); err != nil {
				return err
			}
		}
	}

	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// argMap builds the kind-specific args object, omitting unnamed slots.
func argMap(e Event) map[string]any {
	names := kindArgs[e.Kind]
	vals := [3]uint64{e.A, e.B, e.C}
	m := make(map[string]any, 3)
	for i, n := range names {
		if n != "" {
			m[n] = vals[i]
		}
	}
	if len(m) == 0 {
		return nil
	}
	return m
}

// WriteCounterCSV exports the counter time series: one column per
// event kind (cumulative counts, prefixed "ev.") plus one per
// registered gauge, one row per Sample call, and a final row with the
// current values. Output is deterministic for a deterministic run.
func (t *Tracer) WriteCounterCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if t == nil {
		if _, err := bw.WriteString("ts\n"); err != nil {
			return err
		}
		return bw.Flush()
	}

	t.mu.Lock()
	gaugeNames := append([]string(nil), t.gaugeNames...)
	rows := append([]counterRow(nil), t.samples...)
	final := counterRow{ts: t.seq, kinds: t.kindCount}
	final.gauges = append(final.gauges, t.gauges...)
	t.mu.Unlock()
	rows = append(rows, final)

	if _, err := bw.WriteString("ts"); err != nil {
		return err
	}
	for k := Kind(0); k < numKinds; k++ {
		fmt.Fprintf(bw, ",ev.%s", k)
	}
	for _, g := range gaugeNames {
		fmt.Fprintf(bw, ",%s", g)
	}
	if err := bw.WriteByte('\n'); err != nil {
		return err
	}

	for _, r := range rows {
		fmt.Fprintf(bw, "%d", r.ts)
		for _, c := range r.kinds {
			fmt.Fprintf(bw, ",%d", c)
		}
		// Gauges registered after a sample was taken get zeros for the
		// old rows so every row has the full column count.
		for i := range gaugeNames {
			v := uint64(0)
			if i < len(r.gauges) {
				v = r.gauges[i]
			}
			fmt.Fprintf(bw, ",%d", v)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteCounterText dumps every kind counter, gauge, and the buffer
// totals in a stable human-readable order.
func (t *Tracer) WriteCounterText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if t == nil {
		if _, err := bw.WriteString("trace: disabled\n"); err != nil {
			return err
		}
		return bw.Flush()
	}

	t.mu.Lock()
	kinds := t.kindCount
	gaugeNames := append([]string(nil), t.gaugeNames...)
	gauges := append([]uint64(nil), t.gauges...)
	stored := len(t.events)
	dropped := t.dropped
	t.mu.Unlock()

	var total uint64
	for _, c := range kinds {
		total += c
	}
	fmt.Fprintf(bw, "events.total %d\n", total)
	fmt.Fprintf(bw, "events.stored %d\n", stored)
	fmt.Fprintf(bw, "events.dropped %d\n", dropped)
	for k := Kind(0); k < numKinds; k++ {
		fmt.Fprintf(bw, "ev.%s %d\n", k, kinds[k])
	}
	idx := make([]int, len(gaugeNames))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return gaugeNames[idx[a]] < gaugeNames[idx[b]] })
	for _, i := range idx {
		fmt.Fprintf(bw, "%s %d\n", gaugeNames[i], gauges[i])
	}
	return bw.Flush()
}
