// Package zone assembles the physical-memory substrate: a Machine is a
// set of NUMA zones, each combining a buddy allocator with its own
// contiguity map, mirroring Linux's per-node struct zone that the paper
// extends (§III-B: "a separate contiguity_map instance is maintained per
// NUMA node").
package zone

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/mem/addr"
	"repro/internal/mem/buddy"
	"repro/internal/mem/contigmap"
	"repro/internal/mem/frame"
	"repro/internal/trace"
)

// Zone is one NUMA node's memory: a PFN range, its buddy allocator, and
// its contiguity map.
type Zone struct {
	ID     int
	Base   addr.PFN
	Pages  uint64
	Buddy  *buddy.Buddy
	Contig *contigmap.Map
}

// Contains reports whether pfn belongs to this zone.
func (z *Zone) Contains(pfn addr.PFN) bool {
	return pfn >= z.Base && uint64(pfn-z.Base) < z.Pages
}

// FreePages returns the zone's free page count.
func (z *Zone) FreePages() uint64 { return z.Buddy.FreePages() }

// Machine is the whole physical address space: a shared frame table plus
// one or more zones. Allocation requests name a preferred zone and fall
// back to the others in order, like Linux zonelists.
type Machine struct {
	Frames *frame.Table
	Zones  []*Zone

	// Tracing state: the machine owns the per-zone free-list depth and
	// fragmentation gauges so TraceDepths can snapshot them in one call
	// from the machine's own driver thread (tracers are shared across
	// threads; machines are not).
	tr         *trace.Tracer
	depthGauge [][]int
	fragGauge  []int

	// geom keys the construction pool; empty for machines that must not
	// be pooled (shard views, which do not own their zones).
	geom string
}

// Config describes machine geometry.
type Config struct {
	// ZonePages is the page count of each zone (must be a multiple of
	// the MAX_ORDER block size).
	ZonePages []uint64
	// SortedMaxOrder enables the CA anti-fragmentation sorted list in
	// every zone.
	SortedMaxOrder bool
}

// pool holds recycled machines per geometry. Experiment grids build
// hundreds of identical host machines back to back; reusing the frame
// table and buddy link arrays turns construction from allocate-and-zero
// into one fill pass. Pristine state is history-independent — every
// byte a simulation can observe is rewritten by reset — so a pooled
// machine is indistinguishable from a fresh one (pinned by the golden
// tables, which exercise recycled machines on every grid driver).
var pool = struct {
	sync.Mutex
	machines map[string][]*Machine
}{machines: make(map[string][]*Machine)}

// key canonicalises the construction-relevant geometry.
func (cfg Config) key() string {
	var sb strings.Builder
	if cfg.SortedMaxOrder {
		sb.WriteByte('s')
	}
	for _, n := range cfg.ZonePages {
		fmt.Fprintf(&sb, ",%d", n)
	}
	return sb.String()
}

// NewMachine builds a machine with consecutive zones starting at PFN 0,
// reusing a recycled machine of identical geometry when one is pooled.
func NewMachine(cfg Config) *Machine {
	if len(cfg.ZonePages) == 0 {
		panic("zone: machine needs at least one zone")
	}
	key := cfg.key()
	pool.Lock()
	if ms := pool.machines[key]; len(ms) > 0 {
		m := ms[len(ms)-1]
		ms[len(ms)-1] = nil
		pool.machines[key] = ms[:len(ms)-1]
		pool.Unlock()
		m.reset()
		return m
	}
	pool.Unlock()

	var total uint64
	for _, n := range cfg.ZonePages {
		total += n
	}
	// Uninitialised table: the per-zone fills below cover every frame,
	// with the zone tag baked into the fill record instead of a second
	// per-frame pass.
	ft := frame.NewTableUninit(0, total)
	m := &Machine{Frames: ft, geom: key}
	base := addr.PFN(0)
	for i, n := range cfg.ZonePages {
		zoneFill(ft, base, n, i)
		b := buddy.NewPrefilled(ft, base, n)
		b.SetSorted(cfg.SortedMaxOrder)
		z := &Zone{
			ID:     i,
			Base:   base,
			Pages:  n,
			Buddy:  b,
			Contig: contigmap.New(ft, b),
		}
		m.Zones = append(m.Zones, z)
		base += addr.PFN(n)
	}
	return m
}

// zoneFill resets a zone's frame records to pristine free state.
func zoneFill(ft *frame.Table, base addr.PFN, n uint64, id int) {
	frame.Fill(ft.Slice(base, n), frame.Frame{
		State: frame.Free, BuddyOrder: -1, AllocOrder: -1, Zone: uint8(id),
	})
}

// reset rebuilds pristine machine state in place.
func (m *Machine) reset() {
	for _, z := range m.Zones {
		zoneFill(m.Frames, z.Base, z.Pages, z.ID)
		z.Buddy.Reset()
		z.Contig = contigmap.New(m.Frames, z.Buddy)
	}
	m.tr = nil
	m.depthGauge, m.fragGauge = nil, nil
}

// Recycle returns the machine to the construction pool. The caller must
// drop every reference to the machine, its zones, and its frame table:
// the next NewMachine of the same geometry receives them reset. View
// machines and hand-assembled machines are silently not pooled.
func (m *Machine) Recycle() {
	if m.geom == "" {
		return
	}
	pool.Lock()
	pool.machines[m.geom] = append(pool.machines[m.geom], m)
	pool.Unlock()
}

// View returns a machine exposing only the named zones, sharing the
// frame table and the zone objects themselves with the parent. A shard
// that owns a zone subset outright steps through a view: the view's
// zonelist scopes every allocation, free, and fit search to the owned
// zones, so concurrently stepped shards with disjoint views never
// touch the same buddy, contiguity map, or frame records. Views are
// never pooled (geom stays empty; Recycle is a no-op): the parent owns
// the substrate and must outlive every view.
func (m *Machine) View(zoneIdx ...int) *Machine {
	if len(zoneIdx) == 0 {
		panic("zone: view needs at least one zone")
	}
	v := &Machine{Frames: m.Frames}
	for _, i := range zoneIdx {
		if i < 0 || i >= len(m.Zones) {
			panic(fmt.Sprintf("zone: view index %d out of range [0,%d)", i, len(m.Zones)))
		}
		v.Zones = append(v.Zones, m.Zones[i])
	}
	return v
}

// SetTracer attaches (or, with nil, detaches) an event tracer to the
// machine and every zone's buddy allocator, and registers the per-zone
// free-list depth and fragmentation gauges ("buddy.z<id>.o<order>",
// "buddy.z<id>.frag"). When several machines share one tracer the
// gauge names collide by design: the last machine sampled wins, while
// the per-event streams (EvBuddyDepth/EvBuddyFrag carry the zone ID)
// stay distinct.
func (m *Machine) SetTracer(t *trace.Tracer) {
	m.tr = t
	for _, z := range m.Zones {
		z.Buddy.SetTracer(t, z.ID)
	}
	if t == nil {
		m.depthGauge, m.fragGauge = nil, nil
		return
	}
	m.depthGauge = make([][]int, len(m.Zones))
	m.fragGauge = make([]int, len(m.Zones))
	for i, z := range m.Zones {
		m.depthGauge[i] = make([]int, addr.MaxOrder+1)
		for o := 0; o <= addr.MaxOrder; o++ {
			m.depthGauge[i][o] = t.Gauge(fmt.Sprintf("buddy.z%d.o%d", z.ID, o))
		}
		m.fragGauge[i] = t.Gauge(fmt.Sprintf("buddy.z%d.frag", z.ID))
	}
}

// TraceDepths emits one free-list depth event per (zone, order) plus a
// fragmentation-score event per zone, and refreshes the matching
// gauges. No-op without a tracer. Callers own the cadence — the
// daemons call it per epoch, sim.Run per access batch — and must be
// the thread driving this machine.
func (m *Machine) TraceDepths() {
	if m.tr == nil {
		return
	}
	for i, z := range m.Zones {
		for o := 0; o <= addr.MaxOrder; o++ {
			n := z.Buddy.FreeBlocks(o)
			m.tr.Emit(trace.EvBuddyDepth, uint64(z.ID), uint64(o), n)
			m.tr.SetGauge(m.depthGauge[i][o], n)
		}
		fs := z.Buddy.FragScore()
		m.tr.Emit(trace.EvBuddyFrag, uint64(z.ID), fs, 0)
		m.tr.SetGauge(m.fragGauge[i], fs)
	}
}

// TotalPages returns the machine's total page count.
func (m *Machine) TotalPages() uint64 {
	var n uint64
	for _, z := range m.Zones {
		n += z.Pages
	}
	return n
}

// FreePages returns the machine-wide free page count.
func (m *Machine) FreePages() uint64 {
	var n uint64
	for _, z := range m.Zones {
		n += z.FreePages()
	}
	return n
}

// Mutations sums the zones' buddy mutation counters. On a shard view it
// covers exactly the owned zones: equal readings bracket a window with
// no free-pool changes visible to this machine.
func (m *Machine) Mutations() uint64 {
	var n uint64
	for _, z := range m.Zones {
		n += z.Buddy.Mutations()
	}
	return n
}

// ZoneOf returns the zone owning pfn, or nil.
func (m *Machine) ZoneOf(pfn addr.PFN) *Zone {
	for _, z := range m.Zones {
		if z.Contains(pfn) {
			return z
		}
	}
	return nil
}

// zonelist visits zones in allocation preference order starting from
// the preferred zone, stopping early when fn returns true. Allocation
// sits on the fault hot path, so the walk materialises no slice.
func (m *Machine) zonelist(preferred int, fn func(z *Zone) bool) {
	n := len(m.Zones)
	if preferred < 0 || preferred >= n {
		preferred = 0
	}
	for i := 0; i < n; i++ {
		if fn(m.Zones[(preferred+i)%n]) {
			return
		}
	}
}

// AllocBlock allocates a 2^order block, preferring the given zone and
// falling back across the zonelist.
func (m *Machine) AllocBlock(preferred, order int) (addr.PFN, error) {
	var out addr.PFN
	err := buddy.ErrNoMemory
	m.zonelist(preferred, func(z *Zone) bool {
		pfn, e := z.Buddy.AllocBlock(order)
		if e != nil {
			return false
		}
		out, err = pfn, nil
		return true
	})
	return out, err
}

// AllocBlockAt performs a targeted allocation wherever pfn lives.
func (m *Machine) AllocBlockAt(pfn addr.PFN, order int) error {
	z := m.ZoneOf(pfn)
	if z == nil {
		return buddy.ErrNotFree
	}
	return z.Buddy.AllocBlockAt(pfn, order)
}

// FreeBlock returns a block to its owning zone.
func (m *Machine) FreeBlock(pfn addr.PFN, order int) {
	z := m.ZoneOf(pfn)
	if z == nil {
		panic(fmt.Sprintf("zone: freeing unowned PFN %d", pfn))
	}
	z.Buddy.FreeBlock(pfn, order)
}

// FreeRange returns an arbitrary run to its owning zone(s).
func (m *Machine) FreeRange(pfn addr.PFN, npages uint64) {
	for npages > 0 {
		z := m.ZoneOf(pfn)
		if z == nil {
			panic(fmt.Sprintf("zone: freeing unowned PFN %d", pfn))
		}
		n := npages
		if end := uint64(z.Base) + z.Pages; uint64(pfn)+n > end {
			n = end - uint64(pfn)
		}
		z.Buddy.FreeRange(pfn, n)
		pfn += addr.PFN(n)
		npages -= n
	}
}

// Reserve pins an arbitrary free run (hog / firmware holes).
func (m *Machine) Reserve(pfn addr.PFN, npages uint64) error {
	z := m.ZoneOf(pfn)
	if z == nil {
		return buddy.ErrNotFree
	}
	return z.Buddy.Reserve(pfn, npages)
}

// FindFit runs next-fit placement over the preferred zone's contiguity
// map, falling back across the zonelist when a zone's map is empty.
// It returns the zone chosen along with the placement.
func (m *Machine) FindFit(preferred int, pages uint64) (z *Zone, start addr.PFN, avail uint64, ok bool) {
	m.zonelist(preferred, func(cand *Zone) bool {
		s, a, found := cand.Contig.FindFit(pages)
		if !found {
			return false
		}
		z, start, avail, ok = cand, s, a, true
		return true
	})
	return z, start, avail, ok
}

// FreeBlockHistogram buckets the machine's free contiguity by size: the
// contiguity maps provide the >= MAX_ORDER unaligned clusters, and the
// buddy free lists provide the sub-MAX_ORDER blocks. Keys are sizes in
// pages (clusters use their exact page size; buddy blocks use
// 2^order). Used for the paper's Fig. 9.
func (m *Machine) FreeBlockHistogram() map[uint64]uint64 {
	h := make(map[uint64]uint64)
	for _, z := range m.Zones {
		z.Contig.Visit(func(c *contigmap.Cluster) { h[c.Pages()]++ })
		for o := 0; o < addr.MaxOrder; o++ {
			if n := z.Buddy.FreeBlocks(o); n > 0 {
				h[addr.OrderPages(o)] += n
			}
		}
	}
	return h
}
