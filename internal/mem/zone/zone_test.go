package zone

import (
	"testing"

	"repro/internal/mem/addr"
	"repro/internal/mem/buddy"
)

func twoZone(t testing.TB) *Machine {
	t.Helper()
	return NewMachine(Config{ZonePages: []uint64{4 * addr.MaxOrderPages, 4 * addr.MaxOrderPages}})
}

func TestMachineGeometry(t *testing.T) {
	m := twoZone(t)
	if len(m.Zones) != 2 {
		t.Fatalf("zones = %d", len(m.Zones))
	}
	if m.TotalPages() != 8*addr.MaxOrderPages {
		t.Fatalf("TotalPages = %d", m.TotalPages())
	}
	if m.FreePages() != m.TotalPages() {
		t.Fatal("fresh machine should be fully free")
	}
	if m.Zones[1].Base != 4*addr.MaxOrderPages {
		t.Fatalf("zone1 base = %d", m.Zones[1].Base)
	}
	if z := m.ZoneOf(4*addr.MaxOrderPages - 1); z.ID != 0 {
		t.Fatal("boundary frame should be zone 0")
	}
	if z := m.ZoneOf(4 * addr.MaxOrderPages); z.ID != 1 {
		t.Fatal("boundary frame should be zone 1")
	}
	if m.ZoneOf(addr.PFN(1<<40)) != nil {
		t.Fatal("out-of-range PFN should map to nil zone")
	}
	// Frame zone tags.
	if m.Frames.Get(0).Zone != 0 || m.Frames.Get(5*addr.MaxOrderPages).Zone != 1 {
		t.Fatal("frame zone tags wrong")
	}
}

func TestZonePreferenceAndFallback(t *testing.T) {
	m := twoZone(t)
	// Exhaust zone 0.
	for {
		if _, err := m.Zones[0].Buddy.AllocBlock(addr.MaxOrder); err != nil {
			break
		}
	}
	// Preferring zone 0 must fall back to zone 1.
	pfn, err := m.AllocBlock(0, addr.MaxOrder)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Zones[1].Contains(pfn) {
		t.Fatalf("fallback allocation landed at %d, not zone 1", pfn)
	}
}

func TestMachineExhaustion(t *testing.T) {
	m := NewMachine(Config{ZonePages: []uint64{addr.MaxOrderPages}})
	if _, err := m.AllocBlock(0, addr.MaxOrder); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AllocBlock(0, 0); err != buddy.ErrNoMemory {
		t.Fatalf("want ErrNoMemory, got %v", err)
	}
}

func TestTargetedAllocRouting(t *testing.T) {
	m := twoZone(t)
	target := addr.PFN(5*addr.MaxOrderPages + 17) // zone 1 interior
	if err := m.AllocBlockAt(target, 0); err != nil {
		t.Fatal(err)
	}
	if m.Zones[1].FreePages() != 4*addr.MaxOrderPages-1 {
		t.Fatal("zone 1 free count wrong")
	}
	m.FreeBlock(target, 0)
	if m.Zones[1].FreePages() != 4*addr.MaxOrderPages {
		t.Fatal("free did not return to zone 1")
	}
	if err := m.AllocBlockAt(addr.PFN(1<<40), 0); err != buddy.ErrNotFree {
		t.Fatalf("out-of-range targeted alloc: %v", err)
	}
}

func TestFreeRangeAcrossZones(t *testing.T) {
	m := twoZone(t)
	// Reserve a run straddling the zone boundary... Reserve is per-zone,
	// so reserve each side, then FreeRange across the boundary.
	boundary := addr.PFN(4 * addr.MaxOrderPages)
	if err := m.Reserve(boundary-100, 100); err != nil {
		t.Fatal(err)
	}
	if err := m.Reserve(boundary, 100); err != nil {
		t.Fatal(err)
	}
	m.FreeRange(boundary-100, 200)
	if m.FreePages() != m.TotalPages() {
		t.Fatalf("free pages = %d after cross-zone FreeRange", m.FreePages())
	}
}

func TestFindFitFallsBackAcrossZones(t *testing.T) {
	m := twoZone(t)
	// Exhaust zone 0 completely so its contiguity map is empty.
	for {
		if _, err := m.Zones[0].Buddy.AllocBlock(0); err != nil {
			break
		}
	}
	z, start, avail, ok := m.FindFit(0, addr.MaxOrderPages)
	if !ok || z.ID != 1 {
		t.Fatalf("FindFit fell back to zone %v ok=%v", z, ok)
	}
	if start != z.Base || avail != 4*addr.MaxOrderPages {
		t.Fatalf("placement = (%d, %d)", start, avail)
	}
}

func TestFreeBlockHistogram(t *testing.T) {
	m := NewMachine(Config{ZonePages: []uint64{4 * addr.MaxOrderPages}})
	h := m.FreeBlockHistogram()
	if h[4*addr.MaxOrderPages] != 1 {
		t.Fatalf("fresh machine histogram = %v", h)
	}
	// Allocate one 4K page: cluster shrinks, sub-MAX_ORDER blocks appear.
	if _, err := m.AllocBlock(0, 0); err != nil {
		t.Fatal(err)
	}
	h = m.FreeBlockHistogram()
	if h[3*addr.MaxOrderPages] != 1 {
		t.Fatalf("histogram after 4K alloc = %v", h)
	}
	var small uint64
	for size, n := range h {
		if size < addr.MaxOrderPages {
			small += size * n
		}
	}
	if small != addr.MaxOrderPages-1 {
		t.Fatalf("small free pages = %d, want %d", small, addr.MaxOrderPages-1)
	}
}

func TestSortedMaxOrderConfig(t *testing.T) {
	m := NewMachine(Config{ZonePages: []uint64{2 * addr.MaxOrderPages}, SortedMaxOrder: true})
	if !m.Zones[0].Buddy.Sorted() {
		t.Fatal("sorted flag not applied")
	}
	pfn, err := m.AllocBlock(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pfn != 0 {
		t.Fatalf("sorted machine first alloc at %d, want 0", pfn)
	}
}

func TestViewSharesZonesWithParent(t *testing.T) {
	m := twoZone(t)
	v := m.View(1)
	if len(v.Zones) != 1 || v.Zones[0] != m.Zones[1] {
		t.Fatal("view must alias the parent's zone objects")
	}
	if v.Frames != m.Frames {
		t.Fatal("view must share the parent's frame table")
	}
	// An allocation through the view is visible to the parent and
	// stays inside the viewed zone.
	pfn, err := v.AllocBlock(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Zones[1].Contains(pfn) {
		t.Fatalf("view allocation landed at %d, outside zone 1", pfn)
	}
	if m.FreePages() != m.TotalPages()-1 {
		t.Fatal("parent free count must reflect view allocations")
	}
	if v.FreePages() != 4*addr.MaxOrderPages-1 {
		t.Fatalf("view free pages = %d", v.FreePages())
	}
	// ZoneOf through the view only resolves viewed zones.
	if v.ZoneOf(0) != nil {
		t.Fatal("view must not resolve frames of unviewed zones")
	}
	if z := v.ZoneOf(pfn); z == nil || z.ID != 1 {
		t.Fatal("view must resolve its own zone")
	}
}

func TestViewNeverExhaustsUnviewedZones(t *testing.T) {
	m := twoZone(t)
	v := m.View(0)
	for {
		if _, err := v.AllocBlock(0, addr.MaxOrder); err != nil {
			break
		}
	}
	if m.Zones[0].FreePages() != 0 {
		t.Fatal("viewed zone should be exhausted")
	}
	if m.Zones[1].FreePages() != 4*addr.MaxOrderPages {
		t.Fatal("view must never touch unviewed zones")
	}
}

func TestViewRecycleIsNoOp(t *testing.T) {
	m := twoZone(t)
	v := m.View(0)
	if _, err := v.AllocBlock(0, 0); err != nil {
		t.Fatal(err)
	}
	v.Recycle() // views have no geometry key; must not enter the pool
	// A fresh machine with the view's shape must not hand back the
	// dirty view state.
	m2 := NewMachine(Config{ZonePages: []uint64{4 * addr.MaxOrderPages}})
	if m2.FreePages() != m2.TotalPages() {
		t.Fatal("recycled view leaked into the machine pool")
	}
}

func TestViewPanicsOnBadIndex(t *testing.T) {
	m := twoZone(t)
	for _, idx := range [][]int{nil, {2}, {-1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("View(%v) should panic", idx)
				}
			}()
			m.View(idx...)
		}()
	}
}
