// Package buddy implements a power-of-two buddy allocator equivalent to
// the Linux page allocator the paper builds on: per-order free lists for
// orders 0..addr.MaxOrder, block splitting and buddy coalescing, and two
// extensions CA paging needs:
//
//   - targeted allocation (AllocBlockAt): carve a specific physical block
//     out of whatever free block contains it, used when CA paging steers
//     a fault to Offset-predicted frames;
//   - an optionally address-sorted MAX_ORDER list (SetSorted), the
//     paper's anti-fragmentation optimisation that stops fallback 4 KiB
//     allocations from scattering across (and splitting) distant large
//     free blocks.
//
// The allocator also exposes insert/remove hooks on the MAX_ORDER list,
// which the contiguity map uses to track unaligned free clusters.
package buddy

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/mem/addr"
	"repro/internal/mem/frame"
	"repro/internal/trace"
)

// ErrNoMemory is returned when no free block can satisfy a request.
var ErrNoMemory = errors.New("buddy: out of memory")

// ErrNotFree is returned by targeted allocation when the requested block
// is not (fully) free.
var ErrNotFree = errors.New("buddy: target block not free")

// Hooks receive MAX_ORDER free-list membership changes; the contiguity
// map subscribes to these to maintain its cluster index.
type Hooks struct {
	// MaxOrderInsert is called after a MAX_ORDER block becomes free.
	MaxOrderInsert func(pfn addr.PFN)
	// MaxOrderRemove is called before a MAX_ORDER block leaves the
	// free list (allocation or split).
	MaxOrderRemove func(pfn addr.PFN)
}

// nilLink terminates the intrusive free lists.
const nilLink = int32(-1)

// Buddy is a buddy allocator managing the frame range
// [base, base+npages) within a shared frame table.
type Buddy struct {
	frames *frame.Table
	base   addr.PFN
	npages uint64

	// fs is the frame table's record slice for exactly [base,
	// base+npages), resolved once: the per-operation paths index it
	// directly instead of paying Get's bounds check per record touch.
	fs []frame.Frame

	// Intrusive doubly-linked free lists, one head per order. Links are
	// 32-bit frame indices relative to base (nilLink = none) rather
	// than full PFNs: half the link-array footprint, which is paid as
	// zeroing on every machine construction. Index order equals PFN
	// order, so the sorted-list comparisons work on indices directly.
	// next and prev are only meaningful for frames that are the head of
	// a free block currently on a list.
	heads [addr.MaxOrder + 1]int32
	next  []int32
	prev  []int32

	freePages     uint64
	perOrderCount [addr.MaxOrder + 1]uint64

	// nonEmpty is a bitmap of orders with a non-empty free list: bit o
	// is set iff heads[o] != nilLink. "Smallest free block >= order" is
	// then a TrailingZeros over the shifted bitmap instead of a list
	// scan, and "largest free order" a Len — the fault path asks both
	// on every allocation.
	nonEmpty uint32

	sorted bool
	hooks  Hooks

	// muts counts successful state-changing operations (allocations and
	// frees). Daemon fixed-point memos key on it to detect that a zone's
	// free pool changed between epochs without diffing any state.
	muts uint64

	// tr, when non-nil, receives split/coalesce events tagged with zid
	// (the owning zone's ID). Disabled tracing costs one nil check per
	// split/merge step.
	tr  *trace.Tracer
	zid uint64
}

// New creates a buddy allocator over [base, base+npages). base must be
// MAX_ORDER aligned and npages a multiple of the MAX_ORDER block size so
// that buddy pairs never straddle the managed range. All frames are
// released to the allocator (marked free) immediately.
func New(frames *frame.Table, base addr.PFN, npages uint64) *Buddy {
	checkGeometry(base, npages)
	frame.Fill(frames.Slice(base, npages), frame.Frame{State: frame.Free, BuddyOrder: -1, AllocOrder: -1})
	return NewPrefilled(frames, base, npages)
}

// NewPrefilled is New for callers that have already filled the managed
// range with free records (State Free, BuddyOrder/AllocOrder -1, zero
// MapCount/Cluster) — e.g. a combined fill that also bakes in the zone
// tag. It skips the redundant whole-range Fill New would perform.
func NewPrefilled(frames *frame.Table, base addr.PFN, npages uint64) *Buddy {
	checkGeometry(base, npages)
	b := &Buddy{
		frames: frames,
		base:   base,
		npages: npages,
		fs:     frames.Slice(base, npages),
		next:   make([]int32, npages),
		prev:   make([]int32, npages),
	}
	b.reset()
	return b
}

func checkGeometry(base addr.PFN, npages uint64) {
	if !addr.AlignedTo(base, addr.MaxOrder) {
		panic(fmt.Sprintf("buddy: base %d not MAX_ORDER aligned", base))
	}
	if npages == 0 || npages%addr.MaxOrderPages != 0 {
		panic(fmt.Sprintf("buddy: npages %d not a multiple of MAX_ORDER block", npages))
	}
	if npages >= 1<<31 {
		panic(fmt.Sprintf("buddy: npages %d exceeds 32-bit link index space", npages))
	}
}

// Reset returns the allocator to its pristine post-New state, reusing
// the link arrays (machine pooling). The caller must have re-filled the
// managed range with free records first, exactly as NewPrefilled
// requires. Hooks and tracer are detached; the sorted flag survives
// (it is construction-time configuration) and the mutation counter
// keeps growing (it is monotonic, never compared across resets).
func (b *Buddy) Reset() {
	b.hooks = Hooks{}
	b.tr = nil
	b.reset()
}

// reset rebuilds the free lists from a prefilled frame range.
func (b *Buddy) reset() {
	for o := range b.heads {
		b.heads[o] = nilLink
	}
	b.freePages = 0
	b.perOrderCount = [addr.MaxOrder + 1]uint64{}
	b.nonEmpty = 0
	for pfn := b.base; pfn < b.base+addr.PFN(b.npages); pfn += addr.MaxOrderPages {
		b.listInsert(pfn, addr.MaxOrder)
		b.freePages += addr.MaxOrderPages
	}
}

// SetTracer attaches (or, with nil, detaches) an event tracer; zoneID
// tags this allocator's events when several zones share one tracer.
func (b *Buddy) SetTracer(t *trace.Tracer, zoneID int) {
	b.tr = t
	b.zid = uint64(zoneID)
}

// SetHooks installs MAX_ORDER list observers. Must be called before any
// allocation traffic if the observer needs a complete picture; the
// contiguity map instead performs an initial scan via VisitMaxOrder.
func (b *Buddy) SetHooks(h Hooks) { b.hooks = h }

// SetSorted enables or disables the address-sorted MAX_ORDER list.
// Enabling re-sorts the current list so the invariant holds immediately.
func (b *Buddy) SetSorted(on bool) {
	b.sorted = on
	if !on {
		return
	}
	// Drain and re-insert: the list is short, so selection re-insertion
	// is fine. Hooks are suppressed — membership does not change.
	saved := b.hooks
	b.hooks = Hooks{}
	var blocks []addr.PFN
	for b.heads[addr.MaxOrder] != nilLink {
		pfn := b.pfnAt(b.heads[addr.MaxOrder])
		b.listRemove(pfn, addr.MaxOrder)
		blocks = append(blocks, pfn)
	}
	for _, pfn := range blocks {
		b.listInsert(pfn, addr.MaxOrder)
	}
	b.hooks = saved
}

// Sorted reports whether the MAX_ORDER list is kept address-sorted.
func (b *Buddy) Sorted() bool { return b.sorted }

// Base returns the first managed PFN.
func (b *Buddy) Base() addr.PFN { return b.base }

// Pages returns the number of managed frames.
func (b *Buddy) Pages() uint64 { return b.npages }

// FreePages returns the number of currently free frames.
func (b *Buddy) FreePages() uint64 { return b.freePages }

// Mutations returns a counter of successful allocations and frees. It
// only ever grows; two equal readings bracket a window with no free-pool
// changes in this zone.
func (b *Buddy) Mutations() uint64 { return b.muts }

// FreeBlocks returns the number of free blocks of the given order.
func (b *Buddy) FreeBlocks(order int) uint64 { return b.perOrderCount[order] }

// OrderCounts returns the per-order free-block counts as one array — the
// same numbers FreeBlocks exposes one order at a time, and exactly the
// histogram metrics.FreeOrderHistogram would build by visiting every
// free block. The counters are maintained incrementally by every
// allocation and free (and cross-checked against the lists by
// CheckInvariants), so snapshot consumers read O(orders) state instead
// of walking O(free blocks) lists.
func (b *Buddy) OrderCounts() [addr.MaxOrder + 1]uint64 { return b.perOrderCount }

// Contains reports whether pfn is managed by this allocator.
func (b *Buddy) Contains(pfn addr.PFN) bool {
	return pfn >= b.base && uint64(pfn-b.base) < b.npages
}

// --- free-list primitives ---

func (b *Buddy) idx(pfn addr.PFN) int32 { return int32(pfn - b.base) }

func (b *Buddy) pfnAt(i int32) addr.PFN { return b.base + addr.PFN(i) }

func (b *Buddy) listInsert(pfn addr.PFN, order int) {
	i := b.idx(pfn)
	if b.sorted && order == addr.MaxOrder && b.heads[order] != nilLink {
		// Insertion-sort by physical address. The MAX_ORDER list is
		// short (one entry per 4 MiB of free memory), so the linear
		// walk is cheap; the paper uses neighbour-address recursion
		// for the same effect.
		if i < b.heads[order] {
			b.next[i] = b.heads[order]
			b.prev[i] = nilLink
			b.prev[b.heads[order]] = i
			b.heads[order] = i
		} else {
			cur := b.heads[order]
			for b.next[cur] != nilLink && b.next[cur] < i {
				cur = b.next[cur]
			}
			nxt := b.next[cur]
			b.next[cur] = i
			b.prev[i] = cur
			b.next[i] = nxt
			if nxt != nilLink {
				b.prev[nxt] = i
			}
		}
	} else {
		b.next[i] = b.heads[order]
		b.prev[i] = nilLink
		if b.heads[order] != nilLink {
			b.prev[b.heads[order]] = i
		}
		b.heads[order] = i
	}
	b.fs[i].BuddyOrder = int8(order)
	b.perOrderCount[order]++
	b.nonEmpty |= 1 << order
	if order == addr.MaxOrder && b.hooks.MaxOrderInsert != nil {
		b.hooks.MaxOrderInsert(pfn)
	}
}

func (b *Buddy) listRemove(pfn addr.PFN, order int) {
	if order == addr.MaxOrder && b.hooks.MaxOrderRemove != nil {
		b.hooks.MaxOrderRemove(pfn)
	}
	i := b.idx(pfn)
	if b.prev[i] != nilLink {
		b.next[b.prev[i]] = b.next[i]
	} else {
		b.heads[order] = b.next[i]
	}
	if b.next[i] != nilLink {
		b.prev[b.next[i]] = b.prev[i]
	}
	b.fs[i].BuddyOrder = -1
	b.perOrderCount[order]--
	if b.heads[order] == nilLink {
		b.nonEmpty &^= 1 << order
	}
}

func (b *Buddy) markAllocated(pfn addr.PFN, order int) {
	i := uint64(pfn - b.base)
	fs := b.fs[i : i+addr.OrderPages(order)]
	for i := range fs {
		fs[i].State = frame.Allocated
		fs[i].AllocOrder = -1
	}
	fs[0].AllocOrder = int8(order)
	b.freePages -= addr.OrderPages(order)
}

func (b *Buddy) markFree(pfn addr.PFN, order int) {
	i := uint64(pfn - b.base)
	fs := b.fs[i : i+addr.OrderPages(order)]
	for i := range fs {
		fs[i].State = frame.Free
		fs[i].AllocOrder = -1
		fs[i].MapCount = 0
	}
	b.freePages += addr.OrderPages(order)
}

// --- public allocation API ---

// AllocBlock allocates a block of 2^order pages, splitting a larger
// block if needed. With the sorted MAX_ORDER list enabled, splits carve
// the lowest-addressed large block, concentrating fallback allocations.
func (b *Buddy) AllocBlock(order int) (addr.PFN, error) {
	if order < 0 || order > addr.MaxOrder {
		return 0, fmt.Errorf("buddy: invalid order %d", order)
	}
	avail := b.nonEmpty >> order
	if avail == 0 {
		return 0, ErrNoMemory
	}
	from := order + bits.TrailingZeros32(avail)
	pfn := b.pfnAt(b.heads[from])
	b.listRemove(pfn, from)
	// Split down to the requested order, returning upper halves.
	for o := from; o > order; o-- {
		upper := pfn + addr.PFN(addr.OrderPages(o-1))
		b.listInsert(upper, o-1)
		if b.tr != nil {
			b.tr.Emit(trace.EvBuddySplit, b.zid, uint64(pfn), uint64(o))
		}
	}
	b.markAllocated(pfn, order)
	b.muts++
	return pfn, nil
}

// AllocBlockAt allocates the specific 2^order block starting at pfn,
// which must be order-aligned and fully free. This is the targeted path
// CA paging uses to extend a contiguous mapping: the frame-table check
// plus block split the paper describes in §III-B.
func (b *Buddy) AllocBlockAt(pfn addr.PFN, order int) error {
	if order < 0 || order > addr.MaxOrder {
		return fmt.Errorf("buddy: invalid order %d", order)
	}
	if !addr.AlignedTo(pfn, order) {
		return fmt.Errorf("buddy: PFN %d not aligned for order %d", pfn, order)
	}
	if !b.Contains(pfn) || !b.Contains(pfn+addr.PFN(addr.OrderPages(order))-1) {
		return ErrNotFree
	}
	head, bo, ok := b.findFreeBlock(pfn)
	if !ok || bo < order {
		return ErrNotFree
	}
	// The containing free block must cover the whole requested block;
	// alignment guarantees it does once bo >= order and pfn inside.
	b.listRemove(head, bo)
	for o := bo; o > order; o-- {
		half := addr.PFN(addr.OrderPages(o - 1))
		lower, upper := head, head+half
		if b.tr != nil {
			b.tr.Emit(trace.EvBuddySplit, b.zid, uint64(head), uint64(o))
		}
		if pfn >= upper {
			b.listInsert(lower, o-1)
			head = upper
		} else {
			b.listInsert(upper, o-1)
		}
	}
	b.markAllocated(pfn, order)
	b.muts++
	return nil
}

// findFreeBlock locates the free block (head, order) containing pfn, if
// the frame is free. Heads are discoverable because only the head of a
// listed block carries BuddyOrder >= 0.
func (b *Buddy) findFreeBlock(pfn addr.PFN) (addr.PFN, int, bool) {
	if !b.Contains(pfn) || b.fs[pfn-b.base].State != frame.Free {
		return 0, 0, false
	}
	for o := 0; o <= addr.MaxOrder; o++ {
		head := addr.PFN(uint64(pfn) &^ (addr.OrderPages(o) - 1))
		if !b.Contains(head) {
			return 0, 0, false
		}
		if b.fs[head-b.base].BuddyOrder == int8(o) {
			return head, o, true
		}
	}
	return 0, 0, false
}

// FreeBlock returns a previously allocated 2^order block to the
// allocator, coalescing with free buddies as far as possible.
func (b *Buddy) FreeBlock(pfn addr.PFN, order int) {
	if !addr.AlignedTo(pfn, order) {
		panic(fmt.Sprintf("buddy: freeing unaligned block %d order %d", pfn, order))
	}
	if !b.Contains(pfn) {
		panic(fmt.Sprintf("buddy: freeing foreign PFN %d", pfn))
	}
	b.markFree(pfn, order)
	for order < addr.MaxOrder {
		bud := addr.BuddyOf(pfn, order)
		if !b.Contains(bud) || b.fs[bud-b.base].BuddyOrder != int8(order) {
			break
		}
		b.listRemove(bud, order)
		pfn = addr.ParentOf(pfn, order)
		order++
		if b.tr != nil {
			b.tr.Emit(trace.EvBuddyCoalesce, b.zid, uint64(pfn), uint64(order))
		}
	}
	b.listInsert(pfn, order)
	b.muts++
}

// Reserve removes an arbitrary page run [pfn, pfn+npages) from the free
// pool, decomposing it into aligned order blocks. Every frame in the run
// must be free. Used by eager pre-allocation and the hog fragmenter.
func (b *Buddy) Reserve(pfn addr.PFN, npages uint64) error {
	if !b.Contains(pfn) || npages == 0 || !b.Contains(pfn+addr.PFN(npages)-1) {
		return ErrNotFree
	}
	if !b.frames.RangeFree(pfn, npages) {
		return ErrNotFree
	}
	cur, left := pfn, npages
	for left > 0 {
		o := maxAlignedOrder(cur, left)
		if err := b.AllocBlockAt(cur, o); err != nil {
			// Cannot happen after the RangeFree check; treat as a
			// simulator invariant violation.
			panic(fmt.Sprintf("buddy: Reserve lost block at %d order %d: %v", cur, o, err))
		}
		cur += addr.PFN(addr.OrderPages(o))
		left -= addr.OrderPages(o)
	}
	return nil
}

// FreeRange releases an arbitrary page run, decomposing it into aligned
// order blocks and coalescing each.
func (b *Buddy) FreeRange(pfn addr.PFN, npages uint64) {
	cur, left := pfn, npages
	for left > 0 {
		o := maxAlignedOrder(cur, left)
		b.FreeBlock(cur, o)
		cur += addr.PFN(addr.OrderPages(o))
		left -= addr.OrderPages(o)
	}
}

// maxAlignedOrder returns the largest order such that cur is aligned and
// the block fits within left pages.
func maxAlignedOrder(cur addr.PFN, left uint64) int {
	o := 0
	for o < addr.MaxOrder &&
		addr.AlignedTo(cur, o+1) &&
		addr.OrderPages(o+1) <= left {
		o++
	}
	return o
}

// VisitMaxOrder calls fn for every block currently on the MAX_ORDER free
// list, in list order.
func (b *Buddy) VisitMaxOrder(fn func(pfn addr.PFN)) {
	for i := b.heads[addr.MaxOrder]; i != nilLink; i = b.next[i] {
		fn(b.pfnAt(i))
	}
}

// VisitFreeBlocks calls fn for every free block on every free list,
// ascending order first, list order within an order. External checkers
// (the differential buddy oracle in internal/check) use it to compare
// the allocator's free set against a reference bitmap.
func (b *Buddy) VisitFreeBlocks(fn func(pfn addr.PFN, order int)) {
	for o := 0; o <= addr.MaxOrder; o++ {
		for i := b.heads[o]; i != nilLink; i = b.next[i] {
			fn(b.pfnAt(i), o)
		}
	}
}

// FragScore summarises external fragmentation in permille: the share
// of free memory NOT sitting in huge-page-or-larger free blocks. 0
// means every free page is promotable contiguity; 1000 means the free
// pool is pure sub-2MiB confetti. Zero when no memory is free (there
// is nothing to fragment).
func (b *Buddy) FragScore() uint64 {
	if b.freePages == 0 {
		return 0
	}
	var huge uint64
	for o := addr.HugeOrder; o <= addr.MaxOrder; o++ {
		huge += b.perOrderCount[o] * addr.OrderPages(o)
	}
	return 1000 - huge*1000/b.freePages
}

// UnusableFreePages returns the number of free base pages that cannot
// satisfy an allocation of the given order: free memory sitting in
// blocks strictly smaller than 2^order pages. It is the numerator of
// Gorman's unusable free space index (Mel Gorman, "Measuring the
// Impact of Memory Fragmentation"), which internal/metrics normalises
// to [0,1]; the raw page count is exposed here so callers can aggregate
// across zones before dividing.
func (b *Buddy) UnusableFreePages(order int) uint64 {
	var usable uint64
	for o := order; o <= addr.MaxOrder; o++ {
		usable += b.perOrderCount[o] * addr.OrderPages(o)
	}
	return b.freePages - usable
}

// LargestAlignedFree returns the order of the largest free block
// available (possibly after coalescing state already reflected in the
// lists), or -1 if memory is exhausted.
func (b *Buddy) LargestAlignedFree() int {
	return bits.Len32(b.nonEmpty) - 1
}

// ScratchWords returns the length a borrowed scratch bitset must have to
// cover this allocator's managed range, one bit per frame.
func (b *Buddy) ScratchWords() int { return int((b.npages + 63) / 64) }

// CheckInvariants validates the allocator's internal consistency. It is
// exercised by tests (including property-based ones) and is deliberately
// thorough rather than fast. It allocates its own coverage scratch; the
// audit engine calls CheckInvariantsScratch with a reused arena instead.
func (b *Buddy) CheckInvariants() error {
	return b.CheckInvariantsScratch(make([]uint64, b.ScratchWords()))
}

// CheckInvariantsScratch is CheckInvariants over a borrowed coverage
// bitset (one bit per managed frame, at least ScratchWords words). The
// scratch is cleared word-at-a-time on entry, so callers can hand the
// same arena to successive checks without zeroing it between them; its
// contents on return are unspecified.
func (b *Buddy) CheckInvariantsScratch(covered []uint64) error {
	covered = covered[:b.ScratchWords()]
	clear(covered)
	var listedFree uint64
	for o := 0; o <= addr.MaxOrder; o++ {
		var count uint64
		prev := nilLink
		for i := b.heads[o]; i != nilLink; i = b.next[i] {
			pfn := b.pfnAt(i)
			count++
			if !addr.AlignedTo(pfn, o) {
				return fmt.Errorf("order %d block %d misaligned", o, pfn)
			}
			if b.frames.Get(pfn).BuddyOrder != int8(o) {
				return fmt.Errorf("order %d block %d head marking mismatch", o, pfn)
			}
			if b.prev[i] != prev {
				return fmt.Errorf("order %d block %d prev-link broken", o, pfn)
			}
			n := addr.OrderPages(o)
			for j := uint64(0); j < n; j++ {
				rel := uint64(i) + j
				if covered[rel>>6]&(1<<(rel&63)) != 0 {
					return fmt.Errorf("frame %d covered by two free blocks", pfn+addr.PFN(j))
				}
				covered[rel>>6] |= 1 << (rel & 63)
				if b.fs[rel].State != frame.Free {
					return fmt.Errorf("frame %d on free list but state %v", pfn+addr.PFN(j), b.fs[rel].State)
				}
			}
			// Canonical coalescing: a listed block's buddy must not
			// also be listed at the same order.
			if o < addr.MaxOrder {
				bud := addr.BuddyOf(pfn, o)
				if b.Contains(bud) && b.frames.Get(bud).BuddyOrder == int8(o) {
					return fmt.Errorf("order %d blocks %d and %d are uncoalesced buddies", o, pfn, bud)
				}
			}
			listedFree += addr.OrderPages(o)
			prev = i
		}
		if count != b.perOrderCount[o] {
			return fmt.Errorf("order %d count %d != recorded %d", o, count, b.perOrderCount[o])
		}
		if has, bit := b.heads[o] != nilLink, b.nonEmpty&(1<<o) != 0; has != bit {
			return fmt.Errorf("order %d non-empty bit %v but list head says %v", o, bit, has)
		}
	}
	if listedFree != b.freePages {
		return fmt.Errorf("listed free pages %d != counter %d", listedFree, b.freePages)
	}
	// Every Free-state frame in range must be covered by a listed block.
	for rel := uint64(0); rel < b.npages; rel++ {
		if b.fs[rel].State == frame.Free && covered[rel>>6]&(1<<(rel&63)) == 0 {
			return fmt.Errorf("frame %d free but not on any list", b.base+addr.PFN(rel))
		}
	}
	if b.sorted {
		prev := nilLink
		for i := b.heads[addr.MaxOrder]; i != nilLink; i = b.next[i] {
			if prev != nilLink && i < prev {
				return fmt.Errorf("MAX_ORDER list unsorted: %d after %d", b.pfnAt(i), b.pfnAt(prev))
			}
			prev = i
		}
	}
	return nil
}
