package buddy

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/mem/addr"
	"repro/internal/mem/frame"
	"repro/internal/metrics"
)

// newBuddy creates a small allocator: nblocks MAX_ORDER blocks.
func newBuddy(t testing.TB, nblocks uint64) (*Buddy, *frame.Table) {
	t.Helper()
	n := nblocks * addr.MaxOrderPages
	ft := frame.NewTable(0, n)
	return New(ft, 0, n), ft
}

func TestNewAllFree(t *testing.T) {
	b, ft := newBuddy(t, 4)
	if b.FreePages() != 4*addr.MaxOrderPages {
		t.Fatalf("FreePages = %d", b.FreePages())
	}
	if b.FreeBlocks(addr.MaxOrder) != 4 {
		t.Fatalf("MAX_ORDER blocks = %d, want 4", b.FreeBlocks(addr.MaxOrder))
	}
	if ft.CountState(frame.Free) != 4*addr.MaxOrderPages {
		t.Fatal("not all frames free")
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	ft := frame.NewTable(0, addr.MaxOrderPages*2)
	for _, fn := range []func(){
		func() { New(ft, 1, addr.MaxOrderPages) },   // misaligned base
		func() { New(ft, 0, addr.MaxOrderPages-1) }, // bad size
		func() { New(ft, 0, 0) },                    // empty
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestAllocFreeSingle(t *testing.T) {
	b, ft := newBuddy(t, 1)
	pfn, err := b.AllocBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	if ft.Get(pfn).State != frame.Allocated {
		t.Fatal("allocated frame not marked")
	}
	if b.FreePages() != addr.MaxOrderPages-1 {
		t.Fatalf("FreePages = %d", b.FreePages())
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	b.FreeBlock(pfn, 0)
	if b.FreePages() != addr.MaxOrderPages {
		t.Fatal("free count after FreeBlock wrong")
	}
	// Full coalescing back to one MAX_ORDER block.
	if b.FreeBlocks(addr.MaxOrder) != 1 {
		t.Fatalf("MAX_ORDER blocks = %d, want 1 after coalesce", b.FreeBlocks(addr.MaxOrder))
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocHugeBlock(t *testing.T) {
	b, _ := newBuddy(t, 1)
	pfn, err := b.AllocBlock(addr.HugeOrder)
	if err != nil {
		t.Fatal(err)
	}
	if !addr.AlignedTo(pfn, addr.HugeOrder) {
		t.Fatal("huge block misaligned")
	}
	if b.FreePages() != addr.MaxOrderPages-512 {
		t.Fatalf("FreePages = %d", b.FreePages())
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestExhaustion(t *testing.T) {
	b, _ := newBuddy(t, 1)
	var got []addr.PFN
	for {
		pfn, err := b.AllocBlock(addr.MaxOrder)
		if err == ErrNoMemory {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, pfn)
	}
	if len(got) != 1 {
		t.Fatalf("allocated %d MAX_ORDER blocks, want 1", len(got))
	}
	if _, err := b.AllocBlock(0); err != ErrNoMemory {
		t.Fatalf("want ErrNoMemory, got %v", err)
	}
}

func TestAllocBlockAtTargeted(t *testing.T) {
	b, ft := newBuddy(t, 2)
	// Target a frame in the middle of the second MAX_ORDER block.
	target := addr.PFN(addr.MaxOrderPages + 137)
	if err := b.AllocBlockAt(target, 0); err != nil {
		t.Fatal(err)
	}
	if ft.Get(target).State != frame.Allocated {
		t.Fatal("target not allocated")
	}
	if b.FreePages() != 2*addr.MaxOrderPages-1 {
		t.Fatalf("FreePages = %d", b.FreePages())
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The frame right after the target must still be individually
	// allocatable (split produced usable remainders).
	if err := b.AllocBlockAt(target+1, 0); err != nil {
		t.Fatalf("neighbour allocation failed: %v", err)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocBlockAtHuge(t *testing.T) {
	b, _ := newBuddy(t, 2)
	target := addr.PFN(512) // huge-aligned, inside first MAX_ORDER block
	if err := b.AllocBlockAt(target, addr.HugeOrder); err != nil {
		t.Fatal(err)
	}
	// Re-requesting must fail.
	if err := b.AllocBlockAt(target, addr.HugeOrder); err != ErrNotFree {
		t.Fatalf("want ErrNotFree, got %v", err)
	}
	// Misaligned targeted request must fail.
	if err := b.AllocBlockAt(3, addr.HugeOrder); err == nil {
		t.Fatal("misaligned targeted alloc should fail")
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocBlockAtOccupied(t *testing.T) {
	b, _ := newBuddy(t, 1)
	pfn, err := b.AllocBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AllocBlockAt(pfn, 0); err != ErrNotFree {
		t.Fatalf("want ErrNotFree for occupied frame, got %v", err)
	}
	// Out of range.
	if err := b.AllocBlockAt(addr.PFN(1<<40), 0); err != ErrNotFree {
		t.Fatalf("want ErrNotFree for out-of-range, got %v", err)
	}
}

func TestCoalescingAcrossOrders(t *testing.T) {
	b, _ := newBuddy(t, 1)
	// Allocate every 4K page, then free them all; the allocator must
	// coalesce back into exactly one MAX_ORDER block.
	pfns := make([]addr.PFN, 0, addr.MaxOrderPages)
	for i := 0; i < addr.MaxOrderPages; i++ {
		pfn, err := b.AllocBlock(0)
		if err != nil {
			t.Fatal(err)
		}
		pfns = append(pfns, pfn)
	}
	if b.FreePages() != 0 {
		t.Fatal("expected exhaustion")
	}
	for _, pfn := range pfns {
		b.FreeBlock(pfn, 0)
	}
	if b.FreeBlocks(addr.MaxOrder) != 1 {
		t.Fatalf("MAX_ORDER blocks = %d after full free", b.FreeBlocks(addr.MaxOrder))
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReserveAndFreeRange(t *testing.T) {
	b, ft := newBuddy(t, 2)
	// Reserve an unaligned run crossing the MAX_ORDER boundary.
	start, n := addr.PFN(1000), uint64(100)
	if err := b.Reserve(start, n); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		if ft.Get(start+addr.PFN(i)).State != frame.Allocated {
			t.Fatalf("frame %d not allocated", start+addr.PFN(i))
		}
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Overlapping reserve must fail atomically (nothing allocated).
	free := b.FreePages()
	if err := b.Reserve(start+50, 100); err != ErrNotFree {
		t.Fatalf("want ErrNotFree, got %v", err)
	}
	if b.FreePages() != free {
		t.Fatal("failed Reserve changed free count")
	}
	b.FreeRange(start, n)
	if b.FreeBlocks(addr.MaxOrder) != 2 {
		t.Fatalf("MAX_ORDER blocks = %d after FreeRange", b.FreeBlocks(addr.MaxOrder))
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSortedMaxOrderList(t *testing.T) {
	b, _ := newBuddy(t, 8)
	b.SetSorted(true)
	// Punch holes to break blocks apart, then free in random order; the
	// MAX_ORDER list must remain address sorted.
	var held []addr.PFN
	for i := 0; i < 8; i++ {
		pfn, err := b.AllocBlock(addr.MaxOrder)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, pfn)
	}
	rand.New(rand.NewSource(7)).Shuffle(len(held), func(i, j int) { held[i], held[j] = held[j], held[i] })
	for _, pfn := range held {
		b.FreeBlock(pfn, addr.MaxOrder)
		if err := b.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	// Sorted mode: the next split victim is the lowest block.
	pfn, err := b.AllocBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	if pfn != 0 {
		t.Fatalf("sorted alloc started at %d, want 0", pfn)
	}
}

func TestHooksFireOnMaxOrderTransitions(t *testing.T) {
	b, _ := newBuddy(t, 2)
	var inserts, removes []addr.PFN
	b.SetHooks(Hooks{
		MaxOrderInsert: func(p addr.PFN) { inserts = append(inserts, p) },
		MaxOrderRemove: func(p addr.PFN) { removes = append(removes, p) },
	})
	pfn, err := b.AllocBlock(addr.MaxOrder)
	if err != nil {
		t.Fatal(err)
	}
	if len(removes) != 1 || removes[0] != pfn {
		t.Fatalf("removes = %v", removes)
	}
	b.FreeBlock(pfn, addr.MaxOrder)
	if len(inserts) != 1 || inserts[0] != pfn {
		t.Fatalf("inserts = %v", inserts)
	}
	// Splitting a MAX_ORDER block also fires a remove.
	removes = nil
	if _, err := b.AllocBlock(0); err != nil {
		t.Fatal(err)
	}
	if len(removes) != 1 {
		t.Fatalf("split should fire one MAX_ORDER remove, got %d", len(removes))
	}
}

func TestVisitMaxOrder(t *testing.T) {
	b, _ := newBuddy(t, 3)
	var seen []addr.PFN
	b.VisitMaxOrder(func(p addr.PFN) { seen = append(seen, p) })
	if len(seen) != 3 {
		t.Fatalf("visited %d blocks, want 3", len(seen))
	}
}

func TestLargestAlignedFree(t *testing.T) {
	b, _ := newBuddy(t, 1)
	if b.LargestAlignedFree() != addr.MaxOrder {
		t.Fatal("fresh allocator should have MAX_ORDER block")
	}
	// Exhaust, check -1.
	for {
		if _, err := b.AllocBlock(0); err != nil {
			break
		}
	}
	if b.LargestAlignedFree() != -1 {
		t.Fatal("exhausted allocator should report -1")
	}
}

// TestRandomOpsProperty drives a random alloc/free workload and checks
// invariants throughout — the central property test for the allocator.
func TestRandomOpsProperty(t *testing.T) {
	type allocation struct {
		pfn   addr.PFN
		order int
	}
	f := func(seed int64, sorted bool) bool {
		rng := rand.New(rand.NewSource(seed))
		b, _ := newBuddy(t, 4)
		b.SetSorted(sorted)
		var live []allocation
		for step := 0; step < 300; step++ {
			switch op := rng.Intn(4); {
			case op <= 1: // alloc random order
				order := rng.Intn(addr.MaxOrder + 1)
				pfn, err := b.AllocBlock(order)
				if err == nil {
					live = append(live, allocation{pfn, order})
				}
			case op == 2 && len(live) > 0: // free random allocation
				i := rng.Intn(len(live))
				b.FreeBlock(live[i].pfn, live[i].order)
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			default: // targeted alloc at random frame
				target := addr.PFN(rng.Intn(4 * addr.MaxOrderPages))
				if err := b.AllocBlockAt(target, 0); err == nil {
					live = append(live, allocation{target, 0})
				}
			}
			if step%50 == 0 {
				if err := b.CheckInvariants(); err != nil {
					t.Logf("seed %d step %d: %v", seed, step, err)
					return false
				}
			}
		}
		// Free everything; must coalesce completely.
		for _, a := range live {
			b.FreeBlock(a.pfn, a.order)
		}
		if err := b.CheckInvariants(); err != nil {
			t.Logf("seed %d final: %v", seed, err)
			return false
		}
		if b.FreeBlocks(addr.MaxOrder) != 4 {
			t.Logf("seed %d: %d MAX_ORDER blocks after full free", seed, b.FreeBlocks(addr.MaxOrder))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFreePagesConservationProperty(t *testing.T) {
	// freePages + allocated == total at all times.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b, ft := newBuddy(t, 2)
		for step := 0; step < 100; step++ {
			order := rng.Intn(addr.HugeOrder + 1)
			if _, err := b.AllocBlock(order); err != nil {
				break
			}
		}
		return b.FreePages() == ft.CountState(frame.Free)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAllocFree4K(b *testing.B) {
	bd, _ := newBuddy(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pfn, err := bd.AllocBlock(0)
		if err != nil {
			b.Fatal(err)
		}
		bd.FreeBlock(pfn, 0)
	}
}

func BenchmarkTargetedAlloc(b *testing.B) {
	bd, _ := newBuddy(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target := addr.PFN(i % (64 * addr.MaxOrderPages))
		if err := bd.AllocBlockAt(target, 0); err == nil {
			bd.FreeBlock(target, 0)
		}
	}
}

// TestUnusableFreePages pins the Gorman unusable-free numerator against
// a hand-built fragmentation state and a randomised cross-check versus
// the free-list visitor.
func TestUnusableFreePages(t *testing.T) {
	b, _ := newBuddy(t, 4)

	// Pristine machine: everything coalesced, nothing unusable.
	for o := 0; o <= addr.MaxOrder; o++ {
		if got := b.UnusableFreePages(o); got != 0 {
			t.Fatalf("pristine UnusableFreePages(%d) = %d, want 0", o, got)
		}
	}

	// Shatter one MAX_ORDER block into singles by allocating every
	// other base page of it: the 512 still-free 4 KiB frames can never
	// serve an order >= 1 request.
	for pg := uint64(0); pg < addr.MaxOrderPages; pg += 2 {
		if err := b.AllocBlockAt(addr.PFN(pg), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := b.UnusableFreePages(0); got != 0 {
		t.Fatalf("order 0 is always usable, got %d", got)
	}
	const confetti = addr.MaxOrderPages / 2
	for o := 1; o <= addr.MaxOrder; o++ {
		if got := b.UnusableFreePages(o); got != confetti {
			t.Fatalf("UnusableFreePages(%d) = %d, want %d", o, got, confetti)
		}
	}

	// Cross-check against the free-list visitor under random churn.
	rng := rand.New(rand.NewSource(7))
	type block struct {
		pfn   addr.PFN
		order int
	}
	var live []block
	for i := 0; i < 500; i++ {
		if rng.Intn(2) == 0 {
			order := rng.Intn(4)
			if pfn, err := b.AllocBlock(order); err == nil {
				live = append(live, block{pfn, order})
			}
		} else if len(live) > 0 {
			j := rng.Intn(len(live))
			b.FreeBlock(live[j].pfn, live[j].order)
			live = append(live[:j], live[j+1:]...)
		}
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for order := 0; order <= addr.MaxOrder; order++ {
		var usable uint64
		b.VisitFreeBlocks(func(_ addr.PFN, o int) {
			if o >= order {
				usable += addr.OrderPages(o)
			}
		})
		want := b.FreePages() - usable
		if got := b.UnusableFreePages(order); got != want {
			t.Fatalf("order %d: UnusableFreePages %d != visitor-derived %d", order, got, want)
		}
	}
}

// TestOrderCountsMatchesVisitor pins OrderCounts against the histogram
// metrics.FreeOrderHistogram builds by visiting every free block: the
// incremental counters and the lists must agree after arbitrary churn,
// or snapshot consumers reading the O(orders) counters would silently
// diverge from the free-list truth.
func TestOrderCountsMatchesVisitor(t *testing.T) {
	b, _ := newBuddy(t, 8)
	rng := rand.New(rand.NewSource(42))
	type block struct {
		pfn   addr.PFN
		order int
	}
	var live []block
	check := func() {
		t.Helper()
		hist := metrics.FreeOrderHistogram(b.VisitFreeBlocks)
		if got := b.OrderCounts(); got != hist {
			t.Fatalf("OrderCounts %v != visitor histogram %v", got, hist)
		}
	}
	check() // pristine
	for i := 0; i < 400; i++ {
		if rng.Intn(2) == 0 {
			order := rng.Intn(addr.MaxOrder + 1)
			if pfn, err := b.AllocBlock(order); err == nil {
				live = append(live, block{pfn, order})
			}
		} else if len(live) > 0 {
			j := rng.Intn(len(live))
			b.FreeBlock(live[j].pfn, live[j].order)
			live = append(live[:j], live[j+1:]...)
		}
		if i%40 == 0 {
			check()
		}
	}
	check()
}

// TestCheckInvariantsDetectsCorruption walks every failure branch of
// CheckInvariants by corrupting the allocator's internals directly (we
// are in-package) and requiring the named error. The flat-scratch
// rewrite must keep every one of these teeth.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	tests := []struct {
		name    string
		corrupt func(t *testing.T, b *Buddy)
		want    string
	}{
		{"misaligned-block", func(t *testing.T, b *Buddy) {
			// Move the odd-addressed order-0 split remainder onto the
			// order-1 list, where its address is misaligned.
			if _, err := b.AllocBlock(0); err != nil {
				t.Fatal(err)
			}
			pfn := b.pfnAt(b.heads[0])
			b.listRemove(pfn, 0)
			b.listInsert(pfn, 1)
		}, "misaligned"},
		{"head-marking-mismatch", func(t *testing.T, b *Buddy) {
			b.fs[b.heads[addr.MaxOrder]].BuddyOrder = -1
		}, "head marking mismatch"},
		{"prev-link-broken", func(t *testing.T, b *Buddy) {
			b.prev[b.heads[addr.MaxOrder]] = 5
		}, "prev-link broken"},
		{"double-covered-frame", func(t *testing.T, b *Buddy) {
			// List an interior frame of the intact MAX_ORDER block at
			// order 0 as well: two listed blocks now cover it.
			b.listInsert(3, 0)
		}, "covered by two free blocks"},
		{"listed-but-not-free", func(t *testing.T, b *Buddy) {
			// An interior frame of a listed block flips to Allocated.
			b.fs[1].State = frame.Allocated
		}, "on free list but state"},
		{"uncoalesced-buddies", func(t *testing.T, b *Buddy) {
			pfn, err := b.AllocBlock(0)
			if err != nil {
				t.Fatal(err)
			}
			// Free by hand without the coalescing loop: frame 0 and its
			// buddy 1 end up listed separately at order 0.
			b.markFree(pfn, 0)
			b.listInsert(pfn, 0)
		}, "uncoalesced buddies"},
		{"per-order-count-drift", func(t *testing.T, b *Buddy) {
			b.perOrderCount[0]++
		}, "count 0 != recorded 1"},
		{"non-empty-bit-stale", func(t *testing.T, b *Buddy) {
			b.nonEmpty |= 1 << 3
		}, "non-empty bit"},
		{"free-pages-counter-drift", func(t *testing.T, b *Buddy) {
			b.freePages++
		}, "listed free pages"},
		{"free-but-unlisted", func(t *testing.T, b *Buddy) {
			pfn, err := b.AllocBlock(0)
			if err != nil {
				t.Fatal(err)
			}
			b.fs[pfn].State = frame.Free // free state, never relisted
		}, "free but not on any list"},
		{"sorted-list-out-of-order", func(t *testing.T, b *Buddy) {
			// reset() prepends, so the unsorted 2-block list is
			// descending; flipping the flag without re-sorting is
			// exactly the corruption the check exists for.
			b.sorted = true
		}, "MAX_ORDER list unsorted"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			b, _ := newBuddy(t, 2)
			tc.corrupt(t, b)
			err := b.CheckInvariants()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("CheckInvariants = %v, want error containing %q", err, tc.want)
			}
		})
	}
}
