// Package contigmap implements the paper's contiguity_map (§III-B,
// Fig. 3): an index on top of the buddy allocator's MAX_ORDER free list
// that records *unaligned* free contiguity at scales larger than the
// buddy heap tracks. Each entry (cluster) is a variable-length run of
// physically consecutive free MAX_ORDER blocks, stored on an
// address-sorted doubly-linked list.
//
// Updates are O(1)-ish and triggered by buddy-list insertions/deletions:
// every free MAX_ORDER block's head frame carries a back-pointer to its
// cluster (re-purposing the frame's Cluster field, as Linux re-purposes
// page->mapping), so no search is needed on the update path.
//
// CA paging's placement decisions run next-fit over the map through an
// address-granular rover: each placement resumes the search where the
// previous one left off and advances past the full requested extent, so
// racing placements (a second VMA, the page cache) are deferred past
// each other's planned regions instead of colliding inside them
// (§III-C).
package contigmap

import (
	"fmt"

	"repro/internal/mem/addr"
	"repro/internal/mem/buddy"
	"repro/internal/mem/frame"
)

// Cluster is a maximal run of free MAX_ORDER blocks.
type Cluster struct {
	id     uint32
	Start  addr.PFN // first frame of the run
	Blocks uint64   // number of MAX_ORDER blocks

	prev, next *Cluster // address-sorted list links
}

// Pages returns the cluster length in base pages.
func (c *Cluster) Pages() uint64 { return c.Blocks * addr.MaxOrderPages }

// End returns one past the last frame of the run.
func (c *Cluster) End() addr.PFN { return c.Start + addr.PFN(c.Pages()) }

func (c *Cluster) String() string {
	return fmt.Sprintf("cluster{%d: [%d,%d) %d blocks}", c.id, c.Start, c.End(), c.Blocks)
}

// Map is one contiguity map instance. The paper (and this simulator)
// keeps one per NUMA node, mirroring the per-zone buddy instance.
type Map struct {
	frames    *frame.Table
	byID      map[uint32]*Cluster
	head      *Cluster // lowest-address cluster
	nextID    uint32
	roverAddr addr.PFN // next-fit resume address
	firstFit  bool     // ablation: restart the search at 0 each time
}

// New builds a map over the given buddy allocator, scanning its current
// MAX_ORDER list and subscribing to future membership changes. New must
// be the only hook subscriber for that allocator.
func New(frames *frame.Table, b *buddy.Buddy) *Map {
	m := &Map{
		frames: frames,
		byID:   make(map[uint32]*Cluster),
		nextID: 1,
	}
	b.SetHooks(buddy.Hooks{
		MaxOrderInsert: m.onInsert,
		MaxOrderRemove: m.onRemove,
	})
	b.VisitMaxOrder(m.onInsert)
	return m
}

// Len returns the number of clusters.
func (m *Map) Len() int { return len(m.byID) }

// Visit walks clusters in ascending address order.
func (m *Map) Visit(fn func(c *Cluster)) {
	for c := m.head; c != nil; c = c.next {
		fn(c)
	}
}

// VisitRanges walks clusters in ascending address order as plain
// (start, pages) pairs — a structural view for consumers that do not
// need cluster identity (eager paging's aligned-run scan, ideal
// placement's snapshot).
func (m *Map) VisitRanges(fn func(start addr.PFN, pages uint64)) {
	for c := m.head; c != nil; c = c.next {
		fn(c.Start, c.Pages())
	}
}

// Largest returns the size in pages of the largest cluster (0 if empty).
func (m *Map) Largest() uint64 {
	var max uint64
	for c := m.head; c != nil; c = c.next {
		if c.Pages() > max {
			max = c.Pages()
		}
	}
	return max
}

// TotalPages returns the total free pages tracked by the map. This is a
// lower bound on free memory: sub-MAX_ORDER free blocks are not tracked.
func (m *Map) TotalPages() uint64 {
	var n uint64
	for c := m.head; c != nil; c = c.next {
		n += c.Pages()
	}
	return n
}

// SetFirstFit switches FindFit to first-fit (the search restarts from
// the lowest address every time). Next-fit is the paper's choice; the
// first-fit mode exists for the ablation study of racing placements.
func (m *Map) SetFirstFit(on bool) { m.firstFit = on }

// FindFit runs the next-fit placement policy with an address-granular
// rover: the search resumes from where the previous placement left off
// — *inside* a cluster when the previous request consumed only part of
// it — wraps once around the address-sorted list, and returns the first
// free region of at least pages base pages. If nothing is large enough,
// the largest region found is returned (the paper's fallback). ok is
// false only when the map is empty.
//
// Advancing the rover past the full requested size (not just the pages
// allocated so far) is what defers racing between placements: a second
// VMA or the page cache placing while a first VMA is still demand-
// faulting is directed past the first one's planned extent instead of
// into it.
func (m *Map) FindFit(pages uint64) (start addr.PFN, available uint64, ok bool) {
	if m.head == nil {
		return 0, 0, false
	}
	if m.firstFit {
		m.roverAddr = 0
	}
	// Locate the first cluster ending beyond the rover address.
	first := m.head
	for c := m.head; c != nil; c = c.next {
		if c.End() > m.roverAddr {
			first = c
			break
		}
	}
	var largestStart addr.PFN
	var largestAvail uint64
	// Visit every cluster once, plus the first again in full: the
	// initial visit may have been truncated by the rover.
	c := first
	for i := 0; i <= len(m.byID); i++ {
		effStart, effAvail := c.Start, c.Pages()
		if i == 0 && c.Start < m.roverAddr && m.roverAddr < c.End() {
			effStart = m.roverAddr
			effAvail = uint64(c.End() - m.roverAddr)
		}
		// Placements anchor Offsets that must serve 2 MiB faults, so
		// they start on huge-page boundaries.
		if aligned := addr.PFN((uint64(effStart) + 511) &^ 511); aligned != effStart {
			shift := uint64(aligned - effStart)
			if shift >= effAvail {
				effAvail = 0
			} else {
				effAvail -= shift
			}
			effStart = aligned
		}
		if effAvail >= pages {
			m.advanceRover(effStart, pages, c.End())
			return effStart, effAvail, true
		}
		if effAvail > largestAvail {
			largestStart, largestAvail = effStart, effAvail
		}
		c = c.next
		if c == nil {
			c = m.head // wrap
		}
	}
	m.advanceRover(largestStart, largestAvail, largestStart+addr.PFN(largestAvail))
	return largestStart, largestAvail, true
}

// advanceRover moves the rover past the selected region's requested
// extent, clamped to the containing cluster's end.
func (m *Map) advanceRover(start addr.PFN, pages uint64, clusterEnd addr.PFN) {
	next := start + addr.PFN(pages)
	if next > clusterEnd {
		next = clusterEnd
	}
	m.roverAddr = next
}

// --- buddy hook handlers ---

// clusterOfBlock returns the cluster owning the free MAX_ORDER block at
// head, if any, via the frame back-pointer.
func (m *Map) clusterOfBlock(head addr.PFN) *Cluster {
	if !m.frames.Contains(head) {
		return nil
	}
	id := m.frames.Get(head).Cluster
	if id == 0 {
		return nil
	}
	return m.byID[id]
}

func (m *Map) onInsert(pfn addr.PFN) {
	left := m.clusterOfBlock(pfn - addr.MaxOrderPages)
	// A left cluster only absorbs us if it ends exactly at us.
	if left != nil && left.End() != pfn {
		left = nil
	}
	right := m.clusterOfBlock(pfn + addr.MaxOrderPages)
	if right != nil && right.Start != pfn+addr.MaxOrderPages {
		right = nil
	}
	switch {
	case left != nil && right != nil:
		// Bridge: extend left over us and absorb right.
		left.Blocks++
		m.setOwner(pfn, left.id)
		m.absorb(left, right)
	case left != nil:
		left.Blocks++
		m.setOwner(pfn, left.id)
	case right != nil:
		right.Start = pfn
		right.Blocks++
		m.setOwner(pfn, right.id)
	default:
		c := &Cluster{id: m.nextID, Start: pfn, Blocks: 1}
		m.nextID++
		m.byID[c.id] = c
		m.linkSorted(c)
		m.setOwner(pfn, c.id)
	}
}

func (m *Map) onRemove(pfn addr.PFN) {
	c := m.clusterOfBlock(pfn)
	if c == nil {
		panic(fmt.Sprintf("contigmap: removing block %d with no cluster", pfn))
	}
	m.frames.Get(pfn).Cluster = 0
	switch {
	case c.Blocks == 1:
		m.unlink(c)
	case pfn == c.Start:
		c.Start += addr.MaxOrderPages
		c.Blocks--
	case pfn == c.End()-addr.MaxOrderPages:
		c.Blocks--
	default:
		// Split: c keeps the left part; a new cluster takes the right.
		rightStart := pfn + addr.MaxOrderPages
		rightBlocks := (uint64(c.End()-rightStart) / addr.MaxOrderPages)
		c.Blocks = uint64(pfn-c.Start) / addr.MaxOrderPages
		r := &Cluster{id: m.nextID, Start: rightStart, Blocks: rightBlocks}
		m.nextID++
		m.byID[r.id] = r
		// Insert r immediately after c (address order preserved).
		r.prev, r.next = c, c.next
		if c.next != nil {
			c.next.prev = r
		}
		c.next = r
		m.retag(r)
	}
}

// absorb merges right into left (left.End() == right.Start).
func (m *Map) absorb(left, right *Cluster) {
	left.Blocks += right.Blocks
	m.unlink(right)
	m.retag(left)
}

// retag repoints every block head of the cluster at its (new) owner.
func (m *Map) retag(c *Cluster) {
	for p := c.Start; p < c.End(); p += addr.MaxOrderPages {
		m.frames.Get(p).Cluster = c.id
	}
}

func (m *Map) setOwner(pfn addr.PFN, id uint32) { m.frames.Get(pfn).Cluster = id }

func (m *Map) linkSorted(c *Cluster) {
	if m.head == nil || c.Start < m.head.Start {
		c.next = m.head
		if m.head != nil {
			m.head.prev = c
		}
		m.head = c
		return
	}
	cur := m.head
	for cur.next != nil && cur.next.Start < c.Start {
		cur = cur.next
	}
	c.prev, c.next = cur, cur.next
	if cur.next != nil {
		cur.next.prev = c
	}
	cur.next = c
}

func (m *Map) unlink(c *Cluster) {
	if c.prev != nil {
		c.prev.next = c.next
	} else {
		m.head = c.next
	}
	if c.next != nil {
		c.next.prev = c.prev
	}
	delete(m.byID, c.id)
}

// CheckInvariants validates map/buddy/frame consistency; test support.
// It allocates its own membership scratch; the audit engine calls
// CheckInvariantsScratch with a reused arena instead.
func (m *Map) CheckInvariants(b *buddy.Buddy) error {
	return m.CheckInvariantsScratch(b, make([]uint64, scratchWords(b)))
}

// scratchWords is the borrowed-bitset length CheckInvariantsScratch
// needs: one bit per MAX_ORDER block of the allocator's managed range.
func scratchWords(b *buddy.Buddy) int {
	return int((b.Pages()/addr.MaxOrderPages + 63) / 64)
}

// CheckInvariantsScratch is CheckInvariants over a borrowed membership
// bitset (one bit per MAX_ORDER block of b's range; buddy.ScratchWords
// words are always enough). The scratch is cleared word-at-a-time on
// entry; its contents on return are unspecified.
func (m *Map) CheckInvariantsScratch(b *buddy.Buddy, scratch []uint64) error {
	// Collect buddy MAX_ORDER membership, one bit per block index.
	onList := scratch[:scratchWords(b)]
	clear(onList)
	base := b.Base()
	var listed uint64
	b.VisitMaxOrder(func(p addr.PFN) {
		i := uint64(p-base) / addr.MaxOrderPages
		onList[i>>6] |= 1 << (i & 63)
		listed++
	})
	var mapped uint64
	prevEnd := addr.PFN(0)
	first := true
	for c := m.head; c != nil; c = c.next {
		if c.Blocks == 0 {
			return fmt.Errorf("empty cluster %v", c)
		}
		if !first && c.Start < prevEnd {
			return fmt.Errorf("cluster %v overlaps or unsorted (prev end %d)", c, prevEnd)
		}
		if !first && c.Start == prevEnd {
			return fmt.Errorf("cluster %v adjacent to previous; should have merged", c)
		}
		for p := c.Start; p < c.End(); p += addr.MaxOrderPages {
			if i := uint64(p-base) / addr.MaxOrderPages; p < base || !b.Contains(p) || onList[i>>6]&(1<<(i&63)) == 0 {
				return fmt.Errorf("cluster %v contains block %d not on MAX_ORDER list", c, p)
			}
			if m.frames.Get(p).Cluster != c.id {
				return fmt.Errorf("block %d back-pointer %d != cluster %d", p, m.frames.Get(p).Cluster, c.id)
			}
			mapped++
		}
		prevEnd = c.End()
		first = false
	}
	if mapped != listed {
		return fmt.Errorf("map covers %d blocks, buddy list has %d", mapped, listed)
	}
	// The byID index must agree with the address-sorted list exactly:
	// a cluster reachable by ID but not linked (or vice versa) means a
	// split/merge left the two views diverged.
	linked := 0
	for c := m.head; c != nil; c = c.next {
		if m.byID[c.id] != c {
			return fmt.Errorf("cluster %v not indexed under its id", c)
		}
		linked++
	}
	if linked != len(m.byID) {
		return fmt.Errorf("list has %d clusters, byID has %d", linked, len(m.byID))
	}
	return nil
}
