package contigmap

import (
	"testing"

	"repro/internal/mem/addr"
)

func TestFirstFitRestartsAtZero(t *testing.T) {
	m, _, _ := newMapped(t, 4)
	m.SetFirstFit(true)
	// Successive equal requests keep returning the same start: no
	// deferral — the behaviour the next-fit rover exists to avoid.
	s1, _, _ := m.FindFit(addr.MaxOrderPages)
	s2, _, _ := m.FindFit(addr.MaxOrderPages)
	if s1 != 0 || s2 != 0 {
		t.Fatalf("first-fit placements = %d, %d; want both 0", s1, s2)
	}
	// Switching back restores next-fit deferral.
	m.SetFirstFit(false)
	s3, _, _ := m.FindFit(addr.MaxOrderPages)
	if s3 == 0 {
		t.Fatalf("next-fit after first-fit should advance, got %d", s3)
	}
}
