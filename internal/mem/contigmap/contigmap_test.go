package contigmap

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/mem/addr"
	"repro/internal/mem/buddy"
	"repro/internal/mem/frame"
)

func newMapped(t testing.TB, nblocks uint64) (*Map, *buddy.Buddy, *frame.Table) {
	t.Helper()
	n := nblocks * addr.MaxOrderPages
	ft := frame.NewTable(0, n)
	b := buddy.New(ft, 0, n)
	return New(ft, b), b, ft
}

func TestInitialScanMergesWholeZone(t *testing.T) {
	m, b, _ := newMapped(t, 8)
	// A fresh zone is one fully contiguous run of 8 MAX_ORDER blocks.
	if m.Len() != 1 {
		t.Fatalf("clusters = %d, want 1", m.Len())
	}
	if m.Largest() != 8*addr.MaxOrderPages {
		t.Fatalf("Largest = %d", m.Largest())
	}
	if m.TotalPages() != 8*addr.MaxOrderPages {
		t.Fatalf("TotalPages = %d", m.TotalPages())
	}
	if err := m.CheckInvariants(b); err != nil {
		t.Fatal(err)
	}
}

func TestSplitOnAllocation(t *testing.T) {
	m, b, _ := newMapped(t, 4)
	// Allocate a page inside the second MAX_ORDER block: that block
	// leaves the MAX_ORDER list, splitting the cluster in two.
	if err := b.AllocBlockAt(addr.MaxOrderPages+5, 0); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 {
		t.Fatalf("clusters = %d, want 2", m.Len())
	}
	if err := m.CheckInvariants(b); err != nil {
		t.Fatal(err)
	}
	var sizes []uint64
	m.Visit(func(c *Cluster) { sizes = append(sizes, c.Blocks) })
	if sizes[0] != 1 || sizes[1] != 2 {
		t.Fatalf("cluster blocks = %v, want [1 2]", sizes)
	}
}

func TestMergeOnFree(t *testing.T) {
	m, b, _ := newMapped(t, 3)
	// Remove the middle block entirely, then free it back: clusters must
	// re-merge into one.
	mid := addr.PFN(addr.MaxOrderPages)
	if err := b.AllocBlockAt(mid, addr.MaxOrder); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 {
		t.Fatalf("clusters = %d, want 2", m.Len())
	}
	b.FreeBlock(mid, addr.MaxOrder)
	if m.Len() != 1 {
		t.Fatalf("clusters = %d, want 1 after merge", m.Len())
	}
	if m.Largest() != 3*addr.MaxOrderPages {
		t.Fatalf("Largest = %d", m.Largest())
	}
	if err := m.CheckInvariants(b); err != nil {
		t.Fatal(err)
	}
}

func TestShrinkAtEdges(t *testing.T) {
	m, b, _ := newMapped(t, 4)
	// Take the first block: cluster start advances.
	if err := b.AllocBlockAt(0, addr.MaxOrder); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 {
		t.Fatalf("clusters = %d", m.Len())
	}
	var start addr.PFN
	m.Visit(func(c *Cluster) { start = c.Start })
	if start != addr.MaxOrderPages {
		t.Fatalf("start = %d", start)
	}
	// Take the last block: cluster end retreats.
	if err := b.AllocBlockAt(3*addr.MaxOrderPages, addr.MaxOrder); err != nil {
		t.Fatal(err)
	}
	if m.Largest() != 2*addr.MaxOrderPages {
		t.Fatalf("Largest = %d", m.Largest())
	}
	if err := m.CheckInvariants(b); err != nil {
		t.Fatal(err)
	}
}

func TestFindFitBasics(t *testing.T) {
	m, b, _ := newMapped(t, 4)
	start, avail, ok := m.FindFit(addr.MaxOrderPages)
	if !ok || start != 0 || avail != 4*addr.MaxOrderPages {
		t.Fatalf("FindFit = (%d,%d,%v)", start, avail, ok)
	}
	// Request larger than anything: fallback to largest cluster.
	start, avail, ok = m.FindFit(100 * addr.MaxOrderPages)
	if !ok || avail != 4*addr.MaxOrderPages {
		t.Fatalf("oversized FindFit = (%d,%d,%v)", start, avail, ok)
	}
	// Empty map.
	for {
		if _, err := b.AllocBlock(addr.MaxOrder); err != nil {
			break
		}
	}
	if _, _, ok := m.FindFit(1); ok {
		t.Fatal("FindFit on empty map should report !ok")
	}
}

func TestNextFitRoverRotation(t *testing.T) {
	m, b, _ := newMapped(t, 6)
	// Carve three separate clusters of 2 blocks each by allocating
	// nothing — instead split the zone: remove blocks 2 and 5? zone is
	// 6 blocks [0..6). Remove block 2 -> clusters [0,2) and [3,6).
	// Remove block 4 -> [0,2), [3,4), [5,6).
	if err := b.AllocBlockAt(2*addr.MaxOrderPages, addr.MaxOrder); err != nil {
		t.Fatal(err)
	}
	if err := b.AllocBlockAt(4*addr.MaxOrderPages, addr.MaxOrder); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 3 {
		t.Fatalf("clusters = %d, want 3", m.Len())
	}
	// Next-fit with an address rover: successive equal requests advance
	// through the free space — first consuming cluster 0's two blocks,
	// then moving to the later clusters, then wrapping.
	want := []addr.PFN{
		0,                      // cluster [0,2): start
		addr.MaxOrderPages,     // cluster [0,2): rover advanced inside
		3 * addr.MaxOrderPages, // cluster [3,4)
		5 * addr.MaxOrderPages, // cluster [5,6)
		0,                      // wrap
	}
	for i, w := range want {
		s, _, ok := m.FindFit(addr.MaxOrderPages)
		if !ok || s != w {
			t.Fatalf("request %d placed at %d, want %d", i, s, w)
		}
	}
}

func TestRoverSurvivesClusterRemoval(t *testing.T) {
	m, b, _ := newMapped(t, 4)
	// Select the single big cluster as rover, then destroy it entirely.
	if _, _, ok := m.FindFit(addr.MaxOrderPages); !ok {
		t.Fatal("FindFit failed")
	}
	for i := 0; i < 4; i++ {
		if err := b.AllocBlockAt(addr.PFN(i*addr.MaxOrderPages), addr.MaxOrder); err != nil {
			t.Fatal(err)
		}
	}
	b.FreeBlock(0, addr.MaxOrder)
	start, _, ok := m.FindFit(1)
	if !ok || start != 0 {
		t.Fatalf("FindFit after rover removal = (%d, %v)", start, ok)
	}
}

func TestRandomChurnProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, b, _ := newMapped(t, 6)
		type alloc struct {
			pfn   addr.PFN
			order int
		}
		var live []alloc
		for step := 0; step < 200; step++ {
			if rng.Intn(2) == 0 {
				order := []int{0, addr.HugeOrder, addr.MaxOrder}[rng.Intn(3)]
				if pfn, err := b.AllocBlock(order); err == nil {
					live = append(live, alloc{pfn, order})
				}
			} else if len(live) > 0 {
				i := rng.Intn(len(live))
				b.FreeBlock(live[i].pfn, live[i].order)
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			if step%25 == 0 {
				if err := m.CheckInvariants(b); err != nil {
					t.Logf("seed %d step %d: %v", seed, step, err)
					return false
				}
			}
		}
		for _, a := range live {
			b.FreeBlock(a.pfn, a.order)
		}
		if err := m.CheckInvariants(b); err != nil {
			t.Logf("seed %d final: %v", seed, err)
			return false
		}
		// Fully free zone merges into exactly one cluster.
		if m.Len() != 1 {
			t.Logf("seed %d: %d clusters after full free", seed, m.Len())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestFindFitUpdatesUnderChurn(t *testing.T) {
	// FindFit never returns a cluster with stale size after churn.
	m, b, _ := newMapped(t, 4)
	if _, err := b.AllocBlock(0); err != nil { // splits lowest block
		t.Fatal(err)
	}
	start, avail, ok := m.FindFit(4 * addr.MaxOrderPages)
	if !ok {
		t.Fatal("FindFit failed")
	}
	// Only 3 MAX_ORDER blocks remain fully free: the default (unsorted,
	// LIFO) list pops the highest block, so the surviving cluster is
	// [0, 3*MaxOrderPages).
	if avail != 3*addr.MaxOrderPages {
		t.Fatalf("avail = %d, want %d", avail, 3*addr.MaxOrderPages)
	}
	if start != 0 {
		t.Fatalf("start = %d, want 0", start)
	}
}

func BenchmarkHookUpdates(b *testing.B) {
	m, bd, _ := newMapped(b, 16)
	_ = m
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pfn, err := bd.AllocBlock(addr.MaxOrder)
		if err != nil {
			b.Fatal(err)
		}
		bd.FreeBlock(pfn, addr.MaxOrder)
	}
}

func BenchmarkFindFit(b *testing.B) {
	m, bd, _ := newMapped(b, 32)
	// Fragment into ~16 clusters.
	for i := 0; i < 32; i += 2 {
		if err := bd.AllocBlockAt(addr.PFN(i*addr.MaxOrderPages), addr.MaxOrder); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.FindFit(addr.MaxOrderPages)
	}
}

// TestCheckInvariantsDetectsCorruption walks every failure branch of the
// map's CheckInvariants by corrupting its internals directly (we are
// in-package), requiring the named error. The borrowed-scratch rewrite
// must keep every one of these teeth.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	// twoClusters yields clusters [0,1024) and [2048,3072) by removing
	// the middle MAX_ORDER block from the free pool.
	twoClusters := func(t *testing.T) (*Map, *buddy.Buddy) {
		t.Helper()
		m, b, _ := newMapped(t, 3)
		if err := b.AllocBlockAt(addr.MaxOrderPages, addr.MaxOrder); err != nil {
			t.Fatal(err)
		}
		if m.Len() != 2 {
			t.Fatalf("fixture has %d clusters, want 2", m.Len())
		}
		return m, b
	}
	tests := []struct {
		name    string
		corrupt func(t *testing.T, m *Map, b *buddy.Buddy)
		want    string
	}{
		{"empty-cluster", func(t *testing.T, m *Map, b *buddy.Buddy) {
			m.head.Blocks = 0
		}, "empty cluster"},
		{"overlapping-clusters", func(t *testing.T, m *Map, b *buddy.Buddy) {
			m.head.next.Start = m.head.End() - addr.MaxOrderPages
		}, "overlaps or unsorted"},
		{"unmerged-adjacent", func(t *testing.T, m *Map, b *buddy.Buddy) {
			m.head.next.Start = m.head.End()
		}, "should have merged"},
		{"block-not-on-list", func(t *testing.T, m *Map, b *buddy.Buddy) {
			// Extend the first cluster over the allocated middle block.
			m.head.Blocks++
		}, "not on MAX_ORDER list"},
		{"stale-back-pointer", func(t *testing.T, m *Map, b *buddy.Buddy) {
			m.frames.Get(m.head.Start).Cluster = 999
		}, "back-pointer"},
		{"coverage-count-drift", func(t *testing.T, m *Map, b *buddy.Buddy) {
			// A cluster vanishes from both views while its block stays
			// on the buddy list: coverage totals no longer agree.
			m.unlink(m.head)
		}, "map covers"},
		{"id-index-mismatch", func(t *testing.T, m *Map, b *buddy.Buddy) {
			m.byID[m.head.id] = m.head.next
		}, "not indexed under its id"},
		{"orphan-indexed-cluster", func(t *testing.T, m *Map, b *buddy.Buddy) {
			m.byID[999] = &Cluster{id: 999, Start: 0, Blocks: 1}
		}, "list has"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			m, b := twoClusters(t)
			tc.corrupt(t, m, b)
			err := m.CheckInvariants(b)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("CheckInvariants = %v, want error containing %q", err, tc.want)
			}
		})
	}
}
