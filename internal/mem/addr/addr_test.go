package addr

import (
	"testing"
	"testing/quick"
)

func TestConstants(t *testing.T) {
	if PageSize != 4096 {
		t.Fatalf("PageSize = %d, want 4096", PageSize)
	}
	if HugeSize != 2<<20 {
		t.Fatalf("HugeSize = %d, want 2MiB", HugeSize)
	}
	if HugeOrder != 9 {
		t.Fatalf("HugeOrder = %d, want 9", HugeOrder)
	}
	if MaxOrderSize != 4<<20 {
		t.Fatalf("MaxOrderSize = %d, want 4MiB", MaxOrderSize)
	}
	if MaxOrderPages != 1024 {
		t.Fatalf("MaxOrderPages = %d, want 1024", MaxOrderPages)
	}
}

func TestVirtAddrRounding(t *testing.T) {
	cases := []struct {
		in               VirtAddr
		down, up         VirtAddr
		hugeDown, hugeUp VirtAddr
	}{
		{0, 0, 0, 0, 0},
		{1, 0, PageSize, 0, HugeSize},
		{PageSize, PageSize, PageSize, 0, HugeSize},
		{PageSize + 5, PageSize, 2 * PageSize, 0, HugeSize},
		{HugeSize, HugeSize, HugeSize, HugeSize, HugeSize},
		{HugeSize - 1, HugeSize - PageSize, HugeSize, 0, HugeSize},
	}
	for _, c := range cases {
		if got := c.in.PageDown(); got != c.down {
			t.Errorf("PageDown(%v) = %v, want %v", c.in, got, c.down)
		}
		if got := c.in.PageUp(); got != c.up {
			t.Errorf("PageUp(%v) = %v, want %v", c.in, got, c.up)
		}
		if got := c.in.HugeDown(); got != c.hugeDown {
			t.Errorf("HugeDown(%v) = %v, want %v", c.in, got, c.hugeDown)
		}
		if got := c.in.HugeUp(); got != c.hugeUp {
			t.Errorf("HugeUp(%v) = %v, want %v", c.in, got, c.hugeUp)
		}
	}
}

func TestAlignmentPredicates(t *testing.T) {
	if !VirtAddr(0).PageAligned() || !VirtAddr(0).HugeAligned() {
		t.Error("zero should be aligned to everything")
	}
	if VirtAddr(PageSize + 1).PageAligned() {
		t.Error("PageSize+1 should not be page aligned")
	}
	if !VirtAddr(3 * HugeSize).HugeAligned() {
		t.Error("3*HugeSize should be huge aligned")
	}
	if VirtAddr(HugeSize + PageSize).HugeAligned() {
		t.Error("HugeSize+PageSize should not be huge aligned")
	}
	if !PhysAddr(5 * PageSize).PageAligned() {
		t.Error("5*PageSize should be page aligned")
	}
}

func TestPFNRoundTrip(t *testing.T) {
	for _, pfn := range []PFN{0, 1, 511, 512, 123456} {
		if got := pfn.Addr().Frame(); got != pfn {
			t.Errorf("roundtrip %d -> %d", pfn, got)
		}
	}
	for _, vpn := range []VPN{0, 7, 99999} {
		if got := vpn.Addr().PageNumber(); got != vpn {
			t.Errorf("vpn roundtrip %d -> %d", vpn, got)
		}
	}
}

func TestOffsetArithmetic(t *testing.T) {
	v := VirtAddr(0x7f00_0000_0000)
	p := PhysAddr(0x1234_5000)
	o := OffsetOf(v, p)
	if got := o.Target(v); got != p {
		t.Fatalf("Target = %v, want %v", got, p)
	}
	// Contiguity: the same offset maps v+n to p+n for any n.
	for _, n := range []uint64{PageSize, HugeSize, 3*HugeSize + PageSize} {
		want := PhysAddr(uint64(p) + n)
		if got := o.Target(v.Add(n)); got != want {
			t.Errorf("Target(v+%d) = %v, want %v", n, got, want)
		}
	}
}

func TestOffsetPhysicalAboveVirtual(t *testing.T) {
	// Physical address numerically larger than virtual must still work
	// through two's-complement wraparound.
	v := VirtAddr(0x1000)
	p := PhysAddr(0x9999_0000)
	o := OffsetOf(v, p)
	if got := o.Target(v); got != p {
		t.Fatalf("Target = %v, want %v", got, p)
	}
	if got := o.Target(v.Add(PageSize)); got != p+PageSize {
		t.Fatalf("Target+page = %v, want %v", got, p+PageSize)
	}
}

func TestOffsetRoundTripProperty(t *testing.T) {
	f := func(v, p uint64) bool {
		va, pa := VirtAddr(v), PhysAddr(p)
		return OffsetOf(va, pa).Target(va) == pa
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOffsetShiftInvarianceProperty(t *testing.T) {
	// For any delta d, Target(v+d) == Target(v)+d: offsets encode pure
	// translation, independent of alignment.
	f := func(v, p, d uint64) bool {
		va, pa := VirtAddr(v), PhysAddr(p)
		o := OffsetOf(va, pa)
		return o.Target(va.Add(d)) == pa+PhysAddr(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOrderHelpers(t *testing.T) {
	if OrderPages(0) != 1 || OrderPages(9) != 512 || OrderPages(10) != 1024 {
		t.Fatal("OrderPages wrong")
	}
	if OrderBytes(9) != HugeSize {
		t.Fatalf("OrderBytes(9) = %d, want HugeSize", OrderBytes(9))
	}
	cases := []struct {
		pages uint64
		order int
	}{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {512, 9}, {513, 10}, {1024, 10},
		{100000, MaxOrder}, // capped
	}
	for _, c := range cases {
		if got := OrderFor(c.pages); got != c.order {
			t.Errorf("OrderFor(%d) = %d, want %d", c.pages, got, c.order)
		}
	}
}

func TestBuddyMath(t *testing.T) {
	// Order-0 buddies are adjacent frames.
	if BuddyOf(0, 0) != 1 || BuddyOf(1, 0) != 0 {
		t.Fatal("order-0 buddies wrong")
	}
	// Order-3 block at 8 has buddy at 0 and parent 0.
	if BuddyOf(8, 3) != 0 {
		t.Fatalf("BuddyOf(8,3) = %d, want 0", BuddyOf(8, 3))
	}
	if ParentOf(8, 3) != 0 {
		t.Fatalf("ParentOf(8,3) = %d, want 0", ParentOf(8, 3))
	}
	if ParentOf(24, 3) != 16 {
		t.Fatalf("ParentOf(24,3) = %d, want 16", ParentOf(24, 3))
	}
}

func TestBuddyInvolutionProperty(t *testing.T) {
	// BuddyOf is an involution, and both buddies share a parent.
	f := func(raw uint64, orderRaw uint8) bool {
		order := int(orderRaw) % MaxOrder
		pfn := PFN(raw &^ (OrderPages(order) - 1)) // align to order
		b := BuddyOf(pfn, order)
		return BuddyOf(b, order) == pfn && ParentOf(pfn, order) == ParentOf(b, order)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAlignedTo(t *testing.T) {
	if !AlignedTo(0, MaxOrder) {
		t.Error("0 aligned to everything")
	}
	if !AlignedTo(512, 9) || AlignedTo(512, 10) {
		t.Error("512 is 2M-aligned but not 4M-aligned")
	}
	if AlignedTo(5, 1) {
		t.Error("5 is not order-1 aligned")
	}
}

func TestBytesPagesConversion(t *testing.T) {
	if PagesToBytes(3) != 3*PageSize {
		t.Fatal("PagesToBytes wrong")
	}
	if BytesToPages(1) != 1 || BytesToPages(PageSize) != 1 || BytesToPages(PageSize+1) != 2 {
		t.Fatal("BytesToPages rounding wrong")
	}
}
