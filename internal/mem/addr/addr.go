// Package addr defines the address-space vocabulary shared by every layer
// of the simulator: virtual and physical addresses, page frame numbers,
// page-size constants, and the alignment arithmetic that the buddy
// allocator, page tables, and contiguity machinery all rely on.
//
// The simulator models an x86-64-like machine: 4 KiB base pages, 2 MiB
// huge pages, and a buddy allocator whose largest block is
// 2^MaxOrder base pages (4 MiB with the Linux default MaxOrder = 10
// free-list index, i.e. MAX_ORDER-1 in Linux terms; we follow the paper
// and call the largest tracked block "MAX_ORDER block").
package addr

import "fmt"

// Page geometry. All sizes are in bytes.
const (
	// PageShift is log2 of the base page size (4 KiB).
	PageShift = 12
	// PageSize is the base page size in bytes.
	PageSize = 1 << PageShift
	// PageMask masks the offset-within-page bits.
	PageMask = PageSize - 1

	// HugeShift is log2 of the huge page size (2 MiB).
	HugeShift = 21
	// HugeSize is the transparent huge page size in bytes.
	HugeSize = 1 << HugeShift
	// HugeMask masks the offset-within-huge-page bits.
	HugeMask = HugeSize - 1

	// HugeOrder is the buddy order of a huge page (512 base pages).
	HugeOrder = HugeShift - PageShift

	// HugePages is the number of base pages in a huge page: the span of
	// a 2 MiB page-table leaf in 4 KiB PTEs. Named so huge-leaf checks
	// read as intent instead of a magic 512.
	HugePages = HugeSize / PageSize

	// MaxOrder is the largest buddy order tracked by the allocator.
	// A MaxOrder block is 2^MaxOrder base pages = 4 MiB, matching the
	// Linux default the paper describes (MAX_ORDER = 11 lists, orders
	// 0..10).
	MaxOrder = 10

	// MaxOrderPages is the number of base pages in a MaxOrder block.
	MaxOrderPages = 1 << MaxOrder

	// MaxOrderSize is the byte size of a MaxOrder block (4 MiB).
	MaxOrderSize = MaxOrderPages * PageSize
)

// VirtAddr is a (guest or host) virtual address.
type VirtAddr uint64

// PhysAddr is a physical address. In virtualized setups the same type is
// used for guest-physical (gPA) and host-physical (hPA) addresses; the
// owning structure disambiguates.
type PhysAddr uint64

// PFN is a physical frame number: PhysAddr >> PageShift.
type PFN uint64

// VPN is a virtual page number: VirtAddr >> PageShift.
type VPN uint64

// NoPFN is a sentinel for "no frame".
const NoPFN = PFN(^uint64(0))

// PageNumber returns the virtual page number containing v.
func (v VirtAddr) PageNumber() VPN { return VPN(v >> PageShift) }

// PageAligned reports whether v is 4 KiB aligned.
func (v VirtAddr) PageAligned() bool { return v&PageMask == 0 }

// HugeAligned reports whether v is 2 MiB aligned.
func (v VirtAddr) HugeAligned() bool { return v&HugeMask == 0 }

// PageDown rounds v down to a page boundary.
func (v VirtAddr) PageDown() VirtAddr { return v &^ PageMask }

// PageUp rounds v up to a page boundary.
func (v VirtAddr) PageUp() VirtAddr { return (v + PageMask) &^ PageMask }

// HugeDown rounds v down to a huge-page boundary.
func (v VirtAddr) HugeDown() VirtAddr { return v &^ HugeMask }

// HugeUp rounds v up to a huge-page boundary.
func (v VirtAddr) HugeUp() VirtAddr { return (v + HugeMask) &^ HugeMask }

// Add returns v + n bytes.
func (v VirtAddr) Add(n uint64) VirtAddr { return v + VirtAddr(n) }

func (v VirtAddr) String() string { return fmt.Sprintf("v0x%x", uint64(v)) }

// Frame returns the frame number containing p.
func (p PhysAddr) Frame() PFN { return PFN(p >> PageShift) }

// PageAligned reports whether p is 4 KiB aligned.
func (p PhysAddr) PageAligned() bool { return p&PageMask == 0 }

// HugeAligned reports whether p is 2 MiB aligned.
func (p PhysAddr) HugeAligned() bool { return p&HugeMask == 0 }

// PageDown rounds p down to a page boundary.
func (p PhysAddr) PageDown() PhysAddr { return p &^ PageMask }

func (p PhysAddr) String() string { return fmt.Sprintf("p0x%x", uint64(p)) }

// Addr returns the physical address of the first byte of the frame.
func (f PFN) Addr() PhysAddr { return PhysAddr(f) << PageShift }

// Addr returns the virtual address of the first byte of the page.
func (n VPN) Addr() VirtAddr { return VirtAddr(n) << PageShift }

// Offset is the paper's central representation of a larger-than-a-page
// contiguous mapping: the common virtual-minus-physical delta shared by
// every page of the mapping. It is a signed quantity carried as the raw
// two's-complement difference so that "physical above virtual" works too.
type Offset uint64

// OffsetOf computes the mapping offset for a (virtual, physical) pair.
func OffsetOf(v VirtAddr, p PhysAddr) Offset { return Offset(uint64(v) - uint64(p)) }

// Target applies the offset to a virtual address, predicting the physical
// address the mapping implies: p = v - offset.
func (o Offset) Target(v VirtAddr) PhysAddr { return PhysAddr(uint64(v) - uint64(o)) }

// TargetPFN is Target truncated to the containing frame.
func (o Offset) TargetPFN(v VirtAddr) PFN { return o.Target(v).Frame() }

// PagesToBytes converts a page count to bytes.
func PagesToBytes(pages uint64) uint64 { return pages << PageShift }

// BytesToPages converts a byte count to pages, rounding up.
func BytesToPages(bytes uint64) uint64 { return (bytes + PageMask) >> PageShift }

// OrderPages returns the number of base pages in a block of the given
// buddy order.
func OrderPages(order int) uint64 { return 1 << uint(order) }

// OrderBytes returns the byte size of a block of the given buddy order.
func OrderBytes(order int) uint64 { return OrderPages(order) << PageShift }

// OrderFor returns the smallest buddy order whose block holds at least
// pages base pages, capped at MaxOrder.
func OrderFor(pages uint64) int {
	order := 0
	for OrderPages(order) < pages && order < MaxOrder {
		order++
	}
	return order
}

// LeafOrder maps a page-table leaf size in base pages (1 or HugePages,
// the only sizes a leaf can have) to the buddy order of the block
// backing it: HugeOrder for a huge leaf, 0 for a base leaf.
func LeafOrder(pages uint64) int {
	if pages == HugePages {
		return HugeOrder
	}
	return 0
}

// AlignedTo reports whether pfn is naturally aligned for the given order.
func AlignedTo(pfn PFN, order int) bool {
	return uint64(pfn)&(OrderPages(order)-1) == 0
}

// BuddyOf returns the buddy frame of the block starting at pfn with the
// given order: the sibling block that, when both free, coalesces with it.
func BuddyOf(pfn PFN, order int) PFN {
	return PFN(uint64(pfn) ^ OrderPages(order))
}

// ParentOf returns the first frame of the order+1 block containing pfn.
func ParentOf(pfn PFN, order int) PFN {
	return PFN(uint64(pfn) &^ (OrderPages(order+1) - 1))
}
