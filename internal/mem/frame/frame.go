// Package frame models the kernel's mem_map: one metadata record per
// physical page frame. CA paging consults this table to decide whether
// the target frame of an offset-directed allocation is free, exactly as
// the paper describes Linux doing through the page struct's _mapcount
// and _count attributes.
//
// The table also re-purposes a per-frame pointer ("mapping" in Linux) to
// point free MAX_ORDER base blocks at their contiguity-map cluster, so
// cluster updates on buddy insert/delete run in O(1).
package frame

import (
	"fmt"

	"repro/internal/mem/addr"
)

// State describes what a frame is currently used for.
type State uint8

const (
	// Free: the frame belongs to a buddy free block (possibly as the
	// interior of a larger block).
	Free State = iota
	// Allocated: the frame backs an anonymous or page-cache mapping.
	Allocated
	// Reserved: the frame is pinned by the "kernel" (hog memory,
	// firmware holes); it never enters the buddy allocator.
	Reserved
)

func (s State) String() string {
	switch s {
	case Free:
		return "free"
	case Allocated:
		return "allocated"
	case Reserved:
		return "reserved"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Frame is the per-page metadata record (Linux: struct page). The
// single-byte fields are grouped so the struct packs into 12 bytes —
// boot zeroes and fills one record per physical page, so record size
// is machine-construction time.
type Frame struct {
	// State is the coarse usage state.
	State State

	// BuddyOrder is meaningful only for the head frame of a free buddy
	// block currently sitting on a free list; -1 otherwise.
	BuddyOrder int8

	// AllocOrder remembers the order the frame's block was allocated
	// with (0 for 4K, 9 for THP), on the head frame of the allocation.
	AllocOrder int8

	// Zone is the NUMA node the frame belongs to.
	Zone uint8

	// MapCount counts the number of page-table mappings referencing the
	// frame (Linux _mapcount+1 semantics simplified: 0 = unmapped).
	MapCount int32

	// Cluster is the contiguity-map cluster ID this frame's MAX_ORDER
	// block belongs to while free; 0 means none. (Linux re-purposes the
	// page->mapping field the same way.)
	Cluster uint32
}

// Table is the machine-wide frame table, indexed by PFN.
type Table struct {
	frames []Frame
	base   addr.PFN // first PFN covered (usually 0)
}

// NewTable creates a frame table covering nframes frames starting at
// base. All frames start Reserved; zones release them to their buddy
// allocators at boot.
func NewTable(base addr.PFN, nframes uint64) *Table {
	t := NewTableUninit(base, nframes)
	Fill(t.frames, Frame{State: Reserved, BuddyOrder: -1, AllocOrder: -1})
	return t
}

// NewTableUninit creates a table whose records are the zero Frame value
// rather than Reserved-filled. For callers that immediately fill every
// covered range themselves — zone.NewMachine covers the whole table
// with per-zone fills — the boot Reserved fill is one full table pass
// of overwritten work.
func NewTableUninit(base addr.PFN, nframes uint64) *Table {
	return &Table{
		frames: make([]Frame, nframes),
		base:   base,
	}
}

// Fill sets every record in fs to f via a doubling copy: boot-time
// table initialisation is memmove-bound instead of paying per-field
// stores for hundreds of thousands of frames.
func Fill(fs []Frame, f Frame) {
	if len(fs) == 0 {
		return
	}
	fs[0] = f
	for n := 1; n < len(fs); n *= 2 {
		copy(fs[n:], fs[:n])
	}
}

// Len returns the number of frames covered.
func (t *Table) Len() uint64 { return uint64(len(t.frames)) }

// Base returns the first covered PFN.
func (t *Table) Base() addr.PFN { return t.base }

// Contains reports whether pfn is within the table.
func (t *Table) Contains(pfn addr.PFN) bool {
	return pfn >= t.base && uint64(pfn-t.base) < uint64(len(t.frames))
}

// Get returns the frame record for pfn. It panics on out-of-range PFNs:
// those indicate a simulator bug, not a recoverable condition.
func (t *Table) Get(pfn addr.PFN) *Frame {
	if !t.Contains(pfn) {
		panic(fmt.Sprintf("frame: PFN %d outside table [%d,%d)", pfn, t.base, uint64(t.base)+t.Len()))
	}
	return &t.frames[pfn-t.base]
}

// Slice returns the records for [pfn, pfn+n) as a slice, bounds-checked
// once. Callers touching every frame of a block (buddy mark loops, boot
// release) use it instead of n Get calls.
func (t *Table) Slice(pfn addr.PFN, n uint64) []Frame {
	if n == 0 {
		return nil
	}
	if !t.Contains(pfn) || !t.Contains(pfn+addr.PFN(n-1)) {
		panic(fmt.Sprintf("frame: range [%d,%d) outside table [%d,%d)", pfn, uint64(pfn)+n, t.base, uint64(t.base)+t.Len()))
	}
	i := uint64(pfn - t.base)
	return t.frames[i : i+n]
}

// IsFree reports whether the frame is free (available to the allocator).
func (t *Table) IsFree(pfn addr.PFN) bool {
	return t.Contains(pfn) && t.Get(pfn).State == Free
}

// RangeFree reports whether all npages frames starting at pfn are free.
// Bounds are checked once; the scan itself is a straight slice walk.
func (t *Table) RangeFree(pfn addr.PFN, npages uint64) bool {
	if !t.Contains(pfn) || !t.Contains(pfn+addr.PFN(npages-1)) {
		return false
	}
	i := uint64(pfn - t.base)
	for j := range t.frames[i : i+npages] {
		if t.frames[i+uint64(j)].State != Free {
			return false
		}
	}
	return true
}

// CountState counts frames currently in the given state; used by tests
// and fragmentation metrics.
func (t *Table) CountState(s State) uint64 {
	var n uint64
	for i := range t.frames {
		if t.frames[i].State == s {
			n++
		}
	}
	return n
}
