package frame

import (
	"testing"

	"repro/internal/mem/addr"
)

func TestNewTableStartsReserved(t *testing.T) {
	tab := NewTable(0, 128)
	if tab.Len() != 128 {
		t.Fatalf("Len = %d, want 128", tab.Len())
	}
	if got := tab.CountState(Reserved); got != 128 {
		t.Fatalf("reserved = %d, want 128", got)
	}
	f := tab.Get(0)
	if f.BuddyOrder != -1 || f.AllocOrder != -1 {
		t.Fatal("orders should start at -1")
	}
}

func TestContainsAndBase(t *testing.T) {
	tab := NewTable(100, 50)
	if tab.Base() != 100 {
		t.Fatalf("Base = %d", tab.Base())
	}
	if tab.Contains(99) || !tab.Contains(100) || !tab.Contains(149) || tab.Contains(150) {
		t.Fatal("Contains boundaries wrong")
	}
}

func TestGetPanicsOutOfRange(t *testing.T) {
	tab := NewTable(0, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range PFN")
		}
	}()
	tab.Get(4)
}

func TestIsFreeAndRangeFree(t *testing.T) {
	tab := NewTable(0, 16)
	for i := addr.PFN(0); i < 16; i++ {
		tab.Get(i).State = Free
	}
	if !tab.RangeFree(0, 16) {
		t.Fatal("all frames free, RangeFree false")
	}
	tab.Get(7).State = Allocated
	if tab.IsFree(7) {
		t.Fatal("frame 7 allocated but IsFree true")
	}
	if tab.RangeFree(0, 16) {
		t.Fatal("RangeFree should see allocated frame 7")
	}
	if !tab.RangeFree(0, 7) || !tab.RangeFree(8, 8) {
		t.Fatal("sub-ranges around 7 should be free")
	}
	// Ranges that fall off the table are not free.
	if tab.RangeFree(10, 100) {
		t.Fatal("out-of-range RangeFree should be false")
	}
	if tab.IsFree(99) {
		t.Fatal("out-of-range IsFree should be false")
	}
}

func TestStateString(t *testing.T) {
	if Free.String() != "free" || Allocated.String() != "allocated" || Reserved.String() != "reserved" {
		t.Fatal("State strings wrong")
	}
	if State(9).String() == "" {
		t.Fatal("unknown state should still stringify")
	}
}

func TestCountState(t *testing.T) {
	tab := NewTable(0, 10)
	for i := addr.PFN(0); i < 4; i++ {
		tab.Get(i).State = Free
	}
	for i := addr.PFN(4); i < 7; i++ {
		tab.Get(i).State = Allocated
	}
	if tab.CountState(Free) != 4 || tab.CountState(Allocated) != 3 || tab.CountState(Reserved) != 3 {
		t.Fatal("CountState wrong")
	}
}
