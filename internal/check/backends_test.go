package check

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/hw/translation"
)

// runDiffer drives nops random ops (the same weighted stream
// Machine.Run uses) through a BackendDiffer and returns it.
func runDiffer(t *testing.T, cfg Config, nops int, names ...string) *BackendDiffer {
	t.Helper()
	d, err := NewBackendDiffer(cfg, names...)
	if err != nil {
		t.Fatal(err)
	}
	rr := rand.New(rand.NewSource(int64(cfg.Seed)))
	for i := 0; i < nops; i++ {
		op := RandomOp(rr)
		if err := d.Step(op); err != nil {
			t.Fatalf("op %d (%s A=%#x B=%#x C=%#x): %v", i, op.Kind, op.A, op.B, op.C, err)
		}
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestBackendDifferential is the cross-backend differential net: every
// backend rides the same 10k-op machine run (all four attached to one
// machine, so each backend sees every op) under two seeds, native
// mode, with daemons supplying promotions and migrations. Every op is
// followed by Resolve-vs-oracle and protocol-drive cross-checks; the
// vacuity asserts make sure the probe machinery actually ran.
func TestBackendDifferential(t *testing.T) {
	const nops = 10_000
	for _, seed := range []uint64{1, 2} {
		cfg := Config{Policy: PolicyCA, Daemons: true, Seed: seed, CheckEvery: 512}
		d := runDiffer(t, cfg, nops)
		if d.m.Stats.Ops != nops {
			t.Fatalf("seed %d: ran %d ops, want %d", seed, d.m.Stats.Ops, nops)
		}
		if min := uint64(nops); d.Probes < min || d.Drives < min {
			t.Fatalf("seed %d: only %d probes / %d drives — differ barely exercised", seed, d.Probes, d.Drives)
		}
		for _, s := range d.backends {
			if c := s.be.Counters(); c.Misses == 0 || c.Hits == 0 {
				t.Fatalf("seed %d: backend %s never exercised both paths: %+v", seed, s.be.Name(), c)
			}
		}
	}
}

// TestBackendDifferentialNested runs the same net inside a VM: backend
// translations are composed guest→host physical addresses, checked
// against the oracle's recorded 2D composition. Shorter stream — every
// nested op costs ~3x — but still two seeds across all backends.
func TestBackendDifferentialNested(t *testing.T) {
	for _, seed := range []uint64{3, 4} {
		cfg := Config{Nested: true, Policy: PolicyCA, Seed: seed, CheckEvery: 256}
		d := runDiffer(t, cfg, 2_000)
		if d.Probes == 0 || d.Drives == 0 {
			t.Fatalf("seed %d: nested differ vacuous", seed)
		}
	}
}

// TestBackendDifferCatchesStaleTranslations proves the net is not
// vacuous: with invalidation detached mid-run (DetachInvalidation —
// the backends stop hearing mapping-change events while the kernel
// keeps promoting, migrating, remapping and CoW-copying), every
// derived-state backend must eventually serve a translation the oracle
// disproves, and the differ must report it. The paged backend carries
// no event-fed state, so it is covered by the translation package's
// walk-cache corruption test instead.
func TestBackendDifferCatchesStaleTranslations(t *testing.T) {
	const (
		cleanOps = 500
		dirtyOps = 4_000
	)
	for _, name := range []string{translation.BackendHashed, translation.BackendRMM, translation.BackendDS} {
		t.Run(name, func(t *testing.T) {
			cfg := Config{Policy: PolicyCA, Daemons: true, Seed: 7, CheckEvery: 512}
			d, err := NewBackendDiffer(cfg, name)
			if err != nil {
				t.Fatal(err)
			}
			rr := rand.New(rand.NewSource(int64(cfg.Seed)))
			for i := 0; i < cleanOps; i++ {
				if err := d.Step(RandomOp(rr)); err != nil {
					t.Fatalf("clean op %d: %v", i, err)
				}
			}
			d.DetachInvalidation()
			for i := 0; i < dirtyOps; i++ {
				err := d.Step(RandomOp(rr))
				if err == nil {
					continue
				}
				if !strings.Contains(err.Error(), "backend "+name) {
					t.Fatalf("divergence blamed elsewhere: %v", err)
				}
				t.Logf("stale translation caught after %d detached ops: %v", i+1, err)
				return
			}
			t.Fatalf("%d ops with invalidation detached and the differ never diverged — net is vacuous", dirtyOps)
		})
	}
}
