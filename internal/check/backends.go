package check

import (
	"fmt"

	"repro/internal/hw/translation"
	"repro/internal/mem/addr"
)

// backendProbesPerOp is how many in-VMA virtual addresses the differ
// cross-checks against every backend after each op; probes of
// previously sampled (possibly since-unmapped) addresses and one
// guaranteed out-of-space probe ride along.
const (
	backendProbesPerOp = 4
	backendHistProbes  = 2  // re-probes of earlier sample addresses per op
	backendHistSize    = 64 // ring of remembered sample addresses
)

// backendSalt decorrelates the differ's address sampling from the
// parameter expansion Machine.Apply performs on the same op.
const backendSalt = 0xd1ffe12b_ac4e2d05

// backendState is one attached backend plus its counter mirror: the
// differ predicts exactly how each Lookup must move the counters and
// fails on any disagreement, which pins both self-consistency
// invariants (hits+misses == lookups, all three monotone).
type backendState struct {
	be   translation.Backend
	want translation.Counters
}

// BackendDiffer drives a Machine op stream and, after every op,
// cross-checks each attached translation backend against the flat
// page-table oracle of the machine's initial process:
//
//   - Resolve (the non-mutating probe) must agree with the oracle on
//     the physical address and mapped-ness of sampled pages — mapped
//     pages inside live VMAs, never-faulted pages, and an address no
//     VMA covers;
//   - the access protocol (Lookup → Translate → Insert) run on the
//     same addresses must return oracle-correct physical addresses on
//     every successful walk and move the hit/miss counters exactly as
//     observed, with hits+misses == lookups and no counter moving
//     backwards.
//
// Backends attach to the first process because it can never exit (only
// forked children are torn down at the process cap), so its page
// tables — and the observer subscriptions backends hang off them —
// live for the whole run.
type BackendDiffer struct {
	m        *Machine
	backends []*backendState
	detached bool

	// hist remembers recently probed addresses so later ops re-probe
	// them after the mappings underneath have churned. Without it the
	// probe set tracks the live VMAs and derived state that stales
	// *behind* an unmap — a range or segment still covering a dead
	// region — would go unobserved.
	hist    [backendHistSize]addr.VirtAddr
	histLen int
	histPos int

	// Probes and Drives count Resolve cross-checks and access-protocol
	// drives, so tests can assert a run was not vacuously green.
	Probes, Drives uint64
}

// NewBackendDiffer builds a Machine for cfg and attaches the named
// translation backends (all of them when names is empty) to its
// initial process, using the machine's own TLB geometry.
func NewBackendDiffer(cfg Config, names ...string) (*BackendDiffer, error) {
	m, err := NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		names = translation.Names()
	}
	d := &BackendDiffer{m: m}
	for _, n := range names {
		be, err := translation.New(n, m.procs[0].env, translation.Config{
			TLBEntries: tlbEntries,
			TLBWays:    tlbWays,
		})
		if err != nil {
			return nil, err
		}
		d.backends = append(d.backends, &backendState{be: be})
	}
	return d, nil
}

// Step applies one op to the machine (with all its own oracle checks)
// and then cross-checks every backend.
func (d *BackendDiffer) Step(op Op) error {
	if err := d.m.Apply(op); err != nil {
		return err
	}
	return d.crossCheck(op)
}

// Finish runs the machine's full end-of-stream check.
func (d *BackendDiffer) Finish() error { return d.m.CheckAll() }

// DetachInvalidation unhooks every backend from the page tables while
// the machine keeps mutating them — simulating an invalidation channel
// that silently drops events. Derived-state backends (hashed, rmm, ds)
// must then serve stale translations that the next crossCheck catches;
// the corruption test uses this to prove the differ is not vacuous.
// The paged backend is exempt from the divergence expectation: it
// subscribes to nothing (its walk memo is generation-checked), so its
// staleness story is pinned by the translation package's own
// corruption test instead.
func (d *BackendDiffer) DetachInvalidation() {
	for _, s := range d.backends {
		s.be.Close()
	}
	d.detached = true
}

// sampleVAs picks the page-aligned probe set for one op: addresses
// inside live VMAs (mapped or never faulted, the PRNG does not care),
// a few addresses from earlier ops' samples — whose VMAs may be long
// gone — and one address far above anything the machine maps.
func (d *BackendDiffer) sampleVAs(r *prng) []addr.VirtAddr {
	mp := d.m.procs[0]
	vas := make([]addr.VirtAddr, 0, backendProbesPerOp+backendHistProbes+1)
	if len(mp.vmas) > 0 {
		for i := 0; i < backendProbesPerOp; i++ {
			v := mp.vmas[r.intn(uint64(len(mp.vmas)))]
			vas = append(vas, v.Start.Add(r.intn(v.Pages())*addr.PageSize))
		}
	}
	for i := 0; i < backendHistProbes && d.histLen > 0; i++ {
		vas = append(vas, d.hist[r.intn(uint64(d.histLen))])
	}
	for _, va := range vas[:min(len(vas), backendProbesPerOp)] {
		d.hist[d.histPos] = va
		d.histPos = (d.histPos + 1) % backendHistSize
		if d.histLen < backendHistSize {
			d.histLen++
		}
	}
	return append(vas, addr.VirtAddr(1)<<40)
}

// expected is the oracle's verdict for one page-aligned address: the
// physical address backends must serve, or mapped=false. In nested
// mode the composed host PA is the currency; a guest frame whose host
// backing appeared after the oracle's last refresh is upgraded lazily,
// exactly like checkAll does.
func (d *BackendDiffer) expected(va addr.VirtAddr) (addr.PhysAddr, bool) {
	mp := d.m.procs[0]
	e, ok := mp.oracle.entries[va.PageNumber()]
	if !ok {
		return 0, false
	}
	if d.m.vm == nil {
		return e.pa, true
	}
	if e.hpaOK {
		return e.hpa, true
	}
	hpa, hok := d.m.vm.TranslateFull(mp.env.Proc, va)
	if !hok {
		return 0, false
	}
	e.hpa, e.hpaOK = hpa, true
	mp.oracle.entries[va.PageNumber()] = e
	return hpa, true
}

// crossCheck runs the per-op backend checks described on BackendDiffer.
func (d *BackendDiffer) crossCheck(op Op) error {
	r := newPRNG(op, d.m.cfg.Seed^backendSalt)
	vas := d.sampleVAs(r)
	for _, s := range d.backends {
		be := s.be
		for _, va := range vas {
			wantPA, wantOK := d.expected(va)
			pa, _, ok := be.Resolve(va)
			if ok != wantOK {
				return fmt.Errorf("backend %s: Resolve(%s) ok=%v but oracle says mapped=%v",
					be.Name(), va, ok, wantOK)
			}
			if ok && pa != wantPA {
				return fmt.Errorf("backend %s: Resolve(%s) = %s but oracle says %s",
					be.Name(), va, pa, wantPA)
			}
			d.Probes++
		}
		for _, va := range vas {
			// Drive the access loop's protocol. A Lookup hit needs no
			// PA assertion of its own (the TLB caches presence, and may
			// even be stale-present after an unmap, like real hardware
			// without shootdowns — Resolve above is the PA observable);
			// a miss pays Translate, whose walk must match the oracle.
			s.want.Lookups++
			if be.Lookup(va) {
				s.want.Hits++
			} else {
				s.want.Misses++
				wantPA, wantOK := d.expected(va)
				w := be.Translate(va)
				if w.OK != wantOK {
					return fmt.Errorf("backend %s: Translate(%s) ok=%v but oracle says mapped=%v",
						be.Name(), va, w.OK, wantOK)
				}
				if w.OK {
					if w.HPA != wantPA {
						return fmt.Errorf("backend %s: Translate(%s) = %s but oracle says %s",
							be.Name(), va, w.HPA, wantPA)
					}
					be.Insert(va, w)
				}
			}
			d.Drives++
		}
		if r.next()%16 == 0 {
			be.Flush()
		}
		got := be.Counters()
		if got != s.want {
			return fmt.Errorf("backend %s: counters %+v, differ mirror %+v (op %s)",
				be.Name(), got, s.want, op.Kind)
		}
		if got.Hits+got.Misses != got.Lookups {
			return fmt.Errorf("backend %s: hits %d + misses %d != lookups %d",
				be.Name(), got.Hits, got.Misses, got.Lookups)
		}
	}
	return nil
}
