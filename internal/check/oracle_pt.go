package check

import (
	"fmt"
	"sort"

	"repro/internal/mem/addr"
	"repro/internal/osim"
	"repro/internal/osim/pagetable"
	"repro/internal/virt"
)

// flagMask selects the flags the oracle pins down exactly. Accessed and
// Dirty mutate in place on every touch, and Contig is set retroactively
// by the contiguity-marking walk (which tags leaves *behind* the
// faulting range), so those three are checked by other means: Contig via
// the global ContigBits count in checkAll, Accessed/Dirty not at all
// (they carry no correctness obligation the paper's experiments rely
// on).
const flagMask = pagetable.Present | pagetable.Writable | pagetable.CoW

// ptEntry is the oracle's view of one 4 KiB virtual page.
type ptEntry struct {
	pa    addr.PhysAddr
	flags pagetable.Flags // masked by flagMask
	huge  bool            // page lives under a 2 MiB leaf

	// hpa is the composed host physical address in nested mode. hpaOK
	// is false until the host has backed the guest frame — guest CoW
	// can share a guest frame whose host backing appears later via a
	// sibling's write — after which the composition must never change
	// (Machine runs no host daemons, so host mappings are only added).
	hpa   addr.PhysAddr
	hpaOK bool
}

// ptOracle is the flat va→(pa, flags) reference for one process. It is a
// *trailing* oracle: placement policies make physical addresses
// unpredictable, so after each op the oracle re-reads the op's range
// from the SUT (refreshRange) and then asserts that every *other* view
// of the translation state — Walk vs Lookup vs Translate, the nested 2D
// composition, global counters — agrees with the recorded flat map, and
// that entries outside the perturbed range kept their physical
// addresses.
type ptOracle struct {
	entries map[addr.VPN]ptEntry
}

func newPTOracle() *ptOracle {
	return &ptOracle{entries: make(map[addr.VPN]ptEntry)}
}

// lookupPage reads one page's translation out of the SUT.
func lookupPage(p *osim.Process, va addr.VirtAddr) (ptEntry, bool) {
	va = va.PageDown()
	pte, pages, ok := p.PT.Lookup(va)
	if !ok {
		return ptEntry{}, false
	}
	e := ptEntry{flags: pte.Flags & flagMask, huge: pages == 512}
	if e.huge {
		e.pa = pte.PFN.Addr() + addr.PhysAddr(va-va.HugeDown())
	} else {
		e.pa = pte.PFN.Addr()
	}
	return e, true
}

// refreshRange re-reads [va, va+pages*4K) from the SUT into the oracle,
// cross-checking Lookup against Translate on every present page. In
// nested mode the composed host PA is (re)recorded too.
func (o *ptOracle) refreshRange(p *osim.Process, vm *virt.VM, va addr.VirtAddr, pages uint64) error {
	va = va.PageDown()
	for i := uint64(0); i < pages; i++ {
		cur := va.Add(i * addr.PageSize)
		e, ok := lookupPage(p, cur)
		pa, tok := p.PT.Translate(cur)
		if tok != ok {
			return fmt.Errorf("%s: Lookup ok=%v but Translate ok=%v", cur, ok, tok)
		}
		if !ok {
			delete(o.entries, cur.PageNumber())
			continue
		}
		if pa != e.pa {
			return fmt.Errorf("%s: Lookup says %s, Translate says %s", cur, e.pa, pa)
		}
		if vm != nil {
			if hpa, hok := vm.TranslateFull(p, cur); hok {
				e.hpa, e.hpaOK = hpa, true
			}
		}
		o.entries[cur.PageNumber()] = e
	}
	return nil
}

// refreshAll rebuilds the oracle from a full page-table sweep. Used
// after ops that legitimately move pages the oracle cannot track
// incrementally (daemon promotion/migration, fork CoW downgrades).
func (o *ptOracle) refreshAll(p *osim.Process, vm *virt.VM) error {
	o.entries = make(map[addr.VPN]ptEntry, len(o.entries))
	var err error
	p.PT.Visit(func(l pagetable.Leaf) {
		if err != nil {
			return
		}
		err = o.refreshRange(p, vm, l.VA, l.Pages)
	})
	return err
}

// checkStable asserts that the pages containing the given VAs — chosen
// by the caller *outside* the op's perturbed range — still translate to
// the physical addresses the oracle recorded, with the same masked
// flags. This is the per-step PA-stability check: cheap, and exactly
// the property a buggy free/remap path violates first.
func (o *ptOracle) checkStable(p *osim.Process, vas []addr.VirtAddr) error {
	for _, va := range vas {
		want, tracked := o.entries[va.PageNumber()]
		got, ok := lookupPage(p, va)
		if !tracked {
			if ok {
				return fmt.Errorf("%s: mapped (pa %s) but oracle has no entry", va, got.pa)
			}
			continue
		}
		if !ok {
			return fmt.Errorf("%s: oracle has pa %s but page is unmapped", va, want.pa)
		}
		if got.pa != want.pa {
			return fmt.Errorf("%s: pa moved %s -> %s without an op touching it", va, want.pa, got.pa)
		}
		if got.flags != want.flags {
			return fmt.Errorf("%s: flags changed %v -> %v without an op touching it", va, want.flags, got.flags)
		}
	}
	return nil
}

// checkAll is the full oracle-vs-SUT diff for one process:
//
//   - entry count == PT.MappedPages() (with per-entry Lookup success
//     this makes the mapped sets equal, both directions);
//   - Lookup, Walk, and Translate agree with each other and with the
//     oracle on every tracked page (sorted order, deterministic);
//   - no leaf is simultaneously Writable and CoW;
//   - leaves carrying Contig == PT.ContigBits;
//   - nested: TranslateFull composes to the recorded host PA (with the
//     lazy first-backing upgrade), Walk agrees with TranslateFull, and
//     its page-walk reference count matches the 2D cost formula.
func (o *ptOracle) checkAll(p *osim.Process, vm *virt.VM) error {
	if got, want := uint64(len(o.entries)), p.PT.MappedPages(); got != want {
		return fmt.Errorf("oracle tracks %d pages, page table maps %d", got, want)
	}
	keys := make([]addr.VPN, 0, len(o.entries))
	for k := range o.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	var guestLv, hostLv int
	if vm != nil {
		g, h := vm.NestedTables(p)
		guestLv, hostLv = g.Levels(), h.Levels()
	}
	for _, vpn := range keys {
		va := vpn.Addr()
		want := o.entries[vpn]
		got, ok := lookupPage(p, va)
		if !ok {
			return fmt.Errorf("%s: tracked but Lookup fails", va)
		}
		if got.pa != want.pa || got.flags != want.flags || got.huge != want.huge {
			return fmt.Errorf("%s: oracle (pa %s flags %v huge %v) != SUT (pa %s flags %v huge %v)",
				va, want.pa, want.flags, want.huge, got.pa, got.flags, got.huge)
		}
		pte, level, _, wok := p.PT.Walk(va)
		if !wok || !pte.Present() {
			return fmt.Errorf("%s: Lookup succeeds but Walk fails (ok=%v)", va, wok)
		}
		if (level == 1) != want.huge || (level != 0 && level != 1) {
			return fmt.Errorf("%s: Walk leaf level %d inconsistent with huge=%v", va, level, want.huge)
		}
		if pte.Flags.Has(pagetable.Writable) && pte.Flags.Has(pagetable.CoW) {
			return fmt.Errorf("%s: leaf is both Writable and CoW", va)
		}
		if pa, tok := p.PT.Translate(va); !tok || pa != want.pa {
			return fmt.Errorf("%s: Translate (pa %s ok %v) disagrees with oracle pa %s", va, pa, tok, want.pa)
		}
		if vm != nil {
			hpa, hok := vm.TranslateFull(p, va)
			if want.hpaOK {
				if !hok {
					return fmt.Errorf("%s: composed host PA %s lost (host never unmaps)", va, want.hpa)
				}
				if hpa != want.hpa {
					return fmt.Errorf("%s: composed host PA moved %s -> %s", va, want.hpa, hpa)
				}
			} else if hok {
				// First host backing observed (guest CoW sharing can
				// back a guest frame via a sibling): record it.
				want.hpa, want.hpaOK = hpa, true
				o.entries[vpn] = want
			}
			w := vm.Walk(p, va)
			if w.OK != hok {
				return fmt.Errorf("%s: nested Walk ok=%v but TranslateFull ok=%v", va, w.OK, hok)
			}
			if hok {
				if w.HPA != hpa {
					return fmt.Errorf("%s: nested Walk HPA %s != TranslateFull %s", va, w.HPA, hpa)
				}
				gsteps := guestLv - w.GuestLevel
				hsteps := hostLv - w.HostLevel
				if wantRefs := (gsteps+1)*(hsteps+1) - 1; w.Refs != wantRefs {
					return fmt.Errorf("%s: nested Walk refs %d, 2D formula gives %d (guest leaf L%d, host leaf L%d)",
						va, w.Refs, wantRefs, w.GuestLevel, w.HostLevel)
				}
			}
		}
	}
	var contig uint64
	var bad error
	p.PT.Visit(func(l pagetable.Leaf) {
		if l.PTE.Flags.Has(pagetable.Contig) {
			contig++
		}
		if bad == nil && l.PTE.Flags.Has(pagetable.Writable) && l.PTE.Flags.Has(pagetable.CoW) {
			bad = fmt.Errorf("%s: leaf is both Writable and CoW", l.VA)
		}
	})
	if bad != nil {
		return bad
	}
	if contig != p.PT.ContigBits {
		return fmt.Errorf("%d leaves carry Contig but ContigBits counter says %d", contig, p.PT.ContigBits)
	}
	return nil
}

// diffShared asserts the fork relationship between a parent and child
// oracle immediately after the fork refresh: identical key sets, every
// shared page at the same physical address (CoW shares frames; copies
// only appear on later writes).
func (o *ptOracle) diffShared(child *ptOracle) error {
	if len(o.entries) != len(child.entries) {
		return fmt.Errorf("fork: parent tracks %d pages, child %d", len(o.entries), len(child.entries))
	}
	for vpn, pe := range o.entries {
		ce, ok := child.entries[vpn]
		if !ok {
			return fmt.Errorf("fork: %s mapped in parent, missing in child", vpn.Addr())
		}
		if ce.pa != pe.pa {
			return fmt.Errorf("fork: %s parent pa %s != child pa %s", vpn.Addr(), pe.pa, ce.pa)
		}
	}
	return nil
}
