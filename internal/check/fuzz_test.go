package check

import (
	"testing"

	"repro/internal/hw/translation"
)

// Fuzz targets decode arbitrary bytes into the shared op vocabulary
// (DecodeOps: 4 bytes per op, total mapping) and replay them through
// the differential drivers, so every crasher the fuzzer finds is a
// deterministic Machine sequence reproducible with:
//
//	go test ./internal/check -run 'TestFuzzCorpus|FuzzKernelOps' \
//	    -fuzz='' # or just re-run the failing seed from testdata/fuzz
//
// Op counts are capped so a single fuzz execution stays in the low
// milliseconds; CheckEvery is tightened to catch divergence close to
// the op that caused it.

const (
	fuzzMaxKernelOps = 192 // ops per native fuzz execution
	fuzzMaxNestedOps = 96  // nested is ~3x the per-op cost
	fuzzMaxBuddyOps  = 512

	// Backend runs pay ~9 extra backend probes per op on top of the
	// machine's own checks, so the caps sit below the kernel-op ones.
	fuzzMaxBackendOps       = 96
	fuzzMaxBackendNestedOps = 48
)

func fuzzConfig(data []byte) Config {
	cfg := Config{CheckEvery: 32}
	if len(data) == 0 {
		return cfg
	}
	// The first byte double-duties as the first op's kind and the
	// config selector, so the fuzzer explores policy × sequence space.
	switch data[0] % 3 {
	case 0:
		cfg.Daemons = true
	case 1:
		cfg.Policy = PolicyCA
	case 2:
		cfg.Policy = PolicyEager
	}
	cfg.Seed = uint64(data[0])
	return cfg
}

func FuzzKernelOps(f *testing.F) {
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4*fuzzMaxKernelOps {
			data = data[:4*fuzzMaxKernelOps]
		}
		m, err := NewMachine(fuzzConfig(data))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.ApplyOps(DecodeOps(data)); err != nil {
			t.Fatal(err)
		}
	})
}

func FuzzNestedTranslate(f *testing.F) {
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4*fuzzMaxNestedOps {
			data = data[:4*fuzzMaxNestedOps]
		}
		cfg := Config{Nested: true, CheckEvery: 32}
		if len(data) > 0 {
			if data[0]%2 == 1 {
				cfg.Policy = PolicyCA
			}
			cfg.Seed = uint64(data[0])
		}
		m, err := NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.ApplyOps(DecodeOps(data)); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzBackends replays the op stream through a BackendDiffer: the
// first byte picks the translation backend, nested-vs-native mode, and
// the placement policy (and still double-duties as the first op's
// kind), so the fuzzer explores backend × mode × sequence space. The
// committed seeds in testdata/fuzz/FuzzBackends cover every backend.
func FuzzBackends(f *testing.F) {
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := Config{CheckEvery: 32}
		name := translation.BackendPaged
		if len(data) > 0 {
			b := data[0]
			names := translation.Names()
			name = names[int(b)%len(names)]
			cfg.Nested = b>>2&1 == 1
			if b>>3&1 == 1 {
				cfg.Policy = PolicyCA
			}
			cfg.Daemons = !cfg.Nested && b>>4&1 == 1
			cfg.Seed = uint64(b)
		}
		maxOps := fuzzMaxBackendOps
		if cfg.Nested {
			maxOps = fuzzMaxBackendNestedOps
		}
		if len(data) > 4*maxOps {
			data = data[:4*maxOps]
		}
		d, err := NewBackendDiffer(cfg, name)
		if err != nil {
			t.Fatal(err)
		}
		for i, op := range DecodeOps(data) {
			if err := d.Step(op); err != nil {
				t.Fatalf("op %d (%s A=%#x B=%#x C=%#x): %v", i, op.Kind, op.A, op.B, op.C, err)
			}
		}
		if err := d.Finish(); err != nil {
			t.Fatal(err)
		}
	})
}

func FuzzBuddy(f *testing.F) {
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4*fuzzMaxBuddyOps {
			data = data[:4*fuzzMaxBuddyOps]
		}
		d := NewBuddyDiffer(4 * 1024)
		for _, op := range DecodeOps(data) {
			if err := d.Step(op); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Check(); err != nil {
			t.Fatal(err)
		}
	})
}
