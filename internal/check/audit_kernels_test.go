package check

import (
	"strings"
	"testing"

	"repro/internal/mem/addr"
	"repro/internal/mem/zone"
	"repro/internal/osim"
	"repro/internal/workloads"
)

// shardedFixture builds the sharded-campaign ownership shape directly:
// one two-zone machine, a parent kernel over the whole of it, and one
// shard kernel per zone view, each with a populated process.
func shardedFixture(t *testing.T) (*zone.Machine, []*osim.Kernel, []*workloads.Env) {
	t.Helper()
	m := zone.NewMachine(zone.Config{
		ZonePages: []uint64{8 * addr.MaxOrderPages, 8 * addr.MaxOrderPages},
	})
	parent := osim.NewKernel(m, osim.DefaultPolicy{})
	ks := []*osim.Kernel{parent}
	var envs []*workloads.Env
	for z := 0; z < 2; z++ {
		sk := osim.NewKernel(m.View(z), osim.DefaultPolicy{})
		ks = append(ks, sk)
		env := workloads.NewNativeEnv(sk, 0)
		v, err := env.MMap(64 << 12)
		if err != nil {
			t.Fatal(err)
		}
		if err := env.Populate(v); err != nil {
			t.Fatal(err)
		}
		envs = append(envs, env)
	}
	return m, ks, envs
}

// TestAuditKernelsCleanAcrossShards checks that a consistent machine
// whose software state is split across several kernels audits clean —
// the per-kernel gather must union processes and caches before the
// frame sweep, or every shard's pages look leaked to the others.
func TestAuditKernelsCleanAcrossShards(t *testing.T) {
	m, ks, _ := shardedFixture(t)
	if err := AuditKernels(m, ks, nil); err != nil {
		t.Fatalf("clean sharded machine failed audit: %v", err)
	}
	// A shard kernel also self-audits clean: its machine is the zone
	// view, so the frame sweep never crosses into zones it doesn't own.
	if err := Audit(ks[1], nil); err != nil {
		t.Fatalf("shard kernel failed to self-audit within its view: %v", err)
	}
}

// TestAuditKernelsDetectsLeak checks the sweep still bites with the
// union gather: a frame allocated behind every kernel's back is leaked.
func TestAuditKernelsDetectsLeak(t *testing.T) {
	m, ks, _ := shardedFixture(t)
	if _, err := m.AllocBlock(0, 0); err != nil {
		t.Fatal(err)
	}
	err := AuditKernels(m, ks, nil)
	if err == nil || !strings.Contains(err.Error(), "leaked") {
		t.Fatalf("audit missed leaked frame: %v", err)
	}
}

// TestAuditKernelsDetectsCrossShardDrift corrupts one shard's RSS
// accounting and expects the multi-kernel audit to attribute it.
func TestAuditKernelsDetectsCrossShardDrift(t *testing.T) {
	m, ks, envs := shardedFixture(t)
	envs[1].Proc.RSSPages++
	if err := AuditKernels(m, ks, nil); err == nil {
		t.Fatal("audit missed RSS drift on a shard kernel")
	}
	envs[1].Proc.RSSPages--
	if err := AuditKernels(m, ks, nil); err != nil {
		t.Fatalf("fixture no longer clean after revert: %v", err)
	}
}
