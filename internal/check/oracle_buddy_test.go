package check

import (
	"math/rand"
	"testing"

	"repro/internal/mem/addr"
)

func TestRefAllocCanonicalCounts(t *testing.T) {
	r := NewRefAlloc(0, 2*addr.MaxOrderPages)
	counts := r.CanonicalCounts()
	if counts[addr.MaxOrder] != 2 {
		t.Fatalf("fresh range: %d MAX_ORDER blocks, want 2", counts[addr.MaxOrder])
	}
	// Allocating a single page splits one MAX_ORDER block into one free
	// buddy at every order below MAX_ORDER.
	if err := r.MarkAllocated(0, 1); err != nil {
		t.Fatal(err)
	}
	counts = r.CanonicalCounts()
	if counts[addr.MaxOrder] != 1 {
		t.Fatalf("after 1-page alloc: %d MAX_ORDER blocks, want 1", counts[addr.MaxOrder])
	}
	for o := 0; o < addr.MaxOrder; o++ {
		if counts[o] != 1 {
			t.Fatalf("after 1-page alloc: order %d has %d blocks, want 1", o, counts[o])
		}
	}
	// Freeing it coalesces everything back.
	if err := r.MarkFree(0, 1); err != nil {
		t.Fatal(err)
	}
	counts = r.CanonicalCounts()
	if counts[addr.MaxOrder] != 2 {
		t.Fatalf("after free: %d MAX_ORDER blocks, want 2", counts[addr.MaxOrder])
	}
	if err := r.MarkFree(0, 1); err == nil {
		t.Fatal("double free not detected")
	}
}

// TestBuddyDifferRandomOps drives the real buddy allocator and the
// bitmap reference through random op streams across several seeds; any
// divergence in success/failure, free sets, alignment, or coalescing
// fails the run.
func TestBuddyDifferRandomOps(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		d := NewBuddyDiffer(8 * addr.MaxOrderPages)
		rr := rand.New(rand.NewSource(seed))
		for i := 0; i < 5000; i++ {
			op := Op{
				Kind: OpKind(rr.Intn(int(numOpKinds))),
				A:    uint64(rr.Intn(1 << 20)),
				B:    uint64(rr.Intn(1 << 20)),
				C:    uint64(rr.Intn(1 << 20)),
			}
			if err := d.Step(op); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		if err := d.Check(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(d.allocs) == 0 && len(d.pins) == 0 {
			t.Fatalf("seed %d: run ended with nothing outstanding — stream too tame", seed)
		}
	}
}

// TestBuddyDifferDetectsDivergence mutates the real allocator behind
// the reference's back and requires the differ to notice.
func TestBuddyDifferDetectsDivergence(t *testing.T) {
	d := NewBuddyDiffer(2 * addr.MaxOrderPages)
	rr := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		op := Op{Kind: OpKind(rr.Intn(int(numOpKinds))), A: uint64(rr.Intn(1 << 16))}
		if err := d.Step(op); err != nil {
			t.Fatal(err)
		}
	}
	if len(d.allocs) == 0 {
		t.Fatal("no outstanding allocation to corrupt")
	}
	// Free an outstanding block directly in the buddy without telling
	// the reference: free sets now disagree.
	a := d.allocs[0]
	d.B.FreeBlock(a.pfn, a.order)
	if err := d.Check(); err == nil {
		t.Fatal("differ missed a behind-the-back free")
	}
}
