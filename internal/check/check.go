// Package check is the differential-oracle correctness subsystem: it
// drives the real simulator and deliberately naive reference models
// through identical operation sequences and cross-checks them after
// every step. Three oracles cover the layers the perf PRs keep
// rewriting:
//
//   - a flat va→(pa, flags) map checked against the 4-level page-table
//     lookup paths (Lookup, Walk, Translate, and the nested 2D
//     composition in internal/virt);
//   - a bitmap reference allocator checked against internal/mem/buddy
//     (free-set equality, alignment, canonical coalescing);
//   - a fully-associative reference TLB checked against the
//     set-associative internal/hw/tlb (hit/miss agreement under
//     LRU-compatible streams).
//
// Machine is the random-op state-machine driver tying them together;
// Audit is the deep cross-layer pass (frame ownership ↔ PTE mappings ↔
// buddy free lists ↔ contigmap extents ↔ VMA accounting) callable from
// any test. The Fuzz* targets in this package decode fuzzer bytes into
// the same op vocabulary, so every crasher replays through Machine.
package check

import "fmt"

// OpKind enumerates the state-machine operations. The set mirrors the
// kernel surface the experiments exercise; extend it whenever a PR adds
// a new state-mutating kernel entry point (see DESIGN.md §8).
type OpKind uint8

const (
	// OpMMap creates an anonymous VMA on a random process.
	OpMMap OpKind = iota
	// OpTouch faults or re-touches one page (read or write).
	OpTouch
	// OpTouchRange populates a page range through the batched
	// range-fault path (workloads.Env.PopulateRange), daemons polled.
	OpTouchRange
	// OpUnmap tears down a random VMA.
	OpUnmap
	// OpFork forks a process copy-on-write; at the process cap it exits
	// the oldest forked child instead, exercising teardown.
	OpFork
	// OpHog pins a fraction of physical memory (fragmentation), and
	// OpUnhog releases a pinned set.
	OpHog
	OpUnhog
	// OpDaemonTick advances the logical clock past the daemon period
	// and polls every attached daemon.
	OpDaemonTick
	// OpPromote runs an immediate Ingens promotion scan.
	OpPromote
	// OpTLB streams accesses through the real and reference TLBs.
	OpTLB
	numOpKinds
)

func (k OpKind) String() string {
	names := [...]string{"mmap", "touch", "touch-range", "unmap", "fork",
		"hog", "unhog", "daemon-tick", "promote", "tlb"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Op is one state-machine operation. A, B, C parameterize it; every
// kind hashes them through a local PRNG and clamps the results, so any
// values — fuzzer bytes included — decode to a legal operation.
type Op struct {
	Kind    OpKind
	A, B, C uint64
}

// DecodeOps turns raw fuzzer bytes into an op sequence: 4 bytes per op
// (kind, A, B, C), trailing remainder ignored. The mapping is total —
// every byte string is a valid sequence — so fuzzing explores op-order
// space instead of fighting a parser.
func DecodeOps(data []byte) []Op {
	out := make([]Op, 0, len(data)/4)
	for i := 0; i+4 <= len(data); i += 4 {
		out = append(out, Op{
			Kind: OpKind(data[i] % uint8(numOpKinds)),
			A:    uint64(data[i+1]),
			B:    uint64(data[i+2]),
			C:    uint64(data[i+3]),
		})
	}
	return out
}

// Extent is a pinned physical range (boot reservations, hog chunks)
// that Audit must account for as intentionally allocated-but-unmapped.
type Extent struct {
	PFN   uint64
	Pages uint64
}

// prng is a splitmix64 stream used to expand an op's (A, B, C) into as
// many bounded parameters as the op needs. Deterministic per op, so a
// sequence replays identically whether it came from a seeded driver or
// from fuzzer bytes.
type prng struct{ s uint64 }

func newPRNG(op Op, salt uint64) *prng {
	return &prng{s: op.A<<40 ^ op.B<<20 ^ op.C ^ salt ^ 0x9e3779b97f4a7c15}
}

func (p *prng) next() uint64 {
	p.s += 0x9e3779b97f4a7c15
	z := p.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n); 0 when n == 0.
func (p *prng) intn(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return p.next() % n
}
