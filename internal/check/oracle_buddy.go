package check

import (
	"fmt"

	"repro/internal/mem/addr"
	"repro/internal/mem/buddy"
	"repro/internal/mem/contigmap"
	"repro/internal/mem/frame"
)

// RefAlloc is the bitmap reference allocator: one bool per page, no
// free lists, no orders, no coalescing — the ground truth the buddy
// allocator's cleverness must agree with. Its free set determines a
// unique canonical buddy decomposition (a block of order o is listed
// iff it is fully free and its order-o+1 parent is not), which a
// correctly coalescing buddy allocator must match list-for-list.
type RefAlloc struct {
	base      addr.PFN
	npages    uint64
	free      []bool
	freePages uint64
}

// NewRefAlloc creates a reference allocator over [base, base+npages),
// all pages free — matching a freshly built buddy.
func NewRefAlloc(base addr.PFN, npages uint64) *RefAlloc {
	r := &RefAlloc{base: base, npages: npages, free: make([]bool, npages)}
	for i := range r.free {
		r.free[i] = true
	}
	r.freePages = npages
	return r
}

// FreePages returns the reference free-page count.
func (r *RefAlloc) FreePages() uint64 { return r.freePages }

// Contains reports whether pfn is inside the managed range.
func (r *RefAlloc) Contains(pfn addr.PFN) bool {
	return pfn >= r.base && uint64(pfn-r.base) < r.npages
}

// RangeFree reports whether [pfn, pfn+n) is inside the range and fully
// free.
func (r *RefAlloc) RangeFree(pfn addr.PFN, n uint64) bool {
	if n == 0 || !r.Contains(pfn) || uint64(pfn-r.base)+n > r.npages {
		return false
	}
	i := uint64(pfn - r.base)
	for j := i; j < i+n; j++ {
		if !r.free[j] {
			return false
		}
	}
	return true
}

// CanAlloc reports whether some naturally aligned fully free block of
// the given order exists. A maximally coalescing buddy allocator can
// satisfy an order-o request exactly when this holds.
func (r *RefAlloc) CanAlloc(order int) bool {
	n := addr.OrderPages(order)
	for p := r.base; uint64(p-r.base)+n <= r.npages; p += addr.PFN(n) {
		if r.RangeFree(p, n) {
			return true
		}
	}
	return false
}

// MarkAllocated flips [pfn, pfn+n) to allocated, failing if any page
// was not free.
func (r *RefAlloc) MarkAllocated(pfn addr.PFN, n uint64) error {
	if !r.RangeFree(pfn, n) {
		return fmt.Errorf("refalloc: [%d,%d) not fully free", pfn, uint64(pfn)+n)
	}
	i := uint64(pfn - r.base)
	for j := i; j < i+n; j++ {
		r.free[j] = false
	}
	r.freePages -= n
	return nil
}

// MarkFree flips [pfn, pfn+n) to free, failing on double frees.
func (r *RefAlloc) MarkFree(pfn addr.PFN, n uint64) error {
	if n == 0 || !r.Contains(pfn) || uint64(pfn-r.base)+n > r.npages {
		return fmt.Errorf("refalloc: [%d,%d) out of range", pfn, uint64(pfn)+n)
	}
	i := uint64(pfn - r.base)
	for j := i; j < i+n; j++ {
		if r.free[j] {
			return fmt.Errorf("refalloc: double free of %d", uint64(r.base)+j)
		}
		r.free[j] = true
	}
	r.freePages += n
	return nil
}

// CanonicalCounts computes, per order, how many blocks a maximally
// coalescing buddy allocator would hold for this free set: recursing
// from MAX_ORDER blocks down, a fully free aligned block is counted at
// the highest order at which its parent is not fully free.
func (r *RefAlloc) CanonicalCounts() [addr.MaxOrder + 1]uint64 {
	var counts [addr.MaxOrder + 1]uint64
	var rec func(pfn addr.PFN, order int)
	rec = func(pfn addr.PFN, order int) {
		if r.RangeFree(pfn, addr.OrderPages(order)) {
			counts[order]++
			return
		}
		if order == 0 {
			return
		}
		half := addr.PFN(addr.OrderPages(order - 1))
		rec(pfn, order-1)
		rec(pfn+half, order-1)
	}
	for p := r.base; uint64(p-r.base) < r.npages; p += addr.MaxOrderPages {
		rec(p, addr.MaxOrder)
	}
	return counts
}

// Diff cross-checks the buddy allocator against the reference: free
// page totals, per-order free-list counts against the canonical
// decomposition, and that every listed block is genuinely free (which,
// with the totals matching, makes the free sets equal).
func (r *RefAlloc) Diff(b *buddy.Buddy) error {
	if got, want := b.FreePages(), r.freePages; got != want {
		return fmt.Errorf("free pages: buddy %d, reference %d", got, want)
	}
	canon := r.CanonicalCounts()
	for o := 0; o <= addr.MaxOrder; o++ {
		if got, want := b.FreeBlocks(o), canon[o]; got != want {
			return fmt.Errorf("order-%d free blocks: buddy %d, canonical %d", o, got, want)
		}
	}
	var bad error
	var listedPages uint64
	b.VisitFreeBlocks(func(pfn addr.PFN, order int) {
		n := addr.OrderPages(order)
		listedPages += n
		if bad == nil && !addr.AlignedTo(pfn, order) {
			bad = fmt.Errorf("listed order-%d block %d misaligned", order, pfn)
		}
		if bad == nil && !r.RangeFree(pfn, n) {
			bad = fmt.Errorf("listed order-%d block %d not free in reference", order, pfn)
		}
	})
	if bad != nil {
		return bad
	}
	if listedPages != r.freePages {
		return fmt.Errorf("listed blocks cover %d pages, reference frees %d", listedPages, r.freePages)
	}
	return nil
}

// BuddyDiffer drives a real buddy allocator (with an attached
// contiguity map, as zones wire it) and the bitmap reference through
// one op stream, checking success/failure agreement on every op and
// full free-set equality periodically.
type BuddyDiffer struct {
	Frames *frame.Table
	B      *buddy.Buddy
	Contig *contigmap.Map
	Ref    *RefAlloc

	allocs []buddyAlloc // outstanding AllocBlock/AllocBlockAt results
	pins   []buddyPin   // outstanding Reserve extents
	steps  int
}

type buddyAlloc struct {
	pfn   addr.PFN
	order int
}

type buddyPin struct {
	pfn   addr.PFN
	pages uint64
}

// NewBuddyDiffer builds the differential pair over npages (rounded up
// to MAX_ORDER blocks) starting at PFN 0.
func NewBuddyDiffer(npages uint64) *BuddyDiffer {
	npages = (npages + addr.MaxOrderPages - 1) &^ uint64(addr.MaxOrderPages-1)
	if npages == 0 {
		npages = addr.MaxOrderPages
	}
	ft := frame.NewTable(0, npages)
	b := buddy.New(ft, 0, npages)
	return &BuddyDiffer{
		Frames: ft,
		B:      b,
		Contig: contigmap.New(ft, b),
		Ref:    NewRefAlloc(0, npages),
	}
}

// Step applies one op to both allocators and checks agreement. The op
// kind is folded onto the buddy op vocabulary, so Machine op streams
// and dedicated buddy streams share one decoder.
func (d *BuddyDiffer) Step(op Op) error {
	d.steps++
	r := newPRNG(op, uint64(op.Kind))
	switch uint64(op.Kind) % 5 {
	case 0: // AllocBlock
		order := int(r.intn(addr.MaxOrder + 1))
		pfn, err := d.B.AllocBlock(order)
		if err != nil {
			if d.Ref.CanAlloc(order) {
				return fmt.Errorf("step %d: AllocBlock(%d) failed but reference has an aligned free block", d.steps, order)
			}
			break
		}
		if !addr.AlignedTo(pfn, order) {
			return fmt.Errorf("step %d: AllocBlock(%d) returned misaligned %d", d.steps, order, pfn)
		}
		if err := d.Ref.MarkAllocated(pfn, addr.OrderPages(order)); err != nil {
			return fmt.Errorf("step %d: AllocBlock(%d) -> %d: %w", d.steps, order, pfn, err)
		}
		d.allocs = append(d.allocs, buddyAlloc{pfn, order})
	case 1: // AllocBlockAt
		order := int(r.intn(addr.MaxOrder + 1))
		n := addr.OrderPages(order)
		pfn := addr.PFN(r.intn(d.Ref.npages)) &^ addr.PFN(n-1)
		want := d.Ref.RangeFree(pfn, n)
		err := d.B.AllocBlockAt(pfn, order)
		if (err == nil) != want {
			return fmt.Errorf("step %d: AllocBlockAt(%d, order %d) err=%v, reference free=%v", d.steps, pfn, order, err, want)
		}
		if err == nil {
			if err := d.Ref.MarkAllocated(pfn, n); err != nil {
				return err
			}
			d.allocs = append(d.allocs, buddyAlloc{pfn, order})
		}
	case 2: // FreeBlock of an outstanding allocation
		if len(d.allocs) == 0 {
			break
		}
		i := r.intn(uint64(len(d.allocs)))
		a := d.allocs[i]
		d.allocs = append(d.allocs[:i], d.allocs[i+1:]...)
		d.B.FreeBlock(a.pfn, a.order)
		if err := d.Ref.MarkFree(a.pfn, addr.OrderPages(a.order)); err != nil {
			return fmt.Errorf("step %d: FreeBlock(%d, %d): %w", d.steps, a.pfn, a.order, err)
		}
	case 3: // Reserve an arbitrary run
		pages := 1 + r.intn(3*addr.MaxOrderPages/2)
		pfn := addr.PFN(r.intn(d.Ref.npages))
		want := d.Ref.RangeFree(pfn, pages)
		err := d.B.Reserve(pfn, pages)
		if (err == nil) != want {
			return fmt.Errorf("step %d: Reserve(%d, %d) err=%v, reference free=%v", d.steps, pfn, pages, err, want)
		}
		if err == nil {
			if err := d.Ref.MarkAllocated(pfn, pages); err != nil {
				return err
			}
			d.pins = append(d.pins, buddyPin{pfn, pages})
		}
	case 4: // FreeRange of an outstanding reservation
		if len(d.pins) == 0 {
			break
		}
		i := r.intn(uint64(len(d.pins)))
		p := d.pins[i]
		d.pins = append(d.pins[:i], d.pins[i+1:]...)
		d.B.FreeRange(p.pfn, p.pages)
		if err := d.Ref.MarkFree(p.pfn, p.pages); err != nil {
			return fmt.Errorf("step %d: FreeRange(%d, %d): %w", d.steps, p.pfn, p.pages, err)
		}
	}
	// Cheap per-step agreement; the expensive set equality runs
	// periodically and at Check.
	if got, want := d.B.FreePages(), d.Ref.FreePages(); got != want {
		return fmt.Errorf("step %d: free pages diverged: buddy %d, reference %d", d.steps, got, want)
	}
	if d.steps%32 == 0 {
		return d.Check()
	}
	return nil
}

// Check runs the full cross-check: free-set equality, canonical
// per-order counts, the buddy's own structural invariants, and the
// contiguity map riding on its MAX_ORDER list.
func (d *BuddyDiffer) Check() error {
	if err := d.Ref.Diff(d.B); err != nil {
		return fmt.Errorf("step %d: %w", d.steps, err)
	}
	if err := d.B.CheckInvariants(); err != nil {
		return fmt.Errorf("step %d: buddy invariants: %w", d.steps, err)
	}
	if err := d.Contig.CheckInvariants(d.B); err != nil {
		return fmt.Errorf("step %d: contigmap invariants: %w", d.steps, err)
	}
	return nil
}
