package check

import "repro/internal/mem/addr"

// RefTLB is the fully-associative LRU reference TLB. It mirrors the
// real TLB's observable contract — unified 4K/2M tags, 4K probed before
// 2M, insert-on-miss — with the simplest possible structure: one flat
// list, global LRU eviction, linear search.
//
// A set-associative LRU and a fully-associative LRU of the same
// capacity are NOT equivalent in general: the set-associative structure
// can evict a tag the fully-associative one still holds once some set
// overflows its ways. They agree exactly on LRU-compatible streams —
// streams whose distinct (tag, size) working set never exceeds the real
// TLB's associativity, so no set ever evicts a valid entry. Machine
// bounds its TLB op streams accordingly; the property test in
// oracle_tlb_test.go checks the agreement across random geometries.
type RefTLB struct {
	cap     int
	tick    uint64
	entries []refTLBEntry
}

type refTLBEntry struct {
	huge bool
	tag  uint64
	lru  uint64
}

// NewRefTLB creates a reference TLB holding capacity entries.
func NewRefTLB(capacity int) *RefTLB {
	if capacity <= 0 {
		panic("check: RefTLB capacity must be positive")
	}
	return &RefTLB{cap: capacity}
}

// Lookup probes for va, 4K tag first then 2M, refreshing LRU on hit —
// the same probe order as the real TLB.
func (t *RefTLB) Lookup(va addr.VirtAddr) bool {
	t.tick++
	if t.probe(uint64(va)>>addr.PageShift, false) {
		return true
	}
	return t.probe(uint64(va)>>addr.HugeShift, true)
}

func (t *RefTLB) probe(tag uint64, huge bool) bool {
	for i := range t.entries {
		if t.entries[i].huge == huge && t.entries[i].tag == tag {
			t.entries[i].lru = t.tick
			return true
		}
	}
	return false
}

// Insert caches the translation covering va, evicting the globally
// least-recently-used entry at capacity. Inserting a (tag, size) that
// is already present refreshes it in place, so duplicate entries never
// arise.
func (t *RefTLB) Insert(va addr.VirtAddr, huge bool) {
	t.tick++
	tag := uint64(va) >> addr.PageShift
	if huge {
		tag = uint64(va) >> addr.HugeShift
	}
	for i := range t.entries {
		if t.entries[i].huge == huge && t.entries[i].tag == tag {
			t.entries[i].lru = t.tick
			return
		}
	}
	if len(t.entries) < t.cap {
		t.entries = append(t.entries, refTLBEntry{huge: huge, tag: tag, lru: t.tick})
		return
	}
	victim := 0
	for i := range t.entries {
		if t.entries[i].lru < t.entries[victim].lru {
			victim = i
		}
	}
	t.entries[victim] = refTLBEntry{huge: huge, tag: tag, lru: t.tick}
}

// Flush invalidates everything.
func (t *RefTLB) Flush() { t.entries = t.entries[:0] }

// Len returns the number of valid entries.
func (t *RefTLB) Len() int { return len(t.entries) }
