package check

import (
	"math/rand"
	"testing"

	"repro/internal/hw/tlb"
	"repro/internal/mem/addr"
)

// hotSet builds exactly n distinct (tag, size) pairs as concrete VAs.
func hotSet(rr *rand.Rand, n int) (vas []addr.VirtAddr, huge []bool) {
	seen := make(map[uint64]bool)
	for len(vas) < n {
		tag := uint64(rr.Intn(1 << 22))
		h := rr.Intn(3) == 0
		key := tag << 1
		if h {
			key |= 1
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		if h {
			vas = append(vas, addr.VirtAddr(tag<<addr.HugeShift))
		} else {
			vas = append(vas, addr.VirtAddr(tag<<addr.PageShift))
		}
		huge = append(huge, h)
	}
	return vas, huge
}

// TestTLBAgreementCompatibleStreams is the property test behind the
// Machine's TLB oracle: for any geometry, a set-associative LRU and the
// fully-associative reference of the same capacity agree hit-for-hit on
// streams whose distinct (tag, size) working set stays within the
// associativity — because then no set ever evicts a valid entry, and
// neither does the reference. Flushes are thrown in to restart the
// working set mid-stream.
func TestTLBAgreementCompatibleStreams(t *testing.T) {
	geoms := []struct{ entries, ways int }{
		{64, 8}, {32, 4}, {16, 16}, {8, 2}, {128, 8},
	}
	for gi, g := range geoms {
		real := tlb.New(g.entries, g.ways)
		ref := NewRefTLB(real.Entries())
		rr := rand.New(rand.NewSource(int64(gi + 1)))
		vas, huge := hotSet(rr, real.Ways())
		for i := 0; i < 20000; i++ {
			if rr.Intn(512) == 0 {
				real.Flush()
				ref.Flush()
			}
			j := rr.Intn(len(vas))
			va := vas[j].Add(uint64(rr.Intn(addr.PageSize)))
			hit, refHit := real.Lookup(va), ref.Lookup(va)
			if hit != refHit {
				t.Fatalf("geom %d+%dw access %d: %s real hit=%v ref hit=%v",
					g.entries, g.ways, i, va, hit, refHit)
			}
			if !hit {
				real.Insert(va, huge[j])
				ref.Insert(va, huge[j])
			}
		}
		if real.Misses() == 0 || real.Misses() == real.Lookups() {
			t.Fatalf("geom %d+%dw: degenerate stream (%d/%d misses)",
				g.entries, g.ways, real.Misses(), real.Lookups())
		}
	}
}

// TestTLBNeverRepeatAlwaysMisses: a stream that never revisits a tag
// must miss every time in both models, across capacity-overflowing
// lengths (this exercises reference eviction).
func TestTLBNeverRepeatAlwaysMisses(t *testing.T) {
	real := tlb.New(32, 4)
	ref := NewRefTLB(real.Entries())
	for i := 0; i < 4*32; i++ {
		va := addr.VirtAddr(uint64(i) << addr.PageShift)
		hit, refHit := real.Lookup(va), ref.Lookup(va)
		if hit || refHit {
			t.Fatalf("access %d: unique tag hit (real=%v ref=%v)", i, hit, refHit)
		}
		real.Insert(va, false)
		ref.Insert(va, false)
	}
	if real.Misses() != real.Lookups() {
		t.Fatalf("real TLB: %d misses on %d never-repeating lookups", real.Misses(), real.Lookups())
	}
	if ref.Len() > real.Entries() {
		t.Fatalf("reference exceeded capacity: %d > %d", ref.Len(), real.Entries())
	}
}

// TestRefTLBBasics pins the reference model's own contract: duplicate
// inserts refresh in place, eviction removes the global LRU entry, and
// huge entries answer 4K probes of covered addresses.
func TestRefTLBBasics(t *testing.T) {
	ref := NewRefTLB(2)
	a := addr.VirtAddr(1 << addr.PageShift)
	b := addr.VirtAddr(2 << addr.PageShift)
	c := addr.VirtAddr(3 << addr.PageShift)
	ref.Insert(a, false)
	ref.Insert(a, false)
	if ref.Len() != 1 {
		t.Fatalf("duplicate insert created a second entry: len=%d", ref.Len())
	}
	ref.Insert(b, false)
	if !ref.Lookup(a) {
		t.Fatal("a missing before capacity reached")
	}
	// a was just refreshed, so inserting c at capacity must evict b.
	ref.Insert(c, false)
	if ref.Lookup(b) {
		t.Fatal("b survived eviction despite being LRU")
	}
	if !ref.Lookup(a) || !ref.Lookup(c) {
		t.Fatal("MRU entries evicted")
	}

	huge := NewRefTLB(4)
	base := addr.VirtAddr(5 << addr.HugeShift)
	huge.Insert(base, true)
	if !huge.Lookup(base.Add(123 * addr.PageSize)) {
		t.Fatal("huge entry did not answer a 4K probe inside its range")
	}
	huge.Flush()
	if huge.Len() != 0 || huge.Lookup(base) {
		t.Fatal("flush left entries behind")
	}
}
