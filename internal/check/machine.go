package check

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/hw/tlb"
	"repro/internal/mem/addr"
	"repro/internal/mem/zone"
	"repro/internal/osim"
	"repro/internal/osim/daemon"
	"repro/internal/osim/vma"
	"repro/internal/virt"
	"repro/internal/workloads"
)

// Placement policy names for Config.Policy.
const (
	PolicyDefault = "default"
	PolicyCA      = "ca"
	PolicyEager   = "eager"
)

// Machine geometry and driver bounds. Small on purpose: a few dozen
// MAX_ORDER blocks keep full audits cheap enough to run every
// CheckEvery ops under -race, while fragmentation, OOM-adjacent
// pressure, and cross-zone fallback all still occur.
const (
	defaultCheckEvery = 128
	maxProcs          = 4
	maxVMAPages       = 1024
	minVMAPages       = 8
	maxRangePages     = 512
	budgetPct         = 45 // footprint cap, % of machine pages
	maxHogSets        = 2
	tlbEntries        = 64
	tlbWays           = 8
	tlbBurst          = 32
)

// Config selects a Machine variant. The zero value is a native machine
// with the default policy, no daemons, seed 0.
type Config struct {
	// Nested runs the op stream inside a VM: ops drive guest processes,
	// with host backing faulted through the nested (2D) path, and both
	// the guest and host kernels audited.
	Nested bool
	// Policy is the placement policy under test: PolicyDefault,
	// PolicyCA (with sorted MAX_ORDER lists, as the experiments run
	// it), or PolicyEager. Empty means PolicyDefault.
	Policy string
	// Daemons attaches Ingens (THP off, async promotion) and Ranger to
	// the kernel under test, polled on every touch like the experiment
	// environments do.
	Daemons bool
	// Seed makes the run deterministic: op parameter expansion, random
	// op generation, and hog placement all derive from it.
	Seed uint64
	// CheckEvery is the full-consistency period in ops (checkAll on
	// every process plus Audit on every kernel); 0 means 128. Cheap
	// per-op checks run regardless.
	CheckEvery int
}

// RunStats counts what a run actually exercised, so tests can assert a
// sequence was not vacuously green.
type RunStats struct {
	Ops         int
	Skipped     int // ops that found nothing to do (no VMA, budget, …)
	OOMs        int // ops that hit osim.ErrOOM (tolerated)
	Resyncs     int // full oracle rebuilds after daemon page movement
	TLBAccesses uint64
	TLBMisses   uint64
}

// machProc is one process under test with its oracle and live VMAs.
type machProc struct {
	env    *workloads.Env
	oracle *ptOracle
	vmas   []*vma.VMA
	forked bool
}

// Machine is the stateful differential driver: it applies decoded ops
// to a real kernel (native or nested) and keeps the reference models in
// lockstep, failing on the first divergence. Deterministic per Config.
type Machine struct {
	cfg     Config
	kern    *osim.Kernel // kernel under test (guest kernel when nested)
	vm      *virt.VM     // nil when native
	procs   []*machProc
	daemons []workloads.Daemon
	ingens  *daemon.Ingens

	basePinned []Extent                // boot reservations (kernel under test)
	hostPinned []Extent                // host boot reservations (nested)
	hogs       [][]workloads.HogExtent // outstanding hog pins

	tlb     *tlb.TLB
	reftlb  *RefTLB
	hotVAs  []addr.VirtAddr // fixed hot set: ≤ Ways distinct (tag, size)
	hotHuge []bool

	budgetPages    uint64
	lastHostMapped uint64
	steps          int

	Stats RunStats
}

// PlacementFor resolves a Config.Policy name to the placement policy
// it denotes plus whether the machine's MAX_ORDER free lists should be
// sorted (CA paging's next-fit search wants them ordered, matching how
// the experiments run it). Exported so the trace-replay engine
// (internal/tracein) builds its shard kernels from the exact same
// policy vocabulary the differential machine is checked under.
func PlacementFor(name string) (osim.Placement, bool, error) {
	switch name {
	case "", PolicyDefault:
		return osim.DefaultPolicy{}, false, nil
	case PolicyCA:
		return osim.CAPolicy{}, true, nil
	case PolicyEager:
		return osim.EagerPolicy{}, false, nil
	}
	return nil, false, fmt.Errorf("check: unknown policy %q", name)
}

// NewMachine builds the machine, kernels, reference models, and the
// initial process.
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = defaultCheckEvery
	}
	pol, sorted, err := PlacementFor(cfg.Policy)
	if err != nil {
		return nil, err
	}
	m := &Machine{cfg: cfg}
	if cfg.Nested {
		hostM := zone.NewMachine(zone.Config{
			ZonePages: []uint64{10 * addr.MaxOrderPages, 10 * addr.MaxOrderPages},
		})
		host := osim.NewKernel(hostM, osim.DefaultPolicy{})
		host.BootReserve(1)
		for _, z := range hostM.Zones {
			m.hostPinned = append(m.hostPinned, Extent{PFN: uint64(z.Base), Pages: addr.MaxOrderPages})
		}
		vm, err := virt.New(host, virt.Config{
			MemBytes:         8 * addr.MaxOrderPages * addr.PageSize,
			GuestZones:       []uint64{4 * addr.MaxOrderPages, 4 * addr.MaxOrderPages},
			GuestPolicy:      pol,
			GuestSorted:      sorted,
			GuestBootReserve: 1,
		})
		if err != nil {
			return nil, err
		}
		m.vm, m.kern = vm, vm.Guest
	} else {
		zm := zone.NewMachine(zone.Config{
			ZonePages:      []uint64{8 * addr.MaxOrderPages, 8 * addr.MaxOrderPages},
			SortedMaxOrder: sorted,
		})
		m.kern = osim.NewKernel(zm, pol)
		m.kern.BootReserve(1)
	}
	for _, z := range m.kern.Machine.Zones {
		m.basePinned = append(m.basePinned, Extent{PFN: uint64(z.Base), Pages: addr.MaxOrderPages})
	}
	if cfg.Daemons {
		m.ingens = daemon.NewIngens(m.kern)
		m.daemons = append(m.daemons, m.ingens, daemon.NewRanger(m.kern))
	}
	m.budgetPages = m.kern.Machine.TotalPages() * budgetPct / 100

	m.tlb = tlb.New(tlbEntries, tlbWays)
	m.reftlb = NewRefTLB(m.tlb.Entries())
	// Fix the hot access set once: exactly Ways distinct (tag, size)
	// pairs, so no TLB set ever exceeds its associativity and the
	// set-associative/fully-associative agreement theorem applies for
	// the whole run (see RefTLB).
	hr := &prng{s: cfg.Seed ^ 0x0abcdef123456789}
	seen := make(map[uint64]bool)
	for len(m.hotVAs) < m.tlb.Ways() {
		tag := hr.next() % (1 << 24)
		huge := hr.next()%4 == 0
		key := tag << 1
		if huge {
			key |= 1
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		if huge {
			m.hotVAs = append(m.hotVAs, addr.VirtAddr(tag<<addr.HugeShift))
		} else {
			m.hotVAs = append(m.hotVAs, addr.VirtAddr(tag<<addr.PageShift))
		}
		m.hotHuge = append(m.hotHuge, huge)
	}

	m.addProc(m.kern.NewProcess(0), false)
	return m, nil
}

func (m *Machine) addProc(p *osim.Process, forked bool) *machProc {
	mp := &machProc{
		env:    &workloads.Env{Kernel: m.kern, Proc: p, VM: m.vm, Daemons: m.daemons},
		oracle: newPTOracle(),
		forked: forked,
	}
	m.procs = append(m.procs, mp)
	return mp
}

func (m *Machine) pick(r *prng) *machProc {
	return m.procs[r.intn(uint64(len(m.procs)))]
}

func pickVMA(mp *machProc, r *prng) *vma.VMA {
	if len(mp.vmas) == 0 {
		return nil
	}
	return mp.vmas[r.intn(uint64(len(mp.vmas)))]
}

// outstanding is the total VMA footprint in pages across processes; the
// driver keeps it under budgetPages so OOM stays an exercised edge, not
// the steady state.
func (m *Machine) outstanding() uint64 {
	var n uint64
	for _, mp := range m.procs {
		for _, v := range mp.vmas {
			n += v.Pages()
		}
	}
	return n
}

// hugeClip widens [va, va+pages*4K) to huge-page boundaries — the
// region a fault, CoW copy, or THP mapping may have perturbed — clipped
// to the VMA.
func hugeClip(v *vma.VMA, va addr.VirtAddr, pages uint64) (addr.VirtAddr, uint64) {
	start := va.HugeDown()
	if start < v.Start {
		start = v.Start
	}
	end := va.Add(pages * addr.PageSize).HugeUp()
	if end > v.End {
		end = v.End
	}
	return start, uint64(end-start) / addr.PageSize
}

// tolerate returns nil for the errors an op stream legitimately
// produces (memory exhaustion), counting them; anything else is a bug.
func (m *Machine) tolerate(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, osim.ErrOOM) {
		m.Stats.OOMs++
		return nil
	}
	return err
}

// Apply runs one op against the kernel and the reference models, then
// cross-checks. The oracle trails the SUT: the op's perturbed range is
// re-read afterwards, and the checks assert internal consistency plus
// stability of everything the op had no business changing.
func (m *Machine) Apply(op Op) error {
	m.steps++
	m.Stats.Ops++
	r := newPRNG(op, m.cfg.Seed)
	movedBefore := m.kern.Stats.Promotions + m.kern.Stats.Migrations

	var touched *machProc
	var touchedVA addr.VirtAddr
	var touchedPages uint64

	switch op.Kind {
	case OpMMap:
		mp := m.pick(r)
		pages := minVMAPages + r.intn(maxVMAPages-minVMAPages+1)
		if m.outstanding()+pages > m.budgetPages {
			m.Stats.Skipped++
			break
		}
		v, err := mp.env.MMap(pages * addr.PageSize)
		if err != nil {
			if err := m.tolerate(err); err != nil {
				return fmt.Errorf("mmap: %w", err)
			}
			break
		}
		mp.vmas = append(mp.vmas, v)
		touched, touchedVA, touchedPages = mp, v.Start, v.Pages()

	case OpTouch:
		mp := m.pick(r)
		v := pickVMA(mp, r)
		if v == nil {
			m.Stats.Skipped++
			break
		}
		va := v.Start.Add(r.intn(v.Pages()) * addr.PageSize)
		if err := m.tolerate(mp.env.Touch(va, r.next()%2 == 0)); err != nil {
			return fmt.Errorf("touch %s: %w", va, err)
		}
		touched = mp
		touchedVA, touchedPages = hugeClip(v, va, 1)

	case OpTouchRange:
		mp := m.pick(r)
		v := pickVMA(mp, r)
		if v == nil {
			m.Stats.Skipped++
			break
		}
		startPage := r.intn(v.Pages())
		n := 1 + r.intn(min(v.Pages()-startPage, maxRangePages))
		va := v.Start.Add(startPage * addr.PageSize)
		if err := m.tolerate(mp.env.PopulateRange(v, va, n*addr.PageSize)); err != nil {
			return fmt.Errorf("touch-range %s+%d: %w", va, n, err)
		}
		touched = mp
		touchedVA, touchedPages = hugeClip(v, va, n)

	case OpUnmap:
		mp := m.pick(r)
		v := pickVMA(mp, r)
		if v == nil {
			m.Stats.Skipped++
			break
		}
		mp.env.Proc.MUnmap(v)
		for i, w := range mp.vmas {
			if w == v {
				mp.vmas = append(mp.vmas[:i], mp.vmas[i+1:]...)
				break
			}
		}
		touched, touchedVA, touchedPages = mp, v.Start, v.Pages()

	case OpFork:
		if len(m.procs) >= maxProcs {
			// At the cap, exercise teardown instead: exit the oldest
			// forked child.
			idx := -1
			for i, mp := range m.procs {
				if mp.forked {
					idx = i
					break
				}
			}
			if idx < 0 {
				m.Stats.Skipped++
				break
			}
			mp := m.procs[idx]
			mp.env.Proc.Exit()
			m.procs = append(m.procs[:idx], m.procs[idx+1:]...)
			break
		}
		mp := m.pick(r)
		var parentPages uint64
		for _, v := range mp.vmas {
			parentPages += v.Pages()
		}
		if m.outstanding()+parentPages > m.budgetPages {
			m.Stats.Skipped++
			break
		}
		child := mp.env.Proc.Fork()
		cp := m.addProc(child, true)
		child.VMAs.Visit(func(v *vma.VMA) { cp.vmas = append(cp.vmas, v) })
		// Fork rewrites flags (CoW downgrade) in both address spaces:
		// rebuild both oracles, then assert the fork relationship —
		// same key sets, same physical pages (no copies yet).
		if err := mp.oracle.refreshAll(mp.env.Proc, m.vm); err != nil {
			return fmt.Errorf("fork parent refresh: %w", err)
		}
		if err := cp.oracle.refreshAll(child, m.vm); err != nil {
			return fmt.Errorf("fork child refresh: %w", err)
		}
		if err := mp.oracle.diffShared(cp.oracle); err != nil {
			return err
		}

	case OpHog:
		if len(m.hogs) >= maxHogSets {
			m.Stats.Skipped++
			break
		}
		frac := float64(2+r.intn(9)) / 100
		hr := rand.New(rand.NewSource(int64(r.next() >> 1)))
		ext := workloads.Hog(m.kern.Machine, frac, hr)
		if len(ext) == 0 {
			m.Stats.Skipped++
			break
		}
		m.hogs = append(m.hogs, ext)

	case OpUnhog:
		if len(m.hogs) == 0 {
			m.Stats.Skipped++
			break
		}
		i := int(r.intn(uint64(len(m.hogs))))
		workloads.Unhog(m.kern.Machine, m.hogs[i])
		m.hogs = append(m.hogs[:i], m.hogs[i+1:]...)

	case OpDaemonTick:
		m.kern.Tick(2_000_001) // past the default daemon period
		for _, d := range m.daemons {
			d.Maybe()
		}

	case OpPromote:
		if m.ingens == nil {
			m.Stats.Skipped++
			break
		}
		m.ingens.Scan()

	case OpTLB:
		for i := 0; i < tlbBurst; i++ {
			if r.next()%64 == 0 {
				m.tlb.Flush()
				m.reftlb.Flush()
			}
			j := r.intn(uint64(len(m.hotVAs)))
			va := m.hotVAs[j].Add(r.intn(addr.PageSize))
			hit := m.tlb.Lookup(va)
			refHit := m.reftlb.Lookup(va)
			if hit != refHit {
				return fmt.Errorf("tlb: %s hit=%v but reference hit=%v", va, hit, refHit)
			}
			m.Stats.TLBAccesses++
			if !hit {
				m.Stats.TLBMisses++
				m.tlb.Insert(va, m.hotHuge[j])
				m.reftlb.Insert(va, m.hotHuge[j])
			}
		}

	default:
		return fmt.Errorf("check: unknown op kind %d", op.Kind)
	}

	// Daemons may have fired on any touch path and moved pages under
	// every process; the movement counters say whether the incremental
	// refresh is enough or the oracles must be rebuilt.
	if m.kern.Stats.Promotions+m.kern.Stats.Migrations != movedBefore {
		m.Stats.Resyncs++
		for _, mp := range m.procs {
			if err := mp.oracle.refreshAll(mp.env.Proc, m.vm); err != nil {
				return fmt.Errorf("resync process %d: %w", mp.env.Proc.ID, err)
			}
		}
	} else if touched != nil {
		if err := touched.oracle.refreshRange(touched.env.Proc, m.vm, touchedVA, touchedPages); err != nil {
			return fmt.Errorf("refresh process %d: %w", touched.env.Proc.ID, err)
		}
	}

	// Cheap per-op checks: accounting identities and PA stability of
	// sampled pages the op had no reason to move.
	for _, mp := range m.procs {
		if got, want := mp.env.Proc.PT.MappedPages(), mp.env.Proc.RSSPages; got != want {
			return fmt.Errorf("process %d: page table maps %d pages, RSS charges %d", mp.env.Proc.ID, got, want)
		}
	}
	if err := m.sampleStable(r); err != nil {
		return err
	}
	if m.steps%m.cfg.CheckEvery == 0 {
		return m.CheckAll()
	}
	return nil
}

// sampleStable spot-checks a few deterministically chosen pages per
// process against the oracle (PA and masked flags unchanged).
func (m *Machine) sampleStable(r *prng) error {
	for _, mp := range m.procs {
		if len(mp.vmas) == 0 {
			continue
		}
		vas := make([]addr.VirtAddr, 0, 4)
		for i := 0; i < 4; i++ {
			v := mp.vmas[r.intn(uint64(len(mp.vmas)))]
			vas = append(vas, v.Start.Add(r.intn(v.Pages())*addr.PageSize))
		}
		if err := mp.oracle.checkStable(mp.env.Proc, vas); err != nil {
			return fmt.Errorf("process %d: %w", mp.env.Proc.ID, err)
		}
	}
	return nil
}

// CheckAll runs every oracle's full diff plus the deep cross-layer
// audit of each kernel. Called every CheckEvery ops and at the end of a
// run; also exported for tests that drive Apply directly.
func (m *Machine) CheckAll() error {
	for _, mp := range m.procs {
		if err := mp.oracle.checkAll(mp.env.Proc, m.vm); err != nil {
			return fmt.Errorf("process %d: %w", mp.env.Proc.ID, err)
		}
	}
	pinned := append([]Extent(nil), m.basePinned...)
	for _, set := range m.hogs {
		for _, e := range set {
			pinned = append(pinned, Extent{PFN: uint64(e.PFN), Pages: e.Pages})
		}
	}
	if err := Audit(m.kern, pinned); err != nil {
		return fmt.Errorf("audit: %w", err)
	}
	if m.vm != nil {
		if err := Audit(m.vm.Host, m.hostPinned); err != nil {
			return fmt.Errorf("host audit: %w", err)
		}
		// No host daemons and nothing unmaps guest backing: the host
		// mapping of guest memory only ever grows.
		if hm := m.vm.HostVMA().MappedPages; hm < m.lastHostMapped {
			return fmt.Errorf("host backing shrank: %d -> %d mapped pages", m.lastHostMapped, hm)
		} else {
			m.lastHostMapped = hm
		}
	}
	if m.tlb.Lookups() != m.Stats.TLBAccesses || m.tlb.Misses() != m.Stats.TLBMisses {
		return fmt.Errorf("tlb counters (%d lookups, %d misses) disagree with driver (%d, %d)",
			m.tlb.Lookups(), m.tlb.Misses(), m.Stats.TLBAccesses, m.Stats.TLBMisses)
	}
	return nil
}

// ApplyOps applies a decoded sequence and finishes with CheckAll.
func (m *Machine) ApplyOps(ops []Op) error {
	for i, op := range ops {
		if err := m.Apply(op); err != nil {
			return fmt.Errorf("op %d (%s A=%#x B=%#x C=%#x): %w", i, op.Kind, op.A, op.B, op.C, err)
		}
	}
	return m.CheckAll()
}

// opWeights shape RandomOp streams: touch-heavy with steady structural
// churn, mirroring how the experiments actually stress the kernel.
var opWeights = [numOpKinds]int{
	OpMMap:       12,
	OpTouch:      26,
	OpTouchRange: 15,
	OpUnmap:      8,
	OpFork:       5,
	OpHog:        3,
	OpUnhog:      3,
	OpDaemonTick: 7,
	OpPromote:    4,
	OpTLB:        17,
}

var opWeightSum = func() int {
	s := 0
	for _, w := range opWeights {
		s += w
	}
	return s
}()

// RandomOp draws one weighted op from rr.
func RandomOp(rr *rand.Rand) Op {
	n := rr.Intn(opWeightSum)
	k := OpKind(0)
	for ; k < numOpKinds; k++ {
		n -= opWeights[k]
		if n < 0 {
			break
		}
	}
	return Op{
		Kind: k,
		A:    rr.Uint64() & 0xfffff,
		B:    rr.Uint64() & 0xfffff,
		C:    rr.Uint64() & 0xfffff,
	}
}

// Run applies nops random ops seeded from the config and finishes with
// CheckAll.
func (m *Machine) Run(nops int) error {
	rr := rand.New(rand.NewSource(int64(m.cfg.Seed)))
	for i := 0; i < nops; i++ {
		op := RandomOp(rr)
		if err := m.Apply(op); err != nil {
			return fmt.Errorf("op %d (%s A=%#x B=%#x C=%#x): %w", i, op.Kind, op.A, op.B, op.C, err)
		}
	}
	return m.CheckAll()
}
