package check

import (
	"fmt"
	"sync"

	"repro/internal/mem/addr"
	"repro/internal/mem/frame"
	"repro/internal/mem/zone"
	"repro/internal/osim"
	"repro/internal/osim/pagetable"
	"repro/internal/osim/vma"
)

// bitset is a packed per-frame flag array, one bit per PFN relative to
// the audited frame table's base.
type bitset []uint64

func (b bitset) set(i uint64)      { b[i>>6] |= 1 << (i & 63) }
func (b bitset) get(i uint64) bool { return b[i>>6]&(1<<(i&63)) != 0 }

// setRange sets bits [i, i+n), whole words at a time in the interior.
func (b bitset) setRange(i, n uint64) {
	for ; n > 0 && i&63 != 0; n-- {
		b.set(i)
		i++
	}
	for ; n >= 64; n -= 64 {
		b[i>>6] = ^uint64(0)
		i += 64
	}
	for ; n > 0; n-- {
		b.set(i)
		i++
	}
}

// Auditor is the reusable audit arena: dense PFN-indexed scratch state
// sized to the audited machine's frame table, allocated once and
// cleared word-at-a-time per audit. Aging campaigns hold one Auditor
// for a whole run; the package-level Audit/AuditKernels wrappers borrow
// one from an internal pool, so one-shot callers get the same engine
// without managing a lifetime.
//
// An Auditor is NOT safe for concurrent use; each concurrent audit
// needs its own. The machine handed to successive audits may differ —
// the arena regrows to the largest frame table seen.
type Auditor struct {
	base addr.PFN // audited table's first PFN (per audit)
	refs []int32  // per-frame gathered reference counts
	span bitset   // frame is inside a leaf extent or cache-resident
	pins bitset   // frame is inside a declared pinned extent

	// zscratch holds one borrowed structural-check bitset per zone
	// index, so concurrently checked zones never share scratch words.
	zscratch [][]uint64

	// perVMA accumulates leaf pages per VMA for one process at a time;
	// it is tiny (VMAs, not frames) and reused across processes.
	perVMA map[*vma.VMA]uint64

	// errs and wg carry the parallel per-zone results; errs is indexed
	// by zone position so error selection is deterministic.
	errs []error
	wg   sync.WaitGroup
}

// NewAuditor returns an Auditor pre-sized to m's frame table. Campaigns
// that audit the same machine repeatedly should construct one and reuse
// it; a warm Auditor audits without touching the heap.
func NewAuditor(m *zone.Machine) *Auditor {
	a := &Auditor{}
	a.ensure(m)
	return a
}

// ensure grows the arena to cover m and clears the per-audit state.
func (a *Auditor) ensure(m *zone.Machine) {
	n := m.Frames.Len()
	a.base = m.Frames.Base()
	if uint64(len(a.refs)) < n {
		a.refs = make([]int32, n)
		words := (n + 63) / 64
		a.span = make(bitset, words)
		a.pins = make(bitset, words)
	}
	clear(a.refs)
	clear(a.span)
	clear(a.pins)
	if len(a.zscratch) < len(m.Zones) {
		a.zscratch = append(a.zscratch, make([][]uint64, len(m.Zones)-len(a.zscratch))...)
	}
	if len(a.errs) < len(m.Zones) {
		a.errs = make([]error, len(m.Zones))
	}
	if a.perVMA == nil {
		a.perVMA = make(map[*vma.VMA]uint64)
	}
}

// Audit is the single-kernel whole-machine audit; see the package-level
// Audit for the contract.
func (a *Auditor) Audit(k *osim.Kernel, pinned []Extent) error {
	return a.AuditKernels(k.Machine, []*osim.Kernel{k}, pinned)
}

// AuditKernels runs the deep cross-layer audit over m using this
// Auditor's arena; see the package-level AuditKernels for the contract.
//
// The pass structure is: (1) serially gather every software reference
// the kernels hold on physical frames into the flat refs/span arrays —
// per-process translation/VMA/RSS checks run inline here; (2) expand
// the declared pinned extents into a bitset; (3) fan the per-zone work
// out across one goroutine per zone — buddy and contigmap structural
// invariants on borrowed scratch, then one merged linear pass over the
// zone's frame records folding the frame-state count, the free/pinned
// cross-checks, and the MapCount-vs-references sweep together. Zones
// are disjoint frame ranges and the gathered arrays are read-only by
// then, so the fan-out is race-free; errors are selected in zone-index
// order, keeping multi-error machines deterministic.
func (a *Auditor) AuditKernels(m *zone.Machine, ks []*osim.Kernel, pinned []Extent) error {
	a.ensure(m)

	// Gather every reference the kernels' software structures hold on
	// physical frames: page-table leaves (the leaf head frame carries
	// one MapCount per referencing leaf; interior frames of a huge leaf
	// carry none but are spanned), and page-cache residency (the cache
	// owns one reference per cached page).
	for _, k := range ks {
		for _, p := range k.Processes() {
			if err := a.auditProcess(m, p); err != nil {
				return fmt.Errorf("process %d: %w", p.ID, err)
			}
		}
		k.Cache.VisitCached(func(_ *osim.File, _ uint64, pfn addr.PFN) {
			rel := uint64(pfn - a.base)
			a.refs[rel]++
			a.span.set(rel)
		})
	}

	for _, e := range pinned {
		// Clamp to the table: an extent outside it can never match a
		// swept frame, exactly as the map-based set never did.
		lo, hi := e.PFN, e.PFN+e.Pages
		if base := uint64(a.base); lo < base {
			lo = base
		}
		if end := uint64(a.base) + m.Frames.Len(); hi > end {
			hi = end
		}
		if lo < hi {
			a.pins.setRange(lo-uint64(a.base), hi-lo)
		}
	}

	// Per-zone structural checks plus the merged frame sweep, fanned
	// out over the shard-disjoint zones.
	errs := a.errs[:len(m.Zones)]
	if len(m.Zones) == 1 {
		errs[0] = a.zoneCheck(m, m.Zones[0], 0)
	} else {
		a.wg.Add(len(m.Zones))
		for i, z := range m.Zones {
			go a.zoneWorker(m, z, i)
		}
		a.wg.Wait()
	}
	for i := range errs {
		if errs[i] != nil {
			err := errs[i]
			clear(errs)
			return err
		}
	}
	return nil
}

func (a *Auditor) zoneWorker(m *zone.Machine, z *zone.Zone, i int) {
	defer a.wg.Done()
	a.errs[i] = a.zoneCheck(m, z, i)
}

// zoneCheck runs one zone's layer-local structural invariants (buddy
// list structure and the contiguity map riding the MAX_ORDER lists) on
// borrowed scratch, then the merged linear pass over the zone's frame
// records: free-count agreement between the frame table and the buddy,
// MapCount vs gathered references, and the free/pinned cross-checks,
// in one cache-friendly sweep instead of three.
func (a *Auditor) zoneCheck(m *zone.Machine, z *zone.Zone, i int) error {
	if len(a.zscratch[i]) < z.Buddy.ScratchWords() {
		a.zscratch[i] = make([]uint64, z.Buddy.ScratchWords())
	}
	scratch := a.zscratch[i]
	if err := z.Buddy.CheckInvariantsScratch(scratch); err != nil {
		return fmt.Errorf("zone %d: buddy: %w", z.ID, err)
	}
	if err := z.Contig.CheckInvariantsScratch(z.Buddy, scratch); err != nil {
		return fmt.Errorf("zone %d: contigmap: %w", z.ID, err)
	}

	// Merged frame sweep: MapCount must equal the gathered reference
	// count exactly, free frames must be untouched by any structure,
	// and every allocated-but-unreferenced, unspanned frame must be a
	// declared pin — in both directions (a pinned frame that is free,
	// mapped, or spanned is equally a bug: a double free or a placement
	// policy handing out pinned memory).
	fs := m.Frames.Slice(z.Base, z.Pages)
	relBase := uint64(z.Base - a.base)
	var free uint64
	for j := range fs {
		rel := relBase + uint64(j)
		f := &fs[j]
		r := a.refs[rel]
		if f.MapCount != r {
			return fmt.Errorf("frame %d: MapCount %d but %d live references", z.Base+addr.PFN(j), f.MapCount, r)
		}
		switch f.State {
		case frame.Free:
			free++
			if r != 0 || a.span.get(rel) {
				return fmt.Errorf("frame %d: free but referenced by a mapping or the page cache", z.Base+addr.PFN(j))
			}
			if a.pins.get(rel) {
				return fmt.Errorf("frame %d: declared pinned but free (double free of a pin?)", z.Base+addr.PFN(j))
			}
		case frame.Allocated:
			orphan := r == 0 && !a.span.get(rel)
			if orphan && !a.pins.get(rel) {
				return fmt.Errorf("frame %d: allocated, unmapped, uncached, and not a declared pin (leaked frame)", z.Base+addr.PFN(j))
			}
			if !orphan && a.pins.get(rel) {
				return fmt.Errorf("frame %d: declared pinned but referenced by a mapping or the page cache", z.Base+addr.PFN(j))
			}
		case frame.Reserved:
			// Zone frames are only ever Free or Allocated (boot
			// reservations go through Buddy.Reserve, which
			// allocates); Reserved marks frames outside any zone.
			return fmt.Errorf("zone %d: frame in Reserved state inside a zone", z.ID)
		}
	}
	if free != z.Buddy.FreePages() {
		return fmt.Errorf("zone %d: frame table has %d free frames, buddy says %d", z.ID, free, z.Buddy.FreePages())
	}
	return nil
}

// auditProcess checks one process's translation/VMA/RSS accounting and
// accumulates its frame references into the arena. m is the union
// machine, which may be wider than the process's own kernel's view.
func (a *Auditor) auditProcess(m *zone.Machine, p *osim.Process) error {
	perVMA := a.perVMA
	clear(perVMA)
	tableLen := m.Frames.Len()
	var total uint64
	var bad error
	p.PT.Visit(func(l pagetable.Leaf) {
		total += l.Pages
		if !m.Frames.Contains(l.PTE.PFN) {
			if bad == nil {
				bad = fmt.Errorf("leaf %s maps PFN %d outside the machine", l.VA, l.PTE.PFN)
			}
			return
		}
		rel := uint64(l.PTE.PFN - a.base)
		a.refs[rel]++
		n := l.Pages
		if max := tableLen - rel; n > max {
			// A huge leaf overhanging the table end spans only the
			// frames that exist, matching the sweep's reach.
			n = max
		}
		a.span.setRange(rel, n)
		if bad != nil {
			return
		}
		v := p.VMAs.Find(l.VA)
		if v == nil {
			bad = fmt.Errorf("leaf %s mapped outside any VMA", l.VA)
			return
		}
		if end := l.VA.Add(l.Pages * addr.PageSize); end > v.End {
			bad = fmt.Errorf("leaf %s (%d pages) overhangs its VMA end %s", l.VA, l.Pages, v.End)
			return
		}
		perVMA[v] += l.Pages
	})
	if bad != nil {
		return bad
	}
	if total != p.PT.MappedPages() {
		return fmt.Errorf("leaf sweep counts %d pages, MappedPages says %d", total, p.PT.MappedPages())
	}
	if total != p.RSSPages {
		return fmt.Errorf("page table maps %d pages but RSS charges %d", total, p.RSSPages)
	}
	var vmaErr error
	p.VMAs.Visit(func(v *vma.VMA) {
		if vmaErr == nil && perVMA[v] != v.MappedPages {
			vmaErr = fmt.Errorf("VMA %s-%s: MappedPages %d but %d leaf pages inside it", v.Start, v.End, v.MappedPages, perVMA[v])
		}
		delete(perVMA, v)
	})
	if vmaErr != nil {
		return vmaErr
	}
	if len(perVMA) != 0 {
		return fmt.Errorf("%d leaf-bearing VMAs missing from the VMA set", len(perVMA))
	}
	return nil
}
