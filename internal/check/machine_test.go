package check

import (
	"strings"
	"testing"

	"repro/internal/mem/addr"
	"repro/internal/osim/pagetable"
)

// machineConfigs is the matrix the differential state machine runs
// over: every placement policy natively (with daemons on the default
// config, where promotion/migration churn is the point) and the nested
// 2D path for the policies virtualized experiments use.
var machineConfigs = []struct {
	name string
	cfg  Config
}{
	{"native-default-daemons", Config{Daemons: true}},
	{"native-ca", Config{Policy: PolicyCA}},
	{"native-eager", Config{Policy: PolicyEager}},
	{"nested-default", Config{Nested: true}},
	{"nested-ca", Config{Nested: true, Policy: PolicyCA}},
}

const machineOps = 10_000

func TestMachineConfigs(t *testing.T) {
	for _, tc := range machineConfigs {
		for _, seed := range []uint64{1, 2} {
			tc, seed := tc, seed
			t.Run(tc.name+"/seed="+string(rune('0'+seed)), func(t *testing.T) {
				t.Parallel()
				cfg := tc.cfg
				cfg.Seed = seed
				m, err := NewMachine(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := m.Run(machineOps); err != nil {
					t.Fatal(err)
				}
				// Guard against vacuous green: the run must actually
				// have exercised the kernel and the TLB pair.
				if m.Stats.Ops != machineOps {
					t.Fatalf("applied %d ops, want %d", m.Stats.Ops, machineOps)
				}
				if m.kern.Stats.TotalFaults() == 0 {
					t.Fatal("run took no page faults")
				}
				if m.Stats.TLBAccesses == 0 {
					t.Fatal("run drove no TLB accesses")
				}
				t.Logf("stats: %+v, faults=%d", m.Stats, m.kern.Stats.TotalFaults())
			})
		}
	}
}

// TestMachineDeterministic pins the driver's reproducibility contract:
// same config, same seed, same sequence — byte-identical stats. Fuzz
// crashers and failing seeds are only actionable because of this.
func TestMachineDeterministic(t *testing.T) {
	run := func() (RunStats, uint64) {
		m, err := NewMachine(Config{Daemons: true, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(2000); err != nil {
			t.Fatal(err)
		}
		return m.Stats, m.kern.Clock
	}
	s1, c1 := run()
	s2, c2 := run()
	if s1 != s2 || c1 != c2 {
		t.Fatalf("same seed diverged: %+v clock=%d vs %+v clock=%d", s1, c1, s2, c2)
	}
}

// TestAuditDetectsCorruption proves the auditor is not vacuous: break
// each cross-layer tie by hand and require Audit to name it.
func TestAuditDetectsCorruption(t *testing.T) {
	setup := func(t *testing.T) *Machine {
		m, err := NewMachine(Config{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		// Map and fault a real footprint to corrupt.
		if err := m.Run(300); err != nil {
			t.Fatal(err)
		}
		return m
	}

	t.Run("mapcount-drift", func(t *testing.T) {
		m := setup(t)
		var pfn addr.PFN
		found := false
		for _, mp := range m.procs {
			mp.env.Proc.PT.Visit(func(l pagetable.Leaf) {
				if !found {
					pfn, found = l.PTE.PFN, true
				}
			})
		}
		if !found {
			t.Fatal("no mapped leaf to corrupt")
		}
		m.kern.Machine.Frames.Get(pfn).MapCount++
		err := m.CheckAll()
		if err == nil || !strings.Contains(err.Error(), "MapCount") {
			t.Fatalf("audit missed MapCount drift: %v", err)
		}
	})

	t.Run("leaked-frame", func(t *testing.T) {
		m := setup(t)
		// Allocate a frame behind everyone's back: allocated, unmapped,
		// uncached, and not a declared pin.
		if _, err := m.kern.Machine.AllocBlock(0, 0); err != nil {
			t.Fatal(err)
		}
		err := m.CheckAll()
		if err == nil || !strings.Contains(err.Error(), "leaked") {
			t.Fatalf("audit missed leaked frame: %v", err)
		}
	})

	t.Run("rss-drift", func(t *testing.T) {
		m := setup(t)
		m.procs[0].env.Proc.RSSPages++
		err := m.CheckAll()
		if err == nil {
			t.Fatal("audit missed RSS drift")
		}
	})

	t.Run("contig-counter-drift", func(t *testing.T) {
		m := setup(t)
		m.procs[0].env.Proc.PT.ContigBits++
		err := m.CheckAll()
		if err == nil || !strings.Contains(err.Error(), "Contig") {
			t.Fatalf("checkAll missed ContigBits drift: %v", err)
		}
	})

	t.Run("stolen-mapping", func(t *testing.T) {
		m := setup(t)
		p := m.procs[0].env.Proc
		// Map a page at a VA outside any VMA, referencing a frame the
		// process does not own.
		pfn, err := m.kern.Machine.AllocBlock(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		p.PT.Map4K(0x7000_0000_0000, pfn, pagetable.Present|pagetable.Writable)
		if err := m.CheckAll(); err == nil {
			t.Fatal("audit missed a mapping outside any VMA")
		}
	})
}
