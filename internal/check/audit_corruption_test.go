package check

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/mem/addr"
	"repro/internal/mem/contigmap"
	"repro/internal/mem/frame"
	"repro/internal/mem/zone"
	"repro/internal/osim"
	"repro/internal/osim/pagetable"
	"repro/internal/osim/vma"
	"repro/internal/workloads"
)

// firstMappedPFN returns a leaf-mapped frame whose MapCount is exactly
// want, so corruption tests can pick a frame with known reference count.
func firstMappedPFN(t *testing.T, ks []*osim.Kernel, want int32) addr.PFN {
	t.Helper()
	for _, k := range ks {
		for _, p := range k.Processes() {
			var found addr.PFN
			ok := false
			p.PT.Visit(func(l pagetable.Leaf) {
				if !ok && k.Machine.Frames.Get(l.PTE.PFN).MapCount == want {
					found, ok = l.PTE.PFN, true
				}
			})
			if ok {
				return found
			}
		}
	}
	t.Fatalf("no mapped frame with MapCount %d", want)
	return 0
}

// TestAuditCorruptionBranches drives every externally reachable failure
// branch of the flat-array audit engine — the per-frame merged sweep,
// the per-process gather, and the per-zone structural checks it wraps —
// on the two-zone sharded fixture, so each corruption is detected under
// the parallel per-zone fan-out, through both the package-level wrapper
// and a reused campaign-style Auditor.
//
// Three branches are deliberately absent because no public-API
// corruption can reach them without tripping an earlier check first:
// "leaf sweep counts ... MappedPages says" (the page table's counters
// are private and its Map/Unmap APIs keep them consistent by
// construction), "leaf-bearing VMAs missing from the VMA set" (Find and
// Visit read the same slice, so they cannot disagree), and "frame table
// has N free frames, buddy says M" (the buddy's own invariants pin
// state-Free frames to listed coverage and listed coverage to the
// counter, so any drift fires a buddy error first).
func TestAuditCorruptionBranches(t *testing.T) {
	tests := []struct {
		name    string
		corrupt func(t *testing.T, m *zone.Machine, ks []*osim.Kernel, envs []*workloads.Env) []Extent
		want    string
	}{
		{"mapcount-drift", func(t *testing.T, m *zone.Machine, ks []*osim.Kernel, _ []*workloads.Env) []Extent {
			m.Frames.Get(firstMappedPFN(t, ks, 1)).MapCount++
			return nil
		}, "live references"},
		{"free-but-referenced", func(t *testing.T, m *zone.Machine, ks []*osim.Kernel, _ []*workloads.Env) []Extent {
			// Free a still-mapped frame behind the mapping's back, then
			// restore MapCount so only the state cross-check can catch it.
			pfn := firstMappedPFN(t, ks, 1)
			m.FreeBlock(pfn, 0)
			m.Frames.Get(pfn).MapCount = 1
			return nil
		}, "free but referenced"},
		{"pinned-but-free", func(t *testing.T, m *zone.Machine, _ []*osim.Kernel, _ []*workloads.Env) []Extent {
			pfn, err := m.AllocBlock(0, 0)
			if err != nil {
				t.Fatal(err)
			}
			m.FreeBlock(pfn, 0)
			return []Extent{{PFN: uint64(pfn), Pages: 1}}
		}, "declared pinned but free"},
		{"leaked-frame", func(t *testing.T, m *zone.Machine, _ []*osim.Kernel, _ []*workloads.Env) []Extent {
			if _, err := m.AllocBlock(0, 0); err != nil {
				t.Fatal(err)
			}
			return nil
		}, "leaked frame"},
		{"pinned-but-referenced", func(t *testing.T, m *zone.Machine, ks []*osim.Kernel, _ []*workloads.Env) []Extent {
			return []Extent{{PFN: uint64(firstMappedPFN(t, ks, 1)), Pages: 1}}
		}, "declared pinned but referenced"},
		{"reserved-inside-zone", func(t *testing.T, m *zone.Machine, _ []*osim.Kernel, _ []*workloads.Env) []Extent {
			pfn, err := m.AllocBlock(0, 0)
			if err != nil {
				t.Fatal(err)
			}
			m.Frames.Get(pfn).State = frame.Reserved
			return nil
		}, "Reserved state inside a zone"},
		{"pfn-outside-machine", func(t *testing.T, m *zone.Machine, _ []*osim.Kernel, envs []*workloads.Env) []Extent {
			envs[0].Proc.PT.Map4K(0x7F00_0000_0000, addr.PFN(1)<<40, 0)
			return nil
		}, "outside the machine"},
		{"mapping-outside-any-vma", func(t *testing.T, m *zone.Machine, _ []*osim.Kernel, envs []*workloads.Env) []Extent {
			pfn, err := m.AllocBlock(0, 0)
			if err != nil {
				t.Fatal(err)
			}
			envs[0].Proc.PT.Map4K(0x7F00_0000_0000, pfn, 0)
			return nil
		}, "mapped outside any VMA"},
		{"vma-removed-under-leaves", func(t *testing.T, m *zone.Machine, _ []*osim.Kernel, envs []*workloads.Env) []Extent {
			p := envs[0].Proc
			var v *vma.VMA
			p.VMAs.Visit(func(c *vma.VMA) {
				if v == nil && c.MappedPages > 0 {
					v = c
				}
			})
			p.VMAs.Remove(v)
			return nil
		}, "mapped outside any VMA"},
		{"huge-leaf-overhangs-vma", func(t *testing.T, m *zone.Machine, _ []*osim.Kernel, envs []*workloads.Env) []Extent {
			// A 1 MiB VMA with a 2 MiB leaf mapped at its start: the
			// leaf's last 256 pages overhang the VMA end.
			p := envs[0].Proc
			const va = addr.VirtAddr(0x6000_0000_0000)
			if _, err := p.VMAs.Insert(va, 256*addr.PageSize, vma.Anonymous); err != nil {
				t.Fatal(err)
			}
			pfn, err := m.AllocBlock(0, addr.HugeOrder)
			if err != nil {
				t.Fatal(err)
			}
			p.PT.Map2M(va, pfn, 0)
			return nil
		}, "overhangs its VMA end"},
		{"rss-drift", func(t *testing.T, m *zone.Machine, _ []*osim.Kernel, envs []*workloads.Env) []Extent {
			envs[0].Proc.RSSPages++
			return nil
		}, "RSS charges"},
		{"vma-mapped-pages-drift", func(t *testing.T, m *zone.Machine, _ []*osim.Kernel, envs []*workloads.Env) []Extent {
			var v *vma.VMA
			envs[0].Proc.VMAs.Visit(func(c *vma.VMA) {
				if v == nil && c.MappedPages > 0 {
					v = c
				}
			})
			v.MappedPages++
			return nil
		}, "leaf pages inside it"},
		{"buddy-structural-error", func(t *testing.T, m *zone.Machine, _ []*osim.Kernel, _ []*workloads.Env) []Extent {
			// Clear a listed MAX_ORDER head's marking: the buddy's own
			// invariants fire, wrapped with the zone prefix.
			var head addr.PFN
			found := false
			m.Zones[0].Buddy.VisitMaxOrder(func(p addr.PFN) {
				if !found {
					head, found = p, true
				}
			})
			if !found {
				t.Fatal("no free MAX_ORDER block")
			}
			m.Frames.Get(head).BuddyOrder = -1
			return nil
		}, "buddy: "},
		{"contigmap-structural-error", func(t *testing.T, m *zone.Machine, _ []*osim.Kernel, _ []*workloads.Env) []Extent {
			var c0 *contigmap.Cluster
			m.Zones[0].Contig.Visit(func(c *contigmap.Cluster) {
				if c0 == nil {
					c0 = c
				}
			})
			if c0 == nil {
				t.Fatal("no cluster in zone 0")
			}
			m.Frames.Get(c0.Start).Cluster = 0
			return nil
		}, "contigmap: "},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			m, ks, envs := shardedFixture(t)
			pinned := tc.corrupt(t, m, ks, envs)
			err := AuditKernels(m, ks, pinned)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("AuditKernels = %v, want error containing %q", err, tc.want)
			}
			// The campaign shape — a held, reused Auditor — must report
			// the identical error.
			a := NewAuditor(m)
			if err2 := a.AuditKernels(m, ks, pinned); err2 == nil || err2.Error() != err.Error() {
				t.Fatalf("reused Auditor reported %v, wrapper reported %v", err2, err)
			}
			// And the same arena, its scratch now dirty from the failed
			// audit, must still pass a clean machine.
			m2, ks2, _ := shardedFixture(t)
			if err := a.AuditKernels(m2, ks2, nil); err != nil {
				t.Fatalf("dirty arena failed clean machine: %v", err)
			}
		})
	}
}

// TestAuditParallelErrorDeterministic corrupts both zones at once and
// requires the parallel per-zone sweep to report the zone-0 error every
// time: error selection is by zone index, not goroutine finish order.
func TestAuditParallelErrorDeterministic(t *testing.T) {
	m, ks, _ := shardedFixture(t)
	if _, err := m.AllocBlock(0, 0); err != nil { // leak in zone 0
		t.Fatal(err)
	}
	if _, err := m.AllocBlock(1, 0); err != nil { // leak in zone 1
		t.Fatal(err)
	}
	first := ""
	for i := 0; i < 25; i++ {
		err := AuditKernels(m, ks, nil)
		if err == nil {
			t.Fatal("audit missed double corruption")
		}
		if first == "" {
			first = err.Error()
		} else if err.Error() != first {
			t.Fatalf("run %d reported %q, first run reported %q", i, err.Error(), first)
		}
	}
	if !strings.Contains(first, "leaked frame") {
		t.Fatalf("unexpected error %q", first)
	}
	// The reported frame must be zone 0's: its PFN is below zone 1's base.
	var pfn uint64
	if _, err := fmt.Sscanf(first, "frame %d:", &pfn); err != nil {
		t.Fatalf("cannot parse frame number from %q: %v", first, err)
	}
	if pfn >= uint64(m.Zones[1].Base) {
		t.Fatalf("error %q names a zone-1 frame; want the zone-0 one", first)
	}
}
