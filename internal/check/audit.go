package check

import (
	"sync"

	"repro/internal/mem/zone"
	"repro/internal/osim"
)

// auditors recycles audit arenas for the package-level wrappers, so
// even one-shot callers (the op machine's CheckAll, ad-hoc test audits)
// pay the flat-array engine's allocation cost only once per P instead
// of once per audit. Arenas regrow to the largest machine they see.
var auditors = sync.Pool{New: func() any { return &Auditor{} }}

// Audit is the deep cross-layer consistency pass over one kernel: it
// ties frame ownership to PTE mappings, buddy free lists, contiguity-map
// extents, and VMA accounting, and proves the two directions the cheap
// per-layer invariants cannot see on their own — no frame is referenced
// by more (or fewer) translations than its MapCount says, and no
// allocated frame exists that nothing (mapping, page cache, or declared
// pin) accounts for. pinned lists the extents intentionally held with no
// mapping: boot reservations and memory-hog chunks.
//
// Audit only reads; it is safe to call between any two kernel
// operations, from any test. Repeated callers (aging campaigns) should
// hold their own Auditor instead and call its Audit method: the arena
// is then reused across snapshots with zero steady-state allocation.
func Audit(k *osim.Kernel, pinned []Extent) error {
	return AuditKernels(k.Machine, []*osim.Kernel{k}, pinned)
}

// AuditKernels is Audit over a machine whose software state is split
// across several kernels sharing one frame table — the sharded aging
// campaign, where each shard kernel owns a zone subset through a view
// and the parent kernel owns the page cache and boot reservations.
// Structural invariants and the frame sweep run over m (the union
// machine); references are gathered from every kernel's processes and
// page cache before the sweep, so a frame mapped by one shard and
// cached by the parent is accounted once from each. The kernels must
// be quiesced (no concurrent stepping) for the duration of the call.
func AuditKernels(m *zone.Machine, ks []*osim.Kernel, pinned []Extent) error {
	a := auditors.Get().(*Auditor)
	err := a.AuditKernels(m, ks, pinned)
	auditors.Put(a)
	return err
}
