package check

import (
	"fmt"

	"repro/internal/mem/addr"
	"repro/internal/mem/frame"
	"repro/internal/mem/zone"
	"repro/internal/osim"
	"repro/internal/osim/pagetable"
	"repro/internal/osim/vma"
)

// Audit is the deep cross-layer consistency pass over one kernel: it
// ties frame ownership to PTE mappings, buddy free lists, contiguity-map
// extents, and VMA accounting, and proves the two directions the cheap
// per-layer invariants cannot see on their own — no frame is referenced
// by more (or fewer) translations than its MapCount says, and no
// allocated frame exists that nothing (mapping, page cache, or declared
// pin) accounts for. pinned lists the extents intentionally held with no
// mapping: boot reservations and memory-hog chunks.
//
// Audit only reads; it is safe to call between any two kernel
// operations, from any test.
func Audit(k *osim.Kernel, pinned []Extent) error {
	return AuditKernels(k.Machine, []*osim.Kernel{k}, pinned)
}

// AuditKernels is Audit over a machine whose software state is split
// across several kernels sharing one frame table — the sharded aging
// campaign, where each shard kernel owns a zone subset through a view
// and the parent kernel owns the page cache and boot reservations.
// Structural invariants and the frame sweep run over m (the union
// machine); references are gathered from every kernel's processes and
// page cache before the sweep, so a frame mapped by one shard and
// cached by the parent is accounted once from each. The kernels must
// be quiesced (no concurrent stepping) for the duration of the call.
func AuditKernels(m *zone.Machine, ks []*osim.Kernel, pinned []Extent) error {
	// Layer-local structural invariants first: buddy list structure and
	// the contiguity map riding the MAX_ORDER lists, per zone, plus
	// free-count agreement between the frame table and the buddy.
	for _, z := range m.Zones {
		if err := z.Buddy.CheckInvariants(); err != nil {
			return fmt.Errorf("zone %d: buddy: %w", z.ID, err)
		}
		if err := z.Contig.CheckInvariants(z.Buddy); err != nil {
			return fmt.Errorf("zone %d: contigmap: %w", z.ID, err)
		}
		var free uint64
		for _, f := range m.Frames.Slice(z.Base, z.Pages) {
			switch f.State {
			case frame.Free:
				free++
			case frame.Reserved:
				// Zone frames are only ever Free or Allocated (boot
				// reservations go through Buddy.Reserve, which
				// allocates); Reserved marks frames outside any zone.
				return fmt.Errorf("zone %d: frame in Reserved state inside a zone", z.ID)
			}
		}
		if free != z.Buddy.FreePages() {
			return fmt.Errorf("zone %d: frame table has %d free frames, buddy says %d", z.ID, free, z.Buddy.FreePages())
		}
	}

	// Gather every reference the kernels' software structures hold on
	// physical frames: page-table leaves (the leaf head frame carries
	// one MapCount per referencing leaf; interior frames of a huge leaf
	// carry none but are spanned), and page-cache residency (the cache
	// owns one reference per cached page).
	refs := make(map[addr.PFN]int32)
	span := make(map[addr.PFN]bool)
	for _, k := range ks {
		for _, p := range k.Processes() {
			if err := auditProcess(m, p, refs, span); err != nil {
				return fmt.Errorf("process %d: %w", p.ID, err)
			}
		}
		k.Cache.VisitCached(func(_ *osim.File, _ uint64, pfn addr.PFN) {
			refs[pfn]++
			span[pfn] = true
		})
	}

	pinnedSet := make(map[addr.PFN]bool)
	for _, e := range pinned {
		for i := uint64(0); i < e.Pages; i++ {
			pinnedSet[addr.PFN(e.PFN+i)] = true
		}
	}

	// Frame sweep: MapCount must equal the gathered reference count
	// exactly, free frames must be untouched by any structure, and
	// every allocated-but-unreferenced, unspanned frame must be a
	// declared pin — in both directions (a pinned frame that is free,
	// mapped, or spanned is equally a bug: a double free or a placement
	// policy handing out pinned memory).
	for _, z := range m.Zones {
		for i := uint64(0); i < z.Pages; i++ {
			pfn := z.Base + addr.PFN(i)
			f := m.Frames.Get(pfn)
			if f.MapCount != refs[pfn] {
				return fmt.Errorf("frame %d: MapCount %d but %d live references", pfn, f.MapCount, refs[pfn])
			}
			switch f.State {
			case frame.Free:
				if refs[pfn] != 0 || span[pfn] {
					return fmt.Errorf("frame %d: free but referenced by a mapping or the page cache", pfn)
				}
				if pinnedSet[pfn] {
					return fmt.Errorf("frame %d: declared pinned but free (double free of a pin?)", pfn)
				}
			case frame.Allocated:
				orphan := refs[pfn] == 0 && !span[pfn]
				if orphan && !pinnedSet[pfn] {
					return fmt.Errorf("frame %d: allocated, unmapped, uncached, and not a declared pin (leaked frame)", pfn)
				}
				if !orphan && pinnedSet[pfn] {
					return fmt.Errorf("frame %d: declared pinned but referenced by a mapping or the page cache", pfn)
				}
			}
		}
	}
	return nil
}

// auditProcess checks one process's translation/VMA/RSS accounting and
// accumulates its frame references into refs/span. m is the union
// machine, which may be wider than the process's own kernel's view.
func auditProcess(m *zone.Machine, p *osim.Process, refs map[addr.PFN]int32, span map[addr.PFN]bool) error {
	perVMA := make(map[*vma.VMA]uint64)
	var total uint64
	var bad error
	p.PT.Visit(func(l pagetable.Leaf) {
		refs[l.PTE.PFN]++
		for i := uint64(0); i < l.Pages; i++ {
			span[l.PTE.PFN+addr.PFN(i)] = true
		}
		total += l.Pages
		if bad != nil {
			return
		}
		if !m.Frames.Contains(l.PTE.PFN) {
			bad = fmt.Errorf("leaf %s maps PFN %d outside the machine", l.VA, l.PTE.PFN)
			return
		}
		v := p.VMAs.Find(l.VA)
		if v == nil {
			bad = fmt.Errorf("leaf %s mapped outside any VMA", l.VA)
			return
		}
		if end := l.VA.Add(l.Pages * addr.PageSize); end > v.End {
			bad = fmt.Errorf("leaf %s (%d pages) overhangs its VMA end %s", l.VA, l.Pages, v.End)
			return
		}
		perVMA[v] += l.Pages
	})
	if bad != nil {
		return bad
	}
	if total != p.PT.MappedPages() {
		return fmt.Errorf("leaf sweep counts %d pages, MappedPages says %d", total, p.PT.MappedPages())
	}
	if total != p.RSSPages {
		return fmt.Errorf("page table maps %d pages but RSS charges %d", total, p.RSSPages)
	}
	var vmaErr error
	p.VMAs.Visit(func(v *vma.VMA) {
		if vmaErr == nil && perVMA[v] != v.MappedPages {
			vmaErr = fmt.Errorf("VMA %s-%s: MappedPages %d but %d leaf pages inside it", v.Start, v.End, v.MappedPages, perVMA[v])
		}
		delete(perVMA, v)
	})
	if vmaErr != nil {
		return vmaErr
	}
	if len(perVMA) != 0 {
		return fmt.Errorf("%d leaf-bearing VMAs missing from the VMA set", len(perVMA))
	}
	return nil
}
