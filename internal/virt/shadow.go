package virt

import (
	"repro/internal/mem/addr"
	"repro/internal/osim"
	"repro/internal/osim/pagetable"
)

// ShadowTable implements shadow paging, the classic software MMU
// virtualization the paper notes its techniques remain applicable to
// (§VII): the hypervisor maintains a composite gVA→hPA page table that
// the hardware walks *natively* (4 levels, no nested expansion), at the
// cost of a hypervisor exit to re-synchronise the shadow on every guest
// page-table update.
//
// The simulator builds the shadow lazily: a shadow miss composes the
// guest and host translations for the faulting gVA and installs the
// composite leaf (counted as one synchronisation exit). Guest-side
// unmaps would invalidate shadow entries; the simulator builds a fresh
// shadow per measured run, matching the paper's steady-state windows.
type ShadowTable struct {
	vm    *VM
	proc  *osim.Process
	table *pagetable.Table

	// SyncExits counts hypervisor exits taken to fill shadow entries.
	SyncExits uint64
}

// NewShadow creates an empty shadow table for a guest process.
func (vm *VM) NewShadow(p *osim.Process) *ShadowTable {
	return &ShadowTable{vm: vm, proc: p, table: pagetable.New()}
}

// Walk resolves gva through the shadow: a hit costs a native walk; a
// miss costs a synchronisation exit that composes guest and host
// translations and installs the composite entry. ok is false when the
// gVA is unbacked in either dimension.
func (s *ShadowTable) Walk(gva addr.VirtAddr) (hpa addr.PhysAddr, level int, synced bool, ok bool) {
	if pte, lvl, _, hit := s.table.Walk(gva); hit {
		span := uint64(addr.PageSize)
		if lvl == pagetable.HugeLevel {
			span = addr.HugeSize
		}
		return pte.PFN.Addr() + addr.PhysAddr(uint64(gva)&(span-1)), lvl, false, true
	}
	// Shadow miss: the hypervisor composes the 2D translation.
	gpte, glevel, _, gok := s.proc.PT.Walk(gva)
	if !gok {
		return 0, 0, false, false
	}
	s.SyncExits++
	// The composite entry can be huge only when both dimensions map the
	// region huge (the frames are then mutually 2 MiB aligned).
	if glevel == pagetable.HugeLevel {
		hvaBase := s.vm.HostVAOf(gpte.PFN.Addr())
		if hpte, hlevel, _, hok := s.vm.HostProc.PT.Walk(hvaBase); hok && hlevel == pagetable.HugeLevel {
			base := gva.HugeDown()
			hpaBase := hpte.PFN.Addr() + addr.PhysAddr(uint64(hvaBase)&addr.HugeMask)
			s.table.Map2M(base, hpaBase.Frame(), pagetable.Writable)
			return hpaBase + addr.PhysAddr(uint64(gva)&addr.HugeMask), pagetable.HugeLevel, true, true
		}
	}
	gspan := uint64(addr.PageSize)
	if glevel == pagetable.HugeLevel {
		gspan = addr.HugeSize
	}
	gpa := gpte.PFN.Addr() + addr.PhysAddr(uint64(gva)&(gspan-1))
	hp, hok := s.vm.TranslateThroughHost(gpa)
	if !hok {
		return 0, 0, false, false
	}
	s.table.Map4K(gva.PageDown(), hp.Frame(), pagetable.Writable)
	return hp, 0, true, true
}

// Mapped4K returns the shadow's 4 KiB leaf count (test support).
func (s *ShadowTable) Mapped4K() uint64 { return s.table.Mapped4K() }

// Mapped2M returns the shadow's huge-leaf count.
func (s *ShadowTable) Mapped2M() uint64 { return s.table.Mapped2M() }

// TranslateThroughHost resolves a guest physical address to host
// physical through the VM's backing mappings.
func (vm *VM) TranslateThroughHost(gpa addr.PhysAddr) (addr.PhysAddr, bool) {
	return vm.HostProc.Translate(vm.HostVAOf(gpa))
}
