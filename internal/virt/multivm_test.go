package virt

import (
	"testing"

	"repro/internal/mem/addr"
	"repro/internal/metrics"
	"repro/internal/osim"
)

// TestTwoVMsShareHostContiguity runs two VMs on one host: consolidation
// is the setting the paper targets, and CA paging in the host must keep
// each VM's backing contiguous while both fault concurrently.
func TestTwoVMsShareHostContiguity(t *testing.T) {
	host := newHost(t, 160, osim.CAPolicy{}) // 640 MiB
	vmA := newVM(t, host, 128<<20, osim.CAPolicy{})
	vmB := newVM(t, host, 128<<20, osim.CAPolicy{})
	pA := vmA.NewGuestProcess(0)
	pB := vmB.NewGuestProcess(0)
	va, _ := pA.MMap(32 * addr.HugeSize)
	vb, _ := pB.MMap(32 * addr.HugeSize)
	// Interleave the two VMs' guest faults in bursts.
	const burst = 4 * addr.HugeSize
	for off := uint64(0); off < va.Size(); off += burst {
		for b := uint64(0); b < burst; b += addr.PageSize {
			if err := vmA.Touch(pA, va.Start.Add(off+b), true); err != nil {
				t.Fatal(err)
			}
		}
		for b := uint64(0); b < burst; b += addr.PageSize {
			if err := vmB.Touch(pB, vb.Start.Add(off+b), true); err != nil {
				t.Fatal(err)
			}
		}
	}
	for name, check := range map[string][]metrics.Mapping{
		"A": vmA.Mappings2D(pA),
		"B": vmB.Mappings2D(pB),
	} {
		if n := metrics.MappingsFor(check, 0.99); n > 4 {
			t.Fatalf("VM %s needs %d 2D mappings for 99%%, want few", name, n)
		}
	}
	// Destroying one VM returns its memory without disturbing the other.
	before := metrics.MappingsFor(vmB.Mappings2D(pB), 0.99)
	free0 := host.Machine.FreePages()
	vmA.Destroy()
	if host.Machine.FreePages() <= free0 {
		t.Fatal("destroying VM A released nothing")
	}
	if after := metrics.MappingsFor(vmB.Mappings2D(pB), 0.99); after != before {
		t.Fatalf("VM B's mappings changed: %d -> %d", before, after)
	}
}

// TestVMOvercommitFails ensures host OOM propagates cleanly through the
// nested fault path rather than corrupting state.
func TestVMOvercommitFails(t *testing.T) {
	host := newHost(t, 16, osim.DefaultPolicy{}) // 64 MiB host
	vm := newVM(t, host, 48<<20, osim.DefaultPolicy{})
	p := vm.NewGuestProcess(0)
	v, _ := p.MMap(56 << 20) // more than the host can back
	var sawErr bool
	for off := uint64(0); off < v.Size(); off += addr.PageSize {
		if err := vm.Touch(p, v.Start.Add(off), true); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("expected nested-fault OOM")
	}
}
