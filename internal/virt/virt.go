// Package virt builds the virtualization substrate: a hypervisor whose
// VMs run a full guest memory manager (package osim) over a guest
// physical address space that the host memory manager backs on demand
// through nested (EPT-style) faults.
//
// The two translation dimensions of nested paging map onto two complete
// osim kernels:
//
//   - 1st dimension (gVA→gPA): the guest kernel, with its own buddy
//     allocator, contiguity map, and placement policy, installs guest
//     page tables for guest processes.
//   - 2nd dimension (gPA→hPA): each VM is one host process whose single
//     anonymous VMA spans the guest physical space; a guest access to a
//     gPA not yet backed triggers a host fault there (the nested/EPT
//     fault), served by the host kernel's placement policy.
//
// Running CA paging in each kernel independently is exactly the paper's
// deployment model (§III-C "Virtualized execution"); this package also
// provides the VMI-style introspection that composes the two page
// tables into full 2D (gVA→hPA) mappings for the contiguity metrics
// and for hardware emulation.
package virt

import (
	"fmt"

	"repro/internal/mem/addr"
	"repro/internal/mem/zone"
	"repro/internal/metrics"
	"repro/internal/osim"
	"repro/internal/osim/pagetable"
	"repro/internal/osim/vma"
	"repro/internal/trace"
)

// VM is one virtual machine: a guest kernel plus its host backing.
type VM struct {
	// Host is the hypervisor-side kernel backing this VM.
	Host *osim.Kernel
	// HostProc is the host process representing the VM (QEMU-like).
	HostProc *osim.Process
	// Guest is the guest OS kernel managing guest physical memory.
	Guest *osim.Kernel

	baseVA   addr.VirtAddr // host VA of guest physical address 0
	hostVMA  *vma.VMA      // the single backing VMA spanning guest memory
	memPages uint64
	tr       *trace.Tracer
}

// SetTracer attaches (or, with nil, detaches) an event tracer to the
// whole VM: the guest kernel, the host kernel backing it, and the
// VM's own nested-fault instrumentation all report to the same tracer.
func (vm *VM) SetTracer(t *trace.Tracer) {
	vm.tr = t
	vm.Guest.SetTracer(t)
	vm.Host.SetTracer(t)
}

// Config describes a VM.
type Config struct {
	// MemBytes is the guest physical memory size.
	MemBytes uint64
	// GuestZones optionally splits guest memory into NUMA zones (page
	// counts); when nil, one zone spans all guest memory.
	GuestZones []uint64
	// GuestPolicy is the guest kernel's placement policy.
	GuestPolicy osim.Placement
	// GuestSorted enables the sorted MAX_ORDER list in the guest buddy.
	GuestSorted bool
	// GuestBootReserve pins this many MAX_ORDER blocks at the start of
	// each guest zone (guest kernel image / reserved regions).
	GuestBootReserve int
}

// New creates a VM on the given host kernel. Guest memory is rounded to
// MAX_ORDER blocks.
func New(host *osim.Kernel, cfg Config) (*VM, error) {
	pages := addr.BytesToPages(cfg.MemBytes)
	pages = (pages + addr.MaxOrderPages - 1) &^ uint64(addr.MaxOrderPages-1)
	zones := cfg.GuestZones
	if zones == nil {
		zones = []uint64{pages}
	} else {
		var sum uint64
		for _, z := range zones {
			sum += z
		}
		if sum != pages {
			return nil, fmt.Errorf("virt: guest zones sum %d != guest pages %d", sum, pages)
		}
	}
	policy := cfg.GuestPolicy
	if policy == nil {
		policy = osim.DefaultPolicy{}
	}
	guestMachine := zone.NewMachine(zone.Config{ZonePages: zones, SortedMaxOrder: cfg.GuestSorted})
	guest := osim.NewKernel(guestMachine, policy)
	if cfg.GuestBootReserve > 0 {
		guest.BootReserve(cfg.GuestBootReserve)
	}

	hostProc := host.NewProcess(0)
	hostVMA, err := hostProc.MMap(pages * addr.PageSize)
	if err != nil {
		return nil, fmt.Errorf("virt: backing VMA: %w", err)
	}
	return &VM{
		Host:     host,
		HostProc: hostProc,
		Guest:    guest,
		baseVA:   hostVMA.Start,
		hostVMA:  hostVMA,
		memPages: pages,
	}, nil
}

// MemPages returns the guest physical memory size in pages.
func (vm *VM) MemPages() uint64 { return vm.memPages }

// HostVMA returns the single host VMA backing guest physical memory.
// Auditors use it to tie guest-side frame ownership to the host-side
// mapping state.
func (vm *VM) HostVMA() *vma.VMA { return vm.hostVMA }

// HostVAOf maps a guest physical address to its host virtual address in
// the VM's backing VMA.
func (vm *VM) HostVAOf(gpa addr.PhysAddr) addr.VirtAddr {
	return vm.baseVA.Add(uint64(gpa))
}

// NewGuestProcess starts a process inside the guest OS.
func (vm *VM) NewGuestProcess(homeZone int) *osim.Process {
	return vm.Guest.NewProcess(homeZone)
}

// Touch simulates a guest application access: a guest page fault maps
// gVA→gPA if needed (1st dimension), and a nested fault backs the gPA
// with host memory if needed (2nd dimension). Guest kernel time (fault
// latencies) accumulates on the guest clock; nested fault time on the
// host clock.
func (vm *VM) Touch(p *osim.Process, gva addr.VirtAddr, write bool) error {
	v := p.VMAs.Find(gva)
	if v == nil {
		return fmt.Errorf("virt: guest fault: %w", osim.ErrSegfault)
	}
	_, err := vm.TouchAt(p, v, gva, write)
	return err
}

// TouchAt is Touch with the guest VMA already resolved. It reports
// whether either dimension took a fault.
func (vm *VM) TouchAt(p *osim.Process, v *vma.VMA, gva addr.VirtAddr, write bool) (bool, error) {
	gf, err := p.TouchAt(v, gva, write)
	if err != nil {
		return false, fmt.Errorf("virt: guest fault: %w", err)
	}
	gpa, ok := p.Translate(gva)
	if !ok {
		return false, fmt.Errorf("virt: guest translation missing after fault at %v", gva)
	}
	hf, err := vm.HostProc.TouchAt(vm.hostVMA, vm.HostVAOf(gpa), write)
	if err != nil {
		return false, fmt.Errorf("virt: nested fault: %w", err)
	}
	if hf && vm.tr != nil {
		vm.tr.Emit(trace.EvNestedFault, uint64(gva), uint64(gpa), 0)
	}
	return gf || hf, nil
}

// TouchRangeQuiet advances over up to maxPages consecutive guest pages
// starting at gva whose translations are present — and, on writes, not
// copy-on-write — in BOTH dimensions, setting Accessed/Dirty bits and
// touch bitmaps exactly as the per-page TouchAt loop would. It stops
// before the first page needing either a guest or a nested fault and
// returns how many pages it advanced over.
//
// Guest physical addresses are only contiguous within one guest leaf,
// so the walk is chunked: resolve the guest leaf once, then hand its
// gPA-contiguous extent to the host-side quiet walk. The guest leaf's
// flag update commutes with the host-side touches (the two dimensions
// share no state), so setting it once per chunk equals the per-page
// interleaving.
func (vm *VM) TouchRangeQuiet(p *osim.Process, v *vma.VMA, gva addr.VirtAddr, maxPages uint64, write bool) uint64 {
	set := pagetable.Accessed
	var stop pagetable.Flags
	if write {
		set |= pagetable.Dirty
		stop = pagetable.CoW
	}
	var done uint64
	for done < maxPages {
		cur := gva.Add(done * addr.PageSize)
		gpte, gpages, ok := p.PT.Lookup(cur)
		if !ok || gpte.Flags&stop != 0 {
			break
		}
		span := gpages * addr.PageSize
		within := uint64(cur) & (span - 1)
		chunk := (span - within) / addr.PageSize
		if rem := maxPages - done; chunk > rem {
			chunk = rem
		}
		gpa := gpte.PFN.Addr() + addr.PhysAddr(within)
		hn := vm.HostProc.TouchRangeQuiet(vm.hostVMA, vm.HostVAOf(gpa), chunk, write)
		if hn > 0 {
			gpte.Flags |= set
			v.MarkTouchedRange(uint64(cur-v.Start)/addr.PageSize, hn)
			done += hn
		}
		if hn < chunk {
			break
		}
	}
	return done
}

// TranslateFull performs the full 2D translation gVA→gPA→hPA.
func (vm *VM) TranslateFull(p *osim.Process, gva addr.VirtAddr) (addr.PhysAddr, bool) {
	gpa, ok := p.Translate(gva)
	if !ok {
		return 0, false
	}
	return vm.HostProc.Translate(vm.HostVAOf(gpa))
}

// NestedWalk is the hardware view of one 2D page walk, consumed by the
// walk cost model and SpOT's fill path.
type NestedWalk struct {
	HPA addr.PhysAddr
	// GuestLevel/HostLevel are the leaf levels (0 = 4K, 1 = 2M).
	GuestLevel, HostLevel int
	// Refs is the number of memory references of the nested walk:
	// (g+1)*(h+1)-1 for g guest and h host levels touched, the paper's
	// "up to 24 memory references" structure.
	Refs int
	// GuestContig and HostContig report the PTE contiguity bits of the
	// two leaf entries; SpOT fills only when both are set.
	GuestContig, HostContig bool
	OK                      bool
}

// Walk performs the nested walk for gva through p's guest tables and
// the VM's host backing, without faulting.
func (vm *VM) Walk(p *osim.Process, gva addr.VirtAddr) NestedWalk {
	gpte, glevel, gsteps, ok := p.PT.Walk(gva)
	if !ok {
		return NestedWalk{}
	}
	span := uint64(addr.PageSize)
	if glevel == pagetable.HugeLevel {
		span = addr.HugeSize
	}
	gpa := gpte.PFN.Addr() + addr.PhysAddr(uint64(gva)&(span-1))
	hva := vm.HostVAOf(gpa)
	hpte, hlevel, hsteps, ok := vm.HostProc.PT.Walk(hva)
	if !ok {
		return NestedWalk{}
	}
	hspan := uint64(addr.PageSize)
	if hlevel == pagetable.HugeLevel {
		hspan = addr.HugeSize
	}
	hpa := hpte.PFN.Addr() + addr.PhysAddr(uint64(hva)&(hspan-1))
	return NestedWalk{
		HPA:         hpa,
		GuestLevel:  glevel,
		HostLevel:   hlevel,
		Refs:        (gsteps+1)*(hsteps+1) - 1,
		GuestContig: gpte.Flags.Has(pagetable.Contig),
		HostContig:  hpte.Flags.Has(pagetable.Contig),
		OK:          true,
	}
}

// NestedTables returns the two page tables a nested walk for p
// consults: the guest table (gVA→gPA) and the host backing table
// (host VA→hPA). Walk memoization keys its entries to these tables'
// generation counters: a cached gVA→hPA composition is valid only
// while *both* generations stand still.
func (vm *VM) NestedTables(p *osim.Process) (guest, host *pagetable.Table) {
	return p.PT, vm.HostProc.PT
}

// Mappings2D extracts the VM's full 2D (gVA→hPA) contiguous mappings
// for a guest process — the in-house VMI tool of §V: walk the guest
// page table, compose each extent with the host (nested) translations,
// and merge runs where gVA and hPA advance in lockstep.
func (vm *VM) Mappings2D(p *osim.Process) []metrics.Mapping {
	var out []metrics.Mapping
	var cur metrics.Mapping
	flush := func() {
		if cur.Pages > 0 {
			out = append(out, cur)
			cur = metrics.Mapping{}
		}
	}
	p.PT.Visit(func(l pagetable.Leaf) {
		gva := l.VA
		remaining := l.Pages
		gpa := l.PTE.PFN.Addr()
		for remaining > 0 {
			hva := vm.HostVAOf(gpa)
			hpte, hpages, ok := vm.HostProc.PT.Lookup(hva)
			if !ok {
				// gPA not backed yet: break the run and skip one page.
				flush()
				gva = gva.Add(addr.PageSize)
				gpa += addr.PageSize
				remaining--
				continue
			}
			// Offset of hva within the host leaf.
			leafSpan := hpages * addr.PageSize
			within := uint64(hva) & (leafSpan - 1)
			hpa := hpte.PFN.Addr() + addr.PhysAddr(within)
			chunk := (leafSpan - within) / addr.PageSize
			if chunk > remaining {
				chunk = remaining
			}
			if cur.Pages > 0 && gva == cur.End() && hpa == cur.PA+addr.PhysAddr(cur.Pages*addr.PageSize) {
				cur.Pages += chunk
			} else {
				flush()
				cur = metrics.Mapping{VA: gva, PA: hpa, Pages: chunk}
			}
			gva = gva.Add(chunk * addr.PageSize)
			gpa += addr.PhysAddr(chunk * addr.PageSize)
			remaining -= chunk
		}
	})
	flush()
	return out
}

// Destroy tears down the VM: guest processes exit, and the host backing
// VMA is unmapped (host frames return to the host buddy).
func (vm *VM) Destroy() {
	for _, p := range append([]*osim.Process(nil), vm.Guest.Processes()...) {
		p.Exit()
	}
	vm.HostProc.Exit()
}
