package virt

import (
	"testing"

	"repro/internal/mem/addr"
	"repro/internal/osim"
)

func shadowFixture(t *testing.T) (*VM, *osim.Process, *ShadowTable) {
	t.Helper()
	host := newHost(t, 64, osim.CAPolicy{})
	vm := newVM(t, host, 64<<20, osim.CAPolicy{})
	p := vm.NewGuestProcess(0)
	v, err := p.MMap(8 * addr.HugeSize)
	if err != nil {
		t.Fatal(err)
	}
	for off := uint64(0); off < v.Size(); off += addr.PageSize {
		if err := vm.Touch(p, v.Start.Add(off), true); err != nil {
			t.Fatal(err)
		}
	}
	return vm, p, vm.NewShadow(p)
}

func TestShadowMissThenHit(t *testing.T) {
	vm, p, sh := shadowFixture(t)
	// Use the first mapped page.
	gva := addr.VirtAddr(0x10_0000_0000)
	hpa1, level, synced, ok := sh.Walk(gva)
	if !ok || !synced {
		t.Fatalf("first walk = ok:%v synced:%v", ok, synced)
	}
	want, _ := vm.TranslateFull(p, gva)
	if hpa1 != want {
		t.Fatalf("shadow hpa %v != 2D translation %v", hpa1, want)
	}
	// Second walk hits the shadow: no sync, same translation.
	hpa2, _, synced2, ok2 := sh.Walk(gva)
	if !ok2 || synced2 || hpa2 != hpa1 {
		t.Fatalf("second walk = (%v, synced:%v, ok:%v)", hpa2, synced2, ok2)
	}
	if sh.SyncExits != 1 {
		t.Fatalf("SyncExits = %d", sh.SyncExits)
	}
	_ = level
}

func TestShadowComposesHugeLeaves(t *testing.T) {
	_, _, sh := shadowFixture(t)
	// Under CA/CA both dimensions map huge: the shadow installs 2 MiB
	// composite leaves, so one sync covers 512 pages.
	base := addr.VirtAddr(0x10_0000_0000)
	if _, level, _, ok := sh.Walk(base); !ok || level != 1 {
		t.Fatalf("expected huge composite leaf, level=%d", level)
	}
	for off := uint64(addr.PageSize); off < addr.HugeSize; off += addr.PageSize {
		if _, _, synced, ok := sh.Walk(base.Add(off)); !ok || synced {
			t.Fatalf("interior walk at +%d should hit the huge leaf", off)
		}
	}
	if sh.SyncExits != 1 {
		t.Fatalf("SyncExits = %d, want 1 for the whole huge region", sh.SyncExits)
	}
	if sh.Mapped2M() != 1 || sh.Mapped4K() != 0 {
		t.Fatalf("shadow leaves = %d huge / %d 4K", sh.Mapped2M(), sh.Mapped4K())
	}
}

func TestShadowAgreesWithNestedWalkEverywhere(t *testing.T) {
	vm, p, sh := shadowFixture(t)
	for off := uint64(0); off < 8*addr.HugeSize; off += 37 * addr.PageSize {
		gva := addr.VirtAddr(0x10_0000_0000).Add(off)
		hpa, _, _, ok := sh.Walk(gva)
		want, wok := vm.TranslateFull(p, gva)
		if !ok || !wok || hpa != want {
			t.Fatalf("mismatch at +%d: shadow (%v,%v) vs nested (%v,%v)", off, hpa, ok, want, wok)
		}
	}
}

func TestShadowUnbackedGVA(t *testing.T) {
	_, _, sh := shadowFixture(t)
	if _, _, _, ok := sh.Walk(0xdead0000000); ok {
		t.Fatal("walk of unmapped gVA should fail")
	}
}

func TestShadow4KComposite(t *testing.T) {
	// With THP off in the guest, composite leaves are 4 KiB.
	host := newHost(t, 64, osim.CAPolicy{})
	vm := newVM(t, host, 64<<20, osim.CAPolicy{})
	vm.Guest.THPEnabled = false
	p := vm.NewGuestProcess(0)
	v, _ := p.MMap(addr.HugeSize)
	for off := uint64(0); off < v.Size(); off += addr.PageSize {
		if err := vm.Touch(p, v.Start.Add(off), true); err != nil {
			t.Fatal(err)
		}
	}
	sh := vm.NewShadow(p)
	if _, level, _, ok := sh.Walk(v.Start); !ok || level != 0 {
		t.Fatalf("expected 4K composite, level=%d ok=%v", level, ok)
	}
	if sh.Mapped2M() != 0 {
		t.Fatal("no huge composites expected")
	}
}
