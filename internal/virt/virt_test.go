package virt

import (
	"testing"

	"repro/internal/mem/addr"
	"repro/internal/mem/zone"
	"repro/internal/metrics"
	"repro/internal/osim"
)

func newHost(t testing.TB, nblocks uint64, p osim.Placement) *osim.Kernel {
	t.Helper()
	m := zone.NewMachine(zone.Config{ZonePages: []uint64{nblocks * addr.MaxOrderPages}})
	return osim.NewKernel(m, p)
}

func newVM(t testing.TB, host *osim.Kernel, memBytes uint64, guestPolicy osim.Placement) *VM {
	t.Helper()
	vm, err := New(host, Config{MemBytes: memBytes, GuestPolicy: guestPolicy})
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

func TestVMGeometry(t *testing.T) {
	host := newHost(t, 64, osim.DefaultPolicy{})
	vm := newVM(t, host, 32<<20, osim.DefaultPolicy{}) // 32 MiB VM
	if vm.MemPages() != 32<<20/addr.PageSize {
		t.Fatalf("MemPages = %d", vm.MemPages())
	}
	// Guest memory rounding to MAX_ORDER blocks.
	vm2, err := New(host, Config{MemBytes: 5 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if vm2.MemPages()%addr.MaxOrderPages != 0 {
		t.Fatal("guest memory not MAX_ORDER rounded")
	}
	// Zone mismatch rejected.
	if _, err := New(host, Config{MemBytes: 8 << 20, GuestZones: []uint64{addr.MaxOrderPages}}); err == nil {
		t.Fatal("bad zone split accepted")
	}
}

func TestTouchFaultsBothDimensions(t *testing.T) {
	host := newHost(t, 64, osim.DefaultPolicy{})
	vm := newVM(t, host, 64<<20, osim.DefaultPolicy{})
	p := vm.NewGuestProcess(0)
	v, err := p.MMap(4 * addr.HugeSize)
	if err != nil {
		t.Fatal(err)
	}
	hostFaults0 := host.Stats.TotalFaults()
	for off := uint64(0); off < v.Size(); off += addr.PageSize {
		if err := vm.Touch(p, v.Start.Add(off), true); err != nil {
			t.Fatal(err)
		}
	}
	if vm.Guest.Stats.Faults[osim.FaultHuge] != 4 {
		t.Fatalf("guest huge faults = %d", vm.Guest.Stats.Faults[osim.FaultHuge])
	}
	// The host (ignoring the VM-creation VMA) served nested faults.
	if host.Stats.TotalFaults() == hostFaults0 {
		t.Fatal("no nested faults occurred")
	}
	// Full 2D translation resolves and is consistent.
	hpa, ok := vm.TranslateFull(p, v.Start)
	if !ok {
		t.Fatal("2D translation missing")
	}
	hpa2, ok := vm.TranslateFull(p, v.Start.Add(addr.PageSize))
	if !ok {
		t.Fatal("2D translation missing at +4K")
	}
	// Within one guest huge page backed by one host huge page these are
	// consecutive.
	if hpa2 != hpa+addr.PageSize {
		t.Logf("note: non-consecutive backing (%v, %v) — acceptable without CA", hpa, hpa2)
	}
}

func TestWalkRefsStructure(t *testing.T) {
	host := newHost(t, 64, osim.DefaultPolicy{})
	vm := newVM(t, host, 64<<20, osim.DefaultPolicy{})
	p := vm.NewGuestProcess(0)
	v, _ := p.MMap(4 * addr.HugeSize)
	if err := vm.Touch(p, v.Start, true); err != nil {
		t.Fatal(err)
	}
	w := vm.Walk(p, v.Start)
	if !w.OK {
		t.Fatal("walk failed")
	}
	// Guest THP leaf: 3 guest steps. Host THP leaf: 3 host steps.
	// Refs = (3+1)*(3+1)-1 = 15. With any 4K leaf the count rises
	// toward the canonical 24 of 4+4 levels.
	if w.GuestLevel != 1 || w.HostLevel != 1 {
		t.Fatalf("leaf levels = %d/%d, want huge/huge", w.GuestLevel, w.HostLevel)
	}
	if w.Refs != 15 {
		t.Fatalf("refs = %d, want 15", w.Refs)
	}
	// Unmapped walk.
	if w := vm.Walk(p, 0xdeadbeef000); w.OK {
		t.Fatal("walk of unmapped gVA succeeded")
	}
}

func TestWalkMatchesTranslateFull(t *testing.T) {
	host := newHost(t, 64, osim.CAPolicy{})
	vm := newVM(t, host, 64<<20, osim.CAPolicy{})
	p := vm.NewGuestProcess(0)
	v, _ := p.MMap(8 * addr.HugeSize)
	for off := uint64(0); off < v.Size(); off += addr.PageSize {
		if err := vm.Touch(p, v.Start.Add(off), true); err != nil {
			t.Fatal(err)
		}
	}
	for _, off := range []uint64{0, addr.PageSize, addr.HugeSize + 5*addr.PageSize, v.Size() - addr.PageSize} {
		gva := v.Start.Add(off)
		w := vm.Walk(p, gva)
		hpa, ok := vm.TranslateFull(p, gva)
		if !w.OK || !ok || w.HPA != hpa {
			t.Fatalf("walk/translate mismatch at +%d: %v vs %v", off, w.HPA, hpa)
		}
	}
}

func TestCA2DContiguity(t *testing.T) {
	// CA in both dimensions on a fresh host: the whole guest VMA should
	// be one (or very few) 2D mappings.
	host := newHost(t, 128, osim.CAPolicy{})
	vm := newVM(t, host, 128<<20, osim.CAPolicy{})
	p := vm.NewGuestProcess(0)
	v, _ := p.MMap(16 * addr.HugeSize) // 32 MiB
	for off := uint64(0); off < v.Size(); off += addr.PageSize {
		if err := vm.Touch(p, v.Start.Add(off), true); err != nil {
			t.Fatal(err)
		}
	}
	ms := vm.Mappings2D(p)
	if metrics.TotalPages(ms) != v.Pages() {
		t.Fatalf("2D mappings cover %d pages, want %d", metrics.TotalPages(ms), v.Pages())
	}
	if n := metrics.MappingsFor(ms, 0.99); n > 3 {
		t.Fatalf("CA/CA needs %d mappings for 99%%, want <= 3 (%d total)", n, len(ms))
	}
}

func TestDefault2DIsFragmented(t *testing.T) {
	host := newHost(t, 128, osim.DefaultPolicy{})
	vm := newVM(t, host, 128<<20, osim.DefaultPolicy{})
	p := vm.NewGuestProcess(0)
	v, _ := p.MMap(16 * addr.HugeSize)
	for off := uint64(0); off < v.Size(); off += addr.PageSize {
		if err := vm.Touch(p, v.Start.Add(off), true); err != nil {
			t.Fatal(err)
		}
	}
	def := vm.Mappings2D(p)
	// Compare against CA/CA above: default should need many more
	// mappings. (LIFO free lists make guest and host allocation orders
	// diverge.)
	if len(def) < 4 {
		t.Skipf("default produced only %d mappings on this geometry", len(def))
	}
}

func TestMappings2DSkipsUnbackedGPA(t *testing.T) {
	host := newHost(t, 64, osim.DefaultPolicy{})
	vm := newVM(t, host, 64<<20, osim.DefaultPolicy{})
	p := vm.NewGuestProcess(0)
	v, _ := p.MMap(2 * addr.HugeSize)
	// Fault only in the guest dimension (no nested backing).
	if _, err := p.Touch(v.Start, true); err != nil {
		t.Fatal(err)
	}
	ms := vm.Mappings2D(p)
	if len(ms) != 0 {
		t.Fatalf("unbacked gPA produced 2D mappings: %+v", ms)
	}
}

func TestGPAPersistenceAcrossGuestProcesses(t *testing.T) {
	// The 2nd dimension persists as the VM ages: after a guest process
	// exits, its gPA→hPA mappings remain. A second process reusing the
	// freed gPAs takes no new nested faults.
	host := newHost(t, 64, osim.CAPolicy{})
	vm := newVM(t, host, 32<<20, osim.CAPolicy{})
	p1 := vm.NewGuestProcess(0)
	v1, _ := p1.MMap(8 * addr.HugeSize)
	for off := uint64(0); off < v1.Size(); off += addr.PageSize {
		if err := vm.Touch(p1, v1.Start.Add(off), true); err != nil {
			t.Fatal(err)
		}
	}
	hostMapped := vm.HostProc.PT.MappedPages()
	p1.Exit()
	if vm.HostProc.PT.MappedPages() != hostMapped {
		t.Fatal("host mappings dropped on guest process exit")
	}
	hostFaults := host.Stats.TotalFaults()
	p2 := vm.NewGuestProcess(0)
	v2, _ := p2.MMap(8 * addr.HugeSize)
	for off := uint64(0); off < v2.Size(); off += addr.PageSize {
		if err := vm.Touch(p2, v2.Start.Add(off), true); err != nil {
			t.Fatal(err)
		}
	}
	// The guest's next-fit rover starts the second placement just past
	// the first process's (freed) region, so a few fresh gPAs may take
	// nested faults — but the overwhelming majority of the footprint
	// must reuse already-backed guest physical memory.
	newFaults := host.Stats.TotalFaults() - hostFaults
	if newFaults > v2.Pages()/32 {
		t.Fatalf("nested faults re-taken for recycled gPAs: %d new of %d pages",
			newFaults, v2.Pages())
	}
}

func TestDestroyReleasesHostMemory(t *testing.T) {
	host := newHost(t, 64, osim.DefaultPolicy{})
	free0 := host.Machine.FreePages()
	vm := newVM(t, host, 32<<20, osim.DefaultPolicy{})
	p := vm.NewGuestProcess(0)
	v, _ := p.MMap(4 * addr.HugeSize)
	for off := uint64(0); off < v.Size(); off += addr.PageSize {
		if err := vm.Touch(p, v.Start.Add(off), true); err != nil {
			t.Fatal(err)
		}
	}
	vm.Destroy()
	if host.Machine.FreePages() != free0 {
		t.Fatalf("VM teardown leaked: %d != %d", host.Machine.FreePages(), free0)
	}
}

func TestContigBitsPropagateToWalk(t *testing.T) {
	host := newHost(t, 128, osim.CAPolicy{})
	vm := newVM(t, host, 64<<20, osim.CAPolicy{})
	p := vm.NewGuestProcess(0)
	v, _ := p.MMap(32 * addr.HugeSize)
	for off := uint64(0); off < v.Size(); off += addr.PageSize {
		if err := vm.Touch(p, v.Start.Add(off), true); err != nil {
			t.Fatal(err)
		}
	}
	// Deep inside the VMA both dimensions' PTEs should carry the bit.
	w := vm.Walk(p, v.Start.Add(16*addr.HugeSize))
	if !w.OK {
		t.Fatal("walk failed")
	}
	if !w.GuestContig || !w.HostContig {
		t.Fatalf("contig bits = guest:%v host:%v, want both set", w.GuestContig, w.HostContig)
	}
}
