package perfmodel

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestIdealCycles(t *testing.T) {
	if IdealCycles(1000) != 5000 {
		t.Fatalf("IdealCycles = %f", IdealCycles(1000))
	}
}

func TestPagingOverhead(t *testing.T) {
	r := sim.Result{Accesses: 1_000_000, Misses: 10_000, WalkCycles: 810_000}
	// 810k walk cycles over 5M ideal cycles = 16.2%.
	if got := PagingOverhead(r); !approx(got, 0.162, 1e-9) {
		t.Fatalf("overhead = %f", got)
	}
}

func TestSpotOverheadAccounting(t *testing.T) {
	r := sim.Result{
		Accesses:       1_000_000,
		Misses:         10_000,
		AvgWalkCycles:  81,
		SpotCorrect:    9_000,
		SpotMispredict: 500,
		SpotNoPred:     500,
	}
	// correct: free; nopred: 500*81; mispred: 500*(81+20).
	want := (500*81.0 + 500*101.0) / 5_000_000
	if got := SpotOverhead(r); !approx(got, want, 1e-12) {
		t.Fatalf("spot overhead = %f, want %f", got, want)
	}
	// All-correct hides everything.
	r2 := r
	r2.SpotCorrect, r2.SpotMispredict, r2.SpotNoPred = 10_000, 0, 0
	if SpotOverhead(r2) != 0 {
		t.Fatal("all-correct should cost nothing")
	}
	// SpOT with mispredictions costs more than no-predictions alone.
	r3 := r
	r3.SpotMispredict, r3.SpotNoPred = 1000, 0
	r4 := r
	r4.SpotMispredict, r4.SpotNoPred = 0, 1000
	if SpotOverhead(r3) <= SpotOverhead(r4) {
		t.Fatal("mispredicts must cost more than equal no-predictions")
	}
}

func TestRMMAndDSOverheads(t *testing.T) {
	r := sim.Result{Accesses: 1_000_000, AvgWalkCycles: 81, RMMUncovered: 100, DSMisses: 50}
	if got := RMMOverhead(r); !approx(got, 100*81.0/5e6, 1e-12) {
		t.Fatalf("rmm = %f", got)
	}
	if got := DSOverhead(r, 130); !approx(got, 50*130.0/5e6, 1e-12) {
		t.Fatalf("ds = %f", got)
	}
	// Fully covered schemes cost zero.
	r.RMMUncovered, r.DSMisses = 0, 0
	if RMMOverhead(r) != 0 || DSOverhead(r, 130) != 0 {
		t.Fatal("covered schemes should be free")
	}
}

func TestEstimateUSLShape(t *testing.T) {
	// The paper's Table VII geomeans: ~0.25% DTLB misses/instr, walk
	// ~81 cycles -> SpOT USL ~3%; Spectre USL ~16.5% — but crucially
	// SpOT USLs are several times fewer than Spectre USLs.
	r := sim.Result{Accesses: 10_000_000, Misses: 125_000, AvgWalkCycles: 81}
	u := EstimateUSL(r)
	if !approx(u.DTLBMissesPerInstrPct, 0.25, 0.01) {
		t.Fatalf("miss density = %f%%", u.DTLBMissesPerInstrPct)
	}
	if !approx(u.SpectreUSLPct, 23.5, 0.1) { // 0.0587*20*0.2
		t.Fatalf("spectre USL = %f%%", u.SpectreUSLPct)
	}
	if !approx(u.SpOTUSLPct, 0.25*81*0.2, 0.1) {
		t.Fatalf("spot USL = %f%%", u.SpOTUSLPct)
	}
	if u.SpOTUSLPct >= u.SpectreUSLPct {
		t.Fatal("SpOT USLs must be far fewer than Spectre USLs")
	}
}

func TestSoftwareRuntimeNormalization(t *testing.T) {
	fp := uint64(100 << 20)
	base := SoftwareRuntime(fp, 0)
	if base != float64(fp)*AppNsPerByte {
		t.Fatal("base runtime wrong")
	}
	// 3% kernel time -> 1.03x normalized.
	kernelNs := uint64(0.03 * base)
	if got := NormalizedRuntime(fp, kernelNs, 0); !approx(got, 1.03, 1e-6) {
		t.Fatalf("normalized = %f", got)
	}
	// Same kernel time on both sides cancels.
	if got := NormalizedRuntime(fp, 5000, 5000); got != 1 {
		t.Fatalf("equal kernel time should normalize to 1, got %f", got)
	}
}
