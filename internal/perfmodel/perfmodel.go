// Package perfmodel implements the paper's linear performance model
// (Table IV): every configuration's address-translation overhead is the
// cycles it spends (or would spend) in page walks relative to the ideal
// execution time with zero translation overhead, T_ideal = T_THP -
// C_THP. SpOT's overhead charges the full walk for no-predictions and
// walk + flush penalty for mispredictions; vRMM charges walks only for
// misses no range covers (the range-table walk is assumed hidden);
// Direct Segments charges walks only outside the segment.
//
// It also implements the Table VII estimation of unsafe load
// instructions (USLs) under speculative execution, and the Fig. 11
// software-runtime model that converts kernel-side logical time
// (migrations, faults, zeroing) into a normalized execution time.
package perfmodel

import "repro/internal/sim"

// Model constants.
const (
	// IdealCyclesPerAccess converts stream accesses to ideal cycles:
	// one modelled memory access stands for ~5 instructions at IPC≈1
	// (loads are ~20-30% of the instruction mix, paper Table VII).
	IdealCyclesPerAccess = 5.0

	// MispredictPenaltyCycles is the pipeline-flush cost added on top
	// of the walk for a wrong prediction (paper §V: 20 cycles).
	MispredictPenaltyCycles = 20.0

	// CPUGHz converts cycles to nanoseconds (Broadwell 2.2 GHz).
	CPUGHz = 2.2

	// InstrPerAccess is the instruction count one access stands for.
	InstrPerAccess = 5.0

	// BranchResolveCycles is the branch-resolution latency used for the
	// Spectre USL estimate (paper: ~20 cycles).
	BranchResolveCycles = 20.0

	// BranchesPerInstr is the measured branch density (Table VII).
	BranchesPerInstr = 0.0587

	// LoadsPerCycle is the load issue rate used by both USL equations.
	LoadsPerCycle = 0.2

	// AppNsPerByte models application compute time per footprint byte
	// for the Fig. 11 software-overhead normalisation: big-memory runs
	// process each byte many times, so execution time scales with
	// footprint at ~8 ns/byte (≈ minutes at the paper's scale).
	AppNsPerByte = 8.0
)

// IdealCycles returns T_ideal for a stream of n accesses.
func IdealCycles(n uint64) float64 { return float64(n) * IdealCyclesPerAccess }

// PagingOverhead is O = C_walks / T_ideal for a baseline run (native
// 4K/THP or virtualized 4K/THP).
func PagingOverhead(r sim.Result) float64 {
	return r.WalkCycles / IdealCycles(r.Accesses)
}

// BackendOverhead is the cost-model hook for the pluggable translation
// backends (translation.Backend): each backend accumulates its own
// cycle currency in Result.WalkCycles — radix walks for paged, probe
// chains plus fill walks for hashed, uncovered fallbacks for rmm/ds —
// so overhead is uniformly C_backend / T_ideal. For the default paged
// backend this coincides with PagingOverhead.
func BackendOverhead(r sim.Result) float64 {
	return r.WalkCycles / IdealCycles(r.Accesses)
}

// SpotOverhead is O_SpOT: no-predictions expose the whole walk,
// mispredictions add the flush penalty on top, correct predictions are
// free (Table IV).
func SpotOverhead(r sim.Result) float64 {
	cycles := float64(r.SpotNoPred)*r.AvgWalkCycles +
		float64(r.SpotMispredict)*(r.AvgWalkCycles+MispredictPenaltyCycles)
	return cycles / IdealCycles(r.Accesses)
}

// RMMOverhead is O_vRMM: only misses with no covering range pay a walk.
func RMMOverhead(r sim.Result) float64 {
	return float64(r.RMMUncovered) * r.AvgWalkCycles / IdealCycles(r.Accesses)
}

// DSOverhead is O_DS: misses outside the dual direct segment pay the
// nested 4K walk cost (avg4K, from a v4K measurement or the walker's
// default).
func DSOverhead(r sim.Result, avg4K float64) float64 {
	return float64(r.DSMisses) * avg4K / IdealCycles(r.Accesses)
}

// USLEstimate is the Table VII computation.
type USLEstimate struct {
	BranchesPerInstrPct   float64
	DTLBMissesPerInstrPct float64
	SpectreUSLPct         float64 // unsafe loads per instruction, %
	SpOTUSLPct            float64
}

// EstimateUSL computes the unsafe-load estimates from a measured run:
//
//	Spectre USL = #branches × branch-resolution cycles × loads/cycle
//	SpOT USL    = #DTLB misses × page-walk cycles × loads/cycle
//
// both normalised per instruction.
func EstimateUSL(r sim.Result) USLEstimate {
	instr := float64(r.Accesses) * InstrPerAccess
	missesPerInstr := float64(r.Misses) / instr
	return USLEstimate{
		BranchesPerInstrPct:   BranchesPerInstr * 100,
		DTLBMissesPerInstrPct: missesPerInstr * 100,
		SpectreUSLPct:         BranchesPerInstr * BranchResolveCycles * LoadsPerCycle * 100,
		SpOTUSLPct:            missesPerInstr * r.AvgWalkCycles * LoadsPerCycle * 100,
	}
}

// SoftwareRuntime converts a workload's footprint plus the kernel-side
// logical time it consumed (fault service, zeroing, migrations,
// shootdowns) into a modelled wall-clock runtime in nanoseconds
// (Fig. 11): runtime = app compute + kernel time.
func SoftwareRuntime(footprintBytes, kernelNs uint64) float64 {
	return float64(footprintBytes)*AppNsPerByte + float64(kernelNs)
}

// NormalizedRuntime returns runtime(policy)/runtime(baseline).
func NormalizedRuntime(footprintBytes, policyKernelNs, baselineKernelNs uint64) float64 {
	return SoftwareRuntime(footprintBytes, policyKernelNs) /
		SoftwareRuntime(footprintBytes, baselineKernelNs)
}
