package aging_test

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"repro/internal/aging"
	"repro/internal/mem/zone"
	"repro/internal/osim"
	"repro/internal/osim/daemon"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// shardFactory mirrors experiments.shardKernelFactory for the test
// policies: shard kernels share the parent's placement policy over
// their zone view, with private daemon instances.
func shardFactory(policy string) func(view *zone.Machine, shard int) (*osim.Kernel, []workloads.Daemon) {
	return func(view *zone.Machine, shard int) (*osim.Kernel, []workloads.Daemon) {
		var k *osim.Kernel
		var ds []workloads.Daemon
		switch policy {
		case "ingens":
			k = osim.NewKernel(view, osim.DefaultPolicy{})
			ds = append(ds, daemon.NewIngens(k))
		case "ca":
			k = osim.NewKernel(view, osim.CAPolicy{})
		case "eager":
			k = osim.NewKernel(view, osim.EagerPolicy{})
		case "ranger":
			k = osim.NewKernel(view, osim.DefaultPolicy{})
			ds = append(ds, daemon.NewRanger(k))
		default:
			k = osim.NewKernel(view, osim.DefaultPolicy{})
		}
		return k, ds
	}
}

// shardedConfig is smallConfig with two shards (one per test zone).
func shardedConfig(policy string, shardJobs int) aging.Config {
	cfg := smallConfig()
	cfg.Shards = 2
	cfg.ShardJobs = shardJobs
	cfg.NewShardKernel = shardFactory(policy)
	return cfg
}

// renderSharded runs one sharded campaign and returns its CSV.
func renderSharded(t *testing.T, policy string, cfg aging.Config) string {
	t.Helper()
	k, ds := newKernel(t, policy)
	tr, err := aging.New(k, ds, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestShardedCampaignAuditCleanPerPolicy is the shard-stepping stress
// gate: every policy churns two concurrently stepped shards with a
// multi-kernel whole-machine audit at every barrier snapshot. Under
// -race this also proves the parallel phase shares no mutable state.
func TestShardedCampaignAuditCleanPerPolicy(t *testing.T) {
	for _, policy := range []string{"thp", "ingens", "ca", "eager", "ranger"} {
		t.Run(policy, func(t *testing.T) {
			cfg := shardedConfig(policy, runtime.GOMAXPROCS(0))
			csv := renderSharded(t, policy, cfg)
			if strings.Count(csv, "\n") != 60/5+1 {
				t.Fatalf("unexpected CSV shape:\n%s", csv)
			}
		})
	}
}

// TestShardedCampaignShardJobsInvariance pins the tentpole contract:
// a sharded trajectory is a pure function of (Seed, Shards) —
// byte-identical whether shards step serially, two at a time, or on
// every core.
func TestShardedCampaignShardJobsInvariance(t *testing.T) {
	jobsGrid := []int{1, 2, runtime.GOMAXPROCS(0)}
	var want string
	for _, jobs := range jobsGrid {
		got := renderSharded(t, "ranger", shardedConfig("ranger", jobs))
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("trajectory depends on ShardJobs=%d:\n--- jobs=1\n%s\n--- jobs=%d\n%s", jobs, want, jobs, got)
		}
	}
}

// TestShardedCampaignSeedsDiffer guards the per-shard rng derivation:
// different seeds must steer the sharded streams differently.
func TestShardedCampaignSeedsDiffer(t *testing.T) {
	render := func(seed int64) string {
		cfg := shardedConfig("thp", 1)
		cfg.Seed = seed
		return renderSharded(t, "thp", cfg)
	}
	if render(1) == render(2) {
		t.Fatal("seeds 1 and 2 produced identical sharded trajectories")
	}
}

// TestShardedDiffersFromSingleStream documents that Shards > 1 is a
// different (still deterministic) campaign, not a re-ordering of the
// single-stream one: the streams, daemon schedules, and OOM handling
// are per shard.
func TestShardedDiffersFromSingleStream(t *testing.T) {
	single := func() string {
		k, ds := newKernel(t, "thp")
		tr, err := aging.New(k, ds, smallConfig()).Run()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if single() == renderSharded(t, "thp", shardedConfig("thp", 1)) {
		t.Fatal("sharded and single-stream campaigns coincided — sharding is not being exercised")
	}
}

// TestShardedCampaignClampsShards pins that asking for more shards
// than zones degrades to one shard per zone rather than leaving
// zoneless shards spinning.
func TestShardedCampaignClampsShards(t *testing.T) {
	cfg := shardedConfig("thp", 1)
	cfg.Shards = 16 // the test machine has two zones
	a := renderSharded(t, "thp", cfg)
	b := renderSharded(t, "thp", shardedConfig("thp", 1))
	if a != b {
		t.Fatalf("Shards=16 on a two-zone machine differs from Shards=2:\n--- 16\n%s\n--- 2\n%s", a, b)
	}
}

// TestShardedCampaignTracesShardEvents checks the shard observability
// contract: epoch spans per shard, barrier spans per step, and the
// campaign's gauges all flow through an attached tracer.
func TestShardedCampaignTracesShardEvents(t *testing.T) {
	tr := trace.New()
	k, ds := newKernel(t, "thp")
	k.SetTracer(tr)
	cfg := shardedConfig("thp", 2)
	cfg.NewShardKernel = func(view *zone.Machine, shard int) (*osim.Kernel, []workloads.Daemon) {
		sk, sds := shardFactory("thp")(view, shard)
		sk.SetTracer(tr)
		return sk, sds
	}
	if _, err := aging.New(k, ds, cfg).Run(); err != nil {
		t.Fatal(err)
	}
	if n := tr.Count(trace.EvShardEpoch); n != 2*60 {
		t.Fatalf("EvShardEpoch count = %d, want %d (2 shards x 60 steps)", n, 2*60)
	}
	if n := tr.Count(trace.EvShardBarrier); n != 60 {
		t.Fatalf("EvShardBarrier count = %d, want 60 (one per step)", n)
	}
	shards := map[uint64]bool{}
	for _, e := range tr.Events() {
		if e.Kind == trace.EvShardEpoch {
			shards[e.A] = true
		}
	}
	if !shards[0] || !shards[1] || len(shards) != 2 {
		t.Fatalf("epoch spans name shards %v, want exactly {0, 1}", shards)
	}
}

// TestShardedCampaignDrainsProcesses pins the teardown contract: after
// the final audit no process survives on any shard kernel.
func TestShardedCampaignDrainsProcesses(t *testing.T) {
	k, ds := newKernel(t, "ca")
	var shardKernels []*osim.Kernel
	cfg := shardedConfig("ca", 2)
	cfg.NewShardKernel = func(view *zone.Machine, shard int) (*osim.Kernel, []workloads.Daemon) {
		sk, sds := shardFactory("ca")(view, shard)
		shardKernels = append(shardKernels, sk)
		return sk, sds
	}
	if _, err := aging.New(k, ds, cfg).Run(); err != nil {
		t.Fatal(err)
	}
	for i, sk := range shardKernels {
		if n := len(sk.Processes()); n != 0 {
			t.Fatalf("shard %d: %d processes survived the drain", i, n)
		}
	}
}
