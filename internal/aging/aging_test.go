package aging_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/aging"
	"repro/internal/mem/addr"
	"repro/internal/mem/zone"
	"repro/internal/osim"
	"repro/internal/osim/daemon"
	"repro/internal/workloads"
)

// newKernel builds a small two-zone machine under the named policy.
func newKernel(t *testing.T, policy string) (*osim.Kernel, []workloads.Daemon) {
	t.Helper()
	m := zone.NewMachine(zone.Config{
		ZonePages:      []uint64{48 * addr.MaxOrderPages, 48 * addr.MaxOrderPages},
		SortedMaxOrder: policy == "ca",
	})
	var k *osim.Kernel
	var ds []workloads.Daemon
	switch policy {
	case "thp":
		k = osim.NewKernel(m, osim.DefaultPolicy{})
	case "ingens":
		k = osim.NewKernel(m, osim.DefaultPolicy{})
		ds = append(ds, daemon.NewIngens(k))
	case "ca":
		k = osim.NewKernel(m, osim.CAPolicy{})
	case "eager":
		k = osim.NewKernel(m, osim.EagerPolicy{})
	case "ranger":
		k = osim.NewKernel(m, osim.DefaultPolicy{})
		ds = append(ds, daemon.NewRanger(k))
	default:
		t.Fatalf("unknown policy %q", policy)
	}
	return k, ds
}

// smallConfig keeps campaigns quick while auditing at every snapshot.
func smallConfig() aging.Config {
	return aging.Config{
		Seed:              1,
		Steps:             60,
		SnapshotEvery:     5,
		AuditEvery:        1,
		MaxTenants:        6,
		MinFootprintPages: 128,
		MaxFootprintPages: 4096,
		FilePages:         1024,
	}
}

// TestCampaignAuditCleanPerPolicy churns every policy through a full
// campaign with a whole-machine audit at every snapshot: the lifecycle
// leaks this harness was built to flush out all surface here as audit
// or invariant failures.
func TestCampaignAuditCleanPerPolicy(t *testing.T) {
	for _, policy := range []string{"thp", "ingens", "ca", "eager", "ranger"} {
		t.Run(policy, func(t *testing.T) {
			k, ds := newKernel(t, policy)
			tr, err := aging.New(k, ds, smallConfig()).Run()
			if err != nil {
				t.Fatal(err)
			}
			if len(tr.Snapshots) == 0 {
				t.Fatal("campaign recorded no snapshots")
			}
			final := tr.Final()
			if final.Step != 60 {
				t.Fatalf("final snapshot at step %d, want 60", final.Step)
			}
			if final.Faults == 0 {
				t.Fatal("campaign took no faults — nothing was exercised")
			}
			if tr.PeakRSS() == 0 {
				t.Fatal("no tenant RSS ever recorded")
			}
			// The drain after the last step exits every tenant; the
			// recorded snapshots are pre-drain, so RSS is whatever the
			// surviving tenants held.
			if len(k.Processes()) != 0 {
				t.Fatalf("%d processes survived the drain", len(k.Processes()))
			}
		})
	}
}

// TestCampaignDeterministic pins that a campaign is a pure function of
// its seed: two independent runs produce byte-identical trajectory
// CSVs, the property the figAging drivers and golden tables rely on.
func TestCampaignDeterministic(t *testing.T) {
	render := func() string {
		k, ds := newKernel(t, "ranger")
		tr, err := aging.New(k, ds, smallConfig()).Run()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("same seed, different trajectories:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
	if strings.Count(a, "\n") != 60/5+1 {
		t.Fatalf("unexpected CSV shape:\n%s", a)
	}
}

// TestCampaignSeedsDiffer guards against the rng being ignored: two
// different seeds must not produce the same trajectory.
func TestCampaignSeedsDiffer(t *testing.T) {
	render := func(seed int64) string {
		k, ds := newKernel(t, "thp")
		cfg := smallConfig()
		cfg.Seed = seed
		tr, err := aging.New(k, ds, cfg).Run()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if render(1) == render(2) {
		t.Fatal("seeds 1 and 2 produced identical trajectories")
	}
}
