// Package aging runs long logical-time fragmentation-aging campaigns:
// tenants arrive with Zipf-skewed footprints, touch their memory, and
// exit, while page-cache fill/evict pressure and periodic daemon
// epochs churn the physical free pool. A campaign records how external
// fragmentation evolves — FragScore-style permille plus Gorman's
// unusable free space index per order — as a deterministic trajectory
// of snapshots, and periodically cross-checks the whole machine with
// internal/check audits.
//
// The harness exists because the steady-state experiment drivers never
// exercise the full process lifecycle: the Ranger plan leak and the
// Ingens fork/promote CoW clobber (see the churn regression tests in
// internal/osim/daemon) both only manifest once tenants exit and fork
// under a long-running daemon. Campaigns are deterministic per seed:
// the same Config produces a byte-identical trajectory CSV at any
// parallelism.
package aging

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"strconv"
	"sync"

	"repro/internal/check"
	"repro/internal/mem/addr"
	"repro/internal/mem/zone"
	"repro/internal/metrics"
	"repro/internal/osim"
	"repro/internal/osim/vma"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Config parameterises one aging campaign. Zero values select the
// defaults noted on each field.
type Config struct {
	// Seed drives every random decision of the campaign.
	Seed int64
	// Steps is the churn-step horizon (default 200).
	Steps int
	// SnapshotEvery records a trajectory snapshot every N steps
	// (default 10).
	SnapshotEvery int
	// AuditEvery runs a whole-machine check.Audit every N snapshots
	// (default 4; 0 keeps the default — use -1 to disable mid-run
	// audits). A final audit always runs at campaign end.
	AuditEvery int
	// MaxTenants caps the concurrently live tenant population
	// (default 8).
	MaxTenants int
	// MinFootprintPages / MaxFootprintPages bound tenant footprints;
	// draws are Min + Zipf(Max-Min), skewing small (defaults 256 and
	// 16384 pages: 1 MiB to 64 MiB).
	MinFootprintPages uint64
	MaxFootprintPages uint64
	// ZipfS is the Zipf skew exponent (must be > 1; default 1.4).
	ZipfS float64
	// FilePages sizes each dataset file read through the page cache
	// (default 2048 pages = 8 MiB).
	FilePages uint64
	// CacheChurnEvery reads a fresh file every N steps (default 7;
	// -1 disables cache churn).
	CacheChurnEvery int
	// ReclaimFreeFrac is the free-memory floor handed to the page
	// cache's ReclaimUnder after cache churn (default 0.1).
	ReclaimFreeFrac float64
	// SettleEpochs is the number of daemon epochs ticked after every
	// churn step (default 2).
	SettleEpochs int
	// NoRangeFault forwards to Env.NoRangeFault (per-page population).
	NoRangeFault bool
	// Pinned are frame extents the audits must treat as intentionally
	// allocated outside any process (boot reservations).
	Pinned []check.Extent

	// Shards splits the campaign into independently stepped tenant
	// streams (default 1: the historical single-stream campaign,
	// byte-identical to earlier releases). With N > 1 the machine's
	// zones are dealt round-robin to N shards; each shard owns its
	// zones outright through a zone view and steps with its own
	// kernel, daemon set, RNG stream, and logical clock, so shards
	// can run concurrently without sharing any mutable state. An
	// explicit epoch barrier merges the cross-shard effects —
	// OOM-driven reclaim of the parent's page cache, cache churn,
	// snapshots, and whole-machine audits — in shard-index order.
	// Shards is clamped to the zone count.
	Shards int
	// ShardJobs bounds the workers stepping shards concurrently when
	// Shards > 1 (<=0 selects GOMAXPROCS; 1 steps shards serially).
	// Trajectories are deterministic in (Seed, Shards) and
	// byte-identical at every ShardJobs value; only wall-clock moves.
	ShardJobs int
	// NewShardKernel builds one shard's kernel when Shards > 1: given
	// the shard's zone view and index it returns the kernel (policy
	// attached, no boot reservations — the parent kernel owns those)
	// and the shard's private daemon set. Required when Shards > 1;
	// experiments.RunAgingCampaign supplies the standard construction.
	NewShardKernel func(view *zone.Machine, shard int) (*osim.Kernel, []workloads.Daemon)
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Steps == 0 {
		c.Steps = 200
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 10
	}
	if c.AuditEvery == 0 {
		c.AuditEvery = 4
	}
	if c.MaxTenants == 0 {
		c.MaxTenants = 8
	}
	if c.MinFootprintPages == 0 {
		c.MinFootprintPages = 256
	}
	if c.MaxFootprintPages == 0 {
		c.MaxFootprintPages = 16384
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.4
	}
	if c.FilePages == 0 {
		c.FilePages = 2048
	}
	if c.CacheChurnEvery == 0 {
		c.CacheChurnEvery = 7
	}
	if c.ReclaimFreeFrac == 0 {
		c.ReclaimFreeFrac = 0.1
	}
	if c.SettleEpochs == 0 {
		c.SettleEpochs = 2
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	return c
}

// Snapshot is one point of a campaign trajectory.
type Snapshot struct {
	Step         int     // churn step the snapshot was taken after
	ClockNs      uint64  // kernel logical clock
	Tenants      int     // live tenant count
	RSSPages     uint64  // summed process RSS
	CachePages   uint64  // resident page-cache frames
	FreePages    uint64  // machine-wide free frames
	FragPermille uint64  // permille of free memory below huge blocks
	UFI2M        float64 // Gorman unusable free index at HugeOrder
	UFIMax       float64 // Gorman unusable free index at MaxOrder
	Faults       uint64  // cumulative fault count
}

// Trajectory is a campaign's recorded snapshot series.
type Trajectory struct {
	Policy    string
	Snapshots []Snapshot
}

// WriteCSV renders the trajectory as a stable CSV table.
func (tr *Trajectory) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w,
		"step,clock_ns,tenants,rss_pages,cache_pages,free_pages,frag_permille,ufi_2m,ufi_max,faults\n"); err != nil {
		return err
	}
	for _, s := range tr.Snapshots {
		line := fmt.Sprintf("%d,%d,%d,%d,%d,%d,%d,%s,%s,%d\n",
			s.Step, s.ClockNs, s.Tenants, s.RSSPages, s.CachePages,
			s.FreePages, s.FragPermille,
			strconv.FormatFloat(s.UFI2M, 'f', 4, 64),
			strconv.FormatFloat(s.UFIMax, 'f', 4, 64),
			s.Faults)
		if _, err := io.WriteString(w, line); err != nil {
			return err
		}
	}
	return nil
}

// Final returns the last snapshot (zero value when none recorded).
func (tr *Trajectory) Final() Snapshot {
	if len(tr.Snapshots) == 0 {
		return Snapshot{}
	}
	return tr.Snapshots[len(tr.Snapshots)-1]
}

// PeakRSS returns the largest RSS seen across the trajectory.
func (tr *Trajectory) PeakRSS() uint64 {
	var peak uint64
	for _, s := range tr.Snapshots {
		if s.RSSPages > peak {
			peak = s.RSSPages
		}
	}
	return peak
}

// tenant is one live simulated process with its populated footprint.
type tenant struct {
	env   *workloads.Env
	vma   *vma.VMA
	pages uint64 // footprint in base pages
}

// Campaign drives one aging run over a kernel and its daemons.
type Campaign struct {
	k    *osim.Kernel
	ds   []workloads.Daemon
	cfg  Config
	rng  *rand.Rand
	zipf *rand.Zipf

	// auditor is the campaign's reusable audit arena: one flat-array
	// Auditor held for the whole run, so the periodic whole-machine
	// audits reuse their PFN-indexed scratch across snapshots instead
	// of rebuilding hash maps at every audit.
	auditor *check.Auditor

	tenants  []*tenant
	arrivals int // total tenants ever admitted (round-robins zones)

	// shards is non-empty when cfg.Shards > 1: the campaign steps the
	// shards (concurrently up to cfg.ShardJobs) and merges their
	// effects at epoch barriers; the parent kernel k then serves only
	// the shared page cache and the machine-wide measurements.
	shards []*shard

	gaugeIDs struct {
		tenants, rss, cache, free, frag, ufi2m int
	}
}

// shard is one independently stepped tenant stream owning a zone
// subset. Everything a shard touches during its parallel step — its
// kernel, its view's zones, its rng/zipf stream, its tenants — is
// private to it; cross-shard effects are deferred to the barrier.
type shard struct {
	idx  int
	k    *osim.Kernel
	ds   []workloads.Daemon
	rng  *rand.Rand
	zipf *rand.Zipf

	tenants  []*tenant
	arrivals int // round-robins the shard's own zones

	// pending are arrivals that hit OOM during the parallel phase; the
	// barrier retries them after squeezing the shared page cache.
	pending []pendingArrival
	// wantReclaim marks a touch-path OOM whose cache reclaim is
	// deferred to the barrier.
	wantReclaim bool
	// err is the shard's step failure, reported at the barrier in
	// shard-index order so failures are deterministic.
	err error
}

// pendingArrival is a populated-as-far-as-it-got tenant admission
// parked for the barrier's global-reclaim retry. vma is nil when the
// OOM hit inside MMap itself (eager placement populates there, and a
// failed mmap tears its partial backing down): the barrier restarts
// the admission from the mmap.
type pendingArrival struct {
	env   *workloads.Env
	vma   *vma.VMA
	pages uint64
}

// New builds a campaign over an existing kernel and daemon set. The
// kernel's policy and daemons define the anti-fragmentation regime
// under test; the campaign only churns tenants and the page cache.
func New(k *osim.Kernel, ds []workloads.Daemon, cfg Config) *Campaign {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	span := cfg.MaxFootprintPages - cfg.MinFootprintPages
	c := &Campaign{
		k:       k,
		ds:      ds,
		cfg:     cfg,
		rng:     rng,
		zipf:    rand.NewZipf(rng, cfg.ZipfS, 1, span),
		auditor: check.NewAuditor(k.Machine),
	}
	t := k.Tracer
	c.gaugeIDs.tenants = t.Gauge("aging.tenants")
	c.gaugeIDs.rss = t.Gauge("aging.rss_pages")
	c.gaugeIDs.cache = t.Gauge("aging.cache_pages")
	c.gaugeIDs.free = t.Gauge("aging.free_pages")
	c.gaugeIDs.frag = t.Gauge("aging.frag_permille")
	c.gaugeIDs.ufi2m = t.Gauge("aging.ufi2m_permille")

	if shards := c.cfg.Shards; shards > 1 {
		if shards > len(k.Machine.Zones) {
			shards = len(k.Machine.Zones)
			c.cfg.Shards = shards
		}
	}
	if c.cfg.Shards > 1 {
		if cfg.NewShardKernel == nil {
			panic("aging: Config.Shards > 1 requires NewShardKernel")
		}
		for s := 0; s < c.cfg.Shards; s++ {
			var owned []int
			for z := s; z < len(k.Machine.Zones); z += c.cfg.Shards {
				owned = append(owned, z)
			}
			sk, sds := cfg.NewShardKernel(k.Machine.View(owned...), s)
			// Decorrelate the shard streams from each other and from
			// the parent's cache-churn stream with a fixed odd-multiplier
			// seed derivation (deterministic in Seed and shard index).
			srng := rand.New(rand.NewSource(cfg.Seed ^ int64(uint64(s+1)*0x9E3779B97F4A7C15)))
			c.shards = append(c.shards, &shard{
				idx:  s,
				k:    sk,
				ds:   sds,
				rng:  srng,
				zipf: rand.NewZipf(srng, cfg.ZipfS, 1, span),
			})
		}
	}
	return c
}

// Run executes the campaign and returns its trajectory. A non-nil
// error means a whole-machine audit failed (the trajectory up to the
// failing snapshot is returned alongside it).
func (c *Campaign) Run() (*Trajectory, error) {
	if len(c.shards) > 0 {
		return c.runSharded()
	}
	tr := &Trajectory{Policy: c.k.Policy.Name()}
	sinceSnap, snaps := 0, 0
	for step := 1; step <= c.cfg.Steps; step++ {
		if err := c.churnStep(); err != nil {
			return tr, fmt.Errorf("aging: step %d: %w", step, err)
		}
		if c.cfg.CacheChurnEvery > 0 && step%c.cfg.CacheChurnEvery == 0 {
			if err := c.cacheChurn(); err != nil {
				return tr, fmt.Errorf("aging: step %d cache churn: %w", step, err)
			}
		}
		workloads.SettleDaemons(c.k, c.ds, c.cfg.SettleEpochs)

		sinceSnap++
		if sinceSnap < c.cfg.SnapshotEvery && step != c.cfg.Steps {
			continue
		}
		sinceSnap = 0
		snaps++
		tr.Snapshots = append(tr.Snapshots, c.snapshot(step))
		if c.cfg.AuditEvery > 0 && snaps%c.cfg.AuditEvery == 0 {
			if err := c.auditor.Audit(c.k, c.cfg.Pinned); err != nil {
				return tr, fmt.Errorf("aging: audit after step %d: %w", step, err)
			}
		}
	}
	// Drain the tenant population so the final audit also covers the
	// teardown path (where the lifecycle bugs lived).
	for len(c.tenants) > 0 {
		c.exitTenant(len(c.tenants) - 1)
	}
	workloads.SettleDaemons(c.k, c.ds, c.cfg.SettleEpochs)
	if err := c.auditor.Audit(c.k, c.cfg.Pinned); err != nil {
		return tr, fmt.Errorf("aging: final audit: %w", err)
	}
	return tr, nil
}

// ChurnAction is one tenant lifecycle action drawn from the campaign's
// fixed churn mix.
type ChurnAction uint8

const (
	// ChurnArrive admits a new tenant.
	ChurnArrive ChurnAction = iota
	// ChurnTouch re-touches an existing tenant's footprint.
	ChurnTouch
	// ChurnExit tears a tenant down.
	ChurnExit
)

// ChurnRoll draws one lifecycle action from the fixed deterministic mix
// (arrive 30 %, touch 50 %, exit 20 %) adjusted at the population
// bounds: an empty population always arrives, a full one never does,
// and the last live tenant never exits. It consumes exactly one rng
// draw, so callers can interleave it with their own parameter draws and
// stay deterministic. The campaigns' churnStep/shardChurn draw from it,
// and tracein.Synth reuses it so synthesized serving traces mirror the
// aging campaigns' arrival/exit dynamics.
func ChurnRoll(rng *rand.Rand, live, maxTenants int) ChurnAction {
	roll := rng.Intn(10)
	switch {
	case live == 0 || (roll < 3 && live < maxTenants):
		return ChurnArrive
	case roll < 8 || live == 1:
		return ChurnTouch
	default:
		return ChurnExit
	}
}

// churnStep performs one tenant lifecycle action, chosen from the
// ChurnRoll mix.
func (c *Campaign) churnStep() error {
	switch ChurnRoll(c.rng, len(c.tenants), c.cfg.MaxTenants) {
	case ChurnArrive:
		return c.arrive()
	case ChurnTouch:
		return c.touch()
	default:
		c.exitTenant(c.rng.Intn(len(c.tenants)))
		return nil
	}
}

// arrive admits one tenant with a Zipf-skewed footprint and populates
// it. Under memory pressure the page cache is squeezed first; a tenant
// that still cannot fit is torn down again (the simulated OOM kill),
// which is itself lifecycle churn worth exercising.
func (c *Campaign) arrive() error {
	pages := c.cfg.MinFootprintPages + c.zipf.Uint64()
	zone := c.arrivals % len(c.k.Machine.Zones)
	c.arrivals++
	env := workloads.NewNativeEnv(c.k, zone)
	env.Daemons = c.ds
	env.NoRangeFault = c.cfg.NoRangeFault
	v, err := env.MMap(addr.PagesToBytes(pages))
	if err != nil {
		return err
	}
	err = env.Populate(v)
	if errors.Is(err, osim.ErrOOM) {
		c.k.Cache.ReclaimUnder(c.cfg.ReclaimFreeFrac)
		err = env.Populate(v)
	}
	if errors.Is(err, osim.ErrOOM) {
		env.Exit()
		return nil
	}
	if err != nil {
		return err
	}
	c.tenants = append(c.tenants, &tenant{env: env, vma: v, pages: pages})
	return nil
}

// touch revisits a random contiguous chunk of a random tenant's
// footprint, re-dirtying it (and faulting any pages an eager policy
// left unmapped after migrations).
func (c *Campaign) touch() error {
	t := c.tenants[c.rng.Intn(len(c.tenants))]
	v := t.vma
	chunk := t.pages / 4
	if chunk == 0 {
		chunk = t.pages
	}
	start := uint64(0)
	if t.pages > chunk {
		start = uint64(c.rng.Int63n(int64(t.pages - chunk)))
	}
	err := t.env.PopulateRange(v, v.Start.Add(addr.PagesToBytes(start)), addr.PagesToBytes(chunk))
	if errors.Is(err, osim.ErrOOM) {
		// Pressure: squeeze the cache and move on; the next touch
		// retries naturally.
		c.k.Cache.ReclaimUnder(c.cfg.ReclaimFreeFrac)
		return nil
	}
	return err
}

// exitTenant tears down tenant i.
func (c *Campaign) exitTenant(i int) {
	c.tenants[i].env.Exit()
	c.tenants = append(c.tenants[:i], c.tenants[i+1:]...)
}

// cacheChurn reads a fresh dataset file through the page cache and
// applies eviction pressure, alternating DropOldest with the free-frac
// reclaim sweep.
func (c *Campaign) cacheChurn() error {
	f := c.k.Cache.CreateFile(addr.PagesToBytes(c.cfg.FilePages))
	if err := c.k.Cache.Read(f, 0, f.Bytes); err != nil && !errors.Is(err, osim.ErrOOM) {
		return err
	}
	if c.rng.Intn(2) == 0 {
		c.k.Cache.DropOldest()
	}
	c.k.Cache.ReclaimUnder(c.cfg.ReclaimFreeFrac)
	return nil
}

// snapshot measures the machine and records/emits one trajectory point.
func (c *Campaign) snapshot(step int) Snapshot {
	var rss uint64
	for _, p := range c.k.Processes() {
		rss += p.RSSPages
	}
	return c.emitSnapshot(Snapshot{
		Step:     step,
		ClockNs:  c.k.Clock,
		Tenants:  len(c.tenants),
		RSSPages: rss,
		Faults:   c.k.Stats.TotalFaults(),
	})
}

// emitSnapshot fills the machine-wide fields of a partially measured
// snapshot (the caller provides the per-stream ones), refreshes the
// campaign gauges, and emits the snapshot event plus a counter sample.
func (c *Campaign) emitSnapshot(s Snapshot) Snapshot {
	// Sum the buddies' per-order counters instead of walking every free
	// block: snapshots are on the campaign hot path, and the counter read
	// is O(orders) where the visitor was O(free blocks).
	var hist [addr.MaxOrder + 1]uint64
	for _, z := range c.k.Machine.Zones {
		oc := z.Buddy.OrderCounts()
		for o, n := range oc {
			hist[o] += n
		}
	}
	ufi2m := metrics.UnusableFreeIndex(hist, addr.HugeOrder)
	s.CachePages = c.k.Cache.ResidentPages
	s.FreePages = c.k.Machine.FreePages()
	s.FragPermille = uint64(ufi2m*1000 + 0.5)
	s.UFI2M = ufi2m
	s.UFIMax = metrics.UnusableFreeIndex(hist, addr.MaxOrder)

	t := c.k.Tracer
	t.SetGauge(c.gaugeIDs.tenants, uint64(s.Tenants))
	t.SetGauge(c.gaugeIDs.rss, s.RSSPages)
	t.SetGauge(c.gaugeIDs.cache, s.CachePages)
	t.SetGauge(c.gaugeIDs.free, s.FreePages)
	t.SetGauge(c.gaugeIDs.frag, s.FragPermille)
	t.SetGauge(c.gaugeIDs.ufi2m, uint64(s.UFI2M*1000+0.5))
	t.Emit(trace.EvAgingSnapshot, uint64(s.Step), s.RSSPages, s.FragPermille)
	c.k.Machine.TraceDepths()
	t.Sample()
	return s
}

// --- sharded campaign ---
//
// With cfg.Shards > 1 each epoch has two phases. The parallel phase
// steps every shard once — churn, then the shard's private daemon
// settle — touching only shard-owned state (its kernel and clock, its
// view's zones and frame records, its rng/zipf stream, its tenants),
// which makes the phase race-free at any ShardJobs and its outcome
// independent of worker interleaving. The serial barrier then merges
// the cross-shard effects in shard-index order: deferred OOM handling
// against the parent's page cache, periodic cache churn on the parent
// kernel (which may allocate from any zone — safe, nothing else runs),
// snapshots over the union machine, and multi-kernel audits.

// runSharded is Run for Shards > 1.
func (c *Campaign) runSharded() (*Trajectory, error) {
	tr := &Trajectory{Policy: c.k.Policy.Name()}
	sinceSnap, snaps := 0, 0
	for step := 1; step <= c.cfg.Steps; step++ {
		c.stepShards(step)
		if err := c.barrier(step); err != nil {
			return tr, err
		}

		sinceSnap++
		if sinceSnap < c.cfg.SnapshotEvery && step != c.cfg.Steps {
			continue
		}
		sinceSnap = 0
		snaps++
		tr.Snapshots = append(tr.Snapshots, c.snapshotSharded(step))
		if c.cfg.AuditEvery > 0 && snaps%c.cfg.AuditEvery == 0 {
			if err := c.auditSharded(); err != nil {
				return tr, fmt.Errorf("aging: audit after step %d: %w", step, err)
			}
		}
	}
	// Drain every shard's tenants so the final audit covers teardown,
	// mirroring the single-stream campaign.
	for _, s := range c.shards {
		for len(s.tenants) > 0 {
			s.exit(len(s.tenants) - 1)
		}
		workloads.SettleDaemons(s.k, s.ds, c.cfg.SettleEpochs)
	}
	if err := c.auditSharded(); err != nil {
		return tr, fmt.Errorf("aging: final audit: %w", err)
	}
	return tr, nil
}

// shardJobs resolves the parallel-phase worker bound.
func (c *Campaign) shardJobs() int {
	if c.cfg.ShardJobs <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.cfg.ShardJobs
}

// stepShards runs every shard's epoch step, concurrently up to
// ShardJobs workers. Failures land in shard.err; the barrier reports
// the lowest-index one so errors are deterministic too.
func (c *Campaign) stepShards(step int) {
	jobs := c.shardJobs()
	if jobs <= 1 {
		for _, s := range c.shards {
			c.shardStep(s, step)
		}
		return
	}
	sem := make(chan struct{}, jobs)
	var wg sync.WaitGroup
	for _, s := range c.shards {
		wg.Add(1)
		go func(s *shard) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			c.shardStep(s, step)
		}(s)
	}
	wg.Wait()
}

// shardStep is one shard's parallel-phase work: one churn action plus
// the shard's private daemon settle window.
func (c *Campaign) shardStep(s *shard, step int) {
	t := c.k.Tracer
	start := t.Start()
	if err := c.shardChurn(s); err != nil {
		s.err = err
		return
	}
	workloads.SettleDaemons(s.k, s.ds, c.cfg.SettleEpochs)
	t.EmitSpan(trace.EvShardEpoch, start, uint64(s.idx), uint64(step), s.k.Clock)
}

// shardMaxTenants deals the population cap across shards (remainder to
// the low indexes), never below one.
func (c *Campaign) shardMaxTenants(idx int) int {
	n := c.cfg.MaxTenants / len(c.shards)
	if idx < c.cfg.MaxTenants%len(c.shards) {
		n++
	}
	if n < 1 {
		n = 1
	}
	return n
}

// shardChurn is churnStep on one shard's private stream.
func (c *Campaign) shardChurn(s *shard) error {
	switch ChurnRoll(s.rng, len(s.tenants), c.shardMaxTenants(s.idx)) {
	case ChurnArrive:
		return c.shardArrive(s)
	case ChurnTouch:
		return c.shardTouch(s)
	default:
		s.exit(s.rng.Intn(len(s.tenants)))
		return nil
	}
}

// shardArrive admits one tenant into the shard's own zones. An OOM is
// not resolved here — reclaiming the parent's page cache is a
// cross-shard effect — so the admission parks on the pending list for
// the barrier to retry.
func (c *Campaign) shardArrive(s *shard) error {
	pages := c.cfg.MinFootprintPages + s.zipf.Uint64()
	zoneIdx := s.arrivals % len(s.k.Machine.Zones)
	s.arrivals++
	env := workloads.NewNativeEnv(s.k, zoneIdx)
	env.Daemons = s.ds
	env.NoRangeFault = c.cfg.NoRangeFault
	v, err := env.MMap(addr.PagesToBytes(pages))
	if errors.Is(err, osim.ErrOOM) {
		s.pending = append(s.pending, pendingArrival{env: env, pages: pages})
		return nil
	}
	if err != nil {
		return err
	}
	err = env.Populate(v)
	if errors.Is(err, osim.ErrOOM) {
		s.pending = append(s.pending, pendingArrival{env: env, vma: v, pages: pages})
		return nil
	}
	if err != nil {
		return err
	}
	s.tenants = append(s.tenants, &tenant{env: env, vma: v, pages: pages})
	return nil
}

// shardTouch is touch on a shard tenant; OOM defers the cache squeeze
// to the barrier and moves on (the next touch retries naturally).
func (c *Campaign) shardTouch(s *shard) error {
	t := s.tenants[s.rng.Intn(len(s.tenants))]
	v := t.vma
	chunk := t.pages / 4
	if chunk == 0 {
		chunk = t.pages
	}
	start := uint64(0)
	if t.pages > chunk {
		start = uint64(s.rng.Int63n(int64(t.pages - chunk)))
	}
	err := t.env.PopulateRange(v, v.Start.Add(addr.PagesToBytes(start)), addr.PagesToBytes(chunk))
	if errors.Is(err, osim.ErrOOM) {
		s.wantReclaim = true
		return nil
	}
	return err
}

// exit tears down shard tenant i.
func (s *shard) exit(i int) {
	s.tenants[i].env.Exit()
	s.tenants = append(s.tenants[:i], s.tenants[i+1:]...)
}

// barrier merges the epoch's cross-shard effects in shard-index order:
// step errors, deferred reclaim, parked OOM admissions (squeeze the
// shared cache, retry the populate, OOM-kill on a second failure), and
// the periodic cache churn on the parent kernel.
func (c *Campaign) barrier(step int) error {
	for _, s := range c.shards {
		if s.err != nil {
			return fmt.Errorf("aging: step %d shard %d: %w", step, s.idx, s.err)
		}
	}
	t := c.k.Tracer
	start := t.Start()
	var retried uint64
	for _, s := range c.shards {
		if s.wantReclaim {
			s.wantReclaim = false
			c.k.Cache.ReclaimUnder(c.cfg.ReclaimFreeFrac)
		}
		for _, pa := range s.pending {
			retried++
			c.k.Cache.ReclaimUnder(c.cfg.ReclaimFreeFrac)
			v := pa.vma
			if v == nil {
				var err error
				v, err = pa.env.MMap(addr.PagesToBytes(pa.pages))
				if errors.Is(err, osim.ErrOOM) {
					pa.env.Exit() // the simulated OOM kill
					continue
				}
				if err != nil {
					return fmt.Errorf("aging: step %d shard %d OOM retry: %w", step, s.idx, err)
				}
			}
			err := pa.env.Populate(v)
			if errors.Is(err, osim.ErrOOM) {
				pa.env.Exit() // the simulated OOM kill
				continue
			}
			if err != nil {
				return fmt.Errorf("aging: step %d shard %d OOM retry: %w", step, s.idx, err)
			}
			s.tenants = append(s.tenants, &tenant{env: pa.env, vma: v, pages: pa.pages})
		}
		s.pending = s.pending[:0]
	}
	if c.cfg.CacheChurnEvery > 0 && step%c.cfg.CacheChurnEvery == 0 {
		if err := c.cacheChurn(); err != nil {
			return fmt.Errorf("aging: step %d cache churn: %w", step, err)
		}
	}
	t.EmitSpan(trace.EvShardBarrier, start, uint64(step), retried, c.k.Clock)
	return nil
}

// snapshotSharded measures across every shard kernel plus the parent.
// ClockNs composes the parent's clock (cache churn, reclaim) with the
// slowest shard's — logical time advanced in parallel, so the campaign
// "took" as long as its slowest stream.
func (c *Campaign) snapshotSharded(step int) Snapshot {
	var rss, faults, maxClock uint64
	tenants := 0
	for _, s := range c.shards {
		for _, p := range s.k.Processes() {
			rss += p.RSSPages
		}
		faults += s.k.Stats.TotalFaults()
		tenants += len(s.tenants)
		if s.k.Clock > maxClock {
			maxClock = s.k.Clock
		}
	}
	return c.emitSnapshot(Snapshot{
		Step:     step,
		ClockNs:  c.k.Clock + maxClock,
		Tenants:  tenants,
		RSSPages: rss,
		Faults:   faults + c.k.Stats.TotalFaults(),
	})
}

// auditSharded runs the multi-kernel whole-machine audit: references
// are gathered from every shard's processes and the parent's page
// cache before one frame sweep over the union machine.
func (c *Campaign) auditSharded() error {
	ks := make([]*osim.Kernel, 0, len(c.shards)+1)
	ks = append(ks, c.k)
	for _, s := range c.shards {
		ks = append(ks, s.k)
	}
	return c.auditor.AuditKernels(c.k.Machine, ks, c.cfg.Pinned)
}
