// Package aging runs long logical-time fragmentation-aging campaigns:
// tenants arrive with Zipf-skewed footprints, touch their memory, and
// exit, while page-cache fill/evict pressure and periodic daemon
// epochs churn the physical free pool. A campaign records how external
// fragmentation evolves — FragScore-style permille plus Gorman's
// unusable free space index per order — as a deterministic trajectory
// of snapshots, and periodically cross-checks the whole machine with
// internal/check audits.
//
// The harness exists because the steady-state experiment drivers never
// exercise the full process lifecycle: the Ranger plan leak and the
// Ingens fork/promote CoW clobber (see the churn regression tests in
// internal/osim/daemon) both only manifest once tenants exit and fork
// under a long-running daemon. Campaigns are deterministic per seed:
// the same Config produces a byte-identical trajectory CSV at any
// parallelism.
package aging

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strconv"

	"repro/internal/check"
	"repro/internal/mem/addr"
	"repro/internal/metrics"
	"repro/internal/osim"
	"repro/internal/osim/vma"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Config parameterises one aging campaign. Zero values select the
// defaults noted on each field.
type Config struct {
	// Seed drives every random decision of the campaign.
	Seed int64
	// Steps is the churn-step horizon (default 200).
	Steps int
	// SnapshotEvery records a trajectory snapshot every N steps
	// (default 10).
	SnapshotEvery int
	// AuditEvery runs a whole-machine check.Audit every N snapshots
	// (default 4; 0 keeps the default — use -1 to disable mid-run
	// audits). A final audit always runs at campaign end.
	AuditEvery int
	// MaxTenants caps the concurrently live tenant population
	// (default 8).
	MaxTenants int
	// MinFootprintPages / MaxFootprintPages bound tenant footprints;
	// draws are Min + Zipf(Max-Min), skewing small (defaults 256 and
	// 16384 pages: 1 MiB to 64 MiB).
	MinFootprintPages uint64
	MaxFootprintPages uint64
	// ZipfS is the Zipf skew exponent (must be > 1; default 1.4).
	ZipfS float64
	// FilePages sizes each dataset file read through the page cache
	// (default 2048 pages = 8 MiB).
	FilePages uint64
	// CacheChurnEvery reads a fresh file every N steps (default 7;
	// -1 disables cache churn).
	CacheChurnEvery int
	// ReclaimFreeFrac is the free-memory floor handed to the page
	// cache's ReclaimUnder after cache churn (default 0.1).
	ReclaimFreeFrac float64
	// SettleEpochs is the number of daemon epochs ticked after every
	// churn step (default 2).
	SettleEpochs int
	// NoRangeFault forwards to Env.NoRangeFault (per-page population).
	NoRangeFault bool
	// Pinned are frame extents the audits must treat as intentionally
	// allocated outside any process (boot reservations).
	Pinned []check.Extent
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Steps == 0 {
		c.Steps = 200
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 10
	}
	if c.AuditEvery == 0 {
		c.AuditEvery = 4
	}
	if c.MaxTenants == 0 {
		c.MaxTenants = 8
	}
	if c.MinFootprintPages == 0 {
		c.MinFootprintPages = 256
	}
	if c.MaxFootprintPages == 0 {
		c.MaxFootprintPages = 16384
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.4
	}
	if c.FilePages == 0 {
		c.FilePages = 2048
	}
	if c.CacheChurnEvery == 0 {
		c.CacheChurnEvery = 7
	}
	if c.ReclaimFreeFrac == 0 {
		c.ReclaimFreeFrac = 0.1
	}
	if c.SettleEpochs == 0 {
		c.SettleEpochs = 2
	}
	return c
}

// Snapshot is one point of a campaign trajectory.
type Snapshot struct {
	Step         int     // churn step the snapshot was taken after
	ClockNs      uint64  // kernel logical clock
	Tenants      int     // live tenant count
	RSSPages     uint64  // summed process RSS
	CachePages   uint64  // resident page-cache frames
	FreePages    uint64  // machine-wide free frames
	FragPermille uint64  // permille of free memory below huge blocks
	UFI2M        float64 // Gorman unusable free index at HugeOrder
	UFIMax       float64 // Gorman unusable free index at MaxOrder
	Faults       uint64  // cumulative fault count
}

// Trajectory is a campaign's recorded snapshot series.
type Trajectory struct {
	Policy    string
	Snapshots []Snapshot
}

// WriteCSV renders the trajectory as a stable CSV table.
func (tr *Trajectory) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w,
		"step,clock_ns,tenants,rss_pages,cache_pages,free_pages,frag_permille,ufi_2m,ufi_max,faults\n"); err != nil {
		return err
	}
	for _, s := range tr.Snapshots {
		line := fmt.Sprintf("%d,%d,%d,%d,%d,%d,%d,%s,%s,%d\n",
			s.Step, s.ClockNs, s.Tenants, s.RSSPages, s.CachePages,
			s.FreePages, s.FragPermille,
			strconv.FormatFloat(s.UFI2M, 'f', 4, 64),
			strconv.FormatFloat(s.UFIMax, 'f', 4, 64),
			s.Faults)
		if _, err := io.WriteString(w, line); err != nil {
			return err
		}
	}
	return nil
}

// Final returns the last snapshot (zero value when none recorded).
func (tr *Trajectory) Final() Snapshot {
	if len(tr.Snapshots) == 0 {
		return Snapshot{}
	}
	return tr.Snapshots[len(tr.Snapshots)-1]
}

// PeakRSS returns the largest RSS seen across the trajectory.
func (tr *Trajectory) PeakRSS() uint64 {
	var peak uint64
	for _, s := range tr.Snapshots {
		if s.RSSPages > peak {
			peak = s.RSSPages
		}
	}
	return peak
}

// tenant is one live simulated process with its populated footprint.
type tenant struct {
	env   *workloads.Env
	vma   *vma.VMA
	pages uint64 // footprint in base pages
}

// Campaign drives one aging run over a kernel and its daemons.
type Campaign struct {
	k    *osim.Kernel
	ds   []workloads.Daemon
	cfg  Config
	rng  *rand.Rand
	zipf *rand.Zipf

	tenants  []*tenant
	arrivals int // total tenants ever admitted (round-robins zones)

	gaugeIDs struct {
		tenants, rss, cache, free, frag, ufi2m int
	}
}

// New builds a campaign over an existing kernel and daemon set. The
// kernel's policy and daemons define the anti-fragmentation regime
// under test; the campaign only churns tenants and the page cache.
func New(k *osim.Kernel, ds []workloads.Daemon, cfg Config) *Campaign {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	span := cfg.MaxFootprintPages - cfg.MinFootprintPages
	c := &Campaign{
		k:    k,
		ds:   ds,
		cfg:  cfg,
		rng:  rng,
		zipf: rand.NewZipf(rng, cfg.ZipfS, 1, span),
	}
	t := k.Tracer
	c.gaugeIDs.tenants = t.Gauge("aging.tenants")
	c.gaugeIDs.rss = t.Gauge("aging.rss_pages")
	c.gaugeIDs.cache = t.Gauge("aging.cache_pages")
	c.gaugeIDs.free = t.Gauge("aging.free_pages")
	c.gaugeIDs.frag = t.Gauge("aging.frag_permille")
	c.gaugeIDs.ufi2m = t.Gauge("aging.ufi2m_permille")
	return c
}

// Run executes the campaign and returns its trajectory. A non-nil
// error means a whole-machine audit failed (the trajectory up to the
// failing snapshot is returned alongside it).
func (c *Campaign) Run() (*Trajectory, error) {
	tr := &Trajectory{Policy: c.k.Policy.Name()}
	sinceSnap, snaps := 0, 0
	for step := 1; step <= c.cfg.Steps; step++ {
		if err := c.churnStep(); err != nil {
			return tr, fmt.Errorf("aging: step %d: %w", step, err)
		}
		if c.cfg.CacheChurnEvery > 0 && step%c.cfg.CacheChurnEvery == 0 {
			if err := c.cacheChurn(); err != nil {
				return tr, fmt.Errorf("aging: step %d cache churn: %w", step, err)
			}
		}
		workloads.SettleDaemons(c.k, c.ds, c.cfg.SettleEpochs)

		sinceSnap++
		if sinceSnap < c.cfg.SnapshotEvery && step != c.cfg.Steps {
			continue
		}
		sinceSnap = 0
		snaps++
		tr.Snapshots = append(tr.Snapshots, c.snapshot(step))
		if c.cfg.AuditEvery > 0 && snaps%c.cfg.AuditEvery == 0 {
			if err := check.Audit(c.k, c.cfg.Pinned); err != nil {
				return tr, fmt.Errorf("aging: audit after step %d: %w", step, err)
			}
		}
	}
	// Drain the tenant population so the final audit also covers the
	// teardown path (where the lifecycle bugs lived).
	for len(c.tenants) > 0 {
		c.exitTenant(len(c.tenants) - 1)
	}
	workloads.SettleDaemons(c.k, c.ds, c.cfg.SettleEpochs)
	if err := check.Audit(c.k, c.cfg.Pinned); err != nil {
		return tr, fmt.Errorf("aging: final audit: %w", err)
	}
	return tr, nil
}

// churnStep performs one tenant lifecycle action, chosen from a fixed
// deterministic mix (arrive 30 %, touch 50 %, exit 20 %) adjusted at
// the population bounds.
func (c *Campaign) churnStep() error {
	roll := c.rng.Intn(10)
	switch {
	case len(c.tenants) == 0 || (roll < 3 && len(c.tenants) < c.cfg.MaxTenants):
		return c.arrive()
	case roll < 8 || len(c.tenants) == 1:
		return c.touch()
	default:
		c.exitTenant(c.rng.Intn(len(c.tenants)))
		return nil
	}
}

// arrive admits one tenant with a Zipf-skewed footprint and populates
// it. Under memory pressure the page cache is squeezed first; a tenant
// that still cannot fit is torn down again (the simulated OOM kill),
// which is itself lifecycle churn worth exercising.
func (c *Campaign) arrive() error {
	pages := c.cfg.MinFootprintPages + c.zipf.Uint64()
	zone := c.arrivals % len(c.k.Machine.Zones)
	c.arrivals++
	env := workloads.NewNativeEnv(c.k, zone)
	env.Daemons = c.ds
	env.NoRangeFault = c.cfg.NoRangeFault
	v, err := env.MMap(addr.PagesToBytes(pages))
	if err != nil {
		return err
	}
	err = env.Populate(v)
	if errors.Is(err, osim.ErrOOM) {
		c.k.Cache.ReclaimUnder(c.cfg.ReclaimFreeFrac)
		err = env.Populate(v)
	}
	if errors.Is(err, osim.ErrOOM) {
		env.Exit()
		return nil
	}
	if err != nil {
		return err
	}
	c.tenants = append(c.tenants, &tenant{env: env, vma: v, pages: pages})
	return nil
}

// touch revisits a random contiguous chunk of a random tenant's
// footprint, re-dirtying it (and faulting any pages an eager policy
// left unmapped after migrations).
func (c *Campaign) touch() error {
	t := c.tenants[c.rng.Intn(len(c.tenants))]
	v := t.vma
	chunk := t.pages / 4
	if chunk == 0 {
		chunk = t.pages
	}
	start := uint64(0)
	if t.pages > chunk {
		start = uint64(c.rng.Int63n(int64(t.pages - chunk)))
	}
	err := t.env.PopulateRange(v, v.Start.Add(addr.PagesToBytes(start)), addr.PagesToBytes(chunk))
	if errors.Is(err, osim.ErrOOM) {
		// Pressure: squeeze the cache and move on; the next touch
		// retries naturally.
		c.k.Cache.ReclaimUnder(c.cfg.ReclaimFreeFrac)
		return nil
	}
	return err
}

// exitTenant tears down tenant i.
func (c *Campaign) exitTenant(i int) {
	c.tenants[i].env.Exit()
	c.tenants = append(c.tenants[:i], c.tenants[i+1:]...)
}

// cacheChurn reads a fresh dataset file through the page cache and
// applies eviction pressure, alternating DropOldest with the free-frac
// reclaim sweep.
func (c *Campaign) cacheChurn() error {
	f := c.k.Cache.CreateFile(addr.PagesToBytes(c.cfg.FilePages))
	if err := c.k.Cache.Read(f, 0, f.Bytes); err != nil && !errors.Is(err, osim.ErrOOM) {
		return err
	}
	if c.rng.Intn(2) == 0 {
		c.k.Cache.DropOldest()
	}
	c.k.Cache.ReclaimUnder(c.cfg.ReclaimFreeFrac)
	return nil
}

// snapshot measures the machine and records/emits one trajectory point.
func (c *Campaign) snapshot(step int) Snapshot {
	var rss uint64
	for _, p := range c.k.Processes() {
		rss += p.RSSPages
	}
	hist := metrics.FreeOrderHistogram(func(fn func(pfn addr.PFN, order int)) {
		for _, z := range c.k.Machine.Zones {
			z.Buddy.VisitFreeBlocks(fn)
		}
	})
	ufi2m := metrics.UnusableFreeIndex(hist, addr.HugeOrder)
	s := Snapshot{
		Step:         step,
		ClockNs:      c.k.Clock,
		Tenants:      len(c.tenants),
		RSSPages:     rss,
		CachePages:   c.k.Cache.ResidentPages,
		FreePages:    c.k.Machine.FreePages(),
		FragPermille: uint64(ufi2m*1000 + 0.5),
		UFI2M:        ufi2m,
		UFIMax:       metrics.UnusableFreeIndex(hist, addr.MaxOrder),
		Faults:       c.k.Stats.TotalFaults(),
	}

	t := c.k.Tracer
	t.SetGauge(c.gaugeIDs.tenants, uint64(s.Tenants))
	t.SetGauge(c.gaugeIDs.rss, s.RSSPages)
	t.SetGauge(c.gaugeIDs.cache, s.CachePages)
	t.SetGauge(c.gaugeIDs.free, s.FreePages)
	t.SetGauge(c.gaugeIDs.frag, s.FragPermille)
	t.SetGauge(c.gaugeIDs.ufi2m, uint64(s.UFI2M*1000+0.5))
	t.Emit(trace.EvAgingSnapshot, uint64(step), s.RSSPages, s.FragPermille)
	c.k.Machine.TraceDepths()
	t.Sample()
	return s
}
