package experiments

import "testing"

func TestAblationPlacementShape(t *testing.T) {
	t.Parallel()
	tab, err := AblationPlacement(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	nextA := parseI(t, cell(t, tab, 1, "next-fit"))
	firstA := parseI(t, cell(t, tab, 1, "first-fit"))
	// Next-fit defers racing placements; first-fit collides them. The
	// paper picked next-fit exactly for this.
	if nextA > firstA {
		t.Fatalf("next-fit maps99 %d should not exceed first-fit %d", nextA, firstA)
	}
}

func TestAblationOffsetBudgetShape(t *testing.T) {
	t.Parallel()
	tab, err := AblationOffsetBudget(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	one := parseI(t, cell(t, tab, 2, "1"))   // fallbacks with 1 offset
	full := parseI(t, cell(t, tab, 2, "64")) // fallbacks with 64
	if full > one {
		t.Fatalf("64-offset fallbacks %d should be <= single-offset %d", full, one)
	}
}

func TestAblationSpotConfidenceShape(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	p.StreamLen = 200_000
	tab, err := AblationSpotConfidence(p)
	if err != nil {
		t.Fatal(err)
	}
	fullMis := parsePct(t, cell(t, tab, 2, "full mechanism"))
	noConfMis := parsePct(t, cell(t, tab, 2, "no confidence"))
	// Without confidence throttling, would-be no-predictions become
	// mispredictions (each costing a pipeline flush).
	if noConfMis < fullMis {
		t.Fatalf("no-confidence mispredicts %.2f%% should exceed full %.2f%%", noConfMis, fullMis)
	}
}

func TestAblationSpotGeometryShape(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	p.StreamLen = 150_000
	tab, err := AblationSpotGeometry(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Bigger tables never hurt: correct rate at 128x8 >= at 8x2.
	small := parsePct(t, cell(t, tab, 1, "8x2"))
	big := parsePct(t, cell(t, tab, 1, "128x8"))
	if big+1 < small {
		t.Fatalf("128x8 correct %.2f%% should be >= 8x2 %.2f%%", big, small)
	}
}

func TestAblationSortedShape(t *testing.T) {
	t.Parallel()
	tab, err := AblationSortedMaxOrder(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sorted := parseF(t, cell(t, tab, 1, "true"))
	unsorted := parseF(t, cell(t, tab, 1, "false"))
	if sorted < unsorted {
		t.Fatalf("sorted largest cluster %.1f MiB should be >= unsorted %.1f MiB", sorted, unsorted)
	}
}
