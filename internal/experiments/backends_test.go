package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/hw/translation"
)

func renderString(t *testing.T, tbl *Table) string {
	t.Helper()
	var buf bytes.Buffer
	tbl.Render(&buf)
	return buf.String()
}

// TestFigBackendsShape pins the matrix structure: a column per backend
// in registry order, a native and a virt row per workload plus the two
// mean rows, and the expected orderings — virtualization costs more
// than native for the walk-paying backends, and the range-covered rmm
// backend never exceeds the paged baseline.
func TestFigBackendsShape(t *testing.T) {
	p := Params{StreamLen: 20_000, SettleEpochs: 30, Seed: 1, Jobs: 4}
	tbl, err := FigBackends(p)
	if err != nil {
		t.Fatal(err)
	}
	wantHeader := append([]string{"workload", "mode"}, translation.Names()...)
	if strings.Join(tbl.Header, ",") != strings.Join(wantHeader, ",") {
		t.Fatalf("header = %v, want %v", tbl.Header, wantHeader)
	}
	names := workloadNames()
	if got, want := len(tbl.Rows), 2*len(names)+2; got != want {
		t.Fatalf("rows = %d, want %d", got, want)
	}
	parse := func(cell string) float64 {
		var f float64
		if _, err := fmtSscanfPct(cell, &f); err != nil {
			t.Fatalf("cell %q: %v", cell, err)
		}
		return f
	}
	col := map[string]int{}
	for i, h := range tbl.Header {
		col[h] = i
	}
	for i, name := range names {
		nat, virt := tbl.Rows[2*i], tbl.Rows[2*i+1]
		if nat[0] != name || nat[1] != "native" || virt[0] != name || virt[1] != "virt" {
			t.Fatalf("row labels for %s: %v / %v", name, nat[:2], virt[:2])
		}
		if parse(virt[col["paged"]]) <= parse(nat[col["paged"]]) {
			t.Errorf("%s: virtualized paged overhead %s not above native %s",
				name, virt[col["paged"]], nat[col["paged"]])
		}
		for _, row := range [][]string{nat, virt} {
			if parse(row[col["rmm"]]) > parse(row[col["paged"]]) {
				t.Errorf("%s/%s: rmm overhead %s exceeds paged %s",
					name, row[1], row[col["rmm"]], row[col["paged"]])
			}
		}
	}
	for _, row := range tbl.Rows[2*len(names):] {
		if row[0] != "mean" {
			t.Fatalf("trailing row %v is not a mean row", row)
		}
	}
}

// fmtSscanfPct parses a "12.34%" cell.
func fmtSscanfPct(s string, f *float64) (int, error) {
	return fmt.Sscanf(s, "%f%%", f)
}

// TestFigBackendsSingleBackendParam pins Params.Backend: the filtered
// run carries exactly that backend's column and its cells match the
// full matrix (each cell is an independent simulation, so filtering
// cannot perturb the others).
func TestFigBackendsSingleBackendParam(t *testing.T) {
	p := Params{StreamLen: 10_000, SettleEpochs: 20, Seed: 1, Jobs: 4}
	full, err := FigBackends(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Backend = translation.BackendHashed
	only, err := FigBackends(p)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(only.Header, ","), "workload,mode,hashed"; got != want {
		t.Fatalf("filtered header = %q, want %q", got, want)
	}
	hi := -1
	for i, h := range full.Header {
		if h == translation.BackendHashed {
			hi = i
		}
	}
	for r := range only.Rows {
		if got, want := only.Rows[r][2], full.Rows[r][hi]; got != want {
			t.Fatalf("row %d: filtered cell %q != full-matrix cell %q", r, got, want)
		}
	}
	p.Backend = "no-such-backend"
	if _, err := FigBackends(p); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

// TestFigBackendsJobsInvariance pins that the worker fan-out is an
// execution detail: the rendered table is byte-identical at any Jobs.
func TestFigBackendsJobsInvariance(t *testing.T) {
	p := Params{StreamLen: 10_000, SettleEpochs: 20, Seed: 1, Jobs: 1}
	seq, err := FigBackends(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Jobs = 8
	par, err := FigBackends(p)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := renderString(t, seq), renderString(t, par); a != b {
		t.Fatalf("figBackends differs between Jobs=1 and Jobs=8:\n%s\n%s", a, b)
	}
}
