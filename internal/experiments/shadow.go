package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/perfmodel"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// ExtraShadow compares nested paging against shadow paging (§VII: the
// paper's techniques are "agnostic to the virtualization technology and
// directly applicable to shadow and hybrid paging"). Shadow walks cost
// native latency, but every composite-entry fill is a hypervisor exit —
// the trade-off agile paging navigates. This is not a paper figure; it
// validates the claim on our substrate.
func ExtraShadow(p Params) (*Table, error) {
	return ExtraShadowFor(p, []string{"pagerank", "xsbench", "hashjoin"})
}

// ExtraShadowFor is the parameterized core of ExtraShadow.
func ExtraShadowFor(p Params, names []string) (*Table, error) {
	t := &Table{
		Title:  "Extra: nested vs shadow paging overhead (CA in both dimensions)",
		Header: []string{"workload", "nested", "shadow", "shadow syncs"},
		Notes: []string{
			"shadow wins in steady state (native-cost walks) but pays a VM exit per",
			"composite fill — the nested/shadow trade-off agile paging exploits",
		},
	}
	for _, name := range names {
		w := workloads.ByName(name)
		var nested, shadowed sim.Result
		for i, shadow := range []bool{false, true} {
			vm, _, err := newVM(p, PolicyCA, PolicyCA)
			if err != nil {
				return nil, err
			}
			env := workloads.NewVirtEnv(vm, 0)
			env.NoRangeFault = p.NoRangeFault
			if err := w.Setup(env, rand.New(rand.NewSource(p.setupSeed()))); err != nil {
				return nil, fmt.Errorf("shadow %s: %w", name, err)
			}
			res, err := sim.Run(env, w.Stream(rand.New(rand.NewSource(p.streamSeed())), p.StreamLen),
				sim.Config{ShadowPaging: shadow, NoWalkCache: p.NoWalkCache, Tracer: p.Tracer})
			if err != nil {
				return nil, err
			}
			if i == 0 {
				nested = res
			} else {
				shadowed = res
			}
		}
		t.Rows = append(t.Rows, []string{
			name,
			pct(perfmodel.PagingOverhead(nested)),
			pct(perfmodel.PagingOverhead(shadowed)),
			fmt.Sprint(shadowed.ShadowSyncs),
		})
	}
	return t, nil
}
