// Package experiments contains one driver per table and figure of the
// paper's evaluation (§VI). Each driver builds the machines, runs the
// workloads under the configurations the paper compares, and returns a
// Table of the same rows/series the paper reports. The cmd/reproduce
// binary and the repository-root benchmarks call into these drivers.
//
// Scaling: footprints, machine size, and TLB reach are all ~1/512 of
// the paper's testbed (see DESIGN.md §5), so the *shape* of every
// result — who wins, by what factor, where behaviour breaks — is the
// comparison target, not absolute values. EXPERIMENTS.md records
// paper-vs-measured for each driver.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"repro/internal/mem/addr"
	"repro/internal/mem/zone"
	"repro/internal/metrics"
	"repro/internal/osim"
	"repro/internal/osim/daemon"
	"repro/internal/virt"
	"repro/internal/workloads"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			// Ragged rows can be wider than the header; cells beyond
			// the last header column render unpadded.
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return s + strings.Repeat(" ", n-len(s))
}

// --- machine and configuration fixtures ---

const (
	// hostZoneBlocks is the per-zone size of the host machine in
	// MAX_ORDER blocks: 2 zones x 640 MiB = 1.25 GiB, the paper's
	// 2-socket 256 GB box scaled.
	hostZoneBlocks = 160
	// guestZoneBlocks: 2 x 384 MiB guest NUMA zones in a 768 MiB VM.
	guestZoneBlocks = 96
	// bootReserveBlocks models kernel/firmware reservations per zone.
	bootReserveBlocks = 1
	// vmBytes is the guest physical memory size.
	vmBytes = 768 << 20
)

// newHostMachine builds the standard two-zone host.
func newHostMachine(numaOff bool, sorted bool) *zone.Machine {
	if numaOff {
		return zone.NewMachine(zone.Config{
			ZonePages:      []uint64{2 * hostZoneBlocks * addr.MaxOrderPages},
			SortedMaxOrder: sorted,
		})
	}
	return zone.NewMachine(zone.Config{
		ZonePages:      []uint64{hostZoneBlocks * addr.MaxOrderPages, hostZoneBlocks * addr.MaxOrderPages},
		SortedMaxOrder: sorted,
	})
}

// PolicyName selects one of the paper's memory-management
// configurations for native runs.
type PolicyName string

// The compared configurations (§VI-A).
const (
	PolicyTHP    PolicyName = "thp"    // default paging with THP
	PolicyIngens PolicyName = "ingens" // async utilisation-gated promotion
	PolicyCA     PolicyName = "ca"     // contiguity-aware paging
	PolicyEager  PolicyName = "eager"  // pre-allocation
	PolicyRanger PolicyName = "ranger" // async defragmentation
	PolicyIdeal  PolicyName = "ideal"  // offline best-fit bound
)

// AllPolicies lists the Fig. 7 comparison set in presentation order.
func AllPolicies() []PolicyName {
	return []PolicyName{PolicyTHP, PolicyIngens, PolicyCA, PolicyEager, PolicyRanger, PolicyIdeal}
}

// newNativeKernel builds a kernel + daemons for the named policy.
// The CA configuration also enables the sorted MAX_ORDER list, as the
// paper's prototype does.
func newNativeKernel(pr Params, p PolicyName, numaOff bool) (*osim.Kernel, []workloads.Daemon) {
	sorted := p == PolicyCA
	m := newHostMachine(numaOff, sorted)
	var k *osim.Kernel
	var ds []workloads.Daemon
	switch p {
	case PolicyTHP:
		k = osim.NewKernel(m, osim.DefaultPolicy{})
	case PolicyIngens:
		k = osim.NewKernel(m, osim.DefaultPolicy{})
		ds = append(ds, daemon.NewIngens(k))
	case PolicyCA:
		k = osim.NewKernel(m, osim.CAPolicy{})
	case PolicyEager:
		k = osim.NewKernel(m, osim.EagerPolicy{})
	case PolicyRanger:
		k = osim.NewKernel(m, osim.DefaultPolicy{})
		ds = append(ds, daemon.NewRanger(k))
	case PolicyIdeal:
		k = osim.NewKernel(m, osim.NewIdealPolicy())
	default:
		panic("experiments: unknown policy " + string(p))
	}
	k.BootReserve(bootReserveBlocks)
	k.SetTracer(pr.Tracer)
	return k, ds
}

// placementFor returns the osim placement for guest/host kernels.
func placementFor(p PolicyName) osim.Placement {
	switch p {
	case PolicyCA:
		return osim.CAPolicy{}
	case PolicyEager:
		return osim.EagerPolicy{}
	case PolicyIdeal:
		return osim.NewIdealPolicy()
	default:
		return osim.DefaultPolicy{}
	}
}

// newVM builds the standard VM: guest and host kernels with the given
// policies (the paper applies the same policy in both dimensions).
func newVM(pr Params, guest, host PolicyName) (*virt.VM, *osim.Kernel, error) {
	hk := osim.NewKernel(newHostMachine(false, host == PolicyCA), placementFor(host))
	hk.BootReserve(bootReserveBlocks)
	vm, err := virt.New(hk, virt.Config{
		MemBytes:         vmBytes,
		GuestZones:       []uint64{guestZoneBlocks * addr.MaxOrderPages, guestZoneBlocks * addr.MaxOrderPages},
		GuestPolicy:      placementFor(guest),
		GuestSorted:      guest == PolicyCA,
		GuestBootReserve: bootReserveBlocks,
	})
	if err != nil {
		return nil, nil, err
	}
	vm.SetTracer(pr.Tracer)
	return vm, hk, nil
}

// ContigStats is one configuration's contiguity measurement.
type ContigStats struct {
	Cov32, Cov128 float64
	Maps99        int
}

func contigOf(ms []metrics.Mapping) ContigStats {
	return ContigStats{
		Cov32:  metrics.CoverageTopN(ms, 32),
		Cov128: metrics.CoverageTopN(ms, 128),
		Maps99: metrics.MappingsFor(ms, 0.99),
	}
}

// settleDaemons drives the background daemons through enough epochs of
// logical time to converge (post-population execution window), as the
// paper's measurements average over the application's execution.
func settleDaemons(k *osim.Kernel, ds []workloads.Daemon, epochs int) {
	workloads.SettleDaemons(k, ds, epochs)
}

// runNativeContig runs one workload under one policy and returns its
// final contiguity plus the kernel for further inspection. The process
// is left alive; callers may exit it.
func runNativeContig(p Params, w workloads.Workload, pol PolicyName) (ContigStats, *osim.Kernel, *workloads.Env, error) {
	k, ds := newNativeKernel(p, pol, false)
	env := workloads.NewNativeEnv(k, 0)
	env.Daemons = ds
	env.NoRangeFault = p.NoRangeFault
	tr := p.Tracer
	start := tr.Start()
	if err := w.Setup(env, rand.New(rand.NewSource(p.setupSeed()))); err != nil {
		return ContigStats{}, nil, nil, fmt.Errorf("%s/%s: %w", w.Name(), pol, err)
	}
	tr.EmitPhase(string(pol)+"/"+w.Name()+"/setup", start)
	start = tr.Start()
	settleDaemons(k, ds, p.SettleEpochs)
	tr.EmitPhase(string(pol)+"/"+w.Name()+"/settle", start)
	ms := metrics.FromPageTable(env.Proc.PT)
	return contigOf(ms), k, env, nil
}

// recycleKernel returns a finished cell's machine to the zone
// construction pool. Only call once every reference into the machine —
// processes, envs, the kernel itself — is dead to the caller; metrics
// snapshots and table rows hold copies and are safe.
func recycleKernel(k *osim.Kernel) {
	k.Machine.Recycle()
}

// recycleVM pools both of a finished cell's machines (guest and host).
func recycleVM(vm *virt.VM) {
	vm.Guest.Machine.Recycle()
	vm.Host.Machine.Recycle()
}

// workloadNames returns the five paper workload names in order.
func workloadNames() []string {
	out := make([]string, 0, 5)
	for _, w := range workloads.All() {
		out = append(out, w.Name())
	}
	return out
}

func f3(x float64) string  { return fmt.Sprintf("%.3f", x) }
func f1(x float64) string  { return fmt.Sprintf("%.1f", x) }
func pct(x float64) string { return fmt.Sprintf("%.2f%%", x*100) }
