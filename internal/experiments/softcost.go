package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/metrics"
	"repro/internal/osim/vma"
	"repro/internal/perfmodel"
	"repro/internal/workloads"
)

// Fig11 reproduces the software-overhead study (Fig. 11): modelled
// execution time normalized to THP for each workload under each
// memory-management configuration, isolating the kernel-side costs
// (fault service, zeroing, promotions, migrations, shootdowns) with no
// gain from novel translation hardware.
func Fig11(p Params) (*Table, error) { return Fig11For(p, workloadNames()) }

// Fig11For is the parameterized core of Fig11. The (workload, policy)
// cells each build their own kernel, so the grid fans out on the
// bounded worker pool like Fig7's; normalization against THP happens
// at row assembly, once every cell of a workload is in.
func Fig11For(p Params, names []string) (*Table, error) {
	t := &Table{
		Title:  "Fig 11: software runtime overhead normalized to THP",
		Header: []string{"workload", "thp", "ingens", "ca", "eager", "ranger"},
		Notes: []string{
			"paper shape: CA and eager add ~0; ranger ~3% (migrations); Ingens small",
		},
	}
	policies := []PolicyName{PolicyTHP, PolicyIngens, PolicyCA, PolicyEager, PolicyRanger}
	g := newGrid(len(names), len(policies))
	kernelNs := make([]uint64, g.size())
	err := forEach(g.size(), p.jobs(), func(i int) error {
		name := names[g.at(i, 0)]
		pol := policies[g.at(i, 1)]
		k, ds := newNativeKernel(p, pol, false)
		env := workloads.NewNativeEnv(k, 0)
		env.Daemons = ds
		env.NoRangeFault = p.NoRangeFault
		if err := workloads.ByName(name).Setup(env, rand.New(rand.NewSource(p.setupSeed()))); err != nil {
			return fmt.Errorf("fig11 %s/%s: %w", name, pol, err)
		}
		clockAfterSetup := k.Clock
		// Execution window: daemons (ranger migrations, Ingens
		// promotions) keep running; their added time is the
		// difference the model charges.
		settleDaemons(k, ds, 60)
		daemonWork := k.Clock - clockAfterSetup
		// settleDaemons advances the clock by the idle epochs
		// themselves; subtract that baseline so only the work time
		// (migrations/promotions/faults) counts.
		idle := uint64(60 * 2_100_000)
		if daemonWork >= idle {
			daemonWork -= idle
		} else {
			daemonWork = 0
		}
		kernelNs[i] = clockAfterSetup + daemonWork
		env.Exit()
		recycleKernel(k)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ni, name := range names {
		w := workloads.ByName(name)
		row := []string{w.Name()}
		thpNs := kernelNs[g.index(ni, 0)] // policies[0] is PolicyTHP
		for pi := range policies {
			row = append(row, f3(perfmodel.NormalizedRuntime(
				w.FootprintBytes(), kernelNs[g.index(ni, pi)], thpNs)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table5 reproduces the fault-latency comparison (Table V): total page
// faults and 99th-percentile fault latency (µs) across the whole suite
// for THP, CA, and eager paging.
func Table5(p Params) (*Table, error) { return Table5For(p, workloadNames()) }

// Table5For is the parameterized core of Table5. Every (policy,
// workload) cell runs on its own kernel, so the whole grid fans out on
// a worker pool; per-policy aggregation (fault sums and the latency
// percentile) is order-insensitive, so the table is identical to a
// sequential run.
func Table5For(p Params, names []string) (*Table, error) {
	t := &Table{
		Title:  "Table V: page faults and 99th percentile latency",
		Header: []string{"policy", "total faults", "p99 latency (us)"},
		Notes: []string{
			"paper shape: CA ~ THP latency (515 vs 526 us) and same fault count;",
			"eager: orders-of-magnitude higher tail latency, far fewer faults",
		},
	}
	policies := []PolicyName{PolicyTHP, PolicyCA, PolicyEager}
	type cellResult struct {
		faults uint64
		lats   []uint64
	}
	g := newGrid(len(policies), len(names))
	cells := make([]cellResult, g.size())
	err := forEach(len(cells), p.jobs(), func(i int) error {
		pol := policies[g.at(i, 0)]
		name := names[g.at(i, 1)]
		k, ds := newNativeKernel(p, pol, false)
		env := workloads.NewNativeEnv(k, 0)
		env.Daemons = ds
		env.NoRangeFault = p.NoRangeFault
		if err := workloads.ByName(name).Setup(env, rand.New(rand.NewSource(p.setupSeed()))); err != nil {
			return fmt.Errorf("table5 %s/%s: %w", name, pol, err)
		}
		// Stats (and the latency slice) live on the kernel, not the
		// machine; recycling only pools the machine, so the reference in
		// cells stays valid.
		cells[i] = cellResult{faults: k.Stats.TotalFaults(), lats: k.Stats.FaultLatencies}
		env.Exit()
		recycleKernel(k)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi, pol := range policies {
		var faults uint64
		var lats []uint64
		for ni := range names {
			c := cells[g.index(pi, ni)]
			faults += c.faults
			lats = append(lats, c.lats...)
		}
		p99us := float64(metrics.Percentile(lats, 0.99)) / 1000
		t.Rows = append(t.Rows, []string{string(pol), fmt.Sprint(faults), f1(p99us)})
	}
	return t, nil
}

// Table6 reproduces the memory-bloat comparison (Table VI): extra
// memory allocated versus 4 KiB demand paging, per workload and policy.
func Table6(p Params) (*Table, error) { return Table6For(p, workloadNames()) }

// Table6For is the parameterized core of Table6.
func Table6For(p Params, names []string) (*Table, error) {
	t := &Table{
		Title:  "Table VI: bloat vs 4K demand paging [MiB (overhead %)]",
		Header: []string{"policy", "svm", "pagerank", "hashjoin", "xsbench", "bt"},
		Notes: []string{
			"paper shape: THP ~ CA (MBs); Ingens lower; eager GBs (pre-allocates unused memory)",
		},
	}
	for _, pol := range []PolicyName{PolicyTHP, PolicyIngens, PolicyCA, PolicyEager} {
		row := []string{string(pol)}
		for _, name := range names {
			k, ds := newNativeKernel(p, pol, false)
			env := workloads.NewNativeEnv(k, 0)
			env.Daemons = ds
			env.NoRangeFault = p.NoRangeFault
			if err := workloads.ByName(name).Setup(env, rand.New(rand.NewSource(p.setupSeed()))); err != nil {
				return nil, fmt.Errorf("table6 %s/%s: %w", name, pol, err)
			}
			settleDaemons(k, ds, 30)
			mapped, touched := residency(env)
			bloatBytes := (mapped - touched) * 4096
			overheadPct := float64(bloatBytes) / float64(touched*4096) * 100
			row = append(row, fmt.Sprintf("%.1f (%.1f%%)", float64(bloatBytes)/(1<<20), overheadPct))
			env.Exit()
			recycleKernel(k)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// residency sums mapped and touched pages over the process's anonymous
// VMAs. Bloat is their difference: frames resident beyond what 4 KiB
// demand paging would have allocated.
func residency(env *workloads.Env) (mapped, touched uint64) {
	env.Proc.VMAs.Visit(func(v *vma.VMA) {
		if v.Kind != vma.Anonymous {
			return
		}
		mapped += v.MappedPages
		touched += v.TouchedPages()
	})
	return mapped, touched
}
