package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/mem/addr"
	"repro/internal/metrics"
	"repro/internal/osim"
	"repro/internal/workloads"
)

// Fig7 reproduces the native contiguity comparison (Fig. 7): for every
// workload and policy, footprint coverage by the 32 and 128 largest
// mappings and the number of mappings covering 99 %.
func Fig7(p Params) (*Table, error) {
	return Fig7For(p, workloadNames(), AllPolicies())
}

// Fig7For is the parameterized core of Fig7 (tests and benchmarks run
// subsets). The (workload, policy) cells are mutually independent —
// each builds its own kernel — so they run on a bounded worker pool;
// rows are assembled in grid order afterwards.
func Fig7For(p Params, names []string, policies []PolicyName) (*Table, error) {
	t := &Table{
		Title:  "Fig 7: native contiguity (no memory pressure)",
		Header: []string{"workload", "policy", "cov32", "cov128", "maps99"},
		Notes: []string{
			"paper shape: THP/Ingens need thousands of mappings; CA ~ eager ~ ideal need tens",
			"the paper's BT-vs-CA boundary effect appears in the 2D dimension (Figs. 12/14)",
		},
	}
	g := newGrid(len(names), len(policies))
	rows := make([][]string, g.size())
	err := forEach(len(rows), p.jobs(), func(i int) error {
		name := names[g.at(i, 0)]
		pol := policies[g.at(i, 1)]
		st, k, env, err := runNativeContig(p, workloads.ByName(name), pol)
		if err != nil {
			return err
		}
		env.Exit()
		recycleKernel(k)
		rows[i] = []string{
			name, string(pol), f3(st.Cov32), f3(st.Cov128), fmt.Sprint(st.Maps99),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	return t, nil
}

// Fig8 reproduces the fragmentation study (Fig. 8): geometric-mean
// contiguity across the workloads (BT excluded: its footprint does not
// fit the hogged machine, as in the paper) as hog pressure rises from
// 0 % to 50 %. NUMA is off (single zone), matching §VI-A.
func Fig8(p Params) (*Table, error) {
	return Fig8Sweep(p, []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5},
		[]string{"svm", "pagerank", "hashjoin", "xsbench"}, AllPolicies())
}

// Fig8Sweep is the parameterized core of Fig8. Every (pressure,
// policy, workload) cell builds its own hogged kernel, so the whole
// grid fans out on the bounded worker pool the way Fig7 does; the
// geomean rows are assembled from the per-cell results in grid order
// afterwards, so output is byte-identical at any Jobs level.
func Fig8Sweep(p Params, pressures []float64, names []string, policies []PolicyName) (*Table, error) {
	t := &Table{
		Title:  "Fig 8: contiguity under memory pressure (geomean, NUMA off)",
		Header: []string{"pressure", "policy", "cov32", "cov128", "maps99"},
		Notes: []string{
			"paper shape: eager collapses with pressure; CA tracks ideal; THP/Ingens flat and poor",
		},
	}
	type cell struct{ c32, c128, m99 float64 }
	g := newGrid(len(pressures), len(policies), len(names))
	cells := make([]cell, g.size())
	err := forEach(len(cells), p.jobs(), func(i int) error {
		pressure := pressures[g.at(i, 0)]
		pol := policies[g.at(i, 1)]
		name := names[g.at(i, 2)]
		k, ds := newNativeKernel(p, pol, true /* numaOff */)
		workloads.Hog(k.Machine, pressure, rand.New(rand.NewSource(42)))
		env := workloads.NewNativeEnv(k, 0)
		env.Daemons = ds
		env.NoRangeFault = p.NoRangeFault
		w := workloads.ByName(name)
		if err := w.Setup(env, rand.New(rand.NewSource(p.setupSeed()))); err != nil {
			return fmt.Errorf("fig8 %s/%s@%.0f%%: %w", name, pol, pressure*100, err)
		}
		settleDaemons(k, ds, p.SettleEpochs)
		st := contigOf(metrics.FromPageTable(env.Proc.PT))
		cells[i] = cell{c32: st.Cov32, c128: st.Cov128, m99: float64(st.Maps99)}
		env.Exit()
		recycleKernel(k)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi, pressure := range pressures {
		for qi, pol := range policies {
			var c32, c128, m99 []float64
			for ni := range names {
				c := cells[g.index(pi, qi, ni)]
				c32 = append(c32, c.c32)
				c128 = append(c128, c.c128)
				m99 = append(m99, c.m99)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("hog-%.0f%%", pressure*100), string(pol),
				f3(metrics.GeoMeanFrac(c32)), f3(metrics.GeoMeanFrac(c128)),
				f1(metrics.GeoMean(m99)),
			})
		}
	}
	return t, nil
}

// Fig9 reproduces the fragmentation-restraint study (Fig. 9): the
// distribution of free block sizes after the benchmark suite ran to
// completion under default vs CA paging. Size classes are scaled with
// the machine (≤2 MiB, ≤16 MiB, ≤64 MiB, >64 MiB).
func Fig9(p Params) (*Table, error) {
	t := &Table{
		Title:  "Fig 9: free block size distribution after benchmark suite",
		Header: []string{"policy", "<=2MiB", "<=16MiB", "<=64MiB", ">64MiB"},
		Notes: []string{
			"paper shape: CA leaves most free memory in the largest class; default scatters it",
		},
	}
	for _, pol := range []PolicyName{PolicyTHP, PolicyCA} {
		k, ds := newNativeKernel(p, pol, false)
		// The machine has aged before the suite runs (scattered
		// long-lived pages); the ageing is released before measuring,
		// so the remaining fragmentation is what each policy's own
		// allocations — chiefly the persistent page cache — left
		// behind.
		aged := workloads.HogFine(k.Machine, 0.12, rand.New(rand.NewSource(9)))
		// Run the full suite sequentially on the same machine: page
		// cache files persist, processes exit.
		for _, w := range workloads.All() {
			env := workloads.NewNativeEnv(k, 0)
			env.Daemons = ds
			env.NoRangeFault = p.NoRangeFault
			if err := w.Setup(env, rand.New(rand.NewSource(p.setupSeed()))); err != nil {
				return nil, fmt.Errorf("fig9 %s/%s: %w", w.Name(), pol, err)
			}
			env.Exit()
		}
		workloads.Unhog(k.Machine, aged)
		frac := freeBuckets(k, [3]uint64{
			addr.HugeSize / addr.PageSize,
			16 << 20 / addr.PageSize,
			64 << 20 / addr.PageSize,
		})
		t.Rows = append(t.Rows, []string{
			string(pol), f3(frac[0]), f3(frac[1]), f3(frac[2]), f3(frac[3]),
		})
		recycleKernel(k)
	}
	return t, nil
}

// freeBuckets buckets the machine's free-block histogram by the given
// page-count bounds, returning fractions of total free memory.
func freeBuckets(k *osim.Kernel, bounds [3]uint64) [4]float64 {
	hist := k.Machine.FreeBlockHistogram()
	var per [4]uint64
	var total uint64
	for size, count := range hist {
		pages := size * count
		total += pages
		switch {
		case size <= bounds[0]:
			per[0] += pages
		case size <= bounds[1]:
			per[1] += pages
		case size <= bounds[2]:
			per[2] += pages
		default:
			per[3] += pages
		}
	}
	var frac [4]float64
	if total == 0 {
		return frac
	}
	for i := range per {
		frac[i] = float64(per[i]) / float64(total)
	}
	return frac
}

// Fig10 reproduces the multi-programmed study (Fig. 10): two SVM
// instances populated in alternating bursts; 32-largest-mapping
// coverage of each instance under CA, eager, and ranger.
func Fig10(p Params) (*Table, error) {
	t := &Table{
		Title:  "Fig 10: two concurrent SVM instances (32-mapping coverage)",
		Header: []string{"policy", "instanceA cov32", "instanceB cov32", "maps99 A", "maps99 B"},
		Notes: []string{
			"paper shape: CA keeps both instances covered (next-fit separation); ranger struggles to serve two processes",
		},
	}
	for _, pol := range []PolicyName{PolicyCA, PolicyEager, PolicyRanger} {
		k, ds := newNativeKernel(p, pol, false)
		envA := workloads.NewNativeEnv(k, 0)
		envB := workloads.NewNativeEnv(k, 0)
		envA.Daemons = ds
		envB.Daemons = ds
		envA.NoRangeFault = p.NoRangeFault
		envB.NoRangeFault = p.NoRangeFault
		// Interleave the two setups burst-wise via goroutine-free
		// stepping: run each setup whole but alternating would need
		// coroutines; instead approximate the paper's concurrency by
		// populating A and B in interleaved manual bursts over two
		// plain anonymous footprints of SVM size.
		if err := interleavedSVMPair(envA, envB, workloads.NewSVM().FootprintBytes()); err != nil {
			return nil, err
		}
		settleDaemons(k, ds, p.SettleEpochs)
		// Measure after daemons settle (matters for ranger).
		stA := contigOf(metrics.FromPageTable(envA.Proc.PT))
		stB := contigOf(metrics.FromPageTable(envB.Proc.PT))
		t.Rows = append(t.Rows, []string{
			string(pol), f3(stA.Cov32), f3(stB.Cov32),
			fmt.Sprint(stA.Maps99), fmt.Sprint(stB.Maps99),
		})
		envA.Exit()
		envB.Exit()
		recycleKernel(k)
	}
	return t, nil
}

// interleavedSVMPair populates two size-byte anonymous footprints in
// alternating 8 MiB bursts — the time-sliced concurrency of two
// processes.
func interleavedSVMPair(envA, envB *workloads.Env, size uint64) error {
	va, err := envA.MMap(size)
	if err != nil {
		return err
	}
	vb, err := envB.MMap(size)
	if err != nil {
		return err
	}
	const burst = 8 << 20
	for off := uint64(0); off < size; off += burst {
		end := off + burst
		if end > size {
			end = size
		}
		if err := envA.PopulateRange(va, va.Start.Add(off), end-off); err != nil {
			return err
		}
		if err := envB.PopulateRange(vb, vb.Start.Add(off), end-off); err != nil {
			return err
		}
	}
	return nil
}

// Fig1b reproduces the motivation plot (Fig. 1b): 32-largest-mapping
// coverage of PageRank across 10 consecutive runs. Each run reads a
// fresh dataset file whose cache pages persist; under eager paging the
// scattered cache progressively destroys the aligned blocks
// pre-allocation needs, while CA paging sustains coverage.
func Fig1b(p Params) (*Table, error) {
	t := &Table{
		Title:  "Fig 1b: PageRank 32-mapping coverage over 10 consecutive runs",
		Header: []string{"run", "eager cov32", "ca cov32"},
		Notes: []string{
			"paper shape: eager degrades run over run under external fragmentation; CA sustains",
		},
	}
	results := map[PolicyName][]float64{}
	for _, pol := range []PolicyName{PolicyEager, PolicyCA} {
		k, ds := newNativeKernel(p, pol, false)
		for run := 0; run < 10; run++ {
			// Between runs the machine ages: long-lived pages (page
			// cache of other IO, daemon state) accumulate at scattered
			// physical locations, progressively destroying *aligned*
			// large blocks while leaving plenty of 2 MiB pages and
			// unaligned contiguity — the external-fragmentation regime
			// of the paper's Fig. 1b. Each run pins a further ~3 % of
			// memory in randomly placed 2 MiB chunks to model it.
			workloads.HogFine(k.Machine, 0.03, rand.New(rand.NewSource(int64(run)*7+1)))
			env := workloads.NewNativeEnv(k, 0)
			env.Daemons = ds
			env.NoRangeFault = p.NoRangeFault
			w := workloads.NewPageRank()
			if err := w.Setup(env, rand.New(rand.NewSource(p.Seed+int64(run)-1))); err != nil {
				return nil, fmt.Errorf("fig1b %s run %d: %w", pol, run, err)
			}
			st := contigOf(metrics.FromPageTable(env.Proc.PT))
			results[pol] = append(results[pol], st.Cov32)
			env.Exit()
			// Page-cache reclaim under pressure: each run's dataset
			// cache would otherwise accumulate without bound.
			k.Cache.ReclaimUnder(0.5)
		}
		recycleKernel(k)
	}
	for run := 0; run < 10; run++ {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(run + 1), f3(results[PolicyEager][run]), f3(results[PolicyCA][run]),
		})
	}
	return t, nil
}

// Fig1c reproduces the contiguity-generation timeline (Fig. 1c):
// XSBench's 32-largest coverage sampled during execution under CA
// paging (instant, at allocation) vs Translation Ranger (delayed,
// post-allocation migration).
func Fig1c(p Params) (*Table, error) {
	t := &Table{
		Title:  "Fig 1c: XSBench 32-mapping coverage timeline (CA vs ranger)",
		Header: []string{"progress", "ca cov32", "ranger cov32"},
		Notes: []string{
			"paper shape: CA reaches full coverage by end of allocation; ranger lags behind, converging later",
		},
	}
	type point struct{ ca, ranger float64 }
	const samples = 12
	series := make([]point, samples)
	for _, pol := range []PolicyName{PolicyCA, PolicyRanger} {
		k, ds := newNativeKernel(p, pol, false)
		// An aged machine: on a pristine simulator even the default
		// allocator lays memory out compactly, leaving Ranger nothing
		// to defragment. Real machines' scrambled free lists are what
		// make post-allocation migration necessary in the first place.
		workloads.HogFine(k.Machine, 0.15, rand.New(rand.NewSource(5)))
		env := workloads.NewNativeEnv(k, 0)
		env.Daemons = ds
		env.NoRangeFault = p.NoRangeFault
		sampler := &coverageSampler{env: env}
		env.Daemons = append(env.Daemons, sampler)
		w := workloads.NewXSBench()
		if err := w.Setup(env, rand.New(rand.NewSource(p.setupSeed()))); err != nil {
			return nil, fmt.Errorf("fig1c %s: %w", pol, err)
		}
		// Execution window: daemons keep working (ranger catches up).
		for i := 0; i < samples; i++ {
			settleDaemons(k, ds, 40)
			sampler.force()
		}
		pts := sampler.resample(samples)
		for i := range series {
			if pol == PolicyCA {
				series[i].ca = pts[i]
			} else {
				series[i].ranger = pts[i]
			}
		}
		env.Exit()
		recycleKernel(k)
	}
	for i, pt := range series {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d/%d", i+1, samples), f3(pt.ca), f3(pt.ranger),
		})
	}
	return t, nil
}

// coverageSampler records cov32 over logical time; it implements
// workloads.Daemon so the touch path drives it.
type coverageSampler struct {
	env     *workloads.Env
	every   uint64
	touches uint64
	points  []float64
}

// Maybe samples every ~4096 touches (cheap enough, frequent enough).
func (s *coverageSampler) Maybe() { s.MaybeN(1) }

// MaybeN absorbs n back-to-back polls, firing a sample at every exact
// crossing of the sampling period, just like n Maybe calls would. This
// is only valid because force reads the page table, which cannot change
// between polls of one quiet run — so samples taken "late" (all at the
// end of the run) record exactly what samples taken at each crossing
// would have recorded.
func (s *coverageSampler) MaybeN(n uint64) {
	every := s.every
	if every == 0 {
		every = 4096
	}
	prev := s.touches
	s.touches += n
	for k := prev/every + 1; k*every <= s.touches; k++ {
		s.force()
	}
}

func (s *coverageSampler) force() {
	ms := metrics.FromPageTable(s.env.Proc.PT)
	s.points = append(s.points, metrics.CoverageTopN(ms, 32))
}

// resample reduces the recorded series to n evenly spaced points,
// skipping the first few samples (a nearly-empty footprint is trivially
// "covered" by its one mapping).
func (s *coverageSampler) resample(n int) []float64 {
	out := make([]float64, n)
	pts := s.points
	if len(pts) > 8 {
		pts = pts[4:]
	}
	if len(pts) == 0 {
		return out
	}
	for i := 0; i < n; i++ {
		idx := i * (len(pts) - 1) / max(1, n-1)
		out[i] = pts[idx]
	}
	return out
}
