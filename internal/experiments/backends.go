package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/hw/translation"
	"repro/internal/osim"
	"repro/internal/perfmodel"
	"repro/internal/sim"
	"repro/internal/virt"
	"repro/internal/workloads"
)

// backendSet resolves the backends the figBackends matrix runs: the
// full cross-product by default, or the single backend Params.Backend
// selects.
func backendSet(p Params) ([]string, error) {
	if p.Backend == "" {
		return translation.Names(), nil
	}
	for _, n := range translation.Names() {
		if n == p.Backend {
			return []string{n}, nil
		}
	}
	return nil, fmt.Errorf("figBackends: unknown backend %q (have %v)", p.Backend, translation.Names())
}

// FigBackends runs the Virtuoso-style scenario matrix: every workload,
// native and virtualized (CA paging, THP on), across every translation
// backend; cells are translation overhead under the backend's own cost
// model (perfmodel.BackendOverhead). The paged column reproduces the
// baseline stack's numbers; hashed flattens the radix walk to a probe
// chain (its win grows with nesting); rmm and ds hide the walk behind
// ranges/segments and pay only uncovered fallbacks.
func FigBackends(p Params) (*Table, error) {
	backends, err := backendSet(p)
	if err != nil {
		return nil, err
	}
	names := workloadNames()
	modes := []string{"native", "virt"}
	t := &Table{
		Title:  "figBackends: translation backend matrix (CA paging, THP)",
		Header: append([]string{"workload", "mode"}, backends...),
		Notes: []string{
			"overhead = backend translation cycles / ideal cycles (perfmodel.BackendOverhead)",
			"paged = TLB+walker baseline; hashed = flattened table, ~1 ref/translation;",
			"rmm/ds pay only range-/segment-uncovered fallback walks",
		},
	}
	// One independent simulation per (workload, mode, backend) cell,
	// fanned out on the shared worker pool; each writes an index-owned
	// slot, so the rendered table is identical at any Jobs value.
	type cellKey struct{ wi, mi, bi int }
	cells := make([]cellKey, 0, len(names)*len(modes)*len(backends))
	for wi := range names {
		for mi := range modes {
			for bi := range backends {
				cells = append(cells, cellKey{wi, mi, bi})
			}
		}
	}
	results := make([]sim.Result, len(cells))
	if err := forEach(len(cells), p.jobs(), func(i int) error {
		c := cells[i]
		name, backend := names[c.wi], backends[c.bi]
		var env *workloads.Env
		var vm *virt.VM
		var k *osim.Kernel
		if modes[c.mi] == "virt" {
			var err error
			vm, _, err = newVM(p, PolicyCA, PolicyCA)
			if err != nil {
				return err
			}
			env = workloads.NewVirtEnv(vm, 0)
		} else {
			k, _ = newNativeKernel(p, PolicyCA, false)
			env = workloads.NewNativeEnv(k, 0)
		}
		env.NoRangeFault = p.NoRangeFault
		wl := workloads.ByName(name)
		tr := p.Tracer
		start := tr.Start()
		if err := wl.Setup(env, rand.New(rand.NewSource(p.setupSeed()))); err != nil {
			return fmt.Errorf("figBackends %s/%s: %w", name, backend, err)
		}
		tr.EmitPhase(name+"/"+backend+"/setup", start)
		start = tr.Start()
		res, err := sim.Run(env, wl.Stream(rand.New(rand.NewSource(p.streamSeed())), p.StreamLen),
			sim.Config{Backend: backend, NoWalkCache: p.NoWalkCache, Tracer: p.Tracer})
		tr.EmitPhase(name+"/"+backend+"/measure", start)
		if err != nil {
			return fmt.Errorf("figBackends %s/%s/%s: %w", name, modes[c.mi], backend, err)
		}
		if vm != nil {
			recycleVM(vm)
		} else {
			recycleKernel(k)
		}
		results[c.wi*len(modes)*len(backends)+c.mi*len(backends)+c.bi] = res
		return nil
	}); err != nil {
		return nil, err
	}
	sums := make([][]float64, len(modes)) // per mode, per backend, overhead %
	for mi := range sums {
		sums[mi] = make([]float64, len(backends))
	}
	for wi, name := range names {
		for mi, mode := range modes {
			row := []string{name, mode}
			for bi := range backends {
				res := results[wi*len(modes)*len(backends)+mi*len(backends)+bi]
				o := perfmodel.BackendOverhead(res)
				row = append(row, pct(o))
				sums[mi][bi] += o * 100
			}
			t.Rows = append(t.Rows, row)
		}
	}
	for mi, mode := range modes {
		row := []string{"mean", mode}
		for bi := range backends {
			row = append(row, fmt.Sprintf("%.2f%%", sums[mi][bi]/float64(len(names))))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
