package experiments

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/tracein"
)

// FigReplay drives the trace-replay serving path (DESIGN.md §14) as an
// experiment: one synthesized multi-tenant trace drained through the
// sharded replay engine across a shards × policy grid. Every cell
// audits the whole machine at drain and reports only deterministic
// counters — event/fault/access totals, translate-cost percentiles,
// and the trajectory digest prefix — so the table is golden-hashable
// and identical at any Jobs setting.
func FigReplay(p Params) (*Table, error) {
	// The trace scales with StreamLen so golden runs stay cheap; the
	// fixed divisor keeps the full-size table (-exp figReplay) at a
	// few hundred thousand events.
	events := int(p.StreamLen / 5)
	if events < 1000 {
		events = 1000
	}
	trc := tracein.Synth(tracein.SynthConfig{
		Seed: p.Seed, Events: events, Tenants: 4,
	})

	type cell struct {
		shards int
		policy string
	}
	grid := []cell{
		{1, check.PolicyDefault},
		{1, check.PolicyCA},
		{2, check.PolicyDefault},
		{2, check.PolicyCA},
	}
	results := make([]tracein.Result, len(grid))
	if err := forEach(len(grid), p.jobs(), func(i int) error {
		c := grid[i]
		e, err := tracein.NewEngine(tracein.ReplayConfig{
			Shards: c.shards, Jobs: 1, Policy: c.policy, Tracer: p.Tracer,
		})
		if err != nil {
			return fmt.Errorf("figReplay %d/%s: %w", c.shards, c.policy, err)
		}
		defer e.Close()
		if err := e.ReplayEvents(trc); err != nil {
			return fmt.Errorf("figReplay %d/%s: replay: %w", c.shards, c.policy, err)
		}
		if err := e.Audit(); err != nil {
			return fmt.Errorf("figReplay %d/%s: drain audit: %w", c.shards, c.policy, err)
		}
		results[i] = e.Result()
		return nil
	}); err != nil {
		return nil, err
	}

	t := &Table{
		Title: "figReplay: trace replay across zone shards and policies",
		Header: []string{"shards", "policy", "events", "skipped", "ooms",
			"faults", "accesses", "misses", "p50cyc", "p99cyc", "digest"},
		Notes: []string{
			fmt.Sprintf("one Synth trace (seed %d, %d events, 4 tenants) drained per cell; audit passes at drain", p.Seed, events),
			"digest = trajectory sha256 prefix; identical at any replay Jobs (pinned by the differential replay test)",
		},
	}
	for i, c := range grid {
		r := results[i]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", c.shards),
			c.policy,
			fmt.Sprintf("%d", r.Events),
			fmt.Sprintf("%d", r.Skipped),
			fmt.Sprintf("%d", r.OOMs),
			fmt.Sprintf("%d", r.Faults),
			fmt.Sprintf("%d", r.Accesses),
			fmt.Sprintf("%d", r.Misses),
			fmt.Sprintf("%d", r.P50Cycles),
			fmt.Sprintf("%d", r.P99Cycles),
			r.Digest()[:12],
		})
	}
	return t, nil
}
