// Package runner executes sets of experiment drivers concurrently on a
// bounded worker pool. The paper's evaluation (§VI) is a matrix of
// mutually independent policy × workload × scheme runs; every driver is
// deterministic in its Params and shares no mutable state with any
// other, so the only observable difference between a sequential and a
// parallel sweep is wall-clock time. The runner preserves that
// guarantee structurally: results come back in the caller's ID order
// regardless of completion order, and each result carries its own
// wall-clock timing.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/experiments"
)

// Result is one experiment's outcome.
type Result struct {
	// ID is the registry ID the driver was looked up under.
	ID string
	// Table is the rendered-ready result (nil when Err is set or the
	// run was cancelled before this experiment started).
	Table *experiments.Table
	// Elapsed is the driver's wall-clock time (zero if never started).
	Elapsed time.Duration
	// Err is the driver's error, or the context's error for
	// experiments cancelled before they started.
	Err error
}

// Run executes the drivers for ids on at most jobs concurrent workers
// (jobs <= 0 means GOMAXPROCS; jobs == 1 is strictly sequential in ID
// order, the historical cmd/reproduce behaviour). Unknown IDs fail
// before any driver starts. The first driver error cancels the pool:
// running drivers finish (they are not preemptible), queued ones are
// abandoned with the cancellation error. The returned slice always has
// one entry per requested ID, in the requested order; the error is the
// first failure in ID order, or ctx's error, or nil.
func Run(ctx context.Context, ids []string, p experiments.Params, jobs int) ([]Result, error) {
	drivers := make([]experiments.Driver, len(ids))
	for i, id := range ids {
		d, err := experiments.Lookup(id)
		if err != nil {
			return nil, err
		}
		drivers[i] = d
	}
	return RunDrivers(ctx, ids, drivers, p, jobs)
}

// RunDrivers is Run for callers that already hold the drivers (or
// substitute ones — tests inject failing and blocking drivers here):
// drivers[i] runs under the label ids[i], with the same pool, ordering,
// cancellation, and error-reporting contract as Run.
func RunDrivers(ctx context.Context, ids []string, drivers []experiments.Driver, p experiments.Params, jobs int) ([]Result, error) {
	if len(ids) != len(drivers) {
		return nil, fmt.Errorf("runner: %d ids but %d drivers", len(ids), len(drivers))
	}
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(ids) {
		jobs = len(ids)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]Result, len(ids))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := ctx.Err(); err != nil {
					results[i] = Result{ID: ids[i], Err: err}
					continue
				}
				start := time.Now()
				tab, err := drivers[i](p)
				results[i] = Result{ID: ids[i], Table: tab, Elapsed: time.Since(start), Err: err}
				if err != nil {
					cancel()
				}
			}
		}()
	}
	for i := range ids {
		next <- i
	}
	close(next)
	wg.Wait()

	// Report a real driver failure over the cancellation noise it
	// caused in experiments abandoned behind it.
	var firstErr error
	for i := range results {
		err := results[i].Err
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return results, fmt.Errorf("%s: %w", results[i].ID, err)
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("%s: %w", results[i].ID, err)
		}
	}
	return results, firstErr
}
