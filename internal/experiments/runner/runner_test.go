package runner

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
)

// testParams keeps the determinism sweep fast: a reduced but
// representative stream and settle window, identical for both runs.
func testParams() experiments.Params {
	return experiments.Params{StreamLen: 100_000, SettleEpochs: 100, Seed: 1}
}

// render flattens a result set to the bytes cmd/reproduce would print
// (tables only — timing lines are wall-clock and excluded on purpose).
func render(t *testing.T, results []Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.ID, r.Err)
		}
		r.Table.Render(&buf)
	}
	return buf.Bytes()
}

// TestParallelMatchesSequential is the determinism gate of the issue:
// a parallel sweep must produce byte-identical tables, in identical
// order, to a strictly sequential one. The ID set mixes contiguity,
// translation, and ablation drivers, including the two whose knobs
// (offset budget, eager rotor) used to be package globals.
func TestParallelMatchesSequential(t *testing.T) {
	ids := []string{
		"fig9", "fig10", "table5", "ablation-placement",
		"ablation-offsets", "fig14", "extra-5level",
	}
	p := testParams()
	seq, err := Run(context.Background(), ids, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(context.Background(), ids, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	seqOut, parOut := render(t, seq), render(t, par)
	if !bytes.Equal(seqOut, parOut) {
		t.Fatalf("parallel output differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seqOut, parOut)
	}
	for i, r := range par {
		if r.ID != ids[i] {
			t.Fatalf("result %d is %q, want %q (registry order lost)", i, r.ID, ids[i])
		}
		if r.Elapsed <= 0 {
			t.Fatalf("%s: missing wall-clock timing", r.ID)
		}
	}
}

// TestRepeatedRunsIdentical guards against hidden shared state *within*
// one driver set: running the same sweep twice in one process must not
// drift (the old eager rotor global accumulated across runs). fig1b is
// included because its reclaim path once freed page-cache frames in map
// order, scrambling the buddy lists differently every run.
func TestRepeatedRunsIdentical(t *testing.T) {
	ids := []string{"fig10", "table5", "fig1b"}
	p := testParams()
	first, err := Run(context.Background(), ids, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(context.Background(), ids, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := render(t, first), render(t, second); !bytes.Equal(a, b) {
		t.Fatalf("same Params drifted between runs:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

func TestUnknownIDFailsFast(t *testing.T) {
	t.Parallel()
	if _, err := Run(context.Background(), []string{"fig9", "nope"}, testParams(), 2); err == nil {
		t.Fatal("unknown id should fail before any driver runs")
	}
}

func TestCancelledContext(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := Run(ctx, []string{"fig9", "fig10"}, testParams(), 2)
	if err == nil {
		t.Fatal("cancelled context should surface an error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) != 2 {
		t.Fatalf("want one result slot per id, got %d", len(results))
	}
}

func TestDefaultJobs(t *testing.T) {
	t.Parallel()
	// jobs <= 0 must resolve to a sane pool, not hang or panic.
	results, err := Run(context.Background(), []string{"ablation-placement"}, testParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Table == nil || results[0].Elapsed <= 0 {
		t.Fatal("driver did not run")
	}
}

// reducedParams shrinks the sweep further for the two full-registry
// gates below: every registered experiment runs twice under -race, so
// the stream and settle window are cut to keep the suite fast while
// still exercising every driver's population and measurement paths.
func reducedParams() experiments.Params {
	return experiments.Params{StreamLen: 30_000, SettleEpochs: 40, Seed: 1}
}

// TestRangeFaultToggleMatches is the batching contract of the
// range-fault fast path, pinned across the *entire* registry: disabling
// the batched population path (falling back to the historical per-page
// Touch loop with a full daemon poll after every touch) must not change
// a single byte of any table. Population order, fault accounting,
// daemon firing points, and logical clocks are all observable in the
// tables, so this is an end-to-end equivalence proof.
func TestRangeFaultToggleMatches(t *testing.T) {
	ids := experiments.IDs()
	p := reducedParams()
	batched, err := Run(context.Background(), ids, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	p.NoRangeFault = true
	perPage, err := Run(context.Background(), ids, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := render(t, batched), render(t, perPage); !bytes.Equal(a, b) {
		t.Fatalf("range-fault toggle changed output:\n--- batched ---\n%s\n--- per-page ---\n%s", a, b)
	}
}

// TestFig8JobsInvariance pins the fan-out of the fragmentation sweep:
// the (pressure, policy, workload) grid runs cell-per-worker now, and
// the geomean rows assembled from the cells must be byte-identical at
// any parallelism level.
func TestFig8JobsInvariance(t *testing.T) {
	ids := []string{"fig8"}
	p := reducedParams()
	p.Jobs = 1
	seq, err := Run(context.Background(), ids, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.Jobs = 8
	par, err := Run(context.Background(), ids, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := render(t, seq), render(t, par); !bytes.Equal(a, b) {
		t.Fatalf("fig8 output depends on Jobs:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", a, b)
	}
}

// TestWalkCacheToggleMatches extends the determinism gate across the
// walk-cache toggle: disabling the memo must not change a single byte
// of any translation table — the cache is a pure execution
// optimization, kept honest by its generation-based self-invalidation.
func TestWalkCacheToggleMatches(t *testing.T) {
	ids := []string{"fig13", "fig14", "table7", "extra-shadow", "ablation-confidence"}
	p := testParams()
	cached, err := Run(context.Background(), ids, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	p.NoWalkCache = true
	uncached, err := Run(context.Background(), ids, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := render(t, cached), render(t, uncached); !bytes.Equal(a, b) {
		t.Fatalf("walk-cache toggle changed output:\n--- cached ---\n%s\n--- uncached ---\n%s", a, b)
	}
}

// TestFirstErrorCancelsPool is the error-path counterpart of the
// determinism tests: one driver fails, and the pool must (a) report
// that real error rather than the cancellation noise behind it, (b)
// abandon every queued driver without starting it, and (c) leak no
// goroutines. A second in-flight driver is gated so it provably
// overlaps the failure.
func TestFirstErrorCancelsPool(t *testing.T) {
	baseline := runtime.NumGoroutine()
	errBoom := errors.New("boom")
	failed := make(chan struct{})
	var started atomic.Int32

	fail := func(experiments.Params) (*experiments.Table, error) {
		started.Add(1)
		close(failed)
		return nil, errBoom
	}
	gated := func(experiments.Params) (*experiments.Table, error) {
		started.Add(1)
		<-failed // hold this worker until the failure has happened
		return &experiments.Table{}, nil
	}
	queued := func(experiments.Params) (*experiments.Table, error) {
		started.Add(1)
		return &experiments.Table{}, nil
	}

	ids := []string{"gated", "fail", "q1", "q2", "q3", "q4"}
	drivers := []experiments.Driver{gated, fail, queued, queued, queued, queued}
	results, err := RunDrivers(context.Background(), ids, drivers, experiments.Params{}, 2)
	if !errors.Is(err, errBoom) {
		t.Fatalf("pool error = %v, want the driver's own error", err)
	}
	if err == nil || !strings.Contains(err.Error(), "fail") {
		t.Fatalf("pool error %q does not name the failing experiment", err)
	}
	if n := started.Load(); n != 2 {
		t.Fatalf("%d drivers started, want exactly the 2 in flight at failure time", n)
	}
	if len(results) != len(ids) {
		t.Fatalf("%d results for %d ids", len(results), len(ids))
	}
	if results[0].Err != nil || results[0].Table == nil {
		t.Fatalf("in-flight driver result corrupted: %+v", results[0])
	}
	if !errors.Is(results[1].Err, errBoom) {
		t.Fatalf("failing driver result = %+v, want errBoom", results[1])
	}
	for _, r := range results[2:] {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("queued %s: err = %v, want context.Canceled", r.ID, r.Err)
		}
		if r.Table != nil || r.Elapsed != 0 {
			t.Fatalf("queued %s ran anyway: %+v", r.ID, r)
		}
	}

	// Worker goroutines must be gone. No third-party leak detector in
	// this module, so poll the counter back to (near) baseline.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d at start", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunDriversLengthMismatch pins the ids/drivers contract.
func TestRunDriversLengthMismatch(t *testing.T) {
	_, err := RunDrivers(context.Background(), []string{"a", "b"}, []experiments.Driver{nil}, experiments.Params{}, 1)
	if err == nil {
		t.Fatal("mismatched ids/drivers accepted")
	}
}
