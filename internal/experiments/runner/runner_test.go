package runner

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/experiments"
)

// testParams keeps the determinism sweep fast: a reduced but
// representative stream and settle window, identical for both runs.
func testParams() experiments.Params {
	return experiments.Params{StreamLen: 100_000, SettleEpochs: 100, Seed: 1}
}

// render flattens a result set to the bytes cmd/reproduce would print
// (tables only — timing lines are wall-clock and excluded on purpose).
func render(t *testing.T, results []Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.ID, r.Err)
		}
		r.Table.Render(&buf)
	}
	return buf.Bytes()
}

// TestParallelMatchesSequential is the determinism gate of the issue:
// a parallel sweep must produce byte-identical tables, in identical
// order, to a strictly sequential one. The ID set mixes contiguity,
// translation, and ablation drivers, including the two whose knobs
// (offset budget, eager rotor) used to be package globals.
func TestParallelMatchesSequential(t *testing.T) {
	ids := []string{
		"fig9", "fig10", "table5", "ablation-placement",
		"ablation-offsets", "fig14", "extra-5level",
	}
	p := testParams()
	seq, err := Run(context.Background(), ids, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(context.Background(), ids, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	seqOut, parOut := render(t, seq), render(t, par)
	if !bytes.Equal(seqOut, parOut) {
		t.Fatalf("parallel output differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seqOut, parOut)
	}
	for i, r := range par {
		if r.ID != ids[i] {
			t.Fatalf("result %d is %q, want %q (registry order lost)", i, r.ID, ids[i])
		}
		if r.Elapsed <= 0 {
			t.Fatalf("%s: missing wall-clock timing", r.ID)
		}
	}
}

// TestRepeatedRunsIdentical guards against hidden shared state *within*
// one driver set: running the same sweep twice in one process must not
// drift (the old eager rotor global accumulated across runs). fig1b is
// included because its reclaim path once freed page-cache frames in map
// order, scrambling the buddy lists differently every run.
func TestRepeatedRunsIdentical(t *testing.T) {
	ids := []string{"fig10", "table5", "fig1b"}
	p := testParams()
	first, err := Run(context.Background(), ids, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(context.Background(), ids, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := render(t, first), render(t, second); !bytes.Equal(a, b) {
		t.Fatalf("same Params drifted between runs:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

func TestUnknownIDFailsFast(t *testing.T) {
	t.Parallel()
	if _, err := Run(context.Background(), []string{"fig9", "nope"}, testParams(), 2); err == nil {
		t.Fatal("unknown id should fail before any driver runs")
	}
}

func TestCancelledContext(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := Run(ctx, []string{"fig9", "fig10"}, testParams(), 2)
	if err == nil {
		t.Fatal("cancelled context should surface an error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) != 2 {
		t.Fatalf("want one result slot per id, got %d", len(results))
	}
}

func TestDefaultJobs(t *testing.T) {
	t.Parallel()
	// jobs <= 0 must resolve to a sane pool, not hang or panic.
	results, err := Run(context.Background(), []string{"ablation-placement"}, testParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Table == nil || results[0].Elapsed <= 0 {
		t.Fatal("driver did not run")
	}
}

// reducedParams shrinks the sweep further for the two full-registry
// gates below: every registered experiment runs twice under -race, so
// the stream and settle window are cut to keep the suite fast while
// still exercising every driver's population and measurement paths.
func reducedParams() experiments.Params {
	return experiments.Params{StreamLen: 30_000, SettleEpochs: 40, Seed: 1}
}

// TestRangeFaultToggleMatches is the batching contract of the
// range-fault fast path, pinned across the *entire* registry: disabling
// the batched population path (falling back to the historical per-page
// Touch loop with a full daemon poll after every touch) must not change
// a single byte of any table. Population order, fault accounting,
// daemon firing points, and logical clocks are all observable in the
// tables, so this is an end-to-end equivalence proof.
func TestRangeFaultToggleMatches(t *testing.T) {
	ids := experiments.IDs()
	p := reducedParams()
	batched, err := Run(context.Background(), ids, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	p.NoRangeFault = true
	perPage, err := Run(context.Background(), ids, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := render(t, batched), render(t, perPage); !bytes.Equal(a, b) {
		t.Fatalf("range-fault toggle changed output:\n--- batched ---\n%s\n--- per-page ---\n%s", a, b)
	}
}

// TestFig8JobsInvariance pins the fan-out of the fragmentation sweep:
// the (pressure, policy, workload) grid runs cell-per-worker now, and
// the geomean rows assembled from the cells must be byte-identical at
// any parallelism level.
func TestFig8JobsInvariance(t *testing.T) {
	ids := []string{"fig8"}
	p := reducedParams()
	p.Jobs = 1
	seq, err := Run(context.Background(), ids, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.Jobs = 8
	par, err := Run(context.Background(), ids, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := render(t, seq), render(t, par); !bytes.Equal(a, b) {
		t.Fatalf("fig8 output depends on Jobs:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", a, b)
	}
}

// TestWalkCacheToggleMatches extends the determinism gate across the
// walk-cache toggle: disabling the memo must not change a single byte
// of any translation table — the cache is a pure execution
// optimization, kept honest by its generation-based self-invalidation.
func TestWalkCacheToggleMatches(t *testing.T) {
	ids := []string{"fig13", "fig14", "table7", "extra-shadow", "ablation-confidence"}
	p := testParams()
	cached, err := Run(context.Background(), ids, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	p.NoWalkCache = true
	uncached, err := Run(context.Background(), ids, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := render(t, cached), render(t, uncached); !bytes.Equal(a, b) {
		t.Fatalf("walk-cache toggle changed output:\n--- cached ---\n%s\n--- uncached ---\n%s", a, b)
	}
}
