package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/hw/walker"
	"repro/internal/metrics"
	"repro/internal/osim"
	"repro/internal/perfmodel"
	"repro/internal/sim"
	"repro/internal/virt"
	"repro/internal/workloads"
)

// translationRun holds every measurement Fig. 13/14 and Table VII need
// for one workload.
type translationRun struct {
	name                string
	native4K, nativeTHP sim.Result
	virt4K, virtTHP     sim.Result // default paging, no schemes
	caTHP               sim.Result // CA/CA with schemes enabled
}

// runTranslation measures one workload under all Fig. 13 configurations.
func runTranslation(p Params, name string) (translationRun, error) {
	out := translationRun{name: name}
	run := func(virtual bool, thp bool, policy PolicyName, schemes bool) (sim.Result, error) {
		var env *workloads.Env
		var vm *virt.VM
		var k *osim.Kernel
		if virtual {
			var err error
			vm, _, err = newVM(p, policy, policy)
			if err != nil {
				return sim.Result{}, err
			}
			vm.Guest.THPEnabled = thp
			vm.Host.THPEnabled = thp
			env = workloads.NewVirtEnv(vm, 0)
		} else {
			k, _ = newNativeKernel(p, policy, false)
			k.THPEnabled = thp
			env = workloads.NewNativeEnv(k, 0)
		}
		env.NoRangeFault = p.NoRangeFault
		w := workloads.ByName(name)
		tr := p.Tracer
		start := tr.Start()
		if err := w.Setup(env, rand.New(rand.NewSource(p.setupSeed()))); err != nil {
			return sim.Result{}, fmt.Errorf("%s setup: %w", name, err)
		}
		tr.EmitPhase(name+"/setup", start)
		start = tr.Start()
		res, err := sim.Run(env, w.Stream(rand.New(rand.NewSource(p.streamSeed())), p.StreamLen), sim.Config{EnableSchemes: schemes, NoWalkCache: p.NoWalkCache, Tracer: p.Tracer})
		tr.EmitPhase(name+"/measure", start)
		if err == nil {
			if vm != nil {
				recycleVM(vm)
			} else {
				recycleKernel(k)
			}
		}
		return res, err
	}
	// The five configurations are independent simulations (each builds
	// its own kernel/VM), so they run on the shared worker pool. Each
	// writes an index-owned field; identical output to the sequential
	// original.
	configs := []struct {
		dst          *sim.Result
		virtual, thp bool
		policy       PolicyName
		schemes      bool
	}{
		{&out.native4K, false, false, PolicyTHP, false},
		{&out.nativeTHP, false, true, PolicyTHP, false},
		{&out.virt4K, true, false, PolicyTHP, false},
		{&out.virtTHP, true, true, PolicyTHP, false},
		{&out.caTHP, true, true, PolicyCA, true},
	}
	err := forEach(len(configs), p.jobs(), func(i int) error {
		c := configs[i]
		res, err := run(c.virtual, c.thp, c.policy, c.schemes)
		if err != nil {
			return err
		}
		*c.dst = res
		return nil
	})
	return out, err
}

// Fig13 reproduces the translation-overhead comparison (Fig. 13):
// execution-time overhead of data-TLB misses for native and virtualized
// base/huge pages, and for SpOT, vRMM, and Direct Segments on top of
// CA paging in both dimensions.
func Fig13(p Params) (*Table, error) { return Fig13For(p, workloadNames()) }

// Fig13For is the parameterized core of Fig13.
func Fig13For(p Params, names []string) (*Table, error) {
	t := &Table{
		Title:  "Fig 13: execution time overhead of TLB misses (virtualized focus)",
		Header: []string{"workload", "4K", "THP", "4K+4K", "THP+THP", "SpOT", "vRMM", "DS"},
		Notes: []string{
			"paper shape: vTHP ~16.5% avg; SpOT ~0.9%; vRMM <0.1%; DS ~0",
		},
	}
	runs := make([]translationRun, len(names))
	if err := forEach(len(names), p.jobs(), func(i int) error {
		r, err := runTranslation(p, names[i])
		if err != nil {
			return err
		}
		runs[i] = r
		return nil
	}); err != nil {
		return nil, err
	}
	var thpN, vthpN, spotN, rmmN, dsN []float64
	for _, r := range runs {
		name := r.name
		c := walker.DefaultCosts()
		o4k := perfmodel.PagingOverhead(r.native4K)
		othp := perfmodel.PagingOverhead(r.nativeTHP)
		ov4k := perfmodel.PagingOverhead(r.virt4K)
		ovthp := perfmodel.PagingOverhead(r.virtTHP)
		ospot := perfmodel.SpotOverhead(r.caTHP)
		ormm := perfmodel.RMMOverhead(r.caTHP)
		ods := perfmodel.DSOverhead(r.caTHP, c.Nested4K4K)
		t.Rows = append(t.Rows, []string{
			name, pct(o4k), pct(othp), pct(ov4k), pct(ovthp), pct(ospot), pct(ormm), pct(ods),
		})
		thpN = append(thpN, othp*100)
		vthpN = append(vthpN, ovthp*100)
		spotN = append(spotN, ospot*100)
		rmmN = append(rmmN, ormm*100)
		dsN = append(dsN, ods*100)
	}
	t.Rows = append(t.Rows, []string{
		"mean", "-", fmt.Sprintf("%.2f%%", meanF(thpN)), "-",
		fmt.Sprintf("%.2f%%", meanF(vthpN)), fmt.Sprintf("%.2f%%", meanF(spotN)),
		fmt.Sprintf("%.2f%%", meanF(rmmN)), fmt.Sprintf("%.2f%%", meanF(dsN)),
	})
	return t, nil
}

func meanF(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Fig14 reproduces the SpOT outcome breakdown (Fig. 14): the fraction
// of last-level TLB misses predicted correctly, mispredicted, and not
// predicted, in virtualized execution with CA paging.
func Fig14(p Params) (*Table, error) { return Fig14For(p, workloadNames()) }

// Fig14For is the parameterized core of Fig14.
func Fig14For(p Params, names []string) (*Table, error) {
	t := &Table{
		Title:  "Fig 14: SpOT prediction outcome breakdown (virtualized, CA paging)",
		Header: []string{"workload", "correct", "mispredict", "no-prediction"},
		Notes: []string{
			"paper shape: correct >99% for pagerank; mispredictions never above ~5%;",
			"svm carries the largest irregular no-prediction tail",
		},
	}
	results := make([]sim.Result, len(names))
	if err := forEach(len(names), p.jobs(), func(i int) error {
		name := names[i]
		vm, _, err := newVM(p, PolicyCA, PolicyCA)
		if err != nil {
			return err
		}
		env := workloads.NewVirtEnv(vm, 0)
		env.NoRangeFault = p.NoRangeFault
		wl := workloads.ByName(name)
		if err := wl.Setup(env, rand.New(rand.NewSource(p.setupSeed()))); err != nil {
			return fmt.Errorf("fig14 %s: %w", name, err)
		}
		res, err := sim.Run(env, wl.Stream(rand.New(rand.NewSource(p.streamSeed())), p.StreamLen), sim.Config{EnableSchemes: true, NoWalkCache: p.NoWalkCache, Tracer: p.Tracer})
		if err != nil {
			return err
		}
		results[i] = res
		recycleVM(vm)
		return nil
	}); err != nil {
		return nil, err
	}
	for i, res := range results {
		total := float64(res.Misses)
		if total == 0 {
			total = 1
		}
		t.Rows = append(t.Rows, []string{
			names[i],
			pct(float64(res.SpotCorrect) / total),
			pct(float64(res.SpotMispredict) / total),
			pct(float64(res.SpotNoPred) / total),
		})
	}
	return t, nil
}

// Table7 reproduces the unsafe-load estimation (Table VII): geometric
// means of branch and DTLB-miss densities and the resulting Spectre vs
// SpOT USL percentages.
func Table7(p Params) (*Table, error) { return Table7For(p, workloadNames()) }

// Table7For is the parameterized core of Table7.
func Table7For(p Params, names []string) (*Table, error) {
	t := &Table{
		Title:  "Table VII: estimation of unsafe load instructions (USL)",
		Header: []string{"branches/instr", "dtlb misses/instr", "spectre USL/instr", "spot USL/instr"},
		Notes: []string{
			"paper: 5.87% / 0.25% / 16.5% / 2.9% — SpOT's transient windows are longer",
			"but far rarer than branch speculation, so SpOT USLs stay several x fewer",
		},
	}
	ests := make([]perfmodel.USLEstimate, len(names))
	if err := forEach(len(names), p.jobs(), func(i int) error {
		name := names[i]
		vm, _, err := newVM(p, PolicyCA, PolicyCA)
		if err != nil {
			return err
		}
		env := workloads.NewVirtEnv(vm, 0)
		env.NoRangeFault = p.NoRangeFault
		wl := workloads.ByName(name)
		if err := wl.Setup(env, rand.New(rand.NewSource(p.setupSeed()))); err != nil {
			return fmt.Errorf("table7 %s: %w", name, err)
		}
		res, err := sim.Run(env, wl.Stream(rand.New(rand.NewSource(p.streamSeed())), p.StreamLen), sim.Config{NoWalkCache: p.NoWalkCache, Tracer: p.Tracer})
		if err != nil {
			return err
		}
		ests[i] = perfmodel.EstimateUSL(res)
		recycleVM(vm)
		return nil
	}); err != nil {
		return nil, err
	}
	var missPct, spotPct []float64
	var est perfmodel.USLEstimate
	for _, e := range ests {
		est = e
		missPct = append(missPct, e.DTLBMissesPerInstrPct)
		spotPct = append(spotPct, e.SpOTUSLPct)
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("%.2f%%", est.BranchesPerInstrPct),
		fmt.Sprintf("%.2f%%", metrics.GeoMeanFrac(missPct)),
		fmt.Sprintf("%.1f%%", est.SpectreUSLPct),
		fmt.Sprintf("%.1f%%", metrics.GeoMeanFrac(spotPct)),
	})
	return t, nil
}
