package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// parsePct converts "12.34%" to 12.34.
func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percent %q: %v", s, err)
	}
	return v
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad float %q: %v", s, err)
	}
	return v
}

func parseI(t *testing.T, s string) int {
	t.Helper()
	v, err := strconv.Atoi(s)
	if err != nil {
		t.Fatalf("bad int %q: %v", s, err)
	}
	return v
}

// cell finds the row whose first columns match keys and returns col.
func cell(t *testing.T, tab *Table, col int, keys ...string) string {
	t.Helper()
	for _, row := range tab.Rows {
		match := true
		for i, k := range keys {
			if row[i] != k {
				match = false
				break
			}
		}
		if match {
			return row[col]
		}
	}
	t.Fatalf("row %v not found in %s", keys, tab.Title)
	return ""
}

func TestTableRender(t *testing.T) {
	t.Parallel()
	tab := &Table{
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"x", "y"}, {"longer", "z"}},
		Notes:  []string{"a note"},
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== demo ==", "longer", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistry(t *testing.T) {
	t.Parallel()
	if len(IDs()) != 26 {
		t.Fatalf("registered experiments = %d, want 26", len(IDs()))
	}
	if _, err := Lookup("fig7"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestFig7ShapeSubset(t *testing.T) {
	t.Parallel()
	tab, err := Fig7For(DefaultParams(), []string{"pagerank"}, []PolicyName{PolicyTHP, PolicyCA, PolicyEager, PolicyIdeal})
	if err != nil {
		t.Fatal(err)
	}
	thpMaps := parseI(t, cell(t, tab, 4, "pagerank", "thp"))
	caMaps := parseI(t, cell(t, tab, 4, "pagerank", "ca"))
	idealMaps := parseI(t, cell(t, tab, 4, "pagerank", "ideal"))
	// Paper shape: THP needs orders of magnitude more mappings than CA;
	// CA is close to ideal.
	if thpMaps < caMaps*10 {
		t.Fatalf("THP maps99 %d should be >>10x CA %d", thpMaps, caMaps)
	}
	if caMaps > idealMaps*4+4 {
		t.Fatalf("CA maps99 %d too far from ideal %d", caMaps, idealMaps)
	}
	caCov := parseF(t, cell(t, tab, 2, "pagerank", "ca"))
	if caCov < 0.95 {
		t.Fatalf("CA cov32 = %f, want ~1", caCov)
	}
}

func TestFig8ShapeSubset(t *testing.T) {
	t.Parallel()
	tab, err := Fig8Sweep(DefaultParams(), []float64{0.5}, []string{"pagerank"},
		[]PolicyName{PolicyCA, PolicyEager, PolicyIdeal})
	if err != nil {
		t.Fatal(err)
	}
	ca := parseF(t, cell(t, tab, 3, "hog-50%", "ca"))       // cov128
	eager := parseF(t, cell(t, tab, 3, "hog-50%", "eager")) // cov128
	ideal := parseF(t, cell(t, tab, 3, "hog-50%", "ideal"))
	// Paper shape: under heavy pressure CA stays near ideal and beats
	// eager decisively at 128-mapping coverage.
	if ca < eager {
		t.Fatalf("hog-50: CA cov128 %f should beat eager %f", ca, eager)
	}
	if ca < ideal-0.15 {
		t.Fatalf("hog-50: CA cov128 %f should track ideal %f", ca, ideal)
	}
}

func TestTable5Shape(t *testing.T) {
	t.Parallel()
	tab, err := Table5For(DefaultParams(), []string{"pagerank"})
	if err != nil {
		t.Fatal(err)
	}
	thpFaults := parseI(t, cell(t, tab, 1, "thp"))
	caFaults := parseI(t, cell(t, tab, 1, "ca"))
	eagerFaults := parseI(t, cell(t, tab, 1, "eager"))
	thpP99 := parseF(t, cell(t, tab, 2, "thp"))
	caP99 := parseF(t, cell(t, tab, 2, "ca"))
	eagerP99 := parseF(t, cell(t, tab, 2, "eager"))
	// Paper shape: CA ~ THP in both; eager has far fewer faults and a
	// tail latency orders of magnitude higher.
	if caFaults < thpFaults*9/10 || caFaults > thpFaults*11/10 {
		t.Fatalf("CA faults %d should be ~ THP %d", caFaults, thpFaults)
	}
	if eagerFaults*10 > thpFaults {
		t.Fatalf("eager faults %d should be <<10%% of THP %d", eagerFaults, thpFaults)
	}
	if caP99 > thpP99*2 {
		t.Fatalf("CA p99 %f should be ~ THP %f", caP99, thpP99)
	}
	if eagerP99 < thpP99*20 {
		t.Fatalf("eager p99 %f should dwarf THP %f", eagerP99, thpP99)
	}
}

func TestTable6Shape(t *testing.T) {
	t.Parallel()
	tab, err := Table6For(DefaultParams(), []string{"hashjoin"})
	if err != nil {
		t.Fatal(err)
	}
	// hashjoin: the paper's worst eager bloat (47.5%). Column 1 holds
	// "MiB (pct%)" strings.
	get := func(policy string) float64 {
		s := cell(t, tab, 1, policy)
		open := strings.Index(s, "(")
		return parsePct(t, strings.TrimSuffix(s[open+1:], ")"))
	}
	if eager := get("eager"); eager < 30 {
		t.Fatalf("eager hashjoin bloat = %.1f%%, want ~48%%", eager)
	}
	if thp := get("thp"); thp > 5 {
		t.Fatalf("thp hashjoin bloat = %.1f%%, want small", thp)
	}
	if ca, thp := get("ca"), get("thp"); ca > thp*3+1 {
		t.Fatalf("ca bloat %.1f%% should be ~ thp %.1f%%", ca, thp)
	}
}

func TestTable1ShapeSubset(t *testing.T) {
	t.Parallel()
	tab, err := Table1For(DefaultParams(), []string{"pagerank"})
	if err != nil {
		t.Fatal(err)
	}
	thpRanges := parseI(t, cell(t, tab, 1, "pagerank"))
	caRanges := parseI(t, cell(t, tab, 3, "pagerank"))
	caAnchors := parseI(t, cell(t, tab, 4, "pagerank"))
	if thpRanges < caRanges*10 {
		t.Fatalf("THP ranges %d should be >>10x CA %d", thpRanges, caRanges)
	}
	// vHC's alignment restrictions demand many more entries than ranges.
	if caAnchors < caRanges*4 {
		t.Fatalf("vHC anchors %d should exceed CA ranges %d by a wide factor", caAnchors, caRanges)
	}
}

func TestFig13And14ShapeSubset(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	p.StreamLen = 300_000
	tab, err := Fig13For(p, []string{"pagerank"})
	if err != nil {
		t.Fatal(err)
	}
	o4k := parsePct(t, cell(t, tab, 1, "pagerank"))
	othp := parsePct(t, cell(t, tab, 2, "pagerank"))
	ov4k := parsePct(t, cell(t, tab, 3, "pagerank"))
	ovthp := parsePct(t, cell(t, tab, 4, "pagerank"))
	ospot := parsePct(t, cell(t, tab, 5, "pagerank"))
	ormm := parsePct(t, cell(t, tab, 6, "pagerank"))
	ods := parsePct(t, cell(t, tab, 7, "pagerank"))
	// Paper shape, per configuration:
	if !(o4k > othp && ov4k > ovthp) {
		t.Fatalf("4K must exceed THP: %f/%f, %f/%f", o4k, othp, ov4k, ovthp)
	}
	if !(ovthp > othp) {
		t.Fatalf("virtualization must amplify THP overhead: %f vs %f", ovthp, othp)
	}
	if !(ospot < ovthp/5) {
		t.Fatalf("SpOT %f should slash vTHP %f", ospot, ovthp)
	}
	if !(ormm <= ospot+0.5) {
		t.Fatalf("vRMM %f should be at or below SpOT %f", ormm, ospot)
	}
	if ods > 0.5 {
		t.Fatalf("DS overhead %f should be ~0", ods)
	}

	tab14, err := Fig14For(p, []string{"pagerank"})
	if err != nil {
		t.Fatal(err)
	}
	correct := parsePct(t, cell(t, tab14, 1, "pagerank"))
	mispred := parsePct(t, cell(t, tab14, 2, "pagerank"))
	if correct < 95 {
		t.Fatalf("pagerank correct = %f%%, want >95%%", correct)
	}
	if mispred > 4 {
		t.Fatalf("pagerank mispredict = %f%%, want <4%%", mispred)
	}
}

func TestTable7Shape(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	p.StreamLen = 200_000
	tab, err := Table7For(p, []string{"pagerank", "hashjoin"})
	if err != nil {
		t.Fatal(err)
	}
	row := tab.Rows[0]
	spectre := parsePct(t, row[2])
	spot := parsePct(t, row[3])
	if spot >= spectre {
		t.Fatalf("SpOT USL %f%% must be far below Spectre %f%%", spot, spectre)
	}
}

func TestFig9Shape(t *testing.T) {
	t.Parallel()
	tab, err := Fig9(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// CA leaves more free memory in the largest class than default.
	caBig := parseF(t, cell(t, tab, 4, "ca"))
	thpBig := parseF(t, cell(t, tab, 4, "thp"))
	if caBig < thpBig {
		t.Fatalf("CA largest-class fraction %f should be >= default %f", caBig, thpBig)
	}
}

func TestFig1bShape(t *testing.T) {
	t.Parallel()
	tab, err := Fig1b(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Eager's coverage at run 10 is below its run-1 coverage and below
	// CA's run-10 coverage; CA sustains.
	eager1 := parseF(t, cell(t, tab, 1, "1"))
	eager10 := parseF(t, cell(t, tab, 1, "10"))
	ca10 := parseF(t, cell(t, tab, 2, "10"))
	if eager10 >= eager1 {
		t.Fatalf("eager should degrade: run1 %f run10 %f", eager1, eager10)
	}
	if ca10 < eager10 {
		t.Fatalf("CA run10 %f should beat eager %f", ca10, eager10)
	}
	if ca10 < 0.9 {
		t.Fatalf("CA run10 coverage %f should stay high", ca10)
	}
}

func TestFig10Shape(t *testing.T) {
	t.Parallel()
	tab, err := Fig10(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	caA := parseF(t, cell(t, tab, 1, "ca"))
	caB := parseF(t, cell(t, tab, 2, "ca"))
	if caA < 0.9 || caB < 0.9 {
		t.Fatalf("CA multi-program coverage = %f/%f, want ~1", caA, caB)
	}
}

// TestTableRenderRaggedRow pins the Render fix for rows wider than the
// header: the width pass always guarded i < len(widths), but the line
// renderer did not and panicked with index out of range.
func TestTableRenderRaggedRow(t *testing.T) {
	t.Parallel()
	tab := &Table{
		Title:  "ragged",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2", "extra", "more"}, {"3"}},
	}
	var buf bytes.Buffer
	tab.Render(&buf) // must not panic
	out := buf.String()
	for _, want := range []string{"extra", "more", "3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ragged render lost cell %q:\n%s", want, out)
		}
	}
}
