package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/mem/addr"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// The ablation drivers isolate the design choices DESIGN.md §4 calls
// out. They are not paper figures; they justify mechanisms the paper
// adopts (next-fit, the sorted MAX_ORDER list, the 64-offset budget,
// SpOT's confidence and contiguity-bit filtering).

// AblationPlacement compares next-fit against first-fit placement for
// two processes populating concurrently: first-fit keeps both
// placements at the lowest free region, so they collide and interleave;
// next-fit defers them past each other.
func AblationPlacement(p Params) (*Table, error) {
	t := &Table{
		Title:  "Ablation: next-fit vs first-fit placement (two concurrent SVMs)",
		Header: []string{"placement", "maps99 A", "maps99 B"},
		Notes:  []string{"next-fit (the paper's choice) must produce far fewer mappings"},
	}
	for _, firstFit := range []bool{false, true} {
		k, _ := newNativeKernel(p, PolicyCA, false)
		for _, z := range k.Machine.Zones {
			z.Contig.SetFirstFit(firstFit)
		}
		envA := workloads.NewNativeEnv(k, 0)
		envB := workloads.NewNativeEnv(k, 0)
		envA.NoRangeFault = p.NoRangeFault
		envB.NoRangeFault = p.NoRangeFault
		if err := interleavedSVMPair(envA, envB, workloads.NewSVM().FootprintBytes()); err != nil {
			return nil, err
		}
		stA := contigOf(metrics.FromPageTable(envA.Proc.PT))
		stB := contigOf(metrics.FromPageTable(envB.Proc.PT))
		name := "next-fit"
		if firstFit {
			name = "first-fit"
		}
		t.Rows = append(t.Rows, []string{name, fmt.Sprint(stA.Maps99), fmt.Sprint(stB.Maps99)})
		envA.Exit()
		envB.Exit()
		recycleKernel(k)
	}
	return t, nil
}

// AblationSortedMaxOrder measures how the physically sorted MAX_ORDER
// list concentrates fallback 4 KiB allocations: after interleaving CA
// heap traffic with un-steered single-page churn, the machine keeps
// larger free blocks when the list is sorted.
func AblationSortedMaxOrder(p Params) (*Table, error) {
	t := &Table{
		Title:  "Ablation: sorted MAX_ORDER list (free contiguity after churn)",
		Header: []string{"sorted", "largest free cluster (MiB)", ">64MiB free fraction"},
		Notes:  []string{"sorting keeps scattered 4K allocations from splitting distant large blocks"},
	}
	for _, sorted := range []bool{true, false} {
		k, _ := newNativeKernel(p, PolicyCA, true /* single zone */)
		for _, z := range k.Machine.Zones {
			z.Buddy.SetSorted(sorted)
		}
		rng := rand.New(rand.NewSource(3))
		// Scramble the MAX_ORDER free list the way a running machine
		// does: allocate every block, then free them in random order
		// (blocks at the top order never coalesce further, so the list
		// keeps the random order).
		var blocks []addr.PFN
		for {
			pfn, err := k.Machine.AllocBlock(0, addr.MaxOrder)
			if err != nil {
				break
			}
			blocks = append(blocks, pfn)
		}
		rng.Shuffle(len(blocks), func(i, j int) { blocks[i], blocks[j] = blocks[j], blocks[i] })
		for _, pfn := range blocks {
			k.Machine.FreeBlock(pfn, addr.MaxOrder)
		}
		// 120 rounds of: one persistent kernel page (slab/IO) plus a
		// transient burst draining the split block's remnants. The
		// bursts are all released at the end (short-lived buffers);
		// each round ruined whichever MAX_ORDER block the list offered
		// — the lowest when sorted, a random one when not.
		type tempBlock struct {
			pfn   addr.PFN
			order int
		}
		var temps []tempBlock
		for i := 0; i < 120; i++ {
			if _, err := k.Machine.AllocBlock(0, 0); err != nil {
				break
			}
			for o := addr.MaxOrder - 1; o >= 0; o-- {
				if pfn, err := k.Machine.AllocBlock(0, o); err == nil {
					temps = append(temps, tempBlock{pfn, o})
				}
			}
		}
		for _, tmp := range temps {
			k.Machine.FreeBlock(tmp.pfn, tmp.order)
		}
		var largest uint64
		for _, z := range k.Machine.Zones {
			if l := z.Contig.Largest(); l > largest {
				largest = l
			}
		}
		frac := freeBuckets(k, [3]uint64{
			addr.HugeSize / addr.PageSize,
			16 << 20 / addr.PageSize,
			64 << 20 / addr.PageSize,
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(sorted), f1(float64(largest) * 4096 / (1 << 20)), f3(frac[3]),
		})
		recycleKernel(k)
	}
	return t, nil
}

// AblationOffsetBudget varies the per-VMA offset budget on a fragmented
// machine: with a single offset, every sub-VMA re-placement forgets the
// previous regions and faults near them fall back to arbitrary
// allocation; with the paper's 64, sub-VMA regions are all tracked.
func AblationOffsetBudget(p Params) (*Table, error) {
	t := &Table{
		Title:  "Ablation: per-VMA offset budget under fragmentation",
		Header: []string{"budget", "maps99", "ca fallbacks"},
		Notes:  []string{"the 64-offset FIFO keeps sub-VMA placements usable; 1 offset thrashes"},
	}
	for _, budget := range []int{1, 4, 64} {
		k, _ := newNativeKernel(p, PolicyCA, true)
		k.OffsetBudget = budget
		workloads.Hog(k.Machine, 0.35, rand.New(rand.NewSource(7)))
		env := workloads.NewNativeEnv(k, 0)
		env.NoRangeFault = p.NoRangeFault
		// A 192 MiB VMA populated in *random* 2 MiB-region order: under
		// fragmentation the VMA needs many sub-placements, and faults
		// jumping between regions need the offsets of all of them — a
		// single tracked offset is forgotten on every re-placement.
		v, err := env.MMap(192 << 20)
		if err != nil {
			return nil, err
		}
		order := rand.New(rand.NewSource(2)).Perm(int(v.Size() / (2 << 20)))
		for _, region := range order {
			base := uint64(region) * (2 << 20)
			if err := env.PopulateRange(v, v.Start.Add(base), 2<<20); err != nil {
				return nil, err
			}
		}
		st := contigOf(metrics.FromPageTable(env.Proc.PT))
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(budget), fmt.Sprint(st.Maps99), fmt.Sprint(k.Stats.CAFallbacks),
		})
		env.Exit()
		recycleKernel(k)
	}
	return t, nil
}

// AblationSpotConfidence turns SpOT's two §IV-C protection mechanisms
// off individually on the workload with the most irregular misses.
func AblationSpotConfidence(p Params) (*Table, error) {
	t := &Table{
		Title:  "Ablation: SpOT confidence and contiguity-bit filter (svm)",
		Header: []string{"variant", "correct", "mispredict", "no-prediction"},
		Notes:  []string{"no-confidence converts no-predictions into mispredictions (flushes);"},
	}
	variants := []struct {
		name string
		cfg  sim.Config
	}{
		{"full mechanism", sim.Config{EnableSchemes: true}},
		{"no confidence", sim.Config{EnableSchemes: true, SpotNoConfidence: true}},
		{"no fill filter", sim.Config{EnableSchemes: true, SpotNoFilter: true}},
	}
	for _, v := range variants {
		vm, _, err := newVM(p, PolicyCA, PolicyCA)
		if err != nil {
			return nil, err
		}
		env := workloads.NewVirtEnv(vm, 0)
		env.NoRangeFault = p.NoRangeFault
		w := workloads.NewSVM()
		if err := w.Setup(env, rand.New(rand.NewSource(p.setupSeed()))); err != nil {
			return nil, err
		}
		cfg := v.cfg
		cfg.NoWalkCache = p.NoWalkCache
		cfg.Tracer = p.Tracer
		res, err := sim.Run(env, w.Stream(rand.New(rand.NewSource(p.streamSeed())), p.StreamLen), cfg)
		if err != nil {
			return nil, err
		}
		total := float64(res.Misses)
		t.Rows = append(t.Rows, []string{
			v.name,
			pct(float64(res.SpotCorrect) / total),
			pct(float64(res.SpotMispredict) / total),
			pct(float64(res.SpotNoPred) / total),
		})
		recycleVM(vm)
	}
	return t, nil
}

// AblationSpotGeometry sweeps the prediction-table size on the
// workload with the most missing instructions (hashjoin: ten probe and
// ten chain PCs).
func AblationSpotGeometry(p Params) (*Table, error) {
	t := &Table{
		Title:  "Ablation: SpOT prediction table geometry (hashjoin)",
		Header: []string{"entries x ways", "correct", "no-prediction"},
		Notes:  []string{"PC indexing keeps even small tables effective (few instructions miss)"},
	}
	for _, geo := range []struct{ entries, ways int }{
		{8, 2}, {16, 4}, {32, 4}, {64, 4}, {128, 8},
	} {
		vm, _, err := newVM(p, PolicyCA, PolicyCA)
		if err != nil {
			return nil, err
		}
		env := workloads.NewVirtEnv(vm, 0)
		env.NoRangeFault = p.NoRangeFault
		w := workloads.NewHashJoin()
		if err := w.Setup(env, rand.New(rand.NewSource(p.setupSeed()))); err != nil {
			return nil, err
		}
		res, err := sim.Run(env, w.Stream(rand.New(rand.NewSource(p.streamSeed())), p.StreamLen),
			sim.Config{EnableSchemes: true, SpotEntries: geo.entries, SpotWays: geo.ways, NoWalkCache: p.NoWalkCache, Tracer: p.Tracer})
		if err != nil {
			return nil, err
		}
		total := float64(res.Misses)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dx%d", geo.entries, geo.ways),
			pct(float64(res.SpotCorrect) / total),
			pct(float64(res.SpotNoPred) / total),
		})
		recycleVM(vm)
	}
	return t, nil
}
