package experiments

import (
	"bytes"
	"testing"
)

// TestFigAgingJobsInvariance pins that the aging grid is byte-identical
// at any parallelism: each campaign owns its kernel, rng, and result
// slot, so -jobs only changes wall-clock.
func TestFigAgingJobsInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-campaign sweep")
	}
	render := func(jobs int) string {
		p := Params{StreamLen: 20_000, SettleEpochs: 30, Seed: 1, Jobs: jobs}
		tab, err := FigAging(p)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		tab.Render(&buf)
		return buf.String()
	}
	seq, par := render(1), render(8)
	if seq != par {
		t.Fatalf("figAging differs between -jobs 1 and -jobs 8:\n--- jobs=1\n%s\n--- jobs=8\n%s", seq, par)
	}
}

// TestFigAgingShardJobsInvariance pins the sharded-campaign contract
// at the driver level: the figAging grid (which runs every campaign
// with one shard per host zone) is byte-identical whether the shards
// of each campaign step serially or concurrently — -shardjobs only
// changes wall-clock.
func TestFigAgingShardJobsInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-campaign sweep")
	}
	render := func(shardJobs int) string {
		p := Params{StreamLen: 20_000, SettleEpochs: 30, Seed: 1, Jobs: 1, ShardJobs: shardJobs}
		tab, err := FigAging(p)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		tab.Render(&buf)
		return buf.String()
	}
	var want string
	for _, jobs := range []int{1, 2, 0} { // 0 resolves to GOMAXPROCS
		got := render(jobs)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("figAging differs at -shardjobs %d:\n--- shardjobs=1\n%s\n--- shardjobs=%d\n%s", jobs, want, jobs, got)
		}
	}
}
