package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/hw/hc"
	"repro/internal/metrics"
	"repro/internal/workloads"
)

// Fig12 reproduces the virtualized contiguity study (Fig. 12): the
// workloads run *consecutively in the same VM without reboots* (the
// 2nd-dimension gPA→hPA mappings persist and age), with the same policy
// applied in guest and host independently. Reported: full 2D (gVA→hPA)
// coverage and mapping counts per workload.
func Fig12(p Params) (*Table, error) { return Fig12For(p, workloadNames()) }

// Fig12For is the parameterized core of Fig12. Workloads within one
// policy share a VM and must stay sequential (ageing is the point);
// the three policies are independent and run concurrently.
func Fig12For(p Params, names []string) (*Table, error) {
	t := &Table{
		Title:  "Fig 12: virtualized 2D contiguity (consecutive runs, no VM reboot)",
		Header: []string{"workload", "policy", "cov32", "cov128", "maps99"},
		Notes: []string{
			"paper shape: CA cuts maps99 by ~an order of magnitude vs default;",
			"32-coverage slightly below native (independent best-effort dimensions)",
		},
	}
	policies := []PolicyName{PolicyTHP, PolicyCA, PolicyEager}
	rows := make([][][]string, len(policies))
	err := forEach(len(policies), p.jobs(), func(i int) error {
		pol := policies[i]
		vm, _, err := newVM(p, pol, pol)
		if err != nil {
			return err
		}
		for _, name := range names {
			env := workloads.NewVirtEnv(vm, 0)
			env.NoRangeFault = p.NoRangeFault
			if err := workloads.ByName(name).Setup(env, rand.New(rand.NewSource(p.setupSeed()))); err != nil {
				return fmt.Errorf("fig12 %s/%s: %w", name, pol, err)
			}
			st := contigOf(vm.Mappings2D(env.Proc))
			rows[i] = append(rows[i], []string{
				name, string(pol), f3(st.Cov32), f3(st.Cov128), fmt.Sprint(st.Maps99),
			})
			env.Exit() // gPA→hPA persists; the next workload ages the VM
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, block := range rows {
		t.Rows = append(t.Rows, block...)
	}
	return t, nil
}

// Table1 reproduces Table I: the number of vRMM ranges and vHC anchor
// entries needed to map 99 % of each workload's footprint in
// virtualized execution, under default THP and CA paging.
func Table1(p Params) (*Table, error) { return Table1For(p, workloadNames()) }

// Table1For is the parameterized core of Table1.
func Table1For(p Params, names []string) (*Table, error) {
	t := &Table{
		Title:  "Table I: ranges (vRMM) and anchor entries (vHC) for 99% of footprint",
		Header: []string{"workload", "thp ranges", "thp vHC", "ca ranges", "ca vHC"},
		Notes: []string{
			"paper shape: CA cuts both by orders of magnitude; vHC needs many x more entries",
			"than vRMM under CA (virtual-alignment restrictions on unaligned contiguity)",
		},
	}
	type counts struct{ ranges, anchors int }
	results := map[string]map[PolicyName]counts{}
	for _, pol := range []PolicyName{PolicyTHP, PolicyCA} {
		vm, _, err := newVM(p, pol, pol)
		if err != nil {
			return nil, err
		}
		for _, name := range names {
			env := workloads.NewVirtEnv(vm, 0)
			env.NoRangeFault = p.NoRangeFault
			if err := workloads.ByName(name).Setup(env, rand.New(rand.NewSource(p.setupSeed()))); err != nil {
				return nil, fmt.Errorf("table1 %s/%s: %w", name, pol, err)
			}
			ms := vm.Mappings2D(env.Proc)
			c := counts{
				ranges:  metrics.MappingsFor(ms, 0.99),
				anchors: hc.BestAnchorCount(ms, 3, 14).EntriesFor99,
			}
			if results[name] == nil {
				results[name] = map[PolicyName]counts{}
			}
			results[name][pol] = c
			env.Exit()
		}
	}
	var gr [2][]float64 // geomeans: [thp, ca] x {ranges, anchors} flattened below
	var ga [2][]float64
	for _, name := range names {
		r := results[name]
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprint(r[PolicyTHP].ranges), fmt.Sprint(r[PolicyTHP].anchors),
			fmt.Sprint(r[PolicyCA].ranges), fmt.Sprint(r[PolicyCA].anchors),
		})
		gr[0] = append(gr[0], float64(r[PolicyTHP].ranges))
		ga[0] = append(ga[0], float64(r[PolicyTHP].anchors))
		gr[1] = append(gr[1], float64(r[PolicyCA].ranges))
		ga[1] = append(ga[1], float64(r[PolicyCA].anchors))
	}
	t.Rows = append(t.Rows, []string{
		"geomean",
		f1(metrics.GeoMean(gr[0])), f1(metrics.GeoMean(ga[0])),
		f1(metrics.GeoMean(gr[1])), f1(metrics.GeoMean(ga[1])),
	})
	return t, nil
}
