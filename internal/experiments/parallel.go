package experiments

import "sync"

// forEach runs fn(i) for every i in [0, n) on at most jobs concurrent
// goroutines and returns the first error (by index order, so failures
// are reported deterministically). Each fn call must write only to
// index-owned slots; callers then assemble rows in index order, which
// keeps tables byte-identical to a sequential run.
func forEach(n, jobs int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
