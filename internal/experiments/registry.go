package experiments

import (
	"fmt"
	"sort"
)

// Driver runs one experiment under the given parameters and returns
// its table. Drivers are pure with respect to Params: identical Params
// produce identical tables, and distinct drivers share no mutable
// state, so any set of them may run concurrently.
type Driver func(Params) (*Table, error)

// registry maps experiment IDs to drivers, in the paper's numbering.
var registry = map[string]Driver{
	"fig1b":               Fig1b,
	"fig1c":               Fig1c,
	"table1":              Table1,
	"fig7":                Fig7,
	"fig8":                Fig8,
	"fig9":                Fig9,
	"fig10":               Fig10,
	"fig11":               Fig11,
	"table5":              Table5,
	"table6":              Table6,
	"fig12":               Fig12,
	"fig13":               Fig13,
	"fig14":               Fig14,
	"ablation-placement":  AblationPlacement,
	"ablation-sorted":     AblationSortedMaxOrder,
	"ablation-offsets":    AblationOffsetBudget,
	"ablation-confidence": AblationSpotConfidence,
	"ablation-geometry":   AblationSpotGeometry,
	"table7":              Table7,
	"extra-shadow":        ExtraShadow,
	"extra-reservation":   ExtraReservation,
	"extra-5level":        ExtraFiveLevel,
	"figAging":            FigAging,
	"figAgingTraj":        FigAgingTraj,
	"figBackends":         FigBackends,
	"figReplay":           FigReplay,
}

// IDs returns the registered experiment IDs in a stable order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the driver for an experiment ID.
func Lookup(id string) (Driver, error) {
	d, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return d, nil
}
