package experiments

import (
	"runtime"

	"repro/internal/trace"
)

// Params carries the run-scale knobs every driver receives. Drivers
// take their configuration by value instead of reading package globals,
// so any set of experiments can run concurrently: two drivers with
// different stream lengths never observe each other's settings.
type Params struct {
	// StreamLen is the measured-phase access count for the translation
	// experiments (Figs. 13/14, Table VII, the SpOT ablations).
	StreamLen uint64
	// SettleEpochs is the post-population daemon-settling window for
	// the contiguity experiments (Figs. 7/8/10): epochs of logical time
	// the background daemons get to converge.
	SettleEpochs int
	// Seed is the base seed for workload setup; access streams use
	// Seed+1. Identical Params produce identical tables.
	Seed int64
	// Jobs bounds the intra-driver parallelism of the heavy sweep
	// drivers (Fig. 7/12/13/14, Table V/VII, the translation runs):
	// <=0 means GOMAXPROCS, 1 forces the historical strictly
	// sequential execution. Output is identical either way; only
	// wall-clock changes.
	Jobs int
	// ShardJobs bounds the workers stepping a sharded aging campaign's
	// shards concurrently (the figAging drivers and RunAgingCampaign;
	// see aging.Config.ShardJobs): <=0 means GOMAXPROCS, 1 steps
	// shards serially. Trajectories and tables are byte-identical at
	// any value; only wall-clock changes.
	ShardJobs int
	// Backend restricts the figBackends scenario matrix to one
	// translation backend (a translation.Names() value); empty runs the
	// full cross-product. Every other driver reproduces the paper's
	// baseline stack and ignores it.
	Backend string
	// NoWalkCache disables sim's software walk-memoization cache in
	// every translation driver. Tables are byte-identical either way
	// (runner.TestWalkCacheToggleMatches pins this); the toggle exists
	// for regression comparison and debugging.
	NoWalkCache bool
	// NoRangeFault disables the batched range-fault population path in
	// every driver: workload Setup falls back to the historical
	// per-page Touch loop. Tables are byte-identical either way
	// (runner.TestRangeFaultToggleMatches pins this); the toggle exists
	// for regression comparison and debugging.
	NoRangeFault bool
	// Tracer, when non-nil, is threaded into every kernel, VM, and sim
	// run the drivers build, collecting events across the whole
	// experiment. Tables are byte-identical with or without it (pinned
	// by TestGoldenTablesWithTracingEnabled) — the tracer observes, it
	// never steers. Shared across drivers when several run concurrently
	// (the tracer is mutex-protected; event interleaving follows the
	// scheduler).
	Tracer *trace.Tracer
}

// DefaultParams returns the paper-scale defaults the cmd/reproduce
// binary uses: the values the historical package globals held.
func DefaultParams() Params {
	return Params{StreamLen: 1_000_000, SettleEpochs: 400, Seed: 1}
}

// setupSeed is the seed workload Setup calls use.
func (p Params) setupSeed() int64 { return p.Seed }

// streamSeed is the seed access-stream generation uses.
func (p Params) streamSeed() int64 { return p.Seed + 1 }

// jobs resolves the intra-driver worker bound.
func (p Params) jobs() int {
	if p.Jobs <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p.Jobs
}
