package experiments

import (
	"fmt"

	"repro/internal/aging"
	"repro/internal/check"
	"repro/internal/mem/addr"
	"repro/internal/mem/zone"
	"repro/internal/osim"
	"repro/internal/osim/daemon"
	"repro/internal/workloads"
)

// bootPinned describes the BootReserve extents of the standard host
// machine, so whole-machine audits can account for the frames no
// process owns.
func bootPinned(numaOff bool) []check.Extent {
	zones := 2
	if numaOff {
		zones = 1
	}
	var out []check.Extent
	for z := 0; z < zones; z++ {
		base := uint64(z) * hostZoneBlocks * addr.MaxOrderPages
		for b := 0; b < bootReserveBlocks; b++ {
			out = append(out, check.Extent{
				PFN:   base + uint64(b)*addr.MaxOrderPages,
				Pages: addr.MaxOrderPages,
			})
		}
	}
	return out
}

// RunAgingCampaign builds the standard host kernel under the named
// policy and runs one aging campaign on it. cfg.Pinned is filled from
// the kernel's boot reservations, and for sharded campaigns
// (cfg.Shards > 1) the shard-kernel factory is supplied here so the
// aging package stays decoupled from policy construction. cmd/agingsim
// calls this directly; the figAging drivers fan it out over a policy x
// horizon grid.
func RunAgingCampaign(pr Params, pol PolicyName, cfg aging.Config) (*aging.Trajectory, error) {
	k, ds := newNativeKernel(pr, pol, false)
	cfg.Pinned = bootPinned(false)
	cfg.NoRangeFault = pr.NoRangeFault
	if cfg.Shards > 1 {
		if cfg.ShardJobs == 0 {
			cfg.ShardJobs = pr.ShardJobs
		}
		cfg.NewShardKernel = shardKernelFactory(pr, pol)
	}
	tr, err := aging.New(k, ds, cfg).Run()
	if tr != nil {
		tr.Policy = string(pol)
	}
	if err == nil {
		recycleKernel(k)
	}
	return tr, err
}

// shardKernelFactory builds a sharded campaign's per-shard kernels:
// the campaign policy over the shard's zone view, with private daemon
// instances (so rotors, memos, and scan state never cross shards) and
// no boot reservations — the parent kernel placed those before the
// views were cut.
func shardKernelFactory(pr Params, pol PolicyName) func(view *zone.Machine, shard int) (*osim.Kernel, []workloads.Daemon) {
	return func(view *zone.Machine, shard int) (*osim.Kernel, []workloads.Daemon) {
		k := osim.NewKernel(view, placementFor(pol))
		var ds []workloads.Daemon
		switch pol {
		case PolicyIngens:
			ds = append(ds, daemon.NewIngens(k))
		case PolicyRanger:
			ds = append(ds, daemon.NewRanger(k))
		}
		k.SetTracer(pr.Tracer)
		return k, ds
	}
}

// agingConfig is the shared campaign shape of the figAging drivers:
// up to ten tenants of as much as 96 MiB against the 1.25 GiB host,
// 16 MiB dataset files every five steps, audits at every fourth
// snapshot, seeded from Params. The campaigns run sharded — one shard
// per host zone, each owning its zone outright — so the drivers also
// exercise the parallel shard stepping and the epoch barrier; the
// resulting tables are byte-identical at every Params.ShardJobs.
func agingConfig(pr Params, steps int) aging.Config {
	return aging.Config{
		Seed:              pr.Seed,
		Steps:             steps,
		SnapshotEvery:     10,
		MaxTenants:        10,
		MaxFootprintPages: 24576,
		ZipfS:             1.1, // heavy tail: big tenants arrive regularly
		FilePages:         4096,
		CacheChurnEvery:   5,
		Shards:            2, // one per host zone
		ShardJobs:         pr.ShardJobs,
	}
}

// FigAging ages every policy across two churn horizons and reports
// where each ends up: final fragmentation, the Gorman unusable free
// index for huge allocations, and the RSS the surviving tenants hold.
// This extends the paper's Fig. 9 fragmentation snapshot into a
// lifecycle measurement: not how fragmented a loaded machine is, but
// how fragmentation accretes as tenants come and go.
func FigAging(p Params) (*Table, error) {
	policies := []PolicyName{PolicyTHP, PolicyIngens, PolicyCA, PolicyEager, PolicyRanger}
	horizons := []int{120, 360}

	type cell struct {
		policy PolicyName
		steps  int
		traj   *aging.Trajectory
	}
	cells := make([]cell, 0, len(policies)*len(horizons))
	for _, pol := range policies {
		for _, steps := range horizons {
			cells = append(cells, cell{policy: pol, steps: steps})
		}
	}
	err := forEach(len(cells), p.jobs(), func(i int) error {
		c := &cells[i]
		tr, err := RunAgingCampaign(p, c.policy, agingConfig(p, c.steps))
		if err != nil {
			return fmt.Errorf("figAging %s/%d: %w", c.policy, c.steps, err)
		}
		c.traj = tr
		return nil
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:  "figAging: fragmentation aging under tenant churn (policy x horizon)",
		Header: []string{"policy", "steps", "frag_permille", "ufi_2m", "ufi_max", "peak_rss_pages", "final_rss_pages", "faults"},
		Notes: []string{
			"campaigns churn Zipf-footprint tenants with page-cache pressure; audited whole-machine",
			"ufi is Gorman's unusable free space index at 2MiB / MAX_ORDER granularity (0 best, 1 worst)",
		},
	}
	for _, c := range cells {
		f := c.traj.Final()
		t.Rows = append(t.Rows, []string{
			string(c.policy),
			fmt.Sprintf("%d", c.steps),
			fmt.Sprintf("%d", f.FragPermille),
			f3(f.UFI2M),
			f3(f.UFIMax),
			fmt.Sprintf("%d", c.traj.PeakRSS()),
			fmt.Sprintf("%d", f.RSSPages),
			fmt.Sprintf("%d", f.Faults),
		})
	}
	return t, nil
}

// FigAgingTraj records the full fragmentation trajectory of three
// representative policies over one long horizon — the per-snapshot
// time series behind FigAging's endpoint summary, one row per
// snapshot step with per-policy columns.
func FigAgingTraj(p Params) (*Table, error) {
	policies := []PolicyName{PolicyTHP, PolicyCA, PolicyRanger}
	const steps = 240

	trajs := make([]*aging.Trajectory, len(policies))
	err := forEach(len(policies), p.jobs(), func(i int) error {
		tr, err := RunAgingCampaign(p, policies[i], agingConfig(p, steps))
		if err != nil {
			return fmt.Errorf("figAgingTraj %s: %w", policies[i], err)
		}
		trajs[i] = tr
		return nil
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:  "figAgingTraj: fragmentation trajectories under churn (snapshot series)",
		Header: []string{"step"},
		Notes: []string{
			"frag in permille of free memory below huge blocks; rss in pages",
		},
	}
	for _, pol := range policies {
		t.Header = append(t.Header,
			string(pol)+".frag", string(pol)+".ufi2m", string(pol)+".rss")
	}
	for si := range trajs[0].Snapshots {
		row := []string{fmt.Sprintf("%d", trajs[0].Snapshots[si].Step)}
		for _, tr := range trajs {
			s := tr.Snapshots[si]
			row = append(row,
				fmt.Sprintf("%d", s.FragPermille),
				f3(s.UFI2M),
				fmt.Sprintf("%d", s.RSSPages))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
