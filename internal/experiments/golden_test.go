package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"testing"
)

// update regenerates testdata/golden.json instead of comparing:
//
//	go test ./internal/experiments -run TestGoldenTables -update
var update = flag.Bool("update", false, "rewrite golden table hashes")

const goldenPath = "testdata/golden.json"

// goldenParams is deliberately small: the point is a cheap, exact
// end-to-end fingerprint of every driver's output, not a meaningful
// measurement. Any behavioural change anywhere under a driver — placement
// policy, TLB geometry, walk order, even a formatting tweak — moves the
// hash and forces the author to acknowledge it with -update.
func goldenParams() Params {
	return Params{StreamLen: 20_000, SettleEpochs: 30, Seed: 1, Jobs: 1}
}

// renderHash runs one driver and hashes its rendered table.
func renderHash(id string, p Params) (string, error) {
	d, err := Lookup(id)
	if err != nil {
		return "", err
	}
	tab, err := d(p)
	if err != nil {
		return "", fmt.Errorf("%s: %w", id, err)
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// TestGoldenTables renders all registered experiments at fixed small
// Params and compares each table's hash against the committed snapshot.
// Drivers are pure in their Params, so a hash mismatch means behaviour
// changed — intentionally (regenerate with -update and review the diff
// in the PR) or not (a real regression the shape tests were too coarse
// to catch).
func TestGoldenTables(t *testing.T) {
	ids := IDs()
	p := goldenParams()

	got := make(map[string]string, len(ids))
	errs := make(map[string]error, len(ids))
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			h, err := renderHash(id, p)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs[id] = err
			} else {
				got[id] = h
			}
		}(id)
	}
	wg.Wait()
	for _, id := range ids {
		if err := errs[id]; err != nil {
			t.Errorf("driver failed: %v", err)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	if *update {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d hashes to %s", len(got), goldenPath)
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("no golden snapshot (run with -update to create it): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("%s: %v", goldenPath, err)
	}

	for _, id := range ids {
		if _, ok := want[id]; !ok {
			t.Errorf("%s: no golden hash — new experiment? run with -update", id)
		} else if got[id] != want[id] {
			t.Errorf("%s: table changed (got %s, want %s) — if intentional, regenerate with -update",
				id, got[id][:12], want[id][:12])
		}
	}
	var stale []string
	for id := range want {
		if _, ok := got[id]; !ok {
			stale = append(stale, id)
		}
	}
	sort.Strings(stale)
	for _, id := range stale {
		t.Errorf("%s: golden hash for unregistered experiment — run with -update", id)
	}
}

// TestGoldenReproducible guards the premise the snapshot rests on: the
// same driver at the same Params renders byte-identical output twice in
// one process. Without this, a golden mismatch could be dismissed as
// "flaky".
func TestGoldenReproducible(t *testing.T) {
	t.Parallel()
	for _, id := range []string{"fig7", "table5", "ablation-placement"} {
		h1, err := renderHash(id, goldenParams())
		if err != nil {
			t.Fatal(err)
		}
		h2, err := renderHash(id, goldenParams())
		if err != nil {
			t.Fatal(err)
		}
		if h1 != h2 {
			t.Fatalf("%s: driver not reproducible at fixed Params", id)
		}
	}
}
