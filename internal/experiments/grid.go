package experiments

// grid is the row-major index space the sweep drivers fan out over:
// a (workload x policy) or (pressure x policy x workload) cell grid
// flattened to one worker-pool range. Drivers used to inline the
// div/mod decode at each site; grid keeps the decode and its inverse
// in one place so the axis order is stated once per driver and the
// flat cell layout always matches the row-assembly loops.
//
// Axis 0 varies slowest, the last axis fastest — matching the
// historical `i/len(inner)` / `i%len(inner)` decode, so flat indices
// (and therefore table row order) are unchanged.
type grid struct {
	dims []int
}

// newGrid builds an index space over the given axis lengths. Every
// axis must be positive: a zero-length axis would silently collapse
// the whole space to nothing and turn at() into division by zero.
func newGrid(dims ...int) grid {
	if len(dims) == 0 {
		panic("experiments: grid needs at least one axis")
	}
	for _, d := range dims {
		if d <= 0 {
			panic("experiments: grid axes must be positive")
		}
	}
	return grid{dims: dims}
}

// size is the number of cells — the n to pass to forEach.
func (g grid) size() int {
	n := 1
	for _, d := range g.dims {
		n *= d
	}
	return n
}

// at decodes flat cell index i along the given axis.
func (g grid) at(i, axis int) int {
	stride := 1
	for _, d := range g.dims[axis+1:] {
		stride *= d
	}
	return (i / stride) % g.dims[axis]
}

// index is the inverse of at: the flat cell index of the given
// coordinates, one per axis.
func (g grid) index(coords ...int) int {
	if len(coords) != len(g.dims) {
		panic("experiments: grid.index arity mismatch")
	}
	i := 0
	for axis, c := range coords {
		if c < 0 || c >= g.dims[axis] {
			panic("experiments: grid coordinate out of range")
		}
		i = i*g.dims[axis] + c
	}
	return i
}
