package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/mem/addr"
	"repro/internal/metrics"
	"repro/internal/osim"
	"repro/internal/perfmodel"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// ExtraReservation evaluates the §III-D reservation extension the paper
// leaves as future work: two processes faulting strictly alternately
// (one huge page per time slice — the pathological schedule for
// best-effort placement). Reservation shields each placement's extent.
func ExtraReservation(p Params) (*Table, error) {
	t := &Table{
		Title:  "Extra: CA reservation extension (§III-D) under strict alternation",
		Header: []string{"configuration", "maps99 A", "maps99 B"},
		Notes: []string{
			"negative result: the address-granular next-fit rover already defers racing",
			"placements past each other's planned extents, so soft reservation adds",
			"little — consistent with the paper deferring reservation to future work",
		},
	}
	run := func(policy osim.Placement, label string) error {
		k, _ := newNativeKernel(p, PolicyCA, true /* single zone */)
		// Replace the policy but keep the CA machine setup. The machine
		// is fragmented first: under pressure both processes keep
		// re-placing, and without reservation those re-placements race.
		k.Policy = policy
		workloads.Hog(k.Machine, 0.3, rand.New(rand.NewSource(11)))
		pa, pb := k.NewProcess(0), k.NewProcess(0)
		va, err := pa.MMap(160 << 20)
		if err != nil {
			return err
		}
		vb, err := pb.MMap(160 << 20)
		if err != nil {
			return err
		}
		for off := uint64(0); off < va.Size(); off += addr.HugeSize {
			if _, err := pa.Touch(va.Start.Add(off), true); err != nil {
				return err
			}
			if _, err := pb.Touch(vb.Start.Add(off), true); err != nil {
				return err
			}
		}
		stA := contigOf(metrics.FromPageTable(pa.PT))
		stB := contigOf(metrics.FromPageTable(pb.PT))
		t.Rows = append(t.Rows, []string{label, fmt.Sprint(stA.Maps99), fmt.Sprint(stB.Maps99)})
		pa.Exit()
		pb.Exit()
		recycleKernel(k)
		return nil
	}
	if err := run(osim.CAPolicy{}, "best-effort (paper)"); err != nil {
		return nil, err
	}
	if err := run(osim.NewCAPolicyWithReservation(), "with reservation"); err != nil {
		return nil, err
	}
	return t, nil
}

// ExtraFiveLevel quantifies the introduction's motivation: 5-level
// (LA57) page tables deepen every walk, and nested paging multiplies
// the depth — (5+1)×(5+1)−1 = 35 references versus 24.
func ExtraFiveLevel(p Params) (*Table, error) {
	t := &Table{
		Title:  "Extra: 4-level vs 5-level paging overhead (pagerank, CA in both dims)",
		Header: []string{"levels", "vTHP overhead", "SpOT overhead"},
		Notes: []string{
			"5-level paging (intro, [2]) deepens nested walks from 24 to 35 refs;",
			"SpOT's prediction hides the deeper walk just the same",
		},
	}
	for _, levels := range []int{4, 5} {
		vm, hostK, err := newVM(p, PolicyCA, PolicyCA)
		if err != nil {
			return nil, err
		}
		vm.Guest.PageTableLevels = levels
		hostK.PageTableLevels = levels
		env := workloads.NewVirtEnv(vm, 0)
		env.NoRangeFault = p.NoRangeFault
		w := workloads.NewPageRank()
		if err := w.Setup(env, rand.New(rand.NewSource(p.setupSeed()))); err != nil {
			return nil, err
		}
		res, err := sim.Run(env, w.Stream(rand.New(rand.NewSource(p.streamSeed())), p.StreamLen), sim.Config{EnableSchemes: true, NoWalkCache: p.NoWalkCache, Tracer: p.Tracer})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(levels),
			pct(perfmodel.PagingOverhead(res)),
			pct(perfmodel.SpotOverhead(res)),
		})
		recycleVM(vm)
	}
	return t, nil
}
