package experiments

import "testing"

func TestGridRoundTrip(t *testing.T) {
	for _, dims := range [][]int{{1}, {4}, {3, 5}, {2, 3, 4}, {5, 1, 7}} {
		g := newGrid(dims...)
		want := 1
		for _, d := range dims {
			want *= d
		}
		if g.size() != want {
			t.Fatalf("size(%v) = %d, want %d", dims, g.size(), want)
		}
		for i := 0; i < g.size(); i++ {
			coords := make([]int, len(dims))
			for axis := range dims {
				coords[axis] = g.at(i, axis)
				if coords[axis] < 0 || coords[axis] >= dims[axis] {
					t.Fatalf("at(%d, %d) = %d out of range for %v", i, axis, coords[axis], dims)
				}
			}
			if back := g.index(coords...); back != i {
				t.Fatalf("index(at(%d)) = %d for dims %v", i, back, dims)
			}
		}
	}
}

// TestGridMatchesHistoricalDecode pins the axis convention to the
// div/mod idiom the drivers used inline: outer axis i/inner, inner
// axis i%inner for 2D, and the 3D decode Fig8Sweep carried.
func TestGridMatchesHistoricalDecode(t *testing.T) {
	names, policies := 5, 3
	g2 := newGrid(names, policies)
	for i := 0; i < g2.size(); i++ {
		if g2.at(i, 0) != i/policies || g2.at(i, 1) != i%policies {
			t.Fatalf("2D decode diverged at %d: (%d,%d) vs (%d,%d)",
				i, g2.at(i, 0), g2.at(i, 1), i/policies, i%policies)
		}
	}
	pressures := 6
	g3 := newGrid(pressures, policies, names)
	for i := 0; i < g3.size(); i++ {
		wp := i / (policies * names)
		wq := (i / names) % policies
		wn := i % names
		if g3.at(i, 0) != wp || g3.at(i, 1) != wq || g3.at(i, 2) != wn {
			t.Fatalf("3D decode diverged at %d", i)
		}
		if base := (wp*policies + wq) * names; g3.index(wp, wq, 0) != base {
			t.Fatalf("3D base index diverged at (%d,%d)", wp, wq)
		}
	}
}

func TestGridPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s should panic", name)
			}
		}()
		fn()
	}
	expectPanic("empty", func() { newGrid() })
	expectPanic("zero axis", func() { newGrid(3, 0) })
	expectPanic("arity", func() { newGrid(2, 2).index(1) })
	expectPanic("range", func() { newGrid(2, 2).index(1, 2) })
}
