// Package vma models virtual memory areas and the per-VMA metadata CA
// paging attaches to them: up to MaxOffsets [fault-VA, Offset] pairs in
// FIFO order (§III-C, "Dealing with external fragmentation") plus the
// atomic replacement gate that serialises re-placement decisions among
// concurrently faulting threads (§III-C, "Avoiding multithreading
// pitfalls").
package vma

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/mem/addr"
)

// MaxOffsets is the default cap on tracked sub-VMA offsets per VMA
// (paper: 64, FIFO). The offset-budget ablation varies the cap per VMA
// through the Budget field; the cap itself is a constant so concurrent
// kernels never observe each other's settings.
const MaxOffsets = 64

// Kind distinguishes mapping types; they matter for fault accounting
// and teardown.
type Kind uint8

const (
	// Anonymous is a demand-zero heap/stack mapping.
	Anonymous Kind = iota
	// FileBacked maps page-cache pages of a file.
	FileBacked
)

func (k Kind) String() string {
	if k == FileBacked {
		return "file"
	}
	return "anon"
}

// OffsetEntry associates a tracked Offset with the fault address that
// created it, so later faults pick the nearest one.
type OffsetEntry struct {
	FaultVA addr.VirtAddr
	Offset  addr.Offset
}

// VMA is one contiguous virtual address range of a process.
type VMA struct {
	ID    int
	Start addr.VirtAddr
	End   addr.VirtAddr // exclusive
	Kind  Kind
	// FileID identifies the backing file for FileBacked VMAs.
	FileID int
	// FileOff is the file offset of Start for FileBacked VMAs (bytes).
	FileOff uint64

	// Budget overrides MaxOffsets for this VMA when positive (the
	// offset-budget ablation); 0 means the default.
	Budget int

	// MappedPages counts base pages currently backed by frames.
	MappedPages uint64

	mu      sync.Mutex
	offsets []OffsetEntry // FIFO, at most MaxOffsets

	// replacing is the atomic flag gating Offset re-placement: only the
	// first failing thread re-places; the rest retry or fall back.
	replacing atomic.Bool

	// touched is a lazily allocated bitmap of 4 KiB pages the workload
	// actually accessed; it feeds bloat accounting (Table VI) and the
	// Ingens utilisation-gated promotion daemon.
	touched      []uint64
	touchedPages uint64
}

// MarkTouched records an access to the page at index pageIdx (relative
// to Start) and reports whether it is the first touch of that page.
func (v *VMA) MarkTouched(pageIdx uint64) bool {
	if pageIdx >= v.Pages() {
		return false
	}
	if v.touched == nil {
		v.touched = make([]uint64, (v.Pages()+63)/64)
	}
	w, b := pageIdx/64, pageIdx%64
	if v.touched[w]&(1<<b) != 0 {
		return false
	}
	v.touched[w] |= 1 << b
	v.touchedPages++
	return true
}

// MarkTouchedRange records accesses to the n pages starting at pageIdx,
// observably identical to n consecutive MarkTouched calls — the batched
// form the range-fault path uses after a quiet (no-fault) walk.
func (v *VMA) MarkTouchedRange(pageIdx, n uint64) {
	end := pageIdx + n
	if pages := v.Pages(); end > pages {
		end = pages
	}
	if pageIdx >= end {
		return
	}
	if v.touched == nil {
		v.touched = make([]uint64, (v.Pages()+63)/64)
	}
	// Word-at-a-time: OR a mask per word and popcount the newly set
	// bits, instead of a test-and-set per page.
	set := func(w, mask uint64) {
		if add := mask &^ v.touched[w]; add != 0 {
			v.touched[w] |= add
			v.touchedPages += uint64(bits.OnesCount64(add))
		}
	}
	i := pageIdx
	if r := i % 64; r != 0 {
		span := 64 - r
		if span > end-i {
			span = end - i
		}
		set(i/64, (1<<span-1)<<r)
		i += span
	}
	for ; i+64 <= end; i += 64 {
		set(i/64, ^uint64(0))
	}
	if i < end {
		set(i/64, 1<<(end-i)-1)
	}
}

// TouchedPages returns the number of distinct 4 KiB pages accessed.
func (v *VMA) TouchedPages() uint64 { return v.touchedPages }

// RegionTouched counts touched pages within [pageIdx, pageIdx+n), the
// utilisation signal Ingens promotion uses. It popcounts whole bitmap
// words: the Ingens daemon probes every 2 MiB region of every VMA each
// epoch, so the page-at-a-time scan this replaces dominated whole
// sweeps under daemon-heavy policies.
func (v *VMA) RegionTouched(pageIdx, n uint64) uint64 {
	if v.touched == nil {
		return 0
	}
	end := pageIdx + n
	if pages := v.Pages(); end > pages {
		end = pages
	}
	if pageIdx >= end {
		return 0
	}
	var count uint64
	i := pageIdx
	if r := i % 64; r != 0 {
		w := v.touched[i/64] >> r
		span := 64 - r
		if span > end-i {
			span = end - i
			w &= 1<<span - 1
		}
		count += uint64(bits.OnesCount64(w))
		i += span
	}
	for ; i+64 <= end; i += 64 {
		count += uint64(bits.OnesCount64(v.touched[i/64]))
	}
	if i < end {
		count += uint64(bits.OnesCount64(v.touched[i/64] & (1<<(end-i) - 1)))
	}
	return count
}

// New creates a VMA covering [start, start+size). Both must be page
// aligned.
func New(id int, start addr.VirtAddr, size uint64, kind Kind) *VMA {
	if !start.PageAligned() || size == 0 || size%addr.PageSize != 0 {
		panic(fmt.Sprintf("vma: bad geometry start=%v size=%d", start, size))
	}
	return &VMA{ID: id, Start: start, End: start.Add(size), Kind: kind}
}

// Size returns the VMA length in bytes.
func (v *VMA) Size() uint64 { return uint64(v.End - v.Start) }

// Pages returns the VMA length in base pages.
func (v *VMA) Pages() uint64 { return v.Size() / addr.PageSize }

// Contains reports whether va falls inside the VMA.
func (v *VMA) Contains(va addr.VirtAddr) bool { return va >= v.Start && va < v.End }

// UnmappedPages returns how many pages are not yet backed — the key CA
// paging uses for sub-VMA re-placement decisions.
func (v *VMA) UnmappedPages() uint64 { return v.Pages() - v.MappedPages }

func (v *VMA) String() string {
	return fmt.Sprintf("vma{%d %s [%v,%v) %dKB}", v.ID, v.Kind, v.Start, v.End, v.Size()/1024)
}

// --- CA paging offset metadata ---

// TrackOffset records a new [faultVA, offset] pair, evicting the oldest
// entry when the FIFO budget is exhausted.
func (v *VMA) TrackOffset(faultVA addr.VirtAddr, off addr.Offset) {
	v.mu.Lock()
	defer v.mu.Unlock()
	budget := v.Budget
	if budget <= 0 {
		budget = MaxOffsets
	}
	if len(v.offsets) >= budget {
		n := copy(v.offsets, v.offsets[len(v.offsets)-budget+1:])
		v.offsets = v.offsets[:n]
	}
	v.offsets = append(v.offsets, OffsetEntry{FaultVA: faultVA, Offset: off})
}

// NearestOffset returns the tracked offset whose fault VA is closest to
// va (§III-C: "CA paging picks the Offset associated with the virtual
// address closest to the currently faulting").
func (v *VMA) NearestOffset(va addr.VirtAddr) (addr.Offset, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.offsets) == 0 {
		return 0, false
	}
	best := v.offsets[0]
	bestDist := dist(best.FaultVA, va)
	for _, e := range v.offsets[1:] {
		if d := dist(e.FaultVA, va); d < bestDist {
			best, bestDist = e, d
		}
	}
	return best.Offset, true
}

// OffsetCount returns the number of tracked offsets.
func (v *VMA) OffsetCount() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.offsets)
}

// ClearOffsets drops all tracked offsets (used by tests and teardown).
func (v *VMA) ClearOffsets() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.offsets = nil
}

func dist(a, b addr.VirtAddr) uint64 {
	if a > b {
		return uint64(a - b)
	}
	return uint64(b - a)
}

// TryBeginReplacement attempts to acquire the per-VMA re-placement gate.
// Exactly one concurrent caller wins; it must call EndReplacement.
func (v *VMA) TryBeginReplacement() bool {
	return v.replacing.CompareAndSwap(false, true)
}

// EndReplacement releases the re-placement gate.
func (v *VMA) EndReplacement() { v.replacing.Store(false) }

// --- address-space VMA set ---

// Set is an address-ordered collection of non-overlapping VMAs.
type Set struct {
	vmas   []*VMA // sorted by Start
	nextID int
}

// Insert adds a VMA covering [start,start+size). It fails if the range
// overlaps an existing VMA.
func (s *Set) Insert(start addr.VirtAddr, size uint64, kind Kind) (*VMA, error) {
	end := start.Add(size)
	i := sort.Search(len(s.vmas), func(i int) bool { return s.vmas[i].End > start })
	if i < len(s.vmas) && s.vmas[i].Start < end {
		return nil, fmt.Errorf("vma: [%v,%v) overlaps %v", start, end, s.vmas[i])
	}
	s.nextID++
	v := New(s.nextID, start, size, kind)
	s.vmas = append(s.vmas, nil)
	copy(s.vmas[i+1:], s.vmas[i:])
	s.vmas[i] = v
	return v, nil
}

// Remove deletes the VMA (by identity). Reports whether it was present.
func (s *Set) Remove(v *VMA) bool {
	for i, cur := range s.vmas {
		if cur == v {
			s.vmas = append(s.vmas[:i], s.vmas[i+1:]...)
			return true
		}
	}
	return false
}

// Find returns the VMA containing va, or nil.
func (s *Set) Find(va addr.VirtAddr) *VMA {
	i := sort.Search(len(s.vmas), func(i int) bool { return s.vmas[i].End > va })
	if i < len(s.vmas) && s.vmas[i].Contains(va) {
		return s.vmas[i]
	}
	return nil
}

// Len returns the number of VMAs.
func (s *Set) Len() int { return len(s.vmas) }

// Visit walks VMAs in address order.
func (s *Set) Visit(fn func(*VMA)) {
	for _, v := range s.vmas {
		fn(v)
	}
}
