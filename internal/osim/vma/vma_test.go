package vma

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/mem/addr"
)

func TestNewGeometry(t *testing.T) {
	v := New(1, 0x10000, 16*addr.PageSize, Anonymous)
	if v.Size() != 16*addr.PageSize || v.Pages() != 16 {
		t.Fatal("size wrong")
	}
	if !v.Contains(0x10000) || !v.Contains(v.End-1) || v.Contains(v.End) {
		t.Fatal("Contains boundaries wrong")
	}
	if v.UnmappedPages() != 16 {
		t.Fatal("fresh VMA fully unmapped")
	}
	v.MappedPages = 5
	if v.UnmappedPages() != 11 {
		t.Fatal("UnmappedPages wrong")
	}
	assertPanics(t, func() { New(2, 0x10001, addr.PageSize, Anonymous) })
	assertPanics(t, func() { New(3, 0x10000, 0, Anonymous) })
	assertPanics(t, func() { New(4, 0x10000, 100, Anonymous) })
}

func assertPanics(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

func TestKindString(t *testing.T) {
	if Anonymous.String() != "anon" || FileBacked.String() != "file" {
		t.Fatal("Kind strings")
	}
}

func TestOffsetTrackingFIFO(t *testing.T) {
	v := New(1, 0, uint64(MaxOffsets+10)*addr.HugeSize, Anonymous)
	for i := 0; i < MaxOffsets+10; i++ {
		v.TrackOffset(addr.VirtAddr(i)*addr.HugeSize, addr.Offset(i))
	}
	if v.OffsetCount() != MaxOffsets {
		t.Fatalf("count = %d, want %d", v.OffsetCount(), MaxOffsets)
	}
	// The 10 oldest entries were evicted: nearest to VA 0 is entry 10.
	off, ok := v.NearestOffset(0)
	if !ok || off != addr.Offset(10) {
		t.Fatalf("NearestOffset(0) = (%d, %v), want 10", off, ok)
	}
}

func TestNearestOffsetSelection(t *testing.T) {
	v := New(1, 0, 100*addr.HugeSize, Anonymous)
	if _, ok := v.NearestOffset(0); ok {
		t.Fatal("no offsets yet")
	}
	v.TrackOffset(10*addr.HugeSize, 111)
	v.TrackOffset(50*addr.HugeSize, 222)
	v.TrackOffset(90*addr.HugeSize, 333)
	cases := []struct {
		va   addr.VirtAddr
		want addr.Offset
	}{
		{0, 111},
		{29 * addr.HugeSize, 111},
		{31 * addr.HugeSize, 222},
		{69 * addr.HugeSize, 222},
		{95 * addr.HugeSize, 333},
	}
	for _, c := range cases {
		if got, _ := v.NearestOffset(c.va); got != c.want {
			t.Errorf("NearestOffset(%v) = %d, want %d", c.va, got, c.want)
		}
	}
	v.ClearOffsets()
	if v.OffsetCount() != 0 {
		t.Fatal("ClearOffsets")
	}
}

func TestReplacementGateMutualExclusion(t *testing.T) {
	v := New(1, 0, addr.PageSize, Anonymous)
	if !v.TryBeginReplacement() {
		t.Fatal("first acquire should win")
	}
	if v.TryBeginReplacement() {
		t.Fatal("second acquire should lose")
	}
	v.EndReplacement()
	if !v.TryBeginReplacement() {
		t.Fatal("reacquire after release should win")
	}
	v.EndReplacement()
}

func TestReplacementGateConcurrent(t *testing.T) {
	v := New(1, 0, addr.PageSize, Anonymous)
	const goroutines = 32
	var wg sync.WaitGroup
	winners := make(chan int, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if v.TryBeginReplacement() {
				winners <- id
			}
		}(i)
	}
	wg.Wait()
	close(winners)
	n := 0
	for range winners {
		n++
	}
	if n != 1 {
		t.Fatalf("%d concurrent winners, want exactly 1", n)
	}
}

func TestConcurrentOffsetTracking(t *testing.T) {
	v := New(1, 0, 1024*addr.HugeSize, Anonymous)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				v.TrackOffset(addr.VirtAddr(g*100+i)*addr.PageSize, addr.Offset(i))
				v.NearestOffset(addr.VirtAddr(i) * addr.PageSize)
			}
		}(g)
	}
	wg.Wait()
	if v.OffsetCount() != MaxOffsets {
		t.Fatalf("count = %d", v.OffsetCount())
	}
}

func TestSetInsertFindRemove(t *testing.T) {
	var s Set
	a, err := s.Insert(0x10000, 4*addr.PageSize, Anonymous)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Insert(0x40000, 4*addr.PageSize, FileBacked)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatal("Len")
	}
	if s.Find(0x10000) != a || s.Find(0x40000+3*addr.PageSize) != b {
		t.Fatal("Find wrong")
	}
	if s.Find(0x30000) != nil {
		t.Fatal("gap should find nil")
	}
	// Overlap rejection, both directions.
	if _, err := s.Insert(0x10000+addr.PageSize, addr.PageSize, Anonymous); err == nil {
		t.Fatal("overlap accepted")
	}
	if _, err := s.Insert(0xF000, 2*addr.PageSize, Anonymous); err == nil {
		t.Fatal("left-overlap accepted")
	}
	if !s.Remove(a) {
		t.Fatal("Remove failed")
	}
	if s.Remove(a) {
		t.Fatal("double Remove succeeded")
	}
	if s.Find(0x10000) != nil {
		t.Fatal("removed VMA still found")
	}
	// Freed range is insertable again.
	if _, err := s.Insert(0x10000, 4*addr.PageSize, Anonymous); err != nil {
		t.Fatal(err)
	}
}

func TestSetOrderedVisit(t *testing.T) {
	var s Set
	for _, start := range []addr.VirtAddr{0x90000, 0x10000, 0x50000} {
		if _, err := s.Insert(start, addr.PageSize, Anonymous); err != nil {
			t.Fatal(err)
		}
	}
	var prev addr.VirtAddr
	s.Visit(func(v *VMA) {
		if v.Start < prev {
			t.Fatal("Visit out of order")
		}
		prev = v.Start
	})
}

func TestSetNonOverlapProperty(t *testing.T) {
	f := func(starts []uint16) bool {
		var s Set
		for _, raw := range starts {
			start := addr.VirtAddr(raw) << addr.PageShift
			s.Insert(start, 4*addr.PageSize, Anonymous) // error is fine
		}
		// Invariant: visited VMAs are sorted and disjoint.
		var prevEnd addr.VirtAddr
		ok := true
		s.Visit(func(v *VMA) {
			if v.Start < prevEnd {
				ok = false
			}
			prevEnd = v.End
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
