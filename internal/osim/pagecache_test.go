package osim

import (
	"testing"

	"repro/internal/mem/addr"
)

func TestPageCacheReadPopulates(t *testing.T) {
	k := newKernel(t, 16, DefaultPolicy{})
	f := k.Cache.CreateFile(100 * addr.PageSize)
	if f.Pages() != 100 {
		t.Fatalf("Pages = %d", f.Pages())
	}
	if err := k.Cache.Read(f, 0, 10*addr.PageSize); err != nil {
		t.Fatal(err)
	}
	// Readahead rounds population up to the window.
	if f.CachedPages() != ReadaheadPages {
		t.Fatalf("cached = %d, want %d", f.CachedPages(), ReadaheadPages)
	}
	// Buffered reads are not page faults, but they cost time.
	if k.Stats.Faults[FaultFile] != 0 {
		t.Fatalf("file faults = %d, want 0 for buffered reads", k.Stats.Faults[FaultFile])
	}
	if k.Clock == 0 {
		t.Fatal("cache fills should charge allocation time")
	}
	// Re-read is free.
	clockBefore := k.Clock
	if err := k.Cache.Read(f, 0, 10*addr.PageSize); err != nil {
		t.Fatal(err)
	}
	if k.Clock != clockBefore {
		t.Fatal("cached re-read cost time")
	}
	// EOF guard.
	if err := k.Cache.Read(f, 99*addr.PageSize, 2*addr.PageSize); err == nil {
		t.Fatal("read past EOF should fail")
	}
}

func TestPageCacheSurvivesProcessExit(t *testing.T) {
	k := newKernel(t, 16, DefaultPolicy{})
	f := k.Cache.CreateFile(32 * addr.PageSize)
	p := k.NewProcess(0)
	v, err := p.MMapFile(f, 0, f.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	touchRange(t, p, v.Start, v.Size(), addr.PageSize)
	if f.CachedPages() != 32 {
		t.Fatalf("cached = %d", f.CachedPages())
	}
	resident := k.Cache.ResidentPages
	p.Exit()
	// Cache pages outlive the process.
	if k.Cache.ResidentPages != resident || f.CachedPages() != 32 {
		t.Fatal("page cache dropped on process exit")
	}
	// Frames still allocated.
	if k.Machine.FreePages() == k.Machine.TotalPages() {
		t.Fatal("cache frames were freed with the process")
	}
	// A second process maps the same file: no new cache fills.
	before := k.Stats.Faults[FaultFile]
	p2 := k.NewProcess(0)
	v2, _ := p2.MMapFile(f, 0, f.Bytes)
	touchRange(t, p2, v2.Start, v2.Size(), addr.PageSize)
	// Mapping faults occur, but no readahead allocations (same count of
	// cache fills as before plus 32 map-in faults).
	if k.Stats.Faults[FaultFile] != before+32 {
		t.Fatalf("file faults = %d, want %d", k.Stats.Faults[FaultFile], before+32)
	}
	p2.Exit()
	k.Cache.DropAll()
	if k.Machine.FreePages() != k.Machine.TotalPages() {
		t.Fatal("DropAll leaked frames")
	}
	if k.Cache.ResidentPages != 0 {
		t.Fatal("ResidentPages nonzero after DropAll")
	}
}

func TestPageCacheSharedFrames(t *testing.T) {
	k := newKernel(t, 16, DefaultPolicy{})
	f := k.Cache.CreateFile(4 * addr.PageSize)
	p1, p2 := k.NewProcess(0), k.NewProcess(0)
	v1, _ := p1.MMapFile(f, 0, f.Bytes)
	v2, _ := p2.MMapFile(f, 0, f.Bytes)
	touchRange(t, p1, v1.Start, v1.Size(), addr.PageSize)
	touchRange(t, p2, v2.Start, v2.Size(), addr.PageSize)
	pa1, _ := p1.Translate(v1.Start)
	pa2, _ := p2.Translate(v2.Start)
	if pa1 != pa2 {
		t.Fatal("file page not shared between processes")
	}
	// Exit both; frames stay until cache drop.
	p1.Exit()
	p2.Exit()
	if k.Machine.Frames.IsFree(pa1.Frame()) {
		t.Fatal("cache frame freed while cached")
	}
	k.Cache.DropFile(f)
	if !k.Machine.Frames.IsFree(pa1.Frame()) {
		t.Fatal("cache frame not freed after drop")
	}
}

func TestCAFilePlacementContiguous(t *testing.T) {
	// Under CA paging, cache pages of one file form a contiguous
	// physical run even when reads interleave with anonymous faults —
	// the per-file Offset steering of §III-C.
	k := newKernel(t, 64, CAPolicy{})
	f := k.Cache.CreateFile(64 * addr.PageSize)
	p := k.NewProcess(0)
	anon, _ := p.MMap(64 * addr.PageSize)
	k.THPEnabled = false
	// Interleave: read a file chunk, touch an anon chunk.
	for i := uint64(0); i < 64; i += ReadaheadPages {
		if err := k.Cache.Read(f, i*addr.PageSize, ReadaheadPages*addr.PageSize); err != nil {
			t.Fatal(err)
		}
		for j := i; j < i+ReadaheadPages; j++ {
			if _, err := p.Touch(anon.Start.Add(j*addr.PageSize), true); err != nil {
				t.Fatal(err)
			}
		}
	}
	// File pages must be physically consecutive.
	first, ok := f.cachedPFN(0)
	if !ok {
		t.Fatal("file page 0 not cached")
	}
	for i := uint64(1); i < 64; i++ {
		pfn, ok := f.cachedPFN(i)
		if !ok || pfn != first+addr.PFN(i) {
			t.Fatalf("file page %d at %d, want %d (scattered cache)", i, pfn, first+addr.PFN(i))
		}
	}
}

func TestMMapFileBeyondEOFSegfaults(t *testing.T) {
	k := newKernel(t, 16, DefaultPolicy{})
	f := k.Cache.CreateFile(2 * addr.PageSize)
	p := k.NewProcess(0)
	v, _ := p.MMapFile(f, 0, 4*addr.PageSize) // mapping larger than file
	if _, err := p.Touch(v.Start.Add(3*addr.PageSize), false); err != ErrSegfault {
		t.Fatalf("want ErrSegfault past EOF, got %v", err)
	}
}
