package osim

import (
	"fmt"
	"sort"

	"repro/internal/mem/addr"
	"repro/internal/osim/pagetable"
	"repro/internal/osim/vma"
)

// ReadaheadPages is the page-cache readahead window: a cache miss
// populates this many consecutive file pages at once, mirroring the
// Linux readahead allocations the paper steers with a per-file Offset.
const ReadaheadPages = 16

// File is a simulated file whose pages live in the page cache. Cache
// pages persist after the mapping processes exit — the property that
// makes scattered cache allocations a long-lived fragmentation source
// (§III-C) and contiguous ones a fragmentation restraint (Fig. 9).
type File struct {
	ID    int
	Bytes uint64

	// pages holds the cached frame of each file page, indexed by file
	// page number and encoded as PFN+1 (0 = not resident): a dense
	// array beats a map in the readahead fill loop, and the +1
	// encoding makes a fresh zeroed slice mean "nothing cached".
	pages  []addr.PFN
	cached uint64

	// CA paging per-file placement state (struct address_space Offset).
	offset       addr.Offset
	placedOffset bool
}

// Pages returns the file length in pages.
func (f *File) Pages() uint64 { return addr.BytesToPages(f.Bytes) }

// CachedPages returns how many of the file's pages are resident.
func (f *File) CachedPages() uint64 { return f.cached }

// cachedPFN returns the frame caching file page idx, if resident.
func (f *File) cachedPFN(idx uint64) (addr.PFN, bool) {
	v := f.pages[idx]
	if v == 0 {
		return 0, false
	}
	return v - 1, true
}

func (f *File) setCached(idx uint64, pfn addr.PFN) {
	f.pages[idx] = pfn + 1
	f.cached++
}

func (f *File) dropCached(idx uint64) {
	f.pages[idx] = 0
	f.cached--
}

// PageCache is the system-wide cache of file pages.
type PageCache struct {
	kernel *Kernel
	files  map[int]*File
	nextID int
	// ResidentPages counts cached frames across all files.
	ResidentPages uint64

	// visitIDs is VisitCached's reused sort scratch, so the audit
	// engine's per-snapshot cache walk stays allocation-free once warm.
	visitIDs []int
}

func newPageCache(k *Kernel) *PageCache {
	return &PageCache{kernel: k, files: make(map[int]*File)}
}

// CreateFile registers a file of the given size.
func (c *PageCache) CreateFile(bytes uint64) *File {
	c.nextID++
	f := &File{ID: c.nextID, Bytes: bytes, pages: make([]addr.PFN, addr.BytesToPages(bytes))}
	c.files[f.ID] = f
	return f
}

// File returns the file with the given ID, or nil.
func (c *PageCache) File(id int) *File { return c.files[id] }

// VisitCached calls fn for every resident cache page, in file-ID then
// file-page order. Auditors use it to account for the cache's base
// reference on each resident frame when reconciling MapCount against
// page-table leaves.
func (c *PageCache) VisitCached(fn func(f *File, pageIdx uint64, pfn addr.PFN)) {
	ids := c.visitIDs[:0]
	for id := range c.files {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	c.visitIDs = ids
	for _, id := range ids {
		f := c.files[id]
		for idx := uint64(0); idx < f.Pages(); idx++ {
			if pfn, ok := f.cachedPFN(idx); ok {
				fn(f, idx, pfn)
			}
		}
	}
}

// lookupOrFill returns the frame caching the file page, populating a
// readahead window on miss. Cache fills charge allocation time on the
// kernel clock but are *not* page faults: readahead allocation runs
// under read() syscalls, so only mapping faults (fileFault) count
// toward the Table V fault statistics.
func (c *PageCache) lookupOrFill(f *File, pageIdx uint64) (addr.PFN, error) {
	if pfn, ok := f.cachedPFN(pageIdx); ok {
		return pfn, nil
	}
	k := c.kernel
	end := pageIdx + ReadaheadPages
	if end > f.Pages() {
		end = f.Pages()
	}
	for i := pageIdx; i < end; i++ {
		if _, ok := f.cachedPFN(i); ok {
			continue
		}
		pfn, placed, err := k.Policy.PlaceFile(k, f, i, 0)
		if err != nil {
			return 0, err
		}
		f.setCached(i, pfn)
		c.ResidentPages++
		// Cache frames are owned by the cache: one base reference.
		k.Machine.Frames.Get(pfn).MapCount++
		k.Tick(k.faultLatency(0, placed))
	}
	pfn, _ := f.cachedPFN(pageIdx)
	return pfn, nil
}

// Read simulates a buffered read of [off, off+n) bytes: it populates
// the cache without mapping pages into any process.
func (c *PageCache) Read(f *File, off, n uint64) error {
	if off+n > f.Bytes {
		return fmt.Errorf("osim: read past EOF (%d+%d > %d)", off, n, f.Bytes)
	}
	for idx := off / addr.PageSize; idx <= (off+n-1)/addr.PageSize; idx++ {
		if _, err := c.lookupOrFill(f, idx); err != nil {
			return err
		}
	}
	return nil
}

// DropFile evicts a file's pages from the cache, freeing frames whose
// only reference was the cache. Pages are freed in file order: the
// free sequence feeds the buddy free lists, so any other order would
// make every later allocation run-to-run nondeterministic.
func (c *PageCache) DropFile(f *File) {
	k := c.kernel
	for idx := uint64(0); idx < f.Pages(); idx++ {
		pfn, ok := f.cachedPFN(idx)
		if !ok {
			continue
		}
		fr := k.Machine.Frames.Get(pfn)
		fr.MapCount--
		if fr.MapCount <= 0 {
			k.Machine.FreeBlock(pfn, 0)
		}
		f.dropCached(idx)
		c.ResidentPages--
	}
	f.placedOffset = false
}

// DropAll evicts the whole cache (echo 3 > drop_caches) in file-ID
// order, for the same determinism reason as DropFile.
func (c *PageCache) DropAll() {
	ids := make([]int, 0, len(c.files))
	for id := range c.files {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		c.DropFile(c.files[id])
	}
}

// DropOldest evicts the oldest file still holding cache pages (LRU at
// file granularity — the reclaim kernels run under memory pressure).
// Reports whether anything was evicted.
func (c *PageCache) DropOldest() bool {
	best := 0
	for id, f := range c.files {
		if f.CachedPages() == 0 {
			continue
		}
		if best == 0 || id < best {
			best = id
		}
	}
	if best == 0 {
		return false
	}
	c.DropFile(c.files[best])
	return true
}

// ReclaimUnder evicts old files until at least minFreeFrac of the
// machine is free (or nothing is left to evict).
func (c *PageCache) ReclaimUnder(minFreeFrac float64) {
	k := c.kernel
	for float64(k.Machine.FreePages()) < minFreeFrac*float64(k.Machine.TotalPages()) {
		if !c.DropOldest() {
			return
		}
	}
}

// fileFault maps the cache page backing va into the faulting process,
// populating the cache if needed.
func (k *Kernel) fileFault(p *Process, v *vma.VMA, va addr.VirtAddr) error {
	f := k.Cache.File(v.FileID)
	if f == nil {
		return fmt.Errorf("osim: VMA %v references unknown file %d", v, v.FileID)
	}
	pageIdx := (v.FileOff + uint64(va-v.Start)) / addr.PageSize
	if pageIdx >= f.Pages() {
		return ErrSegfault
	}
	pfn, err := k.Cache.lookupOrFill(f, pageIdx)
	if err != nil {
		return err
	}
	base := va.PageDown()
	p.PT.Map4K(base, pfn, pagetable.Flags(0)) // file maps are read-only here
	k.Machine.Frames.Get(pfn).MapCount++
	v.MappedPages++
	p.RSSPages++
	k.recordFault(FaultFile, base, FaultBaseNs)
	return nil
}
