// Churn lifecycle regression tests: the bugs here were flushed out by
// the aging campaigns (internal/aging), which arrive/touch/exit tenants
// for long logical horizons. Both tests fail on the pre-fix daemons.
package daemon_test

import (
	"testing"

	"repro/internal/check"
	"repro/internal/mem/addr"
	"repro/internal/mem/zone"
	"repro/internal/osim"
	"repro/internal/osim/daemon"
	"repro/internal/osim/pagetable"
)

func churnKernel(blocks uint64) *osim.Kernel {
	m := zone.NewMachine(zone.Config{ZonePages: []uint64{blocks * addr.MaxOrderPages}})
	return osim.NewKernel(m, osim.DefaultPolicy{})
}

// TestRangerPlansStayBoundedUnderChurn churns processes through
// arrive/touch/exit with Ranger epochs interleaved and asserts the
// per-VMA plan map tracks the live VMA population instead of
// accumulating an entry per VMA ever planned. Pre-fix, defragVMA added
// plans that nothing ever deleted, so this loop left ~N entries.
func TestRangerPlansStayBoundedUnderChurn(t *testing.T) {
	k := churnKernel(32)
	rg := daemon.NewRanger(k)

	const procs = 40
	for i := 0; i < procs; i++ {
		p := k.NewProcess(0)
		v, err := p.MMap(2 << 20)
		if err != nil {
			t.Fatal(err)
		}
		for pg := uint64(0); pg < 32; pg++ {
			if _, err := p.Touch(v.Start.Add(pg*addr.PageSize), true); err != nil {
				t.Fatal(err)
			}
		}
		k.Tick(rg.Period + 1)
		rg.Maybe() // plans the live VMA, sweeps the dead ones
		if n := rg.PlanCount(); n > 2 {
			t.Fatalf("iteration %d: %d plans live, want <= 2 (1 live VMA)", i, n)
		}
		p.Exit()
	}
	k.Tick(rg.Period + 1)
	rg.Maybe()
	if n := rg.PlanCount(); n != 0 {
		t.Fatalf("after all %d processes exited: %d plans leaked, want 0", procs, n)
	}
}

// TestIngensPromoteSkipsCoWRegions is the fork-then-promote pin: a
// fully-populated huge region downgraded to CoW by Fork must NOT be
// promoted (khugepaged skips shared pages the same way), because
// promotion maps the copy Writable and would silently break the
// sharing with no CoW fault accounting. Once write faults privatise
// the parent's region, promotion must proceed again.
func TestIngensPromoteSkipsCoWRegions(t *testing.T) {
	k := churnKernel(16)
	ing := daemon.NewIngens(k) // disables THP: population maps 4K pages

	parent := k.NewProcess(0)
	v, err := parent.MMap(addr.HugeSize)
	if err != nil {
		t.Fatal(err)
	}
	for pg := uint64(0); pg < addr.HugePages; pg++ {
		if _, err := parent.Touch(v.Start.Add(pg*addr.PageSize), true); err != nil {
			t.Fatal(err)
		}
	}
	child := parent.Fork()

	ing.Scan()
	if n := k.Stats.Promotions; n != 0 {
		t.Fatalf("scan promoted %d CoW-shared regions, want 0", n)
	}
	pte, pages, ok := parent.PT.Lookup(v.Start)
	if !ok || pages != 1 {
		t.Fatalf("parent mapping rewritten: pages=%d ok=%v, want 4K leaf", pages, ok)
	}
	if !pte.Flags.Has(pagetable.CoW) || pte.Flags.Has(pagetable.Writable) {
		t.Fatalf("parent flags %b lost CoW protection", pte.Flags)
	}

	// CoW semantics survive: the child's first write still faults.
	faulted, err := child.Touch(v.Start, true)
	if err != nil {
		t.Fatal(err)
	}
	if !faulted {
		t.Fatal("child write did not CoW-fault — sharing was broken")
	}
	if err := check.Audit(k, nil); err != nil {
		t.Fatalf("post-scan audit: %v", err)
	}

	// Privatise the parent's whole region; promotion must now happen.
	for pg := uint64(0); pg < addr.HugePages; pg++ {
		if _, err := parent.Touch(v.Start.Add(pg*addr.PageSize), true); err != nil {
			t.Fatal(err)
		}
	}
	ing.Scan()
	if n := k.Stats.Promotions; n != 1 {
		t.Fatalf("private region promoted %d times, want exactly 1", n)
	}
	if _, pages, ok := parent.PT.Lookup(v.Start); !ok || pages != addr.HugePages {
		t.Fatalf("parent region not huge after promotion: pages=%d", pages)
	}
	if err := check.Audit(k, nil); err != nil {
		t.Fatalf("post-promotion audit: %v", err)
	}
}

// TestNewProcessValidatesHomeZone pins the constructor-time check that
// replaced zonelist's silent clamp-to-zone-0 for bogus home zones.
func TestNewProcessValidatesHomeZone(t *testing.T) {
	m := zone.NewMachine(zone.Config{ZonePages: []uint64{
		4 * addr.MaxOrderPages, 4 * addr.MaxOrderPages,
	}})
	k := osim.NewKernel(m, osim.DefaultPolicy{})
	for _, bad := range []int{-1, 2, 99} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewProcess(%d) did not panic on a 2-zone machine", bad)
				}
			}()
			k.NewProcess(bad)
		}()
	}
	if p := k.NewProcess(1); p.HomeZone != 1 {
		t.Fatalf("valid home zone rejected: got %d", p.HomeZone)
	}
}
