package daemon

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/mem/addr"
	"repro/internal/mem/zone"
	"repro/internal/osim"
	"repro/internal/osim/pagetable"
)

func newKernel(t testing.TB, nblocks uint64, p osim.Placement) *osim.Kernel {
	t.Helper()
	m := zone.NewMachine(zone.Config{ZonePages: []uint64{nblocks * addr.MaxOrderPages}})
	return osim.NewKernel(m, p)
}

func touchAll(t testing.TB, p *osim.Process, start addr.VirtAddr, bytes uint64) {
	t.Helper()
	for off := uint64(0); off < bytes; off += addr.PageSize {
		if _, err := p.Touch(start.Add(off), true); err != nil {
			t.Fatal(err)
		}
	}
}

// runs extracts physically contiguous mapping run lengths (descending).
func runs(p *osim.Process) []uint64 {
	var out []uint64
	var cur uint64
	var nextVA addr.VirtAddr
	var nextPFN addr.PFN
	p.PT.Visit(func(l pagetable.Leaf) {
		if cur > 0 && l.VA == nextVA && l.PTE.PFN == nextPFN {
			cur += l.Pages
		} else {
			if cur > 0 {
				out = append(out, cur)
			}
			cur = l.Pages
		}
		nextVA = l.VA.Add(l.Pages * addr.PageSize)
		nextPFN = l.PTE.PFN + addr.PFN(l.Pages)
	})
	if cur > 0 {
		out = append(out, cur)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}

func TestIngensDisablesSyncTHP(t *testing.T) {
	k := newKernel(t, 16, osim.DefaultPolicy{})
	NewIngens(k)
	if k.THPEnabled {
		t.Fatal("Ingens should disable synchronous THP")
	}
}

func TestIngensPromotesUtilizedRegions(t *testing.T) {
	k := newKernel(t, 16, osim.DefaultPolicy{})
	d := NewIngens(k)
	p := k.NewProcess(0)
	v, _ := p.MMap(2 * addr.HugeSize)
	touchAll(t, p, v.Start, v.Size())
	if p.PT.Mapped2M() != 0 {
		t.Fatal("pages should start 4K under Ingens")
	}
	d.Scan()
	if p.PT.Mapped2M() != 2 {
		t.Fatalf("promoted %d regions, want 2", p.PT.Mapped2M())
	}
	if p.PT.Mapped4K() != 0 {
		t.Fatalf("leftover 4K mappings: %d", p.PT.Mapped4K())
	}
	if k.Stats.Promotions != 2 {
		t.Fatalf("promotions = %d", k.Stats.Promotions)
	}
	// Idempotent: second scan promotes nothing.
	d.Scan()
	if k.Stats.Promotions != 2 {
		t.Fatal("re-promotion happened")
	}
	// No frame leak: RSS regions stay intact.
	if v.MappedPages != v.Pages() {
		t.Fatalf("mapped pages = %d", v.MappedPages)
	}
}

func TestIngensSkipsUnderutilizedRegions(t *testing.T) {
	k := newKernel(t, 16, osim.DefaultPolicy{})
	d := NewIngens(k)
	p := k.NewProcess(0)
	v, _ := p.MMap(addr.HugeSize)
	// Touch only 50% — below the 90% threshold.
	touchAll(t, p, v.Start, v.Size()/2)
	d.Scan()
	if k.Stats.Promotions != 0 {
		t.Fatal("underutilized region promoted")
	}
	// Ingens bloat stays minimal: only touched pages are resident.
	if v.MappedPages != 256 {
		t.Fatalf("mapped = %d, want 256", v.MappedPages)
	}
}

func TestIngensMaybeHonoursPeriod(t *testing.T) {
	k := newKernel(t, 16, osim.DefaultPolicy{})
	d := NewIngens(k)
	p := k.NewProcess(0)
	v, _ := p.MMap(addr.HugeSize)
	touchAll(t, p, v.Start, v.Size())
	clockBefore := k.Clock
	d.lastRun = clockBefore // pretend we just ran
	d.Maybe()
	if k.Stats.Promotions != 0 {
		t.Fatal("Maybe ran before period elapsed")
	}
	k.Tick(d.Period)
	d.Maybe()
	if k.Stats.Promotions != 1 {
		t.Fatal("Maybe did not run after period")
	}
}

func TestRangerCoalescesScatteredFootprint(t *testing.T) {
	// Allocate under the default policy with adversarial interleaving,
	// then let Ranger migrate everything into one run.
	k := newKernel(t, 64, osim.DefaultPolicy{})
	d := NewRanger(k)
	pa, pb := k.NewProcess(0), k.NewProcess(0)
	va, _ := pa.MMap(8 * addr.HugeSize)
	vb, _ := pb.MMap(8 * addr.HugeSize)
	for off := uint64(0); off < va.Size(); off += addr.HugeSize {
		if _, err := pa.Touch(va.Start.Add(off), true); err != nil {
			t.Fatal(err)
		}
		if _, err := pb.Touch(vb.Start.Add(off), true); err != nil {
			t.Fatal(err)
		}
	}
	if len(runs(pa)) == 1 {
		t.Skip("interleaving did not scatter; nothing to defragment")
	}
	// Converge over epochs.
	for i := 0; i < 20; i++ {
		d.Epoch()
	}
	if got := runs(pa); len(got) != 1 {
		t.Fatalf("ranger left %d runs for A: %v", len(got), got)
	}
	if k.Stats.Migrations == 0 || k.Stats.Shootdowns == 0 {
		t.Fatal("ranger migrations not accounted")
	}
}

func TestRangerRateLimit(t *testing.T) {
	k := newKernel(t, 64, osim.DefaultPolicy{})
	d := NewRanger(k)
	d.PagesPerEpoch = 512 // one huge page per epoch
	pa, pb := k.NewProcess(0), k.NewProcess(0)
	va, _ := pa.MMap(4 * addr.HugeSize)
	vb, _ := pb.MMap(4 * addr.HugeSize)
	for off := uint64(0); off < va.Size(); off += addr.HugeSize {
		pa.Touch(va.Start.Add(off), true)
		pb.Touch(vb.Start.Add(off), true)
	}
	migBefore := k.Stats.Migrations
	d.Epoch()
	if got := k.Stats.Migrations - migBefore; got > 512 {
		t.Fatalf("epoch migrated %d pages, budget 512", got)
	}
}

func TestRangerConvergesIncrementally(t *testing.T) {
	// Migration progress should be monotonic: coverage of the largest
	// run never decreases across epochs.
	k := newKernel(t, 64, osim.DefaultPolicy{})
	d := NewRanger(k)
	d.PagesPerEpoch = 1024
	pa, pb := k.NewProcess(0), k.NewProcess(0)
	va, _ := pa.MMap(8 * addr.HugeSize)
	vb, _ := pb.MMap(8 * addr.HugeSize)
	for off := uint64(0); off < va.Size(); off += addr.HugeSize {
		pa.Touch(va.Start.Add(off), true)
		pb.Touch(vb.Start.Add(off), true)
	}
	var prev uint64
	for i := 0; i < 30; i++ {
		d.Epoch()
		r := runs(pa)
		if len(r) == 0 {
			t.Fatal("no runs")
		}
		if r[0] < prev {
			t.Fatalf("largest run regressed: %d -> %d", prev, r[0])
		}
		prev = r[0]
	}
	if prev != va.Pages() {
		t.Fatalf("did not converge: largest run %d of %d", prev, va.Pages())
	}
}

func TestRangerLeavesInPlaceMappingsAlone(t *testing.T) {
	// A footprint that is already contiguous from CA paging needs no
	// migrations once anchored at its own location... Ranger anchors at
	// the largest free cluster though, so it may still move everything
	// once. What must hold: after convergence, zero further migrations.
	k := newKernel(t, 64, osim.CAPolicy{})
	d := NewRanger(k)
	p := k.NewProcess(0)
	v, _ := p.MMap(8 * addr.HugeSize)
	touchAll(t, p, v.Start, v.Size())
	for i := 0; i < 10; i++ {
		d.Epoch()
	}
	before := k.Stats.Migrations
	d.Epoch()
	if k.Stats.Migrations != before {
		t.Fatal("ranger keeps migrating a converged footprint")
	}
}

// TestMaybeNMatchesMaybeLoop pins the BatchDaemon contract the
// range-fault population path relies on: MaybeN(n) must leave the
// kernel in exactly the state n back-to-back Maybe calls do — gate
// checks, epoch work (promotions, migrations, their clock Ticks), and
// re-fires when an epoch's own latency pushes the clock past another
// period, all included. Two interleaved processes give both daemons
// real work (fragmented frames for Ranger, 4K regions for Ingens).
func TestMaybeNMatchesMaybeLoop(t *testing.T) {
	type batcher interface {
		Maybe()
		MaybeN(uint64)
	}
	cases := []struct {
		name string
		make func(k *osim.Kernel) batcher
	}{
		{"ingens", func(k *osim.Kernel) batcher { return NewIngens(k) }},
		{"ranger", func(k *osim.Kernel) batcher { return NewRanger(k) }},
	}
	const n = 5000
	leavesOf := func(p *osim.Process) []pagetable.Leaf {
		var out []pagetable.Leaf
		p.PT.Visit(func(l pagetable.Leaf) { out = append(out, l) })
		return out
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			run := func(batched bool) (*osim.Kernel, []pagetable.Leaf, []pagetable.Leaf) {
				k := newKernel(t, 64, osim.DefaultPolicy{})
				d := c.make(k)
				p1 := k.NewProcess(0)
				p2 := k.NewProcess(0)
				v1, err := p1.MMap(4 * addr.HugeSize)
				if err != nil {
					t.Fatal(err)
				}
				v2, err := p2.MMap(4 * addr.HugeSize)
				if err != nil {
					t.Fatal(err)
				}
				for off := uint64(0); off < v1.Size(); off += addr.PageSize {
					if _, err := p1.Touch(v1.Start.Add(off), true); err != nil {
						t.Fatal(err)
					}
					if _, err := p2.Touch(v2.Start.Add(off), true); err != nil {
						t.Fatal(err)
					}
				}
				k.Tick(3_000_000) // past the period: the first poll fires
				if batched {
					d.MaybeN(n)
				} else {
					for i := 0; i < n; i++ {
						d.Maybe()
					}
				}
				return k, leavesOf(p1), leavesOf(p2)
			}
			ka, a1, a2 := run(false)
			kb, b1, b2 := run(true)
			if ka.Clock != kb.Clock {
				t.Errorf("clock: loop %d, batched %d", ka.Clock, kb.Clock)
			}
			if !reflect.DeepEqual(ka.Stats, kb.Stats) {
				t.Errorf("stats diverge:\nloop    %+v\nbatched %+v", ka.Stats, kb.Stats)
			}
			if !reflect.DeepEqual(a1, b1) || !reflect.DeepEqual(a2, b2) {
				t.Error("page tables diverge between Maybe loop and MaybeN")
			}
		})
	}
}
