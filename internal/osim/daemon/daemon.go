// Package daemon implements the two asynchronous memory-management
// daemons the paper compares CA paging against:
//
//   - Ingens (Kwon et al., OSDI'16): utilisation-gated transparent huge
//     page promotion. The fault path maps 4 KiB pages only; a periodic
//     scan promotes huge-aligned regions whose utilisation crosses a
//     threshold, trading promotion latency for lower memory bloat.
//
//   - Translation Ranger (Yan et al., ISCA'19): contiguity-generating
//     defragmentation. A periodic scan migrates a bounded number of
//     pages per epoch toward per-VMA anchor regions, coalescing a
//     footprint *after* allocation — effective, but delayed, and each
//     migration costs copies and TLB shootdowns (Fig. 1c, Fig. 11).
//
// Both run on the kernel's logical clock: Maybe() fires when at least
// Period nanoseconds have elapsed since the previous epoch.
package daemon

import (
	"sort"

	"repro/internal/mem/addr"
	"repro/internal/mem/contigmap"
	"repro/internal/osim"
	"repro/internal/osim/pagetable"
	"repro/internal/osim/vma"
	"repro/internal/trace"
)

// fixpoint memoises "this daemon's last epoch changed nothing, and no
// input it reads has changed since". Every decision either daemon makes
// is a pure function of process state (VMAs, touch bitmaps, page
// tables — bracketed by Kernel.StateSeq) and the machine's free pool
// (bracketed by the buddy mutation counters), so an epoch at an
// unchanged key must repeat the previous epoch's no-op exactly and can
// be skipped outright. Epochs that migrated or promoted do not settle:
// they may be budget- or allocation-limited and must re-run.
type fixpoint struct {
	valid bool
	seq   uint64
	muts  uint64
}

func (f *fixpoint) settled(k *osim.Kernel) bool {
	return f.valid && f.seq == k.StateSeq() && f.muts == k.Machine.Mutations()
}

func (f *fixpoint) record(k *osim.Kernel, noop bool) {
	f.valid = noop
	f.seq = k.StateSeq()
	f.muts = k.Machine.Mutations()
}

// Ingens is the asynchronous huge-page promotion daemon.
type Ingens struct {
	Kernel *osim.Kernel
	// Period is the scan interval in logical nanoseconds.
	Period uint64
	// UtilThreshold is the fraction (0..1] of touched pages a 2 MiB
	// region needs before promotion (paper default 0.9).
	UtilThreshold float64
	// NoFixpoint disables the settled-epoch skip (equivalence tests).
	NoFixpoint bool

	lastRun uint64
	fp      fixpoint
}

// NewIngens creates the daemon with the defaults used in evaluation and
// disables synchronous THP on the kernel: under Ingens the fault path
// allocates base pages only.
func NewIngens(k *osim.Kernel) *Ingens {
	k.THPEnabled = false
	return &Ingens{Kernel: k, Period: 2_000_000, UtilThreshold: 0.9}
}

// Maybe runs a scan epoch if the period elapsed.
func (d *Ingens) Maybe() { d.MaybeN(1) }

// MaybeN absorbs n consecutive polls issued across a run of
// non-faulting touches — observably identical to n Maybe calls with no
// intervening simulator activity. The logical clock only moves through
// the daemon's own epochs during such a run, so the first poll that
// finds the gate closed proves every remaining poll is a no-op; an
// epoch that advances the clock past the period keeps the loop live,
// exactly as per-poll execution would.
func (d *Ingens) MaybeN(n uint64) {
	for ; n > 0; n-- {
		if d.Kernel.Clock-d.lastRun < d.Period {
			return
		}
		d.lastRun = d.Kernel.Clock
		tr := d.Kernel.Tracer
		start := tr.Start()
		before := d.Kernel.Stats.Promotions
		d.Scan()
		if tr != nil {
			tr.EmitSpan(trace.EvIngensEpoch, start, d.Kernel.Stats.Promotions-before, 0, d.Kernel.Clock)
			d.Kernel.Machine.TraceDepths()
			tr.Sample()
		}
	}
}

// Scan promotes every eligible huge region of every process. A scan
// whose inputs are unchanged since a zero-promotion scan is skipped
// (see fixpoint); this keeps long settle phases O(1) per epoch once
// the address space stops changing.
func (d *Ingens) Scan() {
	if !d.NoFixpoint && d.fp.settled(d.Kernel) {
		return
	}
	before := d.Kernel.Stats.Promotions
	for _, p := range d.Kernel.Processes() {
		p.VMAs.Visit(func(v *vma.VMA) {
			if v.Kind != vma.Anonymous {
				return
			}
			d.scanVMA(p, v)
		})
	}
	d.fp.record(d.Kernel, d.Kernel.Stats.Promotions == before)
}

func (d *Ingens) scanVMA(p *osim.Process, v *vma.VMA) {
	k := d.Kernel
	start := v.Start.HugeUp()
	for base := start; base.Add(addr.HugeSize) <= v.End; base = base.Add(addr.HugeSize) {
		pageIdx := uint64(base-v.Start) / addr.PageSize
		util := float64(v.RegionTouched(pageIdx, addr.HugePages)) / addr.HugePages
		if util < d.UtilThreshold {
			continue
		}
		// Already huge?
		if _, pages, ok := p.PT.Lookup(base); ok && pages == addr.HugePages {
			continue
		}
		// Fully 4K-mapped? Promotion needs every page present.
		if !regionFullyMapped(p.PT, base) {
			continue
		}
		// CoW guard, as khugepaged's page_mapcount == 1 check: promote
		// copies into a fresh private block mapped Writable, which on a
		// CoW-shared region would silently break the sharing and grant
		// write access without the fault path's copy accounting. Skip
		// such regions until write faults resolve them. FlagRun with no
		// bits to set is a pure probe; the region is fully mapped, so a
		// short run can only mean a CoW leaf stopped it.
		if p.PT.FlagRun(base, addr.HugePages, 0, pagetable.CoW) < addr.HugePages {
			continue
		}
		d.promote(p, v, base)
		_ = k
	}
}

// regionFullyMapped reports whether every base page of the 2 MiB region
// is mapped 4K. The leaf table's live count answers this in one
// descent; probing all 512 slots per region made the scan cost of
// every settle epoch quadratic in footprint.
func regionFullyMapped(pt *pagetable.Table, base addr.VirtAddr) bool {
	return pt.HugeRegionFull4K(base)
}

// promote replaces the region's 512 base mappings with one huge
// mapping, copying into a freshly allocated huge block. The scan's CoW
// guard ensures every replaced PTE is a private anonymous Writable
// mapping, so Writable is exactly the flag set the 4K leaves carried.
func (d *Ingens) promote(p *osim.Process, v *vma.VMA, base addr.VirtAddr) {
	k := d.Kernel
	dst, err := k.Machine.AllocBlock(p.HomeZone, addr.HugeOrder)
	if err != nil {
		return // no huge block available; skip
	}
	for off := uint64(0); off < addr.HugeSize; off += addr.PageSize {
		va := base.Add(off)
		pte, _, _ := p.PT.Unmap(va)
		f := k.Machine.Frames.Get(pte.PFN)
		f.MapCount--
		if f.MapCount <= 0 {
			k.Machine.FreeBlock(pte.PFN, 0)
		}
	}
	p.PT.Map2M(base, dst, pagetable.Writable)
	k.Machine.Frames.Get(dst).MapCount++
	k.Stats.Promotions++
	k.Stats.Migrations += addr.HugePages
	k.Stats.Shootdowns++
	k.Tick(addr.HugePages*osim.CopyPageNs + osim.ShootdownNs)
	if k.Tracer != nil {
		k.Tracer.Emit(trace.EvPromote, uint64(base), uint64(dst), k.Clock)
	}
}

// Ranger is the Translation Ranger defragmentation daemon.
type Ranger struct {
	Kernel *osim.Kernel
	// Period is the defragmentation epoch in logical nanoseconds.
	Period uint64
	// PagesPerEpoch bounds migration work per epoch (rate limiting).
	PagesPerEpoch uint64
	// NoFixpoint disables the settled-epoch skip (equivalence tests).
	NoFixpoint bool

	lastRun uint64
	fp      fixpoint
	// plans holds the per-VMA defragmentation plan chosen on first
	// scan: the VMA is carved into segments assigned to the largest
	// free clusters (largest-first), and pages migrate toward their
	// segment targets across epochs.
	plans map[*vma.VMA][]rangerSegment
}

// rangerSegment maps VMA pages [startPage, startPage+pages) to the
// physical run starting at target.
type rangerSegment struct {
	startPage uint64
	pages     uint64
	target    addr.PFN
}

// NewRanger creates the daemon with evaluation defaults.
func NewRanger(k *osim.Kernel) *Ranger {
	return &Ranger{
		Kernel:        k,
		Period:        2_000_000,
		PagesPerEpoch: addr.HugePages, // one huge page per epoch — migration is not free
		plans:         make(map[*vma.VMA][]rangerSegment),
	}
}

// Maybe runs a defragmentation epoch if the period elapsed.
func (d *Ranger) Maybe() { d.MaybeN(1) }

// MaybeN absorbs n consecutive polls of a non-faulting run; see
// Ingens.MaybeN for the gate argument, which holds here identically.
func (d *Ranger) MaybeN(n uint64) {
	for ; n > 0; n-- {
		if d.Kernel.Clock-d.lastRun < d.Period {
			return
		}
		d.lastRun = d.Kernel.Clock
		tr := d.Kernel.Tracer
		start := tr.Start()
		before := d.Kernel.Stats.Migrations
		d.Epoch()
		if tr != nil {
			tr.EmitSpan(trace.EvRangerEpoch, start, d.Kernel.Stats.Migrations-before, 0, d.Kernel.Clock)
			d.Kernel.Machine.TraceDepths()
			tr.Sample()
		}
	}
}

// Epoch scans all processes and migrates up to PagesPerEpoch pages
// toward their anchors. Multi-programmed scans are serial — the
// behaviour the paper calls out as penalising Ranger's response time
// (Fig. 10).
func (d *Ranger) Epoch() {
	if !d.NoFixpoint && d.fp.settled(d.Kernel) {
		return
	}
	before := d.Kernel.Stats.Migrations
	d.sweepPlans()
	budget := d.PagesPerEpoch
	for _, p := range d.Kernel.Processes() {
		if budget == 0 {
			break
		}
		p.VMAs.Visit(func(v *vma.VMA) {
			if v.Kind != vma.Anonymous || budget == 0 {
				return
			}
			budget = d.defragVMA(p, v, budget)
		})
	}
	// A migrating epoch is budget-limited, not converged: only an epoch
	// that moved nothing settles the memo.
	d.fp.record(d.Kernel, d.Kernel.Stats.Migrations == before)
}

// sweepPlans drops plan entries whose VMA is no longer attached to any
// live process. Unmap and exit notify no daemon, so the map is
// reconciled against the live VMA set once per epoch; without the
// sweep, tenant churn leaks one entry (keyed by *vma.VMA) per VMA of
// every exited process, unboundedly. Only deletions happen here, so
// the map's iteration order cannot influence simulation state.
func (d *Ranger) sweepPlans() {
	if len(d.plans) == 0 {
		return
	}
	live := make(map[*vma.VMA]struct{}, len(d.plans))
	for _, p := range d.Kernel.Processes() {
		p.VMAs.Visit(func(v *vma.VMA) { live[v] = struct{}{} })
	}
	for v := range d.plans {
		if _, ok := live[v]; !ok {
			delete(d.plans, v)
		}
	}
}

// PlanCount returns the number of per-VMA defragmentation plans
// currently held. The churn regression tests pin that it stays bounded
// by the live VMA population.
func (d *Ranger) PlanCount() int { return len(d.plans) }

// defragVMA migrates the VMA's mapped leaves toward its plan segments,
// returning the remaining budget.
func (d *Ranger) defragVMA(p *osim.Process, v *vma.VMA, budget uint64) uint64 {
	k := d.Kernel
	plan, ok := d.plans[v]
	if !ok {
		plan = d.choosePlan(p, v)
		d.plans[v] = plan
	}
	if len(plan) == 0 {
		return budget
	}
	// Scan the VMA's leaves in place with a range-bounded walk: the only
	// mutation inside the loop is MigratePage, whose Redirect rewrites a
	// leaf's frame without adding or removing slots, so the in-order walk
	// stays well-defined and visits the exact leaf sequence the old
	// snapshot-then-act loop saw. Stopping at budget exhaustion (instead
	// of snapshotting the whole footprint first) makes a rate-limited
	// epoch O(converged prefix + budget), not O(footprint).
	p.PT.VisitRange(v.Start, v.End, func(l pagetable.Leaf) bool {
		if budget < l.Pages {
			budget = 0
			return false
		}
		page := uint64(l.VA-v.Start) / addr.PageSize
		want, covered := planTarget(plan, page)
		if !covered || l.PTE.PFN == want {
			return true // unplanned tail or already in place
		}
		order := addr.LeafOrder(l.Pages)
		// The target slot must be free; Ranger iterates, so slots
		// occupied by other pages of this VMA resolve in later epochs
		// once those migrate away. (Real Ranger exchanges pages; the
		// iterative converge-over-epochs behaviour is the same.)
		if err := k.Machine.AllocBlockAt(want, order); err != nil {
			return true
		}
		if !k.MigratePage(p, l.VA, want) {
			k.Machine.FreeBlock(want, order)
			return true
		}
		budget -= l.Pages
		return true
	})
	return budget
}

// planTarget resolves the planned frame for a VMA page.
func planTarget(plan []rangerSegment, page uint64) (addr.PFN, bool) {
	for _, s := range plan {
		if page >= s.startPage && page < s.startPage+s.pages {
			return s.target + addr.PFN(page-s.startPage), true
		}
	}
	return 0, false
}

// choosePlan assigns the VMA's pages to the largest free clusters,
// largest first — Ranger packs the footprint as tightly as free
// contiguity allows, which is why it leads the 32-mapping coverage
// under memory pressure (§VI-A).
func (d *Ranger) choosePlan(p *osim.Process, v *vma.VMA) []rangerSegment {
	type free struct {
		start addr.PFN
		pages uint64
	}
	var clusters []free
	for _, z := range d.Kernel.Machine.Zones {
		z.Contig.Visit(func(c *contigmap.Cluster) {
			clusters = append(clusters, free{c.Start, c.Pages()})
		})
	}
	sort.Slice(clusters, func(i, j int) bool { return clusters[i].pages > clusters[j].pages })
	var plan []rangerSegment
	page := uint64(0)
	remaining := v.Pages()
	for _, c := range clusters {
		if remaining == 0 {
			break
		}
		take := c.pages
		if take > remaining {
			take = remaining
		}
		plan = append(plan, rangerSegment{startPage: page, pages: take, target: c.start})
		page += take
		remaining -= take
	}
	if len(plan) == 0 {
		// No free clusters: leave the footprint where it is.
		if pa, ok := p.Translate(v.Start); ok {
			plan = append(plan, rangerSegment{startPage: 0, pages: v.Pages(), target: pa.Frame()})
		}
	}
	return plan
}
