package osim

import (
	"sync"

	"repro/internal/mem/addr"
	"repro/internal/osim/vma"
)

// CAReservation is the optional reservation extension CA paging's
// discussion proposes for severe contention (§III-D): placement
// decisions soft-reserve their chosen region so concurrent placements
// by other VMAs skip it instead of landing inside. Reservations are
// advisory — nothing is allocated up front, so demand paging and memory
// utilisation are unchanged; a bounded FIFO keeps stale entries from
// pinning the placement search forever.
type CAReservation struct {
	mu    sync.Mutex
	spans []caSoftSpan
	// Cap bounds the tracked reservations (default 64).
	Cap int
}

type caSoftSpan struct {
	owner *vma.VMA
	start addr.PFN
	pages uint64
}

// NewCAReservation creates empty reservation state shared by one
// kernel's CA policy.
func NewCAReservation() *CAReservation { return &CAReservation{Cap: 64} }

// conflicts reports whether [start, start+pages) overlaps a region
// reserved by a different VMA.
func (r *CAReservation) conflicts(owner *vma.VMA, start addr.PFN, pages uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	end := start + addr.PFN(pages)
	for _, s := range r.spans {
		if s.owner == owner {
			continue
		}
		sEnd := s.start + addr.PFN(s.pages)
		if start < sEnd && s.start < end {
			return true
		}
	}
	return false
}

// reserve records a placement's chosen region.
func (r *CAReservation) reserve(owner *vma.VMA, start addr.PFN, pages uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cap := r.Cap
	if cap == 0 {
		cap = 64
	}
	if len(r.spans) == cap {
		copy(r.spans, r.spans[1:])
		r.spans = r.spans[:cap-1]
	}
	r.spans = append(r.spans, caSoftSpan{owner: owner, start: start, pages: pages})
}

// NewCAPolicyWithReservation builds CA paging with the reservation
// extension enabled.
func NewCAPolicyWithReservation() CAPolicy {
	return CAPolicy{Reservation: NewCAReservation()}
}
