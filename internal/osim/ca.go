package osim

import (
	"repro/internal/mem/addr"
	"repro/internal/osim/vma"
	"repro/internal/trace"
)

// CAPolicy is the paper's contiguity-aware paging (§III): demand paging
// whose physical allocations are steered through per-VMA Offsets and
// the per-zone contiguity map so that consecutive faults of a VMA land
// on consecutive frames.
//
// Mechanism summary (paper §III-B/C):
//   - first fault of a VMA runs a next-fit placement over the
//     contiguity map keyed by the whole VMA size and records the
//     resulting Offset on the VMA;
//   - later faults compute target = va - Offset (nearest tracked
//     Offset) and try a targeted buddy allocation there;
//   - a failed huge-page target triggers a re-placement keyed by the
//     remaining unmapped VMA size (sub-VMA placement, up to 64 Offsets,
//     FIFO), gated by the per-VMA atomic replacement flag;
//   - a failed 4 KiB target falls back to the default allocator and
//     skips Offset tracking;
//   - page-cache allocations are steered through a per-file Offset.
type CAPolicy struct {
	// Reservation optionally enables the §III-D reservation extension:
	// placements soft-reserve their regions so concurrent placements by
	// other VMAs are steered elsewhere. Nil disables it (the paper's
	// evaluated best-effort configuration).
	Reservation *CAReservation
}

// Name implements Placement.
func (CAPolicy) Name() string { return "ca" }

// OnMMap implements Placement. CA paging decides lazily, at first
// fault, so VMA creation is a no-op.
func (CAPolicy) OnMMap(*Kernel, *Process, *vma.VMA) error { return nil }

// MarksContiguity implements Placement: CA paging maintains the PTE
// contiguity bits that let the walker fill SpOT's prediction table.
func (CAPolicy) MarksContiguity() bool { return true }

// PlaceAnon implements Placement with the CA steering algorithm.
func (c CAPolicy) PlaceAnon(k *Kernel, p *Process, v *vma.VMA, va addr.VirtAddr, order int) (addr.PFN, bool, error) {
	placed := false
	off, have := v.NearestOffset(va)
	if !have {
		// First fault for this VMA: place it keyed by the full size.
		c.caPlace(k, p, v, va, v.Pages())
		k.Stats.CAReplacements++
		placed = true
		off, have = v.NearestOffset(va)
	}
	if have {
		if pfn, ok := caTryTarget(k, off, va, order); ok {
			k.Stats.CATargetHits++
			if k.Tracer != nil {
				k.Tracer.Emit(trace.EvCATargetHit, uint64(va), uint64(pfn), uint64(order))
			}
			return pfn, placed, nil
		}
		// Target unavailable: the free block ran out or another
		// allocation took it.
		if order == addr.HugeOrder {
			// Re-place keyed by the remaining unmapped region. The
			// atomic gate admits one concurrent re-placer; losers
			// retry the (possibly updated) nearest offset.
			if v.TryBeginReplacement() {
				c.caPlace(k, p, v, va, v.UnmappedPages())
				k.Stats.CAReplacements++
				v.EndReplacement()
				placed = true
			}
			if off, ok := v.NearestOffset(va); ok {
				if pfn, ok := caTryTarget(k, off, va, order); ok {
					k.Stats.CATargetHits++
					if k.Tracer != nil {
						k.Tracer.Emit(trace.EvCATargetHit, uint64(va), uint64(pfn), uint64(order))
					}
					return pfn, placed, nil
				}
			}
		}
		// 4 KiB fallback (or huge re-placement also missed): default
		// allocation, no Offset tracking.
		k.Stats.CAFallbacks++
		if k.Tracer != nil {
			k.Tracer.Emit(trace.EvCAFallback, uint64(va), uint64(order), 0)
		}
	}
	pfn, err := k.Machine.AllocBlock(p.HomeZone, order)
	if err != nil {
		return 0, placed, ErrOOM
	}
	return pfn, placed, nil
}

// caTryTarget attempts the targeted allocation at the offset-predicted
// frame for va.
func caTryTarget(k *Kernel, off addr.Offset, va addr.VirtAddr, order int) (addr.PFN, bool) {
	target := off.TargetPFN(va)
	if !addr.AlignedTo(target, order) {
		return 0, false
	}
	if err := k.Machine.AllocBlockAt(target, order); err != nil {
		return 0, false
	}
	return target, true
}

// caPlace runs the next-fit placement decision: find a free region for
// sizePages and anchor a new Offset so that the current fault maps to
// the region's start. With the reservation extension enabled, regions
// soft-reserved by other VMAs are skipped (the rover naturally advances
// on each retry).
func (c CAPolicy) caPlace(k *Kernel, p *Process, v *vma.VMA, va addr.VirtAddr, sizePages uint64) {
	if sizePages == 0 {
		sizePages = 1
	}
	const maxTries = 8
	for try := 0; try < maxTries; try++ {
		_, start, avail, ok := k.Machine.FindFit(p.HomeZone, sizePages)
		if !ok {
			return
		}
		if c.Reservation != nil {
			claim := sizePages
			if claim > avail {
				claim = avail
			}
			if c.Reservation.conflicts(v, start, claim) {
				continue
			}
			c.Reservation.reserve(v, start, claim)
		}
		off := addr.OffsetOf(va, start.Addr())
		v.TrackOffset(va, off)
		if k.Tracer != nil {
			k.Tracer.Emit(trace.EvCAPlace, uint64(va), uint64(off), sizePages)
		}
		return
	}
}

// PlaceFile implements Placement: page-cache allocations are steered by
// a per-file Offset so long-lived cache pages stay physically clustered
// instead of fragmenting the machine (§III-C "Supported faults").
func (CAPolicy) PlaceFile(k *Kernel, f *File, pageIdx uint64, order int) (addr.PFN, bool, error) {
	// The "virtual address" key for a file mapping is its byte offset.
	key := addr.VirtAddr(pageIdx << addr.PageShift)
	placed := false
	if !f.placedOffset {
		remaining := f.Pages() - f.CachedPages()
		if _, start, _, ok := k.Machine.FindFit(0, remaining); ok {
			f.offset = addr.OffsetOf(key, start.Addr())
			f.placedOffset = true
			placed = true
			if k.Tracer != nil {
				k.Tracer.Emit(trace.EvCAPlace, uint64(key), uint64(f.offset), remaining)
			}
		}
	}
	if f.placedOffset {
		if pfn, ok := caTryTarget(k, f.offset, key, order); ok {
			if k.Tracer != nil {
				k.Tracer.Emit(trace.EvCATargetHit, uint64(key), uint64(pfn), uint64(order))
			}
			return pfn, placed, nil
		}
		// Re-place once keyed by the remaining uncached pages.
		remaining := f.Pages() - f.CachedPages()
		if remaining == 0 {
			remaining = 1
		}
		if _, start, _, ok := k.Machine.FindFit(0, remaining); ok {
			f.offset = addr.OffsetOf(key, start.Addr())
			placed = true
			if pfn, ok := caTryTarget(k, f.offset, key, order); ok {
				return pfn, placed, nil
			}
		}
		k.Stats.CAFallbacks++
	}
	pfn, err := k.Machine.AllocBlock(0, order)
	if err != nil {
		return 0, placed, ErrOOM
	}
	return pfn, placed, nil
}
