package osim

import (
	"repro/internal/mem/addr"
	"repro/internal/osim/pagetable"
	"repro/internal/osim/vma"
	"repro/internal/trace"
)

// Touch simulates an access to va, faulting in memory on demand. It is
// the entry point workloads drive: it marks the touched-page bitmap,
// resolves copy-on-write on writes, and otherwise dispatches to the
// demand-paging fault path. It reports whether a fault was taken.
func (p *Process) Touch(va addr.VirtAddr, write bool) (bool, error) {
	v := p.VMAs.Find(va)
	if v == nil {
		return false, ErrSegfault
	}
	return p.TouchAt(v, va, write)
}

// TouchAt is Touch with the containing VMA already resolved: the
// range-fault path hoists the VMA lookup out of its per-page loop. v
// must be the VMA containing va.
func (p *Process) TouchAt(v *vma.VMA, va addr.VirtAddr, write bool) (bool, error) {
	// Touch-bitmap and Accessed/Dirty writes feed Ingens' utilization
	// probe, so even faultless touches invalidate daemon memos.
	p.kernel.mutSeq++
	v.MarkTouched(uint64(va-v.Start) / addr.PageSize)
	pte := p.lastLeaf
	if pte == nil || p.lastLeafGen != p.PT.Generation() ||
		uint64(va-p.lastLeafBase) >= p.lastLeafSpan {
		var pages uint64
		var ok bool
		pte, pages, ok = p.PT.Lookup(va)
		if !ok {
			p.lastLeaf = nil
			return true, p.kernel.demandFault(p, v, va, write)
		}
		span := pages * addr.PageSize
		p.lastLeaf = pte
		p.lastLeafBase = addr.VirtAddr(uint64(va) &^ (span - 1))
		p.lastLeafSpan = span
		p.lastLeafGen = p.PT.Generation()
	}
	if write && pte.Flags.Has(pagetable.CoW) {
		// cowFault remaps the page; drop the memo so the next touch
		// re-resolves (the generation bump would catch it anyway).
		p.lastLeaf = nil
		return true, p.kernel.cowFault(p, v, va)
	}
	pte.Flags |= pagetable.Accessed
	if write {
		pte.Flags |= pagetable.Dirty
	}
	return false, nil
}

// Translate resolves va through the process page table (no fault). The
// last-leaf memo serves the common populate pattern (Touch immediately
// followed by Translate of the same page) without a second descend; the
// memo only ever holds a present leaf and is invalidated by the
// generation check on any structural table change.
func (p *Process) Translate(va addr.VirtAddr) (addr.PhysAddr, bool) {
	if p.lastLeaf != nil && p.lastLeafGen == p.PT.Generation() &&
		uint64(va-p.lastLeafBase) < p.lastLeafSpan {
		return p.lastLeaf.PFN.Addr() + addr.PhysAddr(uint64(va-p.lastLeafBase)), true
	}
	return p.PT.Translate(va)
}

// demandFault handles a not-present fault: anonymous (4K or THP) or
// file-backed through the page cache.
func (k *Kernel) demandFault(p *Process, v *vma.VMA, va addr.VirtAddr, write bool) error {
	if v.Kind == vma.FileBacked {
		return k.fileFault(p, v, va)
	}
	// THP decision: use a 2 MiB fault when the aligned huge region lies
	// fully inside the VMA and nothing is mapped there yet.
	if k.THPEnabled && k.canMapHuge(p, v, va) {
		return k.anonFault(p, v, va.HugeDown(), addr.HugeOrder, write)
	}
	return k.anonFault(p, v, va.PageDown(), 0, write)
}

// canMapHuge reports whether the huge-aligned region around va can take
// a 2 MiB mapping: fully inside the VMA and currently empty. Emptiness
// is a leaf-table presence check — one radix descent to the PMD slot.
// (It used to probe all 512 page slots; the common case, first touch of
// an untouched region, ran the *whole* loop before concluding empty.)
func (k *Kernel) canMapHuge(p *Process, v *vma.VMA, va addr.VirtAddr) bool {
	base := va.HugeDown()
	if base < v.Start || base.Add(addr.HugeSize) > v.End {
		return false
	}
	return p.PT.HugeRegionEmpty(base)
}

// TouchRangeQuiet touches up to maxPages consecutive pages starting at
// va, advancing only while no fault would be taken: each page must be
// present and, on a write, not copy-on-write. It sets the hardware
// Accessed/Dirty bits and the touched bitmap exactly as the per-page
// TouchAt loop would, but walks each resolved leaf table linearly
// instead of descending per page. It stops before the first page that
// needs the fault path and returns how many pages it advanced over. v
// must contain [va, va+maxPages*4K).
func (p *Process) TouchRangeQuiet(v *vma.VMA, va addr.VirtAddr, maxPages uint64, write bool) uint64 {
	set := pagetable.Accessed
	var stop pagetable.Flags
	if write {
		set |= pagetable.Dirty
		stop = pagetable.CoW
	}
	var done uint64
	for done < maxPages {
		n := p.PT.FlagRun(va.Add(done*addr.PageSize), maxPages-done, set, stop)
		if n == 0 {
			break
		}
		done += n
	}
	if done > 0 {
		v.MarkTouchedRange(uint64(va-v.Start)/addr.PageSize, done)
		p.kernel.mutSeq++
	}
	return done
}

// anonFault allocates and maps one block of the given order at va.
func (k *Kernel) anonFault(p *Process, v *vma.VMA, va addr.VirtAddr, order int, write bool) error {
	pfn, placed, err := k.Policy.PlaceAnon(k, p, v, va, order)
	if err != nil {
		return err
	}
	flags := pagetable.Flags(pagetable.Writable)
	if order == addr.HugeOrder {
		p.PT.Map2M(va, pfn, flags)
		k.recordFault(FaultHuge, va, k.faultLatency(order, placed))
		v.MappedPages += addr.HugePages
		p.RSSPages += addr.HugePages
	} else {
		p.PT.Map4K(va, pfn, flags)
		k.recordFault(Fault4K, va, k.faultLatency(order, placed))
		v.MappedPages++
		p.RSSPages++
	}
	k.Machine.Frames.Get(pfn).MapCount++
	if k.Policy.MarksContiguity() {
		k.markContiguity(p.PT, va, pfn, order)
	}
	return nil
}

// faultLatency models fault service time: entry overhead + zeroing the
// allocated block (+ placement search when the policy made a decision).
func (k *Kernel) faultLatency(order int, placed bool) uint64 {
	lat := uint64(FaultBaseNs) + addr.OrderPages(order)*ZeroPageNs
	if placed {
		lat += PlacementNs
	}
	return lat
}

// cowFault resolves a write to a CoW mapping: allocate a private copy,
// remap, and drop the reference on the shared frame.
func (k *Kernel) cowFault(p *Process, v *vma.VMA, va addr.VirtAddr) error {
	pte, pages, ok := p.PT.Lookup(va)
	if !ok || !pte.Flags.Has(pagetable.CoW) {
		return nil
	}
	order := addr.LeafOrder(pages)
	base := va.PageDown()
	if order == addr.HugeOrder {
		base = va.HugeDown()
	}
	oldPFN := pte.PFN
	shared := k.Machine.Frames.Get(oldPFN)
	if shared.MapCount == 1 {
		// Last reference: just take ownership.
		pte.Flags = (pte.Flags &^ pagetable.CoW) | pagetable.Writable | pagetable.Dirty
		k.recordFault(FaultCoW, va, FaultBaseNs)
		return nil
	}
	newPFN, placed, err := k.Policy.PlaceAnon(k, p, v, base, order)
	if err != nil {
		return err
	}
	p.PT.Unmap(base)
	flags := pagetable.Flags(pagetable.Writable | pagetable.Dirty)
	if order == addr.HugeOrder {
		p.PT.Map2M(base, newPFN, flags)
	} else {
		p.PT.Map4K(base, newPFN, flags)
	}
	shared.MapCount--
	k.Machine.Frames.Get(newPFN).MapCount++
	lat := k.faultLatency(order, placed) + addr.OrderPages(order)*CopyPageNs
	k.recordFault(FaultCoW, base, lat)
	if k.Policy.MarksContiguity() {
		k.markContiguity(p.PT, base, newPFN, order)
	}
	return nil
}

// Fork creates a copy-on-write child: same VMA layout, shared frames,
// all anonymous writable mappings downgraded to CoW in both parent and
// child.
func (p *Process) Fork() *Process {
	k := p.kernel
	k.mutSeq++
	child := k.NewProcess(p.HomeZone)
	child.nextVA = p.nextVA
	p.VMAs.Visit(func(v *vma.VMA) {
		cv, err := child.VMAs.Insert(v.Start, v.Size(), v.Kind)
		if err != nil {
			panic("osim: fork VMA insert failed: " + err.Error())
		}
		cv.FileID = v.FileID
		cv.FileOff = v.FileOff
	})
	p.PT.Visit(func(l pagetable.Leaf) {
		v := p.VMAs.Find(l.VA)
		cv := child.VMAs.Find(l.VA)
		flags := l.PTE.Flags
		if v != nil && v.Kind == vma.Anonymous && flags.Has(pagetable.Writable) {
			flags = (flags &^ pagetable.Writable) | pagetable.CoW
			if pte, _, ok := p.PT.Lookup(l.VA); ok {
				pte.Flags = flags
			}
		}
		if l.Pages == addr.HugePages {
			child.PT.Map2M(l.VA, l.PTE.PFN, flags)
		} else {
			child.PT.Map4K(l.VA, l.PTE.PFN, flags)
		}
		k.Machine.Frames.Get(l.PTE.PFN).MapCount++
		child.RSSPages += l.Pages
		if cv != nil {
			cv.MappedPages += l.Pages
		}
	})
	return child
}

// markContiguity implements the PTE contiguity-bit protocol of §IV-C:
// after a successful allocation the OS checks whether the new mapping
// extends a contiguous run past the threshold, and if so tags the run's
// PTEs so the hardware walker will feed SpOT. The backward walk stops
// at the first already-tagged entry (a tagged run is by construction
// already past the threshold), keeping the amortised cost O(1).
func (k *Kernel) markContiguity(pt *pagetable.Table, va addr.VirtAddr, pfn addr.PFN, order int) {
	runPages := addr.OrderPages(order)
	// Walk backwards over VA-adjacent leaves that are also physically
	// adjacent (same offset).
	var walked []addr.VirtAddr
	curVA, curPFN := va, pfn
	thresholdMet := false
	for {
		if curVA < addr.PageSize { // underflow guard
			break
		}
		prevVA := curVA - addr.PageSize // last page of the predecessor leaf
		pte, pages, ok := pt.Lookup(prevVA)
		if !ok {
			break
		}
		// The predecessor leaf must end exactly where we begin, both
		// virtually (guaranteed: Lookup(prev page)) and physically.
		if pte.PFN+addr.PFN(pages) != curPFN {
			break
		}
		leafVA := curVA - addr.VirtAddr(pages*addr.PageSize)
		if pte.Flags.Has(pagetable.Contig) {
			thresholdMet = true
			break
		}
		walked = append(walked, leafVA)
		runPages += pages
		curVA, curPFN = leafVA, pte.PFN
		if runPages >= k.ContigThresholdPages {
			thresholdMet = true
			break
		}
	}
	if runPages >= k.ContigThresholdPages {
		thresholdMet = true
	}
	if !thresholdMet {
		return
	}
	pt.SetContig(va, true)
	for _, w := range walked {
		pt.SetContig(w, true)
	}
}

// MigratePage moves the leaf mapping at va to dst (same size block,
// already allocated by the caller), freeing the old frames. It models
// Ranger's migration cost: per-page copy plus a TLB shootdown.
func (k *Kernel) MigratePage(p *Process, va addr.VirtAddr, dst addr.PFN) bool {
	pte, pages, ok := p.PT.Lookup(va)
	if !ok {
		return false
	}
	k.mutSeq++
	old := pte.PFN
	order := addr.LeafOrder(pages)
	// Redirect (not a raw pte.PFN write): migration changes the
	// translation, so the table generation must move with it.
	p.PT.Redirect(va, dst)
	f := k.Machine.Frames.Get(old)
	f.MapCount--
	if f.MapCount <= 0 {
		k.Machine.FreeBlock(old, order)
	}
	k.Machine.Frames.Get(dst).MapCount++
	k.Stats.Migrations += pages
	k.Stats.Shootdowns++
	k.Tick(pages*CopyPageNs + ShootdownNs)
	if k.Tracer != nil {
		k.Tracer.Emit(trace.EvMigrate, uint64(va), uint64(dst), pages)
	}
	return true
}
