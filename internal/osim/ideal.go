package osim

import (
	"sort"

	"repro/internal/mem/addr"
	"repro/internal/osim/vma"
)

// IdealPolicy is the paper's "ideal paging" baseline: an offline
// best-fit over the contiguity map's state *before* execution, giving
// the maximum contiguity the machine's free memory could possibly
// provide. It then demand-pages exactly like CA paging, steered by the
// precomputed plan. Used as the upper bound in Figs. 7, 8, 12.
//
// Being offline, the planner sees all VMAs jointly: regions promised to
// earlier VMAs are subtracted from later snapshots, so concurrent plans
// never collide. Construct with NewIdealPolicy (the shared plan state
// lives behind a pointer).
type IdealPolicy struct {
	state *idealState
}

// idealState records the physical spans already promised to plans.
type idealState struct {
	reserved []idealSpan
}

type idealSpan struct {
	start addr.PFN
	pages uint64
}

// NewIdealPolicy creates the policy with fresh plan state.
func NewIdealPolicy() IdealPolicy { return IdealPolicy{state: &idealState{}} }

// Name implements Placement.
func (IdealPolicy) Name() string { return "ideal" }

// MarksContiguity implements Placement.
func (IdealPolicy) MarksContiguity() bool { return true }

// OnMMap implements Placement: compute the best-fit plan against a
// snapshot of the current free clusters minus regions promised to
// earlier plans, and pre-seed the VMA's Offsets.
func (ip IdealPolicy) OnMMap(k *Kernel, p *Process, v *vma.VMA) error {
	if v.Kind != vma.Anonymous {
		return nil
	}
	var snapshot []idealSpan
	for _, z := range zonesFrom(k.Machine, p.HomeZone) {
		z.Contig.VisitRanges(func(start addr.PFN, pages uint64) {
			snapshot = append(snapshot, idealSpan{start, pages})
		})
	}
	if ip.state != nil {
		snapshot = subtractSpans(snapshot, ip.state.reserved)
	}
	remaining := v.Pages()
	vaCursor := v.Start
	for remaining > 0 && len(snapshot) > 0 {
		// Best fit: smallest free span that still fits; otherwise the
		// largest available.
		sort.Slice(snapshot, func(i, j int) bool { return snapshot[i].pages < snapshot[j].pages })
		idx := sort.Search(len(snapshot), func(i int) bool { return snapshot[i].pages >= remaining })
		if idx == len(snapshot) {
			idx = len(snapshot) - 1 // largest
		}
		c := snapshot[idx]
		// Plans anchor Offsets serving 2 MiB faults: huge-align the
		// span start within the free region.
		alignedStart := addr.PFN((uint64(c.start) + 511) &^ 511)
		shift := uint64(alignedStart - c.start)
		if shift >= c.pages {
			snapshot = append(snapshot[:idx], snapshot[idx+1:]...)
			continue
		}
		c = idealSpan{alignedStart, c.pages - shift}
		take := c.pages
		if take > remaining {
			take = remaining
		}
		v.TrackOffset(vaCursor, addr.OffsetOf(vaCursor, c.start.Addr()))
		if ip.state != nil {
			ip.state.reserved = append(ip.state.reserved, idealSpan{c.start, take})
		}
		vaCursor = vaCursor.Add(take * addr.PageSize)
		remaining -= take
		snapshot = append(snapshot[:idx], snapshot[idx+1:]...)
	}
	return nil
}

// subtractSpans removes reserved regions from the free snapshot.
func subtractSpans(free, reserved []idealSpan) []idealSpan {
	out := free
	for _, r := range reserved {
		var next []idealSpan
		rEnd := r.start + addr.PFN(r.pages)
		for _, f := range out {
			fEnd := f.start + addr.PFN(f.pages)
			if rEnd <= f.start || r.start >= fEnd {
				next = append(next, f) // disjoint
				continue
			}
			if r.start > f.start {
				next = append(next, idealSpan{f.start, uint64(r.start - f.start)})
			}
			if rEnd < fEnd {
				next = append(next, idealSpan{rEnd, uint64(fEnd - rEnd)})
			}
		}
		out = next
	}
	return out
}

// PlaceAnon implements Placement: follow the plan; fall back to the
// default allocator when the planned frame is taken.
func (IdealPolicy) PlaceAnon(k *Kernel, p *Process, v *vma.VMA, va addr.VirtAddr, order int) (addr.PFN, bool, error) {
	if off, ok := v.NearestOffset(va); ok {
		if pfn, ok := caTryTarget(k, off, va, order); ok {
			k.Stats.CATargetHits++
			return pfn, false, nil
		}
		k.Stats.CAFallbacks++
	}
	pfn, err := k.Machine.AllocBlock(p.HomeZone, order)
	if err != nil {
		return 0, false, ErrOOM
	}
	return pfn, false, nil
}

// PlaceFile implements Placement.
func (IdealPolicy) PlaceFile(k *Kernel, _ *File, _ uint64, order int) (addr.PFN, bool, error) {
	pfn, err := k.Machine.AllocBlock(0, order)
	if err != nil {
		return 0, false, ErrOOM
	}
	return pfn, false, nil
}
