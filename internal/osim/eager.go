package osim

import (
	"repro/internal/mem/addr"
	"repro/internal/mem/zone"
	"repro/internal/osim/pagetable"
	"repro/internal/osim/vma"
)

// EagerPolicy models eager paging (RMM, Karakostas et al.), the
// pre-allocation baseline the paper compares against: the whole VMA is
// backed at creation time using the largest *aligned* power-of-two
// blocks available, as an allocator with a raised MAX_ORDER would hand
// out. Because it only consumes naturally aligned blocks, it is highly
// sensitive to external fragmentation — the behaviour Fig. 1b and
// Fig. 8 demonstrate — and its up-front zeroing of huge regions
// produces the extreme page-fault tail latencies of Table V.
type EagerPolicy struct {
	// MaxBlockPages caps the largest block eagerly allocated at once
	// (default 2^18 pages = 1 GiB, the x86-64 gigantic-page scale).
	MaxBlockPages uint64
}

// Name implements Placement.
func (EagerPolicy) Name() string { return "eager" }

// MarksContiguity implements Placement.
func (EagerPolicy) MarksContiguity() bool { return false }

// OnMMap implements Placement: back the entire VMA now.
func (e EagerPolicy) OnMMap(k *Kernel, p *Process, v *vma.VMA) error {
	if v.Kind != vma.Anonymous {
		return nil // file mappings stay demand paged through the cache
	}
	maxBlock := e.MaxBlockPages
	if maxBlock == 0 {
		maxBlock = 1 << 18
	}
	va := v.Start
	remaining := v.Pages()
	var totalZeroed uint64
	for remaining > 0 {
		pfn, got, ok := eagerLargestAligned(k, p.HomeZone, remaining, maxBlock)
		if !ok {
			return ErrOOM
		}
		k.mapRange(p, v, va, pfn, got, pagetable.Writable)
		va = va.Add(got * addr.PageSize)
		remaining -= got
		totalZeroed += got
	}
	// One eager "fault" event per mmap: entry cost plus zeroing the
	// whole pre-allocated footprint.
	k.recordFault(FaultEager, v.Start, FaultBaseNs+totalZeroed*ZeroPageNs)
	return nil
}

// The kernel's eagerRotor scatters consecutive above-MAX_ORDER block
// selections across candidate free runs, the way a real
// (raised-MAX_ORDER) buddy's churned LIFO lists hand out blocks from
// arbitrary locations. Without it the simulator's pristine
// address-ordered lists would make eager's chunks physically adjacent —
// accidental contiguity no aged machine provides.

// eagerLargestAligned allocates the largest aligned power-of-two block
// with size <= min(remaining rounded to power of two, maxBlock),
// searching the zonelist. Blocks above the buddy MAX_ORDER are located
// through the contiguity map (emulating a raised MAX_ORDER allocator:
// an aligned run of free MAX_ORDER blocks *is* the larger block such an
// allocator would track).
func eagerLargestAligned(k *Kernel, homeZone int, remaining, maxBlock uint64) (addr.PFN, uint64, bool) {
	want := uint64(1)
	for want*2 <= remaining && want*2 <= maxBlock {
		want *= 2
	}
	for pages := want; pages >= 1; pages /= 2 {
		var candidates []addr.PFN
		for _, z := range zonesFrom(k.Machine, homeZone) {
			if pages <= addr.MaxOrderPages {
				order := addr.OrderFor(pages)
				if pfn, err := z.Buddy.AllocBlock(order); err == nil {
					return pfn, pages, true
				}
				continue
			}
			candidates = append(candidates, alignedRunsInZone(z, pages)...)
		}
		for try := 0; try < len(candidates); try++ {
			pfn := candidates[int(k.eagerRotor*2654435761)%len(candidates)]
			k.eagerRotor++
			if z := k.Machine.ZoneOf(pfn); z != nil {
				if err := z.Buddy.Reserve(pfn, pages); err == nil {
					return pfn, pages, true
				}
			}
		}
	}
	return 0, 0, false
}

// alignedRunsInZone lists pages-aligned fully free runs of the given
// power-of-two size inside the zone's contiguity clusters: up to a few
// spread-out candidates per cluster, so selection does not degenerate
// into address order.
func alignedRunsInZone(z *zone.Zone, pages uint64) []addr.PFN {
	var out []addr.PFN
	z.Contig.VisitRanges(func(start addr.PFN, n uint64) {
		first := addr.PFN((uint64(start) + pages - 1) &^ (pages - 1))
		end := start + addr.PFN(n)
		count := 0
		for cand := first; cand+addr.PFN(pages) <= end && count < 4; cand += addr.PFN(pages) {
			out = append(out, cand)
			count++
		}
	})
	return out
}

// PlaceAnon implements Placement: demand faults under eager paging only
// happen for regions pre-allocation could not back (or CoW); serve them
// with the default allocator.
func (EagerPolicy) PlaceAnon(k *Kernel, p *Process, _ *vma.VMA, _ addr.VirtAddr, order int) (addr.PFN, bool, error) {
	pfn, err := k.Machine.AllocBlock(p.HomeZone, order)
	if err != nil {
		return 0, false, ErrOOM
	}
	return pfn, false, nil
}

// PlaceFile implements Placement.
func (EagerPolicy) PlaceFile(k *Kernel, _ *File, _ uint64, order int) (addr.PFN, bool, error) {
	pfn, err := k.Machine.AllocBlock(0, order)
	if err != nil {
		return 0, false, ErrOOM
	}
	return pfn, false, nil
}

// zonesFrom returns machine zones in preference order.
func zonesFrom(m *zone.Machine, preferred int) []*zone.Zone {
	if preferred < 0 || preferred >= len(m.Zones) {
		preferred = 0
	}
	out := make([]*zone.Zone, 0, len(m.Zones))
	for i := 0; i < len(m.Zones); i++ {
		out = append(out, m.Zones[(preferred+i)%len(m.Zones)])
	}
	return out
}
