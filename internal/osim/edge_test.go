package osim

import (
	"testing"

	"repro/internal/mem/addr"
	"repro/internal/osim/pagetable"
)

func TestMUnmapPartiallyPopulatedVMA(t *testing.T) {
	k := newKernel(t, 16, DefaultPolicy{})
	p := k.NewProcess(0)
	free0 := k.Machine.FreePages()
	v, _ := p.MMap(8 * addr.HugeSize)
	// Touch only every other huge region.
	for off := uint64(0); off < v.Size(); off += 2 * addr.HugeSize {
		if _, err := p.Touch(v.Start.Add(off), true); err != nil {
			t.Fatal(err)
		}
	}
	if v.MappedPages != 4*512 {
		t.Fatalf("mapped = %d", v.MappedPages)
	}
	p.MUnmap(v)
	if k.Machine.FreePages() != free0 {
		t.Fatal("partial munmap leaked")
	}
	// The VA range is gone: touching it segfaults.
	if _, err := p.Touch(v.Start, false); err != ErrSegfault {
		t.Fatalf("want segfault after munmap, got %v", err)
	}
}

func TestCoWChainGrandchild(t *testing.T) {
	// fork -> fork: three generations share; writes isolate exactly one.
	k := newKernel(t, 32, DefaultPolicy{})
	gp := k.NewProcess(0)
	v, _ := gp.MMap(4 * addr.PageSize)
	k.THPEnabled = false
	touchRange(t, gp, v.Start, v.Size(), addr.PageSize)
	parent := gp.Fork()
	child := parent.Fork()
	pa0, _ := gp.Translate(v.Start)
	if pa, _ := child.Translate(v.Start); pa != pa0 {
		t.Fatal("grandchild should share the original frame")
	}
	if _, err := child.Touch(v.Start, true); err != nil {
		t.Fatal(err)
	}
	cpa, _ := child.Translate(v.Start)
	ppa, _ := parent.Translate(v.Start)
	gpa, _ := gp.Translate(v.Start)
	if cpa == pa0 {
		t.Fatal("grandchild write did not copy")
	}
	if ppa != pa0 || gpa != pa0 {
		t.Fatal("ancestors lost their shared frame")
	}
	child.Exit()
	parent.Exit()
	gp.Exit()
	if k.Machine.FreePages() != k.Machine.TotalPages() {
		t.Fatal("three-generation teardown leaked")
	}
}

func TestCoWOOMPropagates(t *testing.T) {
	k := newKernel(t, 1, DefaultPolicy{})
	k.THPEnabled = false
	p := k.NewProcess(0)
	// Fill most of memory.
	v, _ := p.MMap(uint64(addr.MaxOrderPages-8) * addr.PageSize)
	touchRange(t, p, v.Start, v.Size(), addr.PageSize)
	child := p.Fork()
	// Writing every page in the child needs a full copy: must OOM.
	var sawErr bool
	for off := uint64(0); off < v.Size(); off += addr.PageSize {
		if _, err := child.Touch(v.Start.Add(off), true); err == ErrOOM {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("expected ErrOOM during CoW storm")
	}
}

func TestBootReservePinsZoneBases(t *testing.T) {
	k := newKernel(t, 8, DefaultPolicy{})
	free0 := k.Machine.FreePages()
	k.BootReserve(2)
	if k.Machine.FreePages() != free0-2*addr.MaxOrderPages {
		t.Fatal("boot reserve accounting wrong")
	}
	// The base blocks are not free.
	if k.Machine.Frames.IsFree(0) {
		t.Fatal("zone base should be reserved")
	}
}

func TestContigBitClearedOnUnmapAndRemap(t *testing.T) {
	k := newKernel(t, 16, CAPolicy{})
	k.THPEnabled = false
	p := k.NewProcess(0)
	v, _ := p.MMap(64 * addr.PageSize)
	touchRange(t, p, v.Start, v.Size(), addr.PageSize)
	if p.PT.ContigBits == 0 {
		t.Fatal("expected contiguity bits")
	}
	p.MUnmap(v)
	if p.PT.ContigBits != 0 {
		t.Fatalf("ContigBits = %d after unmap", p.PT.ContigBits)
	}
}

func TestHugeCoWCopiesWholeRegion(t *testing.T) {
	k := newKernel(t, 32, DefaultPolicy{})
	p := k.NewProcess(0)
	v, _ := p.MMap(addr.HugeSize)
	touchRange(t, p, v.Start, v.Size(), addr.PageSize)
	child := p.Fork()
	if _, err := child.Touch(v.Start.Add(addr.PageSize*7), true); err != nil {
		t.Fatal(err)
	}
	// The child's whole huge region moved to a new huge frame.
	pte, pages, ok := child.PT.Lookup(v.Start)
	if !ok || pages != 512 {
		t.Fatal("child lost its huge mapping")
	}
	ppte, _, _ := p.PT.Lookup(v.Start)
	if pte.PFN == ppte.PFN {
		t.Fatal("huge CoW did not copy")
	}
	if !pte.Flags.Has(pagetable.Writable) {
		t.Fatal("copied mapping should be writable")
	}
	child.Exit()
	p.Exit()
	if k.Machine.FreePages() != k.Machine.TotalPages() {
		t.Fatal("huge CoW teardown leaked")
	}
}

func TestReadaheadStopsAtEOF(t *testing.T) {
	k := newKernel(t, 16, DefaultPolicy{})
	f := k.Cache.CreateFile(5 * addr.PageSize) // smaller than the window
	if err := k.Cache.Read(f, 0, addr.PageSize); err != nil {
		t.Fatal(err)
	}
	if f.CachedPages() != 5 {
		t.Fatalf("cached = %d, want clamped to file size 5", f.CachedPages())
	}
}
