package osim

import (
	"testing"

	"repro/internal/mem/addr"
)

// TestCanMapHugeProbeCount is the regression test for the quadratic
// canMapHuge probe: the common case — first touch of an untouched
// 2 MiB region — used to run 512 PT.Lookup calls before concluding the
// region was empty. The leaf-table presence check (HugeRegionEmpty)
// answers in one descent, so the whole huge fault now costs a handful
// of lookups. The bound of 32 is loose on purpose: it catches the O(512)
// regression without pinning the exact fault-path lookup count.
func TestCanMapHugeProbeCount(t *testing.T) {
	k := newKernel(t, 16, DefaultPolicy{})
	p := k.NewProcess(0)
	v, err := p.MMap(2 * addr.HugeSize)
	if err != nil {
		t.Fatal(err)
	}

	// Untouched region: the huge-eligibility check must not probe the
	// 512 page slots one by one.
	base := p.PT.Lookups()
	if _, err := p.Touch(v.Start, true); err != nil {
		t.Fatal(err)
	}
	if k.Stats.Faults[FaultHuge] != 1 {
		t.Fatalf("huge faults = %d, want 1", k.Stats.Faults[FaultHuge])
	}
	if d := p.PT.Lookups() - base; d >= 32 {
		t.Fatalf("first touch of empty region cost %d lookups, want < 32 (quadratic probe regressed)", d)
	}

	// Partially mapped region: a 4 KiB page already present must veto
	// the huge mapping, still without a per-slot scan.
	region := v.Start.Add(addr.HugeSize)
	k.THPEnabled = false
	if _, err := p.Touch(region, true); err != nil {
		t.Fatal(err)
	}
	k.THPEnabled = true
	base = p.PT.Lookups()
	if _, err := p.Touch(region.Add(addr.PageSize), true); err != nil {
		t.Fatal(err)
	}
	if k.Stats.Faults[FaultHuge] != 1 {
		t.Fatalf("huge faults = %d after partial-region touch, want still 1", k.Stats.Faults[FaultHuge])
	}
	if k.Stats.Faults[Fault4K] != 2 {
		t.Fatalf("4k faults = %d, want 2", k.Stats.Faults[Fault4K])
	}
	if d := p.PT.Lookups() - base; d >= 32 {
		t.Fatalf("touch in partially-mapped region cost %d lookups, want < 32", d)
	}
}
