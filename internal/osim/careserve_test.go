package osim

import (
	"testing"

	"repro/internal/mem/addr"
)

// TestReservationFixesStrictAlternation exercises CA paging's worst
// case: two processes faulting strictly alternately, one huge page at a
// time, into one big free cluster. Best-effort CA leapfrogs (each
// re-placement lands just past the other's frontier); with the §III-D
// reservation extension each VMA's first placement claims its whole
// extent and the footprints stay disjoint.
func TestReservationFixesStrictAlternation(t *testing.T) {
	run := func(policy Placement) (int, int) {
		k := newKernel(t, 64, policy)
		pa, pb := k.NewProcess(0), k.NewProcess(0)
		va, _ := pa.MMap(16 * addr.HugeSize)
		vb, _ := pb.MMap(16 * addr.HugeSize)
		for off := uint64(0); off < va.Size(); off += addr.HugeSize {
			if _, err := pa.Touch(va.Start.Add(off), true); err != nil {
				t.Fatal(err)
			}
			if _, err := pb.Touch(vb.Start.Add(off), true); err != nil {
				t.Fatal(err)
			}
		}
		return len(contiguousRuns(pa)), len(contiguousRuns(pb))
	}
	resA, resB := run(NewCAPolicyWithReservation())
	if resA != 1 || resB != 1 {
		t.Fatalf("reservation runs = %d/%d, want 1/1", resA, resB)
	}
	plainA, _ := run(CAPolicy{})
	if plainA < resA {
		t.Fatalf("plain CA (%d runs) should not beat reservation (%d)", plainA, resA)
	}
}

func TestReservationConflictDetection(t *testing.T) {
	r := NewCAReservation()
	k := newKernel(t, 16, CAPolicy{})
	p := k.NewProcess(0)
	v1, _ := p.MMap(addr.PageSize)
	v2, _ := p.MMap(addr.PageSize)
	r.reserve(v1, 1000, 100)
	// Own reservations never conflict.
	if r.conflicts(v1, 1000, 100) {
		t.Fatal("self-conflict")
	}
	// Overlap with another owner conflicts, in both directions.
	if !r.conflicts(v2, 1050, 10) {
		t.Fatal("interior overlap missed")
	}
	if !r.conflicts(v2, 950, 100) {
		t.Fatal("left overlap missed")
	}
	if r.conflicts(v2, 1100, 50) {
		t.Fatal("adjacent (non-overlapping) span flagged")
	}
	if r.conflicts(v2, 0, 1000) {
		t.Fatal("disjoint span flagged")
	}
}

func TestReservationFIFOBound(t *testing.T) {
	r := NewCAReservation()
	r.Cap = 4
	k := newKernel(t, 16, CAPolicy{})
	p := k.NewProcess(0)
	owner, _ := p.MMap(addr.PageSize)
	other, _ := p.MMap(addr.PageSize)
	for i := 0; i < 10; i++ {
		r.reserve(owner, addr.PFN(i*1000), 100)
	}
	if len(r.spans) != 4 {
		t.Fatalf("spans = %d, want capped at 4", len(r.spans))
	}
	// The oldest reservations were evicted.
	if r.conflicts(other, 0, 100) {
		t.Fatal("evicted reservation still conflicts")
	}
	if !r.conflicts(other, 9000, 10) {
		t.Fatal("latest reservation lost")
	}
}

func TestFiveLevelPageTables(t *testing.T) {
	k := newKernel(t, 16, CAPolicy{})
	k.PageTableLevels = 5
	p := k.NewProcess(0)
	if p.PT.Levels() != 5 {
		t.Fatalf("levels = %d", p.PT.Levels())
	}
	v, _ := p.MMap(2 * addr.HugeSize)
	touchRange(t, p, v.Start, v.Size(), addr.PageSize)
	// Walks take one extra step at every depth.
	_, level, steps, ok := p.PT.Walk(v.Start)
	if !ok || level != 1 || steps != 4 {
		t.Fatalf("5-level huge walk = (level %d, steps %d, ok %v), want 4 steps", level, steps, ok)
	}
	// Translation correctness is unchanged.
	pa1, _ := p.Translate(v.Start)
	pa2, _ := p.Translate(v.Start.Add(addr.PageSize))
	if pa2 != pa1+addr.PageSize {
		t.Fatal("5-level translation broken")
	}
}
