package osim

import (
	"repro/internal/mem/addr"
	"repro/internal/osim/vma"
)

// Placement is the physical-placement policy the kernel's fault path
// delegates to. The paper compares four: the default allocator (THP),
// contiguity-aware paging, eager pre-allocation, and offline-ideal
// placement.
type Placement interface {
	// Name identifies the policy in experiment output.
	Name() string

	// OnMMap runs when a VMA is created. Eager pre-allocation backs
	// the whole VMA here; ideal placement computes its offline plan.
	OnMMap(k *Kernel, p *Process, v *vma.VMA) error

	// PlaceAnon returns a frame (block head) of the given order for an
	// anonymous/CoW fault at va. placed reports whether the policy ran
	// a placement decision (charged as extra fault latency).
	PlaceAnon(k *Kernel, p *Process, v *vma.VMA, va addr.VirtAddr, order int) (pfn addr.PFN, placed bool, err error)

	// PlaceFile returns a frame of the given order for page-cache
	// population of file f at page index pageIdx.
	PlaceFile(k *Kernel, f *File, pageIdx uint64, order int) (pfn addr.PFN, placed bool, err error)

	// MarksContiguity reports whether the policy maintains the PTE
	// contiguity bits that gate SpOT prediction-table fills.
	MarksContiguity() bool
}

// DefaultPolicy is the stock Linux-like allocator: first available
// block from the preferred zone's free lists, no placement steering.
type DefaultPolicy struct{}

// Name implements Placement.
func (DefaultPolicy) Name() string { return "default" }

// OnMMap implements Placement (no-op).
func (DefaultPolicy) OnMMap(*Kernel, *Process, *vma.VMA) error { return nil }

// PlaceAnon implements Placement.
func (DefaultPolicy) PlaceAnon(k *Kernel, p *Process, _ *vma.VMA, _ addr.VirtAddr, order int) (addr.PFN, bool, error) {
	pfn, err := k.Machine.AllocBlock(p.HomeZone, order)
	if err != nil {
		return 0, false, ErrOOM
	}
	return pfn, false, nil
}

// PlaceFile implements Placement.
func (DefaultPolicy) PlaceFile(k *Kernel, _ *File, _ uint64, order int) (addr.PFN, bool, error) {
	pfn, err := k.Machine.AllocBlock(0, order)
	if err != nil {
		return 0, false, ErrOOM
	}
	return pfn, false, nil
}

// MarksContiguity implements Placement.
func (DefaultPolicy) MarksContiguity() bool { return false }
