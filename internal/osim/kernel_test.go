package osim

import (
	"testing"

	"repro/internal/mem/addr"
	"repro/internal/mem/zone"
	"repro/internal/osim/pagetable"
	"repro/internal/osim/vma"
)

// newKernel builds a kernel over a machine of nblocks MAX_ORDER blocks
// in a single zone.
func newKernel(t testing.TB, nblocks uint64, p Placement) *Kernel {
	t.Helper()
	m := zone.NewMachine(zone.Config{ZonePages: []uint64{nblocks * addr.MaxOrderPages}})
	return NewKernel(m, p)
}

func touchRange(t testing.TB, p *Process, start addr.VirtAddr, bytes uint64, stride uint64) {
	t.Helper()
	for off := uint64(0); off < bytes; off += stride {
		if _, err := p.Touch(start.Add(off), true); err != nil {
			t.Fatalf("touch at +%d: %v", off, err)
		}
	}
}

func TestMMapAndTouchTHP(t *testing.T) {
	k := newKernel(t, 16, DefaultPolicy{})
	p := k.NewProcess(0)
	v, err := p.MMap(8 * addr.HugeSize)
	if err != nil {
		t.Fatal(err)
	}
	touchRange(t, p, v.Start, v.Size(), addr.PageSize)
	if v.MappedPages != v.Pages() {
		t.Fatalf("mapped %d of %d pages", v.MappedPages, v.Pages())
	}
	// THP on an aligned VMA: all faults should be huge.
	if k.Stats.Faults[FaultHuge] != 8 || k.Stats.Faults[Fault4K] != 0 {
		t.Fatalf("faults = huge:%d 4k:%d", k.Stats.Faults[FaultHuge], k.Stats.Faults[Fault4K])
	}
	if p.RSSPages != v.Pages() {
		t.Fatalf("RSS = %d", p.RSSPages)
	}
	// Second touches don't fault.
	before := k.Stats.TotalFaults()
	touchRange(t, p, v.Start, v.Size(), addr.PageSize)
	if k.Stats.TotalFaults() != before {
		t.Fatal("re-touch faulted")
	}
}

func TestTHPEdgeFallsBackTo4K(t *testing.T) {
	k := newKernel(t, 16, DefaultPolicy{})
	p := k.NewProcess(0)
	// 2 MiB + 12 KiB: the tail cannot take a huge mapping.
	v, err := p.MMap(addr.HugeSize + 3*addr.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	touchRange(t, p, v.Start, v.Size(), addr.PageSize)
	if k.Stats.Faults[FaultHuge] != 1 {
		t.Fatalf("huge faults = %d, want 1", k.Stats.Faults[FaultHuge])
	}
	if k.Stats.Faults[Fault4K] != 3 {
		t.Fatalf("4k faults = %d, want 3", k.Stats.Faults[Fault4K])
	}
}

func TestTHPDisabled(t *testing.T) {
	k := newKernel(t, 16, DefaultPolicy{})
	k.THPEnabled = false
	p := k.NewProcess(0)
	v, _ := p.MMap(addr.HugeSize)
	touchRange(t, p, v.Start, v.Size(), addr.PageSize)
	if k.Stats.Faults[FaultHuge] != 0 || k.Stats.Faults[Fault4K] != 512 {
		t.Fatalf("faults = huge:%d 4k:%d", k.Stats.Faults[FaultHuge], k.Stats.Faults[Fault4K])
	}
}

func TestSegfaultOutsideVMA(t *testing.T) {
	k := newKernel(t, 4, DefaultPolicy{})
	p := k.NewProcess(0)
	if _, err := p.Touch(0xdead000, false); err != ErrSegfault {
		t.Fatalf("want ErrSegfault, got %v", err)
	}
}

func TestMUnmapFreesMemory(t *testing.T) {
	k := newKernel(t, 16, DefaultPolicy{})
	p := k.NewProcess(0)
	free0 := k.Machine.FreePages()
	v, _ := p.MMap(4 * addr.HugeSize)
	touchRange(t, p, v.Start, v.Size(), addr.PageSize)
	if k.Machine.FreePages() != free0-4*512 {
		t.Fatal("allocation not charged")
	}
	p.MUnmap(v)
	if k.Machine.FreePages() != free0 {
		t.Fatalf("free pages %d != %d after munmap", k.Machine.FreePages(), free0)
	}
	if p.RSSPages != 0 {
		t.Fatalf("RSS = %d after munmap", p.RSSPages)
	}
	if p.VMAs.Len() != 0 {
		t.Fatal("VMA not removed")
	}
}

func TestExitTearsDownEverything(t *testing.T) {
	k := newKernel(t, 16, DefaultPolicy{})
	p := k.NewProcess(0)
	free0 := k.Machine.FreePages()
	for i := 0; i < 3; i++ {
		v, _ := p.MMap(addr.HugeSize)
		touchRange(t, p, v.Start, v.Size(), addr.PageSize)
	}
	p.Exit()
	if k.Machine.FreePages() != free0 {
		t.Fatal("exit leaked memory")
	}
	if len(k.Processes()) != 0 {
		t.Fatal("process still registered")
	}
}

func TestOOM(t *testing.T) {
	k := newKernel(t, 1, DefaultPolicy{})
	p := k.NewProcess(0)
	v, _ := p.MMap(8 * addr.MaxOrderSize) // far larger than the machine
	var err error
	for off := uint64(0); off < v.Size(); off += addr.PageSize {
		if _, err = p.Touch(v.Start.Add(off), true); err != nil {
			break
		}
	}
	if err != ErrOOM {
		t.Fatalf("want ErrOOM, got %v", err)
	}
}

func TestTranslateMatchesTouchOrder(t *testing.T) {
	k := newKernel(t, 16, DefaultPolicy{})
	p := k.NewProcess(0)
	v, _ := p.MMap(addr.HugeSize)
	touchRange(t, p, v.Start, v.Size(), addr.PageSize)
	pa1, ok1 := p.Translate(v.Start)
	pa2, ok2 := p.Translate(v.Start.Add(addr.PageSize))
	if !ok1 || !ok2 {
		t.Fatal("translate failed")
	}
	// One huge mapping: physically consecutive.
	if pa2 != pa1+addr.PageSize {
		t.Fatalf("huge mapping not physically consecutive: %v %v", pa1, pa2)
	}
}

func TestForkCoW(t *testing.T) {
	k := newKernel(t, 16, DefaultPolicy{})
	parent := k.NewProcess(0)
	v, _ := parent.MMap(addr.HugeSize)
	touchRange(t, parent, v.Start, v.Size(), addr.PageSize)
	rssBefore := parent.RSSPages

	child := parent.Fork()
	if child.RSSPages != rssBefore {
		t.Fatalf("child RSS = %d, want %d", child.RSSPages, rssBefore)
	}
	// Shared frame: same translation in both.
	pp, _ := parent.Translate(v.Start)
	cp, _ := child.Translate(v.Start)
	if pp != cp {
		t.Fatal("fork should share frames")
	}
	// Reads do not copy.
	if _, err := child.Touch(v.Start, false); err != nil {
		t.Fatal(err)
	}
	if cp2, _ := child.Translate(v.Start); cp2 != cp {
		t.Fatal("read should not break CoW")
	}
	// A write in the child copies.
	free0 := k.Machine.FreePages()
	if _, err := child.Touch(v.Start, true); err != nil {
		t.Fatal(err)
	}
	if k.Stats.Faults[FaultCoW] == 0 {
		t.Fatal("no CoW fault recorded")
	}
	cp3, _ := child.Translate(v.Start)
	if cp3 == pp {
		t.Fatal("CoW write did not copy")
	}
	if k.Machine.FreePages() >= free0 {
		t.Fatal("CoW copy did not allocate")
	}
	// Parent's view unchanged.
	if pp2, _ := parent.Translate(v.Start); pp2 != pp {
		t.Fatal("parent translation changed")
	}
	// Parent write to the same (now exclusively owned after child
	// copied? no — parent still CoW-marked) must also resolve.
	if _, err := parent.Touch(v.Start, true); err != nil {
		t.Fatal(err)
	}
	child.Exit()
	parent.Exit()
	if k.Machine.FreePages() != k.Machine.TotalPages() {
		t.Fatalf("leak after CoW teardown: free %d of %d", k.Machine.FreePages(), k.Machine.TotalPages())
	}
}

func TestFaultLatencyModel(t *testing.T) {
	k := newKernel(t, 16, DefaultPolicy{})
	p := k.NewProcess(0)
	v, _ := p.MMap(addr.HugeSize + addr.PageSize)
	touchRange(t, p, v.Start, v.Size(), addr.PageSize)
	// One huge fault and one 4K fault recorded with distinct latencies.
	if len(k.Stats.FaultLatencies) != 2 {
		t.Fatalf("latencies = %v", k.Stats.FaultLatencies)
	}
	wantHuge := uint64(FaultBaseNs + 512*ZeroPageNs)
	want4K := uint64(FaultBaseNs + ZeroPageNs)
	if k.Stats.FaultLatencies[0] != wantHuge || k.Stats.FaultLatencies[1] != want4K {
		t.Fatalf("latencies = %v, want [%d %d]", k.Stats.FaultLatencies, wantHuge, want4K)
	}
	if k.Clock != wantHuge+want4K {
		t.Fatalf("clock = %d", k.Clock)
	}
}

func TestMigratePage(t *testing.T) {
	k := newKernel(t, 16, DefaultPolicy{})
	p := k.NewProcess(0)
	v, _ := p.MMap(4 * addr.PageSize)
	touchRange(t, p, v.Start, v.Size(), addr.PageSize)
	// Allocate a destination and migrate the first page there.
	dst, err := k.Machine.AllocBlock(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	oldPA, _ := p.Translate(v.Start)
	if !k.MigratePage(p, v.Start, dst) {
		t.Fatal("migrate failed")
	}
	newPA, _ := p.Translate(v.Start)
	if newPA != dst.Addr() || newPA == oldPA {
		t.Fatalf("migration translation wrong: %v", newPA)
	}
	if k.Stats.Migrations != 1 || k.Stats.Shootdowns != 1 {
		t.Fatal("migration stats wrong")
	}
	// Old frame was freed.
	if !k.Machine.Frames.IsFree(oldPA.Frame()) {
		t.Fatal("old frame not freed")
	}
	// Migrating an unmapped VA reports failure.
	if k.MigratePage(p, v.Start.Add(1<<30), dst) {
		t.Fatal("migrating unmapped VA should fail")
	}
}

func TestVMAGuardGapsPreventVAContiguity(t *testing.T) {
	k := newKernel(t, 16, DefaultPolicy{})
	p := k.NewProcess(0)
	a, _ := p.MMap(addr.PageSize)
	b, _ := p.MMap(addr.PageSize)
	if a.End == b.Start {
		t.Fatal("VMAs should be separated by a guard gap")
	}
}

func TestContiguityBitMarking(t *testing.T) {
	k := newKernel(t, 16, CAPolicy{})
	k.ContigThresholdPages = 32
	p := k.NewProcess(0)
	k.THPEnabled = false // force 4K faults to exercise run accounting
	v, _ := p.MMap(64 * addr.PageSize)
	touchRange(t, p, v.Start, v.Size(), addr.PageSize)
	// CA paging makes the whole VMA one run; all 64 PTEs past the
	// threshold point should carry the bit — and via backward tagging,
	// all of the first 32 too.
	if p.PT.ContigBits < 32 {
		t.Fatalf("ContigBits = %d, want >= 32", p.PT.ContigBits)
	}
	pte, _, ok := p.PT.Lookup(v.Start.Add(40 * addr.PageSize))
	if !ok || !pte.Flags.Has(pagetable.Contig) {
		t.Fatal("PTE past threshold missing contiguity bit")
	}
}

func TestContiguityBitNotSetForShortRuns(t *testing.T) {
	k := newKernel(t, 16, CAPolicy{})
	p := k.NewProcess(0)
	k.THPEnabled = false
	v, _ := p.MMap(8 * addr.PageSize) // below the 32-page threshold
	touchRange(t, p, v.Start, v.Size(), addr.PageSize)
	if p.PT.ContigBits != 0 {
		t.Fatalf("ContigBits = %d for short run", p.PT.ContigBits)
	}
	_ = v
}

func TestStatsFaultKindStrings(t *testing.T) {
	kinds := []FaultKind{Fault4K, FaultHuge, FaultCoW, FaultFile, FaultEager}
	want := []string{"4k", "huge", "cow", "file", "eager"}
	for i, kd := range kinds {
		if kd.String() != want[i] {
			t.Fatalf("kind %d = %q", i, kd.String())
		}
	}
	if FaultKind(99).String() == "" {
		t.Fatal("unknown kind should stringify")
	}
}

func TestVMATouchAccounting(t *testing.T) {
	k := newKernel(t, 16, DefaultPolicy{})
	p := k.NewProcess(0)
	v, _ := p.MMap(addr.HugeSize)
	// Touch only half the pages: THP maps 512 but touched = 256.
	touchRange(t, p, v.Start, v.Size()/2, addr.PageSize)
	if v.TouchedPages() != 256 {
		t.Fatalf("touched = %d", v.TouchedPages())
	}
	if v.MappedPages != 512 {
		t.Fatalf("mapped = %d", v.MappedPages)
	}
	// Bloat = mapped - touched = 256 pages.
	if bloat := v.MappedPages - v.TouchedPages(); bloat != 256 {
		t.Fatalf("bloat = %d", bloat)
	}
	_ = vma.Anonymous
}
