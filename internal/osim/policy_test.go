package osim

import (
	"sort"
	"testing"

	"repro/internal/mem/addr"
	"repro/internal/mem/zone"
	"repro/internal/osim/pagetable"
)

// contiguousRuns extracts the physically contiguous mapping runs of a
// process (pagemap-style): maximal extents where VA and PA advance in
// lockstep. Returned as run lengths in pages, descending.
func contiguousRuns(p *Process) []uint64 {
	var runs []uint64
	var curLen uint64
	var nextVA addr.VirtAddr
	var nextPFN addr.PFN
	p.PT.Visit(func(l pagetable.Leaf) {
		if curLen > 0 && l.VA == nextVA && l.PTE.PFN == nextPFN {
			curLen += l.Pages
		} else {
			if curLen > 0 {
				runs = append(runs, curLen)
			}
			curLen = l.Pages
		}
		nextVA = l.VA.Add(l.Pages * addr.PageSize)
		nextPFN = l.PTE.PFN + addr.PFN(l.Pages)
	})
	if curLen > 0 {
		runs = append(runs, curLen)
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i] > runs[j] })
	return runs
}

func TestCASingleVMAFullyContiguous(t *testing.T) {
	// On a fresh machine CA paging must back an entire VMA with one
	// contiguous mapping, across many demand faults.
	k := newKernel(t, 64, CAPolicy{})
	p := k.NewProcess(0)
	v, _ := p.MMap(32 * addr.HugeSize) // 64 MiB
	touchRange(t, p, v.Start, v.Size(), addr.PageSize)
	runs := contiguousRuns(p)
	if len(runs) != 1 {
		t.Fatalf("CA produced %d runs (%v), want 1", len(runs), runs)
	}
	if runs[0] != v.Pages() {
		t.Fatalf("run covers %d pages, want %d", runs[0], v.Pages())
	}
	if k.Stats.CATargetHits == 0 {
		t.Fatal("no targeted allocations recorded")
	}
}

func TestCAResistsMultiProcessInterleaving(t *testing.T) {
	// Two processes faulting in alternating bursts (time-slice-style)
	// interleave badly under the default policy; CA paging's next-fit
	// re-placement keeps each footprint in far fewer, larger runs.
	run := func(policy Placement) (runsA, runsB []uint64) {
		k := newKernel(t, 64, policy)
		pa, pb := k.NewProcess(0), k.NewProcess(0)
		va, _ := pa.MMap(32 * addr.HugeSize)
		vb, _ := pb.MMap(32 * addr.HugeSize)
		const burst = 8 * addr.HugeSize // 8 huge pages per time slice
		for off := uint64(0); off < va.Size(); off += burst {
			for b := uint64(0); b < burst; b += addr.HugeSize {
				if _, err := pa.Touch(va.Start.Add(off+b), true); err != nil {
					t.Fatal(err)
				}
			}
			for b := uint64(0); b < burst; b += addr.HugeSize {
				if _, err := pb.Touch(vb.Start.Add(off+b), true); err != nil {
					t.Fatal(err)
				}
			}
		}
		return contiguousRuns(pa), contiguousRuns(pb)
	}
	caA, caB := run(CAPolicy{})
	defA, defB := run(DefaultPolicy{})
	if len(caA)*2 > len(defA) || len(caB)*2 > len(defB) {
		t.Fatalf("CA runs (%d/%d) should be far fewer than default (%d/%d)",
			len(caA), len(caB), len(defA), len(defB))
	}
	// CA's largest run must cover at least a burst.
	if caA[0] < 8*512 {
		t.Fatalf("CA largest run = %d pages, want >= %d", caA[0], 8*512)
	}
}

func TestCASubVMAPlacementUnderFragmentation(t *testing.T) {
	// Fragment the machine so no single free region fits the VMA; CA
	// must fall back to a handful of sub-VMA placements, not hundreds.
	k := newKernel(t, 64, CAPolicy{})
	// Pin every 8th MAX_ORDER block, splitting free space into 64-block
	// islands of 7 blocks (28 MiB each).
	for i := 0; i < 64; i += 8 {
		if err := k.Machine.Reserve(addr.PFN(i*addr.MaxOrderPages), addr.MaxOrderPages); err != nil {
			t.Fatal(err)
		}
	}
	p := k.NewProcess(0)
	v, _ := p.MMap(40 * addr.HugeSize) // 80 MiB > any 28 MiB island
	touchRange(t, p, v.Start, v.Size(), addr.PageSize)
	if v.MappedPages != v.Pages() {
		t.Fatal("VMA not fully mapped")
	}
	runs := contiguousRuns(p)
	if len(runs) > 8 {
		t.Fatalf("CA produced %d runs under fragmentation, want few: %v", len(runs), runs)
	}
	if k.Stats.CAReplacements < 2 {
		t.Fatalf("expected sub-VMA re-placements, got %d", k.Stats.CAReplacements)
	}
}

func TestEagerPreallocatesWholeVMA(t *testing.T) {
	k := newKernel(t, 64, EagerPolicy{})
	p := k.NewProcess(0)
	v, err := p.MMap(16 * addr.HugeSize) // 32 MiB, power of two
	if err != nil {
		t.Fatal(err)
	}
	// Fully mapped before any touch.
	if v.MappedPages != v.Pages() {
		t.Fatalf("eager mapped %d of %d", v.MappedPages, v.Pages())
	}
	if k.Stats.Faults[FaultEager] != 1 {
		t.Fatalf("eager faults = %d", k.Stats.Faults[FaultEager])
	}
	// Touching afterwards never faults.
	before := k.Stats.TotalFaults()
	touchRange(t, p, v.Start, v.Size(), addr.PageSize)
	if k.Stats.TotalFaults() != before {
		t.Fatal("touch faulted under eager")
	}
	// One contiguous aligned run (32 MiB fits in an aligned run on a
	// fresh 256 MiB machine).
	runs := contiguousRuns(p)
	if len(runs) != 1 || runs[0] != v.Pages() {
		t.Fatalf("eager runs = %v", runs)
	}
	// Eager latency is one giant event.
	if k.Stats.FaultLatencies[0] < v.Pages()*ZeroPageNs {
		t.Fatal("eager latency should include zeroing the whole VMA")
	}
}

func TestEagerAlignmentSensitivity(t *testing.T) {
	// Occupy one 4K page inside each 4 MiB block of the first half of
	// the machine: unaligned contiguity survives (~4 MiB chunks minus a
	// page), but *aligned* MAX_ORDER blocks vanish there. Eager must
	// fall apart into small blocks while CA still builds big runs.
	build := func(policy Placement) []uint64 {
		k := newKernel(t, 64, policy)
		for i := 0; i < 32; i++ {
			if err := k.Machine.Reserve(addr.PFN(i*addr.MaxOrderPages+512), 1); err != nil {
				t.Fatal(err)
			}
		}
		p := k.NewProcess(0)
		v, err := p.MMap(16 * addr.HugeSize)
		if err != nil {
			t.Fatal(err)
		}
		touchRange(t, p, v.Start, v.Size(), addr.PageSize)
		return contiguousRuns(p)
	}
	eagerRuns := build(EagerPolicy{})
	caRuns := build(CAPolicy{})
	if len(caRuns) > len(eagerRuns) {
		t.Fatalf("CA (%d runs) should beat eager (%d runs) under fragmentation", len(caRuns), len(eagerRuns))
	}
}

func TestIdealMatchesCAOnFreshMachine(t *testing.T) {
	for _, policy := range []Placement{NewIdealPolicy(), CAPolicy{}} {
		k := newKernel(t, 64, policy)
		p := k.NewProcess(0)
		v, _ := p.MMap(16 * addr.HugeSize)
		touchRange(t, p, v.Start, v.Size(), addr.PageSize)
		runs := contiguousRuns(p)
		if len(runs) != 1 {
			t.Fatalf("%s runs = %v", policy.Name(), runs)
		}
	}
}

func TestIdealBestFitPicksSmallestFittingHole(t *testing.T) {
	k := newKernel(t, 64, NewIdealPolicy())
	// Create two holes: blocks [8,16) free (8 blocks) and [32,48) free
	// (16 blocks); everything else pinned.
	for i := 0; i < 64; i++ {
		if i >= 8 && i < 16 || i >= 32 && i < 48 {
			continue
		}
		if err := k.Machine.Reserve(addr.PFN(i*addr.MaxOrderPages), addr.MaxOrderPages); err != nil {
			t.Fatal(err)
		}
	}
	p := k.NewProcess(0)
	// 6 blocks worth: best-fit should choose the 8-block hole.
	v, _ := p.MMap(6 * addr.MaxOrderSize)
	touchRange(t, p, v.Start, v.Size(), addr.PageSize)
	pa, ok := p.Translate(v.Start)
	if !ok {
		t.Fatal("unmapped")
	}
	if pa.Frame() < 8*addr.MaxOrderPages || pa.Frame() >= 16*addr.MaxOrderPages {
		t.Fatalf("ideal placed at %d, outside the best-fit hole", pa.Frame())
	}
	if len(contiguousRuns(p)) != 1 {
		t.Fatal("ideal placement fragmented")
	}
}

func TestPolicyNames(t *testing.T) {
	cases := map[string]Placement{
		"default": DefaultPolicy{},
		"ca":      CAPolicy{},
		"eager":   EagerPolicy{},
		"ideal":   NewIdealPolicy(),
	}
	for want, p := range cases {
		if p.Name() != want {
			t.Fatalf("Name = %q, want %q", p.Name(), want)
		}
	}
}

func TestCAMultiZoneSpill(t *testing.T) {
	// A VMA larger than zone 0 must spill into zone 1 and still form
	// few runs.
	m := zone.NewMachine(zone.Config{ZonePages: []uint64{
		16 * addr.MaxOrderPages, 16 * addr.MaxOrderPages,
	}})
	k := NewKernel(m, CAPolicy{})
	p := k.NewProcess(0)
	v, _ := p.MMap(24 * addr.MaxOrderSize) // 1.5 zones
	touchRange(t, p, v.Start, v.Size(), addr.PageSize)
	if v.MappedPages != v.Pages() {
		t.Fatal("not fully mapped")
	}
	runs := contiguousRuns(p)
	if len(runs) > 3 {
		t.Fatalf("cross-zone CA runs = %v", runs)
	}
}

func TestCAFallbackWhenContigMapEmpty(t *testing.T) {
	// Consume all MAX_ORDER blocks so the contiguity map is empty; CA
	// must still serve faults via the default path.
	k := newKernel(t, 4, CAPolicy{})
	var order0 []addr.PFN
	for _, z := range k.Machine.Zones {
		for z.Buddy.FreeBlocks(addr.MaxOrder) > 0 {
			pfn, err := z.Buddy.AllocBlock(addr.HugeOrder)
			if err != nil {
				t.Fatal(err)
			}
			order0 = append(order0, pfn)
		}
	}
	// Free half the huge blocks back (they re-coalesce below MAX_ORDER
	// only if buddies remain held; hold every other one).
	for i, pfn := range order0 {
		if i%2 == 0 {
			k.Machine.FreeBlock(pfn, addr.HugeOrder)
		}
	}
	p := k.NewProcess(0)
	v, _ := p.MMap(4 * addr.HugeSize)
	touchRange(t, p, v.Start, v.Size(), addr.PageSize)
	if v.MappedPages != v.Pages() {
		t.Fatal("CA failed to fall back with empty contiguity map")
	}
}
