// Package osim is the simulated operating-system memory manager the
// paper extends: demand paging with transparent huge pages over the
// buddy/zone substrate, a page cache with readahead, copy-on-write
// forks, and a pluggable physical-placement policy. The policies — the
// default Linux-like allocator, the paper's contiguity-aware (CA)
// paging, eager pre-allocation, and offline-ideal placement — live in
// this package too, because they are alternative implementations of one
// internal allocation step.
//
// Time is logical: the kernel clock advances by modelled fault/zeroing
// latencies (nanoseconds), giving deterministic Table V percentiles and
// driving the asynchronous daemons (Ingens, Ranger) in package daemon.
package osim

import (
	"errors"
	"fmt"

	"repro/internal/mem/addr"
	"repro/internal/mem/zone"
	"repro/internal/osim/pagetable"
	"repro/internal/osim/vma"
	"repro/internal/trace"
)

// Latency model constants (nanoseconds of logical time). The shape
// mirrors the paper's Table V: allocation latency is dominated by block
// zeroing, so pre-allocating (and zeroing) a whole VMA at once magnifies
// tail latency by orders of magnitude while demand paging amortises it.
const (
	// FaultBaseNs is the fixed fault-entry overhead.
	FaultBaseNs = 3000
	// ZeroPageNs is the cost of zeroing one 4 KiB page.
	ZeroPageNs = 1000
	// PlacementNs is the contiguity-map search cost CA paging adds on
	// placement decisions (measured tiny in the paper).
	PlacementNs = 500
	// CopyPageNs is the copy cost of one 4 KiB page (CoW, migration).
	CopyPageNs = 800
	// ShootdownNs is the cost of one TLB shootdown (migrations).
	ShootdownNs = 4000
)

// ErrSegfault is returned when an access hits no VMA.
var ErrSegfault = errors.New("osim: access outside any VMA")

// ErrOOM is returned when physical memory is exhausted.
var ErrOOM = errors.New("osim: out of memory")

// FaultKind classifies page faults for the stats the paper reports.
type FaultKind int

const (
	// Fault4K is an anonymous 4 KiB demand fault.
	Fault4K FaultKind = iota
	// FaultHuge is an anonymous 2 MiB (THP) demand fault.
	FaultHuge
	// FaultCoW is a copy-on-write fault.
	FaultCoW
	// FaultFile is a page-cache (file-backed) fault.
	FaultFile
	// FaultEager is an eager pre-allocation event (counted as one
	// "fault" per mmap, mirroring the paper's eager fault counts).
	FaultEager
	numFaultKinds
)

func (k FaultKind) String() string {
	switch k {
	case Fault4K:
		return "4k"
	case FaultHuge:
		return "huge"
	case FaultCoW:
		return "cow"
	case FaultFile:
		return "file"
	case FaultEager:
		return "eager"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// Stats aggregates kernel events.
type Stats struct {
	Faults         [numFaultKinds]uint64
	FaultLatencies []uint64 // ns per fault event, in occurrence order
	CAFallbacks    uint64   // CA paging target misses that fell back
	CAReplacements uint64   // CA paging re-placement decisions
	CATargetHits   uint64   // CA paging successful targeted allocations
	Migrations     uint64   // pages migrated (Ranger)
	Shootdowns     uint64   // TLB shootdowns issued (Ranger)
	Promotions     uint64   // huge-page promotions (Ingens)
}

// TotalFaults sums all fault kinds.
func (s *Stats) TotalFaults() uint64 {
	var n uint64
	for _, c := range s.Faults {
		n += c
	}
	return n
}

// Process is one simulated process: an address space in some kernel.
type Process struct {
	ID       int
	HomeZone int
	PT       *pagetable.Table
	VMAs     vma.Set
	// RSSPages counts frames charged to the process.
	RSSPages uint64
	kernel   *Kernel
	nextVA   addr.VirtAddr
	vmaSeq   uint64

	// Last-leaf translation memo: the leaf PTE the previous Touch
	// resolved, valid while the page-table generation is unchanged.
	// Sequential population touches the 512 pages of a THP leaf back
	// to back, so this short-circuits the radix descend on all but the
	// first; flag reads/writes go through the live pointer, so
	// in-place flag changes (Accessed/Dirty/CoW downgrades) stay
	// visible without invalidation.
	lastLeaf     *pagetable.PTE
	lastLeafBase addr.VirtAddr
	lastLeafSpan uint64
	lastLeafGen  uint64
}

// Kernel bundles the machine, the placement policy, the page cache, and
// global accounting.
type Kernel struct {
	Machine *zone.Machine
	Policy  Placement
	Cache   *PageCache
	Stats   Stats

	// Clock is logical time in nanoseconds.
	Clock uint64

	// THPEnabled controls transparent 2 MiB faults (on by default; the
	// Ingens configuration turns it off and promotes asynchronously).
	THPEnabled bool

	// ContigThresholdPages is the run length at which CA paging sets
	// the PTE contiguity bit (paper: 32).
	ContigThresholdPages uint64

	// PageTableLevels is the page-table depth for new processes: 4
	// (default, x86-64) or 5 (LA57 — the deeper walks the paper's
	// introduction cites as a coming cost multiplier).
	PageTableLevels int

	// OffsetBudget overrides the per-VMA tracked-offset budget for VMAs
	// created under this kernel when positive (the offset-budget
	// ablation); 0 keeps vma.MaxOffsets.
	OffsetBudget int

	// Tracer, when non-nil, receives fault, placement, promotion, and
	// migration events. Attach via SetTracer so the machine layers are
	// wired consistently. Nil tracing costs one branch per fault.
	Tracer *trace.Tracer

	// eagerRotor scatters consecutive above-MAX_ORDER eager block
	// selections (see eagerLargestAligned). Per kernel, not global:
	// concurrent kernels must not perturb each other's selections.
	eagerRotor uint64

	// mutSeq counts kernel-visible state mutations: faults, VMA churn,
	// touch-bitmap/flag writes, migrations, forks. Together with the
	// machine's buddy mutation counters it brackets windows in which a
	// daemon's inputs cannot have changed (the fixed-point memo key).
	mutSeq uint64

	procs  []*Process
	nextID int
}

// NewKernel creates a kernel over the machine with the given policy.
func NewKernel(m *zone.Machine, p Placement) *Kernel {
	k := &Kernel{
		Machine:              m,
		Policy:               p,
		THPEnabled:           true,
		ContigThresholdPages: 32,
		PageTableLevels:      4,
	}
	k.Cache = newPageCache(k)
	return k
}

// Tick advances the logical clock by ns.
func (k *Kernel) Tick(ns uint64) { k.Clock += ns }

// StateSeq returns the kernel's mutation counter. Two equal readings
// (combined with equal Machine buddy mutation counts) bracket a window
// in which no process state a daemon reads can have changed.
func (k *Kernel) StateSeq() uint64 { return k.mutSeq }

// BumpStateSeq advances the mutation counter; external mutators (daemon
// promotions writing page tables directly) call it so fixed-point memos
// never cache across their changes.
func (k *Kernel) BumpStateSeq() { k.mutSeq++ }

// SetTracer attaches (or, with nil, detaches) an event tracer to the
// kernel and its machine (buddy allocators, depth gauges).
func (k *Kernel) SetTracer(t *trace.Tracer) {
	k.Tracer = t
	k.Machine.SetTracer(t)
}

// BootReserve pins the first blocks MAX_ORDER blocks of every zone,
// modelling the kernel image, memmap, and firmware reservations that
// occupy the start of each node on a real machine. Without this, two
// pristine adjacent zones form one seamless physical run and workloads
// cross NUMA boundaries "for free" — masking the boundary effects the
// paper observes for hashjoin and BT. Call right after NewKernel.
func (k *Kernel) BootReserve(blocks int) {
	for _, z := range k.Machine.Zones {
		for b := 0; b < blocks; b++ {
			if err := z.Buddy.Reserve(z.Base+addr.PFN(b*addr.MaxOrderPages), addr.MaxOrderPages); err != nil {
				panic(fmt.Sprintf("osim: boot reserve failed on zone %d: %v", z.ID, err))
			}
		}
	}
}

// NewProcess creates a process homed on the given zone. homeZone must
// name an existing zone: the zonelist would silently clamp an
// out-of-range preference to zone 0 on every later allocation, hiding
// the caller's bug, so the constructor rejects it up front.
func (k *Kernel) NewProcess(homeZone int) *Process {
	if homeZone < 0 || homeZone >= len(k.Machine.Zones) {
		panic(fmt.Sprintf("osim: NewProcess home zone %d out of range [0,%d)",
			homeZone, len(k.Machine.Zones)))
	}
	k.nextID++
	p := &Process{
		ID:       k.nextID,
		HomeZone: homeZone,
		PT:       pagetable.NewWithLevels(k.PageTableLevels),
		kernel:   k,
		nextVA:   0x10_0000_0000, // 64 GiB: clear of null/low mappings
	}
	k.procs = append(k.procs, p)
	return p
}

// Processes returns the live processes.
func (k *Kernel) Processes() []*Process { return k.procs }

// MMap creates an anonymous VMA of size bytes (page-rounded) at a
// kernel-chosen address and runs the policy's placement hook.
func (p *Process) MMap(size uint64) (*vma.VMA, error) {
	return p.mmap(size, vma.Anonymous, 0, 0)
}

// MMapFile maps size bytes of the file starting at byte offset off.
func (p *Process) MMapFile(f *File, off, size uint64) (*vma.VMA, error) {
	return p.mmap(size, vma.FileBacked, f.ID, off)
}

func (p *Process) mmap(size uint64, kind vma.Kind, fileID int, fileOff uint64) (*vma.VMA, error) {
	p.kernel.mutSeq++
	size = addr.BytesToPages(size) * addr.PageSize
	start := p.nextVA
	// Leave an unmapped guard gap of deterministic but irregular size
	// (mmap layout jitter): regular spacing would make distinct VMAs
	// share translation offsets by accident, which real address-space
	// layouts do not.
	p.vmaSeq++
	jitter := (p.vmaSeq * 2654435761) % 8
	p.nextVA = start.Add(size).HugeUp() + addr.VirtAddr((1+jitter)*addr.HugeSize)
	v, err := p.VMAs.Insert(start, size, kind)
	if err != nil {
		return nil, err
	}
	v.FileID = fileID
	v.FileOff = fileOff
	v.Budget = p.kernel.OffsetBudget
	if err := p.kernel.Policy.OnMMap(p.kernel, p, v); err != nil {
		// The hook may have backed part of the VMA before failing
		// (eager paging running out of memory mid-loop); MUnmap tears
		// down any partial backing before dropping the VMA, so no
		// orphaned translations or RSS survive a failed mmap.
		p.MUnmap(v)
		return nil, err
	}
	return v, nil
}

// MUnmap tears down a VMA, releasing anonymous frames. Page-cache
// frames stay in the cache (they outlive processes, §III-C).
func (p *Process) MUnmap(v *vma.VMA) {
	k := p.kernel
	k.mutSeq++
	for va := v.Start; va < v.End; {
		pte, pages, ok := p.PT.Unmap(va)
		if !ok {
			va = va.Add(addr.PageSize)
			continue
		}
		f := k.Machine.Frames.Get(pte.PFN)
		f.MapCount--
		if f.MapCount <= 0 && v.Kind == vma.Anonymous {
			k.Machine.FreeBlock(pte.PFN, addr.LeafOrder(pages))
		}
		p.RSSPages -= pages
		va = va.Add(pages * addr.PageSize)
	}
	v.MappedPages = 0
	p.VMAs.Remove(v)
}

// Exit tears down every VMA of the process.
func (p *Process) Exit() {
	p.kernel.mutSeq++
	var all []*vma.VMA
	p.VMAs.Visit(func(v *vma.VMA) { all = append(all, v) })
	for _, v := range all {
		p.MUnmap(v)
	}
	k := p.kernel
	for i, q := range k.procs {
		if q == p {
			k.procs = append(k.procs[:i], k.procs[i+1:]...)
			break
		}
	}
}

// faultEvent maps fault kinds to their trace event kinds.
var faultEvent = [numFaultKinds]trace.Kind{
	Fault4K:    trace.EvFault4K,
	FaultHuge:  trace.EvFaultHuge,
	FaultCoW:   trace.EvFaultCoW,
	FaultFile:  trace.EvFaultFile,
	FaultEager: trace.EvFaultEager,
}

// recordFault charges a fault of the given kind and latency at va.
func (k *Kernel) recordFault(kind FaultKind, va addr.VirtAddr, latNs uint64) {
	k.mutSeq++
	k.Stats.Faults[kind]++
	// Grow the latency log by doubling: the runtime's ~1.25x growth for
	// large slices re-copies a million-fault log often enough to show up
	// in whole-sweep profiles.
	if lats := k.Stats.FaultLatencies; len(lats) == cap(lats) {
		grown := make([]uint64, len(lats), max(4096, 2*cap(lats)))
		copy(grown, lats)
		k.Stats.FaultLatencies = grown
	}
	k.Stats.FaultLatencies = append(k.Stats.FaultLatencies, latNs)
	k.Tick(latNs)
	if k.Tracer != nil {
		k.Tracer.Emit(faultEvent[kind], uint64(va), latNs, k.Clock)
	}
}

// mapRange installs translations for a physically contiguous run
// [pfnStart, +pages) at [vaStart, +pages*4K), choosing 2 MiB leaves
// wherever virtual and physical alignment both allow. It updates frame
// map counts and the process RSS. Used by eager pre-allocation, CoW of
// huge mappings, and migration.
func (k *Kernel) mapRange(p *Process, v *vma.VMA, vaStart addr.VirtAddr, pfnStart addr.PFN, pages uint64, flags pagetable.Flags) {
	va, pfn, left := vaStart, pfnStart, pages
	for left > 0 {
		if left >= addr.HugePages && va.HugeAligned() && pfn.Addr().HugeAligned() {
			p.PT.Map2M(va, pfn, flags)
			k.Machine.Frames.Get(pfn).MapCount++
			va, pfn, left = va.Add(addr.HugeSize), pfn+addr.HugePages, left-addr.HugePages
			p.RSSPages += addr.HugePages
			v.MappedPages += addr.HugePages
		} else {
			p.PT.Map4K(va, pfn, flags)
			k.Machine.Frames.Get(pfn).MapCount++
			va, pfn, left = va.Add(addr.PageSize), pfn+1, left-1
			p.RSSPages++
			v.MappedPages++
		}
	}
}
