package pagetable

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/mem/addr"
)

func TestMap4KWalkRoundTrip(t *testing.T) {
	pt := New()
	va := addr.VirtAddr(0x7f12_3456_7000)
	pt.Map4K(va, 1234, Writable)
	pte, level, steps, ok := pt.Walk(va)
	if !ok || level != 0 || pte.PFN != 1234 {
		t.Fatalf("Walk = (%+v, %d, ok=%v)", pte, level, ok)
	}
	if steps != 4 {
		t.Fatalf("4K walk steps = %d, want 4", steps)
	}
	if !pte.Flags.Has(Present | Writable) {
		t.Fatal("flags lost")
	}
	if pt.Mapped4K() != 1 {
		t.Fatal("counter")
	}
	// Neighbouring page unmapped.
	if _, _, _, ok := pt.Walk(va + addr.PageSize); ok {
		t.Fatal("neighbour should be unmapped")
	}
}

func TestMap2MWalk(t *testing.T) {
	pt := New()
	va := addr.VirtAddr(0x40000000) // 2M aligned
	pt.Map2M(va, 512, Writable)
	pte, level, steps, ok := pt.Walk(va + 0x12345) // interior offset
	if !ok || level != HugeLevel || pte.PFN != 512 {
		t.Fatalf("Walk = (%+v, %d, %v)", pte, level, ok)
	}
	if steps != 3 {
		t.Fatalf("2M walk steps = %d, want 3", steps)
	}
	if pt.Mapped2M() != 1 || pt.MappedPages() != 512 {
		t.Fatal("counters")
	}
}

func TestTranslateOffsets(t *testing.T) {
	pt := New()
	pt.Map4K(0x1000, 7, 0)
	pa, ok := pt.Translate(0x1abc)
	if !ok || pa != 7*addr.PageSize+0xabc {
		t.Fatalf("Translate = (%v, %v)", pa, ok)
	}
	pt.Map2M(addr.VirtAddr(4*addr.HugeSize), 1024, 0)
	pa, ok = pt.Translate(addr.VirtAddr(4*addr.HugeSize) + 0x54321)
	if !ok || pa != 1024*addr.PageSize+0x54321 {
		t.Fatalf("huge Translate = (%v, %v)", pa, ok)
	}
	if _, ok := pt.Translate(0xdead000); ok {
		t.Fatal("unmapped translate should fail")
	}
}

func TestDoubleMapPanics(t *testing.T) {
	pt := New()
	pt.Map4K(0x1000, 1, 0)
	assertPanics(t, func() { pt.Map4K(0x1000, 2, 0) })
	pt.Map2M(addr.VirtAddr(addr.HugeSize), 512, 0)
	assertPanics(t, func() { pt.Map2M(addr.VirtAddr(addr.HugeSize), 1024, 0) })
	// 4K under an existing huge mapping.
	assertPanics(t, func() { pt.Map4K(addr.VirtAddr(addr.HugeSize)+addr.PageSize, 3, 0) })
	// Unaligned.
	assertPanics(t, func() { pt.Map4K(0x1001, 1, 0) })
	assertPanics(t, func() { pt.Map2M(addr.VirtAddr(addr.PageSize), 512, 0) })
	assertPanics(t, func() { pt.Map2M(addr.VirtAddr(2*addr.HugeSize), 3, 0) }) // unaligned PFN
}

func assertPanics(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

func TestUnmap(t *testing.T) {
	pt := New()
	pt.Map4K(0x1000, 9, Contig)
	if pt.ContigBits != 1 {
		t.Fatal("contig counter")
	}
	e, pages, ok := pt.Unmap(0x1000)
	if !ok || e.PFN != 9 || pages != 1 {
		t.Fatalf("Unmap = (%+v, %d, %v)", e, pages, ok)
	}
	if pt.Mapped4K() != 0 || pt.ContigBits != 0 {
		t.Fatal("counters after unmap")
	}
	if _, _, ok := pt.Unmap(0x1000); ok {
		t.Fatal("double unmap should fail")
	}
	// Re-map after unmap works.
	pt.Map4K(0x1000, 11, 0)
	if pa, ok := pt.Translate(0x1000); !ok || pa != 11*addr.PageSize {
		t.Fatal("remap failed")
	}
}

func TestLookupAndSetContig(t *testing.T) {
	pt := New()
	pt.Map4K(0x2000, 5, 0)
	pte, pages, ok := pt.Lookup(0x2000)
	if !ok || pages != 1 || pte.PFN != 5 {
		t.Fatal("Lookup 4K failed")
	}
	if !pt.SetContig(0x2000, true) || pt.ContigBits != 1 {
		t.Fatal("SetContig on")
	}
	// Idempotent.
	pt.SetContig(0x2000, true)
	if pt.ContigBits != 1 {
		t.Fatal("SetContig should be idempotent")
	}
	pt.SetContig(0x2000, false)
	if pt.ContigBits != 0 {
		t.Fatal("SetContig off")
	}
	if pt.SetContig(0x999000, true) {
		t.Fatal("SetContig on unmapped should fail")
	}
	// Huge lookup returns 512 pages.
	pt.Map2M(addr.VirtAddr(8*addr.HugeSize), 2048, 0)
	if _, pages, ok := pt.Lookup(addr.VirtAddr(8*addr.HugeSize) + 12345); !ok || pages != 512 {
		t.Fatal("Lookup huge failed")
	}
}

func TestVisitOrderAndCompleteness(t *testing.T) {
	pt := New()
	vas := []addr.VirtAddr{0x7000_0000_0000, 0x1000, 0x5000_0000, addr.VirtAddr(3 * addr.HugeSize)}
	pt.Map4K(vas[0], 1, 0)
	pt.Map4K(vas[1], 2, 0)
	pt.Map4K(vas[2], 3, 0)
	pt.Map2M(vas[3], 512, 0)
	var got []Leaf
	pt.Visit(func(l Leaf) { got = append(got, l) })
	if len(got) != 4 {
		t.Fatalf("visited %d leaves", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].VA <= got[i-1].VA {
			t.Fatal("Visit not in ascending VA order")
		}
	}
	// The huge leaf reports 512 pages.
	for _, l := range got {
		if l.VA == vas[3] && l.Pages != 512 {
			t.Fatal("huge leaf pages wrong")
		}
	}
}

func TestRandomMapUnmapProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pt := New()
		ref := make(map[addr.VirtAddr]addr.PFN) // 4K ground truth
		for step := 0; step < 500; step++ {
			va := addr.VirtAddr(rng.Intn(1<<20)) << addr.PageShift
			if _, mapped := ref[va]; !mapped && rng.Intn(3) > 0 {
				pfn := addr.PFN(rng.Intn(1 << 24))
				pt.Map4K(va, pfn, Writable)
				ref[va] = pfn
			} else if mapped {
				pt.Unmap(va)
				delete(ref, va)
			}
		}
		if pt.Mapped4K() != uint64(len(ref)) {
			return false
		}
		for va, pfn := range ref {
			pa, ok := pt.Translate(va)
			if !ok || pa != pfn.Addr() {
				return false
			}
		}
		n := 0
		pt.Visit(func(Leaf) { n++ })
		return n == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWalk(b *testing.B) {
	pt := New()
	for i := 0; i < 4096; i++ {
		pt.Map4K(addr.VirtAddr(i)<<addr.PageShift, addr.PFN(i), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt.Walk(addr.VirtAddr(i%4096) << addr.PageShift)
	}
}

// TestGenerationBumps pins the generation-counter contract the walk
// cache builds on: every translation-visible mutation must move the
// counter; pure reads and no-op mutations must not.
func TestGenerationBumps(t *testing.T) {
	pt := New()
	g := pt.Generation()
	bump := func(what string, fn func()) {
		t.Helper()
		fn()
		if pt.Generation() == g {
			t.Fatalf("%s did not bump the generation", what)
		}
		g = pt.Generation()
	}
	same := func(what string, fn func()) {
		t.Helper()
		fn()
		if pt.Generation() != g {
			t.Fatalf("%s bumped the generation but changed no translation", what)
		}
	}
	bump("Map4K", func() { pt.Map4K(0x1000, 7, 0) })
	bump("Map2M", func() { pt.Map2M(addr.VirtAddr(addr.HugeSize), 512, 0) })
	bump("SetContig on", func() { pt.SetContig(0x1000, true) })
	same("idempotent SetContig", func() { pt.SetContig(0x1000, true) })
	bump("SetContig off", func() { pt.SetContig(0x1000, false) })
	bump("Redirect", func() {
		if !pt.Redirect(0x1000, 99) {
			t.Fatal("Redirect of a mapped page failed")
		}
	})
	same("failed Redirect", func() { pt.Redirect(0xdead000, 1) })
	same("reads", func() {
		pt.Lookup(0x1000)
		pt.Translate(0x1000)
		pt.Walk(0x1000)
	})
	bump("Unmap 4K", func() { pt.Unmap(0x1000) })
	bump("Unmap 2M", func() { pt.Unmap(addr.VirtAddr(addr.HugeSize)) })
	same("failed Unmap", func() { pt.Unmap(0x1000) })
}

// recObserver records every mapping event for assertion.
type recObserver struct {
	events []string
}

func (r *recObserver) Mapped(va addr.VirtAddr, pages uint64) {
	r.events = append(r.events, fmt.Sprintf("map %v %d", va, pages))
}
func (r *recObserver) Unmapped(va addr.VirtAddr, pages uint64) {
	r.events = append(r.events, fmt.Sprintf("unmap %v %d", va, pages))
}
func (r *recObserver) Redirected(va addr.VirtAddr, pages uint64) {
	r.events = append(r.events, fmt.Sprintf("redirect %v %d", va, pages))
}

// TestObserverEvents pins the mapping-event contract translation
// backends rely on for exact invalidation: every PA-changing mutation
// fires with the leaf base and extent; flag-only mutations (SetContig)
// and failed mutations fire nothing; RemoveObserver silences a
// subscriber without disturbing the others.
func TestObserverEvents(t *testing.T) {
	pt := New()
	rec := &recObserver{}
	other := &recObserver{}
	pt.AddObserver(rec)
	pt.AddObserver(other)

	huge := addr.VirtAddr(addr.HugeSize)
	pt.Map4K(0x1000, 7, 0)
	pt.Map2M(huge, 512, 0)
	pt.SetContig(0x1000, true) // flag-only: no event
	if !pt.Redirect(0x1800, 99) { // mid-page VA: event carries the page base
		t.Fatal("Redirect failed")
	}
	pt.Redirect(0xdead000, 1) // unmapped: no event
	pt.Unmap(huge + 0x3000)   // mid-huge-leaf VA: event carries the 2M base
	pt.Unmap(0x1000)
	pt.Unmap(0x1000) // already gone: no event

	want := []string{
		"map v0x1000 1",
		"map v0x200000 512",
		"redirect v0x1000 1",
		"unmap v0x200000 512",
		"unmap v0x1000 1",
	}
	if !reflect.DeepEqual(rec.events, want) {
		t.Fatalf("events = %q, want %q", rec.events, want)
	}
	if !reflect.DeepEqual(other.events, want) {
		t.Fatalf("second observer diverged: %q", other.events)
	}

	pt.RemoveObserver(rec)
	pt.Map4K(0x5000, 8, 0)
	if len(rec.events) != len(want) {
		t.Fatal("removed observer still receiving events")
	}
	if len(other.events) != len(want)+1 {
		t.Fatal("remaining observer stopped receiving events")
	}
	pt.RemoveObserver(rec) // double remove is a no-op
}
