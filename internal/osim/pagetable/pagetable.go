// Package pagetable implements a software-walkable 4-level x86-64-style
// page table with 4 KiB and 2 MiB leaf entries. It is used for both
// guest page tables (gVA→gPA) and nested/extended page tables (gPA→hPA).
//
// Each PTE carries a reserved "contiguity" bit (§IV-C of the paper): the
// OS sets it on translations belonging to contiguous mappings of at
// least a threshold size, and the nested page walker only fills SpOT's
// prediction table when the bit is set in both dimensions.
package pagetable

import (
	"fmt"

	"repro/internal/mem/addr"
)

// Flags is a PTE flag set.
type Flags uint8

const (
	// Present marks a valid translation.
	Present Flags = 1 << iota
	// Writable allows stores through the mapping.
	Writable
	// CoW marks a copy-on-write mapping (read-only until write fault).
	CoW
	// Contig is the reserved contiguity bit consumed by SpOT fills.
	Contig
	// Accessed and Dirty mirror the hardware-set bits.
	Accessed
	Dirty
)

// Has reports whether all bits in q are set.
func (f Flags) Has(q Flags) bool { return f&q == q }

// PTE is a leaf translation entry.
type PTE struct {
	PFN   addr.PFN
	Flags Flags
}

// Present reports whether the entry holds a valid translation.
func (p PTE) Present() bool { return p.Flags.Has(Present) }

const (
	// fanout of each level (9 translated bits per level).
	fanoutBits = 9
	fanout     = 1 << fanoutBits

	// HugeLevel is the level at which 2 MiB leaves live (PMD).
	HugeLevel = 1
)

// node is one 512-entry table. A slot is either a child pointer
// (interior) or a leaf PTE (level 0 always; level 1 when huge).
type node struct {
	children [fanout]*node
	leaves   [fanout]PTE
	huge     [fanout]bool // level HugeLevel: slot is a 2 MiB leaf
	live     int          // populated slots, for reclaim
}

// Observer receives a table's translation-visible mutations — the
// mapping-change events the kernel emits through Map4K/Map2M (demand
// faults, promotion re-mapping, CoW copies), Unmap (teardown, promotion
// tear-down, CoW remaps), and Redirect (migration). Translation
// backends subscribe to keep derived structures (range tables, direct
// segments, hashed mirrors) exactly invalidated; the generation counter
// carries the same signal in aggregate for callers that only need a
// staleness check. SetContig moves the generation but emits no event:
// it changes walk metadata (the contiguity bit), never where a virtual
// page translates to.
//
// Callbacks run synchronously inside the mutation; they must not mutate
// the table.
type Observer interface {
	// Mapped reports a new leaf at va covering pages base pages.
	Mapped(va addr.VirtAddr, pages uint64)
	// Unmapped reports leaf removal: va is the leaf base (4 KiB or
	// 2 MiB aligned), pages its extent.
	Unmapped(va addr.VirtAddr, pages uint64)
	// Redirected reports the leaf at va now points at a different
	// frame (page migration) with unchanged extent.
	Redirected(va addr.VirtAddr, pages uint64)
}

// Table is a multi-level (4- or 5-level) page table.
type Table struct {
	root *node
	top  int // top level index: 3 for 4-level, 4 for 5-level

	obs []Observer // mapping-event subscribers (usually empty)

	mapped4K   uint64 // live 4 KiB leaves
	mapped2M   uint64 // live 2 MiB leaves
	ContigBits uint64 // leaves currently carrying the Contig bit

	// gen counts translation-visible mutations (Map4K/Map2M/Unmap/
	// SetContig). Software caches of walk results — the simulator-side
	// analogue of the hardware paging-structure caches — key their
	// entries to this counter and self-invalidate when it moves.
	gen uint64

	// lookups counts Lookup calls — the probe-cost observable the
	// canMapHuge regression test pins (a 512-probe emptiness scan shows
	// up here; a leaf-table presence check does not).
	lookups uint64
}

// New creates an empty 4-level table (PGD..PT).
func New() *Table { return &Table{root: &node{}, top: 3} }

// NewWithLevels creates a table with the given depth: 4 is today's
// x86-64 layout, 5 the LA57 extension the paper's introduction cites as
// further raising walk costs. Levels outside [4,5] panic.
func NewWithLevels(levels int) *Table {
	if levels < 4 || levels > 5 {
		panic(fmt.Sprintf("pagetable: unsupported depth %d", levels))
	}
	return &Table{root: &node{}, top: levels - 1}
}

// Levels returns the table depth.
func (t *Table) Levels() int { return t.top + 1 }

// Generation returns the table's mutation counter. It increases
// monotonically on every Map4K, Map2M, Unmap, and effective SetContig;
// a cached walk result is valid only while the generation it was
// filled under still matches.
func (t *Table) Generation() uint64 { return t.gen }

// Mapped4K returns the number of live 4 KiB leaf entries.
func (t *Table) Mapped4K() uint64 { return t.mapped4K }

// Mapped2M returns the number of live 2 MiB leaf entries.
func (t *Table) Mapped2M() uint64 { return t.mapped2M }

// MappedPages returns total mapped base pages.
func (t *Table) MappedPages() uint64 { return t.mapped4K + t.mapped2M*512 }

func index(v addr.VirtAddr, level int) int {
	return int(uint64(v)>>(addr.PageShift+uint(level)*fanoutBits)) & (fanout - 1)
}

// Walk translates v. It returns the leaf entry, the leaf's level (0 for
// 4 KiB, HugeLevel for 2 MiB), and the number of table references the
// walk touched (1 per level descended) — the quantity the hardware walk
// cost model consumes.
func (t *Table) Walk(v addr.VirtAddr) (pte PTE, level int, steps int, ok bool) {
	n := t.root
	for l := t.top; l >= 0; l-- {
		steps++
		i := index(v, l)
		if l == HugeLevel && n.huge[i] {
			e := n.leaves[i]
			if !e.Present() {
				return PTE{}, 0, steps, false
			}
			return e, HugeLevel, steps, true
		}
		if l == 0 {
			e := n.leaves[i]
			if !e.Present() {
				return PTE{}, 0, steps, false
			}
			return e, 0, steps, true
		}
		if n.children[i] == nil {
			return PTE{}, 0, steps, false
		}
		n = n.children[i]
	}
	panic("unreachable")
}

// Translate resolves a virtual address to a physical address, honouring
// the in-page / in-huge-page offset. ok is false if unmapped.
func (t *Table) Translate(v addr.VirtAddr) (addr.PhysAddr, bool) {
	pte, level, _, ok := t.Walk(v)
	if !ok {
		return 0, false
	}
	if level == HugeLevel {
		return pte.PFN.Addr() + addr.PhysAddr(uint64(v)&addr.HugeMask), true
	}
	return pte.PFN.Addr() + addr.PhysAddr(uint64(v)&addr.PageMask), true
}

// descend finds (creating if create) the node at the given level on v's
// path. Returns nil when a huge leaf blocks the path or a node is
// missing (and !create).
func (t *Table) descend(v addr.VirtAddr, level int, create bool) *node {
	n := t.root
	for l := t.top; l > level; l-- {
		i := index(v, l)
		if l == HugeLevel && n.huge[i] {
			return nil
		}
		if n.children[i] == nil {
			if !create {
				return nil
			}
			n.children[i] = &node{}
			n.live++
		}
		n = n.children[i]
	}
	return n
}

// Map4K installs a 4 KiB translation. v must be page aligned. Mapping
// over an existing entry is a simulator bug and panics.
func (t *Table) Map4K(v addr.VirtAddr, pfn addr.PFN, flags Flags) {
	if !v.PageAligned() {
		panic(fmt.Sprintf("pagetable: Map4K unaligned %v", v))
	}
	n := t.descend(v, 0, true)
	if n == nil {
		panic(fmt.Sprintf("pagetable: Map4K %v blocked by huge mapping", v))
	}
	i := index(v, 0)
	if n.leaves[i].Present() {
		panic(fmt.Sprintf("pagetable: Map4K double map at %v", v))
	}
	n.leaves[i] = PTE{PFN: pfn, Flags: flags | Present}
	n.live++
	t.mapped4K++
	t.gen++
	if flags.Has(Contig) {
		t.ContigBits++
	}
	for _, o := range t.obs {
		o.Mapped(v, 1)
	}
}

// Map2M installs a 2 MiB translation. v and pfn must be 2 MiB aligned.
func (t *Table) Map2M(v addr.VirtAddr, pfn addr.PFN, flags Flags) {
	if !v.HugeAligned() {
		panic(fmt.Sprintf("pagetable: Map2M unaligned %v", v))
	}
	if !pfn.Addr().HugeAligned() {
		panic(fmt.Sprintf("pagetable: Map2M unaligned frame %d", pfn))
	}
	n := t.descend(v, HugeLevel, true)
	if n == nil {
		panic(fmt.Sprintf("pagetable: Map2M %v blocked", v))
	}
	i := index(v, HugeLevel)
	if n.children[i] != nil && n.children[i].live == 0 {
		// Reclaim an emptied PT-level table (e.g. after huge-page
		// promotion unmapped all 512 base entries).
		n.children[i] = nil
		n.live--
	}
	if n.huge[i] || n.children[i] != nil {
		panic(fmt.Sprintf("pagetable: Map2M double map at %v", v))
	}
	n.huge[i] = true
	n.leaves[i] = PTE{PFN: pfn, Flags: flags | Present}
	n.live++
	t.mapped2M++
	t.gen++
	if flags.Has(Contig) {
		t.ContigBits++
	}
	for _, o := range t.obs {
		o.Mapped(v, 512)
	}
}

// AddObserver subscribes obs to the table's mapping-change events. The
// hot translation path is unaffected while no observer is registered
// (the usual case); events fire only from mutations.
func (t *Table) AddObserver(obs Observer) {
	t.obs = append(t.obs, obs)
}

// RemoveObserver unsubscribes obs (matched by identity). Removing an
// observer that was never added is a no-op.
func (t *Table) RemoveObserver(obs Observer) {
	for i, o := range t.obs {
		if o == obs {
			t.obs = append(t.obs[:i], t.obs[i+1:]...)
			return
		}
	}
}

// Lookups returns the number of Lookup calls served over the table's
// lifetime (probe-cost accounting for tests).
func (t *Table) Lookups() uint64 { return t.lookups }

// Lookup returns a pointer to the leaf entry mapping v (4K or 2M) so
// callers can update flags in place (contiguity bit, CoW resolution).
// Returns the leaf size in base pages.
func (t *Table) Lookup(v addr.VirtAddr) (pte *PTE, pages uint64, ok bool) {
	t.lookups++
	n := t.root
	for l := t.top; l >= 0; l-- {
		i := index(v, l)
		if l == HugeLevel && n.huge[i] {
			if !n.leaves[i].Present() {
				return nil, 0, false
			}
			return &n.leaves[i], 512, true
		}
		if l == 0 {
			if !n.leaves[i].Present() {
				return nil, 0, false
			}
			return &n.leaves[i], 1, true
		}
		if n.children[i] == nil {
			return nil, 0, false
		}
		n = n.children[i]
	}
	return nil, 0, false
}

// HugeRegionEmpty reports whether the 2 MiB region containing v has no
// translations at all — no huge leaf and no live 4 KiB leaves. It is
// the THP-eligibility probe: one radix descent to the PMD slot instead
// of 512 per-page lookups. A leaf table's live count is authoritative
// because only present leaves are counted (Map2M always sets Present,
// so a huge slot implies a present mapping).
func (t *Table) HugeRegionEmpty(v addr.VirtAddr) bool {
	n := t.descend(v, HugeLevel, false)
	if n == nil {
		return true
	}
	i := index(v, HugeLevel)
	if n.huge[i] {
		return false
	}
	child := n.children[i]
	return child == nil || child.live == 0
}

// HugeRegionFull4K reports whether every base page of the 2 MiB region
// containing v is mapped by a 4 KiB leaf — the Ingens promotion
// precondition, answered by the leaf table's live count instead of 512
// per-slot probes.
func (t *Table) HugeRegionFull4K(v addr.VirtAddr) bool {
	n := t.descend(v, HugeLevel, false)
	if n == nil {
		return false
	}
	i := index(v, HugeLevel)
	if n.huge[i] {
		return false
	}
	child := n.children[i]
	return child != nil && child.live == fanout
}

// FlagRun ORs set into consecutive present leaves starting at v (page
// aligned) and returns how many base pages it advanced over. The run
// stops at the first non-present slot, the first leaf carrying a flag
// in stop, the end of the current leaf extent's table span, or limit —
// whichever comes first. A huge leaf counts as its whole remaining
// 512-page extent (one flag write covers it, exactly as per-page
// touches of the same PTE would). Flag writes through FlagRun do not
// bump the generation, matching in-place flag updates elsewhere. With
// set == 0 it is a pure presence probe.
//
// This is the steady-state inner loop of the range-fault path: one
// descent per leaf-table span, then a linear walk of the table's slots.
func (t *Table) FlagRun(v addr.VirtAddr, limit uint64, set, stop Flags) uint64 {
	if limit == 0 {
		return 0
	}
	n := t.descend(v, HugeLevel, false)
	if n == nil {
		return 0
	}
	i := index(v, HugeLevel)
	if n.huge[i] {
		e := &n.leaves[i]
		if !e.Present() || e.Flags&stop != 0 {
			return 0
		}
		e.Flags |= set
		span := (addr.HugeSize - (uint64(v) & addr.HugeMask)) / addr.PageSize
		if span > limit {
			span = limit
		}
		return span
	}
	child := n.children[i]
	if child == nil {
		return 0
	}
	var done uint64
	for s := index(v, 0); s < fanout && done < limit; s++ {
		e := &child.leaves[s]
		if !e.Present() || e.Flags&stop != 0 {
			break
		}
		e.Flags |= set
		done++
	}
	return done
}

// SetContig sets or clears the contiguity bit on the leaf mapping v.
func (t *Table) SetContig(v addr.VirtAddr, on bool) bool {
	pte, _, ok := t.Lookup(v)
	if !ok {
		return false
	}
	had := pte.Flags.Has(Contig)
	if on && !had {
		pte.Flags |= Contig
		t.ContigBits++
		t.gen++
	} else if !on && had {
		pte.Flags &^= Contig
		t.ContigBits--
		t.gen++
	}
	return true
}

// Redirect points the leaf covering v at a new frame, preserving its
// flags and size — page migration. Unlike mutating the PTE through
// Lookup's pointer, Redirect bumps the generation, so walk caches never
// serve the pre-migration frame.
func (t *Table) Redirect(v addr.VirtAddr, pfn addr.PFN) bool {
	pte, pages, ok := t.Lookup(v)
	if !ok {
		return false
	}
	pte.PFN = pfn
	t.gen++
	base := v.PageDown()
	if pages == 512 {
		base = v.HugeDown()
	}
	for _, o := range t.obs {
		o.Redirected(base, pages)
	}
	return true
}

// Unmap removes the leaf translation covering v (whatever its size) and
// returns the entry it held along with its size in base pages.
func (t *Table) Unmap(v addr.VirtAddr) (PTE, uint64, bool) {
	n := t.root
	for l := t.top; l >= 0; l-- {
		i := index(v, l)
		if l == HugeLevel && n.huge[i] {
			e := n.leaves[i]
			if !e.Present() {
				return PTE{}, 0, false
			}
			n.huge[i] = false
			n.leaves[i] = PTE{}
			n.live--
			t.mapped2M--
			t.gen++
			if e.Flags.Has(Contig) {
				t.ContigBits--
			}
			for _, o := range t.obs {
				o.Unmapped(v.HugeDown(), 512)
			}
			return e, 512, true
		}
		if l == 0 {
			e := n.leaves[i]
			if !e.Present() {
				return PTE{}, 0, false
			}
			n.leaves[i] = PTE{}
			n.live--
			t.mapped4K--
			t.gen++
			if e.Flags.Has(Contig) {
				t.ContigBits--
			}
			for _, o := range t.obs {
				o.Unmapped(v.PageDown(), 1)
			}
			return e, 1, true
		}
		if n.children[i] == nil {
			return PTE{}, 0, false
		}
		n = n.children[i]
	}
	return PTE{}, 0, false
}

// Leaf is one mapped extent reported by Visit.
type Leaf struct {
	VA    addr.VirtAddr
	PTE   PTE
	Pages uint64 // 1 or 512
}

// Visit walks all leaves in ascending virtual-address order.
func (t *Table) Visit(fn func(Leaf)) {
	t.visit(t.root, t.top, 0, fn)
}

func (t *Table) visit(n *node, level int, base addr.VirtAddr, fn func(Leaf)) {
	span := addr.VirtAddr(1) << (addr.PageShift + uint(level)*fanoutBits)
	for i := 0; i < fanout; i++ {
		va := base + addr.VirtAddr(i)*span
		switch {
		case level == HugeLevel && n.huge[i]:
			if n.leaves[i].Present() {
				fn(Leaf{VA: va, PTE: n.leaves[i], Pages: 512})
			}
		case level == 0:
			if n.leaves[i].Present() {
				fn(Leaf{VA: va, PTE: n.leaves[i], Pages: 1})
			}
		case n.children[i] != nil:
			t.visit(n.children[i], level-1, va, fn)
		}
	}
}

// VisitRange walks the leaves whose start VA falls in [lo, hi), in
// ascending order, descending only into subtrees that overlap the
// window. fn returning false stops the walk; VisitRange reports whether
// it ran to completion. Unlike the snapshot-then-act pattern, fn may
// mutate the leaf it is handed through structure-preserving operations
// (in-place flag writes, Redirect) — those never add or remove slots,
// so the in-order walk stays well-defined.
func (t *Table) VisitRange(lo, hi addr.VirtAddr, fn func(Leaf) bool) bool {
	if lo >= hi {
		return true
	}
	return t.visitRange(t.root, t.top, 0, lo, hi, fn)
}

func (t *Table) visitRange(n *node, level int, base addr.VirtAddr, lo, hi addr.VirtAddr, fn func(Leaf) bool) bool {
	span := addr.VirtAddr(1) << (addr.PageShift + uint(level)*fanoutBits)
	first, last := 0, fanout-1
	if lo > base {
		first = int((lo - base) / span)
	}
	if end := base + addr.VirtAddr(fanout)*span; hi < end {
		last = int((hi - 1 - base) / span)
	}
	for i := first; i <= last; i++ {
		va := base + addr.VirtAddr(i)*span
		switch {
		case level == HugeLevel && n.huge[i]:
			if va >= lo && n.leaves[i].Present() {
				if !fn(Leaf{VA: va, PTE: n.leaves[i], Pages: 512}) {
					return false
				}
			}
		case level == 0:
			if va >= lo && n.leaves[i].Present() {
				if !fn(Leaf{VA: va, PTE: n.leaves[i], Pages: 1}) {
					return false
				}
			}
		case n.children[i] != nil:
			if !t.visitRange(n.children[i], level-1, va, lo, hi, fn) {
				return false
			}
		}
	}
	return true
}
