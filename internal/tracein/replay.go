package tracein

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/check"
	"repro/internal/mem/addr"
	"repro/internal/mem/zone"
	"repro/internal/osim"
	"repro/internal/osim/daemon"
	"repro/internal/osim/vma"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Replay bounds, mirroring check.Machine's geometry so the two
// consumers of one trace exercise comparable regimes.
const (
	maxVMAPages   = 1024
	minVMAPages   = 8
	maxRangePages = 512
	maxHogSets    = 2
	accessBurst   = 32
	budgetPct     = 45
	tlbEntries    = 64
	tlbWays       = 8

	// histBuckets is the translate-cost histogram size: log2 buckets
	// over cycle counts, 64 covers any uint64 cost.
	histBuckets = 65
)

// ReplayConfig shapes a replay Engine.
type ReplayConfig struct {
	// Shards is the zone-shard count (default 1): the machine gets one
	// zone per shard, each shard owns its zone outright through a
	// zone.Machine view with its own kernel (the internal/aging
	// ownership model), and tenant t is pinned to shard t%Shards.
	Shards int
	// Jobs bounds how many shard streams apply concurrently: 1 is
	// serial, 0 means GOMAXPROCS. Results are identical at any value —
	// each shard applies its own sub-stream in trace order and shards
	// share no mutable state (pinned by the differential replay test).
	Jobs int
	// Policy is the shard kernels' placement policy, in check's
	// vocabulary: check.PolicyDefault, check.PolicyCA (sorted
	// MAX_ORDER lists), or check.PolicyEager; empty means default.
	Policy string
	// Daemons attaches Ingens and Ranger to every shard kernel.
	Daemons bool
	// ZoneBlocks is the per-shard zone size in MAX_ORDER blocks
	// (default 8 — check.Machine's zone scale).
	ZoneBlocks uint64
	// SampleEvery is the per-shard gauge-row cadence in applied events
	// (default 4096).
	SampleEvery int
	// Tracer, when non-nil, receives EvReplayBatch spans and the shard
	// kernels' event streams. Rows and digests never depend on it.
	Tracer *trace.Tracer
}

func (c ReplayConfig) withDefaults() ReplayConfig {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Jobs <= 0 {
		c.Jobs = runtime.GOMAXPROCS(0)
	}
	if c.ZoneBlocks == 0 {
		c.ZoneBlocks = 8
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 4096
	}
	return c
}

// Row is one per-shard trajectory sample, taken every SampleEvery
// applied events. Rows are derived entirely from shard-owned state, so
// a trace's row sequence is byte-identical at any Jobs setting.
type Row struct {
	Shard      int
	Events     uint64
	Skipped    uint64
	OOMs       uint64
	Faults     uint64
	RSSPages   uint64
	FreePages  uint64
	Tenants    uint64
	Accesses   uint64
	Misses     uint64
	WalkCycles uint64
}

// Result aggregates a finished replay.
type Result struct {
	Events     uint64
	Skipped    uint64
	OOMs       uint64
	Faults     uint64
	Accesses   uint64
	Misses     uint64
	WalkCycles uint64
	// P50Cycles/P99Cycles are translate-cost percentiles over the
	// misses, read from a log2-bucket histogram (the value is the
	// bucket's upper bound, a deterministic integer).
	P50Cycles uint64
	P99Cycles uint64
	// Rows is the merged trajectory: shard 0's rows, then shard 1's, …
	Rows []Row
}

// Digest hashes the full deterministic outcome — every trajectory row
// and the aggregate counters — so two replays can be compared across
// runs, shard-stream job counts, and processes with one string.
func (r Result) Digest() string {
	h := sha256.New()
	put := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	put(r.Events)
	put(r.Skipped)
	put(r.OOMs)
	put(r.Faults)
	put(r.Accesses)
	put(r.Misses)
	put(r.WalkCycles)
	put(r.P50Cycles)
	put(r.P99Cycles)
	for _, row := range r.Rows {
		put(uint64(row.Shard))
		put(row.Events)
		put(row.Skipped)
		put(row.OOMs)
		put(row.Faults)
		put(row.RSSPages)
		put(row.FreePages)
		put(row.Tenants)
		put(row.Accesses)
		put(row.Misses)
		put(row.WalkCycles)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Snapshot is a live counter view, readable while a replay runs.
type Snapshot struct {
	Events    uint64 `json:"events"`
	Skipped   uint64 `json:"skipped"`
	OOMs      uint64 `json:"ooms"`
	Faults    uint64 `json:"faults"`
	Accesses  uint64 `json:"accesses"`
	Misses    uint64 `json:"misses"`
	P50Cycles uint64 `json:"p50_translate_cycles"`
	P99Cycles uint64 `json:"p99_translate_cycles"`
}

// rtenant is one tenant's live state on its shard.
type rtenant struct {
	env   *workloads.Env
	vmas  []*vma.VMA
	pages uint64 // mapped VMA pages, for the footprint budget
	child *osim.Process
	eng   *sim.Engine
}

// rshard owns one zone of the machine: its own kernel over a zone
// view, daemons, tenants, and counters. All mutation happens on the
// shard's applying goroutine; the atomic counters exist so concurrent
// Snapshot readers see coherent values, not for cross-shard sharing.
type rshard struct {
	idx     int
	kern    *osim.Kernel
	daemons []workloads.Daemon
	tenants map[uint32]*rtenant
	hogs    [][]workloads.HogExtent
	budget  uint64
	mapped  uint64
	live    uint64
	walk    float64
	rows    []Row

	lastRow uint64 // events count at the last sampled row

	events   atomic.Uint64
	skipped  atomic.Uint64
	ooms     atomic.Uint64
	faults   atomic.Uint64
	accesses atomic.Uint64
	misses   atomic.Uint64
	hist     [histBuckets]atomic.Uint64

	spanStart uint64 // tracer span token for the open sample window
}

// Engine replays traces against a sharded machine. Build one with
// NewEngine, feed it one trace via Replay/ReplayEvents, read Result
// after the replay returns, and Audit before discarding it. Snapshot
// and SampleGauges are safe to call concurrently with a running
// replay; everything else is single-threaded.
type Engine struct {
	cfg    ReplayConfig
	mach   *zone.Machine
	parent *osim.Kernel
	pinned []check.Extent
	shards []*rshard
	gEvents, gFaults, gMisses,
	gOOMs, gP99 int
	stop   atomic.Bool
	closed bool
}

// NewEngine builds the machine, the parent kernel (boot reservations),
// and one kernel per zone shard.
func NewEngine(cfg ReplayConfig) (*Engine, error) {
	cfg = cfg.withDefaults()
	pol, sorted, err := check.PlacementFor(cfg.Policy)
	if err != nil {
		return nil, fmt.Errorf("tracein: %w", err)
	}
	zones := make([]uint64, cfg.Shards)
	for i := range zones {
		zones[i] = cfg.ZoneBlocks * addr.MaxOrderPages
	}
	mach := zone.NewMachine(zone.Config{ZonePages: zones, SortedMaxOrder: sorted})
	parent := osim.NewKernel(mach, osim.DefaultPolicy{})
	parent.BootReserve(1)
	e := &Engine{cfg: cfg, mach: mach, parent: parent}
	for z := 0; z < cfg.Shards; z++ {
		e.pinned = append(e.pinned, check.Extent{
			PFN:   uint64(z) * cfg.ZoneBlocks * addr.MaxOrderPages,
			Pages: addr.MaxOrderPages,
		})
	}
	for i := 0; i < cfg.Shards; i++ {
		k := osim.NewKernel(mach.View(i), pol)
		s := &rshard{
			idx:     i,
			kern:    k,
			tenants: make(map[uint32]*rtenant),
			budget:  k.Machine.TotalPages() * budgetPct / 100,
		}
		if cfg.Daemons {
			s.daemons = []workloads.Daemon{daemon.NewIngens(k), daemon.NewRanger(k)}
		}
		if cfg.Tracer != nil {
			k.SetTracer(cfg.Tracer)
		}
		s.spanStart = cfg.Tracer.Start()
		e.shards = append(e.shards, s)
	}
	if cfg.Tracer != nil {
		e.gEvents = cfg.Tracer.Gauge("replay.events")
		e.gFaults = cfg.Tracer.Gauge("replay.faults")
		e.gMisses = cfg.Tracer.Gauge("replay.misses")
		e.gOOMs = cfg.Tracer.Gauge("replay.ooms")
		e.gP99 = cfg.Tracer.Gauge("replay.p99_translate_cycles")
	}
	return e, nil
}

// Shards returns the configured shard count.
func (e *Engine) Shards() int { return e.cfg.Shards }

// Stop asks a running replay to wind down: the dispatcher stops
// feeding events and Replay returns nil once the shards drain what
// they already accepted. Safe from any goroutine.
func (e *Engine) Stop() { e.stop.Store(true) }

// ReplayEvents drains a decoded event slice; see Replay.
func (e *Engine) ReplayEvents(events []Event) error {
	i := 0
	return e.replay(func() (Event, error) {
		if i == len(events) {
			return Event{}, io.EOF
		}
		ev := events[i]
		i++
		return ev, nil
	})
}

// Replay streams records from the decoder and applies each to its
// tenant's shard (tenant % Shards), shard streams in parallel up to
// Jobs. The outcome — rows, Result, final machine state — is
// deterministic for a given trace and config, independent of Jobs.
func (e *Engine) Replay(d *Decoder) error {
	var ev Event
	return e.replay(func() (Event, error) {
		if err := d.Next(&ev); err != nil {
			return Event{}, err
		}
		return ev, nil
	})
}

// ReplayStream drains an arbitrary event source: next returns one
// event per call and io.EOF at end of stream. Serving mode uses this
// to feed a deterministic merge of several concurrent tenant streams
// through the same shard-ordered replay path.
func (e *Engine) ReplayStream(next func() (Event, error)) error {
	return e.replay(next)
}

func (e *Engine) replay(next func() (Event, error)) error {
	if e.closed {
		return errors.New("tracein: replay on a closed engine")
	}
	var err error
	if e.cfg.Jobs == 1 || len(e.shards) == 1 {
		err = e.replaySerial(next)
	} else {
		err = e.replayParallel(next)
	}
	if err != nil {
		return err
	}
	// Final flush: one closing row per shard that applied events since
	// its last sample, so every drained replay has a trajectory even
	// below the SampleEvery cadence. Runs serially after the shard
	// streams have quiesced — deterministic at any Jobs.
	for _, s := range e.shards {
		if s.events.Load() != s.lastRow {
			s.sample(e)
		}
	}
	return nil
}

func (e *Engine) replaySerial(next func() (Event, error)) error {
	for !e.stop.Load() {
		ev, err := next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		s := e.shards[int(ev.Tenant)%len(e.shards)]
		if err := e.apply(s, ev); err != nil {
			return err
		}
	}
	return nil
}

// replayParallel runs one applier goroutine per shard behind buffered
// channels. Shard sub-streams are applied in trace order and share
// nothing, so this is byte-equivalent to replaySerial; Jobs>len(shards)
// buys nothing, Jobs<len(shards) is honoured by a semaphore only in
// spirit — each shard is one goroutine, the channel backpressure keeps
// memory bounded either way.
func (e *Engine) replayParallel(next func() (Event, error)) error {
	chans := make([]chan Event, len(e.shards))
	errs := make([]error, len(e.shards))
	var wg sync.WaitGroup
	for i, s := range e.shards {
		chans[i] = make(chan Event, 1024)
		wg.Add(1)
		go func(i int, s *rshard) {
			defer wg.Done()
			for ev := range chans[i] {
				if errs[i] != nil {
					continue // drain after failure
				}
				errs[i] = e.apply(s, ev)
			}
		}(i, s)
	}
	var feedErr error
	for !e.stop.Load() {
		ev, err := next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			feedErr = err
			break
		}
		chans[int(ev.Tenant)%len(e.shards)] <- ev
	}
	for _, c := range chans {
		close(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return feedErr
}

// tenantFor returns (creating on demand) the tenant's state with a
// live process; respawn after exit models slot reuse.
func (s *rshard) tenantFor(id uint32) *rtenant {
	t := s.tenants[id]
	if t == nil {
		t = &rtenant{}
		s.tenants[id] = t
	}
	if t.env == nil {
		t.env = workloads.NewNativeEnv(s.kern, 0)
		t.env.Daemons = s.daemons
		s.live++
	}
	return t
}

// evMix expands an event into one well-mixed word (splitmix64 finisher)
// for the few replay decisions that want a seeded rng rather than a
// direct clamp.
func evMix(ev Event) uint64 {
	z := ev.Arg0<<40 ^ ev.Arg1<<20 ^ ev.Arg2 ^ uint64(ev.Tenant)<<8 ^ uint64(ev.Kind) ^ 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// apply executes one event on its shard. Argument words clamp into
// legal ranges (the check.Machine convention), OOM is tolerated and
// counted, and events that find nothing to act on count as skipped —
// a trace can therefore never wedge the engine, only exercise it.
func (s *rshard) apply(e *Engine, ev Event) error {
	switch ev.Kind {
	case KindMMap:
		t := s.tenantFor(ev.Tenant)
		pages := minVMAPages + ev.Arg0%(maxVMAPages-minVMAPages+1)
		if s.mapped+pages > s.budget {
			s.skipped.Add(1)
			break
		}
		v, err := t.env.MMap(pages * addr.PageSize)
		if err != nil {
			if errors.Is(err, osim.ErrOOM) {
				s.ooms.Add(1)
				break
			}
			return fmt.Errorf("tracein: shard %d mmap: %w", s.idx, err)
		}
		t.vmas = append(t.vmas, v)
		t.pages += pages
		s.mapped += pages
	case KindMUnmap:
		t := s.tenants[ev.Tenant]
		if t == nil || t.env == nil || len(t.vmas) == 0 {
			s.skipped.Add(1)
			break
		}
		i := int(ev.Arg0 % uint64(len(t.vmas)))
		v := t.vmas[i]
		t.env.Proc.MUnmap(v)
		t.vmas = append(t.vmas[:i], t.vmas[i+1:]...)
		t.pages -= v.Pages()
		s.mapped -= v.Pages()
	case KindTouch:
		t, v := s.pickVMA(ev.Tenant, ev.Arg0)
		if v == nil {
			s.skipped.Add(1)
			break
		}
		va := v.Start.Add((ev.Arg1 % v.Pages()) * addr.PageSize)
		if err := t.env.Touch(va, ev.Arg2&1 == 0); err != nil {
			if errors.Is(err, osim.ErrOOM) {
				s.ooms.Add(1)
				break
			}
			return fmt.Errorf("tracein: shard %d touch: %w", s.idx, err)
		}
	case KindTouchRange:
		t, v := s.pickVMA(ev.Tenant, ev.Arg0)
		if v == nil {
			s.skipped.Add(1)
			break
		}
		start := ev.Arg1 % v.Pages()
		maxLen := v.Pages() - start
		if maxLen > maxRangePages {
			maxLen = maxRangePages
		}
		n := 1 + ev.Arg2%maxLen
		err := t.env.PopulateRange(v, v.Start.Add(start*addr.PageSize), n*addr.PageSize)
		if err != nil {
			if errors.Is(err, osim.ErrOOM) {
				s.ooms.Add(1)
				break
			}
			return fmt.Errorf("tracein: shard %d touch-range: %w", s.idx, err)
		}
	case KindAccess:
		if err := s.accessBurst(ev); err != nil {
			return err
		}
	case KindFork:
		t := s.tenants[ev.Tenant]
		if t == nil || t.env == nil {
			s.skipped.Add(1)
			break
		}
		if t.child != nil {
			t.child.Exit()
			t.child = nil
		} else {
			t.child = t.env.Proc.Fork()
		}
	case KindExit:
		t := s.tenants[ev.Tenant]
		if t == nil || t.env == nil {
			s.skipped.Add(1)
			break
		}
		s.exitTenant(t)
	case KindHog:
		if len(s.hogs) >= maxHogSets {
			s.skipped.Add(1)
			break
		}
		frac := float64(2+ev.Arg0%9) / 100
		rng := rand.New(rand.NewSource(int64(evMix(ev) >> 1)))
		ext := workloads.Hog(s.kern.Machine, frac, rng)
		if len(ext) == 0 {
			s.skipped.Add(1)
			break
		}
		s.hogs = append(s.hogs, ext)
	case KindUnhog:
		if len(s.hogs) == 0 {
			s.skipped.Add(1)
			break
		}
		i := int(ev.Arg0 % uint64(len(s.hogs)))
		workloads.Unhog(s.kern.Machine, s.hogs[i])
		s.hogs = append(s.hogs[:i], s.hogs[i+1:]...)
	case KindDaemonTick:
		s.kern.Tick(2_100_000)
		for _, d := range s.daemons {
			d.Maybe()
		}
	default:
		return fmt.Errorf("%w: kind %d", ErrMalformed, ev.Kind)
	}
	s.faults.Store(s.kern.Stats.TotalFaults())
	n := s.events.Add(1)
	if int(n)%e.cfg.SampleEvery == 0 {
		s.sample(e)
	}
	return nil
}

// apply on the engine just forwards; kept as a method so the replay
// loops read naturally.
func (e *Engine) apply(s *rshard, ev Event) error { return s.apply(e, ev) }

// pickVMA selects the tenant's VMA arg-indexed, nil when the tenant
// has no mapping to act on.
func (s *rshard) pickVMA(tenant uint32, arg uint64) (*rtenant, *vma.VMA) {
	t := s.tenants[tenant]
	if t == nil || t.env == nil || len(t.vmas) == 0 {
		return nil, nil
	}
	return t, t.vmas[int(arg%uint64(len(t.vmas)))]
}

// accessBurst drives a read burst through the tenant's persistent sim
// engine: TLB probe, walk on miss, demand-fault retry — the serving
// analogue of sim.Run's batched loop. Costs feed the shard's log2
// histogram for the p50/p99 translate-cost percentiles.
func (s *rshard) accessBurst(ev Event) error {
	t, v := s.pickVMA(ev.Tenant, ev.Arg0)
	if v == nil {
		s.skipped.Add(1)
		return nil
	}
	if t.eng == nil {
		// NoWalkCache: costs and counters are identical either way
		// (the cache only memoizes), but its 64K-entry array would be
		// allocated and zeroed on every tenant respawn — under churn
		// that one allocation dominated the whole replay profile.
		eng, err := sim.NewEngine(t.env, sim.Config{
			TLBEntries: tlbEntries, TLBWays: tlbWays, NoWalkCache: true,
		})
		if err != nil {
			return fmt.Errorf("tracein: shard %d sim engine: %w", s.idx, err)
		}
		t.eng = eng
	}
	burst := 1 + ev.Arg2%accessBurst
	stride := 1 + ev.Arg0%7
	pc := 0x40_0000 + (ev.Arg0%64)*16
	for j := uint64(0); j < burst; j++ {
		page := (ev.Arg1 + j*stride) % v.Pages()
		va := v.Start.Add(page * addr.PageSize)
		cost, err := t.eng.Step(workloads.Access{PC: pc, VA: va})
		if err != nil {
			if errors.Is(err, osim.ErrOOM) {
				s.ooms.Add(1)
				break
			}
			return fmt.Errorf("tracein: shard %d access: %w", s.idx, err)
		}
		s.accesses.Add(1)
		if cost > 0 {
			s.misses.Add(1)
			s.walk += cost
			s.hist[bits.Len64(uint64(cost))].Add(1)
		}
	}
	return nil
}

// exitTenant tears the tenant down: forked child first, then the sim
// engine (detaching its page-table observer), then the process. The
// slot stays and respawns on the tenant's next event.
func (s *rshard) exitTenant(t *rtenant) {
	if t.child != nil {
		t.child.Exit()
		t.child = nil
	}
	if t.eng != nil {
		t.eng.Close()
		t.eng = nil
	}
	t.env.Exit()
	t.env = nil
	t.vmas = nil
	s.mapped -= t.pages
	t.pages = 0
	s.live--
}

// sample appends one trajectory row and closes the tracer span for the
// window. Every input is shard-owned state, so rows are identical at
// any Jobs setting.
func (s *rshard) sample(e *Engine) {
	var rss uint64
	for _, p := range s.kern.Processes() {
		rss += p.RSSPages
	}
	s.lastRow = s.events.Load()
	s.rows = append(s.rows, Row{
		Shard:      s.idx,
		Events:     s.events.Load(),
		Skipped:    s.skipped.Load(),
		OOMs:       s.ooms.Load(),
		Faults:     s.faults.Load(),
		RSSPages:   rss,
		FreePages:  s.kern.Machine.FreePages(),
		Tenants:    s.live,
		Accesses:   s.accesses.Load(),
		Misses:     s.misses.Load(),
		WalkCycles: uint64(s.walk),
	})
	if tr := e.cfg.Tracer; tr != nil {
		tr.EmitSpan(trace.EvReplayBatch, s.spanStart,
			uint64(s.idx), s.events.Load(), s.faults.Load())
		s.spanStart = tr.Start()
	}
}

// percentile reads the q-quantile (0..1) from a merged log2 histogram:
// the value reported is the bucket's upper bound in cycles.
func percentile(hist *[histBuckets]uint64, total uint64, q float64) uint64 {
	if total == 0 {
		return 0
	}
	want := uint64(q * float64(total))
	if want == 0 {
		want = 1
	}
	var cum uint64
	for b, n := range hist {
		cum += n
		if cum >= want {
			if b >= 64 {
				return ^uint64(0)
			}
			return 1 << uint(b)
		}
	}
	return 1 << 63
}

// Result assembles the deterministic outcome of a finished replay.
// Call only after Replay/ReplayEvents has returned.
func (e *Engine) Result() Result {
	var r Result
	var hist [histBuckets]uint64
	for _, s := range e.shards {
		r.Events += s.events.Load()
		r.Skipped += s.skipped.Load()
		r.OOMs += s.ooms.Load()
		r.Faults += s.faults.Load()
		r.Accesses += s.accesses.Load()
		r.Misses += s.misses.Load()
		r.WalkCycles += uint64(s.walk)
		for b := range hist {
			hist[b] += s.hist[b].Load()
		}
		r.Rows = append(r.Rows, s.rows...)
	}
	sort.SliceStable(r.Rows, func(i, j int) bool { return r.Rows[i].Shard < r.Rows[j].Shard })
	r.P50Cycles = percentile(&hist, r.Misses, 0.50)
	r.P99Cycles = percentile(&hist, r.Misses, 0.99)
	return r
}

// Snapshot reads the live counters; safe concurrently with a running
// replay.
func (e *Engine) Snapshot() Snapshot {
	var sn Snapshot
	var hist [histBuckets]uint64
	for _, s := range e.shards {
		sn.Events += s.events.Load()
		sn.Skipped += s.skipped.Load()
		sn.OOMs += s.ooms.Load()
		sn.Faults += s.faults.Load()
		sn.Accesses += s.accesses.Load()
		sn.Misses += s.misses.Load()
		for b := range hist {
			hist[b] += s.hist[b].Load()
		}
	}
	sn.P50Cycles = percentile(&hist, sn.Misses, 0.50)
	sn.P99Cycles = percentile(&hist, sn.Misses, 0.99)
	return sn
}

// SampleGauges publishes the live counters to the configured tracer's
// gauges ("replay.*") and snapshots a counter row. No-op without a
// tracer. Safe concurrently with a running replay.
func (e *Engine) SampleGauges() {
	tr := e.cfg.Tracer
	if tr == nil {
		return
	}
	sn := e.Snapshot()
	tr.SetGauge(e.gEvents, sn.Events)
	tr.SetGauge(e.gFaults, sn.Faults)
	tr.SetGauge(e.gMisses, sn.Misses)
	tr.SetGauge(e.gOOMs, sn.OOMs)
	tr.SetGauge(e.gP99, sn.P99Cycles)
	tr.Sample()
}

// Audit runs the whole-machine deep audit — frame ownership against
// page tables, buddy free sets, contiguity maps, and VMA accounting —
// across the parent and every shard kernel, with boot reservations and
// outstanding hog pins accounted as intentional. Call when quiesced
// (after Replay returns).
func (e *Engine) Audit() error {
	pinned := append([]check.Extent(nil), e.pinned...)
	for _, s := range e.shards {
		for _, set := range s.hogs {
			for _, h := range set {
				pinned = append(pinned, check.Extent{PFN: uint64(h.PFN), Pages: h.Pages})
			}
		}
	}
	ks := []*osim.Kernel{e.parent}
	for _, s := range e.shards {
		ks = append(ks, s.kern)
	}
	return check.AuditKernels(e.mach, ks, pinned)
}

// CorruptForTest deliberately damages the frame table (one mapped
// frame's refcount) so drain-then-audit failure paths can be exercised
// end to end; cmd/memsimd's corrupted-shutdown test is the consumer.
// Returns false if no mapped frame exists yet.
func (e *Engine) CorruptForTest() bool {
	for _, z := range e.mach.Zones {
		frames := e.mach.Frames.Slice(z.Base, z.Pages)
		for i := range frames {
			if frames[i].MapCount > 0 {
				frames[i].MapCount++
				return true
			}
		}
	}
	return false
}

// Close releases the machine back to the zone pool. The engine is
// unusable afterwards. Only call when the machine state is no longer
// needed (after Audit).
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	e.mach.Recycle()
}
