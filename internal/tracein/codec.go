package tracein

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Wire format (DESIGN.md §14):
//
//	header := magic("MTRC") uvarint(version) uvarint(flags)
//	record := kind:1 uvarint(tenant) uvarint(ts_delta)
//	          uvarint(arg0) uvarint(arg1) uvarint(arg2)
//	          [crc32c:4 LE]                       (iff flags&FlagCRC)
//
// All varints are canonical (minimal-length) — the decoder rejects
// overlong encodings — so decode∘encode is the identity on valid
// streams and the round-trip property tests can demand byte equality.
// The per-record CRC is Castagnoli over the record's own bytes (kind
// through arg2); it catches torn writes in long-lived trace archives
// without forcing a whole-file pass before replay can start.

// Version is the current (and only) wire version.
const Version = 1

// FlagCRC enables the per-record CRC32C trailer.
const FlagCRC = 1 << 0

var magic = [4]byte{'M', 'T', 'R', 'C'}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Decode/encode failure modes, all matchable with errors.Is. Truncated
// input surfaces as io.ErrUnexpectedEOF (mid-header or mid-record);
// only a clean between-records end returns io.EOF from Decoder.Next.
var (
	// ErrBadMagic means the input does not start with the trace magic.
	ErrBadMagic = errors.New("tracein: bad magic (not a trace stream)")
	// ErrVersion means the header carries a version (or flag bits)
	// this decoder does not speak.
	ErrVersion = errors.New("tracein: unsupported trace version")
	// ErrCRC means a record failed its CRC32C check.
	ErrCRC = errors.New("tracein: record CRC mismatch")
	// ErrMalformed means a structurally invalid record: unknown kind,
	// oversized tenant, non-canonical or overflowing varint, or a
	// timestamp delta that wraps the logical clock.
	ErrMalformed = errors.New("tracein: malformed record")
)

// maxUvarintLen is the longest canonical 64-bit varint.
const maxUvarintLen = 10

// Encoder writes the streaming trace format. Not safe for concurrent
// use. The caller owns buffering of the underlying writer; Encoder
// writes each header/record with one Write call.
type Encoder struct {
	w      io.Writer
	crc    bool
	lastTS uint64
	n      int
	buf    [1 + 5*maxUvarintLen + 4]byte
}

// NewEncoder writes the header (version 1, CRC flag as given) and
// returns an encoder for the stream.
func NewEncoder(w io.Writer, crc bool) (*Encoder, error) {
	e := &Encoder{w: w, crc: crc}
	var hdr [4 + 2*binary.MaxVarintLen64]byte
	n := copy(hdr[:], magic[:])
	n += binary.PutUvarint(hdr[n:], Version)
	var flags uint64
	if crc {
		flags |= FlagCRC
	}
	n += binary.PutUvarint(hdr[n:], flags)
	if _, err := w.Write(hdr[:n]); err != nil {
		return nil, fmt.Errorf("tracein: write header: %w", err)
	}
	return e, nil
}

// Encode appends one record. Events must arrive in non-decreasing TS
// order (the wire format stores deltas) with valid kinds and tenants;
// violations are caller bugs and are reported as errors, not clamped.
func (e *Encoder) Encode(ev Event) error {
	if ev.Kind >= numKinds {
		return fmt.Errorf("%w: kind %d", ErrMalformed, ev.Kind)
	}
	if ev.Tenant > MaxTenant {
		return fmt.Errorf("%w: tenant %d > %d", ErrMalformed, ev.Tenant, uint32(MaxTenant))
	}
	if ev.TS < e.lastTS {
		return fmt.Errorf("%w: timestamp %d regresses below %d", ErrMalformed, ev.TS, e.lastTS)
	}
	b := e.buf[:0]
	b = append(b, byte(ev.Kind))
	b = binary.AppendUvarint(b, uint64(ev.Tenant))
	b = binary.AppendUvarint(b, ev.TS-e.lastTS)
	b = binary.AppendUvarint(b, ev.Arg0)
	b = binary.AppendUvarint(b, ev.Arg1)
	b = binary.AppendUvarint(b, ev.Arg2)
	if e.crc {
		b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, crcTable))
	}
	if _, err := e.w.Write(b); err != nil {
		return fmt.Errorf("tracein: write record: %w", err)
	}
	e.lastTS = ev.TS
	e.n++
	return nil
}

// Events returns how many records have been encoded.
func (e *Encoder) Events() int { return e.n }

// Encode encodes a whole event slice to w in one call.
func Encode(w io.Writer, events []Event, crc bool) error {
	enc, err := NewEncoder(w, crc)
	if err != nil {
		return err
	}
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// Decoder reads the streaming trace format: construct (header is read
// and validated immediately), then call Next until io.EOF. The decoder
// never reads past the bytes the format calls for and never panics on
// malformed input — any structural problem surfaces as a wrapped
// ErrBadMagic/ErrVersion/ErrCRC/ErrMalformed/io.ErrUnexpectedEOF.
// Next is allocation-free in the steady state (pinned by
// TestDecoderZeroAlloc); construction allocates the read buffer once,
// Reset reuses it for the next stream. Not safe for concurrent use.
type Decoder struct {
	r       *bufio.Reader
	crc     bool
	version uint64
	lastTS  uint64
	events  int
	crcAcc  uint32
	one     [1]byte
}

// NewDecoder reads and validates the stream header.
func NewDecoder(r io.Reader) (*Decoder, error) {
	d := &Decoder{r: bufio.NewReader(r)}
	if err := d.readHeader(); err != nil {
		return nil, err
	}
	return d, nil
}

// Reset repoints the decoder at a new stream, reusing its buffer, and
// reads the new stream's header.
func (d *Decoder) Reset(r io.Reader) error {
	d.r.Reset(r)
	d.crc = false
	d.version = 0
	d.lastTS = 0
	d.events = 0
	return d.readHeader()
}

// CRC reports whether the stream carries per-record CRCs.
func (d *Decoder) CRC() bool { return d.crc }

// TraceVersion returns the stream's wire version.
func (d *Decoder) TraceVersion() uint64 { return d.version }

// Events returns how many records have been decoded so far.
func (d *Decoder) Events() int { return d.events }

func (d *Decoder) readHeader() error {
	// Byte-at-a-time (not io.ReadFull into a local) so Reset+decode of
	// a whole stream stays allocation-free.
	for i := range magic {
		b, err := d.r.ReadByte()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return fmt.Errorf("%w: truncated header: %w", ErrBadMagic, io.ErrUnexpectedEOF)
			}
			return fmt.Errorf("tracein: read header: %w", err)
		}
		if b != magic[i] {
			return fmt.Errorf("%w: byte %d is %#02x", ErrBadMagic, i, b)
		}
	}
	ver, err := d.readUvarint(false)
	if err != nil {
		return fmt.Errorf("tracein: header version: %w", err)
	}
	if ver != Version {
		return fmt.Errorf("%w: version %d (want %d)", ErrVersion, ver, Version)
	}
	flags, err := d.readUvarint(false)
	if err != nil {
		return fmt.Errorf("tracein: header flags: %w", err)
	}
	if flags&^uint64(FlagCRC) != 0 {
		return fmt.Errorf("%w: unknown flag bits %#x", ErrVersion, flags&^uint64(FlagCRC))
	}
	d.version = ver
	d.crc = flags&FlagCRC != 0
	return nil
}

// Next decodes one record into ev. It returns io.EOF at a clean end of
// stream (between records) and leaves ev untouched on any error.
func (d *Decoder) Next(ev *Event) error {
	kb, err := d.r.ReadByte()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("tracein: read record: %w", err)
	}
	d.crcAcc = crc32.Update(0, crcTable, appendByte(&d.one, kb))
	if Kind(kb) >= numKinds {
		return fmt.Errorf("%w: unknown kind %d", ErrMalformed, kb)
	}
	tenant, err := d.readUvarint(true)
	if err != nil {
		return fmt.Errorf("tracein: record tenant: %w", err)
	}
	if tenant > MaxTenant {
		return fmt.Errorf("%w: tenant %d > %d", ErrMalformed, tenant, uint64(MaxTenant))
	}
	delta, err := d.readUvarint(true)
	if err != nil {
		return fmt.Errorf("tracein: record ts: %w", err)
	}
	ts := d.lastTS + delta
	if ts < d.lastTS {
		return fmt.Errorf("%w: timestamp delta %d wraps the clock", ErrMalformed, delta)
	}
	var args [3]uint64
	for i := range args {
		if args[i], err = d.readUvarint(true); err != nil {
			return fmt.Errorf("tracein: record arg%d: %w", i, err)
		}
	}
	if d.crc {
		// Byte-at-a-time so the scratch bytes never escape to the
		// heap: Next stays allocation-free per record.
		var got uint32
		for i := 0; i < 4; i++ {
			b, err := d.r.ReadByte()
			if err != nil {
				return fmt.Errorf("tracein: record crc: %w", noEOF(err))
			}
			got |= uint32(b) << (8 * i)
		}
		if got != d.crcAcc {
			return fmt.Errorf("%w: got %#08x want %#08x", ErrCRC, got, d.crcAcc)
		}
	}
	ev.Kind = Kind(kb)
	ev.Tenant = uint32(tenant)
	ev.TS = ts
	ev.Arg0 = args[0]
	ev.Arg1 = args[1]
	ev.Arg2 = args[2]
	d.lastTS = ts
	d.events++
	return nil
}

// readUvarint reads one canonical uvarint byte-by-byte, folding each
// byte into the running record CRC when inRecord. It rejects overlong
// (non-minimal) encodings and 64-bit overflow, so every decoded value
// has exactly one wire image.
func (d *Decoder) readUvarint(inRecord bool) (uint64, error) {
	var x uint64
	var s uint
	for i := 0; i < maxUvarintLen; i++ {
		b, err := d.r.ReadByte()
		if err != nil {
			return 0, noEOF(err)
		}
		if inRecord {
			d.crcAcc = crc32.Update(d.crcAcc, crcTable, appendByte(&d.one, b))
		}
		if b < 0x80 {
			if i == maxUvarintLen-1 && b > 1 {
				return 0, fmt.Errorf("%w: varint overflows 64 bits", ErrMalformed)
			}
			if i > 0 && b == 0 {
				return 0, fmt.Errorf("%w: non-canonical varint", ErrMalformed)
			}
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, fmt.Errorf("%w: varint overflows 64 bits", ErrMalformed)
}

// appendByte stages one byte in the decoder's fixed scratch cell so
// crc32.Update sees a slice without allocating.
func appendByte(one *[1]byte, b byte) []byte {
	one[0] = b
	return one[:]
}

// noEOF converts a bare io.EOF into io.ErrUnexpectedEOF: inside a
// header or record, running out of bytes is truncation, not a clean
// end of stream.
func noEOF(err error) error {
	if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Decode reads a whole stream into memory: the header, then records
// until clean EOF. Tools and tests use it; the replay engine streams
// through Decoder.Next instead.
func Decode(r io.Reader) ([]Event, error) {
	d, err := NewDecoder(r)
	if err != nil {
		return nil, err
	}
	var out []Event
	var ev Event
	for {
		switch err := d.Next(&ev); {
		case err == nil:
			out = append(out, ev)
		case errors.Is(err, io.EOF):
			return out, nil
		default:
			return out, err
		}
	}
}
