package tracein

import (
	"io"
	"math/rand"

	"repro/internal/aging"
)

// SynthConfig parameterizes the deterministic trace generator.
type SynthConfig struct {
	// Seed makes the trace fully deterministic.
	Seed int64
	// Events is the record count to generate.
	Events int
	// Tenants is the tenant ID space (default 4). Tenants arrive and
	// exit over the trace; IDs are reused across generations like real
	// serving slots.
	Tenants int
	// ZipfS/ZipfV shape the tenant-popularity skew for steady-state
	// events (defaults 1.2/1): a few hot tenants take most of the
	// traffic, the tail stays warm.
	ZipfS, ZipfV float64
}

func (c SynthConfig) withDefaults() SynthConfig {
	if c.Tenants <= 0 {
		c.Tenants = 4
	}
	if c.Tenants > MaxTenant+1 {
		c.Tenants = MaxTenant + 1
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.ZipfV < 1 {
		c.ZipfV = 1
	}
	return c
}

// Synth generates a multi-tenant churn trace, deterministic per
// config. Tenant lifecycle follows the aging campaigns' fixed churn
// mix (aging.ChurnRoll: arrive 30 %, touch 50 %, exit 20 %, adjusted
// at the population bounds), so the serving traces age kernels the
// same way the fragmentation campaigns do; within a live tenant's
// steady state, event kinds follow a fixed weighted mix dominated by
// touches and translation bursts. Argument words are drawn small
// (16-bit) — consumers clamp them anyway, and small args keep the
// encoded stream around a dozen bytes per record.
func Synth(cfg SynthConfig) []Event {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, cfg.ZipfV, uint64(cfg.Tenants-1))
	live := make([]bool, cfg.Tenants)
	liveCount := 0
	var ts uint64
	arg := func() uint64 { return uint64(rng.Intn(1 << 16)) }
	// pick scans cyclically from a random start for a tenant in the
	// wanted liveness state; the caller guarantees one exists.
	pick := func(start int, wantLive bool) uint32 {
		for i := 0; i < cfg.Tenants; i++ {
			t := (start + i) % cfg.Tenants
			if live[t] == wantLive {
				return uint32(t)
			}
		}
		panic("tracein: synth pick with no candidate")
	}
	out := make([]Event, 0, cfg.Events)
	for len(out) < cfg.Events {
		ts += uint64(rng.Intn(4))
		ev := Event{TS: ts}
		switch aging.ChurnRoll(rng, liveCount, cfg.Tenants) {
		case aging.ChurnArrive:
			ev.Kind = KindMMap
			ev.Tenant = pick(rng.Intn(cfg.Tenants), false)
			live[ev.Tenant] = true
			liveCount++
		case aging.ChurnExit:
			ev.Kind = KindExit
			ev.Tenant = pick(rng.Intn(cfg.Tenants), true)
			live[ev.Tenant] = false
			liveCount--
		default: // steady-state traffic on a Zipf-hot live tenant
			ev.Tenant = pick(int(zipf.Uint64()), true)
			roll := rng.Intn(100)
			switch {
			case roll < 22:
				ev.Kind = KindTouch
			case roll < 40:
				ev.Kind = KindTouchRange
			case roll < 70:
				ev.Kind = KindAccess
			case roll < 78:
				ev.Kind = KindMMap
			case roll < 84:
				ev.Kind = KindMUnmap
			case roll < 89:
				ev.Kind = KindFork
			case roll < 92:
				ev.Kind = KindHog
			case roll < 96:
				ev.Kind = KindUnhog
			default:
				ev.Kind = KindDaemonTick
			}
		}
		ev.Arg0, ev.Arg1, ev.Arg2 = arg(), arg(), arg()
		out = append(out, ev)
	}
	return out
}

// WriteSynth encodes a synthesized trace straight to w.
func WriteSynth(w io.Writer, cfg SynthConfig, crc bool) error {
	return Encode(w, Synth(cfg), crc)
}
