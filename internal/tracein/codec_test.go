package tracein

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
)

// randomEvents builds an arbitrary-but-valid event sequence: any kind,
// any tenant in range, non-decreasing timestamps, args across the full
// uint64 range (small and huge) so varint widths all occur.
func randomEvents(rng *rand.Rand, n int) []Event {
	evs := make([]Event, n)
	var ts uint64
	for i := range evs {
		ts += uint64(rng.Intn(1 << uint(rng.Intn(20))))
		arg := func() uint64 {
			return rng.Uint64() >> uint(rng.Intn(64))
		}
		evs[i] = Event{
			Kind:   Kind(rng.Intn(int(numKinds))),
			Tenant: uint32(rng.Intn(MaxTenant + 1)),
			TS:     ts,
			Arg0:   arg(),
			Arg1:   arg(),
			Arg2:   arg(),
		}
	}
	return evs
}

// TestRoundTrip is the codec property test: arbitrary event sequences
// survive encode→decode exactly, and re-encoding the decoded events
// reproduces the original bytes (varints are canonical, timestamps are
// delta-coded from decoded absolutes — nothing in the wire image is
// ambiguous).
func TestRoundTrip(t *testing.T) {
	for _, crc := range []bool{false, true} {
		for seed := int64(0); seed < 20; seed++ {
			rng := rand.New(rand.NewSource(seed))
			evs := randomEvents(rng, 1+rng.Intn(200))
			var buf bytes.Buffer
			if err := Encode(&buf, evs, crc); err != nil {
				t.Fatalf("crc=%v seed=%d: encode: %v", crc, seed, err)
			}
			wire := append([]byte(nil), buf.Bytes()...)
			got, err := Decode(bytes.NewReader(wire))
			if err != nil {
				t.Fatalf("crc=%v seed=%d: decode: %v", crc, seed, err)
			}
			if len(got) != len(evs) {
				t.Fatalf("crc=%v seed=%d: decoded %d events, want %d", crc, seed, len(got), len(evs))
			}
			for i := range got {
				if got[i] != evs[i] {
					t.Fatalf("crc=%v seed=%d: event %d = %+v, want %+v", crc, seed, i, got[i], evs[i])
				}
			}
			var buf2 bytes.Buffer
			if err := Encode(&buf2, got, crc); err != nil {
				t.Fatalf("crc=%v seed=%d: re-encode: %v", crc, seed, err)
			}
			if !bytes.Equal(buf2.Bytes(), wire) {
				t.Fatalf("crc=%v seed=%d: re-encoded bytes differ from original", crc, seed)
			}
		}
	}
}

func TestEncoderRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(Event{Kind: numKinds}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("bad kind: err = %v, want ErrMalformed", err)
	}
	if err := enc.Encode(Event{Tenant: MaxTenant + 1}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("bad tenant: err = %v, want ErrMalformed", err)
	}
	if err := enc.Encode(Event{TS: 10}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(Event{TS: 9}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("ts regression: err = %v, want ErrMalformed", err)
	}
}

// encodeOne returns a valid one-event stream for corruption tests.
func encodeOne(t *testing.T, crc bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	err := Encode(&buf, []Event{{Kind: KindTouch, Tenant: 3, TS: 7, Arg0: 300, Arg1: 1, Arg2: 2}}, crc)
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDecoderErrors(t *testing.T) {
	valid := encodeOne(t, true)
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrBadMagic},
		{"truncated magic", valid[:2], ErrBadMagic},
		{"bad magic", append([]byte("XTRC"), valid[4:]...), ErrBadMagic},
		{"truncated header", valid[:4], io.ErrUnexpectedEOF},
		{"version skew", append([]byte("MTRC\x02"), valid[5:]...), ErrVersion},
		{"unknown flags", append([]byte("MTRC\x01\x7e"), valid[6:]...), ErrVersion},
		{"mid-record cut", valid[:len(valid)-6], io.ErrUnexpectedEOF},
		{"crc cut", valid[:len(valid)-2], io.ErrUnexpectedEOF},
	}
	for _, tc := range cases {
		_, err := Decode(bytes.NewReader(tc.data))
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}

	// CRC flip: flip one bit in the record body.
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-5] ^= 0x40
	if _, err := Decode(bytes.NewReader(flipped)); !errors.Is(err, ErrCRC) {
		t.Errorf("crc flip: err = %v, want ErrCRC", err)
	}

	// Unknown kind byte.
	noCRC := encodeOne(t, false)
	bad := append([]byte(nil), noCRC...)
	bad[6] = byte(numKinds) // first record byte after the 6-byte header
	if _, err := Decode(bytes.NewReader(bad)); !errors.Is(err, ErrMalformed) {
		t.Errorf("unknown kind: err = %v, want ErrMalformed", err)
	}

	// Non-canonical varint (overlong zero) in the tenant field.
	overlong := append([]byte(nil), noCRC[:7]...)
	overlong = append(overlong, 0x80, 0x00)       // tenant = 0, two bytes
	overlong = append(overlong, noCRC[8:]...)     // rest of the record
	if _, err := Decode(bytes.NewReader(overlong)); !errors.Is(err, ErrMalformed) {
		t.Errorf("non-canonical varint: err = %v, want ErrMalformed", err)
	}

	// Varint overflowing 64 bits.
	over := append([]byte(nil), noCRC[:7]...)
	over = append(over, bytes.Repeat([]byte{0xff}, 10)...)
	if _, err := Decode(bytes.NewReader(over)); !errors.Is(err, ErrMalformed) {
		t.Errorf("varint overflow: err = %v, want ErrMalformed", err)
	}

	// Timestamp delta wrapping the logical clock.
	var wrap bytes.Buffer
	enc, err := NewEncoder(&wrap, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(Event{Kind: KindTouch, TS: 1}); err != nil {
		t.Fatal(err)
	}
	w := wrap.Bytes()
	// Hand-build a second record whose delta is MaxUint64.
	w = append(w, byte(KindTouch), 0x00)
	w = append(w, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01)
	w = append(w, 0x00, 0x00, 0x00)
	if _, err := Decode(bytes.NewReader(w)); !errors.Is(err, ErrMalformed) {
		t.Errorf("ts wrap: err = %v, want ErrMalformed", err)
	}
}

// TestDecoderZeroAlloc pins the decoder's steady state at zero heap
// allocations per record: the serving path decodes millions of events
// and must not churn the GC.
func TestDecoderZeroAlloc(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, Synth(SynthConfig{Seed: 3, Events: 512, Tenants: 4}), true); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	br := bytes.NewReader(data)
	d, err := NewDecoder(br)
	if err != nil {
		t.Fatal(err)
	}
	var ev Event
	allocs := testing.AllocsPerRun(50, func() {
		br.Reset(data)
		if err := d.Reset(br); err != nil {
			t.Fatal(err)
		}
		for {
			err := d.Next(&ev)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("decoder allocated %.1f times per stream, want 0", allocs)
	}
}

// TestSynthDeterministic pins that a config generates one trace.
func TestSynthDeterministic(t *testing.T) {
	cfg := SynthConfig{Seed: 11, Events: 2000, Tenants: 5}
	a, b := Synth(cfg), Synth(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs across runs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// And it is codec-clean.
	var buf bytes.Buffer
	if err := Encode(&buf, a, true); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(a) {
		t.Fatalf("decoded %d events, want %d", len(got), len(a))
	}
}

// TestOpsTotal pins that the Event→check.Op mapping is total: every
// kind maps to a valid op kind, so any decodable trace replays through
// check.Machine.
func TestOpsTotal(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		op := Event{Kind: k, Tenant: 9, Arg0: 1, Arg1: 2, Arg2: 3}.Op()
		if op.Kind.String() == "" {
			t.Fatalf("kind %v maps to invalid op", k)
		}
	}
	if len(Ops(Synth(SynthConfig{Seed: 1, Events: 100}))) != 100 {
		t.Fatal("Ops length mismatch")
	}
}
