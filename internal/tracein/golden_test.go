package tracein

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/check"
)

var update = flag.Bool("update", false, "rewrite the golden trace, its decoded snapshot, and the replay digest")

// goldenSynth is the committed golden trace's generator config; the
// trace file itself is what is pinned — regenerating it must be a
// deliberate -update, because any byte drift is format drift.
var goldenSynth = SynthConfig{Seed: 42, Events: 400, Tenants: 3}

// goldenReplayCfg is the replay variant the digest snapshot pins.
var goldenReplayCfg = ReplayConfig{Shards: 2, Jobs: 1, Policy: check.PolicyCA}

// goldenReplay is the committed replay outcome of the golden trace.
type goldenReplay struct {
	Digest   string `json:"digest"`
	Events   uint64 `json:"events"`
	Faults   uint64 `json:"faults"`
	Accesses uint64 `json:"accesses"`
	Misses   uint64 `json:"misses"`
}

// TestGoldenTrace pins the wire format and the replay semantics at
// once: the committed golden.trace must decode to the committed event
// list byte-for-byte and replay to the committed counter digest. Any
// codec or replay-semantics change trips this test; refresh with:
//
//	go test ./internal/tracein -run TestGoldenTrace -update
func TestGoldenTrace(t *testing.T) {
	tracePath := filepath.Join("testdata", "golden.trace")
	eventsPath := filepath.Join("testdata", "golden_events.json")
	replayPath := filepath.Join("testdata", "golden_replay.json")

	if *update {
		var buf bytes.Buffer
		if err := Encode(&buf, Synth(goldenSynth), true); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(tracePath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	wire, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	events, err := Decode(bytes.NewReader(wire))
	if err != nil {
		t.Fatalf("golden trace no longer decodes: %v", err)
	}

	// The encoder must reproduce the committed bytes exactly.
	var reenc bytes.Buffer
	if err := Encode(&reenc, events, true); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reenc.Bytes(), wire) {
		t.Fatal("re-encoding the golden trace changed its bytes (wire format drift)")
	}

	e, err := NewEngine(goldenReplayCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.ReplayEvents(events); err != nil {
		t.Fatal(err)
	}
	if err := e.Audit(); err != nil {
		t.Fatal(err)
	}
	r := e.Result()
	gotReplay := goldenReplay{
		Digest: r.Digest(), Events: r.Events, Faults: r.Faults,
		Accesses: r.Accesses, Misses: r.Misses,
	}

	if *update {
		writeJSON(t, eventsPath, events)
		writeJSON(t, replayPath, gotReplay)
	}

	var wantEvents []Event
	readJSON(t, eventsPath, &wantEvents)
	if !reflect.DeepEqual(events, wantEvents) {
		t.Fatalf("decoded event list drifted from %s (run -update deliberately)", eventsPath)
	}
	var wantReplay goldenReplay
	readJSON(t, replayPath, &wantReplay)
	if gotReplay != wantReplay {
		t.Fatalf("replay outcome drifted:\n got %+v\nwant %+v\n(run -update deliberately)", gotReplay, wantReplay)
	}
}

func writeJSON(t *testing.T, path string, v any) {
	t.Helper()
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

func readJSON(t *testing.T, path string, v any) {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf, v); err != nil {
		t.Fatal(err)
	}
}
