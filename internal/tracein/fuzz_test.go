package tracein

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/check"
)

// fuzzSeedStream builds a small valid stream for the seed corpus.
func fuzzSeedStream(crc bool) []byte {
	var buf bytes.Buffer
	if err := Encode(&buf, Synth(SynthConfig{Seed: 7, Events: 8, Tenants: 2}), crc); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzTraceDecode hammers the decoder with arbitrary bytes. The
// invariants: never panic, never over-read (bytes.Reader bounds that),
// and on a clean decode the canonical-varint/delta-TS design means
// re-encoding the decoded events reproduces the input byte-for-byte.
func FuzzTraceDecode(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(fuzzSeedStream(false))
	f.Add(fuzzSeedStream(true))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := NewDecoder(bytes.NewReader(data))
		if err != nil {
			checkDecodeErr(t, err)
			return
		}
		var evs []Event
		var ev Event
		for {
			err := d.Next(&ev)
			if err == io.EOF {
				break
			}
			if err != nil {
				checkDecodeErr(t, err)
				return
			}
			evs = append(evs, ev)
		}
		// Clean decode: the stream must be exactly re-encodable.
		var out bytes.Buffer
		if err := Encode(&out, evs, d.CRC()); err != nil {
			t.Fatalf("decoded stream does not re-encode: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("re-encode of %d decoded events differs from input", len(evs))
		}
	})
}

// checkDecodeErr asserts a decode failure is one of the documented
// error classes, never something structural leaking out.
func checkDecodeErr(t *testing.T, err error) {
	t.Helper()
	for _, want := range []error{ErrBadMagic, ErrVersion, ErrCRC, ErrMalformed, io.ErrUnexpectedEOF} {
		if errors.Is(err, want) {
			return
		}
	}
	t.Fatalf("decode failed with undocumented error: %v", err)
}

// FuzzTraceReplay drains arbitrary byte streams through the full
// replay engine: whatever prefix decodes must apply without panicking,
// and the machine must audit clean afterwards — the serving mode's
// robustness contract against hostile or torn trace files.
func FuzzTraceReplay(f *testing.F) {
	f.Add(fuzzSeedStream(true))
	f.Add(fuzzSeedStream(false))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := NewDecoder(bytes.NewReader(data))
		if err != nil {
			checkDecodeErr(t, err)
			return
		}
		// Cap the replayed prefix so a fuzzer-grown stream cannot make
		// a single case arbitrarily slow.
		const maxEvents = 256
		var evs []Event
		var ev Event
		for len(evs) < maxEvents {
			err := d.Next(&ev)
			if err == io.EOF {
				break
			}
			if err != nil {
				checkDecodeErr(t, err)
				break
			}
			evs = append(evs, ev)
		}
		e, err := NewEngine(ReplayConfig{Shards: 2, Jobs: 1, Policy: check.PolicyCA})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		if err := e.ReplayEvents(evs); err != nil {
			t.Fatalf("replay of decodable events failed: %v", err)
		}
		if err := e.Audit(); err != nil {
			t.Fatalf("audit after replay: %v", err)
		}
	})
}
