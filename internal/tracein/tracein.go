// Package tracein is the serving-mode input path: a versioned,
// streaming binary trace format for multi-tenant memory workloads,
// a deterministic synthesizer producing reproducible million-event
// inputs, and a replay engine that drains traces through the real
// kernel/hardware stack (one zone shard per tenant group, reusing the
// sharded-ownership model of internal/aging).
//
// The format carries the same operation vocabulary internal/check's
// differential machine models — mmap/munmap/touch/range-touch/access/
// fork/exit/hog/unhog/daemon-tick — so every trace has two consumers:
// the replay Engine (real kernels, real translation hardware, audited
// with check.AuditKernels at drain) and check.Machine via the
// canonical Event→check.Op mapping, which keeps the three differential
// oracles in the loop for any input the serving path accepts. See
// DESIGN.md §14 for the format spec and the determinism argument.
package tracein

import (
	"fmt"

	"repro/internal/check"
)

// Kind enumerates the trace event vocabulary. The wire encoding is the
// constant's value, so the order is frozen: new kinds append before
// numKinds and bump no existing value.
type Kind uint8

const (
	// KindMMap maps a new anonymous VMA for the tenant. Arg0 sizes it
	// (the replayer clamps into its VMA-page bounds).
	KindMMap Kind = iota
	// KindMUnmap unmaps one of the tenant's VMAs (Arg0 selects).
	KindMUnmap
	// KindTouch faults or re-touches one page (Arg0 selects the VMA,
	// Arg1 the page, Arg2 bit 0 the write flag).
	KindTouch
	// KindTouchRange populates a page range through the batched
	// range-fault path (Arg0 VMA, Arg1 start page, Arg2 length).
	KindTouchRange
	// KindAccess streams a read burst through the tenant's translation
	// engine — TLB probe, page walk, demand-fault retry (Arg0 PC/stride
	// seed, Arg1 start page, Arg2 burst length).
	KindAccess
	// KindFork forks the tenant's process copy-on-write; if a forked
	// child is already live it exits the child instead (teardown), the
	// same at-cap flip check.Machine's OpFork performs.
	KindFork
	// KindExit tears the tenant down (process exit, VMAs freed). The
	// next event for the tenant respawns it.
	KindExit
	// KindHog pins a fraction of the shard's physical memory in coarse
	// fragmentation chunks (Arg0 picks the fraction).
	KindHog
	// KindUnhog releases one pinned hog set (Arg0 selects).
	KindUnhog
	// KindDaemonTick advances the shard kernel's logical clock past the
	// daemon period and polls the attached daemons.
	KindDaemonTick

	numKinds
)

// kindNames are index-aligned stable identifiers (wire docs, tools).
var kindNames = [numKinds]string{
	"mmap", "munmap", "touch", "touch-range", "access",
	"fork", "exit", "hog", "unhog", "daemon-tick",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// NumKinds returns the size of the event vocabulary.
func NumKinds() int { return int(numKinds) }

// MaxTenant bounds tenant IDs. The codec rejects larger values so a
// corrupt or adversarial trace cannot make a replayer grow unbounded
// per-tenant state.
const MaxTenant = 1<<20 - 1

// Event is one decoded trace record. TS is a logical timestamp,
// non-decreasing across the stream (the wire format delta-encodes it,
// so the decoder enforces monotonicity for free). Arg0..Arg2 are
// kind-specific parameters; like check.Op's A/B/C, consumers clamp
// them into legal ranges, so every decodable event is applicable.
type Event struct {
	Kind   Kind
	Tenant uint32
	TS     uint64
	Arg0   uint64
	Arg1   uint64
	Arg2   uint64
}

// opKinds is the canonical Event→check.Op kind mapping. KindExit maps
// to OpFork because the differential machine's fork-at-cap flip is its
// teardown entry point: repeated OpFork alternates fork and child-exit,
// so exits in a trace still exercise teardown there. KindAccess maps
// to OpTLB, the machine's access-burst op. The mapping is total over
// the vocabulary — every decodable trace replays through check.Machine.
var opKinds = [numKinds]check.OpKind{
	KindMMap:       check.OpMMap,
	KindMUnmap:     check.OpUnmap,
	KindTouch:      check.OpTouch,
	KindTouchRange: check.OpTouchRange,
	KindAccess:     check.OpTLB,
	KindFork:       check.OpFork,
	KindExit:       check.OpFork,
	KindHog:        check.OpHog,
	KindUnhog:      check.OpUnhog,
	KindDaemonTick: check.OpDaemonTick,
}

// Op maps the event onto the differential machine's op vocabulary.
// The tenant ID is folded into A (check expands A/B/C through a local
// PRNG, so any fold just diversifies the decoded parameters): distinct
// tenants doing the "same" thing land on distinct machine processes.
func (e Event) Op() check.Op {
	return check.Op{
		Kind: opKinds[e.Kind],
		A:    e.Arg0 ^ uint64(e.Tenant)*0x9e3779b9,
		B:    e.Arg1,
		C:    e.Arg2,
	}
}

// Ops maps a whole event slice through Op, ready for
// check.Machine.ApplyOps.
func Ops(events []Event) []check.Op {
	out := make([]check.Op, len(events))
	for i, e := range events {
		out[i] = e.Op()
	}
	return out
}
