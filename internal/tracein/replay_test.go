package tracein

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/trace"
)

// TestDifferentialReplay is the replay net's anchor: one synthesized
// trace drains through the real sharded machine at several shard
// counts — whole-machine audit at drain, byte-identical trajectories
// (digest) for jobs=1 vs jobs=4 — and through check.Machine via the
// canonical Event→Op mapping, with the differential oracles
// cross-checking every op.
func TestDifferentialReplay(t *testing.T) {
	evs := Synth(SynthConfig{Seed: 1, Events: 6000, Tenants: 4})

	for _, tc := range []struct {
		shards  int
		policy  string
		daemons bool
	}{
		{shards: 1, policy: check.PolicyDefault},
		{shards: 2, policy: check.PolicyCA, daemons: true},
		{shards: 3, policy: check.PolicyEager},
	} {
		var digests []string
		var last Result
		for _, jobs := range []int{1, 4} {
			e, err := NewEngine(ReplayConfig{
				Shards: tc.shards, Jobs: jobs,
				Policy: tc.policy, Daemons: tc.daemons,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := e.ReplayEvents(evs); err != nil {
				t.Fatalf("shards=%d jobs=%d: replay: %v", tc.shards, jobs, err)
			}
			if err := e.Audit(); err != nil {
				t.Fatalf("shards=%d jobs=%d: audit at drain: %v", tc.shards, jobs, err)
			}
			last = e.Result()
			digests = append(digests, last.Digest())
			e.Close()
		}
		if digests[0] != digests[1] {
			t.Fatalf("shards=%d: jobs=1 and jobs=4 trajectories diverge", tc.shards)
		}
		// Non-vacuity: the trace must actually have exercised the
		// machinery on every variant.
		if last.Events != uint64(len(evs)) {
			t.Fatalf("shards=%d: applied %d events, want %d", tc.shards, last.Events, len(evs))
		}
		if last.Faults == 0 || last.Accesses == 0 || last.Misses == 0 {
			t.Fatalf("shards=%d: vacuous replay: %+v", tc.shards, last)
		}
		if len(last.Rows) == 0 {
			t.Fatalf("shards=%d: no trajectory rows", tc.shards)
		}
	}

	// The same trace through the differential machine: per-op oracle
	// cross-checks plus its own audits (CheckEvery), one machine per
	// policy variant the replay ran.
	for _, policy := range []string{check.PolicyDefault, check.PolicyCA} {
		m, err := check.NewMachine(check.Config{Policy: policy, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.ApplyOps(Ops(evs)); err != nil {
			t.Fatalf("policy=%s: check.Machine replay: %v", policy, err)
		}
		if err := m.CheckAll(); err != nil {
			t.Fatalf("policy=%s: final check: %v", policy, err)
		}
		if m.Stats.Ops != len(evs) {
			t.Fatalf("policy=%s: machine applied %d ops, want %d", policy, m.Stats.Ops, len(evs))
		}
	}
}

// TestReplayDeterministicAcrossRuns pins run-to-run stability of the
// digest (fresh engine, same trace, same config).
func TestReplayDeterministicAcrossRuns(t *testing.T) {
	evs := Synth(SynthConfig{Seed: 5, Events: 3000, Tenants: 3})
	var digests []string
	for run := 0; run < 2; run++ {
		e, err := NewEngine(ReplayConfig{Shards: 2, Jobs: 2, Policy: check.PolicyCA})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.ReplayEvents(evs); err != nil {
			t.Fatal(err)
		}
		digests = append(digests, e.Result().Digest())
		e.Close()
	}
	if digests[0] != digests[1] {
		t.Fatal("same trace, same config, different digest across runs")
	}
}

// TestReplayStreaming pins that decoding straight off the wire gives
// the same outcome as replaying a decoded slice.
func TestReplayStreaming(t *testing.T) {
	evs := Synth(SynthConfig{Seed: 8, Events: 2000, Tenants: 4})
	var buf strings.Builder
	if err := Encode(&buf, evs, true); err != nil {
		t.Fatal(err)
	}

	e1, err := NewEngine(ReplayConfig{Shards: 2, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.ReplayEvents(evs); err != nil {
		t.Fatal(err)
	}
	want := e1.Result().Digest()
	e1.Close()

	d, err := NewDecoder(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(ReplayConfig{Shards: 2, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Replay(d); err != nil {
		t.Fatal(err)
	}
	if got := e2.Result().Digest(); got != want {
		t.Fatalf("streamed replay digest %s, want %s", got, want)
	}
	if err := e2.Audit(); err != nil {
		t.Fatal(err)
	}
	e2.Close()
}

// TestAuditCatchesCorruption keeps the drain-then-audit gate honest:
// a deliberately damaged frame refcount must fail the audit.
func TestAuditCatchesCorruption(t *testing.T) {
	e, err := NewEngine(ReplayConfig{Shards: 2, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.ReplayEvents(Synth(SynthConfig{Seed: 2, Events: 500, Tenants: 2})); err != nil {
		t.Fatal(err)
	}
	if err := e.Audit(); err != nil {
		t.Fatalf("clean audit failed: %v", err)
	}
	if !e.CorruptForTest() {
		t.Fatal("no mapped frame to corrupt")
	}
	if err := e.Audit(); err == nil {
		t.Fatal("audit passed on a corrupted frame table")
	}
}

// TestReplayStop pins the drain contract: Stop ends the replay without
// error mid-stream and the machine still audits clean.
func TestReplayStop(t *testing.T) {
	e, err := NewEngine(ReplayConfig{Shards: 2, Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Stop()
	if err := e.ReplayEvents(Synth(SynthConfig{Seed: 4, Events: 1000})); err != nil {
		t.Fatal(err)
	}
	if got := e.Result().Events; got != 0 {
		t.Fatalf("stopped replay applied %d events", got)
	}
	if err := e.Audit(); err != nil {
		t.Fatal(err)
	}
}

// TestReplayGauges pins the tracer integration: EvReplayBatch spans
// and replay.* gauges appear, and attaching a tracer does not change
// the digest.
func TestReplayGauges(t *testing.T) {
	evs := Synth(SynthConfig{Seed: 6, Events: 3000, Tenants: 4})
	bare, err := NewEngine(ReplayConfig{Shards: 2, Jobs: 1, SampleEvery: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := bare.ReplayEvents(evs); err != nil {
		t.Fatal(err)
	}
	want := bare.Result().Digest()
	bare.Close()

	tr := trace.New()
	e, err := NewEngine(ReplayConfig{Shards: 2, Jobs: 1, SampleEvery: 256, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.ReplayEvents(evs); err != nil {
		t.Fatal(err)
	}
	e.SampleGauges()
	if got := e.Result().Digest(); got != want {
		t.Fatal("tracer changed the replay digest")
	}
	if tr.Count(trace.EvReplayBatch) == 0 {
		t.Fatal("no EvReplayBatch spans emitted")
	}
	if v, ok := tr.GaugeValue("replay.events"); !ok || v != uint64(len(evs)) {
		t.Fatalf("replay.events gauge = %d,%v; want %d", v, ok, len(evs))
	}
}

// TestReplayBadPolicy pins config validation.
func TestReplayBadPolicy(t *testing.T) {
	if _, err := NewEngine(ReplayConfig{Policy: "nope"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestReplayArbitraryEvents pins that the replay path tolerates
// arbitrary decodable events (clamping, skipping, OOM-counting) and
// still audits clean — the property FuzzTraceReplay explores.
func TestReplayArbitraryEvents(t *testing.T) {
	evs := randomEvents(rand.New(rand.NewSource(99)), 400)
	e, err := NewEngine(ReplayConfig{Shards: 2, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.ReplayEvents(evs); err != nil {
		t.Fatal(err)
	}
	if err := e.Audit(); err != nil {
		t.Fatal(err)
	}
}
