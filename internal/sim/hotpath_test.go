package sim

import (
	"math/rand"
	"testing"

	"repro/internal/hw/translation"
	"repro/internal/mem/addr"
	"repro/internal/osim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// mutStream replays a fixed access list through the legacy Next
// interface, running side-effect hooks before chosen indices — the
// mid-stream page-table mutations the walk cache must observe.
type mutStream struct {
	accs  []workloads.Access
	hooks map[int]func()
	i     int
}

func (s *mutStream) Next() (workloads.Access, bool) {
	if s.i >= len(s.accs) {
		return workloads.Access{}, false
	}
	if h := s.hooks[s.i]; h != nil {
		h()
	}
	a := s.accs[s.i]
	s.i++
	return a, true
}

// TestWalkCacheInvalidation pins the self-invalidation contract: after
// pages are unmapped mid-stream, the memoized walk must miss (the
// generation moved) and the unmapped pages must surface as counted
// demand faults on the retry path — a stale cache would keep serving
// the old translations with Faults = 0. The cached and uncached runs
// must agree on every counter.
func TestWalkCacheInvalidation(t *testing.T) {
	const pages = 512
	unmapped := []uint64{3, 100, 200}
	run := func(noCache bool) Result {
		env := nativeEnv(t, osim.CAPolicy{})
		// 4K mappings so the 512-page sweep exceeds TLB reach and every
		// access exercises the translate path.
		env.Kernel.THPEnabled = false
		v, err := env.MMap(pages * addr.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := env.Populate(v); err != nil {
			t.Fatal(err)
		}
		var accs []workloads.Access
		for sweep := 0; sweep < 2; sweep++ {
			for i := uint64(0); i < pages; i++ {
				accs = append(accs, workloads.Access{VA: v.Start.Add(i * addr.PageSize)})
			}
		}
		hooks := map[int]func(){pages: func() {
			for _, i := range unmapped {
				if _, _, ok := env.Proc.PT.Unmap(v.Start.Add(i * addr.PageSize)); !ok {
					t.Fatal("unmap target not mapped")
				}
			}
		}}
		res, err := Run(env, &mutStream{accs: accs, hooks: hooks}, Config{NoWalkCache: noCache})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cached := run(false)
	if cached.Faults != uint64(len(unmapped)) {
		t.Fatalf("faults = %d, want %d (a stale walk cache would still serve the unmapped pages)",
			cached.Faults, len(unmapped))
	}
	if uncached := run(true); cached != uncached {
		t.Fatalf("cached and uncached results differ:\n%+v\n%+v", cached, uncached)
	}
}

// TestRunZeroAllocs pins the zero-allocation property of the
// steady-state access loop for every translation backend, schemes
// included on the default one: once the machine is warm, step must not
// touch the heap. The tracing layer must preserve it in both disabled
// states — never attached, and attached then detached — so
// instrumentation really is branch-only when off.
func TestRunZeroAllocs(t *testing.T) {
	for _, backend := range translation.Names() {
		for _, tc := range []struct {
			name   string
			detach bool
		}{
			{"nil tracer", false},
			{"attached then detached", true},
		} {
			t.Run(backend+"/"+tc.name, func(t *testing.T) {
				env := virtEnv(t, osim.CAPolicy{}, osim.CAPolicy{})
				w := workloads.NewPageRank()
				if err := w.Setup(env, rand.New(rand.NewSource(1))); err != nil {
					t.Fatal(err)
				}
				accs := benchAccesses(t, w, 1<<14)
				cfg := Config{Backend: backend}
				if backend == translation.BackendPaged {
					cfg.EnableSchemes = true
				}
				m := warmMachine(t, env, cfg, accs)
				defer m.be.Close()
				if tc.detach {
					tr := trace.New()
					env.SetTracer(tr)
					m.setTracer(tr)
					// A full pass: backends with a non-TLB fast path (ds
					// serves in-segment accesses by bare bounds check)
					// only reach instrumented hardware on the tail of
					// accesses outside it.
					for j := range accs {
						if err := m.step(accs[j]); err != nil {
							t.Fatal(err)
						}
					}
					if tr.TotalEvents() == 0 {
						t.Fatal("attached tracer saw nothing; detach case would be vacuous")
					}
					env.SetTracer(nil)
					m.setTracer(nil)
				}
				i := 0
				avg := testing.AllocsPerRun(len(accs), func() {
					if err := m.step(accs[i%len(accs)]); err != nil {
						t.Fatal(err)
					}
					i++
				})
				if avg != 0 {
					t.Fatalf("steady-state step allocates %.2f objects per access, want 0", avg)
				}
			})
		}
	}
}

// nextOnlyStream hides a stream's native Fill, forcing Run through the
// Next-draining compatibility adapter.
type nextOnlyStream struct{ s workloads.Stream }

func (n nextOnlyStream) Next() (workloads.Access, bool) { return n.s.Next() }

// TestBatchedRunMatchesNextOnly runs every workload once through the
// native batched path and once through the legacy Next adapter: the
// two Results must be identical field for field — batching is an
// execution detail, never a semantic one.
func TestBatchedRunMatchesNextOnly(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			run := func(adapter bool) Result {
				env := nativeEnv(t, osim.CAPolicy{})
				if err := w.Setup(env, rand.New(rand.NewSource(1))); err != nil {
					t.Fatal(err)
				}
				var s workloads.Stream = w.Stream(rand.New(rand.NewSource(2)), 30_000)
				if adapter {
					s = nextOnlyStream{s}
				}
				res, err := Run(env, s, Config{EnableSchemes: true})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			if batched, legacy := run(false), run(true); batched != legacy {
				t.Fatalf("batched run diverged from Next-only run:\n%+v\n%+v", batched, legacy)
			}
		})
	}
}
