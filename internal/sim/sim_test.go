package sim

import (
	"math/rand"
	"testing"

	"repro/internal/mem/addr"
	"repro/internal/mem/zone"
	"repro/internal/metrics"
	"repro/internal/osim"
	"repro/internal/virt"
	"repro/internal/workloads"
)

func hostMachine(t testing.TB) *zone.Machine {
	t.Helper()
	return zone.NewMachine(zone.Config{ZonePages: []uint64{
		112 * addr.MaxOrderPages, 112 * addr.MaxOrderPages, // 2 x 448 MiB
	}})
}

func nativeEnv(t testing.TB, policy osim.Placement) *workloads.Env {
	t.Helper()
	k := osim.NewKernel(hostMachine(t), policy)
	return workloads.NewNativeEnv(k, 0)
}

func virtEnv(t testing.TB, guestPolicy, hostPolicy osim.Placement) *workloads.Env {
	t.Helper()
	host := osim.NewKernel(hostMachine(t), hostPolicy)
	vm, err := virt.New(host, virt.Config{
		MemBytes:    768 << 20,
		GuestZones:  []uint64{96 * addr.MaxOrderPages, 96 * addr.MaxOrderPages},
		GuestPolicy: guestPolicy,
	})
	if err != nil {
		t.Fatal(err)
	}
	return workloads.NewVirtEnv(vm, 0)
}

func setupAndRun(t testing.TB, env *workloads.Env, w workloads.Workload, n uint64, cfg Config) Result {
	t.Helper()
	if err := w.Setup(env, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	res, err := Run(env, w.Stream(rand.New(rand.NewSource(2)), n), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNativeRunBasics(t *testing.T) {
	env := nativeEnv(t, osim.CAPolicy{})
	res := setupAndRun(t, env, workloads.NewPageRank(), 100_000, Config{})
	if res.Accesses != 100_000 {
		t.Fatalf("accesses = %d", res.Accesses)
	}
	if res.Misses == 0 {
		t.Fatal("no TLB misses — workload footprint must exceed TLB reach")
	}
	if res.MissRatio() > 0.2 {
		t.Fatalf("miss ratio %.3f implausibly high for THP", res.MissRatio())
	}
	if res.Faults != 0 {
		t.Fatalf("stream faulted %d times; setup should fully populate", res.Faults)
	}
	if res.AvgWalkCycles <= 0 {
		t.Fatal("no walk cost accumulated")
	}
}

func TestVirtWalksCostMoreThanNative(t *testing.T) {
	w := workloads.NewPageRank()
	nat := setupAndRun(t, nativeEnv(t, osim.CAPolicy{}), w, 50_000, Config{})
	vrt := setupAndRun(t, virtEnv(t, osim.CAPolicy{}, osim.CAPolicy{}), workloads.NewPageRank(), 50_000, Config{})
	if vrt.AvgWalkCycles <= nat.AvgWalkCycles {
		t.Fatalf("nested walks (%f) should cost more than native (%f)",
			vrt.AvgWalkCycles, nat.AvgWalkCycles)
	}
}

func Test4KModeMissesMore(t *testing.T) {
	thpEnv := nativeEnv(t, osim.CAPolicy{})
	thp := setupAndRun(t, thpEnv, workloads.NewPageRank(), 50_000, Config{})
	e4k := nativeEnv(t, osim.CAPolicy{})
	e4k.Kernel.THPEnabled = false
	p4k := setupAndRun(t, e4k, workloads.NewPageRank(), 50_000, Config{})
	if p4k.MissRatio() <= thp.MissRatio()*2 {
		t.Fatalf("4K miss ratio %.4f should far exceed THP %.4f", p4k.MissRatio(), thp.MissRatio())
	}
}

func TestSpotWithCAPredictsWell(t *testing.T) {
	env := virtEnv(t, osim.CAPolicy{}, osim.CAPolicy{})
	res := setupAndRun(t, env, workloads.NewPageRank(), 300_000, Config{EnableSchemes: true})
	total := res.SpotCorrect + res.SpotMispredict + res.SpotNoPred
	if total != res.Misses {
		t.Fatalf("SpOT outcomes %d != misses %d", total, res.Misses)
	}
	correct := float64(res.SpotCorrect) / float64(total)
	if correct < 0.9 {
		t.Fatalf("PageRank+CA correct rate = %.3f, want > 0.9 (paper: >99%%)", correct)
	}
	mispred := float64(res.SpotMispredict) / float64(total)
	if mispred > 0.05 {
		t.Fatalf("mispredict rate = %.3f, want < 5%%", mispred)
	}
}

func TestSpotWithoutCARarelyPredicts(t *testing.T) {
	// Default policy sets no contiguity bits, so SpOT's fill filter
	// keeps the table empty: essentially everything is no-prediction.
	env := virtEnv(t, osim.DefaultPolicy{}, osim.DefaultPolicy{})
	res := setupAndRun(t, env, workloads.NewPageRank(), 100_000, Config{EnableSchemes: true})
	if res.SpotCorrect+res.SpotMispredict > res.Misses/100 {
		t.Fatalf("SpOT predicted %d+%d of %d misses without contiguity bits",
			res.SpotCorrect, res.SpotMispredict, res.Misses)
	}
}

func TestHashjoinMispredictsMoreThanPagerank(t *testing.T) {
	// hashjoin's random probes across a multi-mapping footprint are
	// SpOT's worst case (Fig. 14).
	pr := setupAndRun(t, virtEnv(t, osim.CAPolicy{}, osim.CAPolicy{}),
		workloads.NewPageRank(), 200_000, Config{EnableSchemes: true})
	hj := setupAndRun(t, virtEnv(t, osim.CAPolicy{}, osim.CAPolicy{}),
		workloads.NewHashJoin(), 200_000, Config{EnableSchemes: true})
	prRate := float64(pr.SpotMispredict) / float64(pr.Misses)
	hjRate := float64(hj.SpotMispredict) / float64(hj.Misses)
	if hjRate < prRate {
		t.Fatalf("hashjoin mispredict %.4f < pagerank %.4f", hjRate, prRate)
	}
}

func TestRMMCoversWithCA(t *testing.T) {
	env := virtEnv(t, osim.CAPolicy{}, osim.CAPolicy{})
	res := setupAndRun(t, env, workloads.NewPageRank(), 200_000, Config{EnableSchemes: true})
	// With CA the footprint is a handful of ranges: a 32-entry range
	// TLB covers essentially every miss.
	uncovRate := float64(res.RMMUncovered) / float64(res.Misses)
	if uncovRate > 0.01 {
		t.Fatalf("vRMM uncovered rate = %.4f, want ~0", uncovRate)
	}
}

func TestDSCoversPopulatedSpan(t *testing.T) {
	env := virtEnv(t, osim.CAPolicy{}, osim.CAPolicy{})
	res := setupAndRun(t, env, workloads.NewPageRank(), 100_000, Config{EnableSchemes: true})
	if res.DSMisses != 0 {
		t.Fatalf("DS misses = %d, dual direct mode should cover the VMAs", res.DSMisses)
	}
}

func TestDeterministicResults(t *testing.T) {
	run := func() Result {
		env := virtEnv(t, osim.CAPolicy{}, osim.CAPolicy{})
		return setupAndRun(t, env, workloads.NewXSBench(), 50_000, Config{EnableSchemes: true})
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic results:\n%+v\n%+v", a, b)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.TLBEntries != 32 || c.TLBWays != 4 || c.SpotEntries != 32 || c.SpotWays != 4 || c.RangeTLBEntries != 32 {
		t.Fatalf("defaults = %+v", c)
	}
	// Explicit values survive.
	c2 := Config{TLBEntries: 128, TLBWays: 8}.withDefaults()
	if c2.TLBEntries != 128 || c2.TLBWays != 8 {
		t.Fatal("explicit config overridden")
	}
}

func TestShadowPagingScheme(t *testing.T) {
	env := virtEnv(t, osim.CAPolicy{}, osim.CAPolicy{})
	w := workloads.NewPageRank()
	if err := w.Setup(env, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	nested, err := Run(env, w.Stream(rand.New(rand.NewSource(2)), 600_000), Config{})
	if err != nil {
		t.Fatal(err)
	}
	shadowed, err := Run(env, w.Stream(rand.New(rand.NewSource(2)), 600_000), Config{ShadowPaging: true})
	if err != nil {
		t.Fatal(err)
	}
	if shadowed.ShadowSyncs == 0 {
		t.Fatal("no shadow syncs recorded")
	}
	if nested.ShadowSyncs != 0 {
		t.Fatal("nested run recorded shadow syncs")
	}
	// The identical miss stream resolves identically.
	if shadowed.Misses != nested.Misses {
		t.Fatalf("miss streams diverged: %d vs %d", shadowed.Misses, nested.Misses)
	}
	// Steady-state shadow walks cost native latency, so the average
	// walk cost sits between native THP and nested THP once syncs
	// amortise (pagerank: few composite fills, many hits).
	if shadowed.AvgWalkCycles >= nested.AvgWalkCycles {
		t.Fatalf("shadow avg walk %f should beat nested %f for a huge-backed footprint",
			shadowed.AvgWalkCycles, nested.AvgWalkCycles)
	}
}

// TestSegmentForOutOfOrderMappings pins the buildSegment fix: the
// segment offset must come from the lowest-VA mapping, not from
// whichever mapping is listed first, so the segment translates its own
// base correctly.
func TestSegmentForOutOfOrderMappings(t *testing.T) {
	hi := metrics.Mapping{VA: addr.VirtAddr(0x40_0000), PA: addr.PhysAddr(0x9000_0000), Pages: 16}
	lo := metrics.Mapping{VA: addr.VirtAddr(0x10_0000), PA: addr.PhysAddr(0x1000_0000), Pages: 16}
	seg := segmentFor([]metrics.Mapping{hi, lo}) // out of VA order
	pa, ok := seg.Lookup(lo.VA)
	if !ok {
		t.Fatal("segment must cover its own base")
	}
	if pa != lo.PA {
		t.Fatalf("segment base translates to %#x, want %#x (offset taken from the wrong mapping)", uint64(pa), uint64(lo.PA))
	}
	if _, ok := seg.Lookup(hi.VA.Add(15 * addr.PageSize)); !ok {
		t.Fatal("segment must span through the highest mapping")
	}
	if empty := segmentFor(nil); empty == nil {
		t.Fatal("empty mapping set must still build a (zero) segment")
	}
}
