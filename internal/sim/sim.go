// Package sim is the execution engine of the hardware emulation: it
// drives a workload's access stream through the modelled L2 STLB and,
// on every miss, exercises all the translation schemes under study
// simultaneously — the nested/native page walk (baseline), SpOT
// prediction, the vRMM range TLB, and Direct Segments. The schemes do
// not interact, so one pass yields every scheme's counters on an
// identical miss stream, mirroring the paper's BadgerTrap methodology
// of emulating hardware inside the fault path of a real run (§V).
package sim

import (
	"fmt"

	"repro/internal/hw/ds"
	"repro/internal/hw/rmm"
	"repro/internal/hw/spot"
	"repro/internal/hw/tlb"
	"repro/internal/hw/walker"
	"repro/internal/mem/addr"
	"repro/internal/metrics"
	"repro/internal/osim/pagetable"
	"repro/internal/trace"
	"repro/internal/virt"
	"repro/internal/workloads"
)

// Config selects the hardware parameters (defaults = Table II scaled).
type Config struct {
	// TLBEntries/TLBWays describe the last-level TLB. The default is a
	// 32-entry 4-way structure: the paper's 1536-entry STLB scaled
	// roughly with the workload footprints (~1/512), preserving the
	// footprint/TLB-reach ratio that determines miss behaviour.
	TLBEntries, TLBWays int
	// SpotEntries/SpotWays describe the SpOT prediction table
	// (paper evaluation: 32 entries, 4-way).
	SpotEntries, SpotWays int
	// RangeTLBEntries is the vRMM range TLB capacity (paper: 32).
	RangeTLBEntries int
	// EnableSchemes toggles SpOT/vRMM/DS emulation (they need the
	// mapping state of a populated process).
	EnableSchemes bool
	// SpotNoConfidence/SpotNoFilter are the SpOT ablation switches
	// (§IV-C mechanisms turned off individually).
	SpotNoConfidence bool
	SpotNoFilter     bool
	// ShadowPaging replaces the nested-walk baseline with shadow
	// paging for virtualized environments: hits walk the composite
	// table at native cost; shadow misses add a hypervisor exit.
	ShadowPaging bool
	// ShadowExitCycles is the cost of one shadow-sync hypervisor exit
	// (default 1200 cycles, a VM-exit round trip).
	ShadowExitCycles float64
	// NoWalkCache disables the software walk-memoization cache (the
	// simulator's paging-structure-cache analogue). Results are
	// identical either way — the cache self-invalidates on page-table
	// generation changes — so the toggle exists only for regression
	// comparison and microbenchmarks.
	NoWalkCache bool
	// Tracer, when non-nil, receives per-batch spans, walk spans, TLB
	// miss/evict events, and SpOT predict/mispredict events from the
	// run. Nil keeps the access loop branch-only (zero allocations).
	// Note the walk cache memoizes walk *costs* too: a hot walk-cache
	// probe emits no walk span, so walk spans undercount misses unless
	// NoWalkCache is set.
	Tracer *trace.Tracer
}

// Defaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.TLBEntries == 0 {
		c.TLBEntries = 32
	}
	if c.TLBWays == 0 {
		c.TLBWays = 4
	}
	if c.SpotEntries == 0 {
		c.SpotEntries = 32
	}
	if c.SpotWays == 0 {
		c.SpotWays = 4
	}
	if c.RangeTLBEntries == 0 {
		c.RangeTLBEntries = 32
	}
	if c.ShadowExitCycles == 0 {
		c.ShadowExitCycles = 1200
	}
	return c
}

// Result aggregates one run's counters.
type Result struct {
	Accesses uint64
	Misses   uint64

	// WalkCycles is the total baseline page-walk cost (native or
	// nested, by environment) of all misses.
	WalkCycles float64
	// AvgWalkCycles is WalkCycles/Misses.
	AvgWalkCycles float64

	// SpOT outcome counts (Fig. 14).
	SpotCorrect, SpotMispredict, SpotNoPred uint64

	// RMMUncovered counts misses served by no range (pay a full walk);
	// RMMHits+RMMFills are background-hidden in the paper's model.
	RMMUncovered uint64
	RMMHits      uint64

	// DSMisses counts misses outside the direct segment.
	DSMisses uint64

	// Faults counts stream accesses that had to demand-fault (streams
	// normally run fully populated; nonzero indicates setup gaps).
	Faults uint64

	// ShadowSyncs counts shadow-paging synchronisation exits (only with
	// Config.ShadowPaging).
	ShadowSyncs uint64
}

// MissRatio returns Misses/Accesses.
func (r Result) MissRatio() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.Misses) / float64(r.Accesses)
}

// accessBatch is the refill size of the reusable access buffer Run
// drains streams through: large enough to amortize the interface
// dispatch of Fill, small enough to stay cache-resident (24 KiB).
const accessBatch = 1024

// machine bundles the hardware state of one simulation run. Its step
// method is the steady-state per-access hot loop and performs zero
// heap allocations (pinned by TestRunZeroAllocs and the
// BenchmarkRun* allocation reports); everything that allocates
// happens in newMachine or on the rare fault/error paths.
type machine struct {
	env    *workloads.Env
	cfg    Config
	tlb    *tlb.TLB
	wc     *walkCache
	shadow *virt.ShadowTable
	sp     *spot.Table
	rt     *rmm.RangeTLB
	rtab   *rmm.Table
	seg    *ds.Segment
	res    Result
	tr     *trace.Tracer
	wm     walker.Meter
}

// newMachine builds the per-run hardware state.
func newMachine(env *workloads.Env, cfg Config) *machine {
	m := &machine{env: env, cfg: cfg, tlb: tlb.New(cfg.TLBEntries, cfg.TLBWays)}
	m.setTracer(cfg.Tracer)
	if !cfg.NoWalkCache {
		if env.VM != nil {
			m.wc = newWalkCache(env.VM.NestedTables(env.Proc))
		} else {
			m.wc = newWalkCache(env.Proc.PT, nil)
		}
	}
	if cfg.ShadowPaging && env.VM != nil {
		m.shadow = env.VM.NewShadow(env.Proc)
	}
	if cfg.EnableSchemes {
		m.sp = spot.New(cfg.SpotEntries, cfg.SpotWays)
		m.sp.DisableConfidence = cfg.SpotNoConfidence
		m.sp.IgnoreFilter = cfg.SpotNoFilter
		m.rt = rmm.NewRangeTLB(cfg.RangeTLBEntries)
		m.rtab = rmm.NewTable(extractMappings(env))
		m.seg = buildSegment(env)
	}
	return m
}

// setTracer attaches (or, with nil, detaches) the tracer from every
// hardware component of this machine. The attached-then-detached case
// of TestRunZeroAllocs drives this to prove detaching restores the
// branch-only hot path.
func (m *machine) setTracer(t *trace.Tracer) {
	m.tr = t
	m.wm.T = t
	m.tlb.SetTracer(t)
}

// Run drives n accesses of the workload stream through the machinery.
// The environment must already be set up (populated) by the workload.
func Run(env *workloads.Env, stream workloads.Stream, cfg Config) (Result, error) {
	m := newMachine(env, cfg.withDefaults())
	bs := workloads.Batched(stream)
	buf := make([]workloads.Access, accessBatch)
	for {
		n := bs.Fill(buf)
		if n == 0 {
			break
		}
		start := m.tr.Start()
		for i := range buf[:n] {
			if err := m.step(buf[i]); err != nil {
				return m.res, err
			}
		}
		if m.tr != nil {
			m.tr.EmitSpan(trace.EvSimBatch, start, uint64(n), m.res.Misses, m.res.Faults)
			env.TraceSample()
		}
	}
	return m.finish(), nil
}

// finish derives the aggregate fields and returns the counters.
func (m *machine) finish() Result {
	if m.res.Misses > 0 {
		m.res.AvgWalkCycles = m.res.WalkCycles / float64(m.res.Misses)
	}
	return m.res
}

// step processes one access: TLB probe, and on a miss the baseline
// walk (memoized), the optional shadow walk, the demand-fault retry,
// and the per-scheme emulation.
func (m *machine) step(a workloads.Access) error {
	m.res.Accesses++
	if m.tlb.Lookup(a.VA) {
		return nil
	}
	m.res.Misses++

	hpa, leafHuge, cost, gContig, hContig, ok := m.translate(a.VA)
	if m.shadow != nil {
		if shpa, lvl, synced, sok := m.shadow.Walk(a.VA); sok {
			hpa, ok = shpa, true
			leafHuge = lvl == pagetable.HugeLevel
			cost = walker.NativeCost(lvl)
			if synced {
				cost += m.cfg.ShadowExitCycles
				m.res.ShadowSyncs++
			}
		}
	}
	if !ok {
		// The stream touched something unpopulated: fault it in and
		// retry (counted; should be rare).
		m.res.Faults++
		if err := m.env.Touch(a.VA, a.Write); err != nil {
			return fmt.Errorf("sim: fault at %v: %w", a.VA, err)
		}
		hpa, leafHuge, cost, gContig, hContig, ok = m.translate(a.VA)
		if !ok {
			return fmt.Errorf("sim: unresolvable access at %v", a.VA)
		}
		// Under shadow paging the faulted access still goes through the
		// shadow table: the guest's new mapping forces a shadow sync
		// exit, not a plain nested/native walk.
		if m.shadow != nil {
			if shpa, lvl, synced, sok := m.shadow.Walk(a.VA); sok {
				hpa = shpa
				leafHuge = lvl == pagetable.HugeLevel
				cost = walker.NativeCost(lvl)
				if synced {
					cost += m.cfg.ShadowExitCycles
					m.res.ShadowSyncs++
				}
			}
		}
	}
	m.res.WalkCycles += cost
	m.tlb.Insert(a.VA, leafHuge)

	if !m.cfg.EnableSchemes {
		return nil
	}
	// SpOT: predict before the walk, verify after.
	pred, did := m.sp.Predict(a.PC, a.VA)
	switch m.sp.Verify(a.PC, a.VA, hpa, pred, did, gContig && hContig) {
	case spot.Correct:
		m.res.SpotCorrect++
		if m.tr != nil {
			m.tr.Emit(trace.EvSpotPredict, a.PC, uint64(a.VA), 0)
		}
	case spot.Mispredict:
		m.res.SpotMispredict++
		if m.tr != nil {
			m.tr.Emit(trace.EvSpotMispredict, a.PC, uint64(a.VA), 0)
		}
	default:
		m.res.SpotNoPred++
	}
	// vRMM.
	if _, covered := m.rt.Lookup(a.VA, m.rtab); covered {
		m.res.RMMHits++
	} else {
		m.res.RMMUncovered++
	}
	// Direct Segments dual direct mode.
	if _, hit := m.seg.Lookup(a.VA); !hit {
		m.res.DSMisses++
	}
	return nil
}

// translate performs the baseline walk for va through the walk cache:
// a hot miss is one array probe; only cold or invalidated VPNs pay the
// full trie descent of resolve.
func (m *machine) translate(va addr.VirtAddr) (hpa addr.PhysAddr, leafHuge bool, cost float64, gContig, hContig, ok bool) {
	if m.wc == nil {
		return m.resolve(va)
	}
	vpn := uint64(va) >> addr.PageShift
	if e, hit := m.wc.probe(vpn); hit {
		return e.hpa + addr.PhysAddr(uint64(va)&addr.PageMask), e.leafHuge, e.cost, e.gContig, e.hContig, true
	}
	hpa, leafHuge, cost, gContig, hContig, ok = m.resolve(va)
	if ok {
		// The in-page offset of hpa equals va's: caching the page-base
		// hPA makes the entry valid for every offset within the VPN.
		m.wc.fill(vpn, hpa-addr.PhysAddr(uint64(va)&addr.PageMask), leafHuge, cost, gContig, hContig)
	}
	return hpa, leafHuge, cost, gContig, hContig, ok
}

// resolve performs the baseline translation for va: a nested walk in a
// VM, a native walk otherwise. It returns the final physical address,
// whether the effective TLB entry is huge (both dimensions huge in a
// VM), the walk cost in cycles, and the contiguity bits (the native
// case reports the single PTE bit in both positions). Costs route
// through the walk meter so every priced walk becomes a trace span.
func (m *machine) resolve(va addr.VirtAddr) (hpa addr.PhysAddr, leafHuge bool, cost float64, gContig, hContig, ok bool) {
	env := m.env
	if env.VM != nil {
		w := env.VM.Walk(env.Proc, va)
		if !w.OK {
			return 0, false, 0, false, false, false
		}
		huge := w.GuestLevel == pagetable.HugeLevel && w.HostLevel == pagetable.HugeLevel
		return w.HPA, huge, m.wm.Nested(va, w), w.GuestContig, w.HostContig, true
	}
	pte, level, _, okWalk := env.Proc.PT.Walk(va)
	if !okWalk {
		return 0, false, 0, false, false, false
	}
	span := uint64(addr.PageSize)
	if level == pagetable.HugeLevel {
		span = addr.HugeSize
	}
	pa := pte.PFN.Addr() + addr.PhysAddr(uint64(va)&(span-1))
	contig := pte.Flags.Has(pagetable.Contig)
	return pa, level == pagetable.HugeLevel, m.wm.Native(va, level), contig, contig, true
}

// extractMappings pulls the current contiguous mappings of the
// environment's process: full 2D mappings in a VM, native mappings
// otherwise. These feed the vRMM range table and the DS segment.
func extractMappings(env *workloads.Env) []metrics.Mapping {
	if env.VM != nil {
		return env.VM.Mappings2D(env.Proc)
	}
	return metrics.FromPageTable(env.Proc.PT)
}

// buildSegment models Direct Segments' dual direct mode: one segment
// sized to cover the process's populated span. DS pre-reserves its
// memory at boot, so the emulated segment covers the whole virtual
// extent with the offset of its first mapping — accesses whose actual
// translation differs would, on real DS hardware, have been *placed*
// at the segment target; for overhead accounting only in/out of the
// segment range matters.
func buildSegment(env *workloads.Env) *ds.Segment {
	return segmentFor(extractMappings(env))
}

// segmentFor sizes the segment over the mappings' full virtual extent.
// The segment's offset must belong to the lowest-VA mapping — the one
// whose start defines the segment base — not to whichever mapping
// happens to be listed first, or base and offset would describe
// different extents.
func segmentFor(ms []metrics.Mapping) *ds.Segment {
	if len(ms) == 0 {
		return ds.NewSegment(0, 0, 0)
	}
	lo, hi, off := ms[0].VA, ms[0].End(), ms[0].Offset()
	for _, m := range ms[1:] {
		if m.VA < lo {
			lo, off = m.VA, m.Offset()
		}
		if m.End() > hi {
			hi = m.End()
		}
	}
	return ds.NewSegment(lo, uint64(hi-lo), off)
}
