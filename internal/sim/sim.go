// Package sim is the execution engine of the hardware emulation: it
// drives a workload's access stream through a pluggable translation
// backend (default: the modelled L2 STLB over the nested/native page
// walk) and, on every miss, exercises all the translation schemes
// under study simultaneously — SpOT prediction, the vRMM range TLB,
// and Direct Segments. The schemes do not interact, so one pass yields
// every scheme's counters on an identical miss stream, mirroring the
// paper's BadgerTrap methodology of emulating hardware inside the
// fault path of a real run (§V). The alternate backends (hashed, rmm,
// ds; see internal/hw/translation) replace the baseline walk itself,
// turning the loop into a Virtuoso-style backend matrix.
package sim

import (
	"fmt"

	"repro/internal/hw/ds"
	"repro/internal/hw/rmm"
	"repro/internal/hw/spot"
	"repro/internal/hw/translation"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Config selects the hardware parameters (defaults = Table II scaled).
type Config struct {
	// Backend selects the translation backend (translation.Names():
	// "paged", "hashed", "rmm", "ds"). Empty selects the default paged
	// backend — the TLB + walker stack every paper experiment uses.
	Backend string
	// TLBEntries/TLBWays describe the last-level TLB. The default is a
	// 32-entry 4-way structure: the paper's 1536-entry STLB scaled
	// roughly with the workload footprints (~1/512), preserving the
	// footprint/TLB-reach ratio that determines miss behaviour.
	TLBEntries, TLBWays int
	// SpotEntries/SpotWays describe the SpOT prediction table
	// (paper evaluation: 32 entries, 4-way).
	SpotEntries, SpotWays int
	// RangeTLBEntries is the vRMM range TLB capacity (paper: 32).
	RangeTLBEntries int
	// EnableSchemes toggles SpOT/vRMM/DS emulation (they need the
	// mapping state of a populated process). Schemes emulate against
	// the baseline walk, so they require the default paged backend.
	EnableSchemes bool
	// SpotNoConfidence/SpotNoFilter are the SpOT ablation switches
	// (§IV-C mechanisms turned off individually).
	SpotNoConfidence bool
	SpotNoFilter     bool
	// ShadowPaging replaces the nested-walk baseline with shadow
	// paging for virtualized environments: hits walk the composite
	// table at native cost; shadow misses add a hypervisor exit.
	// Paged backend only.
	ShadowPaging bool
	// ShadowExitCycles is the cost of one shadow-sync hypervisor exit
	// (default 1200 cycles, a VM-exit round trip).
	ShadowExitCycles float64
	// NoWalkCache disables the software walk-memoization cache (the
	// simulator's paging-structure-cache analogue). Results are
	// identical either way — the cache self-invalidates on page-table
	// generation changes — so the toggle exists only for regression
	// comparison and microbenchmarks.
	NoWalkCache bool
	// Tracer, when non-nil, receives per-batch spans, walk spans, TLB
	// miss/evict events, and SpOT predict/mispredict events from the
	// run. Nil keeps the access loop branch-only (zero allocations).
	// Note the walk cache memoizes walk *costs* too: a hot walk-cache
	// probe emits no walk span, so walk spans undercount misses unless
	// NoWalkCache is set.
	Tracer *trace.Tracer
}

// Defaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.TLBEntries == 0 {
		c.TLBEntries = 32
	}
	if c.TLBWays == 0 {
		c.TLBWays = 4
	}
	if c.SpotEntries == 0 {
		c.SpotEntries = 32
	}
	if c.SpotWays == 0 {
		c.SpotWays = 4
	}
	if c.RangeTLBEntries == 0 {
		c.RangeTLBEntries = 32
	}
	if c.ShadowExitCycles == 0 {
		c.ShadowExitCycles = 1200
	}
	return c
}

// Result aggregates one run's counters.
type Result struct {
	Accesses uint64
	Misses   uint64

	// WalkCycles is the total translation cost the backend charged for
	// all misses (the baseline page-walk cost under the default paged
	// backend).
	WalkCycles float64
	// AvgWalkCycles is WalkCycles/Misses.
	AvgWalkCycles float64

	// SpOT outcome counts (Fig. 14).
	SpotCorrect, SpotMispredict, SpotNoPred uint64

	// RMMUncovered counts misses served by no range (pay a full walk);
	// RMMHits+RMMFills are background-hidden in the paper's model.
	RMMUncovered uint64
	RMMHits      uint64

	// DSMisses counts misses outside the direct segment.
	DSMisses uint64

	// Faults counts stream accesses that had to demand-fault (streams
	// normally run fully populated; nonzero indicates setup gaps).
	Faults uint64

	// ShadowSyncs counts shadow-paging synchronisation exits (only with
	// Config.ShadowPaging).
	ShadowSyncs uint64
}

// MissRatio returns Misses/Accesses.
func (r Result) MissRatio() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.Misses) / float64(r.Accesses)
}

// accessBatch is the refill size of the reusable access buffer Run
// drains streams through: large enough to amortize the interface
// dispatch of Fill, small enough to stay cache-resident (24 KiB).
const accessBatch = 1024

// machine bundles the hardware state of one simulation run. Its step
// method is the steady-state per-access hot loop and performs zero
// heap allocations (pinned by TestRunZeroAllocs across every backend
// and the BenchmarkRun* allocation reports); everything that allocates
// happens in newMachine or on the rare fault/error paths.
type machine struct {
	env  *workloads.Env
	cfg  Config
	be   translation.Backend
	sp   *spot.Table
	rt   *rmm.RangeTLB
	rtab *rmm.Table
	seg  *ds.Segment
	res  Result
	tr   *trace.Tracer
}

// newMachine builds the per-run hardware state.
func newMachine(env *workloads.Env, cfg Config) (*machine, error) {
	if cfg.Backend != "" && cfg.Backend != translation.BackendPaged {
		// The schemes emulate against the baseline walk and shadow
		// paging replaces it; both are properties of the paged stack.
		if cfg.EnableSchemes {
			return nil, fmt.Errorf("sim: EnableSchemes requires the paged backend, not %q", cfg.Backend)
		}
		if cfg.ShadowPaging {
			return nil, fmt.Errorf("sim: ShadowPaging requires the paged backend, not %q", cfg.Backend)
		}
	}
	be, err := translation.New(cfg.Backend, env, translation.Config{
		TLBEntries:       cfg.TLBEntries,
		TLBWays:          cfg.TLBWays,
		RangeTLBEntries:  cfg.RangeTLBEntries,
		NoWalkCache:      cfg.NoWalkCache,
		ShadowPaging:     cfg.ShadowPaging,
		ShadowExitCycles: cfg.ShadowExitCycles,
	})
	if err != nil {
		return nil, err
	}
	m := &machine{env: env, cfg: cfg, be: be}
	m.setTracer(cfg.Tracer)
	if cfg.EnableSchemes {
		m.sp = spot.New(cfg.SpotEntries, cfg.SpotWays)
		m.sp.DisableConfidence = cfg.SpotNoConfidence
		m.sp.IgnoreFilter = cfg.SpotNoFilter
		m.rt = rmm.NewRangeTLB(cfg.RangeTLBEntries)
		m.rtab = rmm.NewTable(extractMappings(env))
		m.seg = buildSegment(env)
	}
	return m, nil
}

// setTracer attaches (or, with nil, detaches) the tracer from every
// hardware component of this machine. The attached-then-detached case
// of TestRunZeroAllocs drives this to prove detaching restores the
// branch-only hot path.
func (m *machine) setTracer(t *trace.Tracer) {
	m.tr = t
	m.be.SetTracer(t)
}

// Run drives n accesses of the workload stream through the machinery.
// The environment must already be set up (populated) by the workload.
func Run(env *workloads.Env, stream workloads.Stream, cfg Config) (Result, error) {
	m, err := newMachine(env, cfg.withDefaults())
	if err != nil {
		return Result{}, err
	}
	defer m.be.Close()
	bs := workloads.Batched(stream)
	buf := make([]workloads.Access, accessBatch)
	for {
		n := bs.Fill(buf)
		if n == 0 {
			break
		}
		start := m.tr.Start()
		for i := range buf[:n] {
			if err := m.step(buf[i]); err != nil {
				return m.res, err
			}
		}
		if m.tr != nil {
			m.tr.EmitSpan(trace.EvSimBatch, start, uint64(n), m.res.Misses, m.res.Faults)
			env.TraceSample()
		}
	}
	return m.finish(), nil
}

// finish derives the aggregate fields and returns the counters.
func (m *machine) finish() Result {
	if m.res.Misses > 0 {
		m.res.AvgWalkCycles = m.res.WalkCycles / float64(m.res.Misses)
	}
	return m.res
}

// step processes one access: backend fast-path probe, and on a miss
// the backend translation, the demand-fault retry, and the per-scheme
// emulation.
func (m *machine) step(a workloads.Access) error {
	m.res.Accesses++
	if m.be.Lookup(a.VA) {
		return nil
	}
	m.res.Misses++

	w := m.be.Translate(a.VA)
	if w.ShadowSynced {
		m.res.ShadowSyncs++
	}
	if !w.OK {
		// The stream touched something unpopulated: fault it in and
		// retry (counted; should be rare).
		m.res.Faults++
		if err := m.env.Touch(a.VA, a.Write); err != nil {
			return fmt.Errorf("sim: fault at %v: %w", a.VA, err)
		}
		w = m.be.Translate(a.VA)
		if w.ShadowSynced {
			m.res.ShadowSyncs++
		}
		if !w.OK {
			return fmt.Errorf("sim: unresolvable access at %v", a.VA)
		}
	}
	m.res.WalkCycles += w.Cost
	m.be.Insert(a.VA, w)

	if !m.cfg.EnableSchemes {
		return nil
	}
	// SpOT: predict before the walk, verify after.
	pred, did := m.sp.Predict(a.PC, a.VA)
	switch m.sp.Verify(a.PC, a.VA, w.HPA, pred, did, w.GContig && w.HContig) {
	case spot.Correct:
		m.res.SpotCorrect++
		if m.tr != nil {
			m.tr.Emit(trace.EvSpotPredict, a.PC, uint64(a.VA), 0)
		}
	case spot.Mispredict:
		m.res.SpotMispredict++
		if m.tr != nil {
			m.tr.Emit(trace.EvSpotMispredict, a.PC, uint64(a.VA), 0)
		}
	default:
		m.res.SpotNoPred++
	}
	// vRMM.
	if _, covered := m.rt.Lookup(a.VA, m.rtab); covered {
		m.res.RMMHits++
	} else {
		m.res.RMMUncovered++
	}
	// Direct Segments dual direct mode.
	if _, hit := m.seg.Lookup(a.VA); !hit {
		m.res.DSMisses++
	}
	return nil
}

// extractMappings pulls the current contiguous mappings of the
// environment's process: full 2D mappings in a VM, native mappings
// otherwise. These feed the vRMM range table and the DS segment.
func extractMappings(env *workloads.Env) []metrics.Mapping {
	return translation.ExtractMappings(env)
}

// buildSegment models Direct Segments' dual direct mode: one segment
// sized to cover the process's populated span. DS pre-reserves its
// memory at boot, so the emulated segment covers the whole virtual
// extent with the offset of its first mapping — accesses whose actual
// translation differs would, on real DS hardware, have been *placed*
// at the segment target; for overhead accounting only in/out of the
// segment range matters. (The ds *backend* instead sizes its segment
// to the largest real contiguous mapping, because it must return
// exact physical addresses; see translation.BackendDS.)
func buildSegment(env *workloads.Env) *ds.Segment {
	return segmentFor(extractMappings(env))
}

// segmentFor sizes the segment over the mappings' full virtual extent.
// The segment's offset must belong to the lowest-VA mapping — the one
// whose start defines the segment base — not to whichever mapping
// happens to be listed first, or base and offset would describe
// different extents.
func segmentFor(ms []metrics.Mapping) *ds.Segment {
	if len(ms) == 0 {
		return ds.NewSegment(0, 0, 0)
	}
	lo, hi, off := ms[0].VA, ms[0].End(), ms[0].Offset()
	for _, m := range ms[1:] {
		if m.VA < lo {
			lo, off = m.VA, m.Offset()
		}
		if m.End() > hi {
			hi = m.End()
		}
	}
	return ds.NewSegment(lo, uint64(hi-lo), off)
}
