// Package sim is the execution engine of the hardware emulation: it
// drives a workload's access stream through the modelled L2 STLB and,
// on every miss, exercises all the translation schemes under study
// simultaneously — the nested/native page walk (baseline), SpOT
// prediction, the vRMM range TLB, and Direct Segments. The schemes do
// not interact, so one pass yields every scheme's counters on an
// identical miss stream, mirroring the paper's BadgerTrap methodology
// of emulating hardware inside the fault path of a real run (§V).
package sim

import (
	"fmt"

	"repro/internal/hw/ds"
	"repro/internal/hw/rmm"
	"repro/internal/hw/spot"
	"repro/internal/hw/tlb"
	"repro/internal/hw/walker"
	"repro/internal/mem/addr"
	"repro/internal/metrics"
	"repro/internal/osim/pagetable"
	"repro/internal/virt"
	"repro/internal/workloads"
)

// Config selects the hardware parameters (defaults = Table II scaled).
type Config struct {
	// TLBEntries/TLBWays describe the last-level TLB. The default is a
	// 32-entry 4-way structure: the paper's 1536-entry STLB scaled
	// roughly with the workload footprints (~1/512), preserving the
	// footprint/TLB-reach ratio that determines miss behaviour.
	TLBEntries, TLBWays int
	// SpotEntries/SpotWays describe the SpOT prediction table
	// (paper evaluation: 32 entries, 4-way).
	SpotEntries, SpotWays int
	// RangeTLBEntries is the vRMM range TLB capacity (paper: 32).
	RangeTLBEntries int
	// EnableSchemes toggles SpOT/vRMM/DS emulation (they need the
	// mapping state of a populated process).
	EnableSchemes bool
	// SpotNoConfidence/SpotNoFilter are the SpOT ablation switches
	// (§IV-C mechanisms turned off individually).
	SpotNoConfidence bool
	SpotNoFilter     bool
	// ShadowPaging replaces the nested-walk baseline with shadow
	// paging for virtualized environments: hits walk the composite
	// table at native cost; shadow misses add a hypervisor exit.
	ShadowPaging bool
	// ShadowExitCycles is the cost of one shadow-sync hypervisor exit
	// (default 1200 cycles, a VM-exit round trip).
	ShadowExitCycles float64
}

// Defaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.TLBEntries == 0 {
		c.TLBEntries = 32
	}
	if c.TLBWays == 0 {
		c.TLBWays = 4
	}
	if c.SpotEntries == 0 {
		c.SpotEntries = 32
	}
	if c.SpotWays == 0 {
		c.SpotWays = 4
	}
	if c.RangeTLBEntries == 0 {
		c.RangeTLBEntries = 32
	}
	if c.ShadowExitCycles == 0 {
		c.ShadowExitCycles = 1200
	}
	return c
}

// Result aggregates one run's counters.
type Result struct {
	Accesses uint64
	Misses   uint64

	// WalkCycles is the total baseline page-walk cost (native or
	// nested, by environment) of all misses.
	WalkCycles float64
	// AvgWalkCycles is WalkCycles/Misses.
	AvgWalkCycles float64

	// SpOT outcome counts (Fig. 14).
	SpotCorrect, SpotMispredict, SpotNoPred uint64

	// RMMUncovered counts misses served by no range (pay a full walk);
	// RMMHits+RMMFills are background-hidden in the paper's model.
	RMMUncovered uint64
	RMMHits      uint64

	// DSMisses counts misses outside the direct segment.
	DSMisses uint64

	// Faults counts stream accesses that had to demand-fault (streams
	// normally run fully populated; nonzero indicates setup gaps).
	Faults uint64

	// ShadowSyncs counts shadow-paging synchronisation exits (only with
	// Config.ShadowPaging).
	ShadowSyncs uint64
}

// MissRatio returns Misses/Accesses.
func (r Result) MissRatio() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.Misses) / float64(r.Accesses)
}

// Run drives n accesses of the workload stream through the machinery.
// The environment must already be set up (populated) by the workload.
func Run(env *workloads.Env, stream workloads.Stream, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	t := tlb.New(cfg.TLBEntries, cfg.TLBWays)
	var res Result

	var shadow *virt.ShadowTable
	if cfg.ShadowPaging && env.VM != nil {
		shadow = env.VM.NewShadow(env.Proc)
	}

	var sp *spot.Table
	var rt *rmm.RangeTLB
	var rtab *rmm.Table
	var seg *ds.Segment
	if cfg.EnableSchemes {
		sp = spot.New(cfg.SpotEntries, cfg.SpotWays)
		sp.DisableConfidence = cfg.SpotNoConfidence
		sp.IgnoreFilter = cfg.SpotNoFilter
		rt = rmm.NewRangeTLB(cfg.RangeTLBEntries)
		rtab = rmm.NewTable(extractMappings(env))
		seg = buildSegment(env)
	}

	for {
		a, ok := stream.Next()
		if !ok {
			break
		}
		res.Accesses++
		if t.Lookup(a.VA) {
			continue
		}
		res.Misses++

		hpa, leafHuge, cost, gContig, hContig, ok := resolve(env, a.VA)
		if shadow != nil {
			if shpa, lvl, synced, sok := shadow.Walk(a.VA); sok {
				hpa, ok = shpa, true
				leafHuge = lvl == pagetable.HugeLevel
				cost = walker.NativeCost(lvl)
				if synced {
					cost += cfg.ShadowExitCycles
					res.ShadowSyncs++
				}
			}
		}
		if !ok {
			// The stream touched something unpopulated: fault it in and
			// retry (counted; should be rare).
			res.Faults++
			if err := env.Touch(a.VA, a.Write); err != nil {
				return res, fmt.Errorf("sim: fault at %v: %w", a.VA, err)
			}
			hpa, leafHuge, cost, gContig, hContig, ok = resolve(env, a.VA)
			if !ok {
				return res, fmt.Errorf("sim: unresolvable access at %v", a.VA)
			}
		}
		res.WalkCycles += cost
		t.Insert(a.VA, leafHuge)

		if !cfg.EnableSchemes {
			continue
		}
		// SpOT: predict before the walk, verify after.
		pred, did := sp.Predict(a.PC, a.VA)
		switch sp.Verify(a.PC, a.VA, hpa, pred, did, gContig && hContig) {
		case spot.Correct:
			res.SpotCorrect++
		case spot.Mispredict:
			res.SpotMispredict++
		default:
			res.SpotNoPred++
		}
		// vRMM.
		if _, covered := rt.Lookup(a.VA, rtab); covered {
			res.RMMHits++
		} else {
			res.RMMUncovered++
		}
		// Direct Segments dual direct mode.
		if _, hit := seg.Lookup(a.VA); !hit {
			res.DSMisses++
		}
	}
	if res.Misses > 0 {
		res.AvgWalkCycles = res.WalkCycles / float64(res.Misses)
	}
	return res, nil
}

// resolve performs the baseline translation for va: a nested walk in a
// VM, a native walk otherwise. It returns the final physical address,
// whether the effective TLB entry is huge (both dimensions huge in a
// VM), the walk cost in cycles, and the contiguity bits (the native
// case reports the single PTE bit in both positions).
func resolve(env *workloads.Env, va addr.VirtAddr) (hpa addr.PhysAddr, leafHuge bool, cost float64, gContig, hContig, ok bool) {
	if env.VM != nil {
		w := env.VM.Walk(env.Proc, va)
		if !w.OK {
			return 0, false, 0, false, false, false
		}
		huge := w.GuestLevel == pagetable.HugeLevel && w.HostLevel == pagetable.HugeLevel
		return w.HPA, huge, walker.NestedCost(w), w.GuestContig, w.HostContig, true
	}
	pte, level, _, okWalk := env.Proc.PT.Walk(va)
	if !okWalk {
		return 0, false, 0, false, false, false
	}
	span := uint64(addr.PageSize)
	if level == pagetable.HugeLevel {
		span = addr.HugeSize
	}
	pa := pte.PFN.Addr() + addr.PhysAddr(uint64(va)&(span-1))
	contig := pte.Flags.Has(pagetable.Contig)
	return pa, level == pagetable.HugeLevel, walker.NativeCost(level), contig, contig, true
}

// extractMappings pulls the current contiguous mappings of the
// environment's process: full 2D mappings in a VM, native mappings
// otherwise. These feed the vRMM range table and the DS segment.
func extractMappings(env *workloads.Env) []metrics.Mapping {
	if env.VM != nil {
		return env.VM.Mappings2D(env.Proc)
	}
	return metrics.FromPageTable(env.Proc.PT)
}

// buildSegment models Direct Segments' dual direct mode: one segment
// sized to cover the process's populated span. DS pre-reserves its
// memory at boot, so the emulated segment covers the whole virtual
// extent with the offset of its first mapping — accesses whose actual
// translation differs would, on real DS hardware, have been *placed*
// at the segment target; for overhead accounting only in/out of the
// segment range matters.
func buildSegment(env *workloads.Env) *ds.Segment {
	return segmentFor(extractMappings(env))
}

// segmentFor sizes the segment over the mappings' full virtual extent.
// The segment's offset must belong to the lowest-VA mapping — the one
// whose start defines the segment base — not to whichever mapping
// happens to be listed first, or base and offset would describe
// different extents.
func segmentFor(ms []metrics.Mapping) *ds.Segment {
	if len(ms) == 0 {
		return ds.NewSegment(0, 0, 0)
	}
	lo, hi, off := ms[0].VA, ms[0].End(), ms[0].Offset()
	for _, m := range ms[1:] {
		if m.VA < lo {
			lo, off = m.VA, m.Offset()
		}
		if m.End() > hi {
			hi = m.End()
		}
	}
	return ds.NewSegment(lo, uint64(hi-lo), off)
}
