package sim

import (
	"math/rand"
	"testing"

	"repro/internal/hw/tlb"
	"repro/internal/mem/addr"
	"repro/internal/osim"
	"repro/internal/workloads"
)

// benchAccesses pre-generates n stream accesses so the benchmark loops
// measure the simulator, not stream generation. The workload must
// already be set up on env.
func benchAccesses(b testing.TB, w workloads.Workload, n uint64) []workloads.Access {
	b.Helper()
	s := workloads.Batched(w.Stream(rand.New(rand.NewSource(2)), n))
	buf := make([]workloads.Access, n)
	total := 0
	for total < len(buf) {
		k := s.Fill(buf[total:])
		if k == 0 {
			break
		}
		total += k
	}
	return buf[:total]
}

// warmMachine builds a machine and runs every access through it once,
// resolving demand faults and filling the TLB, walk cache, and scheme
// state outside the benchmark timer.
func warmMachine(b testing.TB, env *workloads.Env, cfg Config, accs []workloads.Access) *machine {
	b.Helper()
	m, err := newMachine(env, cfg.withDefaults())
	if err != nil {
		b.Fatal(err)
	}
	for _, a := range accs {
		if err := m.step(a); err != nil {
			b.Fatal(err)
		}
	}
	return m
}

// BenchmarkRunNative measures the steady-state per-access cost of the
// native hot loop (TLB probe + memoized walk + scheme emulation). It
// must report 0 allocs/op.
func BenchmarkRunNative(b *testing.B) {
	env := nativeEnv(b, osim.CAPolicy{})
	w := workloads.NewPageRank()
	if err := w.Setup(env, rand.New(rand.NewSource(1))); err != nil {
		b.Fatal(err)
	}
	accs := benchAccesses(b, w, 1<<16)
	m := warmMachine(b, env, Config{EnableSchemes: true}, accs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.step(accs[i%len(accs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunNested is BenchmarkRunNative for the virtualized (2D
// nested walk) path. It must report 0 allocs/op.
func BenchmarkRunNested(b *testing.B) {
	env := virtEnv(b, osim.CAPolicy{}, osim.CAPolicy{})
	w := workloads.NewPageRank()
	if err := w.Setup(env, rand.New(rand.NewSource(1))); err != nil {
		b.Fatal(err)
	}
	accs := benchAccesses(b, w, 1<<16)
	m := warmMachine(b, env, Config{EnableSchemes: true}, accs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.step(accs[i%len(accs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTLBLookup isolates the set-associative probe (the
// first-touch cost of every simulated access).
func BenchmarkTLBLookup(b *testing.B) {
	t := tlb.New(32, 4)
	vas := make([]addr.VirtAddr, 256)
	for i := range vas {
		vas[i] = addr.VirtAddr(uint64(i) * addr.PageSize)
		t.Insert(vas[i], false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Lookup(vas[i%len(vas)])
	}
}

// BenchmarkWalkCached isolates a warm walk-cache hit against the full
// nested resolve it memoizes (run with -bench=WalkCached and compare
// against NoWalkCache by flipping the config below).
func BenchmarkWalkCached(b *testing.B) {
	env := virtEnv(b, osim.CAPolicy{}, osim.CAPolicy{})
	w := workloads.NewPageRank()
	if err := w.Setup(env, rand.New(rand.NewSource(1))); err != nil {
		b.Fatal(err)
	}
	accs := benchAccesses(b, w, 1<<16)
	m := warmMachine(b, env, Config{}, accs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w := m.be.Translate(accs[i%len(accs)].VA); !w.OK {
			b.Fatal("unresolvable access in warmed benchmark")
		}
	}
}
