package sim

import (
	"errors"

	"repro/internal/trace"
	"repro/internal/workloads"
)

// errSchemesUnsupported rejects Engine configs asking for the
// SpOT/vRMM/DS emulation, which snapshots a populated process.
var errSchemesUnsupported = errors.New("sim: Engine does not support EnableSchemes (schemes snapshot a populated process)")

// Engine is the serving-mode counterpart of Run: a persistent per-
// process simulation whose Step method drives one access at a time
// through the same backend fast-path / translate / demand-fault loop
// the batched Run uses. A trace replayer interleaves accesses with
// kernel mutations (mmap, fork, daemon epochs) on the same process, so
// it cannot hand sim a closed stream — it holds an Engine per tenant
// and feeds accesses as its trace delivers them. Step shares machine's
// zero-allocation steady state; construction and faults allocate.
type Engine struct {
	m *machine
}

// NewEngine builds the per-process hardware state over the
// environment's current mappings. The backend observes the process's
// page table, so later mutations (faults, promotions, CoW redirects,
// unmaps) invalidate stale translations exactly, same as under Run.
// EnableSchemes is rejected: the schemes snapshot a fully populated
// process at construction, which a serving stream does not have.
func NewEngine(env *workloads.Env, cfg Config) (*Engine, error) {
	if cfg.EnableSchemes {
		return nil, errSchemesUnsupported
	}
	m, err := newMachine(env, cfg.withDefaults())
	if err != nil {
		return nil, err
	}
	return &Engine{m: m}, nil
}

// Step drives one access and returns the translation cost (cycles)
// charged for it: zero on a backend fast-path hit, the walk cost on a
// miss. A non-nil error means the access could not be resolved even
// after the demand-fault retry (typically osim.ErrOOM wrapped by the
// fault path); the engine stays usable afterwards.
func (e *Engine) Step(a workloads.Access) (float64, error) {
	before := e.m.res.WalkCycles
	if err := e.m.step(a); err != nil {
		return e.m.res.WalkCycles - before, err
	}
	return e.m.res.WalkCycles - before, nil
}

// Result snapshots the counters accumulated so far, with the derived
// aggregate fields filled in.
func (e *Engine) Result() Result {
	return e.m.finish()
}

// SetTracer attaches (or, with nil, detaches) a tracer to the engine's
// hardware components, same contract as Config.Tracer under Run.
func (e *Engine) SetTracer(t *trace.Tracer) { e.m.setTracer(t) }

// Close detaches the backend from the process's page table. The engine
// must not be used afterwards. Callers must Close before tearing the
// process down so the page-table observer list does not accumulate
// dead backends across tenant generations.
func (e *Engine) Close() { e.m.be.Close() }
