// Package metrics computes the contiguity statistics the paper's
// evaluation reports: memory-footprint coverage by the N largest
// contiguous mappings (Figs. 1, 7, 8, 10, 12), the number of mappings
// needed to cover 99 % of the footprint, free-block distributions
// (Fig. 9), percentile latencies (Table V), and bloat (Table VI).
//
// A "mapping" here is the paper's Fig. 1a object: a maximal extent of
// virtual pages mapped to consecutive physical pages — independent of
// the page size backing it.
package metrics

import (
	"math"
	"sort"

	"repro/internal/mem/addr"
	"repro/internal/osim/pagetable"
)

// Mapping is one contiguous virtual-to-physical extent.
type Mapping struct {
	VA    addr.VirtAddr
	PA    addr.PhysAddr
	Pages uint64
}

// End returns one past the mapping's last virtual byte.
func (m Mapping) End() addr.VirtAddr { return m.VA.Add(m.Pages * addr.PageSize) }

// Offset returns the mapping's translation offset.
func (m Mapping) Offset() addr.Offset { return addr.OffsetOf(m.VA, m.PA) }

// FromPageTable extracts maximal contiguous mappings from a page table
// (the pagemap-based method the paper uses natively).
func FromPageTable(pt *pagetable.Table) []Mapping {
	var out []Mapping
	var cur Mapping
	pt.Visit(func(l pagetable.Leaf) {
		pa := l.PTE.PFN.Addr()
		if cur.Pages > 0 && l.VA == cur.End() && pa == cur.PA+addr.PhysAddr(cur.Pages*addr.PageSize) {
			cur.Pages += l.Pages
			return
		}
		if cur.Pages > 0 {
			out = append(out, cur)
		}
		cur = Mapping{VA: l.VA, PA: pa, Pages: l.Pages}
	})
	if cur.Pages > 0 {
		out = append(out, cur)
	}
	return out
}

// SortBySize orders mappings by size, largest first (stable on VA).
func SortBySize(ms []Mapping) {
	sort.SliceStable(ms, func(i, j int) bool { return ms[i].Pages > ms[j].Pages })
}

// TotalPages sums mapping sizes.
func TotalPages(ms []Mapping) uint64 {
	var n uint64
	for _, m := range ms {
		n += m.Pages
	}
	return n
}

// CoverageTopN returns the fraction (0..1) of the total mapped
// footprint covered by the N largest mappings.
func CoverageTopN(ms []Mapping, n int) float64 {
	total := TotalPages(ms)
	if total == 0 {
		return 0
	}
	sorted := append([]Mapping(nil), ms...)
	SortBySize(sorted)
	var covered uint64
	for i := 0; i < n && i < len(sorted); i++ {
		covered += sorted[i].Pages
	}
	return float64(covered) / float64(total)
}

// MappingsFor covers returns the number of largest-first mappings
// needed to reach the given coverage fraction of the footprint (the
// paper's "number of mappings to cover 99 %").
func MappingsFor(ms []Mapping, coverage float64) int {
	total := TotalPages(ms)
	if total == 0 {
		return 0
	}
	sorted := append([]Mapping(nil), ms...)
	SortBySize(sorted)
	target := uint64(coverage * float64(total))
	var covered uint64
	for i, m := range sorted {
		covered += m.Pages
		if covered >= target {
			return i + 1
		}
	}
	return len(sorted)
}

// Percentile returns the p-quantile (0..1) of xs using nearest-rank on
// a sorted copy. Returns 0 for empty input.
func Percentile(xs []uint64, p float64) uint64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]uint64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(p*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Mean returns the arithmetic mean of xs (0 for empty). It accumulates
// in float64: a uint64 accumulator silently wraps on large cycle totals
// (e.g. two samples of 2^63 summed to 0).
func Mean(xs []uint64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += float64(x)
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (0 for empty; zeros clamp
// to 1 to stay defined, as the paper's geomeans do for counts).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	prod := 1.0
	for _, x := range xs {
		if x < 1 {
			x = 1
		}
		prod *= x
	}
	// n-th root via successive halving-free math: use math.Pow.
	return pow(prod, 1/float64(len(xs)))
}

// GeoMeanFrac is GeoMean for fractions in (0,1]: zeros clamp to a tiny
// epsilon instead of 1.
func GeoMeanFrac(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	prod := 1.0
	for _, x := range xs {
		if x < 1e-9 {
			x = 1e-9
		}
		prod *= x
	}
	return pow(prod, 1/float64(len(xs)))
}

// pow is math.Pow; indirected for clarity of intent above.
func pow(x, y float64) float64 { return math.Pow(x, y) }

// FreeOrderHistogram tallies free blocks per buddy order from any
// free-block visitor (a single zone's Buddy.VisitFreeBlocks, or a
// machine-wide visitor that chains zones). Index o counts free blocks
// of order o.
func FreeOrderHistogram(visit func(fn func(pfn addr.PFN, order int))) [addr.MaxOrder + 1]uint64 {
	var counts [addr.MaxOrder + 1]uint64
	visit(func(_ addr.PFN, order int) { counts[order]++ })
	return counts
}

// UnusableFreeIndex computes Gorman's unusable free space index for
// allocations of the given order from a per-order free-block histogram:
// the fraction (0..1) of free memory that sits in blocks too small to
// satisfy a 2^order-page request. 0 means every free page is usable at
// that granularity; 1 means none is. Zero when nothing is free (an
// exhausted machine is not fragmented, matching FragScore).
func UnusableFreeIndex(counts [addr.MaxOrder + 1]uint64, order int) float64 {
	var free, usable uint64
	for o := 0; o <= addr.MaxOrder; o++ {
		pages := counts[o] * addr.OrderPages(o)
		free += pages
		if o >= order {
			usable += pages
		}
	}
	if free == 0 {
		return 0
	}
	return float64(free-usable) / float64(free)
}

// SizeBuckets buckets a free-block histogram (pages -> count) into the
// paper's Fig. 9 size classes, returning the fraction of total free
// memory per class. Classes: <=2MiB, <=64MiB, <=1GiB, >1GiB.
func SizeBuckets(hist map[uint64]uint64) (frac [4]float64) {
	bounds := [3]uint64{
		addr.HugeSize / addr.PageSize, // 2 MiB
		64 << 20 / addr.PageSize,      // 64 MiB
		1 << 30 / addr.PageSize,       // 1 GiB
	}
	var per [4]uint64
	var total uint64
	for size, count := range hist {
		pages := size * count
		total += pages
		switch {
		case size <= bounds[0]:
			per[0] += pages
		case size <= bounds[1]:
			per[1] += pages
		case size <= bounds[2]:
			per[2] += pages
		default:
			per[3] += pages
		}
	}
	if total == 0 {
		return
	}
	for i := range per {
		frac[i] = float64(per[i]) / float64(total)
	}
	return
}
