package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mem/addr"
	"repro/internal/osim/pagetable"
)

func mk(va, pa, pages uint64) Mapping {
	return Mapping{VA: addr.VirtAddr(va) << addr.PageShift, PA: addr.PhysAddr(pa) << addr.PageShift, Pages: pages}
}

func TestFromPageTableMergesRuns(t *testing.T) {
	pt := pagetable.New()
	// Three 4K pages contiguous both ways, then a gap, then a huge page
	// physically continuing a 4K page.
	pt.Map4K(0x1000, 10, 0)
	pt.Map4K(0x2000, 11, 0)
	pt.Map4K(0x3000, 12, 0)
	pt.Map4K(0x9000, 50, 0)
	base := addr.VirtAddr(8 * addr.HugeSize)
	pt.Map4K(base-addr.PageSize, 1023, 0) // just below huge, physically adjacent
	pt.Map2M(base, 1024, 0)
	ms := FromPageTable(pt)
	if len(ms) != 3 {
		t.Fatalf("mappings = %d (%+v), want 3", len(ms), ms)
	}
	if ms[0].Pages != 3 || ms[1].Pages != 1 {
		t.Fatalf("run sizes = %d,%d", ms[0].Pages, ms[1].Pages)
	}
	// 4K + huge merged: 513 pages.
	if ms[2].Pages != 513 {
		t.Fatalf("merged run = %d pages, want 513", ms[2].Pages)
	}
}

func TestFromPageTableVirtualGapBreaksRun(t *testing.T) {
	pt := pagetable.New()
	pt.Map4K(0x1000, 10, 0)
	pt.Map4K(0x3000, 11, 0) // physically adjacent but VA gap
	ms := FromPageTable(pt)
	if len(ms) != 2 {
		t.Fatalf("mappings = %d, want 2", len(ms))
	}
}

func TestCoverageTopN(t *testing.T) {
	ms := []Mapping{mk(0, 0, 100), mk(1000, 500, 50), mk(2000, 900, 25), mk(3000, 1500, 25)}
	if got := CoverageTopN(ms, 1); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("top1 = %f", got)
	}
	if got := CoverageTopN(ms, 2); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("top2 = %f", got)
	}
	if got := CoverageTopN(ms, 10); got != 1 {
		t.Fatalf("topAll = %f", got)
	}
	if CoverageTopN(nil, 32) != 0 {
		t.Fatal("empty coverage should be 0")
	}
}

func TestMappingsFor(t *testing.T) {
	ms := []Mapping{mk(0, 0, 98), mk(1000, 500, 1), mk(2000, 900, 1)}
	if got := MappingsFor(ms, 0.98); got != 1 {
		t.Fatalf("98%% needs %d", got)
	}
	if got := MappingsFor(ms, 0.99); got != 2 {
		t.Fatalf("99%% needs %d", got)
	}
	if got := MappingsFor(ms, 1.0); got != 3 {
		t.Fatalf("100%% needs %d", got)
	}
	if MappingsFor(nil, 0.99) != 0 {
		t.Fatal("empty should need 0")
	}
}

func TestCoverageMonotoneProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		var ms []Mapping
		va := uint64(0)
		for _, s := range sizes {
			if s == 0 {
				continue
			}
			ms = append(ms, mk(va, va+1e6, uint64(s)))
			va += uint64(s) + 1
		}
		// Coverage is monotone in N and hits 1 at len(ms).
		prev := 0.0
		for n := 1; n <= len(ms); n++ {
			c := CoverageTopN(ms, n)
			if c+1e-12 < prev {
				return false
			}
			prev = c
		}
		return len(ms) == 0 || math.Abs(CoverageTopN(ms, len(ms))-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []uint64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	if got := Percentile(xs, 0.5); got != 50 {
		t.Fatalf("p50 = %d", got)
	}
	if got := Percentile(xs, 0.99); got != 100 {
		t.Fatalf("p99 = %d", got)
	}
	if got := Percentile(xs, 0.1); got != 10 {
		t.Fatalf("p10 = %d", got)
	}
	if Percentile(nil, 0.99) != 0 {
		t.Fatal("empty percentile")
	}
	if got := Percentile([]uint64{42}, 0.99); got != 42 {
		t.Fatalf("single = %d", got)
	}
}

func TestMeanGeoMean(t *testing.T) {
	if got := Mean([]uint64{2, 4, 6}); got != 4 {
		t.Fatalf("mean = %f", got)
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if got := GeoMean([]float64{1, 100}); math.Abs(got-10) > 1e-9 {
		t.Fatalf("geomean = %f", got)
	}
	if got := GeoMeanFrac([]float64{0.25, 1}); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("geomean frac = %f", got)
	}
	if GeoMean(nil) != 0 || GeoMeanFrac(nil) != 0 {
		t.Fatal("empty geomeans")
	}
}

func TestSizeBuckets(t *testing.T) {
	hist := map[uint64]uint64{
		512:        1, // 2 MiB -> bucket 0
		16384:      1, // 64 MiB -> bucket 1
		262144:     1, // 1 GiB -> bucket 2
		262144 + 1: 1, // just over 1 GiB -> bucket 3
	}
	frac := SizeBuckets(hist)
	var sum float64
	for _, f := range frac {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fractions sum to %f", sum)
	}
	if frac[3] < frac[0] {
		t.Fatal("the >1GiB bucket holds the most pages here")
	}
	empty := SizeBuckets(nil)
	if empty != [4]float64{} {
		t.Fatal("empty histogram should be all zeros")
	}
}

func TestMappingAccessors(t *testing.T) {
	m := mk(100, 200, 5)
	if m.End() != m.VA.Add(5*addr.PageSize) {
		t.Fatal("End wrong")
	}
	if m.Offset().Target(m.VA) != m.PA {
		t.Fatal("Offset roundtrip wrong")
	}
}

// TestMeanOverflow pins the float64 accumulator: a uint64 sum of two
// 2^63 samples wraps to 0 and used to report a mean of 0.
func TestMeanOverflow(t *testing.T) {
	huge := uint64(1) << 63
	got := Mean([]uint64{huge, huge})
	if got != float64(huge) {
		t.Fatalf("Mean overflowed: got %g, want %g", got, float64(huge))
	}
}

// TestUnusableFreeIndex pins the Gorman index on hand-built histograms
// and its degenerate cases.
func TestUnusableFreeIndex(t *testing.T) {
	var empty [addr.MaxOrder + 1]uint64
	if got := UnusableFreeIndex(empty, addr.HugeOrder); got != 0 {
		t.Fatalf("empty machine index = %v, want 0", got)
	}

	// One MAX_ORDER block: fully usable at every order.
	var pristine [addr.MaxOrder + 1]uint64
	pristine[addr.MaxOrder] = 1
	for o := 0; o <= addr.MaxOrder; o++ {
		if got := UnusableFreeIndex(pristine, o); got != 0 {
			t.Fatalf("pristine index at order %d = %v, want 0", o, got)
		}
	}

	// Pure 4 KiB confetti: usable at order 0, fully unusable above.
	var confetti [addr.MaxOrder + 1]uint64
	confetti[0] = 1024
	if got := UnusableFreeIndex(confetti, 0); got != 0 {
		t.Fatalf("order-0 requests never starve, index = %v", got)
	}
	if got := UnusableFreeIndex(confetti, addr.HugeOrder); got != 1 {
		t.Fatalf("confetti huge index = %v, want 1", got)
	}

	// Mixed: 512 pages in singles + one huge block = 1024 free pages,
	// half unusable for huge allocations.
	var mixed [addr.MaxOrder + 1]uint64
	mixed[0] = 512
	mixed[addr.HugeOrder] = 1
	if got := UnusableFreeIndex(mixed, addr.HugeOrder); got != 0.5 {
		t.Fatalf("mixed huge index = %v, want 0.5", got)
	}
	if got := UnusableFreeIndex(mixed, addr.MaxOrder); got != 1 {
		t.Fatalf("nothing reaches MAX_ORDER, index = %v, want 1", got)
	}
}

// TestFreeOrderHistogram checks the visitor adapter counts per order.
func TestFreeOrderHistogram(t *testing.T) {
	counts := FreeOrderHistogram(func(fn func(pfn addr.PFN, order int)) {
		fn(0, 0)
		fn(8, 3)
		fn(16, 3)
		fn(512, addr.HugeOrder)
	})
	want := [addr.MaxOrder + 1]uint64{}
	want[0], want[3], want[addr.HugeOrder] = 1, 2, 1
	if counts != want {
		t.Fatalf("histogram = %v, want %v", counts, want)
	}
}
