// Package rmm emulates virtualized Redundant Memory Mappings (vRMM),
// the range-translation baseline of §IV: a fully associative range TLB
// caching [Base, Limit, Offset] translations, backed by a range table
// holding the process's full 2D (gVA→hPA) contiguous mappings.
//
// Matching the paper's emulation methodology (§V), the range table is a
// flat sorted array rather than a B-tree, and the latency of the nested
// range-table walk is assumed to be hidden entirely in the background:
// only misses that find *no* covering range pay the regular nested-walk
// cost.
package rmm

import (
	"sort"

	"repro/internal/mem/addr"
	"repro/internal/metrics"
)

// Range is one cached range translation.
type Range struct {
	Base   addr.VirtAddr
	Limit  addr.VirtAddr // exclusive
	Offset addr.Offset
}

// Covers reports whether va falls inside the range.
func (r Range) Covers(va addr.VirtAddr) bool { return va >= r.Base && va < r.Limit }

// Table is the OS/hypervisor-maintained range table: the full set of 2D
// contiguous mappings, sorted by base address.
type Table struct {
	ranges []Range
}

// NewTable builds a range table from extracted contiguous mappings.
func NewTable(ms []metrics.Mapping) *Table {
	t := &Table{ranges: make([]Range, 0, len(ms))}
	for _, m := range ms {
		t.ranges = append(t.ranges, Range{
			Base:   m.VA,
			Limit:  m.End(),
			Offset: m.Offset(),
		})
	}
	sort.Slice(t.ranges, func(i, j int) bool { return t.ranges[i].Base < t.ranges[j].Base })
	return t
}

// Len returns the number of ranges.
func (t *Table) Len() int { return len(t.ranges) }

// Find returns the range covering va.
func (t *Table) Find(va addr.VirtAddr) (Range, bool) {
	i := sort.Search(len(t.ranges), func(i int) bool { return t.ranges[i].Limit > va })
	if i < len(t.ranges) && t.ranges[i].Covers(va) {
		return t.ranges[i], true
	}
	return Range{}, false
}

// RangeTLB is the fully associative hardware range TLB.
type RangeTLB struct {
	entries []Range
	lru     []uint64
	cap     int
	tick    uint64

	Hits   uint64
	Misses uint64 // misses needing a range-table walk
	Uncov  uint64 // misses with no covering range at all
}

// NewRangeTLB creates a range TLB with the given capacity (paper: 32).
func NewRangeTLB(capacity int) *RangeTLB {
	return &RangeTLB{cap: capacity}
}

// Lookup probes the range TLB, filling from the table on miss. It
// reports whether the translation is served by a range (hit or filled)
// — in the paper's model those pay no visible walk cost — or not
// covered at all (regular nested walk cost applies).
func (r *RangeTLB) Lookup(va addr.VirtAddr, table *Table) (addr.PhysAddr, bool) {
	r.tick++
	for i := range r.entries {
		if r.entries[i].Covers(va) {
			r.lru[i] = r.tick
			r.Hits++
			return r.entries[i].Offset.Target(va), true
		}
	}
	rng, ok := table.Find(va)
	if !ok {
		r.Uncov++
		return 0, false
	}
	r.Misses++
	r.insert(rng)
	return rng.Offset.Target(va), true
}

func (r *RangeTLB) insert(rng Range) {
	if len(r.entries) < r.cap {
		r.entries = append(r.entries, rng)
		r.lru = append(r.lru, r.tick)
		return
	}
	victim := 0
	for i := range r.lru {
		if r.lru[i] < r.lru[victim] {
			victim = i
		}
	}
	r.entries[victim] = rng
	r.lru[victim] = r.tick
}

// Flush invalidates the range TLB.
func (r *RangeTLB) Flush() {
	r.entries = r.entries[:0]
	r.lru = r.lru[:0]
}
