package rmm

import (
	"testing"

	"repro/internal/mem/addr"
	"repro/internal/metrics"
)

func mk(vaPage, paPage, pages uint64) metrics.Mapping {
	return metrics.Mapping{
		VA:    addr.VirtAddr(vaPage) << addr.PageShift,
		PA:    addr.PhysAddr(paPage) << addr.PageShift,
		Pages: pages,
	}
}

func TestTableFind(t *testing.T) {
	tab := NewTable([]metrics.Mapping{
		mk(1000, 50, 100),
		mk(100, 900, 10),
		mk(5000, 2000, 1),
	})
	if tab.Len() != 3 {
		t.Fatal("Len")
	}
	// Inside the middle mapping.
	r, ok := tab.Find(addr.VirtAddr(1050) << addr.PageShift)
	if !ok {
		t.Fatal("Find missed covering range")
	}
	want := addr.PhysAddr(100) << addr.PageShift
	if got := r.Offset.Target(addr.VirtAddr(1050) << addr.PageShift); got != want {
		t.Fatalf("translation = %v, want %v", got, want)
	}
	// Boundary conditions: Base inclusive, Limit exclusive.
	if _, ok := tab.Find(addr.VirtAddr(1000) << addr.PageShift); !ok {
		t.Fatal("Base should be covered")
	}
	if _, ok := tab.Find(addr.VirtAddr(1100) << addr.PageShift); ok {
		t.Fatal("Limit should be exclusive")
	}
	// Gap.
	if _, ok := tab.Find(addr.VirtAddr(500) << addr.PageShift); ok {
		t.Fatal("gap should not be covered")
	}
}

func TestRangeTLBHitMissAccounting(t *testing.T) {
	tab := NewTable([]metrics.Mapping{mk(0, 1000, 10000)})
	rt := NewRangeTLB(32)
	va := addr.VirtAddr(5000) << addr.PageShift
	if _, ok := rt.Lookup(va, tab); !ok {
		t.Fatal("covered lookup failed")
	}
	if rt.Hits != 0 || rt.Misses != 1 {
		t.Fatalf("first lookup: hits=%d misses=%d", rt.Hits, rt.Misses)
	}
	// Second lookup anywhere in the range hits the cached entry.
	if _, ok := rt.Lookup(va.Add(1<<20), tab); !ok {
		t.Fatal("cached lookup failed")
	}
	if rt.Hits != 1 {
		t.Fatalf("hits = %d", rt.Hits)
	}
	// Uncovered address.
	if _, ok := rt.Lookup(addr.VirtAddr(1)<<40, tab); ok {
		t.Fatal("uncovered lookup succeeded")
	}
	if rt.Uncov != 1 {
		t.Fatalf("uncov = %d", rt.Uncov)
	}
}

func TestRangeTLBLRUEviction(t *testing.T) {
	// Capacity 2: a third distinct range evicts the least recently used.
	tab := NewTable([]metrics.Mapping{
		mk(0, 0, 10),
		mk(1000, 100, 10),
		mk(2000, 200, 10),
	})
	rt := NewRangeTLB(2)
	v0 := addr.VirtAddr(0)
	v1 := addr.VirtAddr(1000) << addr.PageShift
	v2 := addr.VirtAddr(2000) << addr.PageShift
	rt.Lookup(v0, tab) // fill 0
	rt.Lookup(v1, tab) // fill 1
	rt.Lookup(v0, tab) // touch 0
	rt.Lookup(v2, tab) // evicts 1
	missesBefore := rt.Misses
	rt.Lookup(v0, tab) // still cached
	if rt.Misses != missesBefore {
		t.Fatal("recently used range evicted")
	}
	rt.Lookup(v1, tab) // refill
	if rt.Misses != missesBefore+1 {
		t.Fatal("evicted range should refill via table walk")
	}
}

func TestFlush(t *testing.T) {
	tab := NewTable([]metrics.Mapping{mk(0, 0, 10)})
	rt := NewRangeTLB(4)
	rt.Lookup(0, tab)
	rt.Flush()
	rt.Lookup(0, tab)
	if rt.Misses != 2 {
		t.Fatalf("misses = %d, want refill after flush", rt.Misses)
	}
}

func TestTranslationConsistencyAcrossRange(t *testing.T) {
	tab := NewTable([]metrics.Mapping{mk(1<<20, 1<<10, 1<<20)})
	rt := NewRangeTLB(32)
	base := addr.VirtAddr(1<<20) << addr.PageShift
	pa0, _ := rt.Lookup(base, tab)
	paN, _ := rt.Lookup(base.Add(12345*addr.PageSize), tab)
	if paN != pa0+addr.PhysAddr(12345*addr.PageSize) {
		t.Fatal("range translation not linear")
	}
}
