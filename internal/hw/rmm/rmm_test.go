package rmm

import (
	"math/rand"
	"testing"

	"repro/internal/mem/addr"
	"repro/internal/metrics"
)

func mk(vaPage, paPage, pages uint64) metrics.Mapping {
	return metrics.Mapping{
		VA:    addr.VirtAddr(vaPage) << addr.PageShift,
		PA:    addr.PhysAddr(paPage) << addr.PageShift,
		Pages: pages,
	}
}

func TestTableFind(t *testing.T) {
	tab := NewTable([]metrics.Mapping{
		mk(1000, 50, 100),
		mk(100, 900, 10),
		mk(5000, 2000, 1),
	})
	if tab.Len() != 3 {
		t.Fatal("Len")
	}
	// Inside the middle mapping.
	r, ok := tab.Find(addr.VirtAddr(1050) << addr.PageShift)
	if !ok {
		t.Fatal("Find missed covering range")
	}
	want := addr.PhysAddr(100) << addr.PageShift
	if got := r.Offset.Target(addr.VirtAddr(1050) << addr.PageShift); got != want {
		t.Fatalf("translation = %v, want %v", got, want)
	}
	// Boundary conditions: Base inclusive, Limit exclusive.
	if _, ok := tab.Find(addr.VirtAddr(1000) << addr.PageShift); !ok {
		t.Fatal("Base should be covered")
	}
	if _, ok := tab.Find(addr.VirtAddr(1100) << addr.PageShift); ok {
		t.Fatal("Limit should be exclusive")
	}
	// Gap.
	if _, ok := tab.Find(addr.VirtAddr(500) << addr.PageShift); ok {
		t.Fatal("gap should not be covered")
	}
}

func TestRangeTLBHitMissAccounting(t *testing.T) {
	tab := NewTable([]metrics.Mapping{mk(0, 1000, 10000)})
	rt := NewRangeTLB(32)
	va := addr.VirtAddr(5000) << addr.PageShift
	if _, ok := rt.Lookup(va, tab); !ok {
		t.Fatal("covered lookup failed")
	}
	if rt.Hits != 0 || rt.Misses != 1 {
		t.Fatalf("first lookup: hits=%d misses=%d", rt.Hits, rt.Misses)
	}
	// Second lookup anywhere in the range hits the cached entry.
	if _, ok := rt.Lookup(va.Add(1<<20), tab); !ok {
		t.Fatal("cached lookup failed")
	}
	if rt.Hits != 1 {
		t.Fatalf("hits = %d", rt.Hits)
	}
	// Uncovered address.
	if _, ok := rt.Lookup(addr.VirtAddr(1)<<40, tab); ok {
		t.Fatal("uncovered lookup succeeded")
	}
	if rt.Uncov != 1 {
		t.Fatalf("uncov = %d", rt.Uncov)
	}
}

func TestRangeTLBLRUEviction(t *testing.T) {
	// Capacity 2: a third distinct range evicts the least recently used.
	tab := NewTable([]metrics.Mapping{
		mk(0, 0, 10),
		mk(1000, 100, 10),
		mk(2000, 200, 10),
	})
	rt := NewRangeTLB(2)
	v0 := addr.VirtAddr(0)
	v1 := addr.VirtAddr(1000) << addr.PageShift
	v2 := addr.VirtAddr(2000) << addr.PageShift
	rt.Lookup(v0, tab) // fill 0
	rt.Lookup(v1, tab) // fill 1
	rt.Lookup(v0, tab) // touch 0
	rt.Lookup(v2, tab) // evicts 1
	missesBefore := rt.Misses
	rt.Lookup(v0, tab) // still cached
	if rt.Misses != missesBefore {
		t.Fatal("recently used range evicted")
	}
	rt.Lookup(v1, tab) // refill
	if rt.Misses != missesBefore+1 {
		t.Fatal("evicted range should refill via table walk")
	}
}

func TestFlush(t *testing.T) {
	tab := NewTable([]metrics.Mapping{mk(0, 0, 10)})
	rt := NewRangeTLB(4)
	rt.Lookup(0, tab)
	rt.Flush()
	rt.Lookup(0, tab)
	if rt.Misses != 2 {
		t.Fatalf("misses = %d, want refill after flush", rt.Misses)
	}
}

func TestTranslationConsistencyAcrossRange(t *testing.T) {
	tab := NewTable([]metrics.Mapping{mk(1<<20, 1<<10, 1<<20)})
	rt := NewRangeTLB(32)
	base := addr.VirtAddr(1<<20) << addr.PageShift
	pa0, _ := rt.Lookup(base, tab)
	paN, _ := rt.Lookup(base.Add(12345*addr.PageSize), tab)
	if paN != pa0+addr.PhysAddr(12345*addr.PageSize) {
		t.Fatal("range translation not linear")
	}
}

// TestRangeTLBRebuildFlush is the property behind the rmm backend's
// sync() contract (internal/hw/translation): derived range state is
// only correct if every table rebuild — after an unmap or a migration
// — is paired with a RangeTLB flush. The randomized walk churns a
// model mapping set, rebuilds the table each round, and asserts the
// flushed RangeTLB agrees with Table.Find (the ground truth) on every
// probe, covered and uncovered, whatever the LRU state. The final
// section drops the flush once and shows a cached range serving the
// pre-migration physical address — the stale translation the flush
// exists to prevent.
func TestRangeTLBRebuildFlush(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	maps := make(map[uint64]metrics.Mapping) // by VA page
	add := func() {
		vaPage := uint64(1+rng.Intn(64)) * 1 << 10
		if _, dup := maps[vaPage]; dup {
			return
		}
		maps[vaPage] = mk(vaPage, uint64(rng.Intn(1<<20)), uint64(1+rng.Intn(512)))
	}
	for i := 0; i < 8; i++ {
		add()
	}
	build := func() *Table {
		ms := make([]metrics.Mapping, 0, len(maps))
		for _, m := range maps {
			ms = append(ms, m)
		}
		return NewTable(ms)
	}
	tab := build()
	rt := NewRangeTLB(4) // far fewer entries than ranges: constant eviction

	probe := func(round int) {
		// Probes inside every model mapping plus gap/boundary addresses.
		for _, m := range maps {
			off := uint64(rng.Intn(int(m.Pages))) * uint64(addr.PageSize)
			va := m.VA.Add(off)
			pa, ok := rt.Lookup(va, tab)
			if !ok {
				t.Fatalf("round %d: %s covered by model but RangeTLB says uncovered", round, va)
			}
			if want := m.PA + addr.PhysAddr(off); pa != want {
				t.Fatalf("round %d: %s -> %s, model says %s", round, va, pa, want)
			}
			if wantR, ok := tab.Find(va); !ok || wantR.Offset.Target(va) != pa {
				t.Fatalf("round %d: RangeTLB and Table disagree at %s", round, va)
			}
		}
		for i := 0; i < 8; i++ {
			va := addr.VirtAddr(rng.Intn(1 << 28))
			_, got := rt.Lookup(va, tab)
			_, want := tab.Find(va)
			if got != want {
				t.Fatalf("round %d: coverage disagreement at %s: RangeTLB %v, Table %v", round, va, got, want)
			}
		}
	}

	for round := 0; round < 60; round++ {
		// Churn: unmap, migrate, or map — then rebuild + flush, the
		// backend's sync() in miniature.
		switch rng.Intn(3) {
		case 0: // unmap one mapping
			for va := range maps {
				delete(maps, va)
				break
			}
		case 1: // migrate one mapping to new frames
			for va, m := range maps {
				m.PA = addr.PhysAddr(rng.Intn(1<<20)) << addr.PageShift
				maps[va] = m
				break
			}
		case 2:
			add()
		}
		tab = build()
		rt.Flush()
		probe(round)
	}

	// Non-vacuity: the same churn without the flush serves stale PAs.
	var victim metrics.Mapping
	for _, m := range maps {
		victim = m
		break
	}
	if _, ok := rt.Lookup(victim.VA, tab); !ok {
		t.Fatal("victim mapping should be covered")
	}
	moved := victim
	moved.PA += addr.PhysAddr(addr.MaxOrderPages) << addr.PageShift
	maps[uint64(victim.VA)>>addr.PageShift] = moved
	tab = build() // rebuild WITHOUT rt.Flush()
	pa, ok := rt.Lookup(victim.VA, tab)
	if !ok || pa != victim.PA {
		t.Fatalf("expected the unflushed RangeTLB to serve the stale PA %s, got %s (ok=%v)", victim.PA, pa, ok)
	}
	rt.Flush()
	if pa, _ := rt.Lookup(victim.VA, tab); pa != moved.PA {
		t.Fatalf("flush did not restore agreement: got %s, want %s", pa, moved.PA)
	}
}
