package tlb

import (
	"testing"

	"repro/internal/mem/addr"
)

func TestColdMissThenHit(t *testing.T) {
	tl := New(1536, 6)
	va := addr.VirtAddr(0x1000)
	if tl.Lookup(va) {
		t.Fatal("cold lookup should miss")
	}
	tl.Insert(va, false)
	if !tl.Lookup(va) {
		t.Fatal("hit expected after insert")
	}
	if tl.Lookups() != 2 || tl.Misses() != 1 {
		t.Fatalf("counters = %d/%d", tl.Lookups(), tl.Misses())
	}
	if tl.MissRatio() != 0.5 {
		t.Fatalf("ratio = %f", tl.MissRatio())
	}
}

func TestHugeEntryCoversRegion(t *testing.T) {
	tl := New(1536, 6)
	base := addr.VirtAddr(8 * addr.HugeSize)
	tl.Insert(base, true)
	// Any address within the 2 MiB region hits.
	for _, off := range []uint64{0, addr.PageSize, addr.HugeSize - 1} {
		if !tl.Lookup(base.Add(off)) {
			t.Fatalf("huge entry should cover +%d", off)
		}
	}
	// Outside the region misses.
	if tl.Lookup(base.Add(addr.HugeSize)) {
		t.Fatal("adjacent region should miss")
	}
}

func Test4KEntryDoesNotCoverNeighbour(t *testing.T) {
	tl := New(64, 4)
	tl.Insert(0x1000, false)
	if tl.Lookup(0x2000) {
		t.Fatal("4K entry must not cover the next page")
	}
}

func TestLRUEvictionWithinSet(t *testing.T) {
	// 4 entries, 4 ways: one set. Insert 4, touch the first, insert a
	// 5th: the LRU victim must be the untouched second entry.
	tl := New(4, 4)
	vas := []addr.VirtAddr{0x1000, 0x2000, 0x3000, 0x4000}
	for _, va := range vas {
		tl.Insert(va, false)
	}
	if !tl.Lookup(vas[0]) {
		t.Fatal("miss on resident entry")
	}
	tl.Insert(0x9000, false)
	if !tl.Lookup(vas[0]) {
		t.Fatal("recently used entry evicted")
	}
	if tl.Lookup(vas[1]) {
		t.Fatal("LRU entry not evicted")
	}
}

func TestCapacityMissBehaviour(t *testing.T) {
	// Working set larger than the TLB produces a high miss ratio;
	// smaller working set after warm-up hits ~always.
	tl := New(64, 4)
	for round := 0; round < 3; round++ {
		for i := 0; i < 1024; i++ {
			va := addr.VirtAddr(i) << addr.PageShift
			if !tl.Lookup(va) {
				tl.Insert(va, false)
			}
		}
	}
	if tl.MissRatio() < 0.9 {
		t.Fatalf("thrashing working set ratio = %f", tl.MissRatio())
	}
	tl.ResetStats()
	for round := 0; round < 10; round++ {
		for i := 0; i < 32; i++ {
			va := addr.VirtAddr(i) << addr.PageShift
			if !tl.Lookup(va) {
				tl.Insert(va, false)
			}
		}
	}
	if tl.MissRatio() > 0.2 {
		t.Fatalf("resident working set ratio = %f", tl.MissRatio())
	}
}

func TestFlush(t *testing.T) {
	tl := New(64, 4)
	tl.Insert(0x1000, false)
	tl.Flush()
	if tl.Lookup(0x1000) {
		t.Fatal("hit after flush")
	}
}

func TestGeometryRounding(t *testing.T) {
	// 6-way 1536 entries -> 256 sets (power of two) must not panic.
	New(1536, 6)
	// Non-power-of-two set count rounds down.
	tl := New(48, 4) // 12 sets -> rounds to 8, ways raised to 6
	if tl.nsets != 8 {
		t.Fatalf("nsets = %d, want 8", tl.nsets)
	}
	// Regression: rounding the set count down used to silently shrink
	// the structure to 32 entries; the raised associativity preserves
	// the requested capacity.
	if tl.Entries() != 48 {
		t.Fatalf("entries = %d, want 48", tl.Entries())
	}
	if tl.ways != 6 {
		t.Fatalf("ways = %d, want 6", tl.ways)
	}
	if got := New(1536, 6).Entries(); got != 1536 {
		t.Fatalf("power-of-two geometry changed: entries = %d, want 1536", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad geometry should panic")
		}
	}()
	New(5, 4)
}

func BenchmarkLookupHit(b *testing.B) {
	tl := New(1536, 6)
	tl.Insert(0x1000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.Lookup(0x1000)
	}
}
