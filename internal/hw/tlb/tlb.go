// Package tlb models the set-associative last-level data TLB (L2 STLB)
// whose misses the paper instruments: a unified 4 KiB + 2 MiB structure
// with LRU replacement, matching the Broadwell configuration of
// Table II (1536 entries, 6-way).
//
// Only the last-level TLB is modelled: the paper's methodology (§V)
// considers "only the costly L2 STLB misses that trigger page walks".
package tlb

import (
	"repro/internal/mem/addr"
	"repro/internal/trace"
)

type entry struct {
	valid bool
	huge  bool
	tag   uint64 // page number (4K VPN or 2M VPN)
	lru   uint64
}

// TLB is a unified set-associative translation cache. The ways of all
// sets live in one flat backing array indexed by set*ways+way: probing
// a set is one bounds-checked slice, not a pointer chase through a
// per-set allocation, which matters because Lookup runs once per
// simulated access.
type TLB struct {
	entries []entry
	nsets   uint64
	ways    int
	tick    uint64
	lookups uint64
	misses  uint64
	// nSmall/nHuge count the valid entries of each page size, letting
	// Lookup skip the probe of a size the TLB holds no entries for —
	// the common case in the pure-4K and THP-saturated configurations.
	nSmall uint64
	nHuge  uint64
	// tr, when non-nil, receives miss and eviction events. One nil
	// check per miss/insert when tracing is off — Lookup's hit path is
	// untouched.
	tr *trace.Tracer
}

// New creates a TLB with the given total entry count and associativity.
// entries must be a multiple of ways. A non-power-of-two set count is
// rounded down to a power of two so index masking works, and the
// associativity is raised to compensate, so the structure never holds
// fewer entries than requested (it used to silently shrink: New(48, 4)
// built 32 entries). Entries reports the effective geometry.
func New(entries, ways int) *TLB {
	nsets := entries / ways
	if nsets <= 0 || entries%ways != 0 {
		panic("tlb: bad geometry")
	}
	if nsets&(nsets-1) != 0 {
		// The paper's 1536/6 = 256 sets is already a power of two.
		n := 1
		for n*2 <= nsets {
			n *= 2
		}
		nsets = n
		ways = (entries + nsets - 1) / nsets
	}
	return &TLB{entries: make([]entry, nsets*ways), nsets: uint64(nsets), ways: ways}
}

// SetTracer attaches (or, with nil, detaches) an event tracer.
func (t *TLB) SetTracer(tr *trace.Tracer) { t.tr = tr }

// Entries returns the effective capacity (sets x ways), which is at
// least the entry count requested from New.
func (t *TLB) Entries() int { return int(t.nsets) * t.ways }

// Ways returns the effective associativity (after any geometry rounding
// New performed). Reference models size their compatibility bounds off
// it: a set-associative LRU and a fully-associative LRU of the same
// capacity agree exactly on streams with at most Ways distinct tags.
func (t *TLB) Ways() int { return t.ways }

// Sets returns the effective set count (a power of two).
func (t *TLB) Sets() int { return int(t.nsets) }

// Lookups returns the number of lookups performed.
func (t *TLB) Lookups() uint64 { return t.lookups }

// Misses returns the number of lookups that missed.
func (t *TLB) Misses() uint64 { return t.misses }

// MissRatio returns misses/lookups (0 when idle).
func (t *TLB) MissRatio() float64 {
	if t.lookups == 0 {
		return 0
	}
	return float64(t.misses) / float64(t.lookups)
}

func (t *TLB) set(tag uint64) []entry {
	i := (tag & (t.nsets - 1)) * uint64(t.ways)
	return t.entries[i : i+uint64(t.ways)]
}

// Lookup probes the TLB for va at both page sizes, updating LRU and
// counters. It reports whether the translation was cached. The 4K/2M
// probes are unrolled into direct calls (no per-call probe-descriptor
// slice): Lookup must not allocate.
func (t *TLB) Lookup(va addr.VirtAddr) bool {
	t.lookups++
	t.tick++
	if t.nSmall > 0 && t.probe(uint64(va)>>addr.PageShift, false) {
		return true
	}
	if t.nHuge > 0 && t.probe(uint64(va)>>addr.HugeShift, true) {
		return true
	}
	t.misses++
	if t.tr != nil {
		t.tr.Emit(trace.EvTLBMiss, uint64(va), 0, 0)
	}
	return false
}

// probe searches one set for (tag, huge), refreshing LRU on hit.
func (t *TLB) probe(tag uint64, huge bool) bool {
	set := t.set(tag)
	for i := range set {
		if set[i].valid && set[i].huge == huge && set[i].tag == tag {
			set[i].lru = t.tick
			return true
		}
	}
	return false
}

// Insert caches the translation covering va with the given page size,
// evicting the LRU way of its set.
func (t *TLB) Insert(va addr.VirtAddr, huge bool) {
	t.tick++
	tag := uint64(va) >> addr.PageShift
	if huge {
		tag = uint64(va) >> addr.HugeShift
	}
	set := t.set(tag)
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].valid {
		t.sizeCount(set[victim].huge, -1)
		if t.tr != nil {
			h := uint64(0)
			if set[victim].huge {
				h = 1
			}
			t.tr.Emit(trace.EvTLBEvict, set[victim].tag, h, 0)
		}
	}
	t.sizeCount(huge, +1)
	set[victim] = entry{valid: true, huge: huge, tag: tag, lru: t.tick}
}

// sizeCount adjusts the per-page-size valid-entry counter.
func (t *TLB) sizeCount(huge bool, d int) {
	if huge {
		t.nHuge += uint64(d)
	} else {
		t.nSmall += uint64(d)
	}
}

// Flush invalidates all entries (context switch / shootdown).
func (t *TLB) Flush() {
	clear(t.entries)
	t.nSmall, t.nHuge = 0, 0
}

// ResetStats clears the lookup/miss counters (e.g. after the population
// phase, mirroring the paper's PAPI-delimited measurement region).
func (t *TLB) ResetStats() {
	t.lookups = 0
	t.misses = 0
}
