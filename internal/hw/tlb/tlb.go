// Package tlb models the set-associative last-level data TLB (L2 STLB)
// whose misses the paper instruments: a unified 4 KiB + 2 MiB structure
// with LRU replacement, matching the Broadwell configuration of
// Table II (1536 entries, 6-way).
//
// Only the last-level TLB is modelled: the paper's methodology (§V)
// considers "only the costly L2 STLB misses that trigger page walks".
package tlb

import "repro/internal/mem/addr"

type entry struct {
	valid bool
	huge  bool
	tag   uint64 // page number (4K VPN or 2M VPN)
	lru   uint64
}

// TLB is a unified set-associative translation cache.
type TLB struct {
	sets    [][]entry
	nsets   uint64
	ways    int
	tick    uint64
	lookups uint64
	misses  uint64
}

// New creates a TLB with the given total entry count and associativity.
// entries must be a multiple of ways. A non-power-of-two set count is
// rounded down to a power of two so index masking works, and the
// associativity is raised to compensate, so the structure never holds
// fewer entries than requested (it used to silently shrink: New(48, 4)
// built 32 entries). Entries reports the effective geometry.
func New(entries, ways int) *TLB {
	nsets := entries / ways
	if nsets <= 0 || entries%ways != 0 {
		panic("tlb: bad geometry")
	}
	if nsets&(nsets-1) != 0 {
		// The paper's 1536/6 = 256 sets is already a power of two.
		n := 1
		for n*2 <= nsets {
			n *= 2
		}
		nsets = n
		ways = (entries + nsets - 1) / nsets
	}
	sets := make([][]entry, nsets)
	for i := range sets {
		sets[i] = make([]entry, ways)
	}
	return &TLB{sets: sets, nsets: uint64(nsets), ways: ways}
}

// Entries returns the effective capacity (sets x ways), which is at
// least the entry count requested from New.
func (t *TLB) Entries() int { return int(t.nsets) * t.ways }

// Lookups returns the number of lookups performed.
func (t *TLB) Lookups() uint64 { return t.lookups }

// Misses returns the number of lookups that missed.
func (t *TLB) Misses() uint64 { return t.misses }

// MissRatio returns misses/lookups (0 when idle).
func (t *TLB) MissRatio() float64 {
	if t.lookups == 0 {
		return 0
	}
	return float64(t.misses) / float64(t.lookups)
}

func (t *TLB) set(tag uint64) []entry { return t.sets[tag&(t.nsets-1)] }

// Lookup probes the TLB for va at both page sizes, updating LRU and
// counters. It reports whether the translation was cached.
func (t *TLB) Lookup(va addr.VirtAddr) bool {
	t.lookups++
	t.tick++
	tag4k := uint64(va) >> addr.PageShift
	tag2m := uint64(va) >> addr.HugeShift
	for _, probe := range []struct {
		tag  uint64
		huge bool
	}{{tag4k, false}, {tag2m, true}} {
		set := t.set(probe.tag)
		for i := range set {
			if set[i].valid && set[i].huge == probe.huge && set[i].tag == probe.tag {
				set[i].lru = t.tick
				return true
			}
		}
	}
	t.misses++
	return false
}

// Insert caches the translation covering va with the given page size,
// evicting the LRU way of its set.
func (t *TLB) Insert(va addr.VirtAddr, huge bool) {
	t.tick++
	tag := uint64(va) >> addr.PageShift
	if huge {
		tag = uint64(va) >> addr.HugeShift
	}
	set := t.set(tag)
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = entry{valid: true, huge: huge, tag: tag, lru: t.tick}
}

// Flush invalidates all entries (context switch / shootdown).
func (t *TLB) Flush() {
	for _, set := range t.sets {
		for i := range set {
			set[i] = entry{}
		}
	}
}

// ResetStats clears the lookup/miss counters (e.g. after the population
// phase, mirroring the paper's PAPI-delimited measurement region).
func (t *TLB) ResetStats() {
	t.lookups = 0
	t.misses = 0
}
