package translation

import (
	"repro/internal/mem/addr"
	"repro/internal/osim/pagetable"
	"repro/internal/workloads"
)

// mapWatch subscribes to the mapping-change events of an environment's
// translation table(s) — both dimensions in a VM — and latches a dirty
// flag. Backends whose derived state is a pure function of the current
// mappings (range table, segment) check the flag on the slow path and
// rebuild lazily: exact invalidation at rebuild-on-next-miss cost.
type mapWatch struct {
	guest, host *pagetable.Table // host nil when native
	dirty       bool
}

func watchTables(env *workloads.Env) *mapWatch {
	w := &mapWatch{}
	if env.VM != nil {
		w.guest, w.host = env.VM.NestedTables(env.Proc)
	} else {
		w.guest = env.Proc.PT
	}
	w.guest.AddObserver(w)
	if w.host != nil {
		w.host.AddObserver(w)
	}
	return w
}

func (w *mapWatch) Mapped(va addr.VirtAddr, pages uint64)     { w.dirty = true }
func (w *mapWatch) Unmapped(va addr.VirtAddr, pages uint64)   { w.dirty = true }
func (w *mapWatch) Redirected(va addr.VirtAddr, pages uint64) { w.dirty = true }

func (w *mapWatch) close() {
	w.guest.RemoveObserver(w)
	if w.host != nil {
		w.host.RemoveObserver(w)
	}
}
