package translation

import (
	"repro/internal/hw/hashpt"
	"repro/internal/hw/tlb"
	"repro/internal/mem/addr"
	"repro/internal/osim/pagetable"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// hashedProbeCycles prices one probe step of a hashed walk. A flat
// table has no upper levels for the paging-structure caches to absorb,
// so each probe is one full memory reference — costlier than the 5.4
// blended cycles of a radix reference, but a near-capacity chain stays
// at ~1 probe, undercutting the native 4-level average (45) and
// especially the nested 24-reference walk (~130).
const hashedProbeCycles = 30.0

// hashedBackend models a hashed/flattened page table: TLB misses probe
// one open-addressed table keyed by 4K VPN whose entries hold final
// host-physical frames. Entries are installed lazily — the first miss
// on a VPN pays the radix walk that computes the flattened entry (the
// OS filling the hashed table), every later miss pays only the probe
// chain. Invalidation is exact and event-driven: a guest unmap or
// migration removes the covered VPNs; host-side loss of backing (rare
// — host frames under a running workload only churn via migration)
// flushes the table, since a VPN-keyed table has no reverse index.
type hashedBackend struct {
	core
	tlb         *tlb.TLB
	ht          *hashpt.Table
	guest, host *pagetable.Table // host nil when native
	cnt         Counters

	// HashHits/HashFills count probe-chain hits and lazy installs.
	HashHits, HashFills uint64
}

func newHashed(env *workloads.Env, cfg Config) *hashedBackend {
	b := &hashedBackend{
		// The hashed table is itself the walk memo: the radix core runs
		// uncached, or fills would be priced off the memo instead of
		// the walk they model.
		core: newCore(env, true),
		tlb:  tlb.New(cfg.TLBEntries, cfg.TLBWays),
		ht:   hashpt.New(),
	}
	if env.VM != nil {
		b.guest, b.host = env.VM.NestedTables(env.Proc)
	} else {
		b.guest = env.Proc.PT
	}
	b.guest.AddObserver((*hashedGuestWatch)(b))
	if b.host != nil {
		b.host.AddObserver((*hashedHostWatch)(b))
	}
	b.SetTracer(cfg.Tracer)
	return b
}

// hashedGuestWatch receives guest-dimension mapping events. New
// mappings need no action (entries install lazily, and an entry can
// only exist for a VPN whose translation succeeded — which a fresh
// Map* cannot have changed, since double-mapping panics); unmap and
// migration drop exactly the covered VPNs.
type hashedGuestWatch hashedBackend

func (w *hashedGuestWatch) Mapped(va addr.VirtAddr, pages uint64) {}
func (w *hashedGuestWatch) Unmapped(va addr.VirtAddr, pages uint64) {
	(*hashedBackend)(w).drop(va, pages)
}
func (w *hashedGuestWatch) Redirected(va addr.VirtAddr, pages uint64) {
	(*hashedBackend)(w).drop(va, pages)
}

// hashedHostWatch receives host-dimension events (nested only). The
// table is keyed by guest VPN, so host-side PA changes cannot be
// mapped back to entries; correctness over cost, flush everything.
type hashedHostWatch hashedBackend

func (w *hashedHostWatch) Mapped(va addr.VirtAddr, pages uint64)     {}
func (w *hashedHostWatch) Unmapped(va addr.VirtAddr, pages uint64)   { w.ht.Flush() }
func (w *hashedHostWatch) Redirected(va addr.VirtAddr, pages uint64) { w.ht.Flush() }

func (b *hashedBackend) drop(va addr.VirtAddr, pages uint64) {
	vpn := uint64(va) >> addr.PageShift
	for i := uint64(0); i < pages; i++ {
		b.ht.Remove(vpn + i)
	}
}

func (b *hashedBackend) Name() string { return BackendHashed }

func (b *hashedBackend) Lookup(va addr.VirtAddr) bool {
	b.cnt.Lookups++
	if b.tlb.Lookup(va) {
		b.cnt.Hits++
		return true
	}
	b.cnt.Misses++
	return false
}

func (b *hashedBackend) Translate(va addr.VirtAddr) Walk {
	vpn := uint64(va) >> addr.PageShift
	if pa, huge, probes, ok := b.ht.Lookup(vpn); ok {
		b.HashHits++
		return Walk{
			HPA:      pa + addr.PhysAddr(uint64(va)&addr.PageMask),
			Cost:     float64(probes) * hashedProbeCycles,
			LeafHuge: huge,
			OK:       true,
		}
	}
	w := b.resolve(va)
	if w.OK {
		b.ht.Insert(vpn, w.HPA-addr.PhysAddr(uint64(va)&addr.PageMask), w.LeafHuge)
		b.HashFills++
	}
	return w
}

func (b *hashedBackend) Insert(va addr.VirtAddr, w Walk) {
	b.tlb.Insert(va, w.LeafHuge)
}

func (b *hashedBackend) Resolve(va addr.VirtAddr) (addr.PhysAddr, float64, bool) {
	vpn := uint64(va) >> addr.PageShift
	if pa, _, probes, ok := b.ht.Lookup(vpn); ok {
		return pa + addr.PhysAddr(uint64(va)&addr.PageMask), float64(probes) * hashedProbeCycles, true
	}
	w := b.peek(va)
	return w.HPA, w.Cost, w.OK
}

func (b *hashedBackend) Flush() {
	b.tlb.Flush()
	b.ht.Flush()
}

func (b *hashedBackend) Counters() Counters { return b.cnt }

func (b *hashedBackend) SetTracer(t *trace.Tracer) {
	b.wm.T = t
	b.tlb.SetTracer(t)
}

func (b *hashedBackend) Close() {
	b.guest.RemoveObserver((*hashedGuestWatch)(b))
	if b.host != nil {
		b.host.RemoveObserver((*hashedHostWatch)(b))
	}
}
