package translation

import (
	"repro/internal/hw/tlb"
	"repro/internal/hw/walker"
	"repro/internal/mem/addr"
	"repro/internal/osim/pagetable"
	"repro/internal/trace"
	"repro/internal/virt"
	"repro/internal/workloads"
)

// core is the radix-walk machinery every backend falls back on: the
// (memoized) native or nested page walk, priced through the walk
// meter. It holds no fast-path state of its own — backends layer their
// TLBs, ranges, segments, and hashed tables in front of it.
type core struct {
	env *workloads.Env
	wc  *walkCache
	wm  walker.Meter
}

func newCore(env *workloads.Env, noWalkCache bool) core {
	c := core{env: env}
	if !noWalkCache {
		if env.VM != nil {
			c.wc = newWalkCache(env.VM.NestedTables(env.Proc))
		} else {
			c.wc = newWalkCache(env.Proc.PT, nil)
		}
	}
	return c
}

// translate performs the baseline walk for va through the walk cache:
// a hot miss is one array probe; only cold or invalidated VPNs pay the
// full trie descent of resolve.
func (c *core) translate(va addr.VirtAddr) Walk {
	if c.wc == nil {
		return c.resolve(va)
	}
	vpn := uint64(va) >> addr.PageShift
	if e, hit := c.wc.probe(vpn); hit {
		return Walk{
			HPA:      e.hpa + addr.PhysAddr(uint64(va)&addr.PageMask),
			Cost:     e.cost,
			LeafHuge: e.leafHuge,
			GContig:  e.gContig,
			HContig:  e.hContig,
			OK:       true,
		}
	}
	w := c.resolve(va)
	if w.OK {
		// The in-page offset of HPA equals va's: caching the page-base
		// hPA makes the entry valid for every offset within the VPN.
		c.wc.fill(vpn, w.HPA-addr.PhysAddr(uint64(va)&addr.PageMask), w.LeafHuge, w.Cost, w.GContig, w.HContig)
	}
	return w
}

// resolve performs the baseline translation for va: a nested walk in a
// VM, a native walk otherwise. The native case reports the single PTE
// contiguity bit in both positions. Costs route through the walk meter
// so every priced walk becomes a trace span.
func (c *core) resolve(va addr.VirtAddr) Walk {
	env := c.env
	if env.VM != nil {
		w := env.VM.Walk(env.Proc, va)
		if !w.OK {
			return Walk{}
		}
		return Walk{
			HPA:      w.HPA,
			Cost:     c.wm.Nested(va, w),
			LeafHuge: w.GuestLevel == pagetable.HugeLevel && w.HostLevel == pagetable.HugeLevel,
			GContig:  w.GuestContig,
			HContig:  w.HostContig,
			OK:       true,
		}
	}
	pte, level, _, okWalk := env.Proc.PT.Walk(va)
	if !okWalk {
		return Walk{}
	}
	span := uint64(addr.PageSize)
	if level == pagetable.HugeLevel {
		span = addr.HugeSize
	}
	contig := pte.Flags.Has(pagetable.Contig)
	return Walk{
		HPA:      pte.PFN.Addr() + addr.PhysAddr(uint64(va)&(span-1)),
		Cost:     c.wm.Native(va, level),
		LeafHuge: level == pagetable.HugeLevel,
		GContig:  contig,
		HContig:  contig,
		OK:       true,
	}
}

// peek is resolve without side effects: no walk-cache fill, no trace
// span. It backs the Resolve probe of every backend.
func (c *core) peek(va addr.VirtAddr) Walk {
	env := c.env
	if env.VM != nil {
		w := env.VM.Walk(env.Proc, va)
		if !w.OK {
			return Walk{}
		}
		return Walk{
			HPA:      w.HPA,
			Cost:     walker.NestedCost(w),
			LeafHuge: w.GuestLevel == pagetable.HugeLevel && w.HostLevel == pagetable.HugeLevel,
			GContig:  w.GuestContig,
			HContig:  w.HostContig,
			OK:       true,
		}
	}
	pte, level, _, okWalk := env.Proc.PT.Walk(va)
	if !okWalk {
		return Walk{}
	}
	span := uint64(addr.PageSize)
	if level == pagetable.HugeLevel {
		span = addr.HugeSize
	}
	contig := pte.Flags.Has(pagetable.Contig)
	return Walk{
		HPA:      pte.PFN.Addr() + addr.PhysAddr(uint64(va)&(span-1)),
		Cost:     walker.NativeCost(level),
		LeafHuge: level == pagetable.HugeLevel,
		GContig:  contig,
		HContig:  contig,
		OK:       true,
	}
}

// pagedBackend is the paper's baseline stack: L2 TLB in front of the
// memoized radix walk, with optional shadow paging for virtualized
// environments. It needs no mapping-event subscription — the walk
// cache self-invalidates on table generations, and the TLB (like real
// hardware without shootdowns) may carry stale *presence* but never
// serves physical addresses.
type pagedBackend struct {
	core
	tlb        *tlb.TLB
	shadow     *virt.ShadowTable
	shadowExit float64
	cnt        Counters
}

func newPaged(env *workloads.Env, cfg Config) *pagedBackend {
	b := &pagedBackend{
		core:       newCore(env, cfg.NoWalkCache),
		tlb:        tlb.New(cfg.TLBEntries, cfg.TLBWays),
		shadowExit: cfg.ShadowExitCycles,
	}
	if cfg.ShadowPaging && env.VM != nil {
		b.shadow = env.VM.NewShadow(env.Proc)
	}
	b.SetTracer(cfg.Tracer)
	return b
}

func (b *pagedBackend) Name() string { return BackendPaged }

func (b *pagedBackend) Lookup(va addr.VirtAddr) bool {
	b.cnt.Lookups++
	if b.tlb.Lookup(va) {
		b.cnt.Hits++
		return true
	}
	b.cnt.Misses++
	return false
}

func (b *pagedBackend) Translate(va addr.VirtAddr) Walk {
	w := b.translate(va)
	if b.shadow != nil {
		if shpa, lvl, synced, sok := b.shadow.Walk(va); sok {
			w.HPA, w.OK = shpa, true
			w.LeafHuge = lvl == pagetable.HugeLevel
			w.Cost = walker.NativeCost(lvl)
			if synced {
				w.Cost += b.shadowExit
				w.ShadowSynced = true
			}
		}
	}
	return w
}

func (b *pagedBackend) Insert(va addr.VirtAddr, w Walk) {
	b.tlb.Insert(va, w.LeafHuge)
}

// Resolve reports the baseline radix translation. In shadow-paging
// mode the shadow overlay is deliberately not consulted: shadow walks
// install entries (they mutate), and the shadow never diverges from
// the composed translation it shadows.
func (b *pagedBackend) Resolve(va addr.VirtAddr) (addr.PhysAddr, float64, bool) {
	w := b.peek(va)
	return w.HPA, w.Cost, w.OK
}

func (b *pagedBackend) Flush() {
	b.tlb.Flush()
	if b.wc != nil {
		b.wc.flush()
	}
}

func (b *pagedBackend) Counters() Counters { return b.cnt }

func (b *pagedBackend) SetTracer(t *trace.Tracer) {
	b.wm.T = t
	b.tlb.SetTracer(t)
}

func (b *pagedBackend) Close() {}

// Shadow exposes the shadow table (sim reads SyncExits; nil without
// ShadowPaging).
func (b *pagedBackend) Shadow() *virt.ShadowTable { return b.shadow }

// WalkCacheStats reports the memo's hit/fill counters (benchmarks).
func (b *pagedBackend) WalkCacheStats() (hits, fills uint64) {
	if b.wc == nil {
		return 0, 0
	}
	return b.wc.Hits, b.wc.Fills
}
