package translation

import (
	"testing"

	"repro/internal/mem/addr"
	"repro/internal/mem/zone"
	"repro/internal/osim"
	"repro/internal/workloads"
)

func nativeEnv(t testing.TB) *workloads.Env {
	t.Helper()
	m := zone.NewMachine(zone.Config{ZonePages: []uint64{
		16 * addr.MaxOrderPages, 16 * addr.MaxOrderPages,
	}})
	k := osim.NewKernel(m, osim.CAPolicy{})
	return workloads.NewNativeEnv(k, 0)
}

func TestNewUnknownBackend(t *testing.T) {
	if _, err := New("no-such", nativeEnv(t), Config{}); err == nil {
		t.Fatal("unknown backend accepted")
	}
	be, err := New("", nativeEnv(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	if be.Name() != BackendPaged {
		t.Fatalf("empty name resolved to %q, want paged", be.Name())
	}
}

// TestDSFallbackAgreement is the Direct-Segments property: outside the
// segment's coverage the backend *is* the paged backend — Resolve must
// agree with a reference paged backend on ok, physical address, and
// cycle cost for every probe — while covered addresses translate to
// the same physical address by base+offset at zero cost. The layout
// forces all three probe classes (covered, mapped-but-uncovered,
// unmapped), and the second half unmaps the segment's backing VMA so
// agreement must also hold across the dirty/rebuild transition.
func TestDSFallbackAgreement(t *testing.T) {
	env := nativeEnv(t)
	env.Kernel.THPEnabled = false

	// VMA A: fully populated — under CA placement this yields one large
	// contiguous mapping, which becomes the segment. VMA B: every third
	// page touched, so its mappings stay small and uncovered.
	a, err := env.MMap(512 * addr.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Populate(a); err != nil {
		t.Fatal(err)
	}
	b, err := env.MMap(256 * addr.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 256; i += 3 {
		if err := env.Touch(b.Start.Add(i*addr.PageSize), true); err != nil {
			t.Fatal(err)
		}
	}

	dsBE, err := New(BackendDS, env, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer dsBE.Close()
	pagedBE, err := New(BackendPaged, env, Config{NoWalkCache: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pagedBE.Close()
	d := dsBE.(*dsBackend)

	var probes []addr.VirtAddr
	for i := uint64(0); i < 512; i += 7 {
		probes = append(probes, a.Start.Add(i*addr.PageSize))
	}
	for i := uint64(0); i < 256; i++ {
		probes = append(probes, b.Start.Add(i*addr.PageSize))
	}
	probes = append(probes, addr.VirtAddr(1)<<40)

	agree := func(stage string) (covered, uncoveredMapped int) {
		t.Helper()
		for _, va := range probes {
			dpa, dcost, dok := dsBE.Resolve(va)
			ppa, pcost, pok := pagedBE.Resolve(va)
			if !d.watch.dirty && d.seg.Covers(va) {
				if !dok || !pok {
					t.Fatalf("%s: covered %s not resolvable (ds ok=%v paged ok=%v)", stage, va, dok, pok)
				}
				if dpa != ppa {
					t.Fatalf("%s: covered %s: segment says %s, paged walk says %s", stage, va, dpa, ppa)
				}
				if dcost != 0 {
					t.Fatalf("%s: covered %s charged %v cycles, want 0", stage, va, dcost)
				}
				covered++
				continue
			}
			if dok != pok || dpa != ppa || dcost != pcost {
				t.Fatalf("%s: uncovered %s: ds (pa %s cost %v ok %v) != paged (pa %s cost %v ok %v)",
					stage, va, dpa, dcost, dok, ppa, pcost, pok)
			}
			if pok {
				uncoveredMapped++
			}
		}
		return covered, uncoveredMapped
	}

	covered, uncovered := agree("initial")
	if covered == 0 || uncovered == 0 {
		t.Fatalf("layout vacuous: %d covered, %d uncovered-mapped probes", covered, uncovered)
	}

	// Unmap the segment's backing VMA: the watch goes dirty, Resolve
	// must fall back to the live tables immediately, and the next
	// Translate rebuilds the segment over what remains.
	env.Proc.MUnmap(a)
	if !d.watch.dirty {
		t.Fatal("unmap did not dirty the segment watch")
	}
	agree("dirty")
	rebuilds := d.Rebuilds
	d.Translate(b.Start)
	if d.Rebuilds != rebuilds+1 {
		t.Fatalf("Translate after churn did not rebuild the segment (rebuilds %d)", d.Rebuilds)
	}
	if covered, _ := agree("rebuilt"); covered == 0 {
		t.Fatal("rebuilt segment covers nothing mapped")
	}
	for _, va := range probes[:8] {
		if d.seg.Covers(va) {
			t.Fatalf("rebuilt segment still covers unmapped %s", va)
		}
	}
}

// TestWalkCacheCorruptionDetected pins the paged backend's staleness
// observables, the counterpart of the detach-based corruption test the
// derived-state backends get in internal/check. A hand-corrupted memo
// entry is served verbatim while the table generations stand still —
// and the divergence is exactly what a differ comparing the memoized
// translate against the live tables (peek) must catch. Any table
// mutation then moves the generation and the corrupt entry dies, which
// is the self-invalidation that makes the memo safe without observer
// events.
func TestWalkCacheCorruptionDetected(t *testing.T) {
	env := nativeEnv(t)
	env.Kernel.THPEnabled = false
	v, err := env.MMap(64 * addr.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Populate(v); err != nil {
		t.Fatal(err)
	}
	be, err := New(BackendPaged, env, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	p := be.(*pagedBackend)

	va := v.Start.Add(5 * addr.PageSize)
	w := p.Translate(va)
	if !w.OK {
		t.Fatal("populated page failed to translate")
	}

	vpn := uint64(va) >> addr.PageShift
	e := &p.wc.entries[vpn&p.wc.mask]
	if !e.valid || e.vpn != vpn {
		t.Fatal("memo entry for the translated VPN missing")
	}
	e.hpa += addr.PageSize // inject stale-translation corruption

	got := p.Translate(va)
	want := p.peek(va)
	if got.HPA == want.HPA {
		t.Fatal("corrupt memo entry was not served — corruption test is vacuous")
	}
	if got.HPA != want.HPA+addr.PageSize {
		t.Fatalf("translate = %s, want the injected %s", got.HPA, want.HPA+addr.PageSize)
	}

	// Any table mutation moves the generation; the corrupt entry must
	// never be served again.
	if _, _, ok := env.Proc.PT.Unmap(v.Start); !ok {
		t.Fatal("unmap failed")
	}
	got = p.Translate(va)
	if !got.OK || got.HPA != want.HPA {
		t.Fatalf("generation bump did not kill the corrupt entry: got %s ok=%v, want %s", got.HPA, got.OK, want.HPA)
	}
}
