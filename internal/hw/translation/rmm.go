package translation

import (
	"repro/internal/hw/rmm"
	"repro/internal/hw/tlb"
	"repro/internal/mem/addr"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// rmmBackend runs vRMM as the primary mechanism: TLB misses probe the
// RangeTLB backed by the full 2D range table; range-covered misses are
// served at zero visible walk cost (the paper's background range-walk
// assumption), and only uncovered addresses fall back to the paged
// radix walk. Mapping-change events dirty the derived state; the next
// slow-path access rebuilds the range table and flushes the RangeTLB,
// so a stale range can never translate an access.
type rmmBackend struct {
	core
	tlb   *tlb.TLB
	rt    *rmm.RangeTLB
	rtab  *rmm.Table
	watch *mapWatch
	cnt   Counters

	// Rebuilds counts range-table reconstructions (tests).
	Rebuilds uint64
}

func newRMM(env *workloads.Env, cfg Config) *rmmBackend {
	b := &rmmBackend{
		core:  newCore(env, cfg.NoWalkCache),
		tlb:   tlb.New(cfg.TLBEntries, cfg.TLBWays),
		rt:    rmm.NewRangeTLB(cfg.RangeTLBEntries),
		rtab:  rmm.NewTable(ExtractMappings(env)),
		watch: watchTables(env),
	}
	b.SetTracer(cfg.Tracer)
	return b
}

func (b *rmmBackend) Name() string { return BackendRMM }

func (b *rmmBackend) Lookup(va addr.VirtAddr) bool {
	b.cnt.Lookups++
	if b.tlb.Lookup(va) {
		b.cnt.Hits++
		return true
	}
	b.cnt.Misses++
	return false
}

// sync rebuilds the derived range state if mappings changed since the
// last slow-path access. The RangeTLB flush is load-bearing: cached
// ranges carry offsets, and a migrated or unmapped extent must not
// translate through a pre-rebuild entry (TestRangeTLBRebuildFlush).
func (b *rmmBackend) sync() {
	if !b.watch.dirty {
		return
	}
	b.watch.dirty = false
	b.rtab = rmm.NewTable(ExtractMappings(b.env))
	b.rt.Flush()
	b.Rebuilds++
}

func (b *rmmBackend) Translate(va addr.VirtAddr) Walk {
	b.sync()
	if pa, covered := b.rt.Lookup(va, b.rtab); covered {
		// Served by a range: the nested range-table walk is hidden in
		// the background, so no visible cycle cost accrues.
		return Walk{HPA: pa, OK: true}
	}
	return b.translate(va)
}

func (b *rmmBackend) Insert(va addr.VirtAddr, w Walk) {
	b.tlb.Insert(va, w.LeafHuge)
}

// Resolve consults the range table only while it is known-fresh: with
// a rebuild pending, the radix walk is the current truth and the probe
// must not mutate, so it peeks the tables directly.
func (b *rmmBackend) Resolve(va addr.VirtAddr) (addr.PhysAddr, float64, bool) {
	if !b.watch.dirty {
		if rng, ok := b.rtab.Find(va); ok {
			return rng.Offset.Target(va), 0, true
		}
	}
	w := b.peek(va)
	return w.HPA, w.Cost, w.OK
}

func (b *rmmBackend) Flush() {
	b.tlb.Flush()
	b.rt.Flush()
	if b.wc != nil {
		b.wc.flush()
	}
}

func (b *rmmBackend) Counters() Counters { return b.cnt }

func (b *rmmBackend) SetTracer(t *trace.Tracer) {
	b.wm.T = t
	b.tlb.SetTracer(t)
}

func (b *rmmBackend) Close() { b.watch.close() }
