package translation

import (
	"repro/internal/mem/addr"
	"repro/internal/osim/pagetable"
)

// walkCacheEntries sizes the direct-mapped walk memo. Power of two so
// the VPN index is a mask; 64K entries cover the largest scaled
// workload footprint (BT: ~120K base pages) with acceptable conflict
// rates at ~3.5 MB per running simulation.
const walkCacheEntries = 1 << 16

// walkEntry is one memoized leaf translation, keyed by 4K VPN. It
// stores the composed result of the baseline walk — the hPA of the 4K
// page, the effective leaf size, the walk's cycle cost, and the two
// contiguity bits — plus the table generations it was filled under.
type walkEntry struct {
	vpn        uint64
	genG, genH uint64
	hpa        addr.PhysAddr // hPA of the 4K page containing the VPN
	cost       float64
	leafHuge   bool
	gContig    bool
	hContig    bool
	valid      bool
}

// walkCache memoizes resolve results in front of the page-table trie —
// the simulator-side equivalent of the MMU's paging-structure caches
// (§II): a hot miss costs one array index instead of up to 8 trie
// descents (two 4-level walks in the nested case). Entries
// self-invalidate when either backing table's generation moves, so
// map/unmap/SetContig/migration during a run can never serve a stale
// translation.
type walkCache struct {
	entries []walkEntry
	mask    uint64
	guest   *pagetable.Table // the walked table (guest PT, or native PT)
	host    *pagetable.Table // nested second dimension; nil when native

	// Hits and Fills instrument cache effectiveness (benchmarks).
	Hits, Fills uint64
}

// newWalkCache builds a cache over the environment's table(s).
func newWalkCache(guest, host *pagetable.Table) *walkCache {
	return &walkCache{
		entries: make([]walkEntry, walkCacheEntries),
		mask:    walkCacheEntries - 1,
		guest:   guest,
		host:    host,
	}
}

// probe returns the memoized entry for vpn if it is still valid under
// the current table generations.
func (c *walkCache) probe(vpn uint64) (walkEntry, bool) {
	e := &c.entries[vpn&c.mask]
	if !e.valid || e.vpn != vpn || e.genG != c.guest.Generation() {
		return walkEntry{}, false
	}
	if c.host != nil && e.genH != c.host.Generation() {
		return walkEntry{}, false
	}
	c.Hits++
	return *e, true
}

// fill memoizes a freshly walked translation under the current
// generations. hpaPage must be the hPA of the 4K page (offset bits
// cleared); probe hits re-add the in-page offset.
func (c *walkCache) fill(vpn uint64, hpaPage addr.PhysAddr, leafHuge bool, cost float64, gContig, hContig bool) {
	var genH uint64
	if c.host != nil {
		genH = c.host.Generation()
	}
	c.entries[vpn&c.mask] = walkEntry{
		vpn:      vpn,
		genG:     c.guest.Generation(),
		genH:     genH,
		hpa:      hpaPage,
		cost:     cost,
		leafHuge: leafHuge,
		gContig:  gContig,
		hContig:  hContig,
		valid:    true,
	}
	c.Fills++
}

// flush invalidates every entry in place (no reallocation).
func (c *walkCache) flush() {
	for i := range c.entries {
		c.entries[i].valid = false
	}
}
