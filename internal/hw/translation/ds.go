package translation

import (
	"repro/internal/hw/ds"
	"repro/internal/hw/tlb"
	"repro/internal/mem/addr"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// dsBackend runs Direct Segments as the primary mechanism: one
// hardware segment translates its covered span by pure base+offset —
// no TLB fill, no walk — and everything outside it pays the normal
// paged path. Where sim's scheme emulation sizes a segment over the
// whole virtual extent (coverage accounting only), this backend must
// return real physical addresses, so the segment is the largest
// single contiguous mapping: every address inside it translates
// exactly, matching what DS hardware backed by an eagerly reserved
// extent would serve. Mapping churn dirties the segment; the next
// probe rebuilds it.
type dsBackend struct {
	core
	tlb   *tlb.TLB
	seg   *ds.Segment
	watch *mapWatch
	cnt   Counters

	// Rebuilds counts segment reconstructions (tests).
	Rebuilds uint64
}

func newDS(env *workloads.Env, cfg Config) *dsBackend {
	b := &dsBackend{
		core:  newCore(env, cfg.NoWalkCache),
		tlb:   tlb.New(cfg.TLBEntries, cfg.TLBWays),
		watch: watchTables(env),
	}
	b.seg = largestSegment(ExtractMappings(env))
	b.SetTracer(cfg.Tracer)
	return b
}

// largestSegment picks the biggest contiguous mapping as the segment —
// the extent an eager reservation would have pinned.
func largestSegment(ms []metrics.Mapping) *ds.Segment {
	best := -1
	for i := range ms {
		if best < 0 || ms[i].Pages > ms[best].Pages {
			best = i
		}
	}
	if best < 0 {
		return ds.NewSegment(0, 0, 0)
	}
	m := ms[best]
	return ds.NewSegment(m.VA, m.Pages*uint64(addr.PageSize), m.Offset())
}

func (b *dsBackend) Name() string { return BackendDS }

func (b *dsBackend) sync() {
	if !b.watch.dirty {
		return
	}
	b.watch.dirty = false
	b.seg = largestSegment(ExtractMappings(b.env))
	b.Rebuilds++
}

// Lookup probes TLB and segment in parallel, like the hardware: the
// segment's base+offset check is itself the translation, so a covered
// access is a hit even on TLB miss, and never fills the TLB. The TLB
// probe runs unconditionally — its miss accounting (and trace events)
// reflect every access the paged structures saw go by.
func (b *dsBackend) Lookup(va addr.VirtAddr) bool {
	b.cnt.Lookups++
	b.sync()
	hit := b.tlb.Lookup(va)
	if b.seg.Covers(va) {
		b.seg.Hits++
		b.cnt.Hits++
		return true
	}
	b.seg.Misses++
	if hit {
		b.cnt.Hits++
		return true
	}
	b.cnt.Misses++
	return false
}

func (b *dsBackend) Translate(va addr.VirtAddr) Walk {
	b.sync()
	if b.seg.Covers(va) {
		// Reachable only through a direct Translate (the loop's Lookup
		// already serves covered addresses); priced like the hit it is.
		return Walk{HPA: b.seg.Offset.Target(va), OK: true}
	}
	return b.translate(va)
}

func (b *dsBackend) Insert(va addr.VirtAddr, w Walk) {
	if b.seg.Covers(va) {
		return // segment accesses bypass the TLB
	}
	b.tlb.Insert(va, w.LeafHuge)
}

// Resolve mirrors Lookup/Translate without mutating: segment targets
// while the segment is known-fresh, the radix peek otherwise.
func (b *dsBackend) Resolve(va addr.VirtAddr) (addr.PhysAddr, float64, bool) {
	if !b.watch.dirty && b.seg.Covers(va) {
		return b.seg.Offset.Target(va), 0, true
	}
	w := b.peek(va)
	return w.HPA, w.Cost, w.OK
}

func (b *dsBackend) Flush() {
	b.tlb.Flush()
	if b.wc != nil {
		b.wc.flush()
	}
}

func (b *dsBackend) Counters() Counters { return b.cnt }

func (b *dsBackend) SetTracer(t *trace.Tracer) {
	b.wm.T = t
	b.tlb.SetTracer(t)
}

func (b *dsBackend) Close() { b.watch.close() }
