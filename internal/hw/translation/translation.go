// Package translation defines the pluggable translation-backend
// interface behind sim's access loop, in the spirit of Virtuoso's
// modular translation lab: many mechanisms, one loop, one cost
// currency (walk cycles). The default backend is the paper's stack —
// an L2 TLB in front of the (memoized) native/nested radix walk, with
// optional shadow paging — and three alternates reuse the hardware
// seeds: an RMM-style range table + RangeTLB, Direct Segments with
// paged fallback, and a hashed/flattened page table.
//
// Backends that derive state from the mappings (range tables, the
// segment, the hashed mirror) subscribe to pagetable.Observer events,
// so invalidation is exact: every map/unmap/promotion/migration/CoW
// remap the kernel performs routes through Map4K/Map2M/Unmap/Redirect
// and therefore reaches the backend synchronously. DESIGN.md §13
// documents the contract.
package translation

import (
	"fmt"

	"repro/internal/mem/addr"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Backend names, in presentation order.
const (
	BackendPaged  = "paged"  // TLB + native/nested radix walk (the paper's baseline)
	BackendHashed = "hashed" // hashed/flattened page table, radix fill on miss
	BackendRMM    = "rmm"    // range table + RangeTLB, paged fallback when uncovered
	BackendDS     = "ds"     // direct segment, paged fallback outside it
)

// Names returns every backend name in presentation order.
func Names() []string {
	return []string{BackendPaged, BackendHashed, BackendRMM, BackendDS}
}

// Walk is one backend translation outcome: what the access loop needs
// to account an access and fill its TLB.
type Walk struct {
	// HPA is the final (host-)physical address of the access.
	HPA addr.PhysAddr
	// Cost is the translation's cycle cost under the backend's model.
	Cost float64
	// LeafHuge reports a 2 MiB effective leaf (TLB fill size).
	LeafHuge bool
	// GContig/HContig are the leaf contiguity bits (native walks report
	// the single PTE bit in both). Only the paged backend's consumers
	// (SpOT) read them.
	GContig, HContig bool
	// ShadowSynced reports that this translation took a shadow-paging
	// synchronisation exit (paged backend with Config.ShadowPaging).
	ShadowSynced bool
	// OK is false when the address is unbacked: the caller must fault
	// and retry.
	OK bool
}

// Counters is a backend's self-consistent probe accounting: Lookups
// counts Lookup calls, each of which is exactly one Hit or one Miss.
// All three are monotone; the differential net asserts both invariants.
type Counters struct {
	Lookups, Hits, Misses uint64
}

// Backend is one translation mechanism under sim's access loop. The
// loop calls, per access: Lookup — on false, Translate, a possible
// fault-retry, then Insert. The steady-state path (Lookup hit, or
// Translate without fault) must not allocate: the zero-alloc contract
// of the access loop extends to every backend (TestRunZeroAllocs).
//
// Implementations attach themselves to the environment's page tables
// at construction where they need mapping-change events; Close
// detaches them. A backend is single-goroutine, like the machine that
// owns it.
type Backend interface {
	// Name returns the backend's registry name.
	Name() string
	// Lookup probes the backend's fast path (TLB, segment) for va,
	// counting one Lookup and one Hit or Miss. A true return means the
	// access is fully served; false means the loop pays Translate.
	Lookup(va addr.VirtAddr) bool
	// Translate resolves va on the slow path. Walk.OK false means the
	// address is unbacked; after a successful demand fault the caller
	// retries.
	Translate(va addr.VirtAddr) Walk
	// Insert caches a successful Translate result for va on the fast
	// path (typically a TLB fill).
	Insert(va addr.VirtAddr, w Walk)
	// Resolve is the non-mutating probe: the PA and cycle cost the
	// backend would serve for va right now, without touching counters,
	// LRU state, or caches. It is the differential-test observable and
	// the perfmodel cost hook.
	Resolve(va addr.VirtAddr) (addr.PhysAddr, float64, bool)
	// Flush drops all cached translation state (TLB, range TLB, hashed
	// entries); derived tables are rebuilt on demand.
	Flush()
	// Counters returns the accumulated probe accounting.
	Counters() Counters
	// SetTracer attaches (nil: detaches) a tracer to the backend's
	// hardware components.
	SetTracer(t *trace.Tracer)
	// Close detaches the backend from the environment's page tables.
	// The backend must not be used afterwards.
	Close()
}

// Config carries the hardware parameters backends consume. Zero fields
// default to the paper's scaled Table II values (see sim.Config).
type Config struct {
	TLBEntries, TLBWays int
	RangeTLBEntries     int
	// NoWalkCache disables the radix walk memo of the paged core.
	NoWalkCache bool
	// ShadowPaging/ShadowExitCycles configure the paged backend's
	// shadow-paging mode (virtualized environments only).
	ShadowPaging     bool
	ShadowExitCycles float64
	Tracer           *trace.Tracer
}

func (c Config) withDefaults() Config {
	if c.TLBEntries == 0 {
		c.TLBEntries = 32
	}
	if c.TLBWays == 0 {
		c.TLBWays = 4
	}
	if c.RangeTLBEntries == 0 {
		c.RangeTLBEntries = 32
	}
	if c.ShadowExitCycles == 0 {
		c.ShadowExitCycles = 1200
	}
	return c
}

// New builds the named backend over env. The empty name selects the
// default paged backend. env must already be set up (populated) —
// backends that derive state from the mappings extract them eagerly.
func New(name string, env *workloads.Env, cfg Config) (Backend, error) {
	cfg = cfg.withDefaults()
	switch name {
	case "", BackendPaged:
		return newPaged(env, cfg), nil
	case BackendHashed:
		return newHashed(env, cfg), nil
	case BackendRMM:
		return newRMM(env, cfg), nil
	case BackendDS:
		return newDS(env, cfg), nil
	}
	return nil, fmt.Errorf("translation: unknown backend %q (have %v)", name, Names())
}

// ExtractMappings pulls the current contiguous mappings of the
// environment's process: full 2D (gVA→hPA) mappings in a VM, native
// mappings otherwise. Range tables and segments are derived from them.
func ExtractMappings(env *workloads.Env) []metrics.Mapping {
	if env.VM != nil {
		return env.VM.Mappings2D(env.Proc)
	}
	return metrics.FromPageTable(env.Proc.PT)
}
