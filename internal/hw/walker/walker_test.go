package walker

import (
	"math"
	"testing"

	"repro/internal/virt"
)

func TestDefaultCosts(t *testing.T) {
	c := DefaultCosts()
	// Nested THP walk ~81 cycles (paper's measured average).
	if math.Abs(c.Nested2M2M-81) > 5 {
		t.Fatalf("Nested2M2M = %f, want ~81", c.Nested2M2M)
	}
	// Nested 4K: 24 refs, the canonical worst case.
	if math.Abs(c.Nested4K4K-24*CyclesPerRef) > 1e-9 {
		t.Fatalf("Nested4K4K = %f", c.Nested4K4K)
	}
	// Ordering: nested > native, 4K > 2M.
	if !(c.Nested4K4K > c.Nested2M2M && c.Nested2M2M > c.Native2M && c.Native4K > c.Native2M) {
		t.Fatalf("cost ordering violated: %+v", c)
	}
}

func TestNativeCost(t *testing.T) {
	if NativeCost(0) <= NativeCost(1) {
		t.Fatal("4K walk should cost more than 2M walk")
	}
	c := DefaultCosts()
	if NativeCost(0) != c.Native4K || NativeCost(1) != c.Native2M {
		t.Fatal("native costs disagree with DefaultCosts")
	}
}

func TestNestedCostFromWalk(t *testing.T) {
	w := virt.NestedWalk{Refs: 15, OK: true}
	if NestedCost(w) != 15*CyclesPerRef {
		t.Fatal("NestedCost wrong")
	}
}

func TestNestedCostForLevels(t *testing.T) {
	// 4K/4K: g=4, h=4 -> 24 refs. 2M/2M: g=3,h=3 -> 15 refs.
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-6 }
	if !approx(NestedCostForLevels(0, 0, 4), 24*CyclesPerRef) {
		t.Fatal("4K/4K nested cost wrong")
	}
	if !approx(NestedCostForLevels(1, 1, 4), 15*CyclesPerRef) {
		t.Fatal("2M/2M nested cost wrong")
	}
	// Mixed: 2M guest over 4K host: (3+1)*(4+1)-1 = 19.
	if !approx(NestedCostForLevels(1, 0, 4), 19*CyclesPerRef) {
		t.Fatal("2M/4K nested cost wrong")
	}
	// 5-level (LA57): the geometry must not be hardcoded to 4 levels.
	// 4K/4K at depth 5: (5+1)*(5+1)-1 = 35 refs (intro's motivation).
	if !approx(NestedCostForLevels(0, 0, 5), 35*CyclesPerRef) {
		t.Fatal("5-level 4K/4K nested cost wrong")
	}
	if !approx(NestedCostForLevels(1, 1, 5), 24*CyclesPerRef) {
		t.Fatal("5-level 2M/2M nested cost wrong")
	}
}

func TestCostsForDepth(t *testing.T) {
	if CostsForDepth(4) != DefaultCosts() {
		t.Fatal("depth-4 costs must equal the defaults")
	}
	c5 := CostsForDepth(5)
	if !(c5.Nested4K4K > DefaultCosts().Nested4K4K && c5.Nested2M2M > DefaultCosts().Nested2M2M) {
		t.Fatalf("5-level nested walks must cost more: %+v", c5)
	}
}
