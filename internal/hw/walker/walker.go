// Package walker models page-walk latency: the average cycle cost of
// native (1D) and nested (2D) walks as a function of the table levels
// touched, with an MMU-cache discount folded into a per-reference
// latency. The constants reproduce the averages the paper measures
// (§VI-B: "the average page walk latency is ~81 cycles" for nested THP)
// and the methodology's Table IV model consumes them as AvgC values.
package walker

import (
	"repro/internal/mem/addr"
	"repro/internal/trace"
	"repro/internal/virt"
)

// CyclesPerRef is the effective cost of one page-table reference after
// MMU caching (paging-structure caches hit the upper levels, so the
// blended per-reference cost is a few cycles).
const CyclesPerRef = 5.4

// Native walk reference counts by leaf level.
const (
	refsNative4K = 4 // PGD, PUD, PMD, PT
	refsNative2M = 3 // PGD, PUD, PMD
)

// Native average walk costs (cycles). Unlike the nested costs, these
// are not pure refs×latency: at big-memory footprints the
// paging-structure caches and the data-cache residency of PTEs degrade,
// so we use averages in line with measured native walks on Broadwell
// rather than the optimistic refs-only product.
const (
	nativeAvg4K = 45.0
	nativeAvg2M = 35.0
)

// Costs holds the average walk costs (cycles) the performance model
// uses. Zero values mean "unmeasured".
type Costs struct {
	Native4K float64
	Native2M float64
	// Nested costs are computed from the 2D reference structure
	// (g+1)*(h+1)-1.
	Nested4K4K float64 // 4K guest leaf over 4K host leaf: 24 refs
	Nested2M2M float64 // 2M over 2M: 15 refs
}

// DefaultCosts returns the model constants for today's 4-level tables.
func DefaultCosts() Costs { return CostsForDepth(4) }

// CostsForDepth returns the model constants for a given table depth
// (4 = x86-64, 5 = LA57): the nested costs follow the (g+1)*(h+1)-1
// reference structure at that depth.
func CostsForDepth(depth int) Costs {
	return Costs{
		Native4K:   nativeAvg4K,
		Native2M:   nativeAvg2M,
		Nested4K4K: NestedCostForLevels(0, 0, depth), // 24 refs at depth 4
		Nested2M2M: NestedCostForLevels(1, 1, depth), // 15 refs at depth 4
	}
}

// NativeCost returns the walk cost for a native walk with the given
// leaf level (0 = 4K, 1 = 2M).
func NativeCost(level int) float64 {
	if level == 1 {
		return nativeAvg2M
	}
	return nativeAvg4K
}

// NestedCost returns the walk cost of a nested walk result, derived
// from its actual reference count.
func NestedCost(w virt.NestedWalk) float64 {
	return float64(w.Refs) * CyclesPerRef
}

// Meter wraps the cost functions with walk-span emission: every priced
// walk becomes an EvWalkNative/EvWalk2D span whose duration is the
// model cycle cost (truncated to integer cycles for the trace; the
// returned cost keeps full precision). Meter is the single emitter of
// walk spans — the virt layer contributes the nested-fault instants,
// but the 2D walk composition is instrumented here, where it is
// priced. A zero Meter (nil T) prices without tracing.
type Meter struct {
	T *trace.Tracer
}

// Native prices a native walk for va with the given leaf level and
// emits its span (args: va, level, refs).
func (m Meter) Native(va addr.VirtAddr, level int) float64 {
	c := NativeCost(level)
	if m.T != nil {
		refs := uint64(refsNative4K)
		if level == 1 {
			refs = refsNative2M
		}
		m.T.EmitDur(trace.EvWalkNative, uint64(c), uint64(va), uint64(level), refs)
	}
	return c
}

// Nested prices a nested walk and emits its span (args: va, refs,
// guest/host leaf levels packed guest<<8|host).
func (m Meter) Nested(va addr.VirtAddr, w virt.NestedWalk) float64 {
	c := NestedCost(w)
	if m.T != nil {
		levels := uint64(w.GuestLevel)<<8 | uint64(w.HostLevel)
		m.T.EmitDur(trace.EvWalk2D, uint64(c), uint64(va), uint64(w.Refs), levels)
	}
	return c
}

// NestedCostForLevels returns the nested walk cost for given guest and
// host leaf levels without a concrete walk (used by analytic sweeps).
// depth is the page-table depth of both dimensions (4 for x86-64, 5
// for LA57): a 4K leaf in a depth-d table touches d levels, a 2M leaf
// d-1, and the nested structure multiplies to (g+1)*(h+1)-1 references
// — 24 at depth 4, 35 at depth 5, the deepening the paper's
// introduction cites as a coming cost multiplier.
func NestedCostForLevels(guestLevel, hostLevel, depth int) float64 {
	g := depth - guestLevel
	h := depth - hostLevel
	return float64((g+1)*(h+1)-1) * CyclesPerRef
}
