// Package spot implements SpOT, the paper's hardware contribution
// (§IV): Speculative Offset-based Address Translation. A small
// PC-indexed, set-associative prediction table caches the [offset,
// permissions] of recently missed translations; on a last-level TLB
// miss the table predicts hPA = gVA - offset so the processor can
// continue speculatively while the nested walk verifies in the
// background.
//
// Faithfully modelled details:
//   - PC indexing and tag matching (few instructions cause most misses);
//   - 2-bit saturating confidence per entry: predictions are issued
//     only at confidence > 1, correct verifications increment,
//     mispredictions decrement, and the stored offset is replaced only
//     at confidence 0;
//   - fills gated by the OS contiguity bit in *both* dimensions
//     (thrashing prevention): the nested walker only updates the table
//     when the guest and host PTEs carry the bit;
//   - LRU victim selection among replaceable (confidence-0) ways.
package spot

import "repro/internal/mem/addr"

// Outcome classifies SpOT's behaviour on one TLB miss, the breakdown
// Fig. 14 reports.
type Outcome int

const (
	// NoPrediction: no confident entry; the full walk latency is paid.
	NoPrediction Outcome = iota
	// Correct: prediction matched the walk; latency hidden.
	Correct
	// Mispredict: prediction differed; walk latency plus flush penalty.
	Mispredict
)

func (o Outcome) String() string {
	switch o {
	case Correct:
		return "correct"
	case Mispredict:
		return "mispredict"
	default:
		return "no-prediction"
	}
}

type entry struct {
	valid  bool
	tag    uint64
	offset addr.Offset
	conf   uint8 // 2-bit saturating counter
	lru    uint64
}

// Table is the SpOT prediction table.
type Table struct {
	sets  [][]entry
	nsets uint64
	ways  int
	tick  uint64

	// DisableConfidence issues predictions whenever an entry exists,
	// ignoring the 2-bit counter (ablation: shows why confidence
	// throttling matters).
	DisableConfidence bool
	// IgnoreFilter accepts fills regardless of the OS contiguity bits
	// (ablation: shows the thrashing the filter prevents).
	IgnoreFilter bool

	// Stats broken down as in Fig. 14.
	Predictions  uint64 // confident predictions issued
	CorrectCount uint64
	MispredCount uint64
	NoPredCount  uint64
	FillRejects  uint64 // updates skipped by the contiguity-bit filter
}

// New builds a table with the given total entries and associativity
// (paper evaluation: 32 entries, 4-way).
func New(entries, ways int) *Table {
	nsets := entries / ways
	if nsets <= 0 || entries%ways != 0 {
		panic("spot: bad geometry")
	}
	if nsets&(nsets-1) != 0 {
		n := 1
		for n*2 <= nsets {
			n *= 2
		}
		nsets = n
	}
	sets := make([][]entry, nsets)
	for i := range sets {
		sets[i] = make([]entry, ways)
	}
	return &Table{sets: sets, nsets: uint64(nsets), ways: ways}
}

func (t *Table) set(pc uint64) []entry { return t.sets[(pc>>2)&(t.nsets-1)] }

func (t *Table) find(pc uint64) *entry {
	set := t.set(pc)
	for i := range set {
		if set[i].valid && set[i].tag == pc {
			return &set[i]
		}
	}
	return nil
}

// Predict consults the table on a last-level TLB miss for (pc, va).
// A physical-address prediction is returned only when the entry's
// confidence exceeds 1.
func (t *Table) Predict(pc uint64, va addr.VirtAddr) (addr.PhysAddr, bool) {
	t.tick++
	e := t.find(pc)
	if e == nil || (e.conf <= 1 && !t.DisableConfidence) {
		return 0, false
	}
	e.lru = t.tick
	return e.offset.Target(va), true
}

// Verify is called at the end of the verification walk with the true
// translation. predicted/didPredict echo the Predict result so the
// table can update confidence, and fillAllowed carries the OS
// contiguity-bit filter (both dimensions set). It returns the outcome
// classification for the performance model.
func (t *Table) Verify(pc uint64, va addr.VirtAddr, truth addr.PhysAddr, predicted addr.PhysAddr, didPredict, fillAllowed bool) Outcome {
	t.tick++
	if t.IgnoreFilter {
		fillAllowed = true
	}
	actual := addr.OffsetOf(va, truth)
	e := t.find(pc)
	outcome := NoPrediction
	if didPredict {
		t.Predictions++
		if predicted == truth {
			outcome = Correct
			t.CorrectCount++
		} else {
			outcome = Mispredict
			t.MispredCount++
		}
	} else {
		t.NoPredCount++
	}
	switch {
	case e != nil:
		// Even without an issued prediction, the stored offset is
		// compared against the walk result to train confidence.
		if e.offset == actual {
			if e.conf < 3 {
				e.conf++
			}
		} else {
			if e.conf > 0 {
				e.conf--
			}
			// The offset is replaced only once confidence decays to 0,
			// and only for offsets the OS marked as belonging to large
			// contiguous mappings.
			if e.conf == 0 {
				if fillAllowed {
					e.offset = actual
					e.conf = 1
				} else {
					e.valid = false
					t.FillRejects++
				}
			}
		}
		e.lru = t.tick
	case fillAllowed:
		t.insert(pc, actual)
	default:
		t.FillRejects++
	}
	return outcome
}

// insert places a new entry, preferring invalid ways, then confidence-0
// ways in LRU order. When every way holds a confident offset the insert
// is dropped — valuable offsets are not thrashed (§IV-C).
func (t *Table) insert(pc uint64, off addr.Offset) {
	set := t.set(pc)
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		for i := range set {
			if set[i].conf == 0 && (victim < 0 || set[i].lru < set[victim].lru) {
				victim = i
			}
		}
	}
	if victim < 0 {
		return
	}
	set[victim] = entry{valid: true, tag: pc, offset: off, conf: 1, lru: t.tick}
}

// Confidence returns the confidence counter for pc (testing hook).
func (t *Table) Confidence(pc uint64) (uint8, bool) {
	if e := t.find(pc); e != nil {
		return e.conf, true
	}
	return 0, false
}
