package spot

import (
	"testing"

	"repro/internal/mem/addr"
)

const pc1 = 0x400123

// verifyTruth drives one miss cycle: Predict then Verify with truth.
func verifyTruth(t *Table, pc uint64, va addr.VirtAddr, truth addr.PhysAddr, fill bool) Outcome {
	pred, did := t.Predict(pc, va)
	return t.Verify(pc, va, truth, pred, did, fill)
}

func TestConfidenceRampAndPrediction(t *testing.T) {
	tb := New(32, 4)
	off := addr.Offset(0x7000_0000_0000)
	va := addr.VirtAddr(0x7000_0000_1000)
	// Miss 1: cold fill (conf=1, no prediction issued).
	if out := verifyTruth(tb, pc1, va, off.Target(va), true); out != NoPrediction {
		t.Fatalf("first miss outcome = %v", out)
	}
	if c, ok := tb.Confidence(pc1); !ok || c != 1 {
		t.Fatalf("conf = %d after fill", c)
	}
	// Miss 2: same offset — trains to 2, but conf was 1 so still no
	// prediction issued for this miss.
	va2 := va.Add(addr.HugeSize)
	if out := verifyTruth(tb, pc1, va2, off.Target(va2), true); out != NoPrediction {
		t.Fatalf("second miss outcome = %v", out)
	}
	// Miss 3: conf=2 now -> prediction issued and correct.
	va3 := va.Add(2 * addr.HugeSize)
	if out := verifyTruth(tb, pc1, va3, off.Target(va3), true); out != Correct {
		t.Fatalf("third miss outcome = %v", out)
	}
	if tb.CorrectCount != 1 || tb.NoPredCount != 2 {
		t.Fatalf("stats = correct:%d nopred:%d", tb.CorrectCount, tb.NoPredCount)
	}
}

func TestMispredictionDecaysConfidence(t *testing.T) {
	tb := New(32, 4)
	off := addr.Offset(0x1000_0000)
	va := addr.VirtAddr(0x2000_0000)
	// Train to confidence 3.
	for i := 0; i < 4; i++ {
		v := va.Add(uint64(i) * addr.PageSize)
		verifyTruth(tb, pc1, v, off.Target(v), true)
	}
	if c, _ := tb.Confidence(pc1); c != 3 {
		t.Fatalf("conf = %d, want saturated 3", c)
	}
	// Now the instruction jumps to a differently-mapped region.
	other := addr.Offset(0x5000_0000)
	v := va.Add(1 << 30)
	if out := verifyTruth(tb, pc1, v, other.Target(v), true); out != Mispredict {
		t.Fatalf("outcome = %v, want mispredict", out)
	}
	if c, _ := tb.Confidence(pc1); c != 2 {
		t.Fatalf("conf = %d after mispredict", c)
	}
	// Offset replaced only at confidence 0: two more mispredicts.
	verifyTruth(tb, pc1, v, other.Target(v), true)
	verifyTruth(tb, pc1, v, other.Target(v), true)
	if c, _ := tb.Confidence(pc1); c != 1 {
		t.Fatalf("conf = %d, want 1 (replaced offset)", c)
	}
	// The replaced offset now trains upward and predicts the new region.
	v2 := v.Add(addr.PageSize)
	verifyTruth(tb, pc1, v2, other.Target(v2), true)
	v3 := v.Add(2 * addr.PageSize)
	if out := verifyTruth(tb, pc1, v3, other.Target(v3), true); out != Correct {
		t.Fatalf("outcome after retrain = %v", out)
	}
}

func TestNoSpeculationAtLowConfidence(t *testing.T) {
	tb := New(32, 4)
	off := addr.Offset(0x1000)
	va := addr.VirtAddr(0x9000)
	verifyTruth(tb, pc1, va, off.Target(va), true) // conf=1
	if _, did := tb.Predict(pc1, va); did {
		t.Fatal("prediction issued at confidence 1")
	}
}

func TestContiguityBitFilter(t *testing.T) {
	tb := New(32, 4)
	va := addr.VirtAddr(0x9000)
	// Fill not allowed: no entry created.
	verifyTruth(tb, pc1, va, 0x1000, false)
	if _, ok := tb.Confidence(pc1); ok {
		t.Fatal("entry created despite filter")
	}
	if tb.FillRejects != 1 {
		t.Fatalf("FillRejects = %d", tb.FillRejects)
	}
	// Fill allowed: entry created; later decays on foreign offsets and,
	// with the filter off, is invalidated rather than replaced.
	verifyTruth(tb, pc1, va, 0x1000, true)
	verifyTruth(tb, pc1, va, 0x2000, false) // conf 1->0, no replace
	if _, ok := tb.Confidence(pc1); ok {
		t.Fatal("filtered entry should be invalidated at conf 0")
	}
}

func TestThrashingProtection(t *testing.T) {
	// A single-set table full of confident entries must not evict them
	// for new PCs.
	tb := New(4, 4)
	offs := []addr.Offset{0x1000, 0x2000, 0x3000, 0x4000}
	va := addr.VirtAddr(0x100000)
	for i, off := range offs {
		pc := uint64(0x400000 + i*4)
		for r := 0; r < 3; r++ {
			v := va.Add(uint64(r) * addr.PageSize)
			verifyTruth(tb, pc, v, off.Target(v), true)
		}
		if c, _ := tb.Confidence(pc); c < 2 {
			t.Fatalf("pc %d conf = %d", i, c)
		}
	}
	// A noisy new PC cannot displace them.
	verifyTruth(tb, 0x500000, va, 0x99000, true)
	for i := range offs {
		pc := uint64(0x400000 + i*4)
		if _, ok := tb.Confidence(pc); !ok {
			t.Fatalf("confident entry %d thrashed out", i)
		}
	}
	if _, ok := tb.Confidence(0x500000); ok {
		t.Fatal("noisy PC inserted despite full confident set")
	}
}

func TestPredictUsesByteGranularOffsets(t *testing.T) {
	// SpOT offsets are unaligned and unlimited: a prediction for an
	// address 3 GiB into a mapping with an odd page offset must be
	// exact.
	tb := New(32, 4)
	off := addr.OffsetOf(0x7f00_0000_0000, 0x1234_5000) // unaligned pages
	base := addr.VirtAddr(0x7f00_0000_0000)
	for i := 0; i < 3; i++ {
		v := base.Add(uint64(i) * 0x1000)
		verifyTruth(tb, pc1, v, off.Target(v), true)
	}
	far := base.Add(3 << 30) // 3 GiB beyond: far past any huge page
	pred, did := tb.Predict(pc1, far)
	if !did || pred != off.Target(far) {
		t.Fatalf("far prediction = (%v, %v)", pred, did)
	}
}

func TestOutcomeStrings(t *testing.T) {
	if Correct.String() != "correct" || Mispredict.String() != "mispredict" || NoPrediction.String() != "no-prediction" {
		t.Fatal("outcome strings")
	}
}

func TestGeometry(t *testing.T) {
	New(32, 4) // paper config
	New(64, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("bad geometry should panic")
		}
	}()
	New(5, 4)
}
