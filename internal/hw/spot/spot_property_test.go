package spot

import (
	"math/rand"
	"testing"

	"repro/internal/mem/addr"
)

// spotStream drives one (pc, offset) pair through count miss cycles,
// with VAs drawn randomly from the pc's region, and returns the outcome
// tally. Every access has truth = va - offset, the definition of an
// offset-stable mapping.
func spotStream(t *Table, r *rand.Rand, pc uint64, off addr.Offset, count int) (correct, mispred, nopred int) {
	for i := 0; i < count; i++ {
		va := addr.VirtAddr(uint64(off) + r.Uint64()%(1<<30))
		truth := off.Target(va)
		pred, did := t.Predict(pc, va)
		switch t.Verify(pc, va, truth, pred, did, true) {
		case Correct:
			correct++
		case Mispredict:
			mispred++
		default:
			nopred++
		}
	}
	return
}

// TestPropertyOffsetStableStreams is the paper's central SpOT claim as
// a property: for ANY offset-stable stream — any PC, any offset, any VA
// sequence — the table warms up in a bounded number of misses and then
// predicts every translation exactly. Randomized over many (pc, offset)
// draws rather than hand-picked examples.
func TestPropertyOffsetStableStreams(t *testing.T) {
	t.Parallel()
	for seed := int64(1); seed <= 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		tab := New(32, 4)
		pc := r.Uint64() &^ 3
		off := addr.Offset(r.Uint64() % (1 << 40))

		// Warm-up: insert at conf=1, one correct verify reaches conf=2.
		// From the 3rd access on the entry is confident, so predictions
		// must be issued and exact for the whole tail.
		correct, mispred, nopred := spotStream(tab, r, pc, off, 2)
		if mispred != 0 {
			t.Fatalf("seed %d: %d mispredictions during warm-up", seed, mispred)
		}
		if nopred != 2 || correct != 0 {
			t.Fatalf("seed %d: warm-up tally correct=%d nopred=%d, want 0/2", seed, correct, nopred)
		}
		correct, mispred, nopred = spotStream(tab, r, pc, off, 500)
		if correct != 500 {
			t.Fatalf("seed %d: trained stream: correct=%d mispred=%d nopred=%d, want 500 correct",
				seed, correct, mispred, nopred)
		}
		if conf, ok := tab.Confidence(pc); !ok || conf != 3 {
			t.Fatalf("seed %d: confidence %d (found=%v), want saturated 3", seed, conf, ok)
		}
	}
}

// TestPropertyRetrainAfterOffsetSwitch models the OS migrating the
// region (e.g. a daemon compaction): the offset changes once, the old
// confident entry must decay, retrain to the new offset, and the tail
// be mispredict-free again. Mispredictions during the transition are
// bounded by the confidence mechanism: from saturated conf=3 exactly
// two predictions fire wrong (conf 3→2, 2→1); at conf<=1 prediction
// stops, the entry decays to 0 and is replaced, then two correct
// verifies re-arm it.
func TestPropertyRetrainAfterOffsetSwitch(t *testing.T) {
	t.Parallel()
	for seed := int64(1); seed <= 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		tab := New(32, 4)
		pc := r.Uint64() &^ 3
		oldOff := addr.Offset(r.Uint64() % (1 << 40))
		newOff := oldOff + addr.Offset(1+r.Uint64()%(1<<30))

		spotStream(tab, r, pc, oldOff, 50) // train to saturation

		correct, mispred, nopred := spotStream(tab, r, pc, newOff, 6)
		if mispred != 2 {
			t.Fatalf("seed %d: %d mispredictions across the switch, want exactly 2 (conf 3→1)", seed, mispred)
		}
		// conf 1→0 (replace, conf=1), then conf=1 correct → 2: two more
		// unpredicted accesses before the 2 don't-care slots of the 6.
		if nopred < 2 {
			t.Fatalf("seed %d: nopred=%d during retrain, want >=2", seed, nopred)
		}
		_ = correct
		correct, mispred, _ = spotStream(tab, r, pc, newOff, 500)
		if correct != 500 || mispred != 0 {
			t.Fatalf("seed %d: post-retrain tail correct=%d mispred=%d, want 500/0", seed, correct, mispred)
		}
	}
}

// TestPropertyManyPCsIndependent trains a full table's worth of PCs,
// each with its own offset, interleaved in random order: entries must
// not interfere as long as no set exceeds its ways. Uses strided PCs
// that spread one per set across all 8 sets, 4 rounds deep (32 = exactly
// the table), so every insert finds a free way.
func TestPropertyManyPCsIndependent(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(99))
	tab := New(32, 4)
	type stream struct {
		pc  uint64
		off addr.Offset
	}
	var streams []stream
	for i := 0; i < 32; i++ {
		// pc>>2 indexes the set: i fills sets round-robin.
		streams = append(streams, stream{pc: uint64(i) << 2, off: addr.Offset(r.Uint64() % (1 << 40))})
	}
	// Train all streams past confidence threshold, interleaved.
	for round := 0; round < 4; round++ {
		for _, i := range r.Perm(len(streams)) {
			s := streams[i]
			spotStream(tab, r, s.pc, s.off, 1)
		}
	}
	// Every stream must now predict exactly, still interleaved.
	for round := 0; round < 20; round++ {
		for _, i := range r.Perm(len(streams)) {
			s := streams[i]
			correct, mispred, nopred := spotStream(tab, r, s.pc, s.off, 1)
			if correct != 1 {
				t.Fatalf("round %d pc %#x: correct=%d mispred=%d nopred=%d, want prediction hit",
					round, s.pc, correct, mispred, nopred)
			}
		}
	}
}

// TestPropertyFilterBlocksUntrustedFills checks the contiguity-bit gate
// end to end: with fillAllowed=false throughout, the table never learns
// the stream (all no-prediction), and FillRejects accounts for every
// rejected fill.
func TestPropertyFilterBlocksUntrustedFills(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(7))
	tab := New(32, 4)
	pc := uint64(0x40_1000)
	off := addr.Offset(1 << 21)
	for i := 0; i < 200; i++ {
		va := addr.VirtAddr(uint64(off) + r.Uint64()%(1<<30))
		pred, did := tab.Predict(pc, va)
		if did {
			t.Fatalf("access %d: prediction issued despite fills never being allowed", i)
		}
		tab.Verify(pc, va, off.Target(va), pred, did, false)
	}
	if tab.FillRejects != 200 {
		t.Fatalf("FillRejects=%d, want 200", tab.FillRejects)
	}
	if _, ok := tab.Confidence(pc); ok {
		t.Fatal("entry exists despite the filter rejecting every fill")
	}
}
