package spot

import (
	"testing"

	"repro/internal/mem/addr"
)

func TestDisableConfidencePredictsImmediately(t *testing.T) {
	tb := New(32, 4)
	tb.DisableConfidence = true
	off := addr.Offset(0x1000)
	va := addr.VirtAddr(0x9000)
	// First miss fills the entry (no prediction possible yet).
	verifyTruth(tb, pc1, va, off.Target(va), true)
	// Second miss: confidence is 1, but with the switch on a prediction
	// is issued anyway.
	v2 := va.Add(addr.PageSize)
	if out := verifyTruth(tb, pc1, v2, off.Target(v2), true); out != Correct {
		t.Fatalf("outcome = %v, want immediate Correct without confidence gate", out)
	}
	// And a wrong offset mispredicts instead of abstaining.
	tb2 := New(32, 4)
	tb2.DisableConfidence = true
	verifyTruth(tb2, pc1, va, off.Target(va), true)
	other := addr.Offset(0x555000)
	v3 := va.Add(1 << 30)
	if out := verifyTruth(tb2, pc1, v3, other.Target(v3), true); out != Mispredict {
		t.Fatalf("outcome = %v, want Mispredict without confidence gate", out)
	}
}

func TestIgnoreFilterFillsDespiteBits(t *testing.T) {
	tb := New(32, 4)
	tb.IgnoreFilter = true
	va := addr.VirtAddr(0x9000)
	// fillAllowed=false is overridden: the entry is created anyway.
	verifyTruth(tb, pc1, va, 0x1000, false)
	if _, ok := tb.Confidence(pc1); !ok {
		t.Fatal("IgnoreFilter should admit the fill")
	}
	if tb.FillRejects != 0 {
		t.Fatalf("FillRejects = %d with filter ignored", tb.FillRejects)
	}
}
