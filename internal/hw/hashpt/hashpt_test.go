package hashpt

import (
	"math/rand"
	"testing"

	"repro/internal/mem/addr"
)

func TestLookupInsertRemove(t *testing.T) {
	ht := New()
	if _, _, probes, ok := ht.Lookup(42); ok || probes != 1 {
		t.Fatalf("empty lookup = ok=%v probes=%d", ok, probes)
	}
	ht.Insert(42, 0x1000, false)
	ht.Insert(43, 0x200000, true)
	pa, huge, _, ok := ht.Lookup(42)
	if !ok || pa != 0x1000 || huge {
		t.Fatalf("Lookup(42) = (%v, %v, %v)", pa, huge, ok)
	}
	if pa, huge, _, ok = ht.Lookup(43); !ok || pa != 0x200000 || !huge {
		t.Fatalf("Lookup(43) = (%v, %v, %v)", pa, huge, ok)
	}
	if ht.Len() != 2 {
		t.Fatalf("Len = %d", ht.Len())
	}
	// Update in place.
	ht.Insert(42, 0x9000, false)
	if pa, _, _, _ := ht.Lookup(42); pa != 0x9000 {
		t.Fatalf("update: pa = %v", pa)
	}
	if ht.Len() != 2 {
		t.Fatalf("update changed Len = %d", ht.Len())
	}
	if !ht.Remove(42) || ht.Remove(42) {
		t.Fatal("Remove not idempotent-correct")
	}
	if _, _, _, ok := ht.Lookup(42); ok {
		t.Fatal("removed entry still resolves")
	}
	if _, _, _, ok := ht.Lookup(43); !ok {
		t.Fatal("Remove(42) disturbed 43")
	}
}

// TestAgainstMapModel drives a randomized insert/remove/lookup sequence
// against a plain map reference, through several rehashes, asserting
// the open-addressed table never diverges and probe chains survive
// tombstones.
func TestAgainstMapModel(t *testing.T) {
	ht := New()
	ref := map[uint64]addr.PhysAddr{}
	rng := rand.New(rand.NewSource(7))
	// Keyspace deliberately small vs. op count so collisions, reuse of
	// tombstoned slots, and same-key reinsertion all occur.
	const keys = 8 << 10
	for i := 0; i < 200_000; i++ {
		vpn := uint64(rng.Intn(keys))
		switch rng.Intn(4) {
		case 0, 1: // insert / update
			pa := addr.PhysAddr(rng.Uint64() &^ 0xfff)
			ht.Insert(vpn, pa, vpn%2 == 0)
			ref[vpn] = pa
		case 2: // remove
			if ht.Remove(vpn) != (func() bool { _, ok := ref[vpn]; return ok })() {
				t.Fatalf("Remove(%d) disagreed with model", vpn)
			}
			delete(ref, vpn)
		case 3: // lookup
			pa, _, probes, ok := ht.Lookup(vpn)
			want, wantOK := ref[vpn]
			if ok != wantOK || (ok && pa != want) {
				t.Fatalf("Lookup(%d) = (%v,%v), want (%v,%v)", vpn, pa, ok, want, wantOK)
			}
			if probes < 1 {
				t.Fatalf("probes = %d", probes)
			}
		}
		if ht.Len() != len(ref) {
			t.Fatalf("Len = %d, model %d", ht.Len(), len(ref))
		}
	}
	if ht.Rehashes == 0 {
		t.Fatal("sequence never rehashed; test is not exercising growth")
	}
	// Full sweep after the churn.
	for vpn, want := range ref {
		if pa, _, _, ok := ht.Lookup(vpn); !ok || pa != want {
			t.Fatalf("final sweep: Lookup(%d) = (%v,%v), want %v", vpn, pa, ok, want)
		}
	}
}

func TestFlush(t *testing.T) {
	ht := New()
	for i := uint64(0); i < 100; i++ {
		ht.Insert(i, addr.PhysAddr(i<<12), false)
	}
	ht.Flush()
	if ht.Len() != 0 {
		t.Fatalf("Len after Flush = %d", ht.Len())
	}
	for i := uint64(0); i < 100; i++ {
		if _, _, _, ok := ht.Lookup(i); ok {
			t.Fatalf("vpn %d survived Flush", i)
		}
	}
}

// TestProbeCountGrowsUnderLoad sanity-checks the cost observable: a
// near-capacity probe chain costs more than a fresh table's.
func TestProbeCountGrowsUnderLoad(t *testing.T) {
	ht := New()
	total := 0
	for i := uint64(0); i < 3*minSlots; i++ {
		ht.Insert(i, addr.PhysAddr(i<<12), false)
	}
	for i := uint64(0); i < 3*minSlots; i++ {
		_, _, probes, ok := ht.Lookup(i)
		if !ok {
			t.Fatalf("vpn %d missing", i)
		}
		total += probes
	}
	avg := float64(total) / float64(3*minSlots)
	if avg < 1 || avg > 3 {
		t.Fatalf("average probes = %.2f, want ~1-3 at <=75%% load", avg)
	}
}
