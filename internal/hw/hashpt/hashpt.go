// Package hashpt models a hashed (flattened) page table: a single
// open-addressed hash table keyed by 4 KiB virtual page number whose
// entries resolve directly to host-physical frames. Where a radix walk
// costs one memory reference per level — and a nested walk the 2D
// cross-product — a hashed walk costs one reference per probe, so a
// well-loaded table translates in ~1 reference regardless of nesting
// depth. The probe count is the cost observable the translation layer
// prices.
//
// The table is a software model, not a hardware cache: it never evicts
// on its own. The owner is responsible for exact invalidation (Remove
// on unmap/migrate, Flush on wholesale loss of the backing mapping) —
// the translation backend drives those from the page-table observer
// events.
package hashpt

import "repro/internal/mem/addr"

const (
	// minSlots is the smallest table; always a power of two so the
	// probe sequence can mask instead of mod.
	minSlots = 1 << 10
	// Grow when live+dead slots reach 3/4 of capacity: linear probing
	// degrades sharply past that load factor.
	loadNum, loadDen = 3, 4
)

type slotState uint8

const (
	slotEmpty slotState = iota // never used; terminates probe chains
	slotLive
	slotDead // tombstone: probe chains continue through it
)

type slot struct {
	vpn  uint64
	pa   addr.PhysAddr // host-physical base of the 4 KiB frame
	huge bool          // effective leaf was a 2 MiB mapping (TLB fill hint)
	st   slotState
}

// Table is an open-addressed, linear-probed hashed page table.
type Table struct {
	slots []slot
	mask  uint64
	live  int
	dead  int

	// Fills and Removals count successful Insert and Remove calls;
	// Rehashes counts grows (each clears accumulated tombstones).
	Fills, Removals, Rehashes uint64
}

// New returns an empty table at minimum capacity.
func New() *Table {
	return &Table{slots: make([]slot, minSlots), mask: minSlots - 1}
}

// hash is the splitmix64 finalizer — full-avalanche on sequential VPNs,
// so dense address spaces spread uniformly.
func hash(vpn uint64) uint64 {
	z := vpn + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Len returns the number of live entries.
func (t *Table) Len() int { return t.live }

// Lookup probes for vpn. probes is the number of slots inspected — the
// memory-reference count a hashed hardware walker would issue — and is
// meaningful on hit and miss alike. Lookup never mutates the table.
func (t *Table) Lookup(vpn uint64) (pa addr.PhysAddr, huge bool, probes int, ok bool) {
	i := hash(vpn) & t.mask
	for {
		probes++
		s := &t.slots[i]
		if s.st == slotEmpty {
			return 0, false, probes, false
		}
		if s.st == slotLive && s.vpn == vpn {
			return s.pa, s.huge, probes, true
		}
		i = (i + 1) & t.mask
	}
}

// Insert installs or updates the translation for vpn.
func (t *Table) Insert(vpn uint64, pa addr.PhysAddr, huge bool) {
	if (t.live+t.dead+1)*loadDen >= len(t.slots)*loadNum {
		t.rehash()
	}
	i := hash(vpn) & t.mask
	reuse := -1
	for {
		s := &t.slots[i]
		if s.st == slotEmpty {
			break
		}
		if s.st == slotDead {
			if reuse < 0 {
				reuse = int(i)
			}
		} else if s.vpn == vpn {
			s.pa, s.huge = pa, huge
			t.Fills++
			return
		}
		i = (i + 1) & t.mask
	}
	if reuse >= 0 {
		i = uint64(reuse)
		t.dead--
	}
	t.slots[i] = slot{vpn: vpn, pa: pa, huge: huge, st: slotLive}
	t.live++
	t.Fills++
}

// Remove drops the translation for vpn, leaving a tombstone so later
// probe chains stay intact. Reports whether an entry was removed.
func (t *Table) Remove(vpn uint64) bool {
	i := hash(vpn) & t.mask
	for {
		s := &t.slots[i]
		if s.st == slotEmpty {
			return false
		}
		if s.st == slotLive && s.vpn == vpn {
			*s = slot{st: slotDead}
			t.live--
			t.dead++
			t.Removals++
			return true
		}
		i = (i + 1) & t.mask
	}
}

// Flush drops every entry, keeping the current capacity.
func (t *Table) Flush() {
	for i := range t.slots {
		t.slots[i] = slot{}
	}
	t.live, t.dead = 0, 0
}

// rehash doubles capacity (or compacts in place when tombstones alone
// crossed the load threshold) and reinserts live entries, clearing all
// tombstones.
func (t *Table) rehash() {
	n := len(t.slots)
	// Only grow when live entries justify it; a tombstone-heavy table
	// compacts at the same size.
	if (t.live+1)*loadDen*2 >= n*loadNum {
		n *= 2
	}
	old := t.slots
	t.slots = make([]slot, n)
	t.mask = uint64(n - 1)
	t.live, t.dead = 0, 0
	t.Rehashes++
	fills := t.Fills // reinsertion is not a fill
	for i := range old {
		if old[i].st == slotLive {
			t.Insert(old[i].vpn, old[i].pa, old[i].huge)
		}
	}
	t.Fills = fills
}
