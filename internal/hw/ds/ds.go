// Package ds emulates Direct Segments in dual direct mode (Gandhi et
// al., MICRO'14), the rigid upper-bound baseline of the paper's Fig. 13:
// a single hardware segment [Base, Limit, Offset) translates gVA→hPA
// directly, eliminating the nested walk for every access inside it.
// Accesses outside the segment pay the normal nested 4K walk, and the
// segment's memory is reserved at VM boot — paging is abolished inside
// it, which is exactly the inflexibility CA paging + SpOT avoid.
package ds

import "repro/internal/mem/addr"

// Segment is the single dual-direct segment.
type Segment struct {
	Base   addr.VirtAddr
	Limit  addr.VirtAddr // exclusive
	Offset addr.Offset

	Hits   uint64
	Misses uint64
}

// NewSegment creates a segment mapping [base, base+bytes) with the
// given translation offset.
func NewSegment(base addr.VirtAddr, bytes uint64, off addr.Offset) *Segment {
	return &Segment{Base: base, Limit: base.Add(bytes), Offset: off}
}

// Covers reports whether va falls inside the segment without touching
// the hit/miss counters (hardware range check, no probe accounting).
func (s *Segment) Covers(va addr.VirtAddr) bool {
	return va >= s.Base && va < s.Limit
}

// Lookup translates va through the segment. ok is false outside it.
func (s *Segment) Lookup(va addr.VirtAddr) (addr.PhysAddr, bool) {
	if va >= s.Base && va < s.Limit {
		s.Hits++
		return s.Offset.Target(va), true
	}
	s.Misses++
	return 0, false
}

// Coverage returns the fraction of lookups served by the segment.
func (s *Segment) Coverage() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}
