package ds

import (
	"testing"

	"repro/internal/mem/addr"
)

func TestSegmentLookup(t *testing.T) {
	base := addr.VirtAddr(0x10_0000_0000)
	off := addr.OffsetOf(base, 0x4000_0000)
	s := NewSegment(base, 1<<30, off)
	pa, ok := s.Lookup(base)
	if !ok || pa != 0x4000_0000 {
		t.Fatalf("Lookup base = (%v, %v)", pa, ok)
	}
	// Linear inside.
	pa2, ok := s.Lookup(base.Add(0x1234567))
	if !ok || pa2 != 0x4000_0000+0x1234567 {
		t.Fatalf("interior lookup = %v", pa2)
	}
	// Limit exclusive; below base excluded.
	if _, ok := s.Lookup(base.Add(1 << 30)); ok {
		t.Fatal("limit should be exclusive")
	}
	if _, ok := s.Lookup(base - 1); ok {
		t.Fatal("below base should miss")
	}
	if s.Hits != 2 || s.Misses != 2 {
		t.Fatalf("counters = %d/%d", s.Hits, s.Misses)
	}
	if s.Coverage() != 0.5 {
		t.Fatalf("coverage = %f", s.Coverage())
	}
}

func TestCoverageIdle(t *testing.T) {
	s := NewSegment(0, 4096, 0)
	if s.Coverage() != 0 {
		t.Fatal("idle coverage should be 0")
	}
}
