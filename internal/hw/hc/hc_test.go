package hc

import (
	"testing"

	"repro/internal/mem/addr"
	"repro/internal/metrics"
)

func mk(vaPage, paPage, pages uint64) metrics.Mapping {
	return metrics.Mapping{
		VA:    addr.VirtAddr(vaPage) << addr.PageShift,
		PA:    addr.PhysAddr(paPage) << addr.PageShift,
		Pages: pages,
	}
}

func TestAlignedMappingCoalescesPerfectly(t *testing.T) {
	// One mapping of 4096 pages starting at an anchor-aligned VA: at
	// distance 512 it needs exactly 4096/512 = 8 anchor entries.
	ms := []metrics.Mapping{mk(512*4, 0, 4096)}
	if got := CountFor(ms, 512); got != 8 {
		t.Fatalf("aligned count = %d, want 8", got)
	}
}

func TestUnalignedMappingFractures(t *testing.T) {
	// The same 4096-page mapping shifted by one page: the head pages up
	// to the next anchor cost one regular entry each, and coverage is
	// greedily counted — but crucially more entries than the aligned
	// case are needed to reach 99%.
	// At an anchor distance equal to the mapping size, the aligned
	// mapping is a single anchor entry; shifting it one page leaves no
	// coverable window, so everything falls back to (2 MiB) regular
	// entries.
	aligned := CountFor([]metrics.Mapping{mk(4096, 0, 4096)}, 4096)
	unaligned := CountFor([]metrics.Mapping{mk(4096+1, 1, 4096)}, 4096)
	if unaligned <= aligned {
		t.Fatalf("unaligned (%d) should need more entries than aligned (%d)", unaligned, aligned)
	}
}

func TestRangeVsAnchorGap(t *testing.T) {
	// A single unaligned multi-GB-scale mapping is 1 range for vRMM but
	// many anchors for vHC — the Table I observation (anchors ~38x).
	ms := []metrics.Mapping{mk(12345, 777, 300000)}
	best := BestAnchorCount(ms, 3, 16)
	if best.EntriesFor99 < 2 {
		t.Fatalf("vHC entries = %d; expected more than a range translation needs", best.EntriesFor99)
	}
}

func TestBestAnchorPicksGoodDistance(t *testing.T) {
	// Mappings of ~64 pages each, aligned to 64: distance 64 is ideal;
	// BestAnchorCount must not pick something wildly worse.
	var ms []metrics.Mapping
	for i := uint64(0); i < 100; i++ {
		ms = append(ms, mk(i*64*2, i*64*3+64, 64)) // 64-page aligned chunks with VA gaps
	}
	best := BestAnchorCount(ms, 3, 12)
	atIdeal := CountFor(ms, 64)
	if best.EntriesFor99 > atIdeal {
		t.Fatalf("best (%d @ %d pages) worse than fixed 64-page distance (%d)",
			best.EntriesFor99, best.AnchorDistancePages, atIdeal)
	}
}

func TestEmptyMappings(t *testing.T) {
	if CountFor(nil, 512) != 0 {
		t.Fatal("empty mappings should need 0 entries")
	}
	best := BestAnchorCount(nil, 3, 8)
	if best.EntriesFor99 != 0 {
		t.Fatalf("empty best = %+v", best)
	}
}

func TestSmallMappingsAllRegularEntries(t *testing.T) {
	// 100 single-page mappings: no window is ever fully covered, so
	// every entry is a regular one; 99% needs 99 entries.
	var ms []metrics.Mapping
	for i := uint64(0); i < 100; i++ {
		ms = append(ms, mk(i*1000, i*2000, 1))
	}
	if got := CountFor(ms, 512); got != 99 {
		t.Fatalf("singles count = %d, want 99", got)
	}
}
