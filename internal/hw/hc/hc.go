// Package hc emulates virtualized Hybrid TLB Coalescing (vHC, Park et
// al., ISCA'17) far enough to reproduce Table I: counting the anchor
// entries needed to map a footprint. Hybrid coalescing stores coalesced
// translations at *aligned* anchor points spaced every 2^k pages
// (the anchor distance); an anchor entry covers its whole window only
// when the window is contiguously mapped starting at the anchor, so —
// unlike range translations — unaligned contiguity fractures into many
// entries. The OS picks the anchor distance from the process's average
// contiguity; this emulation tries all distances and reports the best,
// a strictly optimistic bound for vHC.
package hc

import (
	"sort"

	"repro/internal/mem/addr"
	"repro/internal/metrics"
)

// EntryCount is the result of the anchor analysis for one distance.
type EntryCount struct {
	// AnchorDistancePages is 2^k.
	AnchorDistancePages uint64
	// EntriesFor99 is the number of translation entries (anchor +
	// regular) needed to map 99% of the footprint, counting greedily
	// by coverage like the paper's Table I.
	EntriesFor99 int
}

// coverages builds the per-entry coverage list (in pages) of hybrid
// coalescing with the given anchor distance over the mappings: fully
// covered aligned windows become one anchor entry covering the whole
// distance; leftover spans fall back to regular page-table entries,
// which — since the mappings are huge-page backed — coalesce no better
// than 2 MiB PTEs (one entry per 2 MiB unit touched, single pages cost
// one entry each).
func coverages(ms []metrics.Mapping, distPages uint64) []uint64 {
	var out []uint64
	emitRegular := func(va addr.VirtAddr, pages uint64) {
		// Count 2 MiB-aligned units touched by [va, va+pages).
		for pages > 0 {
			unitEnd := uint64(va.HugeDown()) + addr.HugeSize
			take := (unitEnd - uint64(va)) / addr.PageSize
			if take > pages {
				take = pages
			}
			out = append(out, take)
			va = va.Add(take * addr.PageSize)
			pages -= take
		}
	}
	for _, m := range ms {
		va := m.VA
		remaining := m.Pages
		for remaining > 0 {
			// The next anchor boundary at or after va.
			anchor := addr.VirtAddr((uint64(va) + distPages*addr.PageSize - 1) &^ (distPages*addr.PageSize - 1))
			if anchor == va && remaining >= distPages {
				// A full window contiguously mapped from its anchor:
				// one anchor entry.
				out = append(out, distPages)
				va = va.Add(distPages * addr.PageSize)
				remaining -= distPages
				continue
			}
			// Pages before the next anchor (or a tail shorter than the
			// window) need regular entries.
			gapPages := uint64(anchor-va) / addr.PageSize
			if gapPages == 0 || gapPages > remaining {
				gapPages = remaining
			}
			emitRegular(va, gapPages)
			va = va.Add(gapPages * addr.PageSize)
			remaining -= gapPages
		}
	}
	return out
}

// entriesFor returns how many largest-coverage-first entries reach the
// coverage fraction of the total footprint.
func entriesFor(cov []uint64, frac float64) int {
	if len(cov) == 0 {
		return 0
	}
	sort.Slice(cov, func(i, j int) bool { return cov[i] > cov[j] })
	var total uint64
	for _, c := range cov {
		total += c
	}
	target := uint64(frac * float64(total))
	var acc uint64
	for i, c := range cov {
		acc += c
		if acc >= target {
			return i + 1
		}
	}
	return len(cov)
}

// BestAnchorCount evaluates anchor distances 2^minK..2^maxK pages and
// returns the distance minimising the 99% entry count — modelling the
// OS's dynamic anchor-distance adjustment at its optimum.
func BestAnchorCount(ms []metrics.Mapping, minK, maxK int) EntryCount {
	best := EntryCount{EntriesFor99: -1}
	for k := minK; k <= maxK; k++ {
		dist := uint64(1) << uint(k)
		n := entriesFor(coverages(ms, dist), 0.99)
		if best.EntriesFor99 < 0 || n < best.EntriesFor99 {
			best = EntryCount{AnchorDistancePages: dist, EntriesFor99: n}
		}
	}
	return best
}

// CountFor returns the 99% entry count at one fixed anchor distance.
func CountFor(ms []metrics.Mapping, distPages uint64) int {
	return entriesFor(coverages(ms, distPages), 0.99)
}
