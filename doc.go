// Package repro is a from-scratch Go reproduction of "Enhancing and
// Exploiting Contiguity for Fast Memory Virtualization" (ISCA 2020):
// contiguity-aware (CA) paging in a simulated OS memory manager plus
// the SpOT speculative offset-based translation hardware, evaluated
// against eager paging, Translation Ranger, Ingens, ideal placement,
// vRMM, and Direct Segments.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. The library API lives
// in internal/core; the per-figure drivers in internal/experiments;
// bench_test.go regenerates every table and figure.
package repro
