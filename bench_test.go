// Package repro's benchmark harness: one testing.B benchmark per table
// and figure of the paper's evaluation, plus one per ablation from
// DESIGN.md §4. Each benchmark regenerates its result through the
// corresponding internal/experiments driver and logs the table; run
//
//	go test -bench=. -benchmem
//
// to reproduce the whole evaluation. Heavy sweeps run reduced but
// representative parameter subsets (the full sweeps are available via
// cmd/reproduce); custom metrics surface each benchmark's headline
// numbers so regressions are visible in benchstat output.
package repro

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/experiments"
	"repro/internal/mem/addr"
	"repro/internal/mem/zone"
	"repro/internal/osim"
	"repro/internal/workloads"
)

// runDriver executes an experiment driver b.N times under default
// parameters, logging the table once.
func runDriver(b *testing.B, fn experiments.Driver) *experiments.Table {
	return runDriverWith(b, experiments.DefaultParams(), fn)
}

// runDriverWith is runDriver under explicit parameters (reduced streams
// for the heavy translation benchmarks).
func runDriverWith(b *testing.B, p experiments.Params, fn experiments.Driver) *experiments.Table {
	b.Helper()
	var tab *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = fn(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	var sb strings.Builder
	tab.Render(&sb)
	b.Log("\n" + sb.String())
	return tab
}

// metric parses a numeric cell ("12.34%", "0.987", "42") for
// b.ReportMetric.
func metric(s string) float64 {
	s = strings.TrimSuffix(s, "%")
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

// findRow locates a row by its leading key cells.
func findRow(tab *experiments.Table, keys ...string) []string {
	for _, row := range tab.Rows {
		ok := true
		for i, k := range keys {
			if i >= len(row) || row[i] != k {
				ok = false
				break
			}
		}
		if ok {
			return row
		}
	}
	return nil
}

// reducedStream returns default parameters with a shrunken measured
// phase for the heavy translation benchmarks.
func reducedStream(n uint64) experiments.Params {
	p := experiments.DefaultParams()
	p.StreamLen = n
	return p
}

// --- paper figures and tables ---

func BenchmarkFig1bRepeatedRuns(b *testing.B) {
	tab := runDriver(b, experiments.Fig1b)
	if row := findRow(tab, "10"); row != nil {
		b.ReportMetric(metric(row[1]), "eager-cov32-run10")
		b.ReportMetric(metric(row[2]), "ca-cov32-run10")
	}
}

func BenchmarkFig1cRangerTimeline(b *testing.B) {
	tab := runDriver(b, experiments.Fig1c)
	if len(tab.Rows) > 0 {
		mid := tab.Rows[len(tab.Rows)/2]
		b.ReportMetric(metric(mid[1]), "ca-cov32-mid")
		b.ReportMetric(metric(mid[2]), "ranger-cov32-mid")
	}
}

func BenchmarkTable1RangesAnchors(b *testing.B) {
	tab := runDriver(b, func(p experiments.Params) (*experiments.Table, error) {
		return experiments.Table1For(p, []string{"svm", "pagerank", "hashjoin"})
	})
	if row := findRow(tab, "pagerank"); row != nil {
		b.ReportMetric(metric(row[3]), "ca-ranges")
		b.ReportMetric(metric(row[4]), "ca-anchors")
	}
}

func BenchmarkFig7NativeContiguity(b *testing.B) {
	tab := runDriver(b, func(p experiments.Params) (*experiments.Table, error) {
		return experiments.Fig7For(p, []string{"svm", "pagerank", "bt"}, experiments.AllPolicies())
	})
	if row := findRow(tab, "pagerank", "ca"); row != nil {
		b.ReportMetric(metric(row[4]), "ca-maps99")
	}
	if row := findRow(tab, "pagerank", "thp"); row != nil {
		b.ReportMetric(metric(row[4]), "thp-maps99")
	}
}

func BenchmarkFig8Fragmentation(b *testing.B) {
	tab := runDriver(b, func(p experiments.Params) (*experiments.Table, error) {
		return experiments.Fig8Sweep(p,
			[]float64{0, 0.3, 0.5},
			[]string{"svm", "pagerank"},
			[]experiments.PolicyName{experiments.PolicyCA, experiments.PolicyEager, experiments.PolicyIdeal})
	})
	if row := findRow(tab, "hog-50%", "ca"); row != nil {
		b.ReportMetric(metric(row[3]), "ca-cov128-hog50")
	}
	if row := findRow(tab, "hog-50%", "eager"); row != nil {
		b.ReportMetric(metric(row[3]), "eager-cov128-hog50")
	}
}

func BenchmarkFig9FreeBlocks(b *testing.B) {
	tab := runDriver(b, experiments.Fig9)
	if row := findRow(tab, "ca"); row != nil {
		b.ReportMetric(metric(row[4]), "ca-largest-class-frac")
	}
}

func BenchmarkFig10MultiProgram(b *testing.B) {
	tab := runDriver(b, experiments.Fig10)
	if row := findRow(tab, "ca"); row != nil {
		b.ReportMetric(metric(row[1]), "ca-instanceA-cov32")
	}
}

func BenchmarkFig11SoftwareOverhead(b *testing.B) {
	tab := runDriver(b, func(p experiments.Params) (*experiments.Table, error) {
		return experiments.Fig11For(p, []string{"pagerank", "xsbench"})
	})
	if row := findRow(tab, "pagerank"); row != nil {
		b.ReportMetric(metric(row[3]), "ca-normalized")
		b.ReportMetric(metric(row[5]), "ranger-normalized")
	}
}

func BenchmarkTable5FaultLatency(b *testing.B) {
	tab := runDriver(b, func(p experiments.Params) (*experiments.Table, error) {
		return experiments.Table5For(p, []string{"pagerank", "xsbench"})
	})
	if row := findRow(tab, "ca"); row != nil {
		b.ReportMetric(metric(row[2]), "ca-p99-us")
	}
	if row := findRow(tab, "eager"); row != nil {
		b.ReportMetric(metric(row[2]), "eager-p99-us")
	}
}

func BenchmarkTable6Bloat(b *testing.B) {
	tab := runDriver(b, func(p experiments.Params) (*experiments.Table, error) {
		return experiments.Table6For(p, []string{"svm", "hashjoin"})
	})
	_ = tab
}

func BenchmarkFig12VirtContiguity(b *testing.B) {
	tab := runDriver(b, func(p experiments.Params) (*experiments.Table, error) {
		return experiments.Fig12For(p, []string{"svm", "pagerank", "hashjoin"})
	})
	if row := findRow(tab, "pagerank", "ca"); row != nil {
		b.ReportMetric(metric(row[4]), "ca-2d-maps99")
	}
}

func BenchmarkFig13TranslationOverhead(b *testing.B) {
	tab := runDriverWith(b, reducedStream(800_000), func(p experiments.Params) (*experiments.Table, error) {
		return experiments.Fig13For(p, []string{"pagerank", "xsbench"})
	})
	if row := findRow(tab, "pagerank"); row != nil {
		b.ReportMetric(metric(row[4]), "vthp-overhead-pct")
		b.ReportMetric(metric(row[5]), "spot-overhead-pct")
	}
}

func BenchmarkFig14SpotBreakdown(b *testing.B) {
	tab := runDriverWith(b, reducedStream(800_000), func(p experiments.Params) (*experiments.Table, error) {
		return experiments.Fig14For(p, []string{"pagerank", "hashjoin", "svm"})
	})
	if row := findRow(tab, "pagerank"); row != nil {
		b.ReportMetric(metric(row[1]), "pagerank-correct-pct")
	}
	if row := findRow(tab, "hashjoin"); row != nil {
		b.ReportMetric(metric(row[2]), "hashjoin-mispred-pct")
	}
}

func BenchmarkTable7USL(b *testing.B) {
	tab := runDriverWith(b, reducedStream(600_000), func(p experiments.Params) (*experiments.Table, error) {
		return experiments.Table7For(p, []string{"pagerank", "hashjoin"})
	})
	if len(tab.Rows) > 0 {
		b.ReportMetric(metric(tab.Rows[0][2]), "spectre-usl-pct")
		b.ReportMetric(metric(tab.Rows[0][3]), "spot-usl-pct")
	}
}

// --- ablations (DESIGN.md §4) ---

func BenchmarkAblationPlacementPolicy(b *testing.B) {
	tab := runDriver(b, experiments.AblationPlacement)
	if row := findRow(tab, "next-fit"); row != nil {
		b.ReportMetric(metric(row[1]), "nextfit-maps99")
	}
	if row := findRow(tab, "first-fit"); row != nil {
		b.ReportMetric(metric(row[1]), "firstfit-maps99")
	}
}

func BenchmarkAblationSortedMaxOrder(b *testing.B) {
	tab := runDriver(b, experiments.AblationSortedMaxOrder)
	if row := findRow(tab, "true"); row != nil {
		b.ReportMetric(metric(row[1]), "sorted-largest-MiB")
	}
}

func BenchmarkAblationOffsetBudget(b *testing.B) {
	tab := runDriver(b, experiments.AblationOffsetBudget)
	if row := findRow(tab, "64"); row != nil {
		b.ReportMetric(metric(row[1]), "budget64-maps99")
	}
}

func BenchmarkAblationSpotConfidence(b *testing.B) {
	tab := runDriverWith(b, reducedStream(600_000), experiments.AblationSpotConfidence)
	if row := findRow(tab, "no confidence"); row != nil {
		b.ReportMetric(metric(row[2]), "noconf-mispred-pct")
	}
}

func BenchmarkAblationSpotGeometry(b *testing.B) {
	tab := runDriverWith(b, reducedStream(400_000), experiments.AblationSpotGeometry)
	if row := findRow(tab, "32x4"); row != nil {
		b.ReportMetric(metric(row[1]), "32x4-correct-pct")
	}
}

// --- extensions beyond the paper's figures ---

func BenchmarkExtraShadowPaging(b *testing.B) {
	tab := runDriverWith(b, reducedStream(600_000), func(p experiments.Params) (*experiments.Table, error) {
		return experiments.ExtraShadowFor(p, []string{"pagerank"})
	})
	if row := findRow(tab, "pagerank"); row != nil {
		b.ReportMetric(metric(row[1]), "nested-overhead-pct")
		b.ReportMetric(metric(row[2]), "shadow-overhead-pct")
	}
}

func BenchmarkExtraReservation(b *testing.B) {
	runDriver(b, experiments.ExtraReservation)
}

func BenchmarkExtraFiveLevel(b *testing.B) {
	tab := runDriverWith(b, reducedStream(600_000), experiments.ExtraFiveLevel)
	if row := findRow(tab, "5"); row != nil {
		b.ReportMetric(metric(row[1]), "5level-vthp-pct")
	}
}

// --- audit engine (DESIGN.md §12) ---

// auditFixture builds a machine with populated anonymous mappings and
// page-cache residency in every zone — the state the flat-array audit
// engine gathers and sweeps. zoneBlocks gives each zone's size in
// MAX_ORDER blocks.
func auditFixture(tb testing.TB, zoneBlocks []uint64) (*zone.Machine, *osim.Kernel) {
	tb.Helper()
	zp := make([]uint64, len(zoneBlocks))
	for i, n := range zoneBlocks {
		zp[i] = n * addr.MaxOrderPages
	}
	m := zone.NewMachine(zone.Config{ZonePages: zp})
	k := osim.NewKernel(m, osim.DefaultPolicy{})
	for i := range zp {
		env := workloads.NewNativeEnv(k, i)
		v, err := env.MMap(4 << 20)
		if err != nil {
			tb.Fatal(err)
		}
		if err := env.Populate(v); err != nil {
			tb.Fatal(err)
		}
	}
	f := k.Cache.CreateFile(2 << 20)
	if err := k.Cache.Read(f, 0, 2<<20); err != nil {
		tb.Fatal(err)
	}
	return m, k
}

// TestAuditorZeroAllocs pins the audit arena's steady-state contract: a
// warm Auditor re-auditing a settled machine performs zero heap
// allocations. The single-zone machine keeps the check strict — the
// multi-zone fan-out spawns goroutines, whose stacks the runtime may
// count as allocations.
func TestAuditorZeroAllocs(t *testing.T) {
	m, k := auditFixture(t, []uint64{8})
	a := check.NewAuditor(m)
	if err := a.Audit(k, nil); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		if err := a.Audit(k, nil); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("warm Auditor.Audit allocates %v per run, want 0", avg)
	}
}

// BenchmarkAuditKernels measures the audit engine itself on a small
// machine and on one the size of the figAging campaign host (2 NUMA
// zones x 160 MAX_ORDER blocks), where the flat-array sweep replaced
// the map-based accounting that dominated campaign runtime.
func BenchmarkAuditKernels(b *testing.B) {
	for _, tc := range []struct {
		name   string
		blocks []uint64
	}{
		{"small-1x8", []uint64{8}},
		{"campaign-2x160", []uint64{160, 160}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			m, k := auditFixture(b, tc.blocks)
			a := check.NewAuditor(m)
			if err := a.Audit(k, nil); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := a.Audit(k, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
