// Fragmentation: CA paging vs eager pre-allocation on an externally
// fragmented machine (the hog scenario, Fig. 8). Eager paging needs
// naturally *aligned* free blocks and collapses as they vanish; CA
// paging harvests unaligned contiguity and keeps tracking the ideal
// offline placement.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/workloads"
)

func main() {
	fmt.Println("pressure  policy  maps99  cov128")
	for _, pressure := range []float64{0, 0.25, 0.5} {
		for _, policy := range []string{"ca", "eager", "ideal"} {
			// Single 1.25 GiB zone (NUMA off, like the paper's study).
			sys, err := core.NewNativeSystem(core.Config{Policy: policy, ZonesMiB: []int{1280}})
			if err != nil {
				log.Fatal(err)
			}
			// The hog pins memory in scattered 2 MiB chunks: plenty of
			// huge pages stay free, but large aligned blocks disappear.
			workloads.Hog(sys.Kernel.Machine, pressure, rand.New(rand.NewSource(42)))

			env := sys.NewEnv()
			if err := core.Setup(env, workloads.NewXSBench(), 1); err != nil {
				log.Fatal(err)
			}
			rep := core.Contiguity(env)
			fmt.Printf("%-9.0f %-7s %-7d %.3f\n", pressure*100, policy, rep.Maps99, rep.Cov128)
		}
	}
	fmt.Println()
	fmt.Println("Eager fractures under pressure (alignment!); CA stays near ideal.")
}
