// Multiprogram: two processes populating memory concurrently (time-
// sliced bursts). CA paging's next-fit placement directs each process
// past the other's planned region instead of into it, keeping both
// footprints contiguous — the paper's Fig. 10 scenario.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mem/addr"
)

const (
	footprint = 96 << 20 // per process
	burst     = 8 << 20  // one scheduling quantum's worth of faults
)

func main() {
	for _, policy := range []string{"default", "ca"} {
		sys, err := core.NewNativeSystem(core.Config{Policy: policy})
		if err != nil {
			log.Fatal(err)
		}
		envA, envB := sys.NewEnv(), sys.NewEnv()
		vmaA, err := envA.MMap(footprint)
		if err != nil {
			log.Fatal(err)
		}
		vmaB, err := envB.MMap(footprint)
		if err != nil {
			log.Fatal(err)
		}
		// Interleave the two processes' population burst by burst, the
		// way a scheduler would interleave their demand faults.
		for off := uint64(0); off < footprint; off += burst {
			for o := off; o < off+burst && o < footprint; o += addr.PageSize {
				if err := envA.Touch(vmaA.Start.Add(o), true); err != nil {
					log.Fatal(err)
				}
			}
			for o := off; o < off+burst && o < footprint; o += addr.PageSize {
				if err := envB.Touch(vmaB.Start.Add(o), true); err != nil {
					log.Fatal(err)
				}
			}
		}
		repA, repB := core.Contiguity(envA), core.Contiguity(envB)
		fmt.Printf("%-8s: process A %3d mappings (cov32 %.2f), process B %3d mappings (cov32 %.2f)\n",
			policy, len(repA.Mappings), repA.Cov32, len(repB.Mappings), repB.Cov32)
	}
	fmt.Println()
	fmt.Println("Next-fit placement defers the race: each process gets its own region.")
}
