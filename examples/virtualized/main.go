// Virtualized: the paper's headline experiment in miniature. A VM runs
// with CA paging in the guest AND host kernels; the hardware emulation
// drives the workload's measured phase through the nested-paging TLB
// path with SpOT predicting translations. Compare the nested-walk
// overhead against what survives under SpOT.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	fmt.Println("workload   2D-maps  vTHP-overhead  SpOT-overhead  correct  mispred")
	for _, name := range []string{"pagerank", "xsbench", "hashjoin"} {
		// Host: 2x640 MiB zones. VM: 768 MiB over 2 guest zones.
		// CA paging independently in both dimensions (§III-C).
		sys, err := core.NewVirtualSystem(core.VirtualConfig{
			Host: core.Config{Policy: "ca"},
		})
		if err != nil {
			log.Fatal(err)
		}
		env := sys.NewEnv()
		w := workloads.ByName(name)
		if err := core.Setup(env, w, 1); err != nil {
			log.Fatal(err)
		}

		// The measured phase: 1M accesses through the L2 TLB; misses
		// trigger nested walks, SpOT predicts from tracked offsets.
		rep, err := core.Simulate(env, w, 2, 1_000_000, sim.Config{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-8d %-14s %-14s %-8s %s\n",
			name,
			core.Contiguity(env).Maps99,
			fmt.Sprintf("%.2f%%", rep.BaselineOverhead*100),
			fmt.Sprintf("%.2f%%", rep.SpotOverhead*100),
			fmt.Sprintf("%.1f%%", rep.Correct*100),
			fmt.Sprintf("%.1f%%", rep.Mispredict*100))
	}
	fmt.Println()
	fmt.Println("SpOT hides nearly the whole nested page-walk cost once CA paging")
	fmt.Println("has built large contiguous mappings in both translation dimensions.")
}
