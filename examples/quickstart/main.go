// Quickstart: boot a simulated machine, run a workload under default
// paging and under contiguity-aware (CA) paging, and compare the
// contiguous mappings each produces — the paper's core software result
// in ~40 lines.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/workloads"
)

func main() {
	for _, policy := range []string{"default", "ca"} {
		// A machine with two 640 MiB NUMA zones running one kernel.
		sys, err := core.NewNativeSystem(core.Config{Policy: policy})
		if err != nil {
			log.Fatal(err)
		}

		// Run PageRank's allocation phase: the graph is ingested via the
		// page cache and parsed into two large heap arrays, faulting
		// memory in on demand.
		env := sys.NewEnv()
		w := workloads.NewPageRank()
		if err := core.Setup(env, w, 1); err != nil {
			log.Fatal(err)
		}

		// Inspect the virtual-to-physical layout (pagemap-style).
		rep := core.Contiguity(env)
		fmt.Printf("%-8s: %4d contiguous mappings; 99%% of the %d MiB footprint in %d; top-32 cover %.1f%%\n",
			policy, len(rep.Mappings), rep.TotalPages*4096>>20, rep.Maps99, rep.Cov32*100)
	}
	fmt.Println()
	fmt.Println("CA paging collapses the scattered mappings of default paging into a")
	fmt.Println("handful of vast ones — the contiguity SpOT and range hardware exploit.")
}
