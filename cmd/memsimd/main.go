// Command memsimd is the trace-driven serving mode (DESIGN.md §14): a
// long-running process that drains one or more workload trace streams
// through the sharded replay engine, exposes live counters over an
// HTTP status endpoint and a periodic counter CSV, and on shutdown
// drains the streams and runs the whole-machine cross-kernel audit
// before exiting.
//
// Input is either positional trace files (each file is one concurrent
// tenant stream) or -synth N synthetic events split across -streams
// generated streams. Concurrent streams are merged deterministically
// by (timestamp, stream index), so a given set of inputs replays to
// one canonical digest at any -jobs setting.
//
// Usage:
//
//	memsimd -synth 1000000 -tenants 4 -shards 2 -oneshot -digest
//	memsimd -status :8080 -csv counters.csv trace1.mtrc trace2.mtrc
//
// Exit codes: 0 clean drain + audit pass, 1 replay or audit failure,
// 2 usage, 3 throughput below -mineps.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/trace"
	"repro/internal/tracein"
)

// stream is one workload input: a goroutine decodes (or generates)
// events into ch; the merger pulls from ch. Tenant IDs are remapped to
// tenant*streams+idx so concurrent streams never collide on a tenant.
type stream struct {
	name string
	ch   chan tracein.Event
	err  error // set before ch closes
	done bool
	head tracein.Event
	ok   bool // head holds a pending event
}

const streamBuf = 1024

// openStreams builds the input set: one per trace file, or -streams
// synthetic generators. Each gets a feeding goroutine.
func openStreams(files []string, synth, streams, tenants int, seed int64) ([]*stream, error) {
	var out []*stream
	if len(files) > 0 {
		for _, path := range files {
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			d, err := tracein.NewDecoder(f)
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			s := &stream{name: path, ch: make(chan tracein.Event, streamBuf)}
			out = append(out, s)
			go func(f *os.File, d *tracein.Decoder, s *stream) {
				defer close(s.ch)
				defer f.Close()
				var ev tracein.Event
				for {
					err := d.Next(&ev)
					if err == io.EOF {
						return
					}
					if err != nil {
						s.err = fmt.Errorf("%s: %w", s.name, err)
						return
					}
					s.ch <- ev
				}
			}(f, d, s)
		}
		return out, nil
	}
	per := synth / streams
	for i := 0; i < streams; i++ {
		n := per
		if i == streams-1 {
			n = synth - per*(streams-1)
		}
		s := &stream{name: fmt.Sprintf("synth[%d]", i), ch: make(chan tracein.Event, streamBuf)}
		out = append(out, s)
		go func(i, n int, s *stream) {
			defer close(s.ch)
			for _, ev := range tracein.Synth(tracein.SynthConfig{
				Seed: seed + int64(i), Events: n, Tenants: tenants,
			}) {
				s.ch <- ev
			}
		}(i, n, s)
	}
	return out, nil
}

// merge returns a next() function performing a deterministic k-way
// merge by (timestamp, stream index): each refill blocks on the one
// stream that needs a new head, never on a racy select, so the merged
// order is a pure function of the inputs. Tenants are remapped to
// tenant*k+idx, keeping concurrent streams' tenants disjoint.
func merge(streams []*stream) func() (tracein.Event, error) {
	k := uint32(len(streams))
	return func() (tracein.Event, error) {
		best := -1
		for i, s := range streams {
			if !s.ok && !s.done {
				ev, open := <-s.ch
				if !open {
					s.done = true
					if s.err != nil {
						return tracein.Event{}, s.err
					}
				} else {
					s.head, s.ok = ev, true
				}
			}
			if s.ok && (best < 0 || s.head.TS < streams[best].head.TS) {
				best = i
			}
		}
		if best < 0 {
			return tracein.Event{}, io.EOF
		}
		s := streams[best]
		ev := s.head
		s.ok = false
		ev.Tenant = (ev.Tenant*k + uint32(best)) % (tracein.MaxTenant + 1)
		return ev, nil
	}
}

// status is the -status endpoint's JSON document: the engine snapshot
// plus serving-mode throughput.
type status struct {
	tracein.Snapshot
	Shards       int     `json:"shards"`
	Streams      int     `json:"streams"`
	Draining     bool    `json:"draining"`
	UptimeMS     int64   `json:"uptime_ms"`
	EventsPerSec float64 `json:"events_per_sec"`
	FaultsPerSec float64 `json:"faults_per_sec"`
}

// server owns the live view the HTTP handler and CSV ticker read while
// the replay drains on other goroutines.
type server struct {
	eng      *tracein.Engine
	streams  int
	start    time.Time
	draining atomic.Bool
}

func (sv *server) status() status {
	snap := sv.eng.Snapshot()
	up := time.Since(sv.start)
	secs := up.Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	return status{
		Snapshot:     snap,
		Shards:       sv.eng.Shards(),
		Streams:      sv.streams,
		Draining:     sv.draining.Load(),
		UptimeMS:     up.Milliseconds(),
		EventsPerSec: float64(snap.Events) / secs,
		FaultsPerSec: float64(snap.Faults) / secs,
	}
}

func (sv *server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(sv.status())
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("memsimd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	synth := fs.Int("synth", 0, "generate N synthetic events instead of reading trace files")
	streams := fs.Int("streams", 1, "number of concurrent synthetic streams (-synth mode)")
	tenants := fs.Int("tenants", 4, "tenants per synthetic stream")
	seed := fs.Int64("seed", 1, "synthetic trace seed (stream i uses seed+i)")
	shards := fs.Int("shards", 2, "zone shards (one kernel per shard)")
	jobs := fs.Int("jobs", 0, "concurrent shard streams (0 = GOMAXPROCS; digest-identical at any value)")
	policy := fs.String("policy", "ca", "placement policy: default, ca, eager")
	daemons := fs.Bool("daemons", false, "attach Ingens+Ranger daemons to every shard kernel")
	sample := fs.Int("sample", 4096, "per-shard trajectory row cadence in events")
	statusAddr := fs.String("status", "", "serve GET /status JSON on this address (e.g. :8080)")
	csvPath := fs.String("csv", "", "write the periodic counter CSV here at drain")
	interval := fs.Duration("interval", time.Second, "gauge sampling interval for -csv")
	oneshot := fs.Bool("oneshot", false, "exit after draining the inputs instead of waiting for SIGTERM")
	mineps := fs.Float64("mineps", 0, "fail (exit 3) if replay throughput is below this many events/sec")
	digest := fs.Bool("digest", false, "print the replay digest at drain")
	corrupt := fs.Bool("corrupt", false, "damage one frame before the drain audit (failure-path testing)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *synth > 0 && fs.NArg() > 0 {
		fmt.Fprintln(stderr, "memsimd: -synth and trace file arguments are mutually exclusive")
		return 2
	}
	if *synth <= 0 && fs.NArg() == 0 {
		fmt.Fprintln(stderr, "memsimd: need trace files or -synth N")
		fs.Usage()
		return 2
	}
	if *streams < 1 {
		fmt.Fprintln(stderr, "memsimd: -streams must be at least 1")
		return 2
	}

	var tr *trace.Tracer
	if *csvPath != "" {
		tr = trace.New()
	}
	eng, err := tracein.NewEngine(tracein.ReplayConfig{
		Shards: *shards, Jobs: *jobs, Policy: *policy, Daemons: *daemons,
		SampleEvery: *sample, Tracer: tr,
	})
	if err != nil {
		fmt.Fprintln(stderr, "memsimd:", err)
		return 2
	}
	defer eng.Close()

	ins, err := openStreams(fs.Args(), *synth, *streams, *tenants, *seed)
	if err != nil {
		fmt.Fprintln(stderr, "memsimd:", err)
		return 2
	}

	sv := &server{eng: eng, streams: len(ins), start: time.Now()}

	// Graceful drain: first signal stops the replay at the next event
	// boundary; the drain-then-audit path below still runs.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sigc)
	stopc := make(chan struct{})
	go func() {
		<-sigc
		fmt.Fprintln(stderr, "memsimd: signal received, draining")
		sv.draining.Store(true)
		eng.Stop()
		close(stopc)
	}()

	var httpSrv *http.Server
	if *statusAddr != "" {
		ln, err := net.Listen("tcp", *statusAddr)
		if err != nil {
			fmt.Fprintln(stderr, "memsimd:", err)
			return 2
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/status", sv.handleStatus)
		httpSrv = &http.Server{Handler: mux}
		go httpSrv.Serve(ln)
		fmt.Fprintf(stderr, "memsimd: status on http://%s/status\n", ln.Addr())
		defer httpSrv.Close()
	}

	csvStop := make(chan struct{})
	csvDone := make(chan struct{})
	if tr != nil {
		go func() {
			defer close(csvDone)
			t := time.NewTicker(*interval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					eng.SampleGauges()
				case <-csvStop:
					return
				}
			}
		}()
	}

	replayErr := eng.ReplayStream(merge(ins))
	elapsed := time.Since(sv.start)
	sv.draining.Store(true)

	if !*oneshot && replayErr == nil {
		// Serving mode: inputs drained, keep the status endpoint live
		// until the operator signals shutdown (unless one already came
		// in and stopped the replay).
		select {
		case <-stopc:
		default:
			fmt.Fprintln(stderr, "memsimd: inputs drained, serving until SIGTERM")
			<-stopc
		}
	}

	if tr != nil {
		close(csvStop)
		<-csvDone
		eng.SampleGauges() // final row: every drain leaves a series
		f, err := os.Create(*csvPath)
		if err == nil {
			err = tr.WriteCounterCSV(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(stderr, "memsimd: counter csv:", err)
			return 1
		}
	}

	if replayErr != nil {
		fmt.Fprintln(stderr, "memsimd: replay:", replayErr)
		return 1
	}

	if *corrupt {
		if !eng.CorruptForTest() {
			fmt.Fprintln(stderr, "memsimd: -corrupt: no mapped frame to damage")
			return 1
		}
	}
	if err := eng.Audit(); err != nil {
		fmt.Fprintln(stderr, "memsimd: drain audit FAILED:", err)
		return 1
	}

	r := eng.Result()
	eps := float64(r.Events) / elapsed.Seconds()
	fmt.Fprintf(stdout, "drained %d events (%d skipped, %d ooms) in %v: %.0f events/sec, %d faults, p50/p99 translate %d/%d cycles, audit clean\n",
		r.Events, r.Skipped, r.OOMs, elapsed.Round(time.Millisecond), eps, r.Faults, r.P50Cycles, r.P99Cycles)
	if *digest {
		fmt.Fprintf(stdout, "digest %s\n", r.Digest())
	}
	if *mineps > 0 && eps < *mineps {
		fmt.Fprintf(stderr, "memsimd: throughput %.0f events/sec below floor %.0f\n", eps, *mineps)
		return 3
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
