package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/tracein"
)

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},                                   // no input at all
		{"-synth", "100", "a.mtrc"},          // synth and files are exclusive
		{"-synth", "100", "-streams", "0"},   // bad stream count
		{"-badflag"},                         // unknown flag
		{"-synth", "100", "-policy", "nope"}, // unknown policy
		{"/does/not/exist.mtrc"},             // unreadable trace
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("args %v: exit %d, want 2 (stderr: %s)", args, code, errb.String())
		}
	}
}

func TestOneshotCleanAndDeterministic(t *testing.T) {
	args := []string{"-synth", "4000", "-streams", "2", "-tenants", "3",
		"-shards", "2", "-oneshot", "-digest"}
	var digests []string
	for run2 := 0; run2 < 2; run2++ {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, errb.String())
		}
		if !strings.Contains(out.String(), "audit clean") {
			t.Fatalf("no audit confirmation in output: %s", out.String())
		}
		m := regexp.MustCompile(`digest ([0-9a-f]{64})`).FindStringSubmatch(out.String())
		if m == nil {
			t.Fatalf("no digest in output: %s", out.String())
		}
		digests = append(digests, m[1])
	}
	if digests[0] != digests[1] {
		t.Fatal("same args, different digest across runs")
	}
}

func TestTraceFileInput(t *testing.T) {
	dir := t.TempDir()
	for i, seed := range []int64{10, 11} {
		var buf bytes.Buffer
		err := tracein.Encode(&buf, tracein.Synth(tracein.SynthConfig{
			Seed: seed, Events: 1500, Tenants: 2,
		}), true)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, []string{"a.mtrc", "b.mtrc"}[i])
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	csv := filepath.Join(dir, "counters.csv")
	var out, errb bytes.Buffer
	args := []string{"-shards", "2", "-oneshot", "-csv", csv,
		"-interval", "10ms", filepath.Join(dir, "a.mtrc"), filepath.Join(dir, "b.mtrc")}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "drained 3000 events") {
		t.Fatalf("wrong event count: %s", out.String())
	}
	buf, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	head := strings.SplitN(string(buf), "\n", 2)[0]
	for _, col := range []string{"replay.events", "replay.faults"} {
		if !strings.Contains(head, col) {
			t.Fatalf("counter CSV header missing %q: %s", col, head)
		}
	}
}

func TestCorruptedExitCode(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-synth", "2000", "-shards", "2", "-oneshot", "-corrupt"}
	if code := run(args, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "audit FAILED") {
		t.Fatalf("no audit failure report: %s", errb.String())
	}
}

func TestMinEPSFloor(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-synth", "500", "-oneshot", "-mineps", "1e18"}
	if code := run(args, &out, &errb); code != 3 {
		t.Fatalf("exit %d, want 3 (stderr: %s)", code, errb.String())
	}
}

// TestStatusHandler pins the /status JSON shape against the handler
// directly, without binding a port.
func TestStatusHandler(t *testing.T) {
	eng, err := tracein.NewEngine(tracein.ReplayConfig{Shards: 2, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.ReplayEvents(tracein.Synth(tracein.SynthConfig{Seed: 3, Events: 2000, Tenants: 2})); err != nil {
		t.Fatal(err)
	}
	sv := &server{eng: eng, streams: 2, start: time.Now().Add(-time.Second)}
	sv.draining.Store(true)

	rec := httptest.NewRecorder()
	sv.handleStatus(rec, httptest.NewRequest("GET", "/status", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type %q", ct)
	}
	var got map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"events", "skipped", "ooms", "faults", "accesses",
		"misses", "p50_translate_cycles", "p99_translate_cycles", "shards",
		"streams", "draining", "uptime_ms", "events_per_sec", "faults_per_sec"} {
		if _, ok := got[key]; !ok {
			t.Errorf("status JSON missing %q", key)
		}
	}
	if got["events"].(float64) != 2000 {
		t.Errorf("events = %v, want 2000", got["events"])
	}
	if got["draining"] != true {
		t.Errorf("draining = %v, want true", got["draining"])
	}
	if got["events_per_sec"].(float64) <= 0 {
		t.Errorf("events_per_sec = %v, want > 0", got["events_per_sec"])
	}
}

// TestStreamMergeDeterministic pins that the same inputs merge to the
// same digest whether presented as one file or split across two.
func TestStreamMergeDeterministic(t *testing.T) {
	dir := t.TempDir()
	evs := tracein.Synth(tracein.SynthConfig{Seed: 9, Events: 2000, Tenants: 2})
	var buf bytes.Buffer
	if err := tracein.Encode(&buf, evs, false); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "one.mtrc")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	digest := func(args ...string) string {
		t.Helper()
		var out, errb bytes.Buffer
		// Flags must precede positional trace files.
		if code := run(append([]string{"-oneshot", "-digest"}, args...), &out, &errb); code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, errb.String())
		}
		m := regexp.MustCompile(`digest ([0-9a-f]{64})`).FindStringSubmatch(out.String())
		if m == nil {
			t.Fatalf("no digest: %s", out.String())
		}
		return m[1]
	}
	a := digest("-shards", "2", "-jobs", "1", path)
	b := digest("-shards", "2", "-jobs", "4", path)
	if a != b {
		t.Fatal("file replay digest differs across -jobs")
	}
}
