// Command tracestat summarizes a Chrome trace-event JSON written by
// cmd/reproduce -trace (DESIGN.md §9): event counts by kind, span
// durations, and the fault-to-promotion latency histogram — how long a
// 2 MiB region waited between its first fault and its promotion, the
// delay CA paging exists to eliminate (paper Fig. 1b).
//
// Usage:
//
//	tracestat trace.json
//	tracestat -top 25 trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/bits"
	"os"
	"sort"

	"repro/internal/mem/addr"
)

// traceEvent is the subset of the Chrome trace-event schema the
// exporter writes (internal/trace.WriteChromeTrace).
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   uint64         `json:"ts"`
	Dur  uint64         `json:"dur"`
	Args map[string]any `json:"args"`
}

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

// arg reads a numeric argument the exporter wrote; encoding/json
// decodes them as float64.
func arg(e traceEvent, key string) (uint64, bool) {
	v, ok := e.Args[key]
	if !ok {
		return 0, false
	}
	f, ok := v.(float64)
	if !ok || f < 0 {
		return 0, false
	}
	return uint64(f), true
}

// faultKinds are the event names carrying a va + clock pair that can
// open a promotion-latency interval.
var faultKinds = map[string]bool{
	"fault.4k":    true,
	"fault.huge":  true,
	"fault.cow":   true,
	"fault.file":  true,
	"fault.eager": true,
}

// run is the whole tool behind an exit code, so tests can drive it with
// crafted traces and assert on output. Exit codes: 0 clean, 2 usage or
// unreadable input.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracestat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	top := fs.Int("top", 15, "print the N most frequent event kinds")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "tracestat: exactly one trace.json argument required")
		fs.Usage()
		return 2
	}
	buf, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "tracestat:", err)
		return 2
	}
	var tf traceFile
	if err := json.Unmarshal(buf, &tf); err != nil {
		fmt.Fprintf(stderr, "tracestat: %s: %v\n", fs.Arg(0), err)
		return 2
	}

	counts := map[string]uint64{}
	spanDur := map[string]uint64{}
	spanCount := map[string]uint64{}
	// Earliest fault clock per huge-aligned region, and the resulting
	// promotion latencies.
	firstFault := map[uint64]uint64{}
	var promoteLat []uint64
	total := 0
	for _, e := range tf.TraceEvents {
		if e.Ph == "M" {
			continue // metadata, not a recorded event
		}
		total++
		counts[e.Name]++
		if e.Ph == "X" {
			spanDur[e.Name] += e.Dur
			spanCount[e.Name]++
		}
		if faultKinds[e.Name] {
			va, okV := arg(e, "va")
			clock, okC := arg(e, "clock")
			if okV && okC {
				base := va &^ (addr.HugeSize - 1)
				if prev, ok := firstFault[base]; !ok || clock < prev {
					firstFault[base] = clock
				}
			}
		}
		if e.Name == "promote" {
			va, okV := arg(e, "va")
			clock, okC := arg(e, "clock")
			if okV && okC {
				base := va &^ (addr.HugeSize - 1)
				if first, ok := firstFault[base]; ok && clock >= first {
					promoteLat = append(promoteLat, clock-first)
				}
			}
		}
	}

	fmt.Fprintf(stdout, "events: %d (%d kinds)\n\n", total, len(counts))

	type kv struct {
		name string
		n    uint64
	}
	byCount := make([]kv, 0, len(counts))
	for k, v := range counts {
		byCount = append(byCount, kv{k, v})
	}
	sort.Slice(byCount, func(i, j int) bool {
		if byCount[i].n != byCount[j].n {
			return byCount[i].n > byCount[j].n
		}
		return byCount[i].name < byCount[j].name
	})
	n := *top
	if n > len(byCount) {
		n = len(byCount)
	}
	fmt.Fprintf(stdout, "top %d event kinds:\n", n)
	for _, e := range byCount[:n] {
		fmt.Fprintf(stdout, "  %-18s %d\n", e.name, e.n)
	}

	if len(spanDur) > 0 {
		names := make([]string, 0, len(spanDur))
		for k := range spanDur {
			names = append(names, k)
		}
		sort.Strings(names)
		fmt.Fprintf(stdout, "\nspans (total duration, count):\n")
		for _, k := range names {
			fmt.Fprintf(stdout, "  %-24s %-12d %d\n", k, spanDur[k], spanCount[k])
		}
	}

	fmt.Fprintln(stdout)
	if len(promoteLat) == 0 {
		fmt.Fprintln(stdout, "fault->promotion latency: no promotions in trace")
		return 0
	}
	// Log2 histogram of simulated nanoseconds between a region's first
	// fault and its promotion.
	var buckets [65]uint64
	maxBucket := 0
	for _, lat := range promoteLat {
		b := bits.Len64(lat) // 0 for lat==0, else floor(log2)+1
		buckets[b]++
		if b > maxBucket {
			maxBucket = b
		}
	}
	fmt.Fprintf(stdout, "fault->promotion latency (%d promotions, log2 ns buckets):\n", len(promoteLat))
	for b := 0; b <= maxBucket; b++ {
		if buckets[b] == 0 {
			continue
		}
		lo, hi := uint64(0), uint64(0)
		if b > 0 {
			lo = uint64(1) << (b - 1)
			hi = uint64(1)<<b - 1
		}
		fmt.Fprintf(stdout, "  [%d, %d] ns: %d\n", lo, hi, buckets[b])
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
