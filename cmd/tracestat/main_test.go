package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTrace(t *testing.T, events []map[string]any) string {
	t.Helper()
	buf, err := json.Marshal(map[string]any{"traceEvents": events})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runStat(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func ev(name, ph string, ts uint64, args map[string]any) map[string]any {
	return map[string]any{"name": name, "ph": ph, "ts": ts, "pid": 1, "tid": 1, "args": args}
}

func TestSummaryAndHistogram(t *testing.T) {
	// Two faults open the same 2 MiB region (earliest clock wins), one
	// promotion closes it 3000 ns later: one latency in bucket [2048,4095].
	path := writeTrace(t, []map[string]any{
		{"name": "process_name", "ph": "M", "pid": 1, "args": map[string]any{"name": "repro"}},
		ev("fault.4k", "i", 1, map[string]any{"va": 0x200000, "lat_ns": 600, "clock": 1000}),
		ev("fault.4k", "i", 2, map[string]any{"va": 0x201000, "lat_ns": 600, "clock": 2500}),
		ev("fault.4k", "i", 3, map[string]any{"va": 0x400000, "lat_ns": 600, "clock": 1500}),
		ev("promote", "i", 4, map[string]any{"va": 0x200000, "pfn": 512, "clock": 4000}),
		{"name": "daemon.ingens", "ph": "X", "ts": 5, "dur": 7, "pid": 1, "tid": 2,
			"args": map[string]any{"promotions": 1}},
	})
	code, out, _ := runStat(t, path)
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	// 5 recorded events; the metadata record is not one of them.
	if !strings.Contains(out, "events: 5") {
		t.Errorf("metadata counted as an event:\n%s", out)
	}
	if !strings.Contains(out, "fault.4k") || !strings.Contains(out, "3") {
		t.Errorf("fault.4k count missing:\n%s", out)
	}
	if !strings.Contains(out, "daemon.ingens") || !strings.Contains(out, "7") {
		t.Errorf("span duration missing:\n%s", out)
	}
	if !strings.Contains(out, "1 promotions") {
		t.Errorf("promotion count missing:\n%s", out)
	}
	// latency 4000-1000=3000 -> log2 bucket [2048, 4095].
	if !strings.Contains(out, "[2048, 4095] ns: 1") {
		t.Errorf("histogram bucket missing:\n%s", out)
	}
}

func TestNoPromotions(t *testing.T) {
	path := writeTrace(t, []map[string]any{
		ev("fault.4k", "i", 1, map[string]any{"va": 0x200000, "lat_ns": 600, "clock": 1000}),
	})
	code, out, _ := runStat(t, path)
	if code != 0 {
		t.Fatalf("exit %d, want 0 for a promotion-free trace", code)
	}
	if !strings.Contains(out, "no promotions") {
		t.Errorf("missing no-promotions notice:\n%s", out)
	}
}

func TestTopLimitsKinds(t *testing.T) {
	path := writeTrace(t, []map[string]any{
		ev("fault.4k", "i", 1, nil),
		ev("fault.4k", "i", 2, nil),
		ev("tlb.miss", "i", 3, nil),
		ev("promote", "i", 4, nil),
	})
	code, out, _ := runStat(t, "-top", "1", path)
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	if !strings.Contains(out, "top 1 event kinds") || !strings.Contains(out, "fault.4k") {
		t.Errorf("-top 1 should keep only the most frequent kind:\n%s", out)
	}
	if strings.Contains(out, "tlb.miss") {
		t.Errorf("-top 1 leaked a second kind:\n%s", out)
	}
}

func TestUsageAndLoadErrors(t *testing.T) {
	if code, _, stderr := runStat(t); code != 2 || !strings.Contains(stderr, "argument") {
		t.Errorf("no args: exit %d stderr %q, want 2 and a usage message", code, stderr)
	}
	if code, _, _ := runStat(t, "-bogus"); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code, _, stderr := runStat(t, filepath.Join(t.TempDir(), "absent.json")); code != 2 || stderr == "" {
		t.Errorf("missing file: exit %d stderr %q, want 2 and an error", code, stderr)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, stderr := runStat(t, bad); code != 2 || !strings.Contains(stderr, "bad.json") {
		t.Errorf("corrupt file: exit %d stderr %q, want 2 naming the file", code, stderr)
	}
}
