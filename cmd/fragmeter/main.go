// Command fragmeter sweeps external-fragmentation pressure (the hog
// micro-benchmark) and reports how each placement policy's contiguity
// degrades — an interactive version of the paper's Fig. 8.
//
// Usage:
//
//	fragmeter -workload pagerank -policies ca,eager,ideal -steps 0,25,50
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/workloads"
)

func main() {
	var (
		name     = flag.String("workload", "pagerank", "svm|pagerank|hashjoin|xsbench|bt")
		policies = flag.String("policies", "ca,eager,ideal", "comma-separated policies")
		steps    = flag.String("steps", "0,10,20,30,40,50", "hog pressure percentages")
		seed     = flag.Int64("seed", 42, "hog placement seed")
	)
	flag.Parse()

	w := workloads.ByName(*name)
	if w == nil {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *name)
		os.Exit(1)
	}
	fmt.Printf("%-10s %-8s %-8s %-8s %-8s\n", "pressure", "policy", "cov32", "cov128", "maps99")
	for _, stepStr := range strings.Split(*steps, ",") {
		pctv, err := strconv.Atoi(strings.TrimSpace(stepStr))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad step %q\n", stepStr)
			os.Exit(1)
		}
		for _, policy := range strings.Split(*policies, ",") {
			policy = strings.TrimSpace(policy)
			// Single zone (NUMA off), like the paper's pressure study.
			sys, err := core.NewNativeSystem(core.Config{Policy: policy, ZonesMiB: []int{1280}})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			workloads.Hog(sys.Kernel.Machine, float64(pctv)/100, rand.New(rand.NewSource(*seed)))
			env := sys.NewEnv()
			if err := core.Setup(env, workloads.ByName(*name), 1); err != nil {
				fmt.Fprintf(os.Stderr, "%s@%d%%: %v\n", policy, pctv, err)
				os.Exit(1)
			}
			rep := core.Contiguity(env)
			fmt.Printf("%-10s %-8s %-8.3f %-8.3f %-8d\n",
				fmt.Sprintf("hog-%d%%", pctv), policy, rep.Cov32, rep.Cov128, rep.Maps99)
		}
	}
}
