// Command fragmeter sweeps external-fragmentation pressure (the hog
// micro-benchmark) and reports how each placement policy's contiguity
// degrades — an interactive version of the paper's Fig. 8.
//
// Usage:
//
//	fragmeter -workload pagerank -policies ca,eager,ideal -steps 0,25,50
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/workloads"
)

// run is the whole tool behind an exit code, so tests can drive it and
// assert on output. Exit codes: 0 clean, 1 run failure, 2 usage.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fragmeter", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name     = fs.String("workload", "pagerank", "svm|pagerank|hashjoin|xsbench|bt")
		policies = fs.String("policies", "ca,eager,ideal", "comma-separated policies")
		steps    = fs.String("steps", "0,10,20,30,40,50", "hog pressure percentages")
		seed     = fs.Int64("seed", 42, "hog placement seed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	w := workloads.ByName(*name)
	if w == nil {
		fmt.Fprintf(stderr, "unknown workload %q\n", *name)
		return 2
	}
	fmt.Fprintf(stdout, "%-10s %-8s %-8s %-8s %-8s\n", "pressure", "policy", "cov32", "cov128", "maps99")
	for _, stepStr := range strings.Split(*steps, ",") {
		pctv, err := strconv.Atoi(strings.TrimSpace(stepStr))
		if err != nil {
			fmt.Fprintf(stderr, "bad step %q\n", stepStr)
			return 2
		}
		for _, policy := range strings.Split(*policies, ",") {
			policy = strings.TrimSpace(policy)
			// Single zone (NUMA off), like the paper's pressure study.
			sys, err := core.NewNativeSystem(core.Config{Policy: policy, ZonesMiB: []int{1280}})
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			workloads.Hog(sys.Kernel.Machine, float64(pctv)/100, rand.New(rand.NewSource(*seed)))
			env := sys.NewEnv()
			if err := core.Setup(env, workloads.ByName(*name), 1); err != nil {
				fmt.Fprintf(stderr, "%s@%d%%: %v\n", policy, pctv, err)
				return 1
			}
			rep := core.Contiguity(env)
			fmt.Fprintf(stdout, "%-10s %-8s %-8.3f %-8.3f %-8d\n",
				fmt.Sprintf("hog-%d%%", pctv), policy, rep.Cov32, rep.Cov128, rep.Maps99)
		}
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
