package main

import (
	"bytes"
	"strings"
	"testing"
)

func runTool(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestSweepRows(t *testing.T) {
	code, out, stderr := runTool(t, "-workload", "pagerank", "-policies", "ca,eager", "-steps", "0,25")
	if code != 0 {
		t.Fatalf("exit %d, want 0; stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "pressure") || !strings.Contains(out, "cov32") {
		t.Errorf("missing header:\n%s", out)
	}
	// 2 steps x 2 policies = 4 data rows.
	for _, want := range []string{"hog-0%", "hog-25%"} {
		if strings.Count(out, want) != 2 {
			t.Errorf("want 2 rows for %s:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "\n"); n != 5 {
		t.Errorf("want header + 4 rows, got %d lines:\n%s", n, out)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, stderr := runTool(t, "-workload", "nosuch"); code != 2 || !strings.Contains(stderr, "nosuch") {
		t.Errorf("unknown workload: exit %d stderr %q, want 2 naming it", code, stderr)
	}
	if code, _, stderr := runTool(t, "-steps", "x"); code != 2 || !strings.Contains(stderr, "bad step") {
		t.Errorf("bad step: exit %d stderr %q, want 2", code, stderr)
	}
	if code, _, _ := runTool(t, "-bogus"); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
}
