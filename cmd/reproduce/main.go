// Command reproduce regenerates the paper's evaluation tables and
// figures from the simulator. Each experiment prints the same
// rows/series the paper reports (scaled; see DESIGN.md).
//
// Usage:
//
//	reproduce -list
//	reproduce -exp fig7
//	reproduce -exp all [-stream 1000000]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment id (see -list) or 'all'")
		list   = flag.Bool("list", false, "list experiment ids")
		stream = flag.Uint64("stream", 1_000_000, "measured-phase accesses for translation experiments")
	)
	flag.Parse()
	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %s\n", id)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun with -exp <id> or -exp all")
		}
		return
	}
	experiments.StreamLen = *stream
	ids := experiments.IDs()
	if *exp != "all" {
		ids = []string{*exp}
	}
	for _, id := range ids {
		driver, err := experiments.Lookup(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		start := time.Now()
		tab, err := driver()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		tab.Render(os.Stdout)
		fmt.Printf("(%s took %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
