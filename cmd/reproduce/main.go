// Command reproduce regenerates the paper's evaluation tables and
// figures from the simulator. Each experiment prints the same
// rows/series the paper reports (scaled; see DESIGN.md).
//
// Usage:
//
//	reproduce -list
//	reproduce -exp fig7
//	reproduce -exp all [-jobs 8] [-stream 1000000] [-settle 400] [-seed 1]
//
// Experiments are mutually independent and deterministic in their
// parameters, so -exp all fans them out on a worker pool; tables print
// in stable registry order with per-experiment wall-clock timing, and
// -jobs 1 reproduces the sequential behaviour byte-for-byte.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/experiments"
	"repro/internal/experiments/runner"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment id (see -list) or 'all'")
		list   = flag.Bool("list", false, "list experiment ids")
		jobs   = flag.Int("jobs", runtime.NumCPU(), "max concurrent experiments (1 = sequential)")
		stream = flag.Uint64("stream", 1_000_000, "measured-phase accesses for translation experiments")
		settle = flag.Int("settle", 400, "daemon-settle epochs for contiguity experiments")
		seed   = flag.Int64("seed", 1, "base workload seed")
	)
	flag.Parse()
	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %s\n", id)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun with -exp <id> or -exp all")
		}
		return
	}
	params := experiments.Params{
		StreamLen:    *stream,
		SettleEpochs: *settle,
		Seed:         *seed,
		Jobs:         *jobs,
	}
	ids := experiments.IDs()
	if *exp != "all" {
		ids = []string{*exp}
	}
	results, err := runner.Run(context.Background(), ids, params, *jobs)
	if err != nil {
		// Render whatever completed before the failure, then report it:
		// a 21-experiment sweep should not discard 20 good tables.
		for _, r := range results {
			if r.Err == nil && r.Table != nil {
				r.Table.Render(os.Stdout)
			}
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, r := range results {
		r.Table.Render(os.Stdout)
		fmt.Printf("(%s took %s)\n\n", r.ID, r.Elapsed.Round(1e6))
	}
}
