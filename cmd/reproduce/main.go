// Command reproduce regenerates the paper's evaluation tables and
// figures from the simulator. Each experiment prints the same
// rows/series the paper reports (scaled; see DESIGN.md).
//
// Usage:
//
//	reproduce -list
//	reproduce -exp fig7
//	reproduce -exp table1,fig10
//	reproduce -exp all [-jobs 8] [-stream 1000000] [-settle 400] [-seed 1]
//	reproduce -exp all -cpuprofile cpu.prof -memprofile mem.prof -timing timing.json
//	reproduce -exp table1 -trace trace.json -counters counters.csv
//
// Experiments are mutually independent and deterministic in their
// parameters, so -exp all fans them out on a worker pool; tables print
// in stable registry order with per-experiment wall-clock timing, and
// -jobs 1 reproduces the sequential behaviour byte-for-byte.
//
// The profiling flags feed the performance work tracked in DESIGN.md
// §7: -cpuprofile/-memprofile write standard pprof profiles around the
// sweep, and -timing writes the per-experiment wall-clock breakdown as
// JSON (the format committed as BENCH_*.json trajectory points).
//
// The tracing flags (DESIGN.md §9) attach a process-wide tracer to
// every experiment in the run: -trace writes Chrome trace-event JSON
// (load it at ui.perfetto.dev or summarize with cmd/tracestat), and
// -counters writes the counter time series as CSV. Tables are
// byte-identical with tracing on or off.
//
// The figBackends experiment runs every workload across the pluggable
// translation backends (DESIGN.md §13) — the paper's paged stack plus
// the hashed, rmm, and ds alternates — and -backend restricts the
// matrix to a single backend for quick comparisons.
//
// Beyond the paper's own figures, the registry carries the
// fragmentation-aging experiments (DESIGN.md §10): figAging ages every
// policy across two tenant-churn horizons and figAgingTraj records the
// full per-snapshot trajectories; cmd/agingsim runs a single campaign
// with finer control. The aging campaigns run sharded — one shard per
// host zone (DESIGN.md §11) — and -shardjobs bounds how many shards
// step concurrently; tables never depend on it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/experiments/runner"
	"repro/internal/trace"
)

// timingReport is the -timing JSON schema: enough provenance (params,
// host shape, date) to compare trajectory points across commits.
type timingReport struct {
	Date      string         `json:"date"`
	GoVersion string         `json:"go_version"`
	NumCPU    int            `json:"num_cpu"`
	Jobs      int            `json:"jobs"`
	StreamLen uint64         `json:"stream_len"`
	Settle    int            `json:"settle_epochs"`
	Seed      int64          `json:"seed"`
	TotalMS   float64        `json:"total_ms"`
	PerExp    []timingResult `json:"experiments"`
}

type timingResult struct {
	ID string  `json:"id"`
	MS float64 `json:"ms"`
}

// writeTraceOutputs flushes the tracer's exporters; it also runs on the
// partial-failure path so a crashed sweep still yields its trace.
func writeTraceOutputs(tr *trace.Tracer, tracePath, countersPath string) {
	if tr == nil {
		return
	}
	write := func(path string, export func(*os.File) error) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := export(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	write(tracePath, func(f *os.File) error { return tr.WriteChromeTrace(f) })
	write(countersPath, func(f *os.File) error { return tr.WriteCounterCSV(f) })
	if tr.Dropped() > 0 {
		fmt.Fprintf(os.Stderr, "trace: event buffer full, %d events dropped (counters stay exact)\n", tr.Dropped())
	}
}

func main() {
	var (
		exp        = flag.String("exp", "", "experiment id (see -list) or 'all'")
		list       = flag.Bool("list", false, "list experiment ids")
		jobs       = flag.Int("jobs", runtime.NumCPU(), "max concurrent experiments (1 = sequential)")
		shardJobs  = flag.Int("shardjobs", 0, "workers stepping each sharded aging campaign's shards: 0 = GOMAXPROCS, 1 = serial; tables are identical at any value")
		stream     = flag.Uint64("stream", 1_000_000, "measured-phase accesses for translation experiments")
		backend    = flag.String("backend", "", "restrict figBackends to one translation backend (paged, hashed, rmm, ds); empty = full matrix")
		settle     = flag.Int("settle", 400, "daemon-settle epochs for contiguity experiments")
		seed       = flag.Int64("seed", 1, "base workload seed")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to `file`")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile after the sweep to `file`")
		timing     = flag.String("timing", "", "write per-experiment wall-clock JSON to `file`")
		traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON of the run to `file`")
		counters   = flag.String("counters", "", "write the traced counter time series as CSV to `file`")
	)
	flag.Parse()
	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %s\n", id)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun with -exp <id> or -exp all")
		}
		return
	}
	params := experiments.Params{
		StreamLen:    *stream,
		SettleEpochs: *settle,
		Seed:         *seed,
		Jobs:         *jobs,
		ShardJobs:    *shardJobs,
		Backend:      *backend,
	}
	var tr *trace.Tracer
	if *traceOut != "" || *counters != "" {
		tr = trace.New()
		params.Tracer = tr
	}
	ids := experiments.IDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	start := time.Now()
	results, err := runner.Run(context.Background(), ids, params, *jobs)
	total := time.Since(start)
	if err != nil {
		// Render whatever completed before the failure, then report it:
		// a 21-experiment sweep should not discard 20 good tables.
		for _, r := range results {
			if r.Err == nil && r.Table != nil {
				r.Table.Render(os.Stdout)
			}
		}
		writeTraceOutputs(tr, *traceOut, *counters)
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, r := range results {
		r.Table.Render(os.Stdout)
		fmt.Printf("(%s took %s)\n\n", r.ID, r.Elapsed.Round(1e6))
	}
	writeTraceOutputs(tr, *traceOut, *counters)
	if *timing != "" {
		rep := timingReport{
			Date:      time.Now().UTC().Format(time.RFC3339),
			GoVersion: runtime.Version(),
			NumCPU:    runtime.NumCPU(),
			Jobs:      *jobs,
			StreamLen: *stream,
			Settle:    *settle,
			Seed:      *seed,
			TotalMS:   float64(total.Microseconds()) / 1e3,
		}
		for _, r := range results {
			rep.PerExp = append(rep.PerExp, timingResult{
				ID: r.ID, MS: float64(r.Elapsed.Microseconds()) / 1e3,
			})
		}
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*timing, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
