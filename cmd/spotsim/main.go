// Command spotsim runs the translation-hardware emulation for one
// workload with configurable hardware parameters: TLB geometry, SpOT
// prediction-table geometry, policies in each dimension, and stream
// length. It prints the miss profile, the SpOT outcome breakdown, and
// the Table IV overheads.
//
// Usage:
//
//	spotsim -workload pagerank -guest ca -host ca -n 1000000
//	spotsim -workload hashjoin -spot-entries 64 -spot-ways 8
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	var (
		name        = flag.String("workload", "pagerank", "svm|pagerank|hashjoin|xsbench|bt")
		guest       = flag.String("guest", "ca", "guest placement policy")
		host        = flag.String("host", "ca", "host placement policy")
		n           = flag.Uint64("n", 1_000_000, "measured accesses")
		seed        = flag.Int64("seed", 1, "workload seed")
		tlbEntries  = flag.Int("tlb-entries", 32, "L2 TLB entries")
		tlbWays     = flag.Int("tlb-ways", 4, "L2 TLB associativity")
		spotEntries = flag.Int("spot-entries", 32, "SpOT table entries")
		spotWays    = flag.Int("spot-ways", 4, "SpOT table associativity")
		noTHP       = flag.Bool("no-thp", false, "disable transparent huge pages")
	)
	flag.Parse()

	w := workloads.ByName(*name)
	if w == nil {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *name)
		os.Exit(1)
	}
	sys, err := core.NewVirtualSystem(core.VirtualConfig{
		Host:        core.Config{Policy: *host},
		GuestPolicy: *guest,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *noTHP {
		sys.VM.Guest.THPEnabled = false
		sys.Host.THPEnabled = false
	}
	env := sys.NewEnv()
	if err := core.Setup(env, w, *seed); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	contig := core.Contiguity(env)
	fmt.Printf("workload %s: footprint %d MiB, 2D mappings %d (99%% in %d), cov32 %.3f\n",
		w.Name(), w.FootprintBytes()>>20, len(contig.Mappings), contig.Maps99, contig.Cov32)

	rep, err := core.Simulate(env, w, *seed+1, *n, sim.Config{
		TLBEntries:  *tlbEntries,
		TLBWays:     *tlbWays,
		SpotEntries: *spotEntries,
		SpotWays:    *spotWays,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	r := rep.Result
	fmt.Printf("accesses %d, L2 TLB misses %d (%.4f), avg walk %.1f cycles\n",
		r.Accesses, r.Misses, r.MissRatio(), r.AvgWalkCycles)
	fmt.Printf("SpOT: correct %.2f%%  mispredict %.2f%%  no-prediction %.2f%%\n",
		rep.Correct*100, rep.Mispredict*100, rep.NoPrediction*100)
	fmt.Printf("overheads: baseline %.2f%%  SpOT %.2f%%  vRMM %.2f%%  DS %.2f%%\n",
		rep.BaselineOverhead*100, rep.SpotOverhead*100, rep.RMMOverhead*100, rep.DSOverhead*100)
}
