package main

import (
	"bytes"
	"strings"
	"testing"
)

func runTool(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestNativeRun(t *testing.T) {
	code, out, stderr := runTool(t, "-workload", "pagerank", "-policy", "ca", "-top", "3")
	if code != 0 {
		t.Fatalf("exit %d, want 0; stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "pagerank / ca") || !strings.Contains(out, "native mappings") {
		t.Errorf("missing run header:\n%s", out)
	}
	if !strings.Contains(out, "coverage: top-32") {
		t.Errorf("missing coverage line:\n%s", out)
	}
	// -top 3 caps the mapping dump: header + 2 summary lines + <=3 rows.
	if n := strings.Count(out, "\n"); n > 6 {
		t.Errorf("-top 3 printed %d lines, want <=6:\n%s", n, out)
	}
}

func TestVirtualRun(t *testing.T) {
	code, out, stderr := runTool(t, "-workload", "pagerank", "-policy", "ca", "-virtual", "-top", "1")
	if code != 0 {
		t.Fatalf("exit %d, want 0; stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "2D (gVA->hPA)") {
		t.Errorf("virtual run should report 2D mappings:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, stderr := runTool(t, "-workload", "nosuch"); code != 2 || !strings.Contains(stderr, "nosuch") {
		t.Errorf("unknown workload: exit %d stderr %q, want 2 naming it", code, stderr)
	}
	if code, _, _ := runTool(t, "-bogus"); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
}
