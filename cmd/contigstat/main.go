// Command contigstat runs a workload under a chosen policy and dumps
// its contiguous mappings — the pagemap (native) / VMI (virtualized)
// inspection the paper's methodology describes. Useful for eyeballing
// how a policy lays a footprint out physically.
//
// Usage:
//
//	contigstat -workload xsbench -policy ca
//	contigstat -workload bt -policy ca -virtual -top 20
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workloads"
)

func main() {
	var (
		name    = flag.String("workload", "pagerank", "svm|pagerank|hashjoin|xsbench|bt")
		policy  = flag.String("policy", "ca", "default|ca|eager|ideal|ingens|ranger")
		virtual = flag.Bool("virtual", false, "run inside a VM (policy applied in both dimensions)")
		top     = flag.Int("top", 16, "print the N largest mappings")
		seed    = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	w := workloads.ByName(*name)
	if w == nil {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *name)
		os.Exit(1)
	}
	var env *workloads.Env
	var err error
	if *virtual {
		var sys *core.VirtualSystem
		sys, err = core.NewVirtualSystem(core.VirtualConfig{Host: core.Config{Policy: *policy}})
		if err == nil {
			env = sys.NewEnv()
		}
	} else {
		var sys *core.NativeSystem
		sys, err = core.NewNativeSystem(core.Config{Policy: *policy})
		if err == nil {
			env = sys.NewEnv()
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := core.Setup(env, w, *seed); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep := core.Contiguity(env)
	kind := "native"
	if *virtual {
		kind = "2D (gVA->hPA)"
	}
	fmt.Printf("%s / %s: %d %s mappings over %d MiB\n",
		w.Name(), *policy, len(rep.Mappings), kind, rep.TotalPages*4096>>20)
	fmt.Printf("coverage: top-32 %.3f, top-128 %.3f; 99%% of footprint in %d mappings\n",
		rep.Cov32, rep.Cov128, rep.Maps99)
	sorted := append([]metrics.Mapping(nil), rep.Mappings...)
	metrics.SortBySize(sorted)
	n := *top
	if n > len(sorted) {
		n = len(sorted)
	}
	fmt.Printf("%-18s %-14s %-12s %s\n", "VA", "PA", "pages", "size")
	for _, m := range sorted[:n] {
		fmt.Printf("0x%-16x 0x%-12x %-12d %d MiB\n",
			uint64(m.VA), uint64(m.PA), m.Pages, m.Pages*4096>>20)
	}
}
