// Command contigstat runs a workload under a chosen policy and dumps
// its contiguous mappings — the pagemap (native) / VMI (virtualized)
// inspection the paper's methodology describes. Useful for eyeballing
// how a policy lays a footprint out physically.
//
// Usage:
//
//	contigstat -workload xsbench -policy ca
//	contigstat -workload bt -policy ca -virtual -top 20
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workloads"
)

// run is the whole tool behind an exit code, so tests can drive it and
// assert on output. Exit codes: 0 clean, 1 run failure, 2 usage.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("contigstat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name    = fs.String("workload", "pagerank", "svm|pagerank|hashjoin|xsbench|bt")
		policy  = fs.String("policy", "ca", "default|ca|eager|ideal|ingens|ranger")
		virtual = fs.Bool("virtual", false, "run inside a VM (policy applied in both dimensions)")
		top     = fs.Int("top", 16, "print the N largest mappings")
		seed    = fs.Int64("seed", 1, "workload seed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	w := workloads.ByName(*name)
	if w == nil {
		fmt.Fprintf(stderr, "unknown workload %q\n", *name)
		return 2
	}
	var env *workloads.Env
	var err error
	if *virtual {
		var sys *core.VirtualSystem
		sys, err = core.NewVirtualSystem(core.VirtualConfig{Host: core.Config{Policy: *policy}})
		if err == nil {
			env = sys.NewEnv()
		}
	} else {
		var sys *core.NativeSystem
		sys, err = core.NewNativeSystem(core.Config{Policy: *policy})
		if err == nil {
			env = sys.NewEnv()
		}
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if err := core.Setup(env, w, *seed); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	rep := core.Contiguity(env)
	kind := "native"
	if *virtual {
		kind = "2D (gVA->hPA)"
	}
	fmt.Fprintf(stdout, "%s / %s: %d %s mappings over %d MiB\n",
		w.Name(), *policy, len(rep.Mappings), kind, rep.TotalPages*4096>>20)
	fmt.Fprintf(stdout, "coverage: top-32 %.3f, top-128 %.3f; 99%% of footprint in %d mappings\n",
		rep.Cov32, rep.Cov128, rep.Maps99)
	sorted := append([]metrics.Mapping(nil), rep.Mappings...)
	metrics.SortBySize(sorted)
	n := *top
	if n > len(sorted) {
		n = len(sorted)
	}
	fmt.Fprintf(stdout, "%-18s %-14s %-12s %s\n", "VA", "PA", "pages", "size")
	for _, m := range sorted[:n] {
		fmt.Fprintf(stdout, "0x%-16x 0x%-12x %-12d %d MiB\n",
			uint64(m.VA), uint64(m.PA), m.Pages, m.Pages*4096>>20)
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
