package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type testExp struct {
	ID string  `json:"id"`
	MS float64 `json:"ms"`
}

type testReport struct {
	Date      string    `json:"date"`
	GoVersion string    `json:"go_version"`
	NumCPU    int       `json:"num_cpu"`
	Jobs      int       `json:"jobs"`
	StreamLen uint64    `json:"stream_len"`
	Settle    int       `json:"settle_epochs"`
	Seed      int64     `json:"seed"`
	TotalMS   float64   `json:"total_ms"`
	PerExp    []testExp `json:"experiments"`
}

func writeReport(t *testing.T, name string, r testReport) string {
	t.Helper()
	buf, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func baseReport() testReport {
	return testReport{
		Date: "2026-08-01", Jobs: 4, StreamLen: 1000, Settle: 40, Seed: 1,
		TotalMS: 300,
		PerExp: []testExp{
			{ID: "fig7", MS: 100},
			{ID: "fig8", MS: 200},
		},
	}
}

func runDiff(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestDeltaRows(t *testing.T) {
	base := writeReport(t, "base.json", baseReport())
	cand := baseReport()
	cand.PerExp = []testExp{{ID: "fig7", MS: 50}, {ID: "fig8", MS: 400}}
	cand.TotalMS = 450
	candPath := writeReport(t, "new.json", cand)

	code, out, _ := runDiff(t, "-base", base, "-new", candPath)
	if code != 0 {
		t.Fatalf("exit %d, want 0 (report-only mode never gates)", code)
	}
	for _, want := range []string{"0.50x", "2.00x", "1.50x", "TOTAL"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "WARNING") {
		t.Errorf("identical params flagged as differing:\n%s", out)
	}
}

func TestThresholdGate(t *testing.T) {
	base := writeReport(t, "base.json", baseReport())
	cand := baseReport()
	cand.PerExp = []testExp{{ID: "fig7", MS: 100}, {ID: "fig8", MS: 500}}
	cand.TotalMS = 600
	candPath := writeReport(t, "new.json", cand)

	// fig8 is 2.5x and the total 2.0x: both beyond 1.25.
	code, out, _ := runDiff(t, "-base", base, "-new", candPath, "-threshold", "1.25")
	if code != 1 {
		t.Fatalf("exit %d, want 1 for regressions beyond threshold", code)
	}
	if !strings.Contains(out, "2 regression(s) beyond 1.25x") {
		t.Errorf("missing regression summary:\n%s", out)
	}
	if !strings.Contains(out, "fig8") || !strings.Contains(out, "TOTAL") {
		t.Errorf("regression list should name fig8 and TOTAL:\n%s", out)
	}

	// A generous threshold passes the same pair of reports.
	code, _, _ = runDiff(t, "-base", base, "-new", candPath, "-threshold", "3")
	if code != 0 {
		t.Fatalf("exit %d, want 0 within threshold", code)
	}

	// Threshold 0 is report-only even with huge ratios.
	code, _, _ = runDiff(t, "-base", base, "-new", candPath)
	if code != 0 {
		t.Fatalf("exit %d, want 0 with no threshold", code)
	}
}

func TestMismatchedExperimentSets(t *testing.T) {
	b := baseReport()
	b.PerExp = append(b.PerExp, testExp{ID: "table5", MS: 30}, testExp{ID: "table1", MS: 20})
	base := writeReport(t, "base.json", b)
	cand := baseReport()
	cand.PerExp = []testExp{{ID: "fig7", MS: 100}, {ID: "fig8", MS: 200}, {ID: "fig9", MS: 10}}
	candPath := writeReport(t, "new.json", cand)

	code, out, _ := runDiff(t, "-base", base, "-new", candPath, "-threshold", "1.25")
	if code != 0 {
		t.Fatalf("exit %d, want 0: new/dropped rows must not trip the gate", code)
	}
	if !strings.Contains(out, "fig9") || !strings.Contains(out, "new") {
		t.Errorf("candidate-only experiment not marked new:\n%s", out)
	}
	for _, id := range []string{"table1", "table5"} {
		if !strings.Contains(out, id) {
			t.Errorf("base-only experiment %s missing from output:\n%s", id, out)
		}
	}
	if !strings.Contains(out, "dropped") {
		t.Errorf("base-only experiments not marked dropped:\n%s", out)
	}
	// Dropped rows are sorted for stable diffs.
	if strings.Index(out, "table1") > strings.Index(out, "table5") {
		t.Errorf("dropped rows not sorted:\n%s", out)
	}
}

func TestParamsMismatchWarning(t *testing.T) {
	base := writeReport(t, "base.json", baseReport())
	cand := baseReport()
	cand.StreamLen = 2000
	candPath := writeReport(t, "new.json", cand)

	code, out, _ := runDiff(t, "-base", base, "-new", candPath)
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	if !strings.Contains(out, "WARNING: parameters differ") {
		t.Errorf("missing params-differ warning:\n%s", out)
	}
}

func TestUsageAndLoadErrors(t *testing.T) {
	base := writeReport(t, "base.json", baseReport())

	if code, _, stderr := runDiff(t); code != 2 || !strings.Contains(stderr, "required") {
		t.Errorf("no flags: exit %d stderr %q, want 2 and a required-flags message", code, stderr)
	}
	if code, _, _ := runDiff(t, "-base", base); code != 2 {
		t.Errorf("missing -new: exit %d, want 2", code)
	}
	if code, _, _ := runDiff(t, "-bogus"); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code, _, stderr := runDiff(t, "-base", base, "-new", filepath.Join(t.TempDir(), "absent.json")); code != 2 || stderr == "" {
		t.Errorf("missing file: exit %d stderr %q, want 2 and an error", code, stderr)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, stderr := runDiff(t, "-base", base, "-new", bad); code != 2 || !strings.Contains(stderr, "bad.json") {
		t.Errorf("corrupt file: exit %d stderr %q, want 2 naming the file", code, stderr)
	}
}
