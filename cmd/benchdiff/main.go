// Command benchdiff compares two -timing JSON reports written by
// cmd/reproduce (the format committed as BENCH_*.json trajectory
// points): per-experiment wall-clock deltas, the total, and an optional
// regression gate.
//
// Usage:
//
//	benchdiff -base BENCH_2026-08-05.json -new bench-timing.json
//	benchdiff -base old.json -new new.json -threshold 1.25
//
// With -threshold 0 (the default) the tool only reports. With a
// positive threshold it exits non-zero when any experiment — or the
// total — slowed down by more than that factor, so CI can choose to
// gate on it. Reports taken under different parameters (stream length,
// settle epochs, seed, jobs) are flagged: their deltas measure the
// parameter change, not the code.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

// report mirrors cmd/reproduce's timingReport schema.
type report struct {
	Date      string  `json:"date"`
	GoVersion string  `json:"go_version"`
	NumCPU    int     `json:"num_cpu"`
	Jobs      int     `json:"jobs"`
	StreamLen uint64  `json:"stream_len"`
	Settle    int     `json:"settle_epochs"`
	Seed      int64   `json:"seed"`
	TotalMS   float64 `json:"total_ms"`
	PerExp    []struct {
		ID string  `json:"id"`
		MS float64 `json:"ms"`
	} `json:"experiments"`
}

func load(path string) (report, error) {
	var r report
	buf, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(buf, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// run is the whole tool behind an exit code, so tests can drive it with
// crafted reports and assert on output and gating. Exit codes: 0 clean,
// 1 regression beyond -threshold, 2 usage or unreadable input.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		basePath  = fs.String("base", "", "baseline timing JSON (required)")
		newPath   = fs.String("new", "", "candidate timing JSON (required)")
		threshold = fs.Float64("threshold", 0, "fail (exit 1) when any ratio new/base exceeds this factor; 0 = report only")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *basePath == "" || *newPath == "" {
		fmt.Fprintln(stderr, "benchdiff: -base and -new are both required")
		fs.Usage()
		return 2
	}
	base, err := load(*basePath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	cand, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}

	fmt.Fprintf(stdout, "base: %s  (%s, jobs=%d, stream=%d, settle=%d, seed=%d)\n",
		*basePath, base.Date, base.Jobs, base.StreamLen, base.Settle, base.Seed)
	fmt.Fprintf(stdout, "new:  %s  (%s, jobs=%d, stream=%d, settle=%d, seed=%d)\n",
		*newPath, cand.Date, cand.Jobs, cand.StreamLen, cand.Settle, cand.Seed)
	if base.StreamLen != cand.StreamLen || base.Settle != cand.Settle ||
		base.Seed != cand.Seed || base.Jobs != cand.Jobs {
		fmt.Fprintln(stdout, "WARNING: parameters differ between reports; deltas measure the parameter change, not the code")
	}
	fmt.Fprintln(stdout)

	baseMS := map[string]float64{}
	for _, e := range base.PerExp {
		baseMS[e.ID] = e.MS
	}
	var rows [][4]string
	var regressed []string
	ratioCell := func(id string, b, n float64) string {
		if b <= 0 {
			return "n/a"
		}
		ratio := n / b
		if *threshold > 0 && ratio > *threshold {
			regressed = append(regressed, id)
		}
		return fmt.Sprintf("%.2fx", ratio)
	}
	seen := map[string]bool{}
	for _, e := range cand.PerExp {
		seen[e.ID] = true
		b, ok := baseMS[e.ID]
		if !ok {
			rows = append(rows, [4]string{e.ID, "-", fmt.Sprintf("%.1f", e.MS), "new"})
			continue
		}
		rows = append(rows, [4]string{
			e.ID, fmt.Sprintf("%.1f", b), fmt.Sprintf("%.1f", e.MS), ratioCell(e.ID, b, e.MS),
		})
	}
	var dropped []string
	for _, e := range base.PerExp {
		if !seen[e.ID] {
			dropped = append(dropped, e.ID)
		}
	}
	sort.Strings(dropped)
	for _, id := range dropped {
		rows = append(rows, [4]string{id, fmt.Sprintf("%.1f", baseMS[id]), "-", "dropped"})
	}
	rows = append(rows, [4]string{
		"TOTAL", fmt.Sprintf("%.1f", base.TotalMS), fmt.Sprintf("%.1f", cand.TotalMS),
		ratioCell("TOTAL", base.TotalMS, cand.TotalMS),
	})

	widths := [4]int{len("experiment"), len("base ms"), len("new ms"), len("ratio")}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells [4]string) {
		fmt.Fprintf(stdout, "%-*s  %*s  %*s  %*s\n",
			widths[0], cells[0], widths[1], cells[1], widths[2], cells[2], widths[3], cells[3])
	}
	printRow([4]string{"experiment", "base ms", "new ms", "ratio"})
	for _, r := range rows {
		printRow(r)
	}

	if len(regressed) > 0 {
		fmt.Fprintf(stdout, "\nbenchdiff: %d regression(s) beyond %.2fx: %v\n", len(regressed), *threshold, regressed)
		return 1
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
