// Command agingsim runs one fragmentation-aging campaign — long
// logical-time tenant churn with page-cache pressure and periodic
// daemon epochs — under a chosen policy, and writes the per-snapshot
// trajectory (FragScore-style permille, Gorman unusable free index,
// RSS) as CSV. Whole-machine audits run throughout; an audit failure
// exits non-zero, which is what the CI aging-smoke step gates on.
//
// With -shards N the campaign splits the machine into N zone-owning
// shards stepped concurrently by -shardjobs workers and merged at a
// deterministic epoch barrier; the trajectory depends on -shards but
// never on -shardjobs.
//
//	agingsim -policy ranger -steps 360 -csv traj.csv -trace trace.json
//	agingsim -policy ca -shards 2 -shardjobs 2 -audit 1
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/aging"
	"repro/internal/experiments"
	"repro/internal/trace"
)

func main() {
	var (
		policy    = flag.String("policy", "thp", "policy: thp, ingens, ca, eager, ranger, ideal")
		steps     = flag.Int("steps", 240, "churn-step horizon")
		snapshot  = flag.Int("snapshot", 10, "snapshot every N steps")
		audit     = flag.Int("audit", 4, "audit every N snapshots (-1 disables mid-run audits)")
		seed      = flag.Int64("seed", 1, "campaign seed")
		shards    = flag.Int("shards", 1, "split the campaign into N zone-owning shards (clamped to the zone count)")
		shardJobs = flag.Int("shardjobs", 0, "workers stepping shards concurrently: 0 = GOMAXPROCS, 1 = serial; trajectory is identical at any value")
		csvOut    = flag.String("csv", "", "write the trajectory CSV to `file` (default stdout)")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON of the campaign to `file`")
		counters  = flag.String("counters", "", "write the traced counter time series as CSV to `file`")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "agingsim:", err)
		os.Exit(1)
	}

	pol := experiments.PolicyName(*policy)
	known := false
	for _, p := range experiments.AllPolicies() {
		if p == pol {
			known = true
		}
	}
	if !known {
		fail(fmt.Errorf("unknown policy %q (have %v)", *policy, experiments.AllPolicies()))
	}

	params := experiments.Params{Seed: *seed}
	var tr *trace.Tracer
	if *traceOut != "" || *counters != "" {
		tr = trace.New()
		params.Tracer = tr
	}
	cfg := aging.Config{
		Seed:          *seed,
		Steps:         *steps,
		SnapshotEvery: *snapshot,
		AuditEvery:    *audit,
		Shards:        *shards,
		ShardJobs:     *shardJobs,
	}
	traj, err := experiments.RunAgingCampaign(params, pol, cfg)

	// Emit whatever trajectory exists even when the campaign failed:
	// the snapshots leading up to a bad audit are the debugging trail.
	writeCSV := func() error {
		w := os.Stdout
		if *csvOut != "" {
			f, cerr := os.Create(*csvOut)
			if cerr != nil {
				return cerr
			}
			defer f.Close()
			w = f
		}
		return traj.WriteCSV(w)
	}
	if traj != nil {
		if werr := writeCSV(); werr != nil {
			fail(werr)
		}
	}
	writeOut := func(path string, fn func(*os.File) error) {
		if path == "" {
			return
		}
		f, oerr := os.Create(path)
		if oerr != nil {
			fail(oerr)
		}
		if oerr := fn(f); oerr != nil {
			f.Close()
			fail(oerr)
		}
		if oerr := f.Close(); oerr != nil {
			fail(oerr)
		}
	}
	writeOut(*traceOut, func(f *os.File) error { return tr.WriteChromeTrace(f) })
	writeOut(*counters, func(f *os.File) error { return tr.WriteCounterCSV(f) })
	if err != nil {
		fail(err)
	}
	f := traj.Final()
	fmt.Fprintf(os.Stderr, "agingsim: %s ok: %d snapshots, final frag %d permille, ufi2m %.3f, rss %d pages, %d faults\n",
		traj.Policy, len(traj.Snapshots), f.FragPermille, f.UFI2M, f.RSSPages, f.Faults)
}
